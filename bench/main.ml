(* Benchmark and reproduction driver.

   With no arguments: regenerate every quick table/figure of the paper
   (Tables 1, 4, 5, 6, 7, Figure 1, plus the two ablations) on the
   twelve small suite circuits, then run one Bechamel micro-benchmark
   per experiment kernel.

     dune exec bench/main.exe                    # everything quick
     dune exec bench/main.exe table5             # one artefact
     dune exec bench/main.exe -- --full table5   # + syn5378/syn13207
     dune exec bench/main.exe -- --no-micro      # skip Bechamel part
     dune exec bench/main.exe -- --micro-only    # only Bechamel part
     dune exec bench/main.exe -- --jobs 8        # parallel-kernel domains
     dune exec bench/main.exe -- --metrics       # end-of-run phase tables
     dune exec bench/main.exe -- --trace t.jsonl # JSONL event log

   The run-configuration flags (--seed, --jobs, --metrics, --trace) are
   the same table-driven set the adi_atpg CLI uses (Run_flags); only
   the driver-local selectors below are parsed here.

   Besides the text report, the perf-kernel section appends a
   timestamped entry to a BENCH_adi.json history in the working
   directory, so successive runs can be compared. *)

let experiments_requested = ref []
let full = ref false
let bench_cfg = ref (Run_config.with_jobs 4 Run_config.default)
let run_reports = ref true
let run_micro = ref true
let run_perf = ref true
let run_soak = ref false
let run_fleet = ref false
let run_diagnosis = ref false
let run_scaling = ref false
let scaling_gen = ref "gates=120k,reconv=0.3,seed=7"
let history_keep = ref 50
let seed () = !bench_cfg.Run_config.seed
let jobs () = !bench_cfg.Run_config.jobs

let usage () =
  prerr_endline
    "usage: main.exe [--full] [--seed N] [--jobs N] [--window N] [--metrics] \
     [--trace FILE] [--no-micro | --micro-only] [--no-perf] [--soak] [--fleet] \
     [--diagnosis] [--scaling] [--gen SPEC] [--history-keep N] [EXPERIMENT ...]";
  Printf.eprintf "experiments: %s\n" (String.concat ", " Harness.experiment_names);
  exit 2

let parse_args () =
  let specs =
    Run_flags.pipeline_specs @ Run_flags.engine_specs @ Run_flags.observability_specs
  in
  let cfg, rest =
    Run_flags.parse ~specs ~init:!bench_cfg (List.tl (Array.to_list Sys.argv))
  in
  bench_cfg := cfg;
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        full := true;
        go rest
    | "--no-micro" :: rest ->
        run_micro := false;
        go rest
    | "--micro-only" :: rest ->
        run_reports := false;
        run_perf := false;
        go rest
    | "--no-perf" :: rest ->
        run_perf := false;
        go rest
    | "--soak" :: rest ->
        run_soak := true;
        go rest
    | "--fleet" :: rest ->
        run_fleet := true;
        go rest
    | "--diagnosis" :: rest ->
        run_diagnosis := true;
        go rest
    | "--scaling" :: rest ->
        run_scaling := true;
        go rest
    | "--gen" :: spec :: rest ->
        scaling_gen := spec;
        go rest
    | "--history-keep" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k -> history_keep := k; go rest
        | None -> usage ())
    | ("--help" | "-h") :: _ -> usage ()
    | w :: rest ->
        if List.mem w Harness.experiment_names then begin
          experiments_requested := w :: !experiments_requested;
          go rest
        end
        else usage ()
  in
  go rest;
  if !experiments_requested = [] then
    experiments_requested :=
      [ "table1"; "table4"; "table5"; "table6"; "table7"; "figure1";
        "ablation-static"; "ablation-u"; "ablation-ndetection";
        "ablation-estimator"; "ablation-reorder"; "ablation-independence";
        "ablation-engines"; "ablation-compaction"; "ablation-truncation" ]
  else experiments_requested := List.rev !experiments_requested

(* ---------- reproduction reports --------------------------------- *)

(* (name, wall seconds) of every timed section, for BENCH_adi.json. *)
let experiment_times = ref []

let print_reports () =
  List.iter
    (fun w ->
      let t0 = Unix.gettimeofday () in
      let body =
        Util.Trace.span (Util.Trace.current ())
          ~attrs:[ ("experiment", Util.Trace.Str w) ]
          "bench.experiment"
          (fun () -> Harness.run_experiment ~seed:(seed ()) ~full:!full w)
      in
      let dt = Unix.gettimeofday () -. t0 in
      experiment_times := (w, dt) :: !experiment_times;
      Printf.printf "%s\n(%s regenerated in %.1fs)\n\n%!" body w dt)
    !experiments_requested

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ---------- chaos soak -------------------------------------------- *)

(* Resilience proof under fault injection: expected replies are
   computed by a pristine in-process session first, then the
   ADI_FAILPOINTS environment (if any) is armed and K resilient
   clients hammer a live socket server.  Every reply that gets
   through must match the offline result byte for byte (modulo the
   "cached" flag); a single wrong byte fails the bench.  The summary
   lands in the BENCH_adi.json entry as a "soak" object. *)

let soak_summary = ref None
let fleet_summary = ref None
let diagnosis_summary = ref None
let scaling_summary = ref None

(* Strips "cached" fields at every depth: diagnose replies carry a
   nested dictionary-cache flag besides the top-level setup one. *)
let rec strip_cached = function
  | Util.Json.Obj fields ->
      Util.Json.Obj
        (List.filter_map
           (fun (k, v) -> if k = "cached" then None else Some (k, strip_cached v))
           fields)
  | j -> j

(* Nearest-rank percentile over a sorted sample array. *)
let percentile sorted p =
  let n = Array.length sorted in
  let idx = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(max 0 (min idx (n - 1)))

(* Per-op latency percentiles from (op, seconds) samples, as JSON
   objects — the soak/fleet entries CI asserts the schema of. *)
let latency_fields samples =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (op, s) ->
      Hashtbl.replace tbl op (s :: Option.value ~default:[] (Hashtbl.find_opt tbl op)))
    samples;
  List.map
    (fun op ->
      let xs = Array.of_list (Hashtbl.find tbl op) in
      Array.sort compare xs;
      Printf.sprintf "{\"op\": \"%s\", \"count\": %d, \"p50_ms\": %.3f, \"p99_ms\": %.3f}"
        (json_escape op) (Array.length xs)
        (1000.0 *. percentile xs 50.0)
        (1000.0 *. percentile xs 99.0))
    (List.sort_uniq compare (List.map fst samples))

let soak_ops () =
  let circuit name = ("circuit", Util.Json.Str name) in
  [ ("adi", [ circuit "c17" ]);
    ("order", [ circuit "c17" ]);
    ("atpg", [ circuit "c17" ]);
    ("adi", [ circuit "lion" ]);
    ("order", [ circuit "syn208"; ("limit", Util.Json.Int 10) ]);
    ("load", [ circuit "syn208" ]);
    ("diagnose", [ circuit "c17" ]);
    ("diagnose",
     [ circuit "c17"; ("fails", Util.Json.Arr [ Util.Json.Int 0 ]);
       ("limit", Util.Json.Int 3) ]) ]

let run_soak_stage () =
  let ops = Array.of_list (soak_ops ()) in
  let clients = 4 and per_client = 24 in
  let spec = try Sys.getenv "ADI_FAILPOINTS" with Not_found -> "" in
  Printf.printf "Chaos soak (%d clients x %d requests, failpoints: %s):\n%!" clients
    per_client
    (if spec = "" then "none" else spec);
  (* Ground truth before any fault is armed. *)
  let expected =
    let pristine = Service.Session.create ~capacity:16 ~jobs:1 () in
    Array.map
      (fun (op, params) ->
        match
          (Service.Session.handle pristine (Service.Protocol.single op params))
            .Service.Protocol.payload
        with
        | Ok (Service.Protocol.Result j) -> Util.Json.to_string (strip_cached j)
        | Ok _ -> failwith "soak: offline pipeline returned an unexpected reply shape"
        | Error e -> failwith ("soak: offline pipeline failed: " ^ e.Service.Protocol.message))
      ops
  in
  Util.Failpoint.install_from_env ();
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "adi-soak-%d.sock" (Unix.getpid ()))
  in
  let address = Service.Server.Unix_socket path in
  (* A deliberately tight cache over a spill directory, so the soak
     exercises eviction, spill writes, and spill reloads — the store
     failpoint sites are live, not just the wire ones. *)
  let spill_dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "adi-soak-spill-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let session = Service.Session.create ~capacity:2 ~spill_dir ~jobs:1 () in
  let server =
    Service.Server.create ~workers:4 ~max_inflight:4 (Service.Session.backend session) address
  in
  let ready = Atomic.make false in
  let server_domain =
    Domain.spawn (fun () ->
        Service.Server.serve server ~on_ready:(fun () -> Atomic.set ready true))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let client_run k () =
    let policy =
      { Service.Client.default_policy with
        Util.Retry.max_attempts = 8;
        overall_budget_s = Some 60.0 }
    in
    let client = Service.Client.create ~policy ~seed:(100 + k) address in
    Fun.protect
      ~finally:(fun () -> Service.Client.close client)
      (fun () ->
        let ok = ref 0 and wrong = ref 0 and failed = ref 0 in
        let samples = ref [] in
        for i = 0 to per_client - 1 do
          let idx = (k + i) mod Array.length ops in
          let op, params = ops.(idx) in
          let t0 = Unix.gettimeofday () in
          let note () = samples := (op, Unix.gettimeofday () -. t0) :: !samples in
          match Service.Client.request client op params with
          | Ok j ->
              note ();
              if Util.Json.to_string (strip_cached j) = expected.(idx) then incr ok
              else incr wrong
          | Error _ ->
              note ();
              incr failed
          | exception Util.Diagnostics.Failed _ ->
              note ();
              incr failed
        done;
        (!ok, !wrong, !failed, Service.Client.retries client, !samples))
  in
  let workers = Array.init clients (fun k -> Domain.spawn (client_run k)) in
  let results = Array.map Domain.join workers in
  (* Drain the server through the front door, resiliently. *)
  let stopper = Service.Client.create address in
  (try ignore (Service.Client.request stopper ~timeout_s:30.0 "shutdown" [])
   with Util.Diagnostics.Failed _ -> Service.Server.request_stop server);
  Service.Client.close stopper;
  Domain.join server_domain;
  Util.Failpoint.clear ();
  let ok = Array.fold_left (fun a (x, _, _, _, _) -> a + x) 0 results in
  let wrong = Array.fold_left (fun a (_, x, _, _, _) -> a + x) 0 results in
  let failed = Array.fold_left (fun a (_, _, x, _, _) -> a + x) 0 results in
  let retries = Array.fold_left (fun a (_, _, _, x, _) -> a + x) 0 results in
  let samples = Array.fold_left (fun a (_, _, _, _, xs) -> xs @ a) [] results in
  let shed = Service.Session.shed_count session in
  let lane_restarts = Service.Server.lane_restarts server in
  Printf.printf
    "  %d requests: %d ok, %d wrong, %d failed; %d retries, %d shed, %d lane restarts\n%!"
    (clients * per_client) ok wrong failed retries shed lane_restarts;
  soak_summary :=
    Some
      (Printf.sprintf
         "{\"clients\": %d, \"requests\": %d, \"ok\": %d, \"wrong\": %d, \"failed\": %d, \
          \"retries\": %d, \"shed\": %d, \"lane_restarts\": %d, \"failpoints\": \"%s\", \
          \"latency\": [%s]}"
         clients (clients * per_client) ok wrong failed retries shed lane_restarts
         (json_escape spec)
         (String.concat ", " (latency_fields samples)));
  if wrong > 0 then failwith "bench: soak produced wrong results (byte-identity violated)";
  Printf.printf "  every successful reply byte-identical to the offline pipeline\n\n%!"

(* ---------- fleet soak -------------------------------------------- *)

(* The same byte-identity proof, one layer up: an adi-router in front
   of two shared-spill workers, hammered by concurrent clients sending
   protocol v2 batch requests.  Every per-item reply that gets through
   must match the offline pipeline byte for byte; routing counters and
   per-op latency percentiles land in the BENCH_adi.json entry as a
   "fleet" object. *)

let fleet_batches () =
  let circuit name = ("circuit", Util.Json.Str name) in
  [ (Service.Protocol.Adi, [ [ circuit "c17" ]; [ circuit "lion" ]; [ circuit "syn208" ] ]);
    (Service.Protocol.Order,
     [ [ circuit "c17" ]; [ circuit "syn208"; ("limit", Util.Json.Int 10) ] ]);
    (Service.Protocol.Atpg, [ [ circuit "c17" ] ]);
    (Service.Protocol.Diagnose,
     [ [ circuit "c17" ];
       [ circuit "c17"; ("fails", Util.Json.Arr [ Util.Json.Int 0 ]) ] ]) ]

let run_fleet_stage () =
  let batches = fleet_batches () in
  let clients = 4 and rounds = 6 in
  let spec = try Sys.getenv "ADI_FAILPOINTS" with Not_found -> "" in
  Printf.printf "Fleet soak (router + 2 workers, %d clients x %d batch rounds, failpoints: %s):\n%!"
    clients rounds
    (if spec = "" then "none" else spec);
  (* Ground truth per batch item, from a pristine in-process session. *)
  let expected =
    let pristine = Service.Session.create ~capacity:16 ~jobs:1 () in
    List.map
      (fun (op, items) ->
        ( op,
          List.map
            (fun params ->
              match
                (Service.Session.handle pristine
                   { Service.Protocol.id = 1; call = Service.Protocol.Single (op, params) })
                  .Service.Protocol.payload
              with
              | Ok (Service.Protocol.Result j) -> Util.Json.to_string (strip_cached j)
              | Ok _ -> failwith "fleet: offline pipeline returned an unexpected reply shape"
              | Error e ->
                  failwith ("fleet: offline pipeline failed: " ^ e.Service.Protocol.message))
            items ))
      batches
  in
  Util.Failpoint.install_from_env ();
  let tmp = Filename.get_temp_dir_name () in
  let sock name = Filename.concat tmp (Printf.sprintf "adi-fleet-%s-%d.sock" name (Unix.getpid ())) in
  let spill_dir =
    let d = Filename.concat tmp (Printf.sprintf "adi-fleet-spill-%d" (Unix.getpid ())) in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  (* Two tight-cache workers over one shared write-through spill dir:
     a miss on one worker can be a disk hit seeded by the other. *)
  let start_worker name =
    let address = Service.Server.Unix_socket (sock name) in
    let session = Service.Session.create ~capacity:2 ~spill_dir ~shared_spill:true ~jobs:1 () in
    let server =
      Service.Server.create ~workers:2 ~max_inflight:4 (Service.Session.backend session)
        address
    in
    let ready = Atomic.make false in
    let domain =
      Domain.spawn (fun () ->
          Service.Server.serve server ~on_ready:(fun () -> Atomic.set ready true))
    in
    while not (Atomic.get ready) do
      Unix.sleepf 0.005
    done;
    (address, server, domain)
  in
  let w0 = start_worker "w0" and w1 = start_worker "w1" in
  let worker_addresses = [ (fun (a, _, _) -> a) w0; (fun (a, _, _) -> a) w1 ] in
  let router = Service.Router.create worker_addresses in
  let front = Service.Server.Unix_socket (sock "router") in
  let router_server =
    Service.Server.create ~workers:4 ~max_inflight:8 (Service.Router.backend router) front
  in
  let router_ready = Atomic.make false in
  let router_domain =
    Domain.spawn (fun () ->
        Service.Server.serve router_server ~on_ready:(fun () -> Atomic.set router_ready true))
  in
  while not (Atomic.get router_ready) do
    Unix.sleepf 0.005
  done;
  let client_run k () =
    let policy =
      { Service.Client.default_policy with
        Util.Retry.max_attempts = 8;
        overall_budget_s = Some 60.0 }
    in
    let client = Service.Client.create ~policy ~seed:(200 + k) front in
    Fun.protect
      ~finally:(fun () -> Service.Client.close client)
      (fun () ->
        let ok = ref 0 and wrong = ref 0 and failed = ref 0 in
        let samples = ref [] in
        for _ = 1 to rounds do
          List.iter
            (fun (op, items) ->
              let want = List.assoc op expected in
              let name = "batch_" ^ Service.Protocol.op_name op in
              let t0 = Unix.gettimeofday () in
              match Service.Client.batch client op items with
              | Ok replies ->
                  samples := (name, Unix.gettimeofday () -. t0) :: !samples;
                  List.iter2
                    (fun reply want ->
                      match reply with
                      | Ok j ->
                          if Util.Json.to_string (strip_cached j) = want then incr ok
                          else incr wrong
                      | Error _ -> incr failed)
                    replies want
              | Error _ ->
                  samples := (name, Unix.gettimeofday () -. t0) :: !samples;
                  failed := !failed + List.length items)
            batches
        done;
        (!ok, !wrong, !failed, Service.Client.retries client, !samples))
  in
  let runners = Array.init clients (fun k -> Domain.spawn (client_run k)) in
  let results = Array.map Domain.join runners in
  (* Drain the router through its front door, then the workers. *)
  let stopper = Service.Client.create front in
  (try ignore (Service.Client.request stopper ~timeout_s:30.0 "shutdown" [])
   with Util.Diagnostics.Failed _ -> Service.Server.request_stop router_server);
  Service.Client.close stopper;
  Domain.join router_domain;
  Service.Router.drain_fleet router;
  List.iter
    (fun (_, server, domain) ->
      Service.Server.request_stop server;
      Domain.join domain)
    [ w0; w1 ];
  Util.Failpoint.clear ();
  let ok = Array.fold_left (fun a (x, _, _, _, _) -> a + x) 0 results in
  let wrong = Array.fold_left (fun a (_, x, _, _, _) -> a + x) 0 results in
  let failed = Array.fold_left (fun a (_, _, x, _, _) -> a + x) 0 results in
  let retries = Array.fold_left (fun a (_, _, _, x, _) -> a + x) 0 results in
  let samples = Array.fold_left (fun a (_, _, _, _, xs) -> xs @ a) [] results in
  let hits, moves = Service.Router.affinity router in
  let failovers = Service.Router.failovers router in
  let items_per_round = List.fold_left (fun a (_, items) -> a + List.length items) 0 batches in
  let items = clients * rounds * items_per_round in
  Printf.printf
    "  %d batch items: %d ok, %d wrong, %d failed; %d retries, affinity %d/%d, %d failovers\n%!"
    items ok wrong failed retries hits (hits + moves) failovers;
  fleet_summary :=
    Some
      (Printf.sprintf
         "{\"clients\": %d, \"workers\": 2, \"batches\": %d, \"items\": %d, \"ok\": %d, \
          \"wrong\": %d, \"failed\": %d, \"retries\": %d, \"affinity_hits\": %d, \
          \"affinity_moves\": %d, \"failovers\": %d, \"failpoints\": \"%s\", \
          \"latency\": [%s]}"
         clients
         (clients * rounds * List.length batches)
         items ok wrong failed retries hits moves failovers (json_escape spec)
         (String.concat ", " (latency_fields samples)));
  if wrong > 0 then failwith "bench: fleet soak produced wrong results (byte-identity violated)";
  Printf.printf "  every successful batch item byte-identical to the offline pipeline\n\n%!"

(* ---------- parallel fault-simulation kernels --------------------- *)

(* Wall-time the non-dropping simulation of a sizeable pattern set on
   the largest requested suite circuit, serial vs. the jobs-sized pool
   (stem-first) vs. single-domain stem-first, check the three agree
   word for word, and leave the numbers in BENCH_adi.json. *)

(* BENCH_adi.json is a history: {"schema": "bench_adi/v2", "entries":
   [...]} with one single-line object per bench run, newest last, so
   successive runs can be compared (jq '.entries[-1]' for the latest).
   A pre-history v1 file (one bare object) is folded in as the first
   entry rather than discarded. *)

let read_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let existing_entries path =
  match read_file path with
  | None -> []
  | Some content ->
      let lines = List.map String.trim (String.split_on_char '\n' content) in
      let drop_comma l =
        let n = String.length l in
        if n > 0 && l.[n - 1] = ',' then String.sub l 0 (n - 1) else l
      in
      if List.mem "\"schema\": \"bench_adi/v2\"," lines then
        (* Each entry is one line between "entries": [ and its ]. *)
        let rec skip = function
          | [] -> []
          | "\"entries\": [" :: tl -> collect tl []
          | _ :: tl -> skip tl
        and collect lines acc =
          match lines with
          | [] | "]" :: _ -> List.rev acc
          | l :: tl -> collect tl (drop_comma l :: acc)
        in
        skip lines
      else if List.exists (fun l -> l = "\"schema\": \"bench_adi/v1\",") lines then
        (* Minify the whole v1 object onto one line and keep it. *)
        [ String.concat " " (List.filter (fun l -> l <> "") lines) ]
      else []

let iso8601_utc () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

(* Per-phase wall-clock aggregates from the current tracer (when
   --metrics/--trace is on): the "span:<phase>" histograms. *)
let phase_fields () =
  let tr = Util.Trace.current () in
  if not (Util.Trace.enabled tr) then []
  else
    let prefix = Util.Metrics.span_prefix in
    let plen = String.length prefix in
    List.filter_map
      (fun h ->
        let name = Util.Metrics.histogram_name h in
        if String.length name > plen && String.sub name 0 plen = prefix then
          Some
            (Printf.sprintf "{\"phase\": \"%s\", \"calls\": %d, \"total_s\": %.6f}"
               (json_escape (String.sub name plen (String.length name - plen)))
               (Util.Metrics.observations h) (Util.Metrics.total h))
        else None)
      (Util.Metrics.histograms (Util.Trace.metrics tr))

let write_bench_json ~circuit ~collapse ~kernels ~speedup ~atpg =
  let b = Buffer.create 1024 in
  let bf fmt = Printf.bprintf b fmt in
  bf "{\"timestamp\": \"%s\", \"seed\": %d, \"jobs\": %d, \"circuit\": \"%s\", "
    (iso8601_utc ()) (seed ()) (jobs ()) (json_escape circuit);
  (let st = collapse.Collapse.stages in
   bf
     "\"collapse\": {\"full\": %d, \"equivalence\": %d, \"prime\": %d, \
      \"checkpoints\": %d, \"probes\": %d, \"equivalence_ratio\": %.3f, \
      \"dominance_ratio\": %.3f}, "
     st.Collapse.full st.Collapse.equivalence st.Collapse.prime st.Collapse.checkpoints
     st.Collapse.probes (Collapse.collapse_ratio collapse)
     (Collapse.dominance_ratio collapse));
  bf "\"kernels\": [";
  List.iteri
    (fun i (name, kjobs, wall_s) ->
      bf "%s{\"name\": \"%s\", \"circuit\": \"%s\", \"jobs\": %d, \"wall_s\": %.6f}"
        (if i = 0 then "" else ", ")
        (json_escape name) (json_escape circuit) kjobs wall_s)
    kernels;
  bf "], \"speedup_detection_sets\": %.3f, " speedup;
  (let serial_s, atpg_s, window, committed, wasted = atpg in
   bf
     "\"atpg\": {\"serial_s\": %.6f, \"atpg_s\": %.6f, \"window\": %d, \"jobs\": %d, \
      \"speedup\": %.3f, \"spec_committed\": %d, \"spec_wasted\": %d}, "
     serial_s atpg_s window (jobs ())
     (if atpg_s > 0.0 then serial_s /. atpg_s else 0.0)
     committed wasted);
  bf "\"experiments\": [";
  List.iteri
    (fun i (name, wall_s) ->
      bf "%s{\"name\": \"%s\", \"wall_s\": %.3f}"
        (if i = 0 then "" else ", ")
        (json_escape name) wall_s)
    (List.rev !experiment_times);
  bf "]";
  (match !soak_summary with
  | None -> ()
  | Some soak -> bf ", \"soak\": %s" soak);
  (match !fleet_summary with
  | None -> ()
  | Some fleet -> bf ", \"fleet\": %s" fleet);
  (match !diagnosis_summary with
  | None -> ()
  | Some diagnosis -> bf ", \"diagnosis\": %s" diagnosis);
  (match !scaling_summary with
  | None -> ()
  | Some scaling -> bf ", \"scaling\": %s" scaling);
  (match phase_fields () with
  | [] -> ()
  | phases -> bf ", \"phases\": [%s]" (String.concat ", " phases));
  bf "}";
  let entries =
    Bench_history.prune ~keep:!history_keep
      (existing_entries "BENCH_adi.json" @ [ Buffer.contents b ])
  in
  let oc = open_out "BENCH_adi.json" in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"bench_adi/v2\",\n";
  pf "  \"entries\": [\n";
  let n = List.length entries in
  List.iteri (fun i e -> pf "    %s%s\n" e (if i = n - 1 then "" else ",")) entries;
  pf "  ]\n";
  pf "}\n"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ---------- diagnosis study --------------------------------------- *)

(* Tests-to-unique-diagnosis under the three fault orders the paper
   compares: per ATPG order, build the full-response dictionary over
   its generated tests and compare the generation order against the
   greedy diagnostic reordering.  The diagnostic order must not lose
   to the generation order; the numbers land in BENCH_adi.json as a
   "diagnosis" object. *)

let run_diagnosis_stage () =
  let name = if !full then "syn1196" else "syn208" in
  let c = Suite.build_by_name name in
  let setup = Pipeline.prepare !bench_cfg c in
  Printf.printf "Diagnosis study (%s, %d collapsed faults):\n%!" name
    (Fault_list.count setup.Pipeline.faults);
  let rows =
    List.map
      (fun ord ->
        let r = Pipeline.run_order setup ord in
        let tests = r.Pipeline.engine.Engine.tests in
        let dict, build_s =
          time (fun () ->
              Diagnosis.Dictionary.build ~jobs:(jobs ()) setup.Pipeline.faults tests)
        in
        let nt = Diagnosis.Dictionary.test_count dict in
        let mean_gen = Diagnosis.Select.mean_tests_to_unique dict (Array.init nt Fun.id) in
        let mean_diag = Diagnosis.Select.mean_tests_to_unique dict (Diagnosis.Select.order dict) in
        Printf.printf
          "  %-5s %4d tests, %4d classes, build %.3f s; mean tests-to-unique: \
           generation %.2f, diagnostic %.2f\n%!"
          (Ordering.to_string ord) nt
          (Diagnosis.Dictionary.resolution dict)
          build_s mean_gen mean_diag;
        if mean_diag > mean_gen +. 1e-9 then
          failwith "bench: diagnostic order lost to the generation order";
        Printf.sprintf
          "{\"order\": \"%s\", \"tests\": %d, \"classes\": %d, \"build_s\": %.6f, \
           \"mean_tests_to_unique_generation\": %.4f, \
           \"mean_tests_to_unique_diagnostic\": %.4f}"
          (json_escape (Ordering.to_string ord))
          nt
          (Diagnosis.Dictionary.resolution dict)
          build_s mean_gen mean_diag)
      [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0 ]
  in
  diagnosis_summary :=
    Some
      (Printf.sprintf "{\"circuit\": \"%s\", \"faults\": %d, \"orders\": [%s]}"
         (json_escape name)
         (Fault_list.count setup.Pipeline.faults)
         (String.concat ", " rows));
  Printf.printf "  diagnostic order never lost to the generation order\n\n%!"

(* ---------- scaling study ----------------------------------------- *)

(* Wide-block throughput at scale: a generated circuit far past the
   suite sizes (>= 10^5 gates by default, --gen overrides the spec), a
   spread fault sample, and a jobs x block-width grid of non-dropping
   detection_sets runs — every grid point asserted word-identical to
   the event kernel at width 1 — followed by a time-budgeted
   speculative ATPG burst.  The numbers, and the circuit's structural
   digest (the determinism witness), land in the BENCH_adi.json entry
   as a "scaling" object; CI's perf gate checks its schema. *)

let run_scaling_stage () =
  let spec = Generate.spec_of_string !scaling_gen in
  let c, build_s = time (fun () -> Generate.build spec) in
  let digest = Generate.digest c in
  Printf.printf
    "Scaling study (%s):\n\
    \  %d gates, %d inputs, %d outputs, depth %d (built in %.2f s)\n\
    \  digest %s\n%!"
    (Generate.spec_to_string spec) (Circuit.gate_count c)
    (Array.length (Circuit.inputs c))
    (Array.length (Circuit.outputs c))
    (Circuit.depth c) build_s digest;
  (* An evenly spread fault sample keeps the grid tractable at
     10^5..10^6 gates while still spanning the whole netlist. *)
  let full_fl = Fault_list.full c in
  let nfull = Fault_list.count full_fl in
  let nsample = min 1000 nfull in
  let fl = Fault_list.sub full_fl (Array.init nsample (fun i -> i * (nfull / nsample))) in
  let rng = Util.Rng.create (seed ()) in
  let pats =
    Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:1024
  in
  Printf.printf "  %d sampled faults (of %d), %d patterns\n%!" nsample nfull
    (Patterns.count pats);
  let reference, t_ref = time (fun () -> Faultsim.detection_sets fl pats) in
  Printf.printf "  detection_sets  event jobs=1 w=1  %8.3f s (reference)\n%!" t_ref;
  let identical sets =
    let ok = ref true in
    Array.iteri (fun i d -> if not (Util.Bitvec.equal d sets.(i)) then ok := false) reference;
    !ok
  in
  let grid =
    List.concat_map
      (fun j ->
        List.map
          (fun w ->
            let sets, t =
              time (fun () ->
                  Faultsim.detection_sets ~jobs:j ~kernel:Faultsim.Stem ~block_width:w
                    fl pats)
            in
            Printf.printf "  detection_sets  stem  jobs=%d w=%d  %8.3f s\n%!" j w t;
            if not (identical sets) then
              failwith "bench: scaling grid point differs from the event/width-1 reference";
            Printf.sprintf
              "{\"jobs\": %d, \"block_width\": %d, \"wall_s\": %.6f, \"identical\": true}"
              j w t)
          [ 1; 2; 4; 8 ])
      (List.sort_uniq compare [ 1; jobs () ])
  in
  (* Speculative ATPG burst under a whole-run wall-clock budget: how
     far the engine gets on the sampled universe in a fixed slice. *)
  let budget_s = 5.0 in
  let ecfg = Run_config.engine_config !bench_cfg in
  let window = max 2 ecfg.Engine.window in
  let config =
    { ecfg with Engine.jobs = jobs (); window; time_budget_s = Some budget_s }
  in
  let r, t_atpg =
    time (fun () -> Engine.run ~config fl ~order:(Array.init nsample Fun.id))
  in
  let ntests = Patterns.count r.Engine.tests in
  let detected =
    Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 r.Engine.detected_by
  in
  Printf.printf
    "  atpg  jobs=%d window=%d budget=%.0fs: %d tests, %d/%d detected in %.3f s%s\n\n%!"
    (jobs ()) window budget_s ntests detected nsample t_atpg
    (if r.Engine.interrupted then " (budget expired)" else "");
  scaling_summary :=
    Some
      (Printf.sprintf
         "{\"spec\": \"%s\", \"digest\": \"%s\", \"gates\": %d, \"inputs\": %d, \
          \"outputs\": %d, \"depth\": %d, \"build_s\": %.6f, \"faults_sampled\": %d, \
          \"faults_full\": %d, \"patterns\": %d, \"reference_wall_s\": %.6f, \
          \"grid\": [%s], \"atpg\": {\"budget_s\": %.1f, \"jobs\": %d, \"window\": %d, \
          \"wall_s\": %.6f, \"tests\": %d, \"detected\": %d, \"interrupted\": %s, \
          \"tests_per_s\": %.2f}}"
         (json_escape (Generate.spec_to_string spec))
         (json_escape digest) (Circuit.gate_count c)
         (Array.length (Circuit.inputs c))
         (Array.length (Circuit.outputs c))
         (Circuit.depth c) build_s nsample nfull (Patterns.count pats) t_ref
         (String.concat ", " grid) budget_s (jobs ()) window t_atpg ntests detected
         (if r.Engine.interrupted then "true" else "false")
         (if t_atpg > 0.0 then float_of_int ntests /. t_atpg else 0.0))

let run_perf_kernels () =
  let name = if !full then "syn5378" else "syn1196" in
  let jobs = jobs () in
  let c = Suite.build_by_name name in
  let collapse = Collapse.equivalence (Fault_list.full c) in
  let fl = collapse.Collapse.representatives in
  let rng = Util.Rng.create (seed ()) in
  let pats =
    Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:4096
  in
  let st = collapse.Collapse.stages in
  Printf.printf "Parallel fault-simulation kernels (%s, %d faults, %d patterns):\n%!" name
    (Fault_list.count fl) (Patterns.count pats);
  Printf.printf
    "  collapse: %d full -> %d classes -> %d prime (dominance), %d probe sites\n%!"
    st.Collapse.full st.Collapse.equivalence st.Collapse.prime st.Collapse.probes;
  let serial, t_serial = time (fun () -> Faultsim.detection_sets fl pats) in
  Printf.printf "  detection_sets  jobs=1            %8.3f s\n%!" t_serial;
  let pooled, t_pooled = time (fun () -> Faultsim.detection_sets ~jobs fl pats) in
  Printf.printf "  detection_sets  jobs=%-4d         %8.3f s\n%!" jobs t_pooled;
  let stem, t_stem = time (fun () -> Faultsim.detection_sets_stem_first fl pats) in
  Printf.printf "  detection_sets  stem-first (1 dom)%8.3f s\n%!" t_stem;
  let cpt, t_cpt =
    time (fun () -> Faultsim.detection_sets ~kernel:Faultsim.Cpt fl pats)
  in
  Printf.printf "  detection_sets  cpt (1 dom)       %8.3f s\n%!" t_cpt;
  (* Wide superblocks: the same kernels over 4- and 8-word lanes
     (256 / 512 patterns per pass), still single-domain. *)
  let stem_w4, t_stem_w4 =
    time (fun () -> Faultsim.detection_sets ~kernel:Faultsim.Stem ~block_width:4 fl pats)
  in
  Printf.printf "  detection_sets  stem w4 (1 dom)   %8.3f s\n%!" t_stem_w4;
  let stem_w8, t_stem_w8 =
    time (fun () -> Faultsim.detection_sets ~kernel:Faultsim.Stem ~block_width:8 fl pats)
  in
  Printf.printf "  detection_sets  stem w8 (1 dom)   %8.3f s\n%!" t_stem_w8;
  let event_w8, t_event_w8 =
    time (fun () -> Faultsim.detection_sets ~block_width:8 fl pats)
  in
  Printf.printf "  detection_sets  event w8 (1 dom)  %8.3f s\n%!" t_event_w8;
  (* The dominance row times the target-list reduction: the prime
     (dominance-surviving) universe under the probe kernel. *)
  let _, t_dom =
    time (fun () ->
        Faultsim.detection_sets ~kernel:Faultsim.Stem collapse.Collapse.prime pats)
  in
  Printf.printf "  detection_sets  dominance (prime) %8.3f s\n%!" t_dom;
  Array.iteri
    (fun i d ->
      if
        (not (Util.Bitvec.equal d pooled.(i)))
        || (not (Util.Bitvec.equal d stem.(i)))
        || (not (Util.Bitvec.equal d cpt.(i)))
        || (not (Util.Bitvec.equal d stem_w4.(i)))
        || (not (Util.Bitvec.equal d stem_w8.(i)))
        || not (Util.Bitvec.equal d event_w8.(i))
      then failwith "bench: kernel/width detection sets differ from serial")
    serial;
  let speedup = t_serial /. t_pooled in
  Printf.printf
    "  all seven agree word-for-word; speedup (jobs=%d vs serial): %.2fx, \
     (stem w8 vs stem w1): %.2fx\n\n%!"
    jobs speedup
    (if t_stem_w8 > 0.0 then t_stem /. t_stem_w8 else 0.0);
  (* ATPG phase: serial engine vs speculative lookahead, same prepared
     setup, byte-identical test sets by construction (checked). *)
  let cfg = !bench_cfg in
  let setup = Pipeline.prepare cfg c in
  let ecfg = Run_config.engine_config cfg in
  let window = max 2 ecfg.Engine.window in
  let serial_cfg = { ecfg with Engine.jobs = 1; window = 1 } in
  let spec_cfg = { ecfg with Engine.jobs = jobs; window } in
  Printf.printf "ATPG phase (%s, order %s):\n%!" name
    (Ordering.to_string cfg.Run_config.order);
  let r_serial, t_atpg_serial =
    time (fun () -> Pipeline.run_order_with serial_cfg setup cfg.Run_config.order)
  in
  Printf.printf "  atpg  jobs=1 window=1          %8.3f s\n%!" t_atpg_serial;
  let r_spec, t_atpg_spec =
    time (fun () -> Pipeline.run_order_with spec_cfg setup cfg.Run_config.order)
  in
  Printf.printf "  atpg  jobs=%-3d window=%-4d     %8.3f s\n%!" jobs window t_atpg_spec;
  let es = r_serial.Pipeline.engine and ep = r_spec.Pipeline.engine in
  if
    Patterns.to_strings es.Engine.tests <> Patterns.to_strings ep.Engine.tests
    || es.Engine.detected_by <> ep.Engine.detected_by
    || es.Engine.untestable <> ep.Engine.untestable
    || es.Engine.aborted <> ep.Engine.aborted
  then failwith "bench: speculative ATPG differs from the serial run";
  Printf.printf
    "  byte-identical tests; speedup %.2fx; %d committed, %d wasted (%.0f%% waste)\n\n%!"
    (if t_atpg_spec > 0.0 then t_atpg_serial /. t_atpg_spec else 0.0)
    ep.Engine.spec_committed ep.Engine.spec_wasted
    (if ep.Engine.spec_dispatched > 0 then
       100.0 *. float_of_int ep.Engine.spec_wasted /. float_of_int ep.Engine.spec_dispatched
     else 0.0);
  write_bench_json ~circuit:name ~collapse
    ~kernels:
      [
        ("detection_sets/serial", 1, t_serial);
        (Printf.sprintf "detection_sets/jobs%d" jobs, jobs, t_pooled);
        ("detection_sets/stem_first", 1, t_stem);
        ("detection_sets/cpt", 1, t_cpt);
        ("detection_sets/stem_w4", 1, t_stem_w4);
        ("detection_sets/stem_w8", 1, t_stem_w8);
        ("detection_sets/event_w8", 1, t_event_w8);
        ("detection_sets/dominance", 1, t_dom);
        ("atpg/serial", 1, t_atpg_serial);
        (Printf.sprintf "atpg/spec_w%d" window, jobs, t_atpg_spec);
      ]
    ~speedup
    ~atpg:(t_atpg_serial, t_atpg_spec, window, ep.Engine.spec_committed, ep.Engine.spec_wasted);
  Printf.printf "(appended to BENCH_adi.json)\n\n%!"

(* ---------- Bechamel micro-benchmarks ----------------------------- *)

open Bechamel
open Toolkit

(* Kernels, one per paper artefact: the dominant computation each
   table/figure adds on top of the previous ones. *)

let lion_faults = lazy (Collapse.collapsed (Kiss.to_combinational (Kiss.lion ())))

let small_setup =
  lazy
    (let c = Suite.build_by_name "syn208" in
     Pipeline.prepare (Run_config.with_seed 1 Run_config.default) c)

let bench_table1 =
  (* Table 1: exhaustive non-dropping fault simulation + ndet on lion. *)
  Test.make ~name:"table1/lion-exhaustive-adi"
    (Staged.stage (fun () ->
         let fl = Lazy.force lion_faults in
         let u = Patterns.exhaustive ~n_inputs:4 in
         ignore (Adi_index.compute fl u)))

let bench_table4 =
  (* Table 4: ADI computation (non-dropping sim over U) on syn208. *)
  Test.make ~name:"table4/syn208-adi-compute"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         ignore
           (Adi_index.compute setup.Pipeline.faults setup.Pipeline.selection.Adi_index.u)))

let bench_table5 =
  (* Table 5: one full ATPG run under F0dynm on syn208. *)
  Test.make ~name:"table5/syn208-atpg-0dynm"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         ignore (Pipeline.run_order setup Ordering.Dynm0)))

let bench_table6 =
  (* Table 6's overhead: computing the dynamic order itself. *)
  Test.make ~name:"table6/syn208-dynamic-order"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         ignore (Ordering.order Ordering.Dynm setup.Pipeline.adi)))

let bench_table7 =
  (* Table 7: coverage curve + AVE from a finished run. *)
  let run =
    lazy
      (let setup = Lazy.force small_setup in
       (setup, Pipeline.run_order setup Ordering.Dynm))
  in
  Test.make ~name:"table7/syn208-ave"
    (Staged.stage (fun () ->
         let setup, r = Lazy.force run in
         ignore
           (Coverage.ave (Coverage.of_engine_result setup.Pipeline.faults r.Pipeline.engine))))

let bench_figure1 =
  (* Figure 1: curve points + ASCII rendering. *)
  let run =
    lazy
      (let setup = Lazy.force small_setup in
       (setup, Pipeline.run_order setup Ordering.Dynm))
  in
  Test.make ~name:"figure1/syn208-plot"
    (Staged.stage (fun () ->
         let setup, r = Lazy.force run in
         let curve = Coverage.of_engine_result setup.Pipeline.faults r.Pipeline.engine in
         ignore
           (Util.Plot.render ~x_label:"tests" ~y_label:"fc"
              [ { Util.Plot.marker = 'd'; points = Coverage.points curve; label = "dynm" } ])))

let bench_ablation_static =
  (* Ablation A1 kernel: the static sort-based order. *)
  Test.make ~name:"ablation-static/syn208-decr-order"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         ignore (Ordering.order Ordering.Decr setup.Pipeline.adi)))

let bench_ablation_u =
  (* Ablation A2 kernel: the U-selection dropping simulation. *)
  Test.make ~name:"ablation-u/syn208-select-u"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         let rng = Util.Rng.create 1 in
         ignore (Adi_index.select_u ~pool:2000 rng setup.Pipeline.faults)))

let bench_ablation_ndetection =
  (* Ablation A3 kernel: capped (n-detection) detection sets. *)
  Test.make ~name:"ablation-ndetection/syn208-capped-sim"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         ignore
           (Adi_index.compute_n_detection ~n:4 setup.Pipeline.faults
              setup.Pipeline.selection.Adi_index.u)))

let bench_ablation_estimator =
  (* Ablation A4 kernel: the average-estimator reduction. *)
  Test.make ~name:"ablation-estimator/syn208-avg-adi"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         ignore
           (Adi_index.compute ~estimator:Adi_index.Average setup.Pipeline.faults
              setup.Pipeline.selection.Adi_index.u)))

let bench_ablation_reorder =
  (* Ablation A5 kernel: greedy a-posteriori reordering. *)
  let data =
    lazy
      (let setup = Lazy.force small_setup in
       let r = Pipeline.run_order setup Ordering.Orig in
       (setup.Pipeline.faults, r.Pipeline.engine.Engine.tests))
  in
  Test.make ~name:"ablation-reorder/syn208-greedy"
    (Staged.stage (fun () ->
         let faults, tests = Lazy.force data in
         ignore (Reorder.greedy faults tests)))

let bench_ablation_independence =
  (* Ablation A6 kernel: FFR independent-set construction + ordering. *)
  Test.make ~name:"ablation-independence/syn208-order"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         ignore (Independence.order setup.Pipeline.adi)))

let bench_ablation_engines =
  (* Ablation A7 kernel: one D-algorithm run on a representative fault. *)
  let data =
    lazy
      (let c = Suite.build_by_name "c17" in
       (c, Scoap.compute c, Collapse.collapsed c))
  in
  Test.make ~name:"ablation-engines/c17-dalg"
    (Staged.stage (fun () ->
         let c, scoap, fl = Lazy.force data in
         for fi = 0 to Fault_list.count fl - 1 do
           ignore (Dalg.generate c scoap (Fault_list.get fl fi))
         done))

let bench_ablation_compaction =
  (* Ablation A8 kernel: one dynamic-compaction run on syn208. *)
  Test.make ~name:"ablation-compaction/syn208-dyncomp"
    (Staged.stage (fun () ->
         let setup = Lazy.force small_setup in
         let order = Ordering.order Ordering.Orig setup.Pipeline.adi in
         ignore (Engine.run_compacting setup.Pipeline.faults ~order)))

let bench_ablation_truncation =
  (* Ablation A9 kernel: curve construction + truncation sweep. *)
  let data =
    lazy
      (let setup = Lazy.force small_setup in
       let r = Pipeline.run_order setup Ordering.Dynm in
       Coverage.of_engine_result setup.Pipeline.faults r.Pipeline.engine)
  in
  Test.make ~name:"ablation-truncation/syn208-sweep"
    (Staged.stage (fun () ->
         let curve = Lazy.force data in
         let k = Coverage.tests curve in
         for p = 1 to 100 do
           ignore (Coverage.truncated_coverage curve ~keep:(k * p / 100))
         done))

let micro_tests =
  [
    bench_table1; bench_table4; bench_table5; bench_table6; bench_table7;
    bench_figure1; bench_ablation_static; bench_ablation_u;
    bench_ablation_ndetection; bench_ablation_estimator; bench_ablation_reorder;
    bench_ablation_independence; bench_ablation_engines; bench_ablation_compaction;
    bench_ablation_truncation;
  ]

let run_micro_benches () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock):";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] when ns >= 1e6 ->
              Printf.printf "  %-36s %10.3f ms/run\n%!" name (ns /. 1e6)
          | Some [ ns ] -> Printf.printf "  %-36s %10.1f ns/run\n%!" name ns
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        analysed)
    micro_tests

let () =
  match
    parse_args ();
    Harness.with_observability !bench_cfg (fun () ->
        if !run_reports then print_reports ();
        if !run_soak then run_soak_stage ();
        if !run_fleet then run_fleet_stage ();
        if !run_diagnosis then run_diagnosis_stage ();
        if !run_scaling then run_scaling_stage ();
        if !run_perf then run_perf_kernels ();
        if !run_micro then run_micro_benches ())
  with
  | (), report -> Option.iter print_string report
  | exception Util.Diagnostics.Failed d ->
      prerr_endline (Util.Diagnostics.to_string d);
      exit 2
