(* Tests for the netlist layer: builder invariants, levelisation,
   .bench round-trips, the full-scan transform, rewriting, and
   validation. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

module B = Circuit.Builder

let tiny () =
  (* y = NAND(a, b); z = NOT(y) observed. *)
  let b = B.create ~title:"tiny" () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let y = B.gate b Gate.Nand "y" [ a; bb ] in
  let z = B.gate b Gate.Not "z" [ y ] in
  B.mark_output b z;
  B.finish b

(* --- builder ------------------------------------------------------ *)

let builder_basics () =
  let c = tiny () in
  check Alcotest.int "nodes" 4 (Circuit.node_count c);
  check Alcotest.int "gate count" 2 (Circuit.gate_count c);
  check Alcotest.int "pins" 3 (Circuit.pin_count c);
  check Alcotest.int "depth" 2 (Circuit.depth c);
  check Alcotest.(array int) "inputs" [| 0; 1 |] (Circuit.inputs c);
  check Alcotest.(array int) "outputs" [| 3 |] (Circuit.outputs c);
  check Alcotest.bool "z is output" true (Circuit.is_output c 3);
  check Alcotest.bool "y is not" false (Circuit.is_output c 2);
  check Alcotest.(option int) "find y" (Some 2) (Circuit.find c "y");
  check Alcotest.(option int) "find nothing" None (Circuit.find c "nope")

let builder_duplicate_name () =
  let b = B.create () in
  let _ = B.input b "a" in
  Alcotest.check_raises "dup" (Invalid_argument "Circuit.Builder: duplicate node name \"a\"")
    (fun () -> ignore (B.input b "a"))

let builder_bad_arity () =
  let b = B.create () in
  let a = B.input b "a" in
  check Alcotest.bool "not with 2 fanins rejected" true
    (try
       ignore (B.gate b Gate.Not "n" [ a; a ]);
       false
     with Invalid_argument _ -> true)

let builder_no_outputs () =
  let b = B.create () in
  let _ = B.input b "a" in
  check Alcotest.bool "finish without outputs rejected" true
    (try
       ignore (B.finish b);
       false
     with Invalid_argument _ -> true)

let builder_unconnected_dff () =
  let b = B.create () in
  let d = B.dff b "q" in
  B.mark_output b d;
  check Alcotest.bool "finish with dangling DFF rejected" true
    (try
       ignore (B.finish b);
       false
     with Invalid_argument _ -> true)

let builder_dff_feedback () =
  (* q = DFF(NOT q): a toggle loop must build fine. *)
  let b = B.create () in
  let q = B.dff b "q" in
  let n = B.gate b Gate.Not "n" [ q ] in
  B.connect_dff b q ~fanin:n;
  B.mark_output b n;
  let c = B.finish b in
  check Alcotest.bool "has state" true (Circuit.has_state c)

let fanouts_deduped () =
  (* One signal used on two pins of the same gate is one fanout entry. *)
  let b = B.create () in
  let a = B.input b "a" in
  let g = B.gate b Gate.And "g" [ a; a ] in
  B.mark_output b g;
  let c = B.finish b in
  check Alcotest.int "single fanout entry" 1 (Circuit.fanout_count c 0)

(* --- random circuits: structural properties ----------------------- *)

let random_circuit_gen =
  QCheck.Gen.(
    int_range 2 6 >>= fun pis ->
    int_range 3 40 >>= fun gates ->
    int_bound 10_000 >>= fun seed ->
    return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ())))

let arb_circuit = QCheck.make random_circuit_gen

let topo_respects_fanins =
  QCheck.Test.make ~name:"topological order puts fanins first" ~count:100 arb_circuit
  @@ fun c ->
  let pos = Array.make (Circuit.node_count c) 0 in
  Array.iteri (fun p n -> pos.(n) <- p) (Circuit.topological_order c);
  let ok = ref true in
  Circuit.iter_nodes c (fun n ->
      Array.iter (fun f -> if pos.(f) >= pos.(n) then ok := false) (Circuit.fanins c n));
  !ok

let levels_strictly_increase =
  QCheck.Test.make ~name:"level(node) > level(fanin)" ~count:100 arb_circuit
  @@ fun c ->
  let ok = ref true in
  Circuit.iter_nodes c (fun n ->
      Array.iter
        (fun f -> if Circuit.level c f >= Circuit.level c n then ok := false)
        (Circuit.fanins c n));
  !ok

let fanout_inverse_of_fanin =
  QCheck.Test.make ~name:"fanouts are the inverse of fanins" ~count:100 arb_circuit
  @@ fun c ->
  let ok = ref true in
  Circuit.iter_nodes c (fun n ->
      Array.iter
        (fun s ->
          if not (Array.exists (fun f -> f = n) (Circuit.fanins c s)) then ok := false)
        (Circuit.fanouts c n));
  !ok

let generator_no_dead_nodes =
  QCheck.Test.make ~name:"generated circuits have no dead logic" ~count:50 arb_circuit
  @@ fun c -> Array.length (Validate.dead_nodes c) = 0

(* --- fanout-free regions ------------------------------------------- *)

let ffr_stems_are_stems =
  QCheck.Test.make ~name:"Ffr stems are outputs or fanout <> 1" ~count:100 arb_circuit
  @@ fun c ->
  let ffr = Ffr.compute c in
  let ok = ref true in
  Circuit.iter_nodes c (fun n ->
      let stemness = Circuit.is_output c n || Circuit.fanout_count c n <> 1 in
      if Ffr.is_stem ffr n <> stemness then ok := false);
  Array.for_all (Ffr.is_stem ffr) (Ffr.stems ffr) && !ok

let ffr_walk_reaches_stem =
  QCheck.Test.make ~name:"unique-fanout walk from any node lands on its stem" ~count:100
    arb_circuit
  @@ fun c ->
  let ffr = Ffr.compute c in
  let ok = ref true in
  Circuit.iter_nodes c (fun n ->
      let x = ref n in
      while not (Ffr.is_stem ffr !x) do
        x := (Circuit.fanouts c !x).(0)
      done;
      if Ffr.stem_of ffr n <> !x then ok := false);
  !ok

let ffr_regions_partition =
  QCheck.Test.make ~name:"Ffr regions partition the nodes" ~count:100 arb_circuit
  @@ fun c ->
  let ffr = Ffr.compute c in
  let seen = Array.make (Circuit.node_count c) false in
  Array.iter
    (fun s ->
      Array.iter
        (fun n ->
          if seen.(n) || Ffr.stem_of ffr n <> s then failwith "overlap";
          seen.(n) <- true)
        (Ffr.members ffr s))
    (Ffr.stems ffr);
  Array.length (Ffr.stems ffr) = Ffr.region_count ffr
  && Array.for_all Fun.id seen
  && Ffr.average_size ffr
     = float_of_int (Circuit.node_count c) /. float_of_int (Ffr.region_count ffr)

(* --- post-dominators ---------------------------------------------- *)

(* Reconvergent diamond: a fans out to l and r, both feeding m.  Every
   output-bound path from a funnels through m. *)
let diamond () =
  let b = B.create ~title:"diamond" () in
  let a = B.input b "a" in
  let l = B.gate b Gate.Not "l" [ a ] in
  let r = B.gate b Gate.Buf "r" [ a ] in
  let m = B.gate b Gate.And "m" [ l; r ] in
  B.mark_output b m;
  (B.finish b, a, l, r, m)

let dominators_diamond () =
  let c, a, l, r, m = diamond () in
  let d = Dominators.compute c in
  check Alcotest.bool "ipdom a = m" true (Dominators.ipdom d a = Dominators.Node m);
  check Alcotest.bool "ipdom l = m" true (Dominators.ipdom d l = Dominators.Node m);
  check Alcotest.bool "ipdom r = m" true (Dominators.ipdom d r = Dominators.Node m);
  check Alcotest.bool "ipdom m = sink" true (Dominators.ipdom d m = Dominators.Sink);
  check Alcotest.(list int) "chain a" [ m ] (Dominators.chain d a)

let dominators_two_outputs () =
  (* A stem feeding two separate outputs shares no later node: its
     only post-dominator is the virtual sink. *)
  let b = B.create () in
  let a = B.input b "a" in
  let x = B.gate b Gate.Not "x" [ a ] in
  let y = B.gate b Gate.Buf "y" [ a ] in
  B.mark_output b x;
  B.mark_output b y;
  let c = B.finish b in
  let d = Dominators.compute c in
  check Alcotest.bool "ipdom a = sink" true (Dominators.ipdom d a = Dominators.Sink);
  check Alcotest.bool "a reaches" true (Dominators.reaches_output d a)

let dominators_dead_and_chain () =
  let b = B.create () in
  let a = B.input b "a" in
  let dead = B.gate b Gate.Not "dead" [ a ] in
  let x = B.gate b Gate.Buf "x" [ a ] in
  let y = B.gate b Gate.Not "y" [ x ] in
  B.mark_output b y;
  let c = B.finish b in
  ignore dead;
  let d = Dominators.compute c in
  let dead = Option.get (Circuit.find c "dead") in
  check Alcotest.bool "dead node is dead" true (Dominators.is_dead d dead);
  check Alcotest.bool "dead does not reach" false (Dominators.reaches_output d dead);
  (* [a] also feeds the dead branch, but dead successors constrain
     nothing: the chain follows the live path. *)
  check Alcotest.(list int) "chain a" [ x; y ] (Dominators.chain d a);
  check Alcotest.(list int) "chain x" [ y ] (Dominators.chain d x)

(* The defining property, checked structurally on random circuits:
   a dead node reaches no output; otherwise the immediate
   post-dominator (when it is a real node) is a cut — removing it
   disconnects the node from every output — and sits strictly
   downstream (higher level), which the truncated-propagation kernel
   relies on. *)
let dominators_cut_property =
  QCheck.Test.make ~name:"ipdom is an output cut at a higher level" ~count:80 arb_circuit
  @@ fun c ->
  let d = Dominators.compute c in
  let reaches ?(avoid = -1) v =
    let seen = Array.make (Circuit.node_count c) false in
    let rec go v =
      v <> avoid && not seen.(v)
      && begin
           seen.(v) <- true;
           Circuit.is_output c v || Array.exists go (Circuit.fanouts c v)
         end
    in
    go v
  in
  let ok = ref true in
  Circuit.iter_nodes c (fun v ->
      match Dominators.ipdom d v with
      | Dominators.Dead -> if reaches v then ok := false
      | Dominators.Sink -> if not (reaches v) then ok := false
      | Dominators.Node m ->
          if
            (not (reaches v))
            || reaches ~avoid:m v
            || Circuit.level c m <= Circuit.level c v
          then ok := false);
  !ok

let generator_deterministic () =
  let a = Generate.random ~seed:11 ~name:"x" (Generate.profile ~pis:5 ~gates:30 ()) in
  let b = Generate.random ~seed:11 ~name:"x" (Generate.profile ~pis:5 ~gates:30 ()) in
  check Alcotest.string "same bench text" (Bench_format.to_string a) (Bench_format.to_string b)

(* --- bench format ------------------------------------------------- *)

let structurally_equal a b =
  Circuit.node_count a = Circuit.node_count b
  && Array.for_all2 ( = ) (Circuit.inputs a) (Circuit.inputs b)
  && Array.for_all2 ( = ) (Circuit.outputs a) (Circuit.outputs b)
  &&
  let ok = ref true in
  Circuit.iter_nodes a (fun i ->
      if
        Circuit.kind a i <> Circuit.kind b i
        || Circuit.name a i <> Circuit.name b i
        || Circuit.fanins a i <> Circuit.fanins b i
      then ok := false);
  !ok

let bench_roundtrip =
  QCheck.Test.make ~name:".bench round-trip is structurally identity" ~count:50 arb_circuit
  @@ fun c -> structurally_equal c (Bench_format.parse_string (Bench_format.to_string c))

let bench_parses_forward_refs () =
  let c =
    Bench_format.parse_string
      "INPUT(a)\nOUTPUT(z)\nz = AND(y, a)\ny = NOT(a)\n"
  in
  check Alcotest.int "nodes" 3 (Circuit.node_count c);
  check Alcotest.bool "z output" true (Circuit.is_output c (Circuit.find_exn c "z"))

let bench_rejects_undefined () =
  check Alcotest.bool "undefined signal" true
    (try
       ignore (Bench_format.parse_string "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n");
       false
     with Util.Diagnostics.Failed _ -> true)

let bench_rejects_cycle () =
  check Alcotest.bool "combinational cycle" true
    (try
       ignore
         (Bench_format.parse_string "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n");
       false
     with Util.Diagnostics.Failed _ -> true)

let bench_dff_loop () =
  let c =
    Bench_format.parse_string "INPUT(a)\nOUTPUT(o)\nq = DFF(n)\nn = XOR(a, q)\no = BUF(n)\n"
  in
  check Alcotest.bool "sequential" true (Circuit.has_state c)

let bench_comments_and_blanks () =
  let c = Bench_format.parse_string "# hi\n\nINPUT(a)\n  OUTPUT(a)  # trailing\n" in
  check Alcotest.int "single node" 1 (Circuit.node_count c)

(* --- typed parse errors and recovery ------------------------------ *)

module D = Util.Diagnostics

(* Run a strict parse that must fail and hand back the diagnostic. *)
let diag_of f =
  match f () with
  | exception D.Failed d -> d
  | _ -> Alcotest.fail "expected Diagnostics.Failed"

let bench_diag_unknown_gate () =
  let d =
    diag_of (fun () ->
        Bench_format.parse_string ~file:"t.bench" "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n")
  in
  check Alcotest.bool "code" true (d.D.code = D.Unknown_gate);
  check Alcotest.int "line" 3 d.D.loc.D.line;
  check Alcotest.(option string) "file label" (Some "t.bench") d.D.loc.D.file

let bench_diag_syntax_line () =
  let d =
    diag_of (fun () -> Bench_format.parse_string "INPUT(a)\nOUTPUT(z)\nz = AND(a\n")
  in
  check Alcotest.bool "syntax code" true (d.D.code = D.Syntax);
  check Alcotest.int "line of truncated stmt" 3 d.D.loc.D.line

let bench_diag_duplicate () =
  let d =
    diag_of (fun () ->
        Bench_format.parse_string "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n")
  in
  check Alcotest.bool "duplicate code" true (d.D.code = D.Duplicate_def);
  check Alcotest.int "line of second def" 4 d.D.loc.D.line

let bench_diag_empty () =
  let d = diag_of (fun () -> Bench_format.parse_string "# only a comment\n") in
  check Alcotest.bool "empty code" true (d.D.code = D.Empty_input)

let bench_recover_salvages () =
  let c, diags =
    Bench_format.parse_string_recover ~file:"t.bench"
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(w)\nz = FROB(a, b)\nz = AND(a, b)\nw = OR(a, ghost)\n"
  in
  let c = Option.get c in
  (* The FROB def is skipped, so the later duplicate "z" survives as the
     only definition; "w" is dropped with its undefined fanin. *)
  check Alcotest.int "salvaged gates" 3 (Circuit.node_count c);
  check Alcotest.bool "z is an AND" true
    (Circuit.kind c (Circuit.find_exn c "z") = Gate.And);
  check Alcotest.int "three diagnostics" 3 (List.length diags);
  check Alcotest.(list int) "source lines" [ 5; 7; 4 ]
    (List.map (fun d -> d.D.loc.D.line) diags);
  check Alcotest.bool "all carry the file label" true
    (List.for_all (fun d -> d.D.loc.D.file = Some "t.bench") diags)

let bench_recover_cycle_dropped () =
  let c, diags =
    Bench_format.parse_string_recover
      "INPUT(a)\nOUTPUT(z)\nOUTPUT(x)\nz = NOT(a)\nx = AND(a, y)\ny = AND(a, x)\n"
  in
  let c = Option.get c in
  check Alcotest.bool "cycle members gone" true (Circuit.find c "x" = None);
  check Alcotest.bool "clean part kept" true (Circuit.find c "z" <> None);
  check Alcotest.bool "cycle reported" true
    (List.exists (fun d -> d.D.code = D.Combinational_cycle) diags)

let bench_recover_nothing_left () =
  let c, diags = Bench_format.parse_string_recover "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n" in
  check Alcotest.bool "no circuit" true (c = None);
  check Alcotest.bool "reports why" true (List.exists (fun d -> d.D.code = D.No_outputs) diags)

let blif_diag_bad_cover () =
  let d =
    diag_of (fun () ->
        Blif_format.parse_string ~file:"t.blif"
          ".model m\n.inputs a b\n.outputs y\n.names a b y\n1X 1\n.end\n")
  in
  check Alcotest.bool "cover code" true (d.D.code = D.Bad_cover);
  check Alcotest.int "row line" 5 d.D.loc.D.line

let blif_diag_bad_directive () =
  let d =
    diag_of (fun () ->
        Blif_format.parse_string ".model m\n.inputs a\n.outputs y\n.frobnicate\n.names a y\n1 1\n.end\n")
  in
  check Alcotest.bool "directive code" true (d.D.code = D.Bad_directive);
  check Alcotest.int "directive line" 4 d.D.loc.D.line

let blif_recover_salvages () =
  let c, diags =
    Blif_format.parse_string_recover
      ".model m\n.inputs a b\n.outputs y z\n.names a b y\n1X 1\n11 1\n.names a z\n1 1\n.end\n"
  in
  let c = Option.get c in
  (* The bad row is skipped but the rest of that cover still parses;
     both outputs survive. *)
  check Alcotest.bool "y survives" true (Circuit.find c "y" <> None);
  check Alcotest.bool "z survives" true (Circuit.find c "z" <> None);
  check Alcotest.int "one diagnostic" 1 (List.length diags);
  check Alcotest.bool "it is the bad row" true
    ((List.hd diags).D.code = D.Bad_cover && (List.hd diags).D.loc.D.line = 5)

let blif_recover_drops_dependents () =
  let c, diags =
    Blif_format.parse_string_recover
      ".model m\n.inputs a\n.outputs y z\n.names ghost t\n1 1\n.names t y\n1 1\n.names a z\n1 1\n.end\n"
  in
  let c = Option.get c in
  (* t depends on an undefined signal, y depends on t: both drop, z stays. *)
  check Alcotest.bool "y dropped" true (Circuit.find c "y" = None);
  check Alcotest.bool "z kept" true (Circuit.find c "z" <> None);
  check Alcotest.bool "undefined-ref reported" true
    (List.exists (fun d -> d.D.code = D.Undefined_ref) diags)

(* --- scan --------------------------------------------------------- *)

let scan_converts_dffs () =
  let seq =
    Bench_format.parse_string "INPUT(a)\nOUTPUT(o)\nq = DFF(n)\nn = XOR(a, q)\no = AND(n, a)\n"
  in
  let comb, mapping = Scan.combinational seq in
  check Alcotest.bool "combinational" true (Scan.is_combinational comb);
  check Alcotest.int "one ppi" 1 (Array.length mapping.Scan.ppis);
  check Alcotest.int "one ppo" 1 (Array.length mapping.Scan.ppos);
  check Alcotest.int "two inputs now" 2 (Array.length (Circuit.inputs comb));
  (* The PPO drives the same function the DFF data pin saw: XOR(a, q). *)
  let _, ppo = mapping.Scan.ppos.(0) in
  check Alcotest.bool "ppo is the XOR" true (Circuit.kind comb ppo = Gate.Xor)

let scan_noop_on_combinational () =
  let c = Library.c17 () in
  let c', mapping = Scan.combinational c in
  check Alcotest.int "no ppis" 0 (Array.length mapping.Scan.ppis);
  check Alcotest.bool "structure preserved" true (structurally_equal c c')

(* --- rewrite ------------------------------------------------------ *)

(* Functional equivalence of two circuits with equal PI lists, checked
   on random vectors. *)
let equivalent_on_random ?(vectors = 256) a b =
  let n_inputs = Array.length (Circuit.inputs a) in
  if n_inputs <> Array.length (Circuit.inputs b) then false
  else begin
    let rng = Util.Rng.create 99 in
    let ok = ref true in
    for _ = 1 to vectors do
      let vec = Array.init n_inputs (fun _ -> Util.Rng.bool rng) in
      let va = Goodsim.eval_scalar a vec and vb = Goodsim.eval_scalar b vec in
      let oa = Array.map (fun o -> va.(o)) (Circuit.outputs a) in
      let ob = Array.map (fun o -> vb.(o)) (Circuit.outputs b) in
      (* Output merging may shrink the PO list; compare the common
         prefix values by name instead. *)
      ignore oa;
      ignore ob;
      Array.iter
        (fun o ->
          let name = Circuit.name a o in
          match Circuit.find b name with
          | Some o' -> if va.(o) <> vb.(o') then ok := false
          | None -> ())
        (Circuit.outputs a)
    done;
    !ok
  end

let simplify_preserves_function =
  QCheck.Test.make ~name:"Rewrite.simplify preserves the function" ~count:50 arb_circuit
  @@ fun c -> equivalent_on_random c (Rewrite.simplify c)

let rewrite_constant_folds () =
  (* AND(a, 0) must fold to constant 0 on the output. *)
  let b = B.create () in
  let a = B.input b "a" in
  let z = B.const b "zero" false in
  let g = B.gate b Gate.And "g" [ a; z ] in
  B.mark_output b g;
  let c = B.finish b in
  let c' = Rewrite.simplify c in
  let o = (Circuit.outputs c').(0) in
  check Alcotest.bool "output folded to const0" true (Circuit.kind c' o = Gate.Const0)

let rewrite_node_const () =
  (* Forcing the NAND output of tiny() to 1 turns z into constant 0. *)
  let c = tiny () in
  let y = Circuit.find_exn c "y" in
  let c' = Rewrite.apply c [ Rewrite.Node_const (y, true) ] in
  let o = (Circuit.outputs c').(0) in
  check Alcotest.bool "z constant" true (Circuit.kind c' o = Gate.Const0)

let rewrite_pin_const () =
  (* Tying one NAND pin to 1 leaves z = a. *)
  let c = tiny () in
  let y = Circuit.find_exn c "y" in
  let c' = Rewrite.apply c [ Rewrite.Pin_const { gate = y; pin = 1; value = true } ] in
  (* z = NOT (NAND (a, 1)) = a *)
  let vec_true = Goodsim.eval_scalar c' [| true; false |] in
  let vec_false = Goodsim.eval_scalar c' [| false; true |] in
  let o = (Circuit.outputs c').(0) in
  check Alcotest.bool "z follows a (true)" true vec_true.(o);
  check Alcotest.bool "z follows a (false)" false vec_false.(o)

let rewrite_xor_cancellation () =
  (* XOR(a, a) folds to 0. *)
  let b = B.create () in
  let a = B.input b "a" in
  let g = B.gate b Gate.Xor "g" [ a; a ] in
  B.mark_output b g;
  let c' = Rewrite.simplify (B.finish b) in
  let o = (Circuit.outputs c').(0) in
  check Alcotest.bool "xor(a,a) = 0" true (Circuit.kind c' o = Gate.Const0)

let rewrite_prunes_dead =
  QCheck.Test.make ~name:"rewrite output has no dead logic" ~count:50 arb_circuit
  @@ fun c -> Array.length (Validate.dead_nodes (Rewrite.simplify c)) = 0

(* --- BLIF ---------------------------------------------------------- *)

let blif_roundtrip_functional =
  QCheck.Test.make ~name:"BLIF round-trip preserves the function" ~count:40 arb_circuit
  @@ fun c -> equivalent_on_random c (Blif_format.parse_string (Blif_format.to_string c))

let blif_parses_basics () =
  let c =
    Blif_format.parse_string
      ".model demo\n.inputs a b c\n.outputs y z\n.names a b t\n11 1\n.names t c y\n1- 1\n-1 1\n.names a z\n0 1\n.end\n"
  in
  check Alcotest.int "inputs" 3 (Array.length (Circuit.inputs c));
  check Alcotest.int "outputs" 2 (Array.length (Circuit.outputs c));
  (* y = (a & b) | c; z = ~a *)
  let eval v =
    let r = Goodsim.eval_scalar c v in
    (r.(Circuit.find_exn c "y"), r.(Circuit.find_exn c "z"))
  in
  check Alcotest.(pair bool bool) "110" (true, false) (eval [| true; true; false |]);
  check Alcotest.(pair bool bool) "001" (true, true) (eval [| false; false; true |]);
  check Alcotest.(pair bool bool) "100" (false, false) (eval [| true; false; false |])

let blif_offset_cover () =
  (* Off-set rows: y = NOT (a & b). *)
  let c =
    Blif_format.parse_string ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
  in
  let eval v = (Goodsim.eval_scalar c v).(Circuit.find_exn c "y") in
  check Alcotest.bool "11 -> 0" false (eval [| true; true |]);
  check Alcotest.bool "10 -> 1" true (eval [| true; false |])

let blif_latch_roundtrip () =
  let seq =
    Bench_format.parse_string "INPUT(a)\nOUTPUT(o)\nq = DFF(n)\nn = XOR(a, q)\no = AND(n, a)\n"
  in
  let rt = Blif_format.parse_string (Blif_format.to_string seq) in
  check Alcotest.bool "still sequential" true (Circuit.has_state rt);
  (* Functional equivalence of the scanned views. *)
  let a, _ = Scan.combinational seq in
  let b, _ = Scan.combinational rt in
  check Alcotest.bool "scanned views equivalent" true (equivalent_on_random a b)

let blif_rejects_mixed_cover () =
  check Alcotest.bool "mixed rows rejected" true
    (try
       ignore
         (Blif_format.parse_string
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n");
       false
     with Util.Diagnostics.Failed _ -> true)

let blif_constants () =
  let c =
    Blif_format.parse_string
      ".model m\n.inputs a\n.outputs k0 k1\n.names k0\n.names k1\n1\n.end\n"
  in
  let v = Goodsim.eval_scalar c [| false |] in
  check Alcotest.bool "k0" false v.(Circuit.find_exn c "k0");
  check Alcotest.bool "k1" true v.(Circuit.find_exn c "k1")


(* --- Verilog writer ------------------------------------------------ *)

let verilog_writer_smoke () =
  let v = Verilog_format.to_string (Library.c17 ()) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  check Alcotest.bool "module header" true (contains v "module c17");
  check Alcotest.bool "nand primitive" true (contains v "nand (");
  check Alcotest.bool "endmodule" true (contains v "endmodule");
  (* one primitive instance per gate *)
  let count_nand =
    let n = ref 0 in
    String.iteri
      (fun i _ ->
        if i + 5 <= String.length v && String.sub v i 5 = "nand " then incr n)
      v;
    !n
  in
  check Alcotest.int "six nands" 6 count_nand

let verilog_sequential_has_clock () =
  let seq =
    Bench_format.parse_string "INPUT(a)\nOUTPUT(o)\nq = DFF(n)\nn = XOR(a, q)\no = BUF(n)\n"
  in
  let v = Verilog_format.to_string seq in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  check Alcotest.bool "clk port" true (contains v "input clk;");
  check Alcotest.bool "register" true (contains v "reg q;");
  check Alcotest.bool "clocked assign" true (contains v "always @(posedge clk) q <= n;")

(* --- validate / stats --------------------------------------------- *)

let validate_flags_dead () =
  let b = B.create () in
  let a = B.input b "a" in
  let _dead = B.gate b Gate.Not "dead" [ a ] in
  let live = B.gate b Gate.Buf "live" [ a ] in
  B.mark_output b live;
  let c = B.finish b in
  let dead = Validate.dead_nodes c in
  check Alcotest.int "one dead node" 1 (Array.length dead);
  check Alcotest.string "it is 'dead'" "dead" (Circuit.name c dead.(0))

let stats_counts () =
  let s = Stats.of_circuit (Library.c17 ()) in
  check Alcotest.int "pis" 5 s.Stats.pis;
  check Alcotest.int "pos" 2 s.Stats.pos;
  check Alcotest.int "gates" 6 s.Stats.gates;
  check Alcotest.int "pins" 12 s.Stats.pins;
  check Alcotest.int "depth" 3 s.Stats.depth

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "netlist"
    [
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick builder_basics;
          Alcotest.test_case "duplicate name" `Quick builder_duplicate_name;
          Alcotest.test_case "bad arity" `Quick builder_bad_arity;
          Alcotest.test_case "no outputs" `Quick builder_no_outputs;
          Alcotest.test_case "unconnected dff" `Quick builder_unconnected_dff;
          Alcotest.test_case "dff feedback" `Quick builder_dff_feedback;
          Alcotest.test_case "fanout dedup" `Quick fanouts_deduped;
        ] );
      ( "structure",
        [
          qtest topo_respects_fanins;
          qtest levels_strictly_increase;
          qtest fanout_inverse_of_fanin;
          qtest generator_no_dead_nodes;
          Alcotest.test_case "generator deterministic" `Quick generator_deterministic;
        ] );
      ( "ffr",
        [
          qtest ffr_stems_are_stems;
          qtest ffr_walk_reaches_stem;
          qtest ffr_regions_partition;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick dominators_diamond;
          Alcotest.test_case "two outputs" `Quick dominators_two_outputs;
          Alcotest.test_case "dead node and chain" `Quick dominators_dead_and_chain;
          qtest dominators_cut_property;
        ] );
      ( "bench",
        [
          qtest bench_roundtrip;
          Alcotest.test_case "forward refs" `Quick bench_parses_forward_refs;
          Alcotest.test_case "undefined signal" `Quick bench_rejects_undefined;
          Alcotest.test_case "cycle" `Quick bench_rejects_cycle;
          Alcotest.test_case "dff loop" `Quick bench_dff_loop;
          Alcotest.test_case "comments" `Quick bench_comments_and_blanks;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "unknown gate carries line" `Quick bench_diag_unknown_gate;
          Alcotest.test_case "truncated stmt is syntax" `Quick bench_diag_syntax_line;
          Alcotest.test_case "duplicate def" `Quick bench_diag_duplicate;
          Alcotest.test_case "empty input" `Quick bench_diag_empty;
          Alcotest.test_case "bench recover salvages" `Quick bench_recover_salvages;
          Alcotest.test_case "bench recover drops cycles" `Quick bench_recover_cycle_dropped;
          Alcotest.test_case "bench recover can give up" `Quick bench_recover_nothing_left;
          Alcotest.test_case "blif bad cover row" `Quick blif_diag_bad_cover;
          Alcotest.test_case "blif bad directive" `Quick blif_diag_bad_directive;
          Alcotest.test_case "blif recover salvages" `Quick blif_recover_salvages;
          Alcotest.test_case "blif recover drops dependents" `Quick blif_recover_drops_dependents;
        ] );
      ( "blif",
        [
          qtest blif_roundtrip_functional;
          Alcotest.test_case "basics" `Quick blif_parses_basics;
          Alcotest.test_case "off-set cover" `Quick blif_offset_cover;
          Alcotest.test_case "latch roundtrip" `Quick blif_latch_roundtrip;
          Alcotest.test_case "mixed cover rejected" `Quick blif_rejects_mixed_cover;
          Alcotest.test_case "constants" `Quick blif_constants;
        ] );
      ( "scan",
        [
          Alcotest.test_case "converts dffs" `Quick scan_converts_dffs;
          Alcotest.test_case "noop on combinational" `Quick scan_noop_on_combinational;
        ] );
      ( "rewrite",
        [
          qtest simplify_preserves_function;
          qtest rewrite_prunes_dead;
          Alcotest.test_case "constant folds" `Quick rewrite_constant_folds;
          Alcotest.test_case "node const" `Quick rewrite_node_const;
          Alcotest.test_case "pin const" `Quick rewrite_pin_const;
          Alcotest.test_case "xor cancellation" `Quick rewrite_xor_cancellation;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "c17" `Quick verilog_writer_smoke;
          Alcotest.test_case "sequential" `Quick verilog_sequential_has_clock;
        ] );
      ( "validate",
        [
          Alcotest.test_case "dead nodes" `Quick validate_flags_dead;
          Alcotest.test_case "stats" `Quick stats_counts;
        ] );
    ]
