(* Tests for the logic evaluators: Boolean (reference), Logic_word
   (bit-parallel), Ternary and Five (D-calculus).  The key properties:
   every evaluator agrees with Boolean on binary values, and the
   partial evaluators are conservative refinements. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let logic_kinds =
  [ Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let kind_gen = QCheck.Gen.oneofl logic_kinds

let args_gen k =
  let open QCheck.Gen in
  match k with
  | Gate.Buf | Gate.Not -> array_size (return 1) bool
  | _ -> array_size (int_range 1 5) bool

(* --- Boolean ------------------------------------------------------ *)

let bool_truth_tables () =
  let t = true and f = false in
  check Alcotest.bool "and" t (Boolean.eval Gate.And [ t; t; t ]);
  check Alcotest.bool "and f" f (Boolean.eval Gate.And [ t; f; t ]);
  check Alcotest.bool "nand" f (Boolean.eval Gate.Nand [ t; t ]);
  check Alcotest.bool "or" t (Boolean.eval Gate.Or [ f; t ]);
  check Alcotest.bool "nor" t (Boolean.eval Gate.Nor [ f; f ]);
  check Alcotest.bool "xor odd" t (Boolean.eval Gate.Xor [ t; f; f ]);
  check Alcotest.bool "xor even" f (Boolean.eval Gate.Xor [ t; t ]);
  check Alcotest.bool "xnor" t (Boolean.eval Gate.Xnor [ t; t ]);
  check Alcotest.bool "not" f (Boolean.eval Gate.Not [ t ]);
  check Alcotest.bool "buf" t (Boolean.eval Gate.Buf [ t ]);
  check Alcotest.bool "const0" f (Boolean.eval Gate.Const0 []);
  check Alcotest.bool "const1" t (Boolean.eval Gate.Const1 [])

let bool_arity () =
  Alcotest.check_raises "not/2" (Invalid_argument "Boolean.eval: NOT with 2 fanins") (fun () ->
      ignore (Boolean.eval Gate.Not [ true; false ]))

(* --- Logic_word vs Boolean ---------------------------------------- *)

let word_matches_boolean =
  QCheck.Test.make ~name:"Logic_word.eval lane-wise equals Boolean.eval" ~count:500
    (QCheck.make QCheck.Gen.(kind_gen >>= fun k -> pair (return k) (args_gen k)))
  @@ fun (k, args) ->
  (* Spread each boolean arg into a word with distinct lane patterns so
     all 64 lanes exercise different combinations. *)
  let n = Array.length args in
  let words =
    Array.init n (fun i ->
        (* lane j of arg i = args.(i) XOR (bit i of j) *)
        let w = ref 0L in
        for j = 0 to 63 do
          let v = args.(i) <> ((j lsr i) land 1 = 1) in
          if v then w := Int64.logor !w (Int64.shift_left 1L j)
        done;
        !w)
  in
  let out = Logic_word.eval k words in
  let ok = ref true in
  for j = 0 to 63 do
    let lane_args = Array.init n (fun i -> args.(i) <> ((j lsr i) land 1 = 1)) in
    let expect = Boolean.eval_array k lane_args in
    let got = Int64.logand (Int64.shift_right_logical out j) 1L = 1L in
    if expect <> got then ok := false
  done;
  !ok

let word_eval_fanins_matches_eval =
  QCheck.Test.make ~name:"Logic_word.eval_fanins = eval on gathered values" ~count:200
    (QCheck.make QCheck.Gen.(kind_gen >>= fun k -> pair (return k) (args_gen k)))
  @@ fun (k, args) ->
  let values = Array.map (fun b -> if b then -1L else 0L) args in
  let fanins = Array.init (Array.length args) Fun.id in
  Logic_word.eval_fanins k ~values fanins = Logic_word.eval k values

(* --- Ternary ------------------------------------------------------ *)

let tern_of_bools = Array.map Ternary.of_bool

let ternary_matches_boolean =
  QCheck.Test.make ~name:"Ternary.eval on binary inputs equals Boolean.eval" ~count:500
    (QCheck.make QCheck.Gen.(kind_gen >>= fun k -> pair (return k) (args_gen k)))
  @@ fun (k, args) ->
  Ternary.eval_array k (tern_of_bools args) = Ternary.of_bool (Boolean.eval_array k args)

(* X-monotonicity: replacing an X input by any binary value never
   contradicts a binary output computed with the X present. *)
let ternary_monotone =
  QCheck.Test.make ~name:"Ternary.eval is monotone in X refinement" ~count:500
    (QCheck.make
       QCheck.Gen.(
         kind_gen >>= fun k ->
         args_gen k >>= fun args ->
         int_range 0 (Array.length args - 1) >>= fun xpos -> return (k, args, xpos)))
  @@ fun (k, args, xpos) ->
  let with_x = tern_of_bools args in
  with_x.(xpos) <- Ternary.X;
  let vx = Ternary.eval_array k with_x in
  match vx with
  | Ternary.X -> true
  | _ ->
      (* Binary result with X present must match both refinements. *)
      let r0 = Array.copy with_x and r1 = Array.copy with_x in
      r0.(xpos) <- Ternary.Zero;
      r1.(xpos) <- Ternary.One;
      Ternary.eval_array k r0 = vx && Ternary.eval_array k r1 = vx

let ternary_chars () =
  check Alcotest.bool "roundtrip 0" true (Ternary.of_char '0' = Some Ternary.Zero);
  check Alcotest.bool "roundtrip x" true (Ternary.of_char 'X' = Some Ternary.X);
  check Alcotest.bool "bad char" true (Ternary.of_char '?' = None);
  check Alcotest.bool "to_bool X" true (Ternary.to_bool Ternary.X = None)

(* --- Five --------------------------------------------------------- *)

let five_all = [ Five.Zero; Five.One; Five.D; Five.Dbar; Five.X ]

let five_pair_roundtrip () =
  List.iter
    (fun v -> check Alcotest.bool "of_pair (to_pair v) = v" true (Five.of_pair (Five.to_pair v) = v))
    five_all

let five_inv () =
  check Alcotest.bool "inv D" true (Five.inv Five.D = Five.Dbar);
  check Alcotest.bool "inv Dbar" true (Five.inv Five.Dbar = Five.D);
  check Alcotest.bool "inv X" true (Five.inv Five.X = Five.X)

let five_gen = QCheck.Gen.oneofl five_all

(* Five-valued evaluation is exactly component-wise ternary evaluation
   on the (good, faulty) pair. *)
let five_componentwise =
  QCheck.Test.make ~name:"Five.eval = Ternary.eval on both machine components" ~count:500
    (QCheck.make
       QCheck.Gen.(
         kind_gen >>= fun k ->
         (match k with
         | Gate.Buf | Gate.Not -> array_size (return 1) five_gen
         | _ -> array_size (int_range 1 5) five_gen)
         >>= fun args -> return (k, args)))
  @@ fun (k, args) ->
  let v = Five.eval_array k args in
  let good = Ternary.eval_array k (Array.map Five.good args) in
  let faulty = Ternary.eval_array k (Array.map Five.faulty args) in
  v = Five.of_pair (good, faulty)

let five_error_propagation () =
  (* AND(D, 1) = D; AND(D, 0) = 0; AND(D, Dbar) = 0. *)
  check Alcotest.bool "D & 1" true (Five.eval Gate.And [ Five.D; Five.One ] = Five.D);
  check Alcotest.bool "D & 0" true (Five.eval Gate.And [ Five.D; Five.Zero ] = Five.Zero);
  check Alcotest.bool "D & D'" true (Five.eval Gate.And [ Five.D; Five.Dbar ] = Five.Zero);
  check Alcotest.bool "D ^ D" true (Five.eval Gate.Xor [ Five.D; Five.D ] = Five.Zero);
  check Alcotest.bool "D ^ 0" true (Five.eval Gate.Xor [ Five.D; Five.Zero ] = Five.D);
  check Alcotest.bool "is_error D" true (Five.is_error Five.D);
  check Alcotest.bool "is_error 1" false (Five.is_error Five.One)

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "logic"
    [
      ( "boolean",
        [
          Alcotest.test_case "truth tables" `Quick bool_truth_tables;
          Alcotest.test_case "arity" `Quick bool_arity;
        ] );
      ("word", [ qtest word_matches_boolean; qtest word_eval_fanins_matches_eval ]);
      ( "ternary",
        [
          Alcotest.test_case "char conversions" `Quick ternary_chars;
          qtest ternary_matches_boolean;
          qtest ternary_monotone;
        ] );
      ( "five",
        [
          Alcotest.test_case "pair roundtrip" `Quick five_pair_roundtrip;
          Alcotest.test_case "inversion" `Quick five_inv;
          Alcotest.test_case "error propagation" `Quick five_error_propagation;
          qtest five_componentwise;
        ] );
    ]
