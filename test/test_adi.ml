(* Tests for the paper's contribution: the accidental detection index
   and the six fault orders.  The dynamic heap-based ordering is checked
   against a literal O(n^2) transcription of the paper's procedure. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

module Bitvec = Util.Bitvec
module Rng = Util.Rng

let small_circuit_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun pis ->
    int_range 3 25 >>= fun gates ->
    int_bound 10_000 >>= fun seed ->
    return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ())))

let arb_circuit = QCheck.make small_circuit_gen

let setup_of c n_patterns seed =
  let fl = Collapse.collapsed c in
  let rng = Rng.create seed in
  let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:n_patterns in
  (fl, Adi_index.compute fl pats)

(* --- ADI definition ----------------------------------------------- *)

let adi_matches_definition =
  QCheck.Test.make ~name:"ADI(f) = min ndet(u) over D(f); 0 when undetected" ~count:30
    arb_circuit
  @@ fun c ->
  let _, adi = setup_of c 60 13 in
  let ok = ref true in
  Array.iteri
    (fun fi d ->
      let expect =
        let m = ref max_int in
        Bitvec.iter_set d (fun u -> m := min !m adi.Adi_index.ndet.(u));
        if !m = max_int then 0 else !m
      in
      if adi.Adi_index.adi.(fi) <> expect then ok := false)
    adi.Adi_index.dsets;
  !ok

let adi_at_least_one =
  QCheck.Test.make ~name:"ADI(f) >= 1 for detected faults (f counts itself)" ~count:30
    arb_circuit
  @@ fun c ->
  let _, adi = setup_of c 60 17 in
  Array.for_all2
    (fun d a -> if Bitvec.is_zero d then a = 0 else a >= 1)
    adi.Adi_index.dsets adi.Adi_index.adi

let adi_against_oracle () =
  (* Full cross-check on lion with the exhaustive vector set and the
     naive simulator. *)
  let c = Kiss.to_combinational (Kiss.lion ()) in
  let fl = Collapse.collapsed c in
  let pats = Patterns.exhaustive ~n_inputs:4 in
  let adi = Adi_index.compute fl pats in
  let table = Refsim.detection_table fl pats in
  let ndet_oracle =
    Array.init 16 (fun u ->
        Array.fold_left (fun acc row -> if row.(u) then acc + 1 else acc) 0 table)
  in
  check Alcotest.(array int) "ndet" ndet_oracle adi.Adi_index.ndet;
  Array.iteri
    (fun fi row ->
      let expect =
        Array.to_list (Array.mapi (fun u d -> if d then ndet_oracle.(u) else max_int) row)
        |> List.fold_left min max_int
        |> fun m -> if m = max_int then 0 else m
      in
      check Alcotest.int "adi" expect adi.Adi_index.adi.(fi))
    table

let adi_min_max_ratio () =
  let c = Kiss.to_combinational (Kiss.lion ()) in
  let fl = Collapse.collapsed c in
  let adi = Adi_index.compute fl (Patterns.exhaustive ~n_inputs:4) in
  match Adi_index.min_max adi with
  | None -> Alcotest.fail "lion faults must be detected by exhaustive U"
  | Some (lo, hi) ->
      check Alcotest.bool "min <= max" true (lo <= hi);
      check Alcotest.bool "min >= 1" true (lo >= 1);
      (match Adi_index.ratio adi with
      | Some r -> check (Alcotest.float 0.0001) "ratio" (float_of_int hi /. float_of_int lo) r
      | None -> Alcotest.fail "ratio must exist")

(* --- select_u ------------------------------------------------------ *)

let select_u_prefix_reaches_target =
  QCheck.Test.make ~name:"select_u prefix covers >= 90% of pool-detected faults" ~count:15
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let rng = Rng.create 19 in
  let sel = Adi_index.select_u ~pool:512 rng fl in
  let { Faultsim.detected; _ } = Faultsim.with_dropping fl sel.Adi_index.u in
  float_of_int detected
  >= 0.9 *. float_of_int sel.Adi_index.pool_detected -. 1.0

(* --- orderings ----------------------------------------------------- *)

let all_orders_are_permutations =
  QCheck.Test.make ~name:"every order is a permutation of the fault indices" ~count:20
    arb_circuit
  @@ fun c ->
  let fl, adi = setup_of c 60 23 in
  let n = Fault_list.count fl in
  List.for_all
    (fun kind ->
      let o = Ordering.order kind adi in
      let seen = Array.make n false in
      Array.length o = n
      && Array.for_all
           (fun i ->
             if i < 0 || i >= n || seen.(i) then false
             else begin
               seen.(i) <- true;
               true
             end)
           o)
    Ordering.all

let orig_is_identity =
  QCheck.Test.make ~name:"Forig is the identity order" ~count:10 arb_circuit
  @@ fun c ->
  let fl, adi = setup_of c 60 29 in
  Ordering.order Ordering.Orig adi = Array.init (Fault_list.count fl) Fun.id

let decr_is_sorted =
  QCheck.Test.make ~name:"Fdecr: detected faults by non-increasing ADI, zeros last" ~count:20
    arb_circuit
  @@ fun c ->
  let _, adi = setup_of c 60 31 in
  let o = Ordering.order Ordering.Decr adi in
  let vals = Array.map (fun fi -> adi.Adi_index.adi.(fi)) o in
  (* Once a zero appears, everything after is zero; before that the
     sequence is non-increasing. *)
  let rec split i = if i < Array.length vals && vals.(i) > 0 then split (i + 1) else i in
  let z = split 0 in
  let ok = ref true in
  for i = 1 to z - 1 do
    if vals.(i) > vals.(i - 1) then ok := false
  done;
  for i = z to Array.length vals - 1 do
    if vals.(i) <> 0 then ok := false
  done;
  !ok

let incr0_reverses_decr =
  QCheck.Test.make ~name:"Fincr0 is non-decreasing on detected faults, zeros last" ~count:20
    arb_circuit
  @@ fun c ->
  let _, adi = setup_of c 60 37 in
  let o = Ordering.order Ordering.Incr0 adi in
  let vals = Array.map (fun fi -> adi.Adi_index.adi.(fi)) o in
  let rec split i = if i < Array.length vals && vals.(i) > 0 then split (i + 1) else i in
  let z = split 0 in
  let ok = ref true in
  for i = 1 to z - 1 do
    if vals.(i) < vals.(i - 1) then ok := false
  done;
  for i = z to Array.length vals - 1 do
    if vals.(i) <> 0 then ok := false
  done;
  !ok

let zeros_first_variants =
  QCheck.Test.make ~name:"F0decr/F0dynm put exactly the zero-ADI faults first" ~count:20
    arb_circuit
  @@ fun c ->
  let _, adi = setup_of c 60 41 in
  let n_zero =
    Array.fold_left (fun acc a -> if a = 0 then acc + 1 else acc) 0 adi.Adi_index.adi
  in
  List.for_all
    (fun kind ->
      let o = Ordering.order kind adi in
      let ok = ref true in
      Array.iteri
        (fun pos fi ->
          let z = adi.Adi_index.adi.(fi) = 0 in
          if pos < n_zero then begin
            if not z then ok := false
          end
          else if z then ok := false)
        o;
      !ok)
    [ Ordering.Decr0; Ordering.Dynm0 ]

let dynamic_matches_reference =
  QCheck.Test.make ~name:"heap-based dynamic order = literal paper procedure" ~count:25
    arb_circuit
  @@ fun c ->
  let _, adi = setup_of c 50 43 in
  Ordering.order Ordering.Dynm adi = Ordering.dynamic_reference ~zero_first:false adi
  && Ordering.order Ordering.Dynm0 adi = Ordering.dynamic_reference ~zero_first:true adi

let dynamic_first_pick_is_max_adi =
  QCheck.Test.make ~name:"Fdynm starts with a maximum-ADI fault" ~count:20 arb_circuit
  @@ fun c ->
  let _, adi = setup_of c 60 47 in
  let o = Ordering.order Ordering.Dynm adi in
  let max_adi = Array.fold_left max 0 adi.Adi_index.adi in
  max_adi = 0 || adi.Adi_index.adi.(o.(0)) = max_adi

let ordering_names_roundtrip () =
  List.iter
    (fun k ->
      check Alcotest.bool "roundtrip" true (Ordering.of_string (Ordering.to_string k) = Some k))
    Ordering.all;
  check Alcotest.bool "unknown" true (Ordering.of_string "bogus" = None)

(* --- pipeline ------------------------------------------------------ *)

let pipeline_on_lion () =
  let c = Kiss.to_combinational (Kiss.lion ()) in
  let setup = Pipeline.prepare (Run_config.with_seed 1 Run_config.default) c in
  let runs = List.map (fun k -> (k, Pipeline.run_order setup k)) Ordering.all in
  List.iter
    (fun (k, r) ->
      check (Alcotest.float 0.0001)
        (Printf.sprintf "lion coverage 1.0 under %s" (Ordering.to_string k))
        1.0
        (Engine.coverage setup.Pipeline.faults r.Pipeline.engine))
    runs;
  (* All orders must detect the same fault universe, possibly with
     different test counts. *)
  let counts = List.map (fun (_, r) -> Pipeline.test_count r) runs in
  List.iter (fun n -> check Alcotest.bool "nonempty" true (n > 0)) counts

let pipeline_applies_scan () =
  let seq = Kiss.to_sequential (Kiss.lion ()) in
  check Alcotest.bool "sequential input" true (Circuit.has_state seq);
  let setup = Pipeline.prepare (Run_config.with_seed 1 Run_config.default) seq in
  check Alcotest.bool "combinational model" true (not (Circuit.has_state setup.Pipeline.circuit))


(* --- estimator variants -------------------------------------------- *)

let average_estimator_bounds =
  QCheck.Test.make ~name:"Average ADI lies between min and max ndet over D(f)" ~count:20
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let rng = Rng.create 51 in
  let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:60 in
  let amin = Adi_index.compute ~estimator:Adi_index.Minimum fl pats in
  let aavg = Adi_index.compute ~estimator:Adi_index.Average fl pats in
  let ok = ref true in
  Array.iteri
    (fun fi d ->
      if Bitvec.is_zero d then begin
        if aavg.Adi_index.adi.(fi) <> 0 then ok := false
      end
      else begin
        let mx = ref 0 in
        Bitvec.iter_set d (fun u -> mx := max !mx amin.Adi_index.ndet.(u));
        if aavg.Adi_index.adi.(fi) < amin.Adi_index.adi.(fi) - 1
           || aavg.Adi_index.adi.(fi) > !mx
        then ok := false
      end)
    amin.Adi_index.dsets;
  !ok

let n_detection_converges =
  QCheck.Test.make ~name:"compute_n_detection with huge n equals compute" ~count:15
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let rng = Rng.create 53 in
  let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:60 in
  let full = Adi_index.compute fl pats in
  let capped = Adi_index.compute_n_detection ~n:10_000 fl pats in
  full.Adi_index.adi = capped.Adi_index.adi

(* --- test-set reordering ------------------------------------------- *)

let reorder_is_permutation_and_steeper =
  QCheck.Test.make ~name:"greedy reorder permutes tests and never worsens AVE" ~count:10
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let r = Engine.run fl ~order:(Array.init (Fault_list.count fl) Fun.id) in
  let tests = r.Engine.tests in
  if Patterns.count tests = 0 then true
  else begin
    let order = Reorder.greedy fl tests in
    let sorted = Array.copy order in
    Array.sort compare sorted;
    let perm_ok = sorted = Array.init (Patterns.count tests) Fun.id in
    let before = Coverage.ave (Coverage.of_test_set fl tests) in
    let after = Coverage.ave (Coverage.of_test_set fl (Reorder.apply tests order)) in
    (* Greedy reordering targets steepness; allow equality and tiny
       greedy pathologies (AVE is not its exact objective) but not gross
       regressions. *)
    perm_ok && after <= (before *. 1.1) +. 1e-9
  end


(* --- independence baseline ----------------------------------------- *)

let ffr_roots_well_formed =
  QCheck.Test.make ~name:"FFR roots: root of a root is itself" ~count:30 arb_circuit
  @@ fun c ->
  let roots = Independence.ffr_roots c in
  let ok = ref true in
  Circuit.iter_nodes c (fun i ->
      if roots.(roots.(i)) <> roots.(i) then ok := false;
      (* A multi-fanout or output node is its own root. *)
      if (Circuit.fanout_count c i <> 1 || Circuit.is_output c i) && roots.(i) <> i then
        ok := false);
  !ok

let independence_order_is_permutation =
  QCheck.Test.make ~name:"Findep is a permutation" ~count:20 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let rng = Rng.create 61 in
  let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:50 in
  let adi = Adi_index.compute fl pats in
  let o = Independence.order adi in
  let n = Fault_list.count fl in
  let seen = Array.make n false in
  Array.length o = n
  && Array.for_all
       (fun i ->
         if i < 0 || i >= n || seen.(i) then false
         else begin
           seen.(i) <- true;
           true
         end)
       o

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "adi"
    [
      ( "index",
        [
          Alcotest.test_case "lion vs oracle" `Quick adi_against_oracle;
          Alcotest.test_case "min/max/ratio" `Quick adi_min_max_ratio;
          qtest adi_matches_definition;
          qtest adi_at_least_one;
          qtest select_u_prefix_reaches_target;
          qtest average_estimator_bounds;
          qtest n_detection_converges;
          qtest reorder_is_permutation_and_steeper;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "names roundtrip" `Quick ordering_names_roundtrip;
          qtest all_orders_are_permutations;
          qtest orig_is_identity;
          qtest decr_is_sorted;
          qtest incr0_reverses_decr;
          qtest zeros_first_variants;
          qtest dynamic_matches_reference;
          qtest dynamic_first_pick_is_max_adi;
          qtest ffr_roots_well_formed;
          qtest independence_order_is_permutation;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "lion end-to-end" `Quick pipeline_on_lion;
          Alcotest.test_case "scan applied" `Quick pipeline_applies_scan;
        ] );
    ]
