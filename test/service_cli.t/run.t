The resident service: adi-server holds the content-addressed artifact
cache warm, adi-client speaks the length-prefixed JSON protocol.  These
checks pin the happy path (a warm cache serves byte-identical results)
and every failure mode: each one must produce a typed [E-...]
diagnostic and a nonzero exit, and must never hang.

Start a server on a Unix-domain socket and wait for the socket:

  $ adi-server --socket adi.sock --capacity 4 --workers 2 > server.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S adi.sock ] && break; sleep 0.1; done

A cold order computes, a warm order is served from the cache; the
results are byte-identical apart from the truthful "cached" flag:

  $ adi-client order --socket adi.sock c17 --seed 3 --order incr0 > cold.json
  $ adi-client order --socket adi.sock c17 --seed 3 --order incr0 > warm.json
  $ grep -o '"cached":false' cold.json
  "cached":false
  $ grep -o '"cached":true' warm.json
  "cached":true
  $ sed 's/"cached":[a-z]*/"cached":_/' cold.json > cold.norm
  $ sed 's/"cached":[a-z]*/"cached":_/' warm.json > warm.norm
  $ cmp cold.norm warm.norm && echo identical
  identical
  $ grep -o '"order":"incr0"' warm.json
  "order":"incr0"

The stats reply carries the version and records the cache hit:

  $ adi-client stats --socket adi.sock | grep -o '"hits":1'
  "hits":1

A hello negotiates protocol v2; it is connection setup, not work, so
it never appears in the request count pinned below:

  $ adi-client hello --socket adi.sock
  {"version":2}

One protocol v2 batch carries many circuits in a single request;
per-item results come back in request order:

  $ adi-client batch --socket adi.sock adi c17 lion | grep -o '"ok":true'
  "ok":true
  "ok":true

Diagnosis through the front door: the first request builds the fault
dictionary, the second is served from the dictionary cache, and the
replies are byte-identical apart from the truthful cache flags:

  $ adi-client diagnose --socket adi.sock c17 --fails 0,2 > diag1.json
  $ adi-client diagnose --socket adi.sock c17 --fails 0,2 > diag2.json
  $ grep -o '"observed_fails":2' diag2.json
  "observed_fails":2
  $ grep -o '"cached":true' diag2.json | wc -l
  2
  $ sed 's/"cached":[a-z]*/"cached":_/g' diag1.json > diag1.norm
  $ sed 's/"cached":[a-z]*/"cached":_/g' diag2.json > diag2.norm
  $ cmp diag1.norm diag2.norm && echo identical
  identical

block_width is a pure throughput knob excluded from the artifact
fingerprint: a wide request is answered out of the narrow request's
warm cache, byte for byte:

  $ adi-client order --socket adi.sock c17 --seed 3 --order incr0 --block-width 8 > wide.json
  $ grep -o '"cached":true' wide.json
  "cached":true
  $ sed 's/"cached":[a-z]*/"cached":_/' wide.json > wide.norm
  $ cmp cold.norm wide.norm && echo identical
  identical

An out-of-range width is the same typed E-flag the offline CLI
reports:

  $ adi-client load --socket adi.sock c17 --block-width 3
  adi-client: --block-width must be 1, 2, 4 or 8 (got 3) [E-flag]
  [2]

An exhausted request budget is a typed E-budget error, not a hang:

  $ adi-client atpg --socket adi.sock c17 --budget_s 0
  adi-client: request budget expired before preparation [E-budget]
  [4]

Garbage on the wire is a typed E-protocol error with an unattributable
request id, and the connection (and server) survive it (the old raw
subcommand now lives behind --raw, for protocol debugging only):

  $ adi-client --socket adi.sock --raw 'nonsense'
  adi-client: malformed request: bad literal at offset 0 [E-protocol]
  [2]

Unknown operations are rejected by name, and the error names the
connection's negotiated protocol version:

  $ adi-client --socket adi.sock --raw '{"id":9,"op":"frobnicate"}'
  adi-client: unknown op "frobnicate" (protocol v1; expected one of: load, adi, order, atpg, diagnose, stats, health, evict, shutdown, hello, batch_adi, batch_order, batch_atpg, batch_diagnose) [E-protocol]
  [2]

Out-of-range configuration surfaces as the same E-flag diagnostics the
offline CLI reports:

  $ adi-client load --socket adi.sock c17 --pool 0
  adi-client: --pool must be at least 1 (got 0) [E-flag]
  [2]

Shutdown drains the server; it exits cleanly and removes its socket:

  $ adi-client shutdown --socket adi.sock
  {"stopping":true}
  $ wait
  $ cat server.log
  adi-server: v1.1.0 listening on adi.sock (2 workers, capacity 4)
  adi-server: drained after 13 requests
  $ [ ! -e adi.sock ] && echo gone
  gone

A missing socket is a typed connection error, never a hang:

  $ adi-client stats --socket adi.sock
  adi-client: cannot connect to adi.sock [E-io]
  [2]
