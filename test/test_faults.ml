(* Tests for the fault model: universe generation, indexing, and
   equivalence collapsing.  The central property: faults that collapsing
   puts in one class are detected by exactly the same input vectors. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let random_circuit_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun pis ->
    int_range 3 25 >>= fun gates ->
    int_bound 10_000 >>= fun seed ->
    return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ())))

let arb_circuit = QCheck.make random_circuit_gen

(* --- fault universe ----------------------------------------------- *)

let full_count_formula =
  QCheck.Test.make ~name:"|full| = 2 * (nodes + pins)" ~count:100 arb_circuit
  @@ fun c ->
  Fault_list.count (Fault_list.full c) = 2 * (Circuit.node_count c + Circuit.pin_count c)

let full_indexing =
  QCheck.Test.make ~name:"index inverts get" ~count:50 arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let ok = ref true in
  for i = 0 to Fault_list.count fl - 1 do
    if Fault_list.index fl (Fault_list.get fl i) <> Some i then ok := false
  done;
  !ok

let full_node_major =
  QCheck.Test.make ~name:"full list is node-major (Forig order)" ~count:50 arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let ok = ref true in
  for i = 1 to Fault_list.count fl - 1 do
    if Fault.site_node (Fault_list.get fl i) < Fault.site_node (Fault_list.get fl (i - 1)) then
      ok := false
  done;
  !ok

let fault_on_c17 () =
  let c = Library.c17 () in
  let fl = Fault_list.full c in
  (* 11 nodes (5 PI + 6 gates), 12 pins -> 46 faults. *)
  check Alcotest.int "fault universe" 46 (Fault_list.count fl)

let fault_to_string () =
  let c = Library.c17 () in
  let g10 = Circuit.find_exn c "G10" in
  check Alcotest.string "stem" "G10 s-a-1" (Fault.to_string c (Fault.stem g10 true));
  check Alcotest.string "branch" "G10.in0 (G1) s-a-0"
    (Fault.to_string c (Fault.branch ~gate:g10 ~pin:0 false))

let sub_list () =
  let c = Library.c17 () in
  let fl = Fault_list.full c in
  let sub = Fault_list.sub fl [| 3; 1 |] in
  check Alcotest.int "two faults" 2 (Fault_list.count sub);
  check Alcotest.bool "order kept" true (Fault.equal (Fault_list.get sub 0) (Fault_list.get fl 3))

(* --- collapsing --------------------------------------------------- *)

let collapse_partition =
  QCheck.Test.make ~name:"collapse classes partition the universe" ~count:50 arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let r = Collapse.equivalence fl in
  let nrep = Fault_list.count r.Collapse.representatives in
  Array.for_all (fun cls -> cls >= 0 && cls < nrep) r.Collapse.class_of
  && Array.fold_left ( + ) 0 r.Collapse.class_sizes = Fault_list.count fl
  && Array.for_all (fun s -> s >= 1) r.Collapse.class_sizes

let collapse_representative_in_class =
  QCheck.Test.make ~name:"each representative maps to its own class" ~count:50 arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let r = Collapse.equivalence fl in
  let ok = ref true in
  for ri = 0 to Fault_list.count r.Collapse.representatives - 1 do
    match Fault_list.index fl (Fault_list.get r.Collapse.representatives ri) with
    | Some full_idx -> if r.Collapse.class_of.(full_idx) <> ri then ok := false
    | None -> ok := false
  done;
  !ok

(* The defining property of equivalence: same detection sets.  Checked
   exhaustively on small circuits with the naive oracle. *)
let collapse_equivalent_same_detection =
  QCheck.Test.make ~name:"collapsed classes have identical detection sets" ~count:20
    (QCheck.make
       QCheck.Gen.(
         int_range 2 4 >>= fun pis ->
         int_range 3 12 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let fl = Fault_list.full c in
  let r = Collapse.equivalence fl in
  let pats = Patterns.exhaustive ~n_inputs:(Array.length (Circuit.inputs c)) in
  let table = Refsim.detection_table fl pats in
  let ok = ref true in
  Array.iteri
    (fun fi cls ->
      let rep = Fault_list.get r.Collapse.representatives cls in
      let rep_idx = Option.get (Fault_list.index fl rep) in
      if table.(fi) <> table.(rep_idx) then ok := false)
    r.Collapse.class_of;
  !ok

let collapse_shrinks () =
  let c = Library.c17 () in
  let r = Collapse.equivalence (Fault_list.full c) in
  let n = Fault_list.count r.Collapse.representatives in
  check Alcotest.bool "collapsed smaller" true (n < 46);
  check Alcotest.bool "ratio > 1" true (Collapse.collapse_ratio r > 1.0)

let collapse_inverter_chain () =
  (* a -> NOT -> NOT -> out: all 6 faults fold into 2 classes. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let n1 = Circuit.Builder.gate b Gate.Not "n1" [ a ] in
  let n2 = Circuit.Builder.gate b Gate.Not "n2" [ n1 ] in
  Circuit.Builder.mark_output b n2;
  let c = Circuit.Builder.finish b in
  let r = Collapse.equivalence (Fault_list.full c) in
  check Alcotest.int "two classes" 2 (Fault_list.count r.Collapse.representatives)

(* --- dominance and the expansion map ------------------------------ *)

let collapse_c17_stages () =
  let r = Collapse.equivalence (Fault_list.full (Library.c17 ())) in
  let st = r.Collapse.stages in
  check Alcotest.int "full" 46 st.Collapse.full;
  check Alcotest.int "equivalence" 22 st.Collapse.equivalence;
  check Alcotest.int "prime" 16 st.Collapse.prime;
  check Alcotest.int "checkpoints" 18 st.Collapse.checkpoints;
  check Alcotest.int "probes" 11 st.Collapse.probes;
  check Alcotest.int "expansion_size" 11 (Collapse.expansion_size r);
  check Alcotest.bool "dominance ratio > equivalence ratio" true
    (Collapse.dominance_ratio r > Collapse.collapse_ratio r)

let collapse_prime_consistency =
  QCheck.Test.make ~name:"prime list = un-dropped representatives, in order" ~count:50
    arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let r = Collapse.equivalence fl in
  let nrep = Fault_list.count r.Collapse.representatives in
  let expected = ref [] in
  for ri = nrep - 1 downto 0 do
    if not r.Collapse.dropped.(ri) then
      expected := Fault_list.get r.Collapse.representatives ri :: !expected
  done;
  let expected = Array.of_list !expected in
  Array.length expected = Fault_list.count r.Collapse.prime
  && Array.length expected = r.Collapse.stages.Collapse.prime
  && Array.for_all2 Fault.equal expected
       (Array.init (Fault_list.count r.Collapse.prime) (Fault_list.get r.Collapse.prime))

let collapse_probe_map =
  QCheck.Test.make ~name:"probe map groups representatives by injection site" ~count:50
    arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let r = Collapse.equivalence fl in
  let nrep = Fault_list.count r.Collapse.representatives in
  let np = Array.length r.Collapse.probe_nodes in
  let increasing = ref true in
  for i = 1 to np - 1 do
    if r.Collapse.probe_nodes.(i) <= r.Collapse.probe_nodes.(i - 1) then increasing := false
  done;
  let hit = Array.make np false in
  let consistent = ref true in
  for ri = 0 to nrep - 1 do
    let p = r.Collapse.probe_of.(ri) in
    if
      p < 0 || p >= np
      || r.Collapse.probe_nodes.(p)
         <> Fault.site_node (Fault_list.get r.Collapse.representatives ri)
    then consistent := false
    else hit.(p) <- true
  done;
  !increasing && !consistent && Array.for_all Fun.id hit
  && np = r.Collapse.stages.Collapse.probes
  && np <= nrep

(* Soundness of dominance dropping: a dropped class is justified by a
   chain of classes with ever-smaller detection sets that ends at a
   surviving (prime) class, so some prime class's detection set is
   included in every dropped class's.  Checked exhaustively with the
   naive oracle on small circuits. *)
let collapse_dominance_sound =
  QCheck.Test.make ~name:"every dropped class is covered by a prime class" ~count:20
    (QCheck.make
       QCheck.Gen.(
         int_range 2 4 >>= fun pis ->
         int_range 3 12 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let fl = Fault_list.full c in
  let r = Collapse.equivalence fl in
  let pats = Patterns.exhaustive ~n_inputs:(Array.length (Circuit.inputs c)) in
  let table = Refsim.detection_table fl pats in
  let nrep = Fault_list.count r.Collapse.representatives in
  let dset ri =
    let rep = Fault_list.get r.Collapse.representatives ri in
    table.(Option.get (Fault_list.index fl rep))
  in
  let subset a b = Array.for_all2 (fun x y -> (not x) || y) a b in
  let ok = ref true in
  for ri = 0 to nrep - 1 do
    if r.Collapse.dropped.(ri) then begin
      let d = dset ri in
      let covered = ref false in
      for pj = 0 to nrep - 1 do
        if (not r.Collapse.dropped.(pj)) && subset (dset pj) d then covered := true
      done;
      if not !covered then ok := false
    end
  done;
  !ok

let collapse_checkpoints_inverter_chain () =
  (* a -> NOT -> NOT -> out: two classes, both containing the PI
     faults, and both representatives (the PI stem faults) inject at
     the single node [a] — one probe site. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let n1 = Circuit.Builder.gate b Gate.Not "n1" [ a ] in
  let n2 = Circuit.Builder.gate b Gate.Not "n2" [ n1 ] in
  Circuit.Builder.mark_output b n2;
  let c = Circuit.Builder.finish b in
  let r = Collapse.equivalence (Fault_list.full c) in
  let st = r.Collapse.stages in
  check Alcotest.int "checkpoint classes" 2 st.Collapse.checkpoints;
  check Alcotest.int "one probe site" 1 st.Collapse.probes;
  check Alcotest.bool "PI stem is a checkpoint" true
    (Collapse.is_checkpoint c (Fault.stem a true));
  check Alcotest.bool "fanout-free branch is not" false
    (Collapse.is_checkpoint c (Fault.branch ~gate:n2 ~pin:0 true))

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "faults"
    [
      ( "universe",
        [
          Alcotest.test_case "c17 count" `Quick fault_on_c17;
          Alcotest.test_case "to_string" `Quick fault_to_string;
          Alcotest.test_case "sub" `Quick sub_list;
          qtest full_count_formula;
          qtest full_indexing;
          qtest full_node_major;
        ] );
      ( "collapse",
        [
          Alcotest.test_case "shrinks c17" `Quick collapse_shrinks;
          Alcotest.test_case "inverter chain" `Quick collapse_inverter_chain;
          qtest collapse_partition;
          qtest collapse_representative_in_class;
          qtest collapse_equivalent_same_detection;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "c17 stages" `Quick collapse_c17_stages;
          Alcotest.test_case "inverter-chain checkpoints" `Quick
            collapse_checkpoints_inverter_chain;
          qtest collapse_prime_consistency;
          qtest collapse_probe_map;
          qtest collapse_dominance_sound;
        ] );
    ]
