(* Tests for the diagnosis subsystem: dictionary spill round-trips,
   jobs-independence of the build, self-diagnosis (a fault's own
   signature must rank the fault — or an indistinguishable classmate —
   first at distance zero), deterministic tie-breaking, and the
   diagnose service op: batch ≡ sequential, and end-to-end identity
   over the whole collapsed fault universe of a circuit. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

module Bitvec = Util.Bitvec
module Rng = Util.Rng
module Json = Util.Json
module Dictionary = Diagnosis.Dictionary
module Diagnoser = Diagnosis.Diagnoser
module Select = Diagnosis.Select
module Protocol = Service.Protocol
module Session = Service.Session

let small_circuit_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun pis ->
    int_range 3 25 >>= fun gates ->
    int_bound 10_000 >>= fun seed ->
    return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ())))

let arb_circuit = QCheck.make small_circuit_gen

let dict_of c ~seed ~count =
  let fl = Collapse.collapsed c in
  let rng = Rng.create seed in
  let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count in
  Dictionary.build fl pats

let fails_of_signature s =
  let acc = ref [] in
  Bitvec.iter_set s (fun i -> acc := i :: !acc);
  Array.of_list (List.rev !acc)

(* ---------- dictionary -------------------------------------------- *)

let spill_roundtrip =
  QCheck.Test.make ~name:"dictionary spill round-trips byte-identically" ~count:25 arb_circuit
  @@ fun c ->
  let dict = dict_of c ~seed:11 ~count:100 in
  let path = Filename.temp_file "dict" ".dict" in
  let path2 = Filename.temp_file "dict" ".dict" in
  Fun.protect ~finally:(fun () -> Sys.remove path; Sys.remove path2) @@ fun () ->
  Dictionary.save dict path;
  match Dictionary.load path with
  | None -> false
  | Some loaded ->
      (* A re-spill of the loaded value reproduces the file bytes. *)
      Dictionary.save loaded path2;
      let bytes p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Dictionary.equal dict loaded && bytes path = bytes path2

let spill_rejects_corruption () =
  let dict = dict_of (Suite.build_by_name "c17") ~seed:3 ~count:64 in
  let path = Filename.temp_file "dict" ".dict" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Dictionary.save dict path;
  (* Flip one payload byte: the digest line must catch it. *)
  let ic = open_in_bin path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in_noerr ic;
  let b = Bytes.of_string content in
  let i = Bytes.length b - 5 in
  Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out_noerr oc;
  Alcotest.(check bool) "corrupted spill is a miss" true (Dictionary.load path = None)

let jobs_independent =
  QCheck.Test.make ~name:"jobs=1 and jobs=4 build identical dictionaries" ~count:25 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let rng = Rng.create 19 in
  let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:130 in
  Dictionary.equal (Dictionary.build ~jobs:1 fl pats) (Dictionary.build ~jobs:4 fl pats)

let signatures_match_detection_sets =
  QCheck.Test.make ~name:"signatures = detection_sets rows; slices union to them" ~count:25
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let rng = Rng.create 23 in
  let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:100 in
  let dict = Dictionary.build fl pats in
  let sets = Faultsim.detection_sets fl pats in
  let ok = ref true in
  Array.iteri
    (fun fi set ->
      if not (Bitvec.equal set (Dictionary.signature dict fi)) then ok := false;
      let union = Bitvec.create (Patterns.count pats) in
      Array.iter
        (fun (_, row) -> Bitvec.iter_set row (fun t -> Bitvec.set union t true))
        (Dictionary.slices dict fi);
      if not (Bitvec.equal union set) then ok := false)
    sets;
  !ok

(* ---------- diagnoser --------------------------------------------- *)

let self_diagnosis_distance_zero =
  QCheck.Test.make ~name:"a fault's own signature ranks its class first at distance 0"
    ~count:25 arb_circuit
  @@ fun c ->
  let dict = dict_of c ~seed:29 ~count:100 in
  let ok = ref true in
  for fi = 0 to Dictionary.fault_count dict - 1 do
    let observed =
      Diagnoser.signature_of_fails dict (fails_of_signature (Dictionary.signature dict fi))
    in
    match Diagnoser.nearest ~limit:1 dict observed with
    | [ best ] ->
        if best.Diagnoser.distance <> 0 then ok := false;
        if not (Bitvec.equal (Dictionary.signature dict best.Diagnoser.fault)
                  (Dictionary.signature dict fi))
        then ok := false
    | _ -> ok := false
  done;
  !ok

let nearest_tiebreak_deterministic () =
  (* Four tests over c17 leave many signature collisions; equal
     distances must resolve in ascending fault order, every time. *)
  let dict = dict_of (Suite.build_by_name "c17") ~seed:7 ~count:4 in
  let cls =
    match
      List.find_opt (fun g -> Array.length g >= 2) (Array.to_list (Dictionary.classes dict))
    with
    | Some g -> g
    | None -> Alcotest.fail "expected an ambiguous class under 4 tests"
  in
  let observed = Bitvec.copy (Dictionary.signature dict cls.(0)) in
  let ranked = Diagnoser.nearest dict observed in
  check Alcotest.int "full ranking" (Dictionary.fault_count dict) (List.length ranked);
  (* The whole ambiguous class leads, members ascending. *)
  List.iteri
    (fun i fi ->
      let got = List.nth ranked i in
      check Alcotest.int "class member in order" fi got.Diagnoser.fault;
      check Alcotest.int "distance zero" 0 got.Diagnoser.distance)
    (Array.to_list cls);
  (* And the ranking is globally sorted by (distance, fault index). *)
  ignore
    (List.fold_left
       (fun prev c ->
         (match prev with
         | Some p ->
             Alcotest.(check bool) "sorted by (distance, fault)" true
               ((p.Diagnoser.distance, p.Diagnoser.fault)
               < (c.Diagnoser.distance, c.Diagnoser.fault))
         | None -> ());
         Some c)
       None ranked)

let session_observations_prune () =
  let dict = dict_of (Suite.build_by_name "c17") ~seed:13 ~count:64 in
  let target = 0 in
  let s = Diagnoser.start dict in
  let nt = Dictionary.test_count dict in
  for t = 0 to nt - 1 do
    if Bitvec.get (Dictionary.signature dict target) t then
      Diagnoser.observe s ~test:t Diagnoser.Fail
    else Diagnoser.observe s ~test:t Diagnoser.Pass
  done;
  check Alcotest.int "all tests observed" nt (Diagnoser.observed s);
  let survivors = Diagnoser.survivors s in
  Alcotest.(check bool) "target survives its own log" true (List.mem target survivors);
  List.iter
    (fun fi ->
      Alcotest.(check bool) "every survivor is signature-identical" true
        (Bitvec.equal (Dictionary.signature dict fi) (Dictionary.signature dict target)))
    survivors

(* ---------- diagnostic ordering ----------------------------------- *)

let diagnostic_order_permutation_and_gain () =
  let dict = dict_of (Suite.build_by_name "syn208") ~seed:5 ~count:48 in
  let ord = Select.order dict in
  let nt = Dictionary.test_count dict in
  check Alcotest.int "permutation length" nt (Array.length ord);
  let seen = Array.make nt false in
  Array.iter (fun t -> seen.(t) <- true) ord;
  Alcotest.(check bool) "every test appears once" true (Array.for_all Fun.id seen);
  let gen = Select.mean_tests_to_unique dict (Array.init nt Fun.id) in
  let diag = Select.mean_tests_to_unique dict ord in
  Alcotest.(check bool) "diagnostic order no worse than generation order" true (diag <= gen)

(* ---------- service op -------------------------------------------- *)

let result_of response =
  match response.Protocol.payload with
  | Ok (Protocol.Result j) -> j
  | Ok _ -> Alcotest.fail "unexpected reply shape"
  | Error e -> Alcotest.fail e.Protocol.message

let batch_diagnose_matches_sequential () =
  let tests =
    Array.to_list (Array.map (fun s -> Json.Str s)
      (Patterns.to_strings (Patterns.exhaustive ~n_inputs:5)))
  in
  let variants =
    [ [ ("circuit", Json.Str "c17") ];
      [ ("circuit", Json.Str "c17"); ("fails", Json.Arr [ Json.Int 0; Json.Int 2 ]) ];
      [ ("circuit", Json.Str "c17"); ("tests", Json.Arr tests);
        ("fails", Json.Arr [ Json.Int 1 ]); ("limit", Json.Int 3) ];
      [ ("circuit", Json.Str "c17"); ("applied", Json.Int 5) ] ]
  in
  let sequential =
    let t = Session.create ~capacity:4 () in
    List.map
      (fun params -> Json.to_string (result_of (Session.handle t (Protocol.single "diagnose" params))))
      variants
  in
  let batched =
    let t = Session.create ~capacity:4 () in
    match
      (Session.handle t { Protocol.id = 9; call = Protocol.Batch (Protocol.Diagnose, variants) })
        .Protocol.payload
    with
    | Ok (Protocol.Batch_replies items) ->
        List.map
          (function
            | Ok j -> Json.to_string j
            | Error e -> Alcotest.fail e.Protocol.message)
          items
    | Ok _ -> Alcotest.fail "unexpected batch reply shape"
    | Error e -> Alcotest.fail e.Protocol.message
  in
  check Alcotest.(list string) "batch items ≡ sequential singles" sequential batched

let service_diagnose_identity () =
  (* End-to-end: for every fault of the collapsed universe, feeding its
     own simulated failing set through the diagnose op must rank a
     member of its signature class first, at distance zero, and list
     the whole class as exact matches. *)
  let c = Suite.build_by_name "c17" in
  let pats = Patterns.exhaustive ~n_inputs:5 in
  let setup = Pipeline.prepare Run_config.default c in
  let dict = Dictionary.build setup.Pipeline.faults pats in
  let tests_param =
    ("tests", Json.Arr (Array.to_list (Array.map (fun s -> Json.Str s) (Patterns.to_strings pats))))
  in
  let t = Session.create ~capacity:4 () in
  for fi = 0 to Dictionary.fault_count dict - 1 do
    let fails = fails_of_signature (Dictionary.signature dict fi) in
    let params =
      [ ("circuit", Json.Str "c17"); tests_param; ("limit", Json.Int 1);
        ("fails", Json.Arr (Array.to_list (Array.map (fun i -> Json.Int i) fails))) ]
    in
    let result = result_of (Session.handle t (Protocol.single "diagnose" params)) in
    let candidates =
      match Option.bind (Json.member "candidates" result) Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "diagnose reply has no candidates"
    in
    (match candidates with
    | best :: _ ->
        let field name conv = Option.bind (Json.member name best) conv in
        check (Alcotest.option Alcotest.int) "top candidate at distance 0" (Some 0)
          (field "distance" Json.to_int);
        let top = Option.value ~default:(-1) (field "fault" Json.to_int) in
        Alcotest.(check bool) "top candidate is signature-identical" true
          (top >= 0
          && Bitvec.equal (Dictionary.signature dict top) (Dictionary.signature dict fi));
        check (Alcotest.option Alcotest.string) "name matches the universe"
          (Some (Dictionary.name dict top))
          (field "name" Json.to_str)
    | [] -> Alcotest.fail "diagnose returned no candidates");
    let exact =
      match Option.bind (Json.member "exact" result) Json.to_list with
      | Some l -> List.filter_map Json.to_int l
      | None -> []
    in
    Alcotest.(check bool) "exact list contains the injected fault" true (List.mem fi exact)
  done;
  (* The dictionary was built once and re-served from the store. *)
  match (Session.handle t (Protocol.single "stats" [])).Protocol.payload with
  | Ok (Protocol.Result stats) ->
      let hits =
        Option.value ~default:0 (Option.bind (Json.member "dict_hits" stats) Json.to_int)
      in
      Alcotest.(check bool) "dictionary cache was hit" true (hits > 0)
  | _ -> Alcotest.fail "stats request failed"

let () =
  Alcotest.run "diagnosis"
    [
      ( "dictionary",
        [ qtest spill_roundtrip;
          Alcotest.test_case "corrupt spill is a miss" `Quick spill_rejects_corruption;
          qtest jobs_independent;
          qtest signatures_match_detection_sets ] );
      ( "diagnoser",
        [ qtest self_diagnosis_distance_zero;
          Alcotest.test_case "nearest tie-break deterministic" `Quick
            nearest_tiebreak_deterministic;
          Alcotest.test_case "incremental session prunes to the class" `Quick
            session_observations_prune ] );
      ( "select",
        [ Alcotest.test_case "diagnostic order valid and no worse" `Quick
            diagnostic_order_permutation_and_gain ] );
      ( "service",
        [ Alcotest.test_case "batch ≡ sequential" `Quick batch_diagnose_matches_sequential;
          Alcotest.test_case "end-to-end identity over the universe" `Quick
            service_diagnose_identity ] );
    ]
