A sharded fleet: two adi-server workers share one spill directory in
write-through mode, and adi-router consistent-hashes requests across
them by circuit digest.  These checks pin the fleet happy path (batch
results through the router are byte-identical to a single server's),
cache affinity (the same circuit keeps landing on the same worker, so
the second request is a cache hit), and the whole-fleet drain.

Start two workers over a shared spill directory, then the router:

  $ mkdir spill
  $ adi-server --socket w0.sock --capacity 4 --spill spill --spill-shared > w0.log 2>&1 &
  $ adi-server --socket w1.sock --capacity 4 --spill spill --spill-shared > w1.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S w0.sock ] && [ -S w1.sock ] && break; sleep 0.1; done
  $ adi-router --socket front.sock --worker w0.sock --worker w1.sock --probe-interval 0 --drain-workers > router.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S front.sock ] && break; sleep 0.1; done

The router speaks the same protocol a worker does, so the ordinary
client works unchanged.  A cold request computes on whichever worker
owns the circuit; the repeat is served from that worker's warm cache:

  $ adi-client adi --socket front.sock c17 --seed 3 > cold.json
  $ adi-client adi --socket front.sock c17 --seed 3 > warm.json
  $ grep -o '"cached":false' cold.json
  "cached":false
  $ grep -o '"cached":true' warm.json
  "cached":true
  $ sed 's/"cached":[a-z]*/"cached":_/' cold.json > cold.norm
  $ sed 's/"cached":[a-z]*/"cached":_/' warm.json > warm.norm
  $ cmp cold.norm warm.norm && echo identical
  identical

A protocol v2 batch is split per owning worker and reassembled in
request order:

  $ adi-client batch --socket front.sock adi c17 lion | grep -o '"ok":true'
  "ok":true
  "ok":true

The router's stats expose the fleet: per-worker forward counts and the
affinity counters.  The repeated c17 requests hit the same worker
every time, and no key was rehashed:

  $ adi-client stats --socket front.sock > stats.json
  $ grep -o '"role":"router"' stats.json
  "role":"router"
  $ grep -o '"affinity_hits":2' stats.json
  "affinity_hits":2
  $ grep -o '"affinity_moves":0' stats.json
  "affinity_moves":0
  $ grep -o '"failovers":0' stats.json
  "failovers":0
  $ grep -c '"alive":true' stats.json
  1

Fleet health aggregates the workers:

  $ adi-client health --socket front.sock | grep -o '"live_workers":2'
  "live_workers":2

Shutdown at the front door drains the router and, because it was
started with --drain-workers, the whole fleet behind it:

  $ adi-client shutdown --socket front.sock
  {"stopping":true}
  $ wait
  $ cat router.log
  adi-router: v1.1.0 listening on front.sock (2 workers)
  adi-router: drained after 6 requests
  $ grep -c 'drained after' w0.log w1.log
  w0.log:1
  w1.log:1
  $ [ ! -e front.sock ] && [ ! -e w0.sock ] && [ ! -e w1.sock ] && echo gone
  gone

The shared spill directory holds the fleet's second-level artifacts,
written through at compute time: one setup each for the seed-3 c17,
the default-seed c17 from the batch, and lion:

  $ ls spill | grep -c '\.setup$'
  3
