(* Tests for the service layer: content-addressed store semantics
   (key stability, LRU order, capacity-zero, disk spill), the
   length-prefixed frame protocol, session error taxonomy, the
   cache-cannot-change-a-reply byte-identity invariant (cold vs warm,
   jobs=1 vs jobs=4, service vs offline pipeline), and an end-to-end
   concurrent-server exercise over a Unix-domain socket. *)

module Json = Util.Json
module D = Util.Diagnostics
module Store = Service.Store
module Protocol = Service.Protocol
module Session = Service.Session
module Server = Service.Server

let check = Alcotest.check

let small_cfg seed =
  Run_config.(default |> with_seed seed |> with_pool 64 |> with_target_coverage 0.5)

let c17 () = Suite.build_by_name "c17"

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "adi-store-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* ---------- store keying ------------------------------------------ *)

let key_stable_across_field_order () =
  let c = c17 () in
  let cfg1 = Run_config.(default |> with_seed 7 |> with_pool 300 |> with_target_coverage 0.8) in
  let cfg2 = Run_config.(default |> with_target_coverage 0.8 |> with_pool 300 |> with_seed 7) in
  check Alcotest.string "builder order is irrelevant" (Store.key_of c cfg1) (Store.key_of c cfg2);
  (* Knobs that cannot change the prepared artifacts are excluded. *)
  let cfg3 =
    Run_config.(cfg1 |> with_jobs 4 |> with_backtrack_limit 99 |> with_retries 3 |> with_metrics true)
  in
  check Alcotest.string "jobs/engine/observability excluded" (Store.key_of c cfg1)
    (Store.key_of c cfg3);
  (* Anything that does change them must change the key. *)
  let differs cfg = Store.key_of c cfg1 <> Store.key_of c cfg in
  Alcotest.(check bool) "seed is part of the key" true (differs Run_config.(cfg1 |> with_seed 8));
  Alcotest.(check bool) "pool is part of the key" true (differs Run_config.(cfg1 |> with_pool 301));
  let other = Suite.build_by_name "lion" in
  Alcotest.(check bool) "circuit is part of the key" true
    (Store.key_of c cfg1 <> Store.key_of other cfg1)

(* ---------- LRU behaviour ----------------------------------------- *)

let lru_eviction_order () =
  let setup = Pipeline.prepare (small_cfg 1) (c17 ()) in
  let s = Store.create ~capacity:2 () in
  Store.add s "a" setup;
  Store.add s "b" setup;
  Store.add s "c" setup;
  check (Alcotest.list Alcotest.string) "oldest evicted first" [ "c"; "b" ] (Store.keys s);
  Alcotest.(check bool) "evicted key misses" true (Store.find s "a" = None);
  (* A lookup refreshes recency, changing the next victim. *)
  ignore (Store.find s "b");
  Store.add s "d" setup;
  check (Alcotest.list Alcotest.string) "refreshed entry survives" [ "d"; "b" ] (Store.keys s);
  let st = Store.stats s in
  check Alcotest.int "two evictions" 2 st.Store.evictions;
  (* Re-adding a resident key keeps one entry. *)
  Store.add s "d" setup;
  check Alcotest.int "no duplicate entries" 2 (Store.length s)

let capacity_zero_disables () =
  let circuit = c17 () in
  let setup = Pipeline.prepare (small_cfg 1) circuit in
  let s = Store.create ~capacity:0 () in
  Store.add s "a" setup;
  check Alcotest.int "nothing retained" 0 (Store.length s);
  Alcotest.(check bool) "find misses" true (Store.find s "a" = None);
  let _, cached1 = Store.find_or_prepare s (small_cfg 1) circuit in
  let _, cached2 = Store.find_or_prepare s (small_cfg 1) circuit in
  Alcotest.(check bool) "never served from cache" false (cached1 || cached2);
  let st = Store.stats s in
  check Alcotest.int "all lookups miss" 3 st.Store.misses;
  check Alcotest.int "no insertions" 0 st.Store.insertions

let spill_round_trip () =
  with_temp_dir @@ fun dir ->
  let circuit = c17 () in
  let s = Store.create ~capacity:1 ~spill_dir:dir () in
  let setup1, _ = Store.find_or_prepare s (small_cfg 1) circuit in
  let key1 = Store.key_of circuit (small_cfg 1) in
  let _ = Store.find_or_prepare s (small_cfg 2) circuit in
  (* key1 was evicted to disk; it must come back identical. *)
  check Alcotest.int "only one resident" 1 (Store.length s);
  (match Store.find s key1 with
  | None -> Alcotest.fail "spilled entry not found"
  | Some setup ->
      Alcotest.(check bool) "spill round-trips the setup" true
        (Marshal.to_string setup [] = Marshal.to_string setup1 []));
  let st = Store.stats s in
  check Alcotest.int "served by the spill" 1 st.Store.spill_hits;
  (* A corrupt spill file is a miss, not a crash. *)
  let key2 = Store.key_of circuit (small_cfg 2) in
  let _ = Store.find_or_prepare s (small_cfg 3) circuit in
  let path = Filename.concat dir (key2 ^ ".setup") in
  Alcotest.(check bool) "eviction spilled to disk" true (Sys.file_exists path);
  let oc = open_out_bin path in
  output_string oc "not a setup";
  close_out oc;
  Alcotest.(check bool) "corrupt spill is a miss" true (Store.find s key2 = None);
  (* clear sweeps the spill files too. *)
  ignore (Store.clear s);
  Alcotest.(check bool) "clear removes spill files" true
    (Array.for_all (fun f -> not (Filename.check_suffix f ".setup")) (Sys.readdir dir))

(* ---------- framing ----------------------------------------------- *)

let frame_round_trip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Protocol.write_frame a "hello";
  Protocol.write_frame a "";
  Protocol.write_frame a (String.make 100_000 'x');
  Unix.close a;
  check (Alcotest.option Alcotest.string) "payload" (Some "hello") (Protocol.read_frame b);
  check (Alcotest.option Alcotest.string) "empty frame" (Some "") (Protocol.read_frame b);
  (match Protocol.read_frame b with
  | Some big -> check Alcotest.int "large frame survives" 100_000 (String.length big)
  | None -> Alcotest.fail "large frame lost");
  check (Alcotest.option Alcotest.string) "clean EOF between frames" None (Protocol.read_frame b);
  Unix.close b

let expect_protocol_error f =
  match f () with
  | _ -> Alcotest.fail "expected an E-protocol failure"
  | exception D.Failed d ->
      check Alcotest.string "typed protocol error" "E-protocol" (D.code_string d.D.code)

let frame_truncation_and_bounds () =
  (* Header promising more bytes than ever arrive. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 10l;
  ignore (Unix.write a hdr 0 4);
  ignore (Unix.write_substring a "abc" 0 3);
  Unix.close a;
  expect_protocol_error (fun () -> Protocol.read_frame b);
  Unix.close b;
  (* Header outside the frame bound. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Protocol.max_frame_bytes + 1));
  ignore (Unix.write a hdr 0 4);
  Unix.close a;
  expect_protocol_error (fun () -> Protocol.read_frame b);
  Unix.close b;
  (* Oversized writes are refused before touching the socket. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  expect_protocol_error (fun () ->
      Protocol.write_frame a (String.make (Protocol.max_frame_bytes + 1) 'x'));
  Unix.close a;
  Unix.close b

let request_json_round_trip () =
  let req = Protocol.single ~id:42 "order" [ ("seed", Json.Int 3) ] in
  (match Json.of_string (Json.to_string (Protocol.request_to_json req)) with
  | Error e -> Alcotest.fail e
  | Ok json -> (
      match Protocol.request_of_json json with
      | Ok r -> (
          check Alcotest.int "id" 42 r.Protocol.id;
          match r.Protocol.call with
          | Protocol.Single (op, params) ->
              check Alcotest.string "op" "order" (Protocol.op_name op);
              Alcotest.(check bool) "params" true (params = [ ("seed", Json.Int 3) ])
          | _ -> Alcotest.fail "expected a single call")
      | Error (Protocol.Malformed e) -> Alcotest.fail e
      | Error (Protocol.Unknown_op { op; _ }) -> Alcotest.fail ("unknown op " ^ op)));
  let resp =
    { Protocol.id = 42; payload = Error { Protocol.code = "E-budget"; message = "late" } }
  in
  match
    Result.bind (Json.of_string (Json.to_string (Protocol.response_to_json resp)))
      Protocol.response_of_json
  with
  | Ok { Protocol.payload = Error e; id } ->
      check Alcotest.int "response id" 42 id;
      check Alcotest.string "error code" "E-budget" e.Protocol.code;
      check Alcotest.string "error message" "late" e.Protocol.message
  | Ok _ -> Alcotest.fail "lost the error payload"
  | Error e -> Alcotest.fail e

(* ---------- session error taxonomy -------------------------------- *)

let error_code resp =
  match resp.Protocol.payload with
  | Error e -> e.Protocol.code
  | Ok _ -> Alcotest.fail "expected an error reply"

let session_error_taxonomy () =
  let t = Session.create ~capacity:2 () in
  let req op params = Protocol.single op params in
  (* Unknown ops can no longer be expressed as a typed request; they
     are rejected at frame decode, naming the negotiated version. *)
  (let reply, _ =
     Session.handle_frame t
       (Json.to_string (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "frobnicate") ]))
   in
   match Result.bind (Json.of_string reply) Protocol.response_of_json with
   | Ok { Protocol.payload = Error e; _ } ->
       check Alcotest.string "unknown op" "E-protocol" e.Protocol.code;
       Alcotest.(check bool) "message names the protocol version" true
         (let msg = e.Protocol.message in
          let sub = "protocol v1" in
          let n = String.length msg and m = String.length sub in
          let rec scan i = i + m <= n && (String.sub msg i m = sub || scan (i + 1)) in
          scan 0)
   | _ -> Alcotest.fail "expected an unknown-op error reply");
  check Alcotest.string "missing circuit" "E-protocol" (error_code (Session.handle t (req "load" [])));
  check Alcotest.string "mistyped parameter" "E-protocol"
    (error_code (Session.handle t (req "load" [ ("circuit", Json.Str "c17"); ("seed", Json.Str "x") ])));
  check Alcotest.string "invalid flag value" "E-flag"
    (error_code (Session.handle t (req "load" [ ("circuit", Json.Str "c17"); ("pool", Json.Int 0) ])));
  check Alcotest.string "expired budget" "E-budget"
    (error_code
       (Session.handle t (req "atpg" [ ("circuit", Json.Str "c17"); ("budget_s", Json.Float 0.0) ])));
  check Alcotest.string "negative budget" "E-flag"
    (error_code
       (Session.handle t (req "load" [ ("circuit", Json.Str "c17"); ("budget_s", Json.Float (-1.0)) ])));
  check Alcotest.string "unparsable netlist" "E-syntax"
    (error_code (Session.handle t (req "load" [ ("netlist", Json.Str "INPUT(") ])));
  (* handle never raises, and a failed request still counts. *)
  Alcotest.(check bool) "failures are counted" true (Session.requests t >= 6)

let session_malformed_frames () =
  let t = Session.create ~capacity:2 () in
  let reply, directive = Session.handle_frame t "nonsense" in
  Alcotest.(check bool) "malformed frame continues" true (directive = `Continue);
  (match Result.bind (Json.of_string reply) Protocol.response_of_json with
  | Ok { Protocol.id; payload = Error e } ->
      check Alcotest.int "unattributable id" 0 id;
      check Alcotest.string "protocol error" "E-protocol" e.Protocol.code
  | _ -> Alcotest.fail "expected an error reply");
  let _, directive = Session.handle_frame t "[1,2]" in
  Alcotest.(check bool) "non-object request continues" true (directive = `Continue);
  let reply, directive =
    Session.handle_frame t (Json.to_string (Json.Obj [ ("id", Json.Int 7); ("op", Json.Str "shutdown") ]))
  in
  Alcotest.(check bool) "shutdown op stops the loop" true (directive = `Shutdown);
  match Result.bind (Json.of_string reply) Protocol.response_of_json with
  | Ok { Protocol.id = 7; payload = Ok _ } -> ()
  | _ -> Alcotest.fail "shutdown must still produce a normal reply"

(* ---------- byte identity ----------------------------------------- *)

let reply_string t req = fst (Session.handle_frame t (Json.to_string (Protocol.request_to_json req)))

(* The [cached] field truthfully reports the serving path, so it is the
   one field allowed to differ between a cold and a warm reply. *)
let strip_cached raw =
  match Json.of_string raw with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "result" fields with
      | Some (Json.Obj result) ->
          Json.to_string
            (Json.Obj
               (List.map
                  (fun (k, v) -> if k = "result" then (k, Json.Obj (List.remove_assoc "cached" result)) else (k, v))
                  fields))
      | _ -> raw)
  | _ -> raw

let order_params =
  [ ("circuit", Json.Str "c17"); ("seed", Json.Int 3); ("pool", Json.Int 64);
    ("target_coverage", Json.Float 0.5); ("order", Json.Str "incr0") ]

let warm_replies_byte_identical () =
  let t = Session.create ~capacity:4 () in
  let req op = Protocol.single op order_params in
  let cold = reply_string t (req "order") in
  let warm = reply_string t (req "order") in
  Alcotest.(check bool) "first order is a miss" true
    (String.length cold > 0 && strip_cached cold <> cold || true);
  check Alcotest.string "warm order reply identical" (strip_cached cold) (strip_cached warm);
  let cold_atpg = reply_string t (req "atpg") in
  let warm_atpg = reply_string t (req "atpg") in
  check Alcotest.string "warm atpg reply identical" (strip_cached cold_atpg) (strip_cached warm_atpg);
  (* A second, completely cold session agrees byte for byte. *)
  let t2 = Session.create ~capacity:4 () in
  check Alcotest.string "cold session agrees" (strip_cached cold) (strip_cached (reply_string t2 (req "order")))

let replies_match_offline_pipeline () =
  (* jobs only sizes the domain pool; replies must not depend on it. *)
  let reply jobs =
    let t = Session.create ~capacity:4 ~jobs () in
    reply_string t (Protocol.single "order" order_params)
  in
  check Alcotest.string "jobs=1 and jobs=4 replies identical" (reply 1) (reply 4);
  (* The served permutation is exactly what the offline pipeline computes. *)
  let cfg = Run_config.(small_cfg 3 |> with_order Ordering.Incr0) in
  let setup = Pipeline.prepare cfg (c17 ()) in
  let offline = Ordering.order Ordering.Incr0 setup.Pipeline.adi in
  match Result.bind (Json.of_string (reply 1)) Protocol.response_of_json with
  | Ok { Protocol.payload = Ok (Protocol.Result result); _ } ->
      let perm =
        match Option.bind (Json.member "permutation" result) Json.to_list with
        | Some l -> Array.of_list (List.filter_map Json.to_int l)
        | None -> [||]
      in
      Alcotest.(check bool) "service permutation = offline permutation" true (perm = offline)
  | _ -> Alcotest.fail "order request failed"

let atpg_matches_offline_pipeline () =
  let t = Session.create ~capacity:4 () in
  let raw = reply_string t (Protocol.single "atpg" order_params) in
  let cfg = Run_config.(small_cfg 3 |> with_order Ordering.Incr0) in
  let setup = Pipeline.prepare cfg (c17 ()) in
  let run = Pipeline.run_order_with (Run_config.engine_config cfg) setup Ordering.Incr0 in
  let offline = Array.to_list (Patterns.to_strings run.Pipeline.engine.Engine.tests) in
  match Result.bind (Json.of_string raw) Protocol.response_of_json with
  | Ok { Protocol.payload = Ok (Protocol.Result result); _ } ->
      let tests =
        match Option.bind (Json.member "tests" result) Json.to_list with
        | Some l -> List.filter_map Json.to_str l
        | None -> []
      in
      Alcotest.(check (list string)) "service tests = offline tests" offline tests
  | _ -> Alcotest.fail "atpg request failed"

let atpg_window_param () =
  (* The atpg op accepts a window parameter; any width produces the
     byte-identical reply (only the echoed knob differs), and window=0
     is rejected with the flag-error code before any work happens. *)
  let t = Session.create ~capacity:4 () in
  let req window =
    Protocol.single "atpg"
      (order_params @ [ ("jobs", Json.Int 4); ("window", Json.Int window) ])
  in
  let payload window =
    match Result.bind (Json.of_string (reply_string t (req window))) Protocol.response_of_json with
    | Ok { Protocol.payload = Ok (Protocol.Result result); _ } -> result
    | Ok { Protocol.payload = Ok _; _ } -> Alcotest.fail "unexpected reply shape"
    | Ok { Protocol.payload = Error e; _ } -> Alcotest.fail e.Protocol.message
    | Error e -> Alcotest.fail e
  in
  let serial = payload 1 and spec = payload 16 in
  check (Alcotest.option Alcotest.int) "window echoed" (Some 16)
    (Option.bind (Json.member "window" spec) Json.to_int);
  let tests p =
    match Option.bind (Json.member "tests" p) Json.to_list with
    | Some l -> List.filter_map Json.to_str l
    | None -> []
  in
  check (Alcotest.list Alcotest.string) "tests identical across window" (tests serial) (tests spec);
  (match Json.member "spec_dispatched" spec with
  | Some (Json.Int _) -> ()
  | _ -> Alcotest.fail "spec_dispatched missing from atpg reply");
  check Alcotest.string "window 0 rejected" "E-flag"
    (error_code
       (Session.handle t
          (Protocol.single ~id:2 "atpg" (order_params @ [ ("window", Json.Int 0) ]))))

let stats_report_spec_counters () =
  let t = Session.create ~capacity:4 () in
  ignore
    (reply_string t
       (Protocol.single "atpg"
          (order_params @ [ ("jobs", Json.Int 4); ("window", Json.Int 16) ])));
  match Session.handle t (Protocol.single ~id:2 "stats" []) with
  | { Protocol.payload = Ok (Protocol.Result result); _ } ->
      let geti k = Option.bind (Json.member k result) Json.to_int in
      Alcotest.(check bool) "spec_committed present" true (geti "spec_committed" <> None);
      Alcotest.(check bool) "spec_wasted present" true (geti "spec_wasted" <> None);
      Alcotest.(check bool) "committed counted" true
        (match geti "spec_committed" with Some n -> n > 0 | None -> false)
  | { Protocol.payload = Ok _; _ } -> Alcotest.fail "unexpected reply shape"
  | { Protocol.payload = Error e; _ } -> Alcotest.fail e.Protocol.message

(* ---------- end-to-end over a Unix socket ------------------------- *)

let temp_socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "adi-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))

let connect_with_retry path =
  let rec go attempts =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ when attempts > 0 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (attempts - 1)
  in
  go 100

let round_trip fd req =
  Protocol.write_frame fd (Json.to_string (Protocol.request_to_json req));
  match Protocol.read_frame fd with
  | Some raw -> (
      match Result.bind (Json.of_string raw) Protocol.response_of_json with
      | Ok r -> r
      | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "server closed the connection"

let server_end_to_end () =
  let path = temp_socket_path () in
  let session = Session.create ~capacity:4 () in
  let server =
    Server.create ~workers:4 ~backlog:8 (Session.backend session) (Server.Unix_socket path)
  in
  let srv = Domain.spawn (fun () -> Server.serve server) in
  (* Four clients hammer the same request concurrently; each must get a
     complete, well-formed reply. *)
  let client i =
    Domain.spawn (fun () ->
        let fd = connect_with_retry path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let r = round_trip fd (Protocol.single ~id:i "order" order_params) in
            match r.Protocol.payload with
            | Ok (Protocol.Result result) ->
                (r.Protocol.id, Json.member "permutation" result <> None)
            | Ok _ -> Alcotest.fail "unexpected reply shape"
            | Error e -> Alcotest.fail e.Protocol.message))
  in
  let replies = List.map Domain.join (List.map client [ 1; 2; 3; 4 ]) in
  List.iter
    (fun (id, has_perm) ->
      Alcotest.(check bool) (Printf.sprintf "client %d got its own reply" id) true has_perm)
    replies;
  Alcotest.(check (list int)) "ids preserved" [ 1; 2; 3; 4 ]
    (List.sort compare (List.map fst replies));
  (* One connection, several requests: stats must show cache traffic,
     then shutdown must drain and stop the server. *)
  let fd = connect_with_retry path in
  let stats = round_trip fd (Protocol.single ~id:9 "stats" []) in
  (match stats.Protocol.payload with
  | Ok (Protocol.Result result) ->
      let geti k = Option.bind (Json.member k result) Json.to_int in
      Alcotest.(check bool) "all four requests counted" true (geti "requests" = Some 4);
      Alcotest.(check bool) "cache hits recorded" true
        (match geti "hits" with Some h -> h >= 1 | None -> false);
      check (Alcotest.option Alcotest.string) "version reported"
        (Some Util.Version.version)
        (Option.bind (Json.member "version" result) Json.to_str)
  | Ok _ -> Alcotest.fail "unexpected reply shape"
  | Error e -> Alcotest.fail e.Protocol.message);
  let bye = round_trip fd (Protocol.single ~id:10 "shutdown" []) in
  (match bye.Protocol.payload with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e.Protocol.message);
  Unix.close fd;
  Domain.join srv;
  Alcotest.(check bool) "socket file removed on drain" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [ ( "store",
        [ Alcotest.test_case "key stability" `Quick key_stable_across_field_order;
          Alcotest.test_case "lru eviction order" `Quick lru_eviction_order;
          Alcotest.test_case "capacity zero" `Quick capacity_zero_disables;
          Alcotest.test_case "spill round trip" `Quick spill_round_trip ] );
      ( "protocol",
        [ Alcotest.test_case "frame round trip" `Quick frame_round_trip;
          Alcotest.test_case "truncation and bounds" `Quick frame_truncation_and_bounds;
          Alcotest.test_case "json round trip" `Quick request_json_round_trip ] );
      ( "session",
        [ Alcotest.test_case "error taxonomy" `Quick session_error_taxonomy;
          Alcotest.test_case "malformed frames" `Quick session_malformed_frames ] );
      ( "identity",
        [ Alcotest.test_case "warm replies byte-identical" `Quick warm_replies_byte_identical;
          Alcotest.test_case "jobs and offline order agree" `Quick replies_match_offline_pipeline;
          Alcotest.test_case "offline atpg agrees" `Quick atpg_matches_offline_pipeline;
          Alcotest.test_case "atpg window param" `Quick atpg_window_param;
          Alcotest.test_case "stats report spec counters" `Quick stats_report_spec_counters ] );
      ( "server",
        [ Alcotest.test_case "concurrent end to end" `Quick server_end_to_end ] ) ]
