(* Edge-case and regression tests that cut across modules: degenerate
   circuits, boundary widths, and interactions the per-module suites do
   not reach. *)

let check = Alcotest.check

module B = Circuit.Builder
module Rng = Util.Rng
module Bitvec = Util.Bitvec

(* --- degenerate circuits ------------------------------------------- *)

let single_wire () =
  (* A PI observed directly: two faults, both testable, one test each
     polarity; the whole pipeline must handle it. *)
  let b = B.create ~title:"wire" () in
  let a = B.input b "a" in
  B.mark_output b a;
  let c = B.finish b in
  let fl = Collapse.collapsed c in
  check Alcotest.int "two faults" 2 (Fault_list.count fl);
  let setup = Pipeline.prepare (Run_config.with_seed 1 Run_config.default) c in
  let run = Pipeline.run_order setup Ordering.Dynm0 in
  check (Alcotest.float 1e-9) "coverage" 1.0
    (Engine.coverage setup.Pipeline.faults run.Pipeline.engine);
  check Alcotest.int "two tests" 2 (Patterns.count run.Pipeline.engine.Engine.tests)

let constant_only_output () =
  (* OUTPUT tied to a constant: the opposite-polarity fault is
     trivially detected by any vector; same-polarity is undetectable. *)
  let b = B.create ~title:"konst" () in
  let _a = B.input b "a" in
  let k = B.const b "k" true in
  B.mark_output b k;
  let c = B.finish b in
  check Alcotest.bool "sa0 detected" true (Faultsim.detects c (Fault.stem k false) [| false |]);
  check Alcotest.bool "sa1 undetectable" false (Faultsim.detects c (Fault.stem k true) [| true |])

let wide_gate () =
  (* A 64-input AND exercises arity handling and word folds. *)
  let b = B.create ~title:"wide" () in
  let ins = List.init 64 (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let g = B.gate b Gate.And "g" ins in
  B.mark_output b g;
  let c = B.finish b in
  let all_ones = Array.make 64 true in
  let v = Goodsim.eval_scalar c all_ones in
  check Alcotest.bool "and of ones" true v.(g);
  let one_zero = Array.init 64 (fun i -> i <> 17) in
  check Alcotest.bool "and with a zero" false (Goodsim.eval_scalar c one_zero).(g);
  (* g s-a-1 needs the all-ones side; PODEM must find input 17 flip. *)
  let scoap = Scoap.compute c in
  match Podem.generate c scoap (Fault.branch ~gate:g ~pin:17 true) with
  | Podem.Test cube ->
      check Alcotest.bool "pin 17 assigned 0" true (cube.(17) = Ternary.Zero)
  | _ -> Alcotest.fail "branch s-a-1 on wide AND must be testable"

let deep_inverter_chain () =
  (* 200 inverters deep: levelisation, SCOAP saturation-free costs,
     and PODEM through a long corridor. *)
  let b = B.create ~title:"deep" () in
  let a = B.input b "a" in
  let last = ref a in
  for i = 1 to 200 do
    last := B.gate b Gate.Not (Printf.sprintf "n%d" i) [ !last ]
  done;
  B.mark_output b !last;
  let c = B.finish b in
  check Alcotest.int "depth" 200 (Circuit.depth c);
  let fl = Collapse.collapsed c in
  (* The whole chain collapses into two fault classes. *)
  check Alcotest.int "two classes" 2 (Fault_list.count fl);
  let r = Engine.run fl ~order:[| 0; 1 |] in
  check (Alcotest.float 1e-9) "coverage" 1.0 (Engine.coverage fl r)

(* --- ADI edge cases ------------------------------------------------ *)

let adi_empty_u () =
  (* A zero-vector U: every fault keeps ADI = 0 and all orders equal
     the original order (zeros keep original relative order). *)
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let u = Patterns.of_vectors ~n_inputs:5 [||] in
  let adi = Adi_index.compute fl u in
  check Alcotest.bool "all zero" true (Array.for_all (fun a -> a = 0) adi.Adi_index.adi);
  check Alcotest.(option (pair int int)) "no min/max" None (Adi_index.min_max adi);
  let id = Array.init (Fault_list.count fl) Fun.id in
  List.iter
    (fun kind ->
      check Alcotest.(array int)
        (Ordering.to_string kind ^ " = orig")
        id (Ordering.order kind adi))
    Ordering.all

let adi_single_vector () =
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let u = Patterns.of_vectors ~n_inputs:5 [| Array.make 5 true |] in
  let adi = Adi_index.compute fl u in
  (* Every fault detected by the single vector has the same ADI:
     ndet(u0). *)
  let expect = adi.Adi_index.ndet.(0) in
  Array.iteri
    (fun fi a ->
      if Bitvec.popcount adi.Adi_index.dsets.(fi) > 0 then
        check Alcotest.int (Printf.sprintf "f%d" fi) expect a)
    adi.Adi_index.adi

(* --- pattern set edges --------------------------------------------- *)

let patterns_empty () =
  let p = Patterns.of_vectors ~n_inputs:3 [||] in
  check Alcotest.int "count" 0 (Patterns.count p);
  check Alcotest.int "blocks" 0 (Patterns.blocks p)

let patterns_block_boundary () =
  (* Exactly 64 and 65 patterns cross the word boundary. *)
  let rng = Rng.create 9 in
  List.iter
    (fun n ->
      let p = Patterns.random rng ~n_inputs:2 ~count:n in
      check Alcotest.int (Printf.sprintf "blocks for %d" n) ((n + 63) / 64) (Patterns.blocks p))
    [ 63; 64; 65; 128; 129 ]

let exhaustive_width_guard () =
  check Alcotest.bool "too wide rejected" true
    (try
       ignore (Patterns.exhaustive ~n_inputs:25);
       false
     with Invalid_argument _ -> true)

(* --- engine edge cases --------------------------------------------- *)

let engine_all_redundant () =
  (* A circuit whose only internal fault class on the masked branch is
     undetectable: the engine must classify it without tests. *)
  let b = B.create ~title:"red" () in
  let a = B.input b "a" in
  let na = B.gate b Gate.Not "na" [ a ] in
  let k = B.gate b Gate.Or "k" [ a; na ] in
  (* k == 1 always; AND(x, k) == x. *)
  let x = B.input b "x" in
  let g = B.gate b Gate.And "g" [ x; k ] in
  B.mark_output b g;
  let c = B.finish b in
  let fl = Collapse.collapsed c in
  let r = Engine.run fl ~order:(Array.init (Fault_list.count fl) Fun.id) in
  check Alcotest.bool "some untestable" true (r.Engine.untestable <> []);
  check Alcotest.(list int) "no aborts" [] r.Engine.aborted;
  (* Detected + untestable covers the universe. *)
  let det = Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 r.Engine.detected_by in
  check Alcotest.int "full accounting" (Fault_list.count fl)
    (det + List.length r.Engine.untestable)

let scan_names_are_stable () =
  let seq = Kiss.to_sequential (Kiss.lion ()) in
  let comb, mapping = Scan.combinational seq in
  Array.iter
    (fun (ff, id) ->
      check Alcotest.string "ppi naming" (ff ^ "__ppi") (Circuit.name comb id))
    mapping.Scan.ppis

(* --- rewrite interactions ------------------------------------------ *)

let rewrite_pin_const_on_xor () =
  (* Tying one XOR pin to 1 turns it into an inverter of the other. *)
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let g = B.gate b Gate.Xor "g" [ a; bb ] in
  B.mark_output b g;
  let c = B.finish b in
  let c' = Rewrite.apply c [ Rewrite.Pin_const { gate = g; pin = 1; value = true } ] in
  let o = (Circuit.outputs c').(0) in
  check Alcotest.bool "kind is NOT" true (Circuit.kind c' o = Gate.Not);
  let v = Goodsim.eval_scalar c' [| true; false |] in
  check Alcotest.bool "g = ~a" false v.(o)

let rewrite_preserves_po_count_order () =
  (* POs keep their positions (by name) even when some fold. *)
  let b = B.create () in
  let a = B.input b "a" in
  let z = B.const b "z" false in
  let g1 = B.gate b Gate.And "g1" [ a; z ] in
  let g2 = B.gate b Gate.Or "g2" [ a; z ] in
  B.mark_output b g1;
  B.mark_output b g2;
  let c' = Rewrite.simplify (B.finish b) in
  check Alcotest.int "two outputs" 2 (Array.length (Circuit.outputs c'));
  check Alcotest.string "first is g1" "g1" (Circuit.name c' (Circuit.outputs c').(0));
  check Alcotest.string "second is g2" "g2" (Circuit.name c' (Circuit.outputs c').(1))

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "edge"
    [
      ( "degenerate",
        [
          Alcotest.test_case "single wire" `Quick single_wire;
          Alcotest.test_case "constant output" `Quick constant_only_output;
          Alcotest.test_case "wide gate" `Quick wide_gate;
          Alcotest.test_case "deep chain" `Quick deep_inverter_chain;
        ] );
      ( "adi",
        [
          Alcotest.test_case "empty U" `Quick adi_empty_u;
          Alcotest.test_case "single vector" `Quick adi_single_vector;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "empty" `Quick patterns_empty;
          Alcotest.test_case "block boundary" `Quick patterns_block_boundary;
          Alcotest.test_case "width guard" `Quick exhaustive_width_guard;
        ] );
      ( "engine",
        [
          Alcotest.test_case "redundant classified" `Quick engine_all_redundant;
          Alcotest.test_case "scan naming" `Quick scan_names_are_stable;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "xor pin const" `Quick rewrite_pin_const_on_xor;
          Alcotest.test_case "po positions" `Quick rewrite_preserves_po_count_order;
        ] );
    ]
