(* Chaos and resilience suite.

   Proves the robustness story end to end: the failpoint grammar and
   its seeded draws, deterministic retry/backoff, crash-safety of
   every durable write (forked children are killed at injected sites
   and the survivor must see old-or-new, never torn), corrupt data
   detected by digests instead of deserialised, the resilient client
   riding through an actively faulty server with byte-identical
   results, admission-control shedding, and accept-lane supervision.

   Failpoint state is process-global, so every test disarms in a
   [Fun.protect] finaliser. *)

let check = Alcotest.check

module F = Util.Failpoint
module D = Util.Diagnostics
module Retry = Util.Retry
module Json = Util.Json

let configure ?seed spec =
  match F.configure ?seed spec with
  | Ok () -> ()
  | Stdlib.Error msg -> Alcotest.fail msg

let with_failpoints ?seed spec f =
  configure ?seed spec;
  Fun.protect ~finally:F.clear f

let with_temp_file f =
  let path = Filename.temp_file "adi-chaos" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let with_temp_dir f =
  let dir = Filename.temp_file "adi-chaos" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- failpoint grammar -------------------------------------------- *)

let failpoint_rejects_malformed () =
  let bad spec =
    match F.configure spec with
    | Stdlib.Error _ -> ()
    | Ok () ->
        F.clear ();
        Alcotest.fail (Printf.sprintf "accepted malformed spec %S" spec)
  in
  bad "noaction";
  bad "site:explode";
  bad "site:error@0";
  bad "site:error@1.5";
  bad "site:error@nan";
  bad "site:delay=xyz";
  bad ":error";
  check Alcotest.bool "bad spec leaves chaos off" false (F.active ())

let failpoint_fires_and_counts () =
  with_failpoints "s.x:error" @@ fun () ->
  check Alcotest.bool "active" true (F.active ());
  (match F.check "s.x" with
  | exception D.Failed d -> check Alcotest.bool "typed E-io" true (d.D.code = D.Io_error)
  | () -> Alcotest.fail "armed error did not fire");
  F.check "other.site";
  check Alcotest.int "other site untouched" 0 (F.triggered "other.site");
  check Alcotest.bool "fires consumes a draw" true (F.fires "s.x");
  check Alcotest.int "both draws counted" 2 (F.triggered "s.x")

let failpoint_clear_disarms () =
  configure "s.x:error";
  F.clear ();
  check Alcotest.bool "inactive" false (F.active ());
  F.check "s.x";
  check Alcotest.bool "fires is false" false (F.fires "s.x")

let failpoint_seeded_draws_reproduce () =
  Fun.protect ~finally:F.clear @@ fun () ->
  let count () =
    configure ~seed:7 "p:error@0.3";
    let n = ref 0 in
    for _ = 1 to 200 do
      if F.fires "p" then incr n
    done;
    !n
  in
  let a = count () in
  let b = count () in
  check Alcotest.int "same seed, same firing pattern" a b;
  check Alcotest.bool "probability is actually partial" true (a > 0 && a < 200)

let failpoint_delay_units () =
  Fun.protect ~finally:F.clear @@ fun () ->
  List.iter
    (fun spec ->
      configure spec;
      F.check "d";
      check Alcotest.int (spec ^ " fired") 1 (F.triggered "d"))
    [ "d:delay=5ms"; "d:delay=0.001s"; "d:delay=0" ]

let failpoint_corrupt_flips_one_byte () =
  with_failpoints "c:corrupt" @@ fun () ->
  let s = "hello, failpoints: a reasonably long payload" in
  let s' = F.corrupt "c" s in
  check Alcotest.bool "changed" true (s' <> s);
  check Alcotest.int "same length" (String.length s) (String.length s');
  let diffs = ref 0 in
  String.iteri (fun i ch -> if ch <> s'.[i] then incr diffs) s;
  check Alcotest.int "exactly one byte flipped" 1 !diffs;
  F.clear ();
  check Alcotest.bool "identity when disarmed" true (String.equal s (F.corrupt "c" s))

let failpoint_env_rejects_malformed () =
  Unix.putenv "ADI_FAILPOINTS" "bogus";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "ADI_FAILPOINTS" "";
      F.clear ())
    (fun () ->
      match F.install_from_env () with
      | exception D.Failed d ->
          check Alcotest.bool "typed E-flag" true (d.D.code = D.Invalid_flag)
      | () -> Alcotest.fail "malformed ADI_FAILPOINTS accepted")

(* --- retry policy ------------------------------------------------- *)

let retry_deterministic_backoff () =
  let now = ref 0.0 in
  let slept = ref [] in
  let clock () = !now in
  let sleep d =
    slept := d :: !slept;
    now := !now +. d
  in
  let p =
    { Retry.default with
      max_attempts = 3;
      base_delay_s = 0.05;
      multiplier = 2.0;
      jitter = false }
  in
  let calls = ref 0 in
  let v =
    Retry.run ~clock ~sleep p
      ~retryable:(fun _ -> true)
      (fun ~attempt ~budget:_ ->
        incr calls;
        check Alcotest.int "attempts are 1-based and sequential" !calls attempt;
        if attempt < 3 then failwith "boom" else 42)
  in
  check Alcotest.int "value of the succeeding attempt" 42 v;
  check
    Alcotest.(list (float 1e-9))
    "exponential, jitter-free delays" [ 0.05; 0.1 ] (List.rev !slept)

let retry_full_jitter_is_bounded_and_seeded () =
  let p = { Retry.default with jitter = true; base_delay_s = 0.1; multiplier = 2.0 } in
  let draws rng_seed =
    let rng = Util.Rng.create rng_seed in
    List.map (fun attempt -> Retry.backoff_s p rng ~attempt) [ 1; 2; 3; 4 ]
  in
  let a = draws 5 in
  List.iteri
    (fun i d ->
      let bound = min p.Retry.max_delay_s (0.1 *. (2.0 ** float_of_int i)) in
      check Alcotest.bool "within [0, bound)" true (d >= 0.0 && d < bound))
    a;
  check Alcotest.(list (float 1e-12)) "seeded draws reproduce" a (draws 5)

let retry_respects_predicate () =
  let calls = ref 0 in
  (match
     Retry.run
       { Retry.default with max_attempts = 5 }
       ~retryable:(fun _ -> false)
       (fun ~attempt:_ ~budget:_ ->
         incr calls;
         failwith "fatal")
   with
  | _ -> Alcotest.fail "non-retryable exception was swallowed"
  | exception Failure _ -> ());
  check Alcotest.int "single attempt" 1 !calls

let retry_honours_overall_budget () =
  let now = ref 0.0 in
  let clock () = !now in
  let sleep d = now := !now +. d in
  let p =
    { Retry.default with
      max_attempts = 100;
      base_delay_s = 1.0;
      multiplier = 2.0;
      jitter = false;
      overall_budget_s = Some 2.5 }
  in
  let calls = ref 0 in
  (match
     Retry.run ~clock ~sleep p
       ~retryable:(fun _ -> true)
       (fun ~attempt:_ ~budget:_ ->
         incr calls;
         failwith "always")
   with
  | _ -> Alcotest.fail "should have exhausted"
  | exception Failure _ -> ());
  check Alcotest.bool "deadline beat the attempt count" true (!calls < 100);
  check Alcotest.bool "made some attempts" true (!calls >= 2)

let retry_reports_each_retry () =
  let seen = ref [] in
  let on_retry ~attempt ~delay_s:_ _exn = seen := attempt :: !seen in
  (match
     Retry.run
       ~sleep:(fun _ -> ())
       ~on_retry
       { Retry.default with max_attempts = 3; jitter = false }
       ~retryable:(fun _ -> true)
       (fun ~attempt:_ ~budget:_ -> failwith "always")
   with
  | _ -> Alcotest.fail "should raise"
  | exception Failure _ -> ());
  check Alcotest.(list int) "one callback per retry" [ 1; 2 ] (List.rev !seen)

(* --- crash-safety: forked children killed at injected sites ------- *)

(* Run [f] in a forked child with [spec] armed; return the child's
   exit status.  The child leaves through [Unix._exit] on every path,
   so the parent's runtime state is never touched. *)
let crash_child ~spec f =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (match F.configure spec with
      | Ok () -> ()
      | Stdlib.Error _ -> Unix._exit 99);
      (try f () with _ -> Unix._exit 98);
      Unix._exit 97
  | pid ->
      let _, status = Unix.waitpid [] pid in
      status

let crash_sites = [ "atomic.tmp_written"; "atomic.synced"; "atomic.renamed" ]

let atomic_file_crash_qcheck =
  QCheck.Test.make ~count:8 ~name:"atomic_file.crash_at_every_step_old_or_new"
    QCheck.(pair printable_string printable_string)
    (fun (old_c, new_c) ->
      List.for_all
        (fun site ->
          with_temp_file @@ fun path ->
          Util.Atomic_file.write path (fun oc -> output_string oc old_c);
          let status =
            crash_child ~spec:(site ^ ":crash") (fun () ->
                Util.Atomic_file.write path (fun oc -> output_string oc new_c))
          in
          status = Unix.WEXITED F.crash_exit_code
          &&
          let got = read_file path in
          String.equal got old_c || String.equal got new_c)
        crash_sites)

(* The same old-or-new-never-torn discipline, one layer up: a process
   killed while spilling an evicted cache entry must leave a spill
   directory a fresh store can read without error — either the entry
   reloads intact or it is a clean miss. *)
let store_setup =
  lazy
    (let c = Library.c17 () in
     (c, Run_config.default, Pipeline.prepare Run_config.default c))

let store_spill_crash_qcheck =
  QCheck.Test.make ~count:4 ~name:"store.spill_crash_reload_or_miss"
    (QCheck.oneofl ("store.spill" :: crash_sites))
    (fun site ->
      let c, cfg, setup = Lazy.force store_setup in
      let key = Service.Store.key_of c cfg in
      with_temp_dir @@ fun dir ->
      let status =
        crash_child ~spec:(site ^ ":crash") (fun () ->
            let store = Service.Store.create ~capacity:1 ~spill_dir:dir () in
            Service.Store.add store key setup;
            (* this insertion evicts and spills [key] — crash there *)
            Service.Store.add store "other-key" setup)
      in
      status = Unix.WEXITED F.crash_exit_code
      &&
      let store = Service.Store.create ~capacity:1 ~spill_dir:dir () in
      match Service.Store.find store key with
      | None -> true (* lost spill is a miss, never an error *)
      | Some back -> back.Pipeline.adi = setup.Pipeline.adi)

let corrupt_spill_is_a_clean_miss () =
  let c, cfg, setup = Lazy.force store_setup in
  let key = Service.Store.key_of c cfg in
  with_temp_dir @@ fun dir ->
  with_failpoints "store.spill:corrupt" @@ fun () ->
  let store = Service.Store.create ~capacity:1 ~spill_dir:dir () in
  Service.Store.add store key setup;
  Service.Store.add store "other-key" setup;
  check Alcotest.bool "corruption fired" true (F.triggered "store.spill" >= 1);
  F.clear ();
  let fresh = Service.Store.create ~capacity:1 ~spill_dir:dir () in
  check Alcotest.bool "digest mismatch becomes a miss" true
    (Service.Store.find fresh key = None)

(* --- checkpoint crash and recovery -------------------------------- *)

let c17_checkpoint ~seed =
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  let polls = ref 0 in
  let r =
    Engine.run fl ~order
      ~should_stop:(fun () ->
        incr polls;
        !polls > 2)
  in
  ( c,
    {
      Checkpoint.circuit_title = "c17";
      circuit_digest = Checkpoint.digest_of_circuit c;
      seed;
      order_kind = "0dynm";
      generator = "podem";
      backtrack_limit = 256;
      retries = 1;
      order;
      snapshot = Option.get r.Engine.snapshot;
    } )

let checkpoint_kill9_old_or_new () =
  let _, old_ck = c17_checkpoint ~seed:1 in
  let _, new_ck = c17_checkpoint ~seed:2 in
  List.iter
    (fun site ->
      with_temp_file @@ fun path ->
      Checkpoint.save path old_ck;
      let status =
        crash_child ~spec:(site ^ ":crash") (fun () -> Checkpoint.save path new_ck)
      in
      check Alcotest.bool (site ^ ": child killed by injection") true
        (status = Unix.WEXITED F.crash_exit_code);
      (* the survivor must load cleanly and be one of the two states *)
      let back = Checkpoint.load path in
      check Alcotest.bool
        (site ^ ": old or new, never torn")
        true
        (back.Checkpoint.seed = old_ck.Checkpoint.seed
        || back.Checkpoint.seed = new_ck.Checkpoint.seed))
    ("checkpoint.save" :: crash_sites)

let corrupt_checkpoint_is_typed () =
  let _, ck = c17_checkpoint ~seed:1 in
  with_temp_file @@ fun path ->
  Checkpoint.save path ck;
  let full = read_file path in
  let oc = open_out_bin path in
  (* flip a byte deep inside the marshalled payload *)
  let b = Bytes.of_string full in
  let i = String.length full - 5 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
  output_bytes oc b;
  close_out oc;
  match Checkpoint.load path with
  | exception D.Failed d ->
      check Alcotest.bool "digest mismatch is E-checkpoint-format" true
        (d.D.code = D.Checkpoint_format)
  | _ -> Alcotest.fail "corrupt payload deserialised"

(* --- harness resume: lenient by default, strict on demand --------- *)

let garbage_checkpoint path =
  let oc = open_out_bin path in
  output_string oc "ADI-ATPG-CKPT v3\nnot-a-digest\ngarbage payload";
  close_out oc

let resume_lenient_starts_fresh () =
  let c = Library.c17 () in
  let full = Harness.run_atpg ~seed:1 c in
  with_temp_file @@ fun path ->
  garbage_checkpoint path;
  let cfg =
    Run_config.(default |> with_checkpoint (Some path) |> with_resume true)
  in
  let r = Harness.run_atpg_cfg cfg c in
  check Alcotest.string "fresh run, byte-identical report" full.Harness.report
    r.Harness.report

let resume_strict_fails_typed () =
  let c = Library.c17 () in
  with_temp_file @@ fun path ->
  garbage_checkpoint path;
  let cfg =
    Run_config.(
      default
      |> with_checkpoint (Some path)
      |> with_resume true
      |> with_resume_strict true)
  in
  match Harness.run_atpg_cfg cfg c with
  | exception D.Failed d ->
      check Alcotest.bool "strict resume raises E-checkpoint-format" true
        (d.D.code = D.Checkpoint_format)
  | _ -> Alcotest.fail "--resume-strict accepted a corrupt checkpoint"

let resume_strict_requires_resume () =
  let cfg = Run_config.(default |> with_resume_strict true) in
  match Run_config.validate cfg with
  | exception D.Failed d -> check Alcotest.bool "E-flag" true (d.D.code = D.Invalid_flag)
  | () -> Alcotest.fail "--resume-strict without --resume validated"

(* --- wire-level fault detection ----------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () -> f a b)

let protocol_digest_detects_corruption () =
  with_socketpair @@ fun a b ->
  with_failpoints "protocol.write:corrupt" @@ fun () ->
  Service.Protocol.write_frame a {|{"id": 1, "op": "stats"}|};
  match Service.Protocol.read_frame b with
  | exception D.Failed d ->
      check Alcotest.bool "corruption surfaces as E-protocol" true (d.D.code = D.Protocol)
  | Some _ -> Alcotest.fail "corrupt frame delivered as data"
  | None -> Alcotest.fail "corrupt frame read as clean EOF"

let protocol_torn_write_is_typed () =
  with_socketpair @@ fun a b ->
  with_failpoints "protocol.torn:error" @@ fun () ->
  (match Service.Protocol.write_frame a "0123456789abcdef" with
  | exception D.Failed d ->
      check Alcotest.bool "torn write is typed E-io" true (d.D.code = D.Io_error)
  | () -> Alcotest.fail "torn write reported success");
  Unix.close a;
  (* the reader must see a failure or EOF, never a partial frame *)
  match Service.Protocol.read_frame b with
  | None -> ()
  | Some _ -> Alcotest.fail "partial frame delivered as data"
  | exception D.Failed _ -> ()

(* --- client vs a fault-injected server ---------------------------- *)

let strip_cached = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields)
  | j -> j

let with_server ?(workers = 2) ?max_inflight ?queue_wait_s f =
  let path = Filename.temp_file "adi-chaos" ".sock" in
  Sys.remove path;
  let address = Service.Server.Unix_socket path in
  let session = Service.Session.create ~capacity:4 ~jobs:1 () in
  let server =
    Service.Server.create ~workers ?max_inflight ?queue_wait_s
      (Service.Session.backend session) address
  in
  let ready = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        Service.Server.serve server ~on_ready:(fun () -> Atomic.set ready true))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      Service.Server.request_stop server;
      Domain.join dom;
      F.clear ())
    (fun () -> f ~path ~address ~session ~server)

let resilient_policy =
  { Service.Client.default_policy with
    Util.Retry.max_attempts = 10;
    base_delay_s = 0.005;
    overall_budget_s = Some 60.0 }

let client_rides_through_chaos_byte_identical () =
  let params = [ ("circuit", Json.Str "c17") ] in
  let expected =
    let pristine = Service.Session.create ~capacity:4 ~jobs:1 () in
    match
      (Service.Session.handle pristine (Service.Protocol.single "adi" params))
        .Service.Protocol.payload
    with
    | Ok (Service.Protocol.Result j) -> Json.to_string (strip_cached j)
    | Ok _ -> Alcotest.fail "unexpected reply shape"
    | Error e -> Alcotest.fail e.Service.Protocol.message
  in
  with_server @@ fun ~path:_ ~address ~session:_ ~server:_ ->
  configure ~seed:3
    "protocol.write:error@0.15,protocol.write:corrupt@0.1,session.handle:delay=2ms@0.3";
  let client = Service.Client.create ~policy:resilient_policy address in
  Fun.protect
    ~finally:(fun () -> Service.Client.close client)
    (fun () ->
      for _ = 1 to 10 do
        match Service.Client.request client "adi" params with
        | Ok j ->
            check Alcotest.string "byte-identical under chaos" expected
              (Json.to_string (strip_cached j))
        | Error e -> Alcotest.fail ("typed error under chaos: " ^ e.Service.Protocol.message)
      done;
      F.clear ())

let client_deadline_is_typed () =
  with_server @@ fun ~path:_ ~address ~session:_ ~server:_ ->
  configure "session.handle:delay=500ms";
  let policy = { Service.Client.default_policy with Util.Retry.max_attempts = 1 } in
  let client = Service.Client.create ~policy address in
  Fun.protect
    ~finally:(fun () -> Service.Client.close client)
    (fun () ->
      (match Service.Client.request client ~timeout_s:0.05 "stats" [] with
      | exception D.Failed d ->
          check Alcotest.bool "typed E-budget" true (d.D.code = D.Budget_expired)
      | _ -> Alcotest.fail "deadline did not expire");
      F.clear ())

let admission_control_sheds_typed () =
  with_server ~workers:4 ~max_inflight:1 ~queue_wait_s:0.01
  @@ fun ~path:_ ~address ~session ~server:_ ->
  configure "session.handle:delay=300ms";
  let attempt () =
    let policy = { Service.Client.default_policy with Util.Retry.max_attempts = 1 } in
    let c = Service.Client.create ~policy address in
    Fun.protect
      ~finally:(fun () -> Service.Client.close c)
      (fun () ->
        match Service.Client.request c ~timeout_s:10.0 "stats" [] with
        | Ok _ -> `Ok
        | Error _ -> `Err
        | exception D.Failed d when d.D.code = D.Overload -> `Shed
        | exception D.Failed _ -> `Err)
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn attempt) in
  let rs = Array.map Domain.join doms in
  F.clear ();
  check Alcotest.bool "someone was admitted" true (Array.exists (( = ) `Ok) rs);
  check Alcotest.bool "someone was shed" true (Array.exists (( = ) `Shed) rs);
  check Alcotest.bool "session counted the sheds" true (Service.Session.shed_count session >= 1)

let overloaded_retrier_eventually_wins () =
  with_server ~workers:4 ~max_inflight:1 ~queue_wait_s:0.01
  @@ fun ~path:_ ~address ~session:_ ~server:_ ->
  configure "session.handle:delay=30ms";
  let attempt () =
    let c = Service.Client.create ~policy:resilient_policy address in
    Fun.protect
      ~finally:(fun () -> Service.Client.close c)
      (fun () ->
        match Service.Client.request c "stats" [] with
        | Ok _ -> true
        | Error _ | (exception D.Failed _) -> false)
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn attempt) in
  let rs = Array.map Domain.join doms in
  F.clear ();
  check Alcotest.bool "every retrying client succeeded" true (Array.for_all Fun.id rs)

(* Regression: a lane dying inside the accept path must not wedge the
   server, leak the listener, or leave the socket file behind. *)
let lane_death_keeps_serving_and_cleans_up () =
  let captured = ref None in
  with_server ~workers:2 (fun ~path ~address ~session:_ ~server ->
      captured := Some (path, server);
      configure ~seed:5 "server.accept:error@0.5";
      let client = Service.Client.create ~policy:resilient_policy address in
      Fun.protect
        ~finally:(fun () -> Service.Client.close client)
        (fun () ->
          for _ = 1 to 6 do
            match Service.Client.request client "stats" [] with
            | Ok _ -> ()
            | Error e -> Alcotest.fail e.Service.Protocol.message
          done);
      (* Idle lanes hit the accept failpoint once per poll interval, so
         with the fault still armed restarts accumulate at a steady
         rate; wait for one instead of racing the polling cadence. *)
      let deadline = Util.Budget.of_seconds 5.0 in
      while
        Service.Server.lane_restarts server < 1 && not (Util.Budget.expired deadline)
      do
        Unix.sleepf 0.01
      done;
      F.clear ());
  let path, server = Option.get !captured in
  check Alcotest.bool "socket file removed after drain" false (Sys.file_exists path);
  check Alcotest.bool "lanes were revived" true (Service.Server.lane_restarts server >= 1)

let health_reports_runtime () =
  with_server ~workers:2 @@ fun ~path:_ ~address ~session:_ ~server:_ ->
  let client = Service.Client.create address in
  Fun.protect
    ~finally:(fun () -> Service.Client.close client)
    (fun () ->
      match Service.Client.request client "health" [] with
      | Ok (Json.Obj fields) ->
          List.iter
            (fun k -> check Alcotest.bool ("health has " ^ k) true (List.mem_assoc k fields))
            [ "version"; "uptime_s"; "requests"; "errors"; "shed"; "entries";
              "capacity"; "jobs"; "inflight"; "max_inflight"; "workers";
              "lane_restarts" ];
          check Alcotest.bool "workers echoed" true
            (List.assoc "workers" fields = Json.Int 2)
      | Ok _ -> Alcotest.fail "health reply is not an object"
      | Error e -> Alcotest.fail e.Service.Protocol.message)

(* --- registration -------------------------------------------------- *)

let test name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "chaos"
    [
      ( "failpoint",
        [
          test "rejects malformed specs" failpoint_rejects_malformed;
          test "fires and counts" failpoint_fires_and_counts;
          test "clear disarms" failpoint_clear_disarms;
          test "seeded draws reproduce" failpoint_seeded_draws_reproduce;
          test "delay units" failpoint_delay_units;
          test "corrupt flips one byte" failpoint_corrupt_flips_one_byte;
          test "env rejects malformed" failpoint_env_rejects_malformed;
        ] );
      ( "retry",
        [
          test "deterministic backoff" retry_deterministic_backoff;
          test "full jitter bounded and seeded" retry_full_jitter_is_bounded_and_seeded;
          test "respects retryable predicate" retry_respects_predicate;
          test "honours overall budget" retry_honours_overall_budget;
          test "reports each retry" retry_reports_each_retry;
        ] );
      ( "crash-safety",
        [
          QCheck_alcotest.to_alcotest atomic_file_crash_qcheck;
          QCheck_alcotest.to_alcotest store_spill_crash_qcheck;
          test "corrupt spill is a clean miss" corrupt_spill_is_a_clean_miss;
          test "checkpoint kill -9 leaves old or new" checkpoint_kill9_old_or_new;
          test "corrupt checkpoint is typed" corrupt_checkpoint_is_typed;
        ] );
      ( "resume",
        [
          test "lenient resume starts fresh" resume_lenient_starts_fresh;
          test "strict resume fails typed" resume_strict_fails_typed;
          test "strict requires resume" resume_strict_requires_resume;
        ] );
      ( "wire",
        [
          test "digest detects corruption" protocol_digest_detects_corruption;
          test "torn write is typed" protocol_torn_write_is_typed;
        ] );
      ( "service",
        [
          test "client rides through chaos" client_rides_through_chaos_byte_identical;
          test "client deadline is typed" client_deadline_is_typed;
          test "admission control sheds" admission_control_sheds_typed;
          test "overloaded retrier wins" overloaded_retrier_eventually_wins;
          test "lane death: serve, drain, clean up" lane_death_keeps_serving_and_cleans_up;
          test "health reports runtime" health_reports_runtime;
        ] );
    ]
