(* Tests for the observability layer (Util.Metrics / Util.Trace) and
   the Run_config redesign: counter/histogram/span semantics under an
   injectable clock, JSONL schema round-trips, the
   instrumentation-is-purely-observational invariant (identical engine
   results with metrics on/off and for any jobs count), and the
   equivalence of the legacy optional-argument entry points with the
   Run_config paths. *)

module Metrics = Util.Metrics
module Trace = Util.Trace
module D = Util.Diagnostics

let check = Alcotest.check

(* ---------- counters and histograms ------------------------------- *)

let counter_semantics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "engine.tests" in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "incr + add" 5 (Metrics.count c);
  Metrics.set c 3;
  check Alcotest.int "set overwrites" 3 (Metrics.count c);
  let c' = Metrics.counter m "engine.tests" in
  Metrics.incr c';
  check Alcotest.int "find-or-create shares the handle" 4 (Metrics.count c);
  check Alcotest.int "one registration" 1 (List.length (Metrics.counters m))

let histogram_semantics () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "gen_s" in
  List.iter (Metrics.observe h) [ 2.0; 6.0; 1.0 ];
  check Alcotest.int "observations" 3 (Metrics.observations h);
  check (Alcotest.float 1e-9) "total" 9.0 (Metrics.total h);
  check (Alcotest.float 1e-9) "mean" 3.0 (Metrics.mean h);
  check (Alcotest.float 1e-9) "min" 1.0 (Metrics.minimum h);
  check (Alcotest.float 1e-9) "max" 6.0 (Metrics.maximum h);
  Metrics.reset m;
  check Alcotest.int "reset zeroes" 0 (Metrics.observations h)

let null_registry_inert () =
  check Alcotest.bool "null not live" false (Metrics.live Metrics.null);
  (* Null handles are shared dead-stores: updates are absorbed without
     registering anything, so nothing is ever rendered. *)
  let c = Metrics.counter Metrics.null "anything" in
  Metrics.incr c;
  Metrics.add c 100;
  Metrics.observe (Metrics.histogram Metrics.null "h") 1.0;
  check Alcotest.int "no counters registered" 0
    (List.length (Metrics.counters Metrics.null));
  check Alcotest.int "no histograms registered" 0
    (List.length (Metrics.histograms Metrics.null))

(* ---------- spans under an injectable clock ----------------------- *)

let fake_tracer () =
  let now = ref 0.0 in
  let events = ref [] in
  let tr = Trace.make ~clock:(fun () -> !now) ~sink:(fun e -> events := e :: !events) () in
  (now, (fun () -> List.rev !events), tr)

let span_timing () =
  let now, events, tr = fake_tracer () in
  now := 1.0;
  Trace.span tr "outer" (fun () ->
      now := 2.0;
      Trace.span tr "inner" (fun () -> now := 3.5);
      now := 4.0);
  (match events () with
  | [ Trace.Span i; Trace.Span o ] ->
      (* Children close (and are emitted) before their parents. *)
      check Alcotest.string "inner first" "inner" i.name;
      check (Alcotest.float 1e-9) "inner start" 2.0 i.at_s;
      check (Alcotest.float 1e-9) "inner duration" 1.5 i.dur_s;
      check Alcotest.int "inner depth" 1 i.depth;
      check Alcotest.string "outer second" "outer" o.name;
      check (Alcotest.float 1e-9) "outer start" 1.0 o.at_s;
      check (Alcotest.float 1e-9) "outer duration" 3.0 o.dur_s;
      check Alcotest.int "outer depth" 0 o.depth
  | evs -> Alcotest.failf "expected two spans, got %d events" (List.length evs));
  let h = Metrics.histogram (Trace.metrics tr) (Metrics.span_prefix ^ "outer") in
  check (Alcotest.float 1e-9) "span folded into phase histogram" 3.0 (Metrics.total h)

let span_emitted_on_raise () =
  let now, events, tr = fake_tracer () in
  (try
     Trace.span tr "doomed" (fun () ->
         now := 2.5;
         failwith "boom")
   with Failure _ -> ());
  match events () with
  | [ Trace.Span s ] ->
      check Alcotest.string "name" "doomed" s.name;
      check (Alcotest.float 1e-9) "duration up to the raise" 2.5 s.dur_s
  | _ -> Alcotest.fail "span event lost on raise"

let time_and_now () =
  let now, _events, tr = fake_tracer () in
  let h = Trace.histogram tr "block_s" in
  now := 1.0;
  Trace.time tr h (fun () -> now := 1.25);
  Trace.time tr h (fun () -> now := 2.0);
  check Alcotest.int "two samples, no span events" 2 (Metrics.observations h);
  check (Alcotest.float 1e-9) "summed durations" 1.0 (Metrics.total h);
  check (Alcotest.float 1e-9) "now_s reads the clock" 2.0 (Trace.now_s tr);
  check (Alcotest.float 1e-9) "null now_s is 0" 0.0 (Trace.now_s Trace.null);
  check Alcotest.int "null span runs the body" 7 (Trace.span Trace.null "x" (fun () -> 7))

let flush_emits_registry () =
  let _now, events, tr = fake_tracer () in
  Metrics.add (Trace.counter tr "podem.decisions") 42;
  Metrics.observe (Trace.histogram tr "gen_s") 0.5;
  Trace.flush_metrics tr;
  let counters, hists =
    List.partition (function Trace.Counter _ -> true | _ -> false) (events ())
  in
  (match counters with
  | [ Trace.Counter c ] ->
      check Alcotest.string "counter name" "podem.decisions" c.name;
      check Alcotest.int "counter value" 42 c.value
  | _ -> Alcotest.fail "expected one counter event");
  match hists with
  | [ Trace.Hist h ] ->
      check Alcotest.string "hist name" "gen_s" h.name;
      check Alcotest.int "hist count" 1 h.n;
      check (Alcotest.float 1e-9) "hist sum" 0.5 h.sum
  | _ -> Alcotest.fail "expected one hist event"

(* ---------- JSONL schema ------------------------------------------ *)

let event : Trace.event Alcotest.testable =
  Alcotest.testable (fun ppf e -> Format.pp_print_string ppf (Trace.to_json e)) ( = )

let roundtrip e =
  match Trace.of_json (Trace.to_json e) with
  | Ok e' -> check event "round-trip" e e'
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let jsonl_roundtrip () =
  let attrs =
    [
      ("faults", Trace.Int 1662);
      ("ratio", Trace.Float (-0.035625));
      ("circuit", Trace.Str "weird \"name\"\nwith\\escapes");
      ("pooled", Trace.Bool true);
    ]
  in
  roundtrip (Trace.Span { name = "engine.pass"; at_s = 0.125; dur_s = 1e-9; depth = 2; attrs });
  roundtrip (Trace.Instant { name = "engine.budget_expired"; at_s = 3.5; attrs = [] });
  roundtrip (Trace.Counter { name = "engine.tests"; value = 0; attrs });
  roundtrip
    (Trace.Hist
       { name = "gen_s"; n = 3; sum = 0.75; min_v = 0.1; max_v = 0.5; attrs = [] })

let jsonl_lines_carry_schema () =
  let line = Trace.to_json (Trace.Instant { name = "x"; at_s = 0.0; attrs = [] }) in
  check Alcotest.bool "single line" false (String.contains line '\n');
  let has_schema =
    let pat = Printf.sprintf "\"schema\":\"%s\"" Trace.schema in
    let n = String.length line and m = String.length pat in
    let rec scan i = i + m <= n && (String.sub line i m = pat || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "schema field present" true has_schema

let jsonl_rejects_garbage () =
  (match Trace.of_json "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Trace.of_json "{\"schema\":\"other/v9\",\"ev\":\"instant\",\"name\":\"x\",\"at_s\":0}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted"

(* ---------- instrumentation is purely observational --------------- *)

let same_result (a : Engine.result) (b : Engine.result) =
  Patterns.to_strings a.Engine.tests = Patterns.to_strings b.Engine.tests
  && a.Engine.detected_by = b.Engine.detected_by
  && a.Engine.targeted = b.Engine.targeted
  && a.Engine.untestable = b.Engine.untestable
  && a.Engine.aborted = b.Engine.aborted
  && a.Engine.out_of_budget = b.Engine.out_of_budget
  && a.Engine.retry_recovered = b.Engine.retry_recovered
  && a.Engine.interrupted = b.Engine.interrupted
  && a.Engine.stats = b.Engine.stats

let observability_does_not_change_results () =
  let c = Library.c17 () in
  let base = Harness.run_atpg_cfg Run_config.default c in
  let trace_file = Filename.temp_file "adi_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove trace_file) @@ fun () ->
  let observed =
    Harness.run_atpg_cfg
      Run_config.(default |> with_metrics true |> with_trace (Some trace_file))
      c
  in
  check Alcotest.bool "metrics+trace leave the result untouched" true
    (same_result base.Harness.result observed.Harness.result);
  check Alcotest.string "same report" base.Harness.report observed.Harness.report;
  check Alcotest.bool "plain run carries no metrics report" true
    (base.Harness.metrics_report = None);
  check Alcotest.bool "observed run carries one" true
    (observed.Harness.metrics_report <> None);
  (* Every emitted line parses back under the stable schema. *)
  let ic = open_in trace_file in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Trace.of_json line with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "unparseable trace line: %s (%s)" line msg
     done
   with End_of_file -> ());
  check Alcotest.bool "trace has events" true (!lines > 0)

let jobs_parity_with_metrics () =
  let c = Library.c17 () in
  let serial =
    Harness.run_atpg_cfg Run_config.(default |> with_metrics true) c
  in
  let pooled =
    Harness.run_atpg_cfg Run_config.(default |> with_jobs 4 |> with_metrics true) c
  in
  check Alcotest.bool "jobs=1 and jobs=4 agree under metrics" true
    (same_result serial.Harness.result pooled.Harness.result)

(* ---------- Run_config and the legacy entry points ---------------- *)

let run_config_defaults () =
  let e = Run_config.engine_config Run_config.default in
  check Alcotest.int "backtracks" Engine.default_config.Engine.backtrack_limit
    e.Engine.backtrack_limit;
  check Alcotest.int "retries" Engine.default_config.Engine.retries e.Engine.retries;
  check Alcotest.bool "generator" true
    (e.Engine.generator = Engine.default_config.Engine.generator);
  check Alcotest.int "seed follows the pipeline seed" 1 e.Engine.seed;
  check Alcotest.int "jobs" 1 e.Engine.jobs;
  check Alcotest.bool "no budgets" true
    (e.Engine.time_budget_s = None && e.Engine.per_fault_budget_s = None);
  check Alcotest.bool "observability off by default" false
    (Run_config.observed Run_config.default)

let legacy_wrapper_equivalence () =
  let c = Library.c17 () in
  let legacy = Harness.run_atpg ~seed:3 ~order:Ordering.Dynm c in
  let cfg = Run_config.(default |> with_seed 3 |> with_order Ordering.Dynm) in
  let modern = Harness.run_atpg_cfg cfg c in
  check Alcotest.string "identical report" legacy.Harness.report modern.Harness.report;
  check Alcotest.bool "identical result" true
    (same_result legacy.Harness.result modern.Harness.result)

let invalid_flag code f =
  match f () with
  | exception D.Failed d -> check Alcotest.bool code true (d.D.code = D.Invalid_flag)
  | _ -> Alcotest.failf "%s accepted" code

let builder_validation () =
  invalid_flag "jobs 0" (fun () -> Run_config.with_jobs 0 Run_config.default);
  invalid_flag "pool 0" (fun () -> Run_config.with_pool 0 Run_config.default);
  invalid_flag "coverage 1.5" (fun () ->
      Run_config.with_target_coverage 1.5 Run_config.default);
  invalid_flag "backtracks -1" (fun () ->
      Run_config.with_backtrack_limit (-1) Run_config.default);
  invalid_flag "resume without checkpoint" (fun () ->
      Run_config.validate { Run_config.default with Run_config.resume = true })

let shared_flag_parser () =
  let cfg, rest =
    Run_flags.parse ~init:Run_config.default
      [ "--seed"; "7"; "-j"; "2"; "table5"; "--metrics"; "--trace"; "t.jsonl"; "--full" ]
  in
  check Alcotest.int "seed" 7 cfg.Run_config.seed;
  check Alcotest.int "jobs via -j" 2 cfg.Run_config.jobs;
  check Alcotest.bool "metrics" true cfg.Run_config.metrics;
  check Alcotest.bool "trace" true (cfg.Run_config.trace = Some "t.jsonl");
  check (Alcotest.list Alcotest.string) "leftovers in order" [ "table5"; "--full" ] rest;
  invalid_flag "jobs 0 via parser" (fun () ->
      Run_flags.parse ~init:Run_config.default [ "--jobs"; "0" ]);
  invalid_flag "non-integer seed" (fun () ->
      Run_flags.parse ~init:Run_config.default [ "--seed"; "lots" ]);
  invalid_flag "missing value" (fun () ->
      Run_flags.parse ~init:Run_config.default [ "--trace" ])

let trace_file_append_on_resume () =
  let path = Filename.temp_file "adi_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let count () =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    !n
  in
  let cfg = Run_config.(default |> with_trace (Some path)) in
  let emit cfg =
    ignore
      (Harness.with_observability cfg (fun () ->
           Trace.instant (Trace.current ()) "test.marker"))
  in
  emit cfg;
  let fresh = count () in
  check Alcotest.bool "fresh run wrote the file" true (fresh > 0);
  emit cfg;
  check Alcotest.int "a fresh run truncates" fresh (count ());
  emit { cfg with Run_config.resume = true };
  check Alcotest.int "a resumed run appends" (2 * fresh) (count ())

let () =
  Trace.install_from_env ();
  Alcotest.run "observability"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick counter_semantics;
          Alcotest.test_case "histogram semantics" `Quick histogram_semantics;
          Alcotest.test_case "null registry" `Quick null_registry_inert;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span timing" `Quick span_timing;
          Alcotest.test_case "span on raise" `Quick span_emitted_on_raise;
          Alcotest.test_case "time/now" `Quick time_and_now;
          Alcotest.test_case "flush metrics" `Quick flush_emits_registry;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick jsonl_roundtrip;
          Alcotest.test_case "schema field" `Quick jsonl_lines_carry_schema;
          Alcotest.test_case "rejects garbage" `Quick jsonl_rejects_garbage;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "observation-free results" `Quick
            observability_does_not_change_results;
          Alcotest.test_case "jobs parity" `Quick jobs_parity_with_metrics;
        ] );
      ( "run_config",
        [
          Alcotest.test_case "defaults" `Quick run_config_defaults;
          Alcotest.test_case "legacy equivalence" `Quick legacy_wrapper_equivalence;
          Alcotest.test_case "builder validation" `Quick builder_validation;
          Alcotest.test_case "shared parser" `Quick shared_flag_parser;
          Alcotest.test_case "trace append on resume" `Quick trace_file_append_on_resume;
        ] );
    ]
