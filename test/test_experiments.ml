(* Tests for the experiment harness: the report formatters produce the
   paper's artefacts from real (small) runs, and the shared evaluation
   machinery is consistent. *)

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A small evaluation reused by several cases (lion: fast). *)
let lion_eval =
  lazy
    (Evaluation.evaluate ~paper_name:"lion" (Kiss.to_combinational (Kiss.lion ())))

let table1_mentions_all_vectors () =
  let s = Reports.table1 () in
  check Alcotest.bool "has title" true (contains s "Table 1");
  check Alcotest.bool "has ndet row" true (contains s "ndet(u)");
  check Alcotest.bool "has worked examples" true (contains s "ADI(f)");
  check Alcotest.bool "has dynamic steps" true (contains s "step 4")

let table4_row_shape () =
  let ev = Lazy.force lion_eval in
  let s = Reports.table4 [ ev ] in
  check Alcotest.bool "title" true (contains s "Table 4");
  check Alcotest.bool "row" true (contains s "lion");
  (* lion has 4 inputs. *)
  check Alcotest.bool "inp column" true (contains s "4")

let table5_has_average () =
  let ev = Lazy.force lion_eval in
  let s = Reports.table5 [ ev ] in
  check Alcotest.bool "title" true (contains s "Table 5");
  check Alcotest.bool "average row" true (contains s "average")

let table5_counts_match_runs () =
  let ev = Lazy.force lion_eval in
  let s = Reports.table5 [ ev ] in
  let n = Pipeline.test_count (Evaluation.run ev Ordering.Dynm0) in
  check Alcotest.bool "0dynm count appears" true (contains s (string_of_int n))

let table6_table7_ratios () =
  let ev = Lazy.force lion_eval in
  let s6 = Reports.table6 [ ev ] and s7 = Reports.table7 [ ev ] in
  check Alcotest.bool "t6 title" true (contains s6 "Table 6");
  check Alcotest.bool "t7 title" true (contains s7 "Table 7");
  (* orig column is 1.000 by construction. *)
  check Alcotest.bool "t6 unit ratio" true (contains s6 "1.000");
  check Alcotest.bool "t7 unit ratio" true (contains s7 "1.000")

let figure1_has_markers () =
  let ev = Lazy.force lion_eval in
  let s = Reports.figure1 ev in
  check Alcotest.bool "title" true (contains s "Figure 1");
  check Alcotest.bool "legend orig" true (contains s "o - orig");
  check Alcotest.bool "legend dynm" true (contains s "d - dynm");
  check Alcotest.bool "legend 0dynm" true (contains s "z - 0dynm")

let evaluation_is_consistent () =
  let ev = Lazy.force lion_eval in
  (* AVE ratio of orig against itself is exactly 1. *)
  check (Alcotest.float 1e-9) "orig ave ratio" 1.0 (Evaluation.ave_ratio ev Ordering.Orig);
  check (Alcotest.float 1e-9) "orig rt ratio" 1.0
    (Evaluation.runtime_ratio ev Ordering.Orig);
  let curve = Evaluation.curve ev Ordering.Orig in
  check Alcotest.bool "curve nonempty" true (Coverage.tests curve > 0)

let ablation_u_renders () =
  let s = Reports.ablation_u (Kiss.to_combinational (Kiss.lion ())) ~seed:1 in
  check Alcotest.bool "title" true (contains s "Ablation A2");
  check Alcotest.bool "has rows" true (contains s "0.90")

let ablation_static_renders () =
  let ev =
    Evaluation.evaluate
      ~orders:[ Ordering.Decr; Ordering.Decr0; Ordering.Dynm; Ordering.Dynm0 ]
      ~paper_name:"lion"
      (Kiss.to_combinational (Kiss.lion ()))
  in
  let s = Reports.ablation_static [ ev ] in
  check Alcotest.bool "title" true (contains s "Ablation A1");
  check Alcotest.bool "row" true (contains s "lion")

let harness_rejects_unknown () =
  check Alcotest.bool "unknown experiment" true
    (try
       ignore (Harness.run_experiment ~full:false "nope");
       false
     with Invalid_argument _ -> true)

let harness_names_cover_run () =
  (* every name except "all" renders something; use only the cheap ones
     here to keep the suite fast. *)
  List.iter
    (fun w ->
      let s = Harness.run_experiment ~full:false w in
      check Alcotest.bool (w ^ " nonempty") true (String.length s > 0))
    [ "table1" ]

(* --- checkpoint/resume -------------------------------------------- *)

module D = Util.Diagnostics

let with_temp_file f =
  let path = Filename.temp_file "adi-ckpt" ".bin" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* A real snapshot from a stopped engine run, for round-trip tests. *)
let c17_checkpoint () =
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  let polls = ref 0 in
  let r = Engine.run fl ~order ~should_stop:(fun () -> incr polls; !polls > 2) in
  ( c,
    {
      Checkpoint.circuit_title = "c17";
      circuit_digest = Checkpoint.digest_of_circuit c;
      seed = 1;
      order_kind = "0dynm";
      generator = "podem";
      backtrack_limit = 256;
      retries = 1;
      order;
      snapshot = Option.get r.Engine.snapshot;
    } )

let checkpoint_roundtrip () =
  let _, ck = c17_checkpoint () in
  with_temp_file @@ fun path ->
  Checkpoint.save path ck;
  let back = Checkpoint.load path in
  check Alcotest.string "title" ck.Checkpoint.circuit_title back.Checkpoint.circuit_title;
  check Alcotest.string "digest" ck.Checkpoint.circuit_digest back.Checkpoint.circuit_digest;
  check Alcotest.(array int) "order" ck.Checkpoint.order back.Checkpoint.order;
  check Alcotest.int "resume position" ck.Checkpoint.snapshot.Engine.snap_pos
    back.Checkpoint.snapshot.Engine.snap_pos;
  check Alcotest.bool "whole snapshot survives" true
    (ck.Checkpoint.snapshot = back.Checkpoint.snapshot)

let checkpoint_rejects_garbage () =
  with_temp_file @@ fun path ->
  let oc = open_out_bin path in
  output_string oc "not a checkpoint at all\n";
  close_out oc;
  match Checkpoint.load path with
  | exception D.Failed d ->
      check Alcotest.bool "format code" true (d.D.code = D.Checkpoint_format)
  | _ -> Alcotest.fail "garbage accepted"

let checkpoint_rejects_truncated () =
  let _, ck = c17_checkpoint () in
  with_temp_file @@ fun path ->
  Checkpoint.save path ck;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 8));
  close_out oc;
  match Checkpoint.load path with
  | exception D.Failed d ->
      check Alcotest.bool "format code" true (d.D.code = D.Checkpoint_format)
  | _ -> Alcotest.fail "truncated payload accepted"

let checkpoint_matches_catches_drift () =
  let c, ck = c17_checkpoint () in
  let ok ?(seed = 1) ?(order_kind = "0dynm") ?(generator = "podem") ?(backtrack_limit = 256)
      ?(retries = 1) ?order () =
    let order = Option.value order ~default:ck.Checkpoint.order in
    Checkpoint.matches ck ~circuit:c ~seed ~order_kind ~generator ~backtrack_limit ~retries
      ~order
  in
  check Alcotest.bool "same parameters accepted" true (ok () = Ok ());
  let rejects what r =
    match r with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (what ^ " drift not caught")
  in
  rejects "seed" (ok ~seed:2 ());
  rejects "order kind" (ok ~order_kind:"dynm" ());
  rejects "generator" (ok ~generator:"dalg" ());
  rejects "backtrack limit" (ok ~backtrack_limit:128 ());
  rejects "order array"
    (ok ~order:(Array.of_list (List.rev (Array.to_list ck.Checkpoint.order))) ())

let run_atpg_resume_byte_identical () =
  let c = Library.c17 () in
  let full = Harness.run_atpg ~seed:1 c in
  with_temp_file @@ fun path ->
  Sys.remove path;
  (* an absent file must mean "fresh run", not an error *)
  let polls = ref 0 in
  let interrupted =
    Harness.run_atpg ~seed:1 ~checkpoint:path ~resume:true
      ~should_stop:(fun () -> incr polls; !polls > 3)
      c
  in
  check Alcotest.bool "interrupted" true interrupted.Harness.result.Engine.interrupted;
  check Alcotest.(option string) "checkpoint written" (Some path)
    interrupted.Harness.checkpoint_saved;
  check Alcotest.bool "file exists" true (Sys.file_exists path);
  let resumed = Harness.run_atpg ~seed:1 ~checkpoint:path ~resume:true c in
  check Alcotest.string "byte-identical report" full.Harness.report resumed.Harness.report;
  check Alcotest.bool "completed run removes the checkpoint" false (Sys.file_exists path)

(* [jobs] is deliberately absent from checkpoint matching: a checkpoint
   written by a serial run must resume under any pool size with the
   same bytes out. *)
let run_atpg_resume_parallel_byte_identical () =
  let c = Library.c17 () in
  let full = Harness.run_atpg ~seed:1 c in
  with_temp_file @@ fun path ->
  Sys.remove path;
  let polls = ref 0 in
  let interrupted =
    Harness.run_atpg ~seed:1 ~checkpoint:path ~resume:true
      ~should_stop:(fun () -> incr polls; !polls > 3)
      c
  in
  check Alcotest.bool "interrupted" true interrupted.Harness.result.Engine.interrupted;
  let resumed = Harness.run_atpg ~seed:1 ~jobs:4 ~checkpoint:path ~resume:true c in
  check Alcotest.string "byte-identical report under --jobs 4" full.Harness.report
    resumed.Harness.report;
  check Alcotest.string "same report as an all-serial run"
    (Harness.run_atpg ~seed:1 ~jobs:4 c).Harness.report full.Harness.report

let run_atpg_refuses_mismatched_resume () =
  let c = Library.c17 () in
  with_temp_file @@ fun path ->
  let polls = ref 0 in
  let _ =
    Harness.run_atpg ~seed:1 ~checkpoint:path
      ~should_stop:(fun () -> incr polls; !polls > 3)
      c
  in
  match Harness.run_atpg ~seed:2 ~checkpoint:path ~resume:true c with
  | exception D.Failed d ->
      check Alcotest.bool "mismatch code" true (d.D.code = D.Checkpoint_mismatch);
      check Alcotest.(option string) "blames the file" (Some path) d.D.loc.D.file
  | _ -> Alcotest.fail "seed drift accepted on resume"

let run_atpg_requires_checkpoint_for_resume () =
  check Alcotest.bool "resume without checkpoint rejected" true
    (try
       ignore (Harness.run_atpg ~resume:true (Library.c17 ()));
       false
     with D.Failed d -> d.D.code = D.Invalid_flag)

(* --- bench history retention --------------------------------------- *)

let entry circuit i =
  Printf.sprintf "{\"timestamp\": \"2026-01-%02dT00:00:00Z\", \"circuit\": \"%s\", \"run\": %d}"
    i circuit i

let history_sniffs_circuit () =
  check Alcotest.(option string) "v2 spacing" (Some "syn1196")
    (Bench_history.circuit_of_entry (entry "syn1196" 1));
  check Alcotest.(option string) "v1 spacing" (Some "syn5378")
    (Bench_history.circuit_of_entry
       "{ \"schema\": \"bench_adi/v1\", \"circuit\" : \"syn5378\", \"jobs\": 4 }");
  check Alcotest.(option string) "missing" None
    (Bench_history.circuit_of_entry "{\"jobs\": 4}")

let history_prune_keeps_newest_per_circuit () =
  (* Oldest first: five syn1196 runs interleaved with three syn5378. *)
  let entries =
    [ entry "syn1196" 1; entry "syn5378" 2; entry "syn1196" 3; entry "syn1196" 4;
      entry "syn5378" 5; entry "syn1196" 6; entry "syn5378" 7; entry "syn1196" 8 ]
  in
  let pruned = Bench_history.prune ~keep:2 entries in
  (* The newest two of each circuit survive, original order preserved:
     a syn1196 burst cannot evict the syn5378 history. *)
  check
    Alcotest.(list string)
    "newest two per circuit, order preserved"
    [ entry "syn5378" 5; entry "syn1196" 6; entry "syn5378" 7; entry "syn1196" 8 ]
    pruned

let history_prune_disabled_and_idempotent () =
  let entries = List.init 5 (entry "syn1196") in
  check Alcotest.(list string) "keep 0 = unlimited" entries
    (Bench_history.prune ~keep:0 entries);
  let once = Bench_history.prune ~keep:3 entries in
  check Alcotest.(list string) "idempotent" once (Bench_history.prune ~keep:3 once);
  check Alcotest.int "capped" 3 (List.length once)

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "experiments"
    [
      ( "reports",
        [
          Alcotest.test_case "table1" `Quick table1_mentions_all_vectors;
          Alcotest.test_case "table4" `Quick table4_row_shape;
          Alcotest.test_case "table5 average" `Quick table5_has_average;
          Alcotest.test_case "table5 counts" `Quick table5_counts_match_runs;
          Alcotest.test_case "table6/7" `Quick table6_table7_ratios;
          Alcotest.test_case "figure1" `Quick figure1_has_markers;
          Alcotest.test_case "ablation A1" `Quick ablation_static_renders;
          Alcotest.test_case "ablation A2" `Quick ablation_u_renders;
        ] );
      ( "harness",
        [
          Alcotest.test_case "rejects unknown" `Quick harness_rejects_unknown;
          Alcotest.test_case "runs table1" `Quick harness_names_cover_run;
        ] );
      ( "evaluation",
        [ Alcotest.test_case "consistency" `Quick evaluation_is_consistent ] );
      ( "history",
        [
          Alcotest.test_case "circuit sniffing" `Quick history_sniffs_circuit;
          Alcotest.test_case "keeps newest per circuit" `Quick
            history_prune_keeps_newest_per_circuit;
          Alcotest.test_case "disabled and idempotent" `Quick
            history_prune_disabled_and_idempotent;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick checkpoint_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick checkpoint_rejects_garbage;
          Alcotest.test_case "rejects truncated" `Quick checkpoint_rejects_truncated;
          Alcotest.test_case "matches catches drift" `Quick checkpoint_matches_catches_drift;
          Alcotest.test_case "resume is byte-identical" `Quick run_atpg_resume_byte_identical;
          Alcotest.test_case "parallel resume is byte-identical" `Quick
            run_atpg_resume_parallel_byte_identical;
          Alcotest.test_case "mismatched resume refused" `Quick
            run_atpg_refuses_mismatched_resume;
          Alcotest.test_case "resume needs a checkpoint" `Quick
            run_atpg_requires_checkpoint_for_resume;
        ] );
    ]
