(* Tests for pattern sets and the simulators.  The load-bearing
   property: the event-driven bit-parallel fault simulator agrees with
   the naive full-re-evaluation oracle on every fault and pattern. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

module Bitvec = Util.Bitvec
module Rng = Util.Rng

let small_circuit_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun pis ->
    int_range 3 25 >>= fun gates ->
    int_bound 10_000 >>= fun seed ->
    return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ())))

let arb_circuit = QCheck.make small_circuit_gen

(* --- patterns ----------------------------------------------------- *)

let patterns_exhaustive_decimal () =
  let p = Patterns.exhaustive ~n_inputs:4 in
  check Alcotest.int "count" 16 (Patterns.count p);
  for u = 0 to 15 do
    check Alcotest.int "decimal identity" u (Patterns.decimal p u)
  done;
  (* First input is the MSB: pattern 8 sets input 0 only. *)
  check Alcotest.bool "msb convention" true (Patterns.value p ~input:0 ~pattern:8);
  check Alcotest.bool "lsb convention" true (Patterns.value p ~input:3 ~pattern:1)

let patterns_roundtrip =
  QCheck.Test.make ~name:"of_vectors / vector roundtrip" ~count:100
    QCheck.(
      make
        Gen.(
          int_range 1 8 >>= fun w ->
          list_size (int_range 1 40) (array_size (return w) bool) >>= fun rows ->
          return (w, Array.of_list rows)))
  @@ fun (w, rows) ->
  let p = Patterns.of_vectors ~n_inputs:w rows in
  Array.for_all2 ( = ) rows (Array.init (Patterns.count p) (Patterns.vector p))

let patterns_word_extraction () =
  let rng = Rng.create 4 in
  let p = Patterns.random rng ~n_inputs:3 ~count:130 in
  (* Word lane j of block b equals the stored bit. *)
  for b = 0 to Patterns.blocks p - 1 do
    let w = Patterns.word p ~input:1 ~block:b in
    for j = 0 to min 63 (Patterns.count p - (b * 64) - 1) do
      let expect = Patterns.value p ~input:1 ~pattern:((b * 64) + j) in
      let got = Int64.logand (Int64.shift_right_logical w j) 1L = 1L in
      check Alcotest.bool "lane matches" expect got
    done
  done

let patterns_prefix_concat () =
  let rng = Rng.create 5 in
  let a = Patterns.random rng ~n_inputs:4 ~count:70 in
  let b = Patterns.random rng ~n_inputs:4 ~count:30 in
  let ab = Patterns.concat a b in
  check Alcotest.int "concat count" 100 (Patterns.count ab);
  check Alcotest.bool "prefix of concat = a" true
    (Array.for_all2 ( = )
       (Array.init 70 (Patterns.vector a))
       (Array.init 70 (Patterns.vector (Patterns.prefix ab 70))));
  check Alcotest.bool "tail of concat = b" true
    (Array.for_all2 ( = )
       (Array.init 30 (Patterns.vector b))
       (Array.init 30 (fun i -> Patterns.vector ab (70 + i))))

let patterns_to_strings () =
  let p = Patterns.of_vectors ~n_inputs:3 [| [| true; false; true |] |] in
  check Alcotest.(array string) "strings" [| "101" |] (Patterns.to_strings p)


let patterns_file_roundtrip () =
  let rng = Rng.create 14 in
  let p = Patterns.random rng ~n_inputs:7 ~count:33 in
  let path = Filename.temp_file "pats" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Patterns.save_file path p;
  let q = Patterns.load_file path in
  check Alcotest.(array string) "roundtrip" (Patterns.to_strings p) (Patterns.to_strings q)

let patterns_of_strings_rejects () =
  check Alcotest.bool "ragged" true
    (try ignore (Patterns.of_strings [| "01"; "0" |]); false with Invalid_argument _ -> true);
  check Alcotest.bool "bad char" true
    (try ignore (Patterns.of_strings [| "0x" |]); false with Invalid_argument _ -> true)

(* --- good simulation ---------------------------------------------- *)

let goodsim_word_matches_scalar =
  QCheck.Test.make ~name:"bit-parallel good sim = scalar reference" ~count:50 arb_circuit
  @@ fun c ->
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 17 in
  let pats = Patterns.random rng ~n_inputs ~count:100 in
  let ok = ref true in
  for b = 0 to Patterns.blocks pats - 1 do
    let words = Goodsim.block c pats b in
    let hi = min 64 (Patterns.count pats - (b * 64)) in
    for j = 0 to hi - 1 do
      let scalar = Goodsim.eval_scalar c (Patterns.vector pats ((b * 64) + j)) in
      Circuit.iter_nodes c (fun n ->
          let got = Int64.logand (Int64.shift_right_logical words.(n) j) 1L = 1L in
          if got <> scalar.(n) then ok := false)
    done
  done;
  !ok

let goodsim_outputs_shape () =
  let c = Library.c17 () in
  let pats = Patterns.exhaustive ~n_inputs:5 in
  let cols = Goodsim.outputs c pats in
  check Alcotest.int "one column per PO" 2 (Array.length cols);
  check Alcotest.int "column length" 32 (Bitvec.length cols.(0))

let goodsim_c17_known_vector () =
  (* All-ones input: G10 = NAND(1,1) = 0; G11 = 0; G16 = NAND(1,0) = 1;
     G19 = NAND(0,1) = 1; G22 = NAND(0,1) = 1; G23 = NAND(1,1) = 0. *)
  let c = Library.c17 () in
  let v = Goodsim.eval_scalar c [| true; true; true; true; true |] in
  check Alcotest.bool "G22" true v.(Circuit.find_exn c "G22");
  check Alcotest.bool "G23" false v.(Circuit.find_exn c "G23")

(* --- fault simulation vs oracle ----------------------------------- *)

let detection_sets_match_oracle =
  QCheck.Test.make ~name:"detection_sets = naive oracle" ~count:30 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 23 in
  let pats = Patterns.random rng ~n_inputs ~count:80 in
  let fast = Faultsim.detection_sets fl pats in
  let slow = Refsim.detection_table fl pats in
  let ok = ref true in
  Array.iteri
    (fun fi d ->
      Array.iteri (fun p expect -> if Bitvec.get d p <> expect then ok := false) slow.(fi))
    fast;
  !ok

let with_dropping_matches_sets =
  QCheck.Test.make ~name:"with_dropping finds the first bit of each detection set" ~count:30
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 29 in
  let pats = Patterns.random rng ~n_inputs ~count:80 in
  let sets = Faultsim.detection_sets fl pats in
  let { Faultsim.first_detection; detected } = Faultsim.with_dropping fl pats in
  let expected_detected = Array.fold_left (fun a d -> if Bitvec.is_zero d then a else a + 1) 0 sets in
  detected = expected_detected
  && Array.for_all2
       (fun d first ->
         match Bitvec.first_set d with None -> first = -1 | Some p -> first = p)
       sets first_detection

let ndet_counts =
  QCheck.Test.make ~name:"ndet sums the detection sets per pattern" ~count:30 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 31 in
  let pats = Patterns.random rng ~n_inputs ~count:70 in
  let sets = Faultsim.detection_sets fl pats in
  let nd = Faultsim.ndet sets pats in
  let ok = ref true in
  for u = 0 to Patterns.count pats - 1 do
    let expect =
      Array.fold_left (fun a d -> if Bitvec.get d u then a + 1 else a) 0 sets
    in
    if nd.(u) <> expect then ok := false
  done;
  !ok

let n_detection_caps =
  QCheck.Test.make ~name:"n_detection counts detections capped at n" ~count:30 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 37 in
  let pats = Patterns.random rng ~n_inputs ~count:70 in
  let sets = Faultsim.detection_sets fl pats in
  let counts = Faultsim.n_detection fl pats ~n:3 in
  Array.for_all2 (fun d cnt -> cnt = min 3 (Bitvec.popcount d)) sets counts

let detects_single =
  QCheck.Test.make ~name:"Faultsim.detects agrees with Refsim.detects" ~count:30 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 41 in
  let ok = ref true in
  for _ = 1 to 20 do
    let vec = Array.init n_inputs (fun _ -> Rng.bool rng) in
    let fi = Rng.int rng (Fault_list.count fl) in
    let f = Fault_list.get fl fi in
    if Faultsim.detects c f vec <> Refsim.detects c f vec then ok := false
  done;
  !ok

let undetectable_stuck_const () =
  (* Stem s-a-0 on a constant-0 node is never detectable. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let z = Circuit.Builder.const b "z" false in
  let g = Circuit.Builder.gate b Gate.Or "g" [ a; z ] in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finish b in
  let f = Fault.stem (Circuit.find_exn c "z") false in
  check Alcotest.bool "not detected by 0" false (Faultsim.detects c f [| false |]);
  check Alcotest.bool "not detected by 1" false (Faultsim.detects c f [| true |])


let capped_sets_are_prefixes =
  QCheck.Test.make ~name:"detection_sets_capped keeps the n earliest detections" ~count:30
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 43 in
  let pats = Patterns.random rng ~n_inputs ~count:80 in
  let full = Faultsim.detection_sets fl pats in
  let capped = Faultsim.detection_sets_capped fl pats ~n:3 in
  let ok = ref true in
  Array.iteri
    (fun fi d ->
      (* capped = the first (up to 3) set bits of the full set *)
      let expect = Bitvec.create (Patterns.count pats) in
      let k = ref 0 in
      Bitvec.iter_set full.(fi) (fun p ->
          if !k < 3 then begin
            Bitvec.set expect p true;
            incr k
          end);
      if not (Bitvec.equal d expect) then ok := false)
    capped;
  !ok


(* --- parallel / stem-first paths ----------------------------------- *)

(* CI runs the suite under ADI_JOBS=1 and ADI_JOBS=4; the parity
   properties below compare that pool size against the serial
   reference. *)
let env_jobs =
  match Sys.getenv_opt "ADI_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some j when j >= 1 -> j | _ -> 4)
  | None -> 4

let words_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Bitvec.t) y ->
         Bitvec.length x = Bitvec.length y && Bitvec.words x = Bitvec.words y)
       a b

let parallel_detection_sets_identical =
  QCheck.Test.make
    ~name:(Printf.sprintf "detection_sets ~jobs:%d = serial, word for word" env_jobs)
    ~count:30 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 53 in
  let pats = Patterns.random rng ~n_inputs ~count:150 in
  words_equal (Faultsim.detection_sets fl pats) (Faultsim.detection_sets ~jobs:env_jobs fl pats)

let stem_first_identical =
  QCheck.Test.make ~name:"stem-first FFR acceleration = plain propagation" ~count:30
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 59 in
  let pats = Patterns.random rng ~n_inputs ~count:150 in
  words_equal (Faultsim.detection_sets fl pats) (Faultsim.detection_sets_stem_first fl pats)

let stem_first_full_universe =
  QCheck.Test.make ~name:"stem-first agrees on the full (uncollapsed) universe" ~count:15
    arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 61 in
  let pats = Patterns.random rng ~n_inputs ~count:100 in
  words_equal (Faultsim.detection_sets fl pats) (Faultsim.detection_sets_stem_first fl pats)

let parallel_dropping_identical =
  QCheck.Test.make
    ~name:(Printf.sprintf "with_dropping/n_detection/capped ~jobs:%d = serial" env_jobs)
    ~count:30 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 67 in
  let pats = Patterns.random rng ~n_inputs ~count:150 in
  Faultsim.with_dropping fl pats = Faultsim.with_dropping ~jobs:env_jobs fl pats
  && Faultsim.n_detection fl pats ~n:3 = Faultsim.n_detection ~jobs:env_jobs fl pats ~n:3
  && words_equal
       (Faultsim.detection_sets_capped fl pats ~n:3)
       (Faultsim.detection_sets_capped ~jobs:env_jobs fl pats ~n:3)

(* --- kernel parity ------------------------------------------------- *)

(* The stem and cpt kernels are pure work-saving transformations of
   the event-driven reference: every kernel x collapsing mode x pool
   size must produce the same detection words, byte for byte. *)
let kernels = [ Faultsim.Event; Faultsim.Stem; Faultsim.Cpt ]

let kernel_detection_sets_identical =
  QCheck.Test.make
    ~name:(Printf.sprintf "detection_sets kernels x jobs 1/%d are byte-identical" env_jobs)
    ~count:20 arb_circuit
  @@ fun c ->
  let n_inputs = Array.length (Circuit.inputs c) in
  List.for_all
    (fun fl ->
      let rng = Rng.create 71 in
      let pats = Patterns.random rng ~n_inputs ~count:150 in
      let reference = Faultsim.detection_sets ~kernel:Faultsim.Event fl pats in
      List.for_all
        (fun k ->
          words_equal reference (Faultsim.detection_sets ~kernel:k fl pats)
          && words_equal reference (Faultsim.detection_sets ~jobs:env_jobs ~kernel:k fl pats))
        kernels)
    [ Collapse.collapsed c; Fault_list.full c ]

let kernel_dropping_family_identical =
  QCheck.Test.make
    ~name:"with_dropping/n_detection/capped kernels are byte-identical" ~count:15 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 73 in
  let pats = Patterns.random rng ~n_inputs ~count:150 in
  let drop0 = Faultsim.with_dropping fl pats in
  let nd0 = Faultsim.n_detection fl pats ~n:3 in
  let cap0 = Faultsim.detection_sets_capped fl pats ~n:3 in
  List.for_all
    (fun k ->
      drop0 = Faultsim.with_dropping ~kernel:k fl pats
      && drop0 = Faultsim.with_dropping ~jobs:env_jobs ~kernel:k fl pats
      && nd0 = Faultsim.n_detection ~kernel:k fl pats ~n:3
      && nd0 = Faultsim.n_detection ~jobs:env_jobs ~kernel:k fl pats ~n:3
      && words_equal cap0 (Faultsim.detection_sets_capped ~kernel:k fl pats ~n:3)
      && words_equal cap0 (Faultsim.detection_sets_capped ~jobs:env_jobs ~kernel:k fl pats ~n:3))
    kernels

let kernel_matches_oracle =
  QCheck.Test.make ~name:"stem/cpt kernels = naive oracle" ~count:15 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 79 in
  let pats = Patterns.random rng ~n_inputs ~count:80 in
  let slow = Refsim.detection_table fl pats in
  List.for_all
    (fun k ->
      let fast = Faultsim.detection_sets ~kernel:k fl pats in
      let ok = ref true in
      Array.iteri
        (fun fi d ->
          Array.iteri (fun p expect -> if Bitvec.get d p <> expect then ok := false) slow.(fi))
        fast;
      !ok)
    [ Faultsim.Stem; Faultsim.Cpt ]

(* --- wide superblocks ---------------------------------------------- *)

(* CI sweeps ADI_BLOCK_WIDTH (with ADI_JOBS); the parity properties
   below compare that lane width — and the narrower ones — against
   the event kernel at width 1. *)
let env_width =
  match Sys.getenv_opt "ADI_BLOCK_WIDTH" with
  | Some s -> (
      match int_of_string_opt s with
      | Some w when List.mem w [ 1; 2; 4; 8 ] -> w
      | _ -> 8)
  | None -> 8

let widths = List.sort_uniq compare [ 2; 4; env_width ]

let block_width_detection_sets_identical =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "detection_sets kernels x jobs 1/%d x widths %s = event w1"
         env_jobs
         (String.concat "/" (List.map string_of_int widths)))
    ~count:15 arb_circuit
  @@ fun c ->
  let n_inputs = Array.length (Circuit.inputs c) in
  List.for_all
    (fun fl ->
      let rng = Rng.create 83 in
      let pats = Patterns.random rng ~n_inputs ~count:150 in
      let reference = Faultsim.detection_sets ~kernel:Faultsim.Event fl pats in
      List.for_all
        (fun k ->
          List.for_all
            (fun w ->
              words_equal reference
                (Faultsim.detection_sets ~kernel:k ~block_width:w fl pats)
              && words_equal reference
                   (Faultsim.detection_sets ~jobs:env_jobs ~kernel:k ~block_width:w
                      fl pats))
            widths)
        kernels)
    [ Collapse.collapsed c; Fault_list.full c ]

let block_width_dropping_family_identical =
  QCheck.Test.make
    ~name:"with_dropping/n_detection/capped widths are byte-identical" ~count:10
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 89 in
  let pats = Patterns.random rng ~n_inputs ~count:150 in
  let drop0 = Faultsim.with_dropping fl pats in
  let nd0 = Faultsim.n_detection fl pats ~n:3 in
  let cap0 = Faultsim.detection_sets_capped fl pats ~n:3 in
  List.for_all
    (fun k ->
      List.for_all
        (fun w ->
          drop0 = Faultsim.with_dropping ~kernel:k ~block_width:w fl pats
          && drop0
             = Faultsim.with_dropping ~jobs:env_jobs ~kernel:k ~block_width:w fl pats
          && nd0 = Faultsim.n_detection ~kernel:k ~block_width:w fl pats ~n:3
          && words_equal cap0
               (Faultsim.detection_sets_capped ~kernel:k ~block_width:w fl pats ~n:3))
        widths)
    kernels

let wide_matches_oracle =
  QCheck.Test.make
    ~name:(Printf.sprintf "stem kernel at width %d = naive oracle" env_width)
    ~count:10 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 97 in
  let pats = Patterns.random rng ~n_inputs ~count:80 in
  let slow = Refsim.detection_table fl pats in
  let fast =
    Faultsim.detection_sets ~kernel:Faultsim.Stem ~block_width:env_width fl pats
  in
  let ok = ref true in
  Array.iteri
    (fun fi d ->
      Array.iteri (fun p expect -> if Bitvec.get d p <> expect then ok := false) slow.(fi))
    fast;
  !ok

let block_outputs_width_identical =
  QCheck.Test.make
    ~name:"detect_block_outputs: wide lanes = per-block narrow runs" ~count:10
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 101 in
  let pats = Patterns.random rng ~n_inputs ~count:(64 * env_width) in
  let nout = Array.length (Circuit.outputs c) in
  let narrow = Faultsim.workspace c in
  let wide = Faultsim.workspace ~width:env_width c in
  let g1 = Faultsim.good_arena narrow in
  let gw = Faultsim.good_arena wide in
  Faultsim.load_good wide gw pats 0;
  let ok = ref true in
  for fi = 0 to Fault_list.count fl - 1 do
    let f = Fault_list.get fl fi in
    let out_w = Array.make (nout * env_width) 0L in
    let det_w = Array.copy (Faultsim.detect_block_outputs wide ~good:gw ~out:out_w f) in
    for b = 0 to env_width - 1 do
      Faultsim.load_good narrow g1 pats b;
      let out_1 = Array.make nout 0L in
      let det_1 = Faultsim.detect_block_outputs narrow ~good:g1 ~out:out_1 f in
      if det_1.(0) <> det_w.(b) then ok := false;
      for oi = 0 to nout - 1 do
        if out_1.(oi) <> out_w.((oi * env_width) + b) then ok := false
      done
    done
  done;
  !ok

let kernel_names_roundtrip () =
  List.iter
    (fun k ->
      check Alcotest.bool "roundtrip" true
        (Faultsim.kernel_of_string (Faultsim.kernel_name k) = Some k))
    kernels;
  check Alcotest.bool "unknown rejected" true (Faultsim.kernel_of_string "warp" = None);
  check
    Alcotest.(list string)
    "names" [ "event"; "stem"; "cpt" ]
    (List.map Faultsim.kernel_name kernels);
  check Alcotest.(list string) "kernel_names" Faultsim.kernel_names
    (List.map Faultsim.kernel_name kernels)

(* --- deductive simulation ------------------------------------------ *)

let deductive_matches_event_driven =
  QCheck.Test.make ~name:"deductive detection sets = event-driven PPSFP sets" ~count:30
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 47 in
  let pats = Patterns.random rng ~n_inputs ~count:40 in
  let a = Faultsim.detection_sets fl pats in
  let b = Deductive.detection_sets fl pats in
  let ok = ref true in
  Array.iteri (fun fi d -> if not (Bitvec.equal d b.(fi)) then ok := false) a;
  !ok

let deductive_full_universe =
  QCheck.Test.make ~name:"deductive agrees on the full (uncollapsed) universe" ~count:15
    arb_circuit
  @@ fun c ->
  let fl = Fault_list.full c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rng = Rng.create 49 in
  let pats = Patterns.random rng ~n_inputs ~count:30 in
  let a = Faultsim.detection_sets fl pats in
  let b = Deductive.detection_sets fl pats in
  let ok = ref true in
  Array.iteri (fun fi d -> if not (Bitvec.equal d b.(fi)) then ok := false) a;
  !ok


let () =
  Util.Trace.install_from_env ();
  Alcotest.run "sim"
    [
      ( "patterns",
        [
          Alcotest.test_case "exhaustive decimal" `Quick patterns_exhaustive_decimal;
          Alcotest.test_case "word extraction" `Quick patterns_word_extraction;
          Alcotest.test_case "prefix/concat" `Quick patterns_prefix_concat;
          Alcotest.test_case "to_strings" `Quick patterns_to_strings;
          Alcotest.test_case "file roundtrip" `Quick patterns_file_roundtrip;
          Alcotest.test_case "of_strings rejects" `Quick patterns_of_strings_rejects;
          qtest patterns_roundtrip;
        ] );
      ( "goodsim",
        [
          Alcotest.test_case "outputs shape" `Quick goodsim_outputs_shape;
          Alcotest.test_case "c17 known vector" `Quick goodsim_c17_known_vector;
          qtest goodsim_word_matches_scalar;
        ] );
      ( "faultsim",
        [
          Alcotest.test_case "undetectable const fault" `Quick undetectable_stuck_const;
          qtest detection_sets_match_oracle;
          qtest with_dropping_matches_sets;
          qtest ndet_counts;
          qtest n_detection_caps;
          qtest capped_sets_are_prefixes;
          qtest detects_single;
          qtest parallel_detection_sets_identical;
          qtest stem_first_identical;
          qtest stem_first_full_universe;
          qtest parallel_dropping_identical;
          qtest kernel_detection_sets_identical;
          qtest kernel_dropping_family_identical;
          qtest kernel_matches_oracle;
          qtest block_width_detection_sets_identical;
          qtest block_width_dropping_family_identical;
          qtest wide_matches_oracle;
          qtest block_outputs_width_identical;
          Alcotest.test_case "kernel names roundtrip" `Quick kernel_names_roundtrip;
          qtest deductive_matches_event_driven;
          qtest deductive_full_universe;
        ] );
    ]
