(* Tests for coverage curves and the AVE steepness metric. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let curve_of detected_at total = { Coverage.detected_at; total_faults = total }

let n_at_basics () =
  let c = curve_of [| 3; 5; 5; 9 |] 10 in
  check Alcotest.int "n(0)" 0 (Coverage.n_at c 0);
  check Alcotest.int "n(1)" 3 (Coverage.n_at c 1);
  check Alcotest.int "n(2)" 5 (Coverage.n_at c 2);
  check Alcotest.int "n(4)" 9 (Coverage.n_at c 4);
  check Alcotest.int "tests" 4 (Coverage.tests c);
  check (Alcotest.float 1e-9) "final coverage" 0.9 (Coverage.final_coverage c)

let ave_hand_computed () =
  (* Detections per test: 3, 2, 0, 4.
     AVE = (1*3 + 2*2 + 3*0 + 4*4) / 9 = 23/9. *)
  let c = curve_of [| 3; 5; 5; 9 |] 10 in
  check (Alcotest.float 1e-9) "ave" (23.0 /. 9.0) (Coverage.ave c)

let ave_everything_first_test () =
  (* All faults on test 1: AVE = 1. *)
  let c = curve_of [| 7; 7; 7 |] 7 in
  check (Alcotest.float 1e-9) "ave = 1" 1.0 (Coverage.ave c)

let ave_everything_last_test () =
  let c = curve_of [| 0; 0; 7 |] 7 in
  check (Alcotest.float 1e-9) "ave = k" 3.0 (Coverage.ave c)

let ave_empty () =
  let c = curve_of [| 0; 0 |] 5 in
  check (Alcotest.float 1e-9) "ave = 0 when nothing detected" 0.0 (Coverage.ave c)

let points_shape () =
  let c = curve_of [| 1; 2 |] 4 in
  let p = Coverage.points c in
  check Alcotest.int "two points" 2 (Array.length p);
  check (Alcotest.float 1e-9) "x of last" 100.0 (fst p.(1));
  check (Alcotest.float 1e-9) "y of last" 50.0 (snd p.(1))

(* Curves from the two construction paths agree: engine bookkeeping vs
   re-simulation of the finished test set. *)
let engine_curve_equals_resim =
  QCheck.Test.make ~name:"of_engine_result = of_test_set on the same tests" ~count:15
    (QCheck.make
       QCheck.Gen.(
         int_range 2 5 >>= fun pis ->
         int_range 3 25 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let r = Engine.run fl ~order:(Array.init (Fault_list.count fl) Fun.id) in
  let a = Coverage.of_engine_result fl r in
  let b = Coverage.of_test_set fl r.Engine.tests in
  a.Coverage.detected_at = b.Coverage.detected_at

let monotone_nondecreasing =
  QCheck.Test.make ~name:"coverage curve is non-decreasing" ~count:15
    (QCheck.make
       QCheck.Gen.(
         int_range 2 5 >>= fun pis ->
         int_range 3 25 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let r = Engine.run fl ~order:(Array.init (Fault_list.count fl) Fun.id) in
  let curve = Coverage.of_engine_result fl r in
  let ok = ref true in
  for i = 1 to Coverage.tests curve do
    if Coverage.n_at curve i < Coverage.n_at curve (i - 1) then ok := false
  done;
  !ok


let truncation_and_targets () =
  let c = curve_of [| 3; 5; 5; 9 |] 10 in
  check (Alcotest.float 1e-9) "keep 0" 0.0 (Coverage.truncated_coverage c ~keep:0);
  check (Alcotest.float 1e-9) "keep 1" 0.3 (Coverage.truncated_coverage c ~keep:1);
  check (Alcotest.float 1e-9) "keep all" 0.9 (Coverage.truncated_coverage c ~keep:4);
  check (Alcotest.float 1e-9) "keep beyond clamps" 0.9 (Coverage.truncated_coverage c ~keep:99);
  check Alcotest.(option int) "target 0.3" (Some 1) (Coverage.tests_for_coverage c ~target:0.3);
  check Alcotest.(option int) "target 0.5" (Some 2) (Coverage.tests_for_coverage c ~target:0.5);
  check Alcotest.(option int) "target 0.95 unreachable" None
    (Coverage.tests_for_coverage c ~target:0.95);
  check Alcotest.(option int) "target 0" (Some 0) (Coverage.tests_for_coverage c ~target:0.0)

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "metrics"
    [
      ( "coverage",
        [
          Alcotest.test_case "n_at basics" `Quick n_at_basics;
          Alcotest.test_case "ave hand computed" `Quick ave_hand_computed;
          Alcotest.test_case "ave first test" `Quick ave_everything_first_test;
          Alcotest.test_case "ave last test" `Quick ave_everything_last_test;
          Alcotest.test_case "ave empty" `Quick ave_empty;
          Alcotest.test_case "points" `Quick points_shape;
          Alcotest.test_case "truncation/targets" `Quick truncation_and_targets;
          qtest engine_curve_equals_resim;
          qtest monotone_nondecreasing;
        ] );
    ]
