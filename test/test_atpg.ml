(* Tests for SCOAP, PODEM, the generation engine, static compaction and
   redundancy removal.  The load-bearing properties: every cube PODEM
   returns really detects its target fault (checked against the fault
   simulator for random fills), and Untestable answers are confirmed
   exhaustively on small circuits. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

module B = Circuit.Builder
module Rng = Util.Rng

let small_circuit_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun pis ->
    int_range 3 25 >>= fun gates ->
    int_bound 10_000 >>= fun seed ->
    return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ())))

let arb_circuit = QCheck.make small_circuit_gen

(* --- SCOAP -------------------------------------------------------- *)

let scoap_inverter_chain () =
  (* a -> NOT n1 -> NOT n2 (out).  CC grows by 1 per level; CO grows
     from the output inward. *)
  let b = B.create () in
  let a = B.input b "a" in
  let n1 = B.gate b Gate.Not "n1" [ a ] in
  let n2 = B.gate b Gate.Not "n2" [ n1 ] in
  B.mark_output b n2;
  let c = B.finish b in
  let s = Scoap.compute c in
  check Alcotest.int "cc0 a" 1 (Scoap.cc0 s a);
  check Alcotest.int "cc1 a" 1 (Scoap.cc1 s a);
  check Alcotest.int "cc0 n1" 2 (Scoap.cc0 s n1);
  check Alcotest.int "cc0 n2" 3 (Scoap.cc0 s n2);
  check Alcotest.int "co n2" 0 (Scoap.co s n2);
  check Alcotest.int "co n1" 1 (Scoap.co s n1);
  check Alcotest.int "co a" 2 (Scoap.co s a)

let scoap_and_gate () =
  (* g = AND(a, b): CC1(g) = CC1(a)+CC1(b)+1 = 3; CC0(g) = min+1 = 2;
     CO(a) = CO(g) + CC1(b) + 1 = 2. *)
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let g = B.gate b Gate.And "g" [ a; bb ] in
  B.mark_output b g;
  let c = B.finish b in
  let s = Scoap.compute c in
  check Alcotest.int "cc1 g" 3 (Scoap.cc1 s g);
  check Alcotest.int "cc0 g" 2 (Scoap.cc0 s g);
  check Alcotest.int "co a" 2 (Scoap.co s a);
  check Alcotest.int "co_pin" 2 (Scoap.co_pin s ~gate:g ~pin:0)

let scoap_const () =
  let b = B.create () in
  let a = B.input b "a" in
  let z = B.const b "z" false in
  let g = B.gate b Gate.Or "g" [ a; z ] in
  B.mark_output b g;
  let c = B.finish b in
  let s = Scoap.compute c in
  check Alcotest.int "cc0 const0" 0 (Scoap.cc0 s z);
  check Alcotest.int "cc1 const0 infinite" Scoap.infinite_cost (Scoap.cc1 s z)

let scoap_finite_on_live =
  QCheck.Test.make ~name:"controllabilities finite on generated circuits" ~count:50 arb_circuit
  @@ fun c ->
  let s = Scoap.compute c in
  let ok = ref true in
  Circuit.iter_nodes c (fun n ->
      if Scoap.cc0 s n >= Scoap.infinite_cost && Scoap.cc1 s n >= Scoap.infinite_cost then
        ok := false);
  !ok

(* --- PODEM -------------------------------------------------------- *)

let podem_cube_detects =
  QCheck.Test.make ~name:"PODEM cubes detect their fault under any fill" ~count:40 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let scoap = Scoap.compute c in
  let ctx = Podem.context c scoap in
  let rng = Rng.create 55 in
  let ok = ref true in
  for fi = 0 to Fault_list.count fl - 1 do
    match Podem.generate_in ctx (Fault_list.get fl fi) with
    | Podem.Test cube ->
        (* Try three random fills; all must detect. *)
        for _ = 1 to 3 do
          let vec = Engine.fill_cube rng cube in
          if not (Faultsim.detects c (Fault_list.get fl fi) vec) then ok := false
        done
    | Podem.Untestable | Podem.Aborted | Podem.Out_of_budget -> ()
  done;
  !ok

let podem_untestable_is_really_untestable =
  QCheck.Test.make ~name:"PODEM Untestable confirmed by exhaustive simulation" ~count:20
    (QCheck.make
       QCheck.Gen.(
         int_range 2 4 >>= fun pis ->
         int_range 3 14 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let scoap = Scoap.compute c in
  let ctx = Podem.context c scoap in
  let pats = Patterns.exhaustive ~n_inputs:(Array.length (Circuit.inputs c)) in
  let sets = Faultsim.detection_sets fl pats in
  let ok = ref true in
  for fi = 0 to Fault_list.count fl - 1 do
    match Podem.generate_in ~backtrack_limit:100_000 ctx (Fault_list.get fl fi) with
    | Podem.Untestable -> if not (Util.Bitvec.is_zero sets.(fi)) then ok := false
    | Podem.Test _ -> if Util.Bitvec.is_zero sets.(fi) then ok := false
    | Podem.Aborted | Podem.Out_of_budget -> ()
  done;
  !ok

let podem_known_redundant () =
  (* z = OR(a, NOT a) is constant 1: its stem s-a-1 is undetectable. *)
  let b = B.create () in
  let a = B.input b "a" in
  let na = B.gate b Gate.Not "na" [ a ] in
  let z = B.gate b Gate.Or "z" [ a; na ] in
  B.mark_output b z;
  let c = B.finish b in
  let scoap = Scoap.compute c in
  match Podem.generate c scoap (Fault.stem (Circuit.find_exn c "z") true) with
  | Podem.Untestable -> ()
  | Podem.Test _ -> Alcotest.fail "found a test for a redundant fault"
  | Podem.Aborted | Podem.Out_of_budget -> Alcotest.fail "aborted on a trivial redundancy"

let podem_c17_all_testable () =
  (* c17 is fully testable. *)
  let c = Library.c17 () in
  let fl = Fault_list.full c in
  let scoap = Scoap.compute c in
  let ctx = Podem.context c scoap in
  for fi = 0 to Fault_list.count fl - 1 do
    match Podem.generate_in ctx (Fault_list.get fl fi) with
    | Podem.Test _ -> ()
    | Podem.Untestable | Podem.Aborted | Podem.Out_of_budget ->
        Alcotest.failf "no test for %s" (Fault.to_string c (Fault_list.get fl fi))
  done

let podem_pi_fault () =
  (* A PI stem fault on a buffer-to-output circuit. *)
  let b = B.create () in
  let a = B.input b "a" in
  let g = B.gate b Gate.Buf "g" [ a ] in
  B.mark_output b g;
  let c = B.finish b in
  let scoap = Scoap.compute c in
  (match Podem.generate c scoap (Fault.stem a false) with
  | Podem.Test cube ->
      check Alcotest.bool "requires a=1" true (cube.(0) = Ternary.One)
  | _ -> Alcotest.fail "sa0 on PI must be testable");
  match Podem.generate c scoap (Fault.stem a true) with
  | Podem.Test cube -> check Alcotest.bool "requires a=0" true (cube.(0) = Ternary.Zero)
  | _ -> Alcotest.fail "sa1 on PI must be testable"

(* --- engine ------------------------------------------------------- *)

let engine_full_coverage_on_c17 () =
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let r = Engine.run fl ~order:(Array.init (Fault_list.count fl) Fun.id) in
  check (Alcotest.float 0.0001) "coverage 1.0" 1.0 (Engine.coverage fl r);
  check Alcotest.(list int) "no untestable" [] r.Engine.untestable;
  check Alcotest.(list int) "no aborted" [] r.Engine.aborted;
  (* Every fault's detecting test really detects it. *)
  Array.iteri
    (fun fi t ->
      check Alcotest.bool "detected_by valid" true
        (t >= 0
        && Faultsim.detects c (Fault_list.get fl fi) (Patterns.vector r.Engine.tests t)))
    r.Engine.detected_by

let engine_escalation_recovers () =
  (* multiplier ~width:4 under a tight backtrack limit aborts a batch of
     faults; escalation passes (doubled limit each) win most back. *)
  let c = Library.multiplier ~width:4 in
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  let base = { Engine.default_config with Engine.backtrack_limit = 16; Engine.retries = 0 } in
  let r0 = Engine.run fl ~order ~config:base in
  let r3 = Engine.run fl ~order ~config:{ base with Engine.retries = 3 } in
  check Alcotest.bool "baseline aborts some faults" true (r0.Engine.aborted <> []);
  check Alcotest.int "no recovery without retries" 0 r0.Engine.retry_recovered;
  check Alcotest.bool "escalation reduces the abort count" true
    (List.length r3.Engine.aborted < List.length r0.Engine.aborted);
  (* Pass 1 of the retrying run is identical to the retries=0 run, so
     every baseline abort is either still aborted or counted recovered. *)
  check Alcotest.int "recovered accounts for the difference"
    (List.length r0.Engine.aborted - List.length r3.Engine.aborted)
    r3.Engine.retry_recovered

let engine_budget_classification () =
  (* A zero per-fault slice expires before any search: every fault is
     out_of_budget — not aborted, not untestable — and with the run
     budget unlimited the run still completes (not interrupted). *)
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let n = Fault_list.count fl in
  let cfg = { Engine.default_config with Engine.per_fault_budget_s = Some 0.0 } in
  let r = Engine.run fl ~order:(Array.init n Fun.id) ~config:cfg in
  check Alcotest.int "all out of budget" n (List.length r.Engine.out_of_budget);
  check Alcotest.(list int) "none aborted" [] r.Engine.aborted;
  check Alcotest.(list int) "none untestable" [] r.Engine.untestable;
  check Alcotest.int "no tests" 0 (Patterns.count r.Engine.tests);
  check Alcotest.bool "not interrupted" false r.Engine.interrupted

let engine_resume_determinism () =
  (* Stop mid-run via should_stop, resume from the snapshot, and demand
     the exact result of the uninterrupted run — tests, detections and
     even search statistics. *)
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  let full = Engine.run fl ~order in
  let polls = ref 0 in
  let stopped =
    Engine.run fl ~order
      ~should_stop:(fun () -> incr polls; !polls > 5)
  in
  check Alcotest.bool "interrupted" true stopped.Engine.interrupted;
  check Alcotest.bool "made partial progress" true
    (Patterns.count stopped.Engine.tests < Patterns.count full.Engine.tests);
  let snap = Option.get stopped.Engine.snapshot in
  let resumed = Engine.run fl ~order ~resume:snap in
  check Alcotest.bool "completed" false resumed.Engine.interrupted;
  check Alcotest.int "same test count" (Patterns.count full.Engine.tests)
    (Patterns.count resumed.Engine.tests);
  for t = 0 to Patterns.count full.Engine.tests - 1 do
    check Alcotest.bool "same vector" true
      (Patterns.vector full.Engine.tests t = Patterns.vector resumed.Engine.tests t)
  done;
  check Alcotest.(array int) "same detections" full.Engine.detected_by
    resumed.Engine.detected_by;
  check Alcotest.bool "same search stats" true (full.Engine.stats = resumed.Engine.stats)

let engine_rejects_bad_order () =
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  check Alcotest.bool "non-permutation rejected" true
    (try
       ignore (Engine.run fl ~order:(Array.make (Fault_list.count fl) 0));
       false
     with Invalid_argument _ -> true)

let engine_order_affects_result =
  QCheck.Test.make ~name:"engine detects everything detectable regardless of order" ~count:10
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n = Fault_list.count fl in
  let fwd = Engine.run fl ~order:(Array.init n Fun.id) in
  let bwd = Engine.run fl ~order:(Array.init n (fun i -> n - 1 - i)) in
  let det r =
    Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 r.Engine.detected_by
  in
  (* Both runs resolve each fault (no aborts on these small circuits),
     so detected + untestable must cover everything in both orders. *)
  det fwd + List.length fwd.Engine.untestable + List.length fwd.Engine.aborted = n
  && det bwd + List.length bwd.Engine.untestable + List.length bwd.Engine.aborted = n

let fill_cube_respects_assignments () =
  let rng = Rng.create 3 in
  let cube = [| Ternary.One; Ternary.X; Ternary.Zero |] in
  for _ = 1 to 10 do
    let v = Engine.fill_cube rng cube in
    check Alcotest.bool "pos 0" true v.(0);
    check Alcotest.bool "pos 2" false v.(2)
  done

(* --- speculative window -------------------------------------------- *)

(* Everything the engine promises to keep byte-identical across
   [jobs]/[window]: vectors, classifications, recovery/interrupt
   status and the accumulated search statistics. *)
let result_fingerprint (r : Engine.result) =
  ( List.init (Patterns.count r.Engine.tests) (Patterns.vector r.Engine.tests),
    (r.Engine.detected_by, r.Engine.targeted),
    (r.Engine.untestable, r.Engine.aborted, r.Engine.out_of_budget),
    (r.Engine.retry_recovered, r.Engine.interrupted),
    r.Engine.stats )

let spec_accounting_ok (r : Engine.result) =
  r.Engine.spec_dispatched = r.Engine.spec_committed + r.Engine.spec_wasted
  && r.Engine.spec_wasted >= 0

(* CI sweeps ADI_WINDOW (with ADI_JOBS) so the parity properties also
   run at the matrix's window widths. *)
let env_window =
  match Sys.getenv_opt "ADI_WINDOW" with
  | Some s -> ( match int_of_string_opt s with Some w when w >= 1 -> w | _ -> 16)
  | None -> 16

let env_jobs =
  match Sys.getenv_opt "ADI_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some j when j >= 1 -> j | _ -> 4)
  | None -> 4

let spec_parity =
  QCheck.Test.make ~name:"speculative window byte-identical to serial" ~count:12 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  (* A tight limit provokes aborts and retry passes, so the parity
     covers escalation schedules too. *)
  let cfg = { Engine.default_config with Engine.backtrack_limit = 32; Engine.retries = 2 } in
  let fp = result_fingerprint (Engine.run fl ~order ~config:cfg) in
  List.for_all
    (fun (jobs, window) ->
      let r = Engine.run fl ~order ~config:{ cfg with Engine.jobs; window } in
      result_fingerprint r = fp && spec_accounting_ok r)
    [ (2, 1); (2, 3); (2, env_window); (4, 1); (4, 3); (4, env_window) ]

let spec_parity_dalg =
  QCheck.Test.make ~name:"speculative window parity under the D-algorithm" ~count:8 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  let cfg =
    { Engine.default_config with
      Engine.generator = Engine.Dalg_gen; backtrack_limit = 32; retries = 1 }
  in
  let fp = result_fingerprint (Engine.run fl ~order ~config:cfg) in
  let r = Engine.run fl ~order ~config:{ cfg with Engine.jobs = env_jobs; window = 8 } in
  result_fingerprint r = fp && spec_accounting_ok r

let spec_env_matrix_parity () =
  (* The CI matrix's (ADI_JOBS, ADI_WINDOW) point against the serial
     reference, on a circuit big enough to fill windows repeatedly. *)
  let c = Library.multiplier ~width:4 in
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  let cfg = { Engine.default_config with Engine.backtrack_limit = 16; Engine.retries = 3 } in
  let serial = Engine.run fl ~order ~config:cfg in
  let spec =
    Engine.run fl ~order ~config:{ cfg with Engine.jobs = env_jobs; window = env_window }
  in
  check Alcotest.bool "byte-identical result" true
    (result_fingerprint spec = result_fingerprint serial);
  check Alcotest.bool "waste accounting consistent" true (spec_accounting_ok spec);
  check Alcotest.int "serial path never dispatches" 0 serial.Engine.spec_dispatched;
  if env_jobs > 1 && env_window > 1 then
    check Alcotest.bool "speculation engaged" true (spec.Engine.spec_dispatched > 0)

let spec_resume_mid_window () =
  (* Interrupt a speculative run mid-window.  Snapshots only exist at
     commit boundaries, so the in-flight window is abandoned (counted
     as waste) and the resumed run — speculative or serial — must
     reproduce the uninterrupted result exactly. *)
  let c = Library.multiplier ~width:3 in
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  let spec_cfg = { Engine.default_config with Engine.jobs = 4; window = 8 } in
  let full = Engine.run fl ~order ~config:spec_cfg in
  let polls = ref 0 in
  let stopped =
    Engine.run fl ~order ~config:spec_cfg
      ~should_stop:(fun () -> incr polls; !polls > 5)
  in
  check Alcotest.bool "interrupted" true stopped.Engine.interrupted;
  check Alcotest.bool "abandoned window counted as waste" true (spec_accounting_ok stopped);
  let snap = Option.get stopped.Engine.snapshot in
  List.iter
    (fun cfg ->
      let resumed = Engine.run fl ~order ~config:cfg ~resume:snap in
      check Alcotest.bool "completed" false resumed.Engine.interrupted;
      check Alcotest.bool "resume reproduces the uninterrupted run" true
        (result_fingerprint resumed = result_fingerprint full))
    [ spec_cfg; { spec_cfg with Engine.jobs = 1; window = 1 } ]

let spec_report_identical () =
  (* The harness report (the user-visible summary) is byte-identical
     between the serial and speculative paths. *)
  let c = Library.multiplier ~width:4 in
  let run cfg = (Harness.run_atpg_cfg cfg c).Harness.report in
  let base = Run_config.default |> Run_config.with_backtrack_limit 16 in
  let serial = run (base |> Run_config.with_jobs 1) in
  let spec =
    run (base |> Run_config.with_jobs 4 |> Run_config.with_window (Some 16))
  in
  check Alcotest.string "reports byte-identical" serial spec

let engine_rejects_bad_window () =
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let order = Array.init (Fault_list.count fl) Fun.id in
  check Alcotest.bool "window 0 rejected" true
    (try
       ignore (Engine.run fl ~order ~config:{ Engine.default_config with Engine.window = 0 });
       false
     with Invalid_argument _ -> true)

(* --- compaction --------------------------------------------------- *)

let compact_preserves_coverage =
  QCheck.Test.make ~name:"reverse-order compaction never loses coverage" ~count:15 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n = Fault_list.count fl in
  let r = Engine.run fl ~order:(Array.init n Fun.id) in
  let before = Faultsim.with_dropping fl r.Engine.tests in
  let compacted = Compact.reverse_order fl r.Engine.tests in
  let after = Faultsim.with_dropping fl compacted.Compact.tests in
  after.Faultsim.detected = before.Faultsim.detected
  && Patterns.count compacted.Compact.tests <= Patterns.count r.Engine.tests

(* --- redundancy removal ------------------------------------------- *)

let irredundant_removes_known () =
  (* OR(a, NOT a) = 1 feeding an AND leaves g = b after removal. *)
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let na = B.gate b Gate.Not "na" [ a ] in
  let t = B.gate b Gate.Or "t" [ a; na ] in
  let g = B.gate b Gate.And "g" [ t; bb ] in
  B.mark_output b g;
  let c = B.finish b in
  let c', report = Irredundant.remove c in
  check Alcotest.bool "something removed" true (report.Irredundant.removed > 0);
  check Alcotest.bool "shrunk" true (Circuit.node_count c' < Circuit.node_count c);
  (* The result behaves like g = b. *)
  let o = (Circuit.outputs c').(0) in
  let v1 = Goodsim.eval_scalar c' [| false; true |] in
  let v0 = Goodsim.eval_scalar c' [| true; false |] in
  check Alcotest.bool "g = b (b=1)" true v1.(o);
  check Alcotest.bool "g = b (b=0)" false v0.(o)

let irredundant_converged_has_no_redundancy =
  QCheck.Test.make
    ~name:"after removal every undetectable fault is structurally unremovable" ~count:10
    (QCheck.make
       QCheck.Gen.(
         int_range 2 4 >>= fun pis ->
         int_range 3 14 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let c', _ = Irredundant.remove ~backtrack_limit:100_000 ~max_rounds:50 c in
  let fl = Collapse.collapsed c' in
  let pats = Patterns.exhaustive ~n_inputs:(Array.length (Circuit.inputs c')) in
  let sets = Faultsim.detection_sets fl pats in
  (* Converged removal leaves only faults whose substitution is a no-op:
     stems of nodes nothing consumes (orphaned inputs) and constant
     outputs stuck at their own value. *)
  let unremovable fi =
    let f = Fault_list.get fl fi in
    match f.Fault.site with
    | Fault.Branch _ -> false
    | Fault.Stem s -> (
        Circuit.fanout_count c' s = 0
        &&
        match Circuit.kind c' s with
        | Gate.Const0 -> not f.Fault.stuck_at
        | Gate.Const1 -> f.Fault.stuck_at
        | _ -> not (Circuit.is_output c' s))
  in
  let ok = ref true in
  Array.iteri (fun fi d -> if Util.Bitvec.is_zero d && not (unremovable fi) then ok := false) sets;
  !ok


let set_cover_preserves_coverage =
  QCheck.Test.make ~name:"set-cover compaction preserves coverage and never grows the set"
    ~count:10 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n = Fault_list.count fl in
  let r = Engine.run fl ~order:(Array.init n Fun.id) in
  let before = Faultsim.with_dropping fl r.Engine.tests in
  let sc = Compact.set_cover fl r.Engine.tests in
  let after = Faultsim.with_dropping fl sc.Compact.tests in
  after.Faultsim.detected = before.Faultsim.detected
  && Patterns.count sc.Compact.tests <= Patterns.count r.Engine.tests


(* --- D-algorithm --------------------------------------------------- *)

let dalg_cube_detects =
  QCheck.Test.make ~name:"D-algorithm cubes detect their fault under any fill" ~count:40
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let scoap = Scoap.compute c in
  let rng = Rng.create 57 in
  let ok = ref true in
  for fi = 0 to Fault_list.count fl - 1 do
    match Dalg.generate c scoap (Fault_list.get fl fi) with
    | Podem.Test cube ->
        for _ = 1 to 3 do
          let vec = Engine.fill_cube rng cube in
          if not (Faultsim.detects c (Fault_list.get fl fi) vec) then ok := false
        done
    | Podem.Untestable | Podem.Aborted | Podem.Out_of_budget -> ()
  done;
  !ok

let dalg_untestable_is_really_untestable =
  QCheck.Test.make ~name:"D-algorithm Untestable confirmed by exhaustive simulation" ~count:20
    (QCheck.make
       QCheck.Gen.(
         int_range 2 4 >>= fun pis ->
         int_range 3 14 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let scoap = Scoap.compute c in
  let pats = Patterns.exhaustive ~n_inputs:(Array.length (Circuit.inputs c)) in
  let sets = Faultsim.detection_sets fl pats in
  let ok = ref true in
  for fi = 0 to Fault_list.count fl - 1 do
    match Dalg.generate ~backtrack_limit:100_000 c scoap (Fault_list.get fl fi) with
    | Podem.Untestable -> if not (Util.Bitvec.is_zero sets.(fi)) then ok := false
    | Podem.Test _ -> if Util.Bitvec.is_zero sets.(fi) then ok := false
    | Podem.Aborted | Podem.Out_of_budget -> ()
  done;
  !ok

let dalg_agrees_with_podem =
  QCheck.Test.make ~name:"D-algorithm and PODEM agree on testability" ~count:20
    (QCheck.make
       QCheck.Gen.(
         int_range 2 4 >>= fun pis ->
         int_range 3 14 >>= fun gates ->
         int_bound 10_000 >>= fun seed ->
         return (Generate.random ~seed ~name:"qc" (Generate.profile ~pis ~gates ()))))
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let scoap = Scoap.compute c in
  let ctx = Podem.context c scoap in
  let ok = ref true in
  for fi = 0 to Fault_list.count fl - 1 do
    let p = Podem.generate_in ~backtrack_limit:100_000 ctx (Fault_list.get fl fi) in
    let d = Dalg.generate ~backtrack_limit:100_000 c scoap (Fault_list.get fl fi) in
    match (p, d) with
    | Podem.Test _, Podem.Untestable | Podem.Untestable, Podem.Test _ -> ok := false
    | _ -> ()
  done;
  !ok

let dalg_known_redundant () =
  let b = B.create () in
  let a = B.input b "a" in
  let na = B.gate b Gate.Not "na" [ a ] in
  let z = B.gate b Gate.Or "z" [ a; na ] in
  B.mark_output b z;
  let c = B.finish b in
  let scoap = Scoap.compute c in
  match Dalg.generate c scoap (Fault.stem (Circuit.find_exn c "z") true) with
  | Podem.Untestable -> ()
  | Podem.Test _ -> Alcotest.fail "D-alg found a test for a redundant fault"
  | Podem.Aborted | Podem.Out_of_budget -> Alcotest.fail "D-alg aborted on a trivial redundancy"

let dalg_c17_all_testable () =
  let c = Library.c17 () in
  let fl = Fault_list.full c in
  let scoap = Scoap.compute c in
  for fi = 0 to Fault_list.count fl - 1 do
    match Dalg.generate c scoap (Fault_list.get fl fi) with
    | Podem.Test _ -> ()
    | Podem.Untestable | Podem.Aborted | Podem.Out_of_budget ->
        Alcotest.failf "D-alg: no test for %s" (Fault.to_string c (Fault_list.get fl fi))
  done


let engine_with_dalg_on_c17 () =
  let c = Library.c17 () in
  let fl = Collapse.collapsed c in
  let config = { Engine.default_config with Engine.generator = Engine.Dalg_gen } in
  let r = Engine.run ~config fl ~order:(Array.init (Fault_list.count fl) Fun.id) in
  check (Alcotest.float 0.0001) "full coverage via D-alg" 1.0 (Engine.coverage fl r)


(* --- transition faults ---------------------------------------------- *)

let transition_pairs_valid =
  QCheck.Test.make ~name:"generated transition pairs detect their fault" ~count:15
    arb_circuit
  @@ fun c ->
  let scoap = Scoap.compute c in
  let faults = Transition.all_faults c in
  let ok = ref true in
  Array.iter
    (fun f ->
      match Transition.generate c scoap f with
      | Transition.Pair (v1, v2) -> if not (Transition.detects c f ~v1 ~v2) then ok := false
      | Transition.Untestable | Transition.Aborted -> ())
    faults;
  !ok

let transition_run_on_c17 () =
  let r = Transition.run (Library.c17 ()) in
  (* c17 is fully transition-testable. *)
  check Alcotest.int "no aborts" 0 r.Transition.aborted;
  check (Alcotest.float 1e-9) "full coverage" 1.0 (Transition.coverage r);
  check Alcotest.bool "accounting" true
    (r.Transition.detected + r.Transition.untestable = r.Transition.total)

let transition_detects_semantics () =
  (* Buffer wire: slow-to-rise needs v1 = 0, v2 = 1. *)
  let b = B.create () in
  let a = B.input b "a" in
  let g = B.gate b Gate.Buf "g" [ a ] in
  B.mark_output b g;
  let c = B.finish b in
  let f = { Transition.node = g; rising = true } in
  check Alcotest.bool "0 -> 1 detects" true
    (Transition.detects c f ~v1:[| false |] ~v2:[| true |]);
  check Alcotest.bool "1 -> 1 misses" false
    (Transition.detects c f ~v1:[| true |] ~v2:[| true |]);
  check Alcotest.bool "0 -> 0 misses" false
    (Transition.detects c f ~v1:[| false |] ~v2:[| false |])


let compacting_engine_sound =
  QCheck.Test.make ~name:"dynamic compaction keeps coverage, each test detects its target"
    ~count:10 arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let n = Fault_list.count fl in
  let order = Array.init n Fun.id in
  let plain = Engine.run fl ~order in
  let comp = Engine.run_compacting fl ~order in
  let det r = Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 r.Engine.detected_by in
  det comp = det plain
  && Array.for_all2
       (fun fi t ->
         Faultsim.detects c (Fault_list.get fl fi) (Patterns.vector comp.Engine.tests t))
       comp.Engine.targeted
       (Array.init (Patterns.count comp.Engine.tests) Fun.id)


let n_detect_reaches_multiplicity =
  QCheck.Test.make ~name:"n-detect: every testable fault reaches n detections" ~count:8
    arb_circuit
  @@ fun c ->
  let fl = Collapse.collapsed c in
  let nfaults = Fault_list.count fl in
  let order = Array.init nfaults Fun.id in
  let n = 3 in
  let r = Engine.run_n_detect ~n fl ~order in
  (* Verify multiplicity by non-dropping simulation of the result. *)
  let sets = Faultsim.detection_sets fl r.Engine.tests in
  let ok = ref true in
  Array.iteri
    (fun fi d ->
      let m = Util.Bitvec.popcount d in
      let failed = List.mem fi r.Engine.untestable || List.mem fi r.Engine.aborted in
      if (not failed) && m < n && m > 0 then
        (* a fault detected at least once must reach n unless its own
           generation failed in a later pass (possible only via abort,
           which lands in [aborted] on pass 1 here) *)
        ok := false)
    sets;
  !ok

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "atpg"
    [
      ( "scoap",
        [
          Alcotest.test_case "inverter chain" `Quick scoap_inverter_chain;
          Alcotest.test_case "and gate" `Quick scoap_and_gate;
          Alcotest.test_case "constants" `Quick scoap_const;
          qtest scoap_finite_on_live;
        ] );
      ( "podem",
        [
          Alcotest.test_case "known redundant" `Quick podem_known_redundant;
          Alcotest.test_case "c17 all testable" `Quick podem_c17_all_testable;
          Alcotest.test_case "pi faults" `Quick podem_pi_fault;
          qtest podem_cube_detects;
          qtest podem_untestable_is_really_untestable;
        ] );
      ( "engine",
        [
          Alcotest.test_case "c17 full coverage" `Quick engine_full_coverage_on_c17;
          Alcotest.test_case "c17 via D-alg engine" `Quick engine_with_dalg_on_c17;
          qtest compacting_engine_sound;
          qtest n_detect_reaches_multiplicity;
          Alcotest.test_case "rejects bad order" `Quick engine_rejects_bad_order;
          Alcotest.test_case "abort-retry escalation" `Quick engine_escalation_recovers;
          Alcotest.test_case "budget classification" `Quick engine_budget_classification;
          Alcotest.test_case "resume determinism" `Quick engine_resume_determinism;
          Alcotest.test_case "fill cube" `Quick fill_cube_respects_assignments;
          qtest engine_order_affects_result;
          qtest spec_parity;
          qtest spec_parity_dalg;
          Alcotest.test_case "speculation at CI matrix point" `Quick spec_env_matrix_parity;
          Alcotest.test_case "resume mid-window" `Quick spec_resume_mid_window;
          Alcotest.test_case "speculative report identical" `Quick spec_report_identical;
          Alcotest.test_case "rejects window 0" `Quick engine_rejects_bad_window;
        ] );
      ("compact", [ qtest compact_preserves_coverage; qtest set_cover_preserves_coverage ]);
      ( "dalg",
        [
          Alcotest.test_case "known redundant" `Quick dalg_known_redundant;
          Alcotest.test_case "c17 all testable" `Quick dalg_c17_all_testable;
          qtest dalg_cube_detects;
          qtest dalg_untestable_is_really_untestable;
          qtest dalg_agrees_with_podem;
        ] );
      ( "transition",
        [
          Alcotest.test_case "semantics" `Quick transition_detects_semantics;
          Alcotest.test_case "c17 run" `Quick transition_run_on_c17;
          qtest transition_pairs_valid;
        ] );
      ( "irredundant",
        [
          Alcotest.test_case "removes known redundancy" `Quick irredundant_removes_known;
          qtest irredundant_converged_has_no_redundancy;
        ] );
    ]
