(* Tests for the circuit workloads: the arithmetic library computes
   arithmetic, the two-level minimiser covers exactly its on-set, the
   KISS2 FSM synthesis agrees with the transition table, and the
   synthetic suite is deterministic. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

module Rng = Util.Rng

(* Evaluate a circuit on an integer-coded input assignment (LSB-first
   helper for the arithmetic circuits). *)
let eval c (inputs : bool array) =
  let v = Goodsim.eval_scalar c inputs in
  Array.map (fun o -> v.(o)) (Circuit.outputs c)

let bits_of n width = Array.init width (fun i -> (n lsr i) land 1 = 1)
let int_of_bits bs =
  fst (Array.fold_left (fun (acc, p) b -> ((if b then acc lor (1 lsl p) else acc), p + 1)) (0, 0) bs)

(* --- arithmetic library ------------------------------------------- *)

let full_adder_truth () =
  let c = Library.full_adder () in
  for v = 0 to 7 do
    let a = v land 1 = 1 and b = v land 2 = 2 and cin = v land 4 = 4 in
    let outs = eval c [| a; b; cin |] in
    let expect = (if a then 1 else 0) + (if b then 1 else 0) + if cin then 1 else 0 in
    check Alcotest.bool "sum" (expect land 1 = 1) outs.(0);
    check Alcotest.bool "cout" (expect >= 2) outs.(1)
  done

let ripple_adder_adds =
  QCheck.Test.make ~name:"ripple adder computes a + b + cin" ~count:200
    QCheck.(triple (int_bound 255) (int_bound 255) bool)
  @@ fun (a, b, cin) ->
  let w = 8 in
  let c = Library.ripple_adder ~width:w in
  let inputs = Array.concat [ bits_of a w; bits_of b w; [| cin |] ] in
  let outs = eval c inputs in
  int_of_bits outs = a + b + if cin then 1 else 0

let multiplier_multiplies =
  QCheck.Test.make ~name:"array multiplier computes a * b" ~count:100
    QCheck.(pair (int_bound 15) (int_bound 15))
  @@ fun (a, b) ->
  let w = 4 in
  let c = Library.multiplier ~width:w in
  let outs = eval c (Array.append (bits_of a w) (bits_of b w)) in
  int_of_bits outs = a * b

let mux_selects =
  QCheck.Test.make ~name:"mux tree selects the addressed data input" ~count:100
    QCheck.(pair (int_bound 255) (int_bound 7))
  @@ fun (data, sel) ->
  let s = 3 in
  let c = Library.mux_tree ~selects:s in
  let data_bits = bits_of data (1 lsl s) in
  (* Select lines: s0 is the MSB of the index. *)
  let sel_bits = Array.init s (fun i -> (sel lsr (s - 1 - i)) land 1 = 1) in
  let outs = eval c (Array.append data_bits sel_bits) in
  outs.(0) = data_bits.(sel)

let parity_tree_parity =
  QCheck.Test.make ~name:"parity tree computes odd parity" ~count:100 (QCheck.int_bound 127)
  @@ fun v ->
  let w = 7 in
  let c = Library.parity_tree ~width:w in
  let bits = bits_of v w in
  let outs = eval c bits in
  outs.(0) = (Array.fold_left (fun a b -> if b then a + 1 else a) 0 bits land 1 = 1)

let comparator_compares =
  QCheck.Test.make ~name:"comparator orders unsigned operands" ~count:200
    QCheck.(pair (int_bound 31) (int_bound 31))
  @@ fun (a, b) ->
  let w = 5 in
  let c = Library.comparator ~width:w in
  let outs = eval c (Array.append (bits_of a w) (bits_of b w)) in
  outs.(0) = (a = b) && outs.(1) = (a < b) && outs.(2) = (a > b)

let decoder_one_hot =
  QCheck.Test.make ~name:"decoder raises exactly the addressed output" ~count:50
    (QCheck.int_bound 15)
  @@ fun v ->
  let w = 4 in
  let c = Library.decoder ~width:w in
  let outs = eval c (bits_of v w) in
  Array.length outs = 16 && Array.for_all2 ( = ) outs (Array.init 16 (fun i -> i = v))

let alu_ops =
  QCheck.Test.make ~name:"ALU implements and/or/xor/add" ~count:200
    QCheck.(quad (int_bound 3) (int_bound 15) (int_bound 15) bool)
  @@ fun (op, a, b, cin) ->
  let w = 4 in
  let c = Library.alu ~width:w in
  let inputs =
    Array.concat [ [| op land 2 = 2; op land 1 = 1 |]; bits_of a w; bits_of b w; [| cin |] ]
  in
  let outs = eval c inputs in
  let r = int_of_bits (Array.sub outs 0 w) and cout = outs.(w) in
  match op with
  | 0 -> r = a land b && not cout
  | 1 -> r = a lor b && not cout
  | 2 -> r = a lxor b && not cout
  | _ ->
      let sum = a + b + if cin then 1 else 0 in
      r = sum land 15 && cout = (sum >= 16)

let c17_is_c17 () =
  let c = Library.c17 () in
  check Alcotest.int "5 inputs" 5 (Array.length (Circuit.inputs c));
  check Alcotest.int "2 outputs" 2 (Array.length (Circuit.outputs c));
  check Alcotest.int "6 gates" 6 (Circuit.gate_count c);
  Circuit.iter_nodes c (fun n ->
      match Circuit.kind c n with
      | Gate.Input | Gate.Nand -> ()
      | k -> Alcotest.failf "unexpected %s in c17" (Gate.to_string k))


let cla_matches_ripple =
  QCheck.Test.make ~name:"carry-lookahead adder = ripple adder = arithmetic" ~count:200
    QCheck.(triple (int_bound 1023) (int_bound 1023) bool)
  @@ fun (a, b, cin) ->
  let w = 10 in
  let c = Library.carry_lookahead_adder ~width:w in
  let inputs = Array.concat [ bits_of a w; bits_of b w; [| cin |] ] in
  let outs = eval c inputs in
  int_of_bits outs = a + b + if cin then 1 else 0

let barrel_rotates =
  QCheck.Test.make ~name:"barrel shifter rotates left" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 7))
  @@ fun (data, sh) ->
  let w = 8 in
  let c = Library.barrel_shifter ~width:w in
  let sel = Array.init 3 (fun i -> (sh lsr i) land 1 = 1) in
  let outs = eval c (Array.append (bits_of data w) sel) in
  let expect = ((data lsl sh) lor (data lsr (w - sh))) land 255 in
  (* sh = 0 shifts by w in the expression above; normalise *)
  let expect = if sh = 0 then data else expect in
  int_of_bits outs = expect

(* --- two-level minimisation --------------------------------------- *)

let on_set_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    list_size (int_range 0 (1 lsl n)) (int_bound ((1 lsl n) - 1)) >>= fun on ->
    return (n, List.sort_uniq compare on))

let cover_is_exact =
  QCheck.Test.make ~name:"Twolevel.cover covers the on-set and nothing else" ~count:300
    (QCheck.make on_set_gen)
  @@ fun (n, on_set) ->
  let cubes = Twolevel.cover ~n ~on_set in
  let covered m = List.exists (fun c -> Twolevel.cube_covers c m) cubes in
  List.for_all covered on_set
  && List.for_all
       (fun m -> List.mem m on_set || not (covered m))
       (List.init (1 lsl n) Fun.id)

let primes_cover_minterms =
  QCheck.Test.make ~name:"every on-set minterm is inside some prime" ~count:200
    (QCheck.make on_set_gen)
  @@ fun (n, on_set) ->
  let ps = Twolevel.primes ~n ~on_set in
  List.for_all (fun m -> List.exists (fun c -> Twolevel.cube_covers c m) ps) on_set

let synthesize_matches_truth_table =
  QCheck.Test.make ~name:"synthesised SOP equals its on-set" ~count:100
    (QCheck.make on_set_gen)
  @@ fun (n, on_set) ->
  let names = Array.init n (fun i -> Printf.sprintf "x%d" i) in
  let c = Twolevel.synthesize ~name:"sop" ~n_inputs:n ~input_names:names [ ("f", on_set) ] in
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let inputs = Array.init n (fun i -> (m lsr i) land 1 = 1) in
    let out = (eval c inputs).(0) in
    if out <> List.mem m on_set then ok := false
  done;
  !ok

let qm_classic_example () =
  (* f(a,b,c) = on {0,1,2,5,6,7} — a classic with two shared cube
     choices; just verify exact coverage. *)
  let on_set = [ 0; 1; 2; 5; 6; 7 ] in
  let cubes = Twolevel.cover ~n:3 ~on_set in
  let covered m = List.exists (fun c -> Twolevel.cube_covers c m) cubes in
  List.iter (fun m -> check Alcotest.bool (string_of_int m) (List.mem m on_set) (covered m))
    (List.init 8 Fun.id)

(* --- KISS2 / lion --------------------------------------------------- *)

let lion_parses () =
  let fsm = Kiss.lion () in
  check Alcotest.int "inputs" 2 fsm.Kiss.n_inputs;
  check Alcotest.int "outputs" 1 fsm.Kiss.n_outputs;
  check Alcotest.int "states" 4 (Array.length fsm.Kiss.states);
  check Alcotest.int "state bits" 2 (Kiss.state_bits fsm);
  check Alcotest.int "transitions" 11 (Array.length fsm.Kiss.transitions)

let lion_comb_interface () =
  let c = Kiss.to_combinational (Kiss.lion ()) in
  (* 2 FSM inputs + 2 state bits in; 1 output + 2 next-state out. *)
  check Alcotest.int "4 inputs" 4 (Array.length (Circuit.inputs c));
  check Alcotest.int "3 outputs" 3 (Array.length (Circuit.outputs c))

let kiss_parse_error () =
  check Alcotest.bool "missing .i" true
    (try
       ignore (Kiss.parse_string ".o 1\n00 a b 0\n");
       false
     with Util.Diagnostics.Failed _ -> true)

let lion_sequential_scan_roundtrip () =
  (* Scanning the sequential lion recovers a circuit with the same
     interface as the direct combinational synthesis, and the two
     compute the same functions. *)
  let fsm = Kiss.lion () in
  let direct = Kiss.to_combinational fsm in
  let scanned, _ = Scan.combinational (Kiss.to_sequential fsm) in
  check Alcotest.int "same input count" (Array.length (Circuit.inputs direct))
    (Array.length (Circuit.inputs scanned));
  (* Compare output values over all 16 assignments, matching outputs by
     role: out0 first, then next-state bits. *)
  for m = 0 to 15 do
    let inputs = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
    let vd = Goodsim.eval_scalar direct inputs in
    let vs = Goodsim.eval_scalar scanned inputs in
    let od = Array.map (fun o -> vd.(o)) (Circuit.outputs direct) in
    let os = Array.map (fun o -> vs.(o)) (Circuit.outputs scanned) in
    check Alcotest.(array bool) (Printf.sprintf "outputs at %d" m) od os
  done

(* Direct semantic check of the synthesis against the FSM's transition
   table: for every (input, state) the circuit's next state and output
   equal the table lookup. *)
let lion_matches_transition_table () =
  let fsm = Kiss.lion () in
  let c = Kiss.to_combinational fsm in
  let in0 = Circuit.find_exn c "in0" in
  ignore in0;
  let idx name = Circuit.find_exn c name in
  let out0 = idx "out0" and nst0 = idx "nst0" and nst1 = idx "nst1" in
  let states = fsm.Kiss.states in
  Array.iter
    (fun (inp, cur, nxt, out) ->
      if not (String.contains inp '-') then begin
        let cur_code = ref 0 in
        Array.iteri (fun i s -> if s = cur then cur_code := i) states;
        let nxt_code = ref 0 in
        Array.iteri (fun i s -> if s = nxt then nxt_code := i) states;
        (* Inputs: in0 = leftmost pattern char, then state bits LSB
           first. *)
        let vals = Array.make 4 false in
        String.iteri (fun i ch -> vals.(i) <- ch = '1') inp;
        vals.(2) <- !cur_code land 1 = 1;
        vals.(3) <- !cur_code land 2 = 2;
        let v = Goodsim.eval_scalar c vals in
        check Alcotest.bool
          (Printf.sprintf "out for %s %s" inp cur)
          (out.[0] = '1') v.(out0);
        check Alcotest.int
          (Printf.sprintf "next for %s %s" inp cur)
          !nxt_code
          ((if v.(nst0) then 1 else 0) lor if v.(nst1) then 2 else 0)
      end)
    fsm.Kiss.transitions


let lion_sequential_matches_fsm_semantics () =
  (* Drive the synthesised sequential circuit and the transition table
     with the same random input sequence; outputs must agree cycle by
     cycle. *)
  let fsm = Kiss.lion () in
  let circuit = Kiss.to_sequential fsm in
  let sim = Seqsim.create circuit in
  let rng = Rng.create 77 in
  let seq = List.init 200 (fun _ -> Array.init 2 (fun _ -> Rng.bool rng)) in
  let expect = Kiss.simulate fsm seq in
  let got = Seqsim.run sim seq in
  List.iteri
    (fun i (e, g) ->
      check Alcotest.(array bool) (Printf.sprintf "cycle %d" i) e g)
    (List.combine expect got)

let seqsim_toggle () =
  (* q = DFF(NOT q): the output alternates every cycle. *)
  let b = Circuit.Builder.create () in
  let q = Circuit.Builder.dff b "q" in
  let n = Circuit.Builder.gate b Gate.Not "n" [ q ] in
  Circuit.Builder.connect_dff b q ~fanin:n;
  Circuit.Builder.mark_output b q;
  let c = Circuit.Builder.finish b in
  (* The circuit has no PIs; feed empty vectors.  Builder requires at
     least one input?  No: inputs may be absent. *)
  let sim = Seqsim.create c in
  let outs = Seqsim.run sim (List.init 6 (fun _ -> [||])) in
  check
    Alcotest.(list (array bool))
    "alternating q"
    [ [| false |]; [| true |]; [| false |]; [| true |]; [| false |]; [| true |] ]
    outs


let sequence_detector_detects () =
  (* The synthesised sequential detector flags every (overlapping)
     occurrence of the pattern in a random bit stream. *)
  let pattern = "1011" in
  let fsm = Kiss.sequence_detector ~pattern in
  check Alcotest.int "states" 4 (Array.length fsm.Kiss.states);
  let circuit = Kiss.to_sequential fsm in
  let sim = Seqsim.create circuit in
  let rng = Rng.create 88 in
  let stream = List.init 300 (fun _ -> Rng.bool rng) in
  let outs = Seqsim.run sim (List.map (fun b -> [| b |]) stream) in
  (* Reference: sliding window over the stream. *)
  let arr = Array.of_list stream in
  let k = String.length pattern in
  List.iteri
    (fun i out ->
      let expect =
        i + 1 >= k
        && (let ok = ref true in
            for j = 0 to k - 1 do
              if arr.(i + 1 - k + j) <> (pattern.[j] = '1') then ok := false
            done;
            !ok)
      in
      check Alcotest.bool (Printf.sprintf "cycle %d" i) expect out.(0))
    outs

let sequence_detector_atpg () =
  (* The full-scan view of the detector goes through the whole paper
     pipeline. *)
  let circuit = Kiss.to_sequential (Kiss.sequence_detector ~pattern:"1101") in
  let setup = Pipeline.prepare (Run_config.with_seed 3 Run_config.default) circuit in
  let run = Pipeline.run_order setup Ordering.Dynm0 in
  check (Alcotest.float 0.0001) "full coverage" 1.0
    (Engine.coverage setup.Pipeline.faults run.Pipeline.engine)


let scan_chain_serial_application () =
  (* Full physical check: vectors computed on the combinational core,
     applied serially through the inserted scan chain, must reproduce
     the core's outputs and next-state exactly. *)
  let fsm = Kiss.lion () in
  let seq = Kiss.to_sequential fsm in
  let comb, _ = Scan.combinational seq in
  let scanned, chain = Scan.insert_chain seq in
  check Alcotest.int "two cells" 2 (Array.length chain.Scan.cells);
  check Alcotest.int "cycles per test" 5 (Testbench.cycles_per_test chain);
  let sim = Seqsim.create scanned in
  let outs_comb = Circuit.outputs comb in
  for m = 0 to 15 do
    let comb_inputs = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
    let r = Testbench.apply_combinational_test sim chain ~comb_inputs ~n_original_pis:2 in
    (* Expected from the combinational core: out0, then nst bits. *)
    let v = Goodsim.eval_scalar comb comb_inputs in
    let expect = Array.map (fun o -> v.(o)) outs_comb in
    check Alcotest.bool (Printf.sprintf "po at %d" m) expect.(0) r.Testbench.outputs.(0);
    check Alcotest.bool (Printf.sprintf "nst0 at %d" m) expect.(1) r.Testbench.captured.(0);
    check Alcotest.bool (Printf.sprintf "nst1 at %d" m) expect.(2) r.Testbench.captured.(1)
  done

let scan_chain_on_detector () =
  (* Same check on the sequence detector, with random vectors. *)
  let seq = Kiss.to_sequential (Kiss.sequence_detector ~pattern:"1011") in
  let comb, _ = Scan.combinational seq in
  let scanned, chain = Scan.insert_chain seq in
  let sim = Seqsim.create scanned in
  let n_inputs_comb = Array.length (Circuit.inputs comb) in
  let rng = Rng.create 123 in
  for _ = 1 to 40 do
    let comb_inputs = Array.init n_inputs_comb (fun _ -> Rng.bool rng) in
    let r = Testbench.apply_combinational_test sim chain ~comb_inputs ~n_original_pis:1 in
    let v = Goodsim.eval_scalar comb comb_inputs in
    let expect = Array.map (fun o -> v.(o)) (Circuit.outputs comb) in
    check Alcotest.bool "out" expect.(0) r.Testbench.outputs.(0);
    Array.iteri
      (fun i cap -> check Alcotest.bool (Printf.sprintf "nst%d" i) expect.(i + 1) cap)
      r.Testbench.captured
  done

(* --- suite ---------------------------------------------------------- *)

let suite_deterministic () =
  (* build is memoised; force two fresh generations via Generate. *)
  let e = List.hd Suite.small in
  let a = Generate.random ~seed:e.Suite.seed ~name:e.Suite.name
      (Generate.profile ~outputs:e.Suite.pos ~pis:e.Suite.pis ~gates:e.Suite.gates ())
  in
  let b = Generate.random ~seed:e.Suite.seed ~name:e.Suite.name
      (Generate.profile ~outputs:e.Suite.pos ~pis:e.Suite.pis ~gates:e.Suite.gates ())
  in
  check Alcotest.string "same netlist" (Bench_format.to_string a) (Bench_format.to_string b)

let suite_entry_lookup () =
  check Alcotest.bool "finds syn420" true (Suite.find "syn420" <> None);
  check Alcotest.bool "rejects junk" true (Suite.find "junk" = None);
  check Alcotest.int "fourteen entries" 14 (List.length Suite.entries);
  check Alcotest.int "twelve small" 12 (List.length Suite.small)

(* --- parameterised generator family --------------------------------- *)

let gen_spec_roundtrip () =
  let spec = Generate.spec_of_string "gates=2k,reconv=0.4,seed=5,arity=3" in
  check Alcotest.int "gates" 2000 spec.Generate.s_gates;
  check Alcotest.int "seed" 5 spec.Generate.s_seed;
  check Alcotest.int "arity" 3 spec.Generate.s_max_arity;
  check (Alcotest.float 1e-9) "reconv" 0.4 spec.Generate.s_reconvergence;
  check Alcotest.bool "round-trips" true
    (Generate.spec_of_string (Generate.spec_to_string spec) = spec)

let gen_spec_rejects () =
  let rejects s =
    match Generate.spec_of_string s with
    | exception Util.Diagnostics.Failed _ -> true
    | _ -> false
  in
  check Alcotest.bool "unknown key" true (rejects "gatez=100");
  check Alcotest.bool "malformed value" true (rejects "gates=ten");
  check Alcotest.bool "probability range" true (rejects "reconv=1.5");
  check Alcotest.bool "arity range" true (rejects "arity=1");
  check Alcotest.bool "missing =" true (rejects "gates")

let gen_build_deterministic () =
  let spec = Generate.spec_of_string "gates=1500,reconv=0.4,seed=5" in
  let a = Generate.build spec and b = Generate.build spec in
  check Alcotest.string "same digest" (Generate.digest a) (Generate.digest b);
  check Alcotest.string "same netlist" (Bench_format.to_string a)
    (Bench_format.to_string b);
  (* The digest is structural: a renamed build hashes the same. *)
  check Alcotest.string "digest ignores names" (Generate.digest a)
    (Generate.digest (Generate.build ~name:"other" spec));
  check Alcotest.bool "different seed, different structure" true
    (Generate.digest (Generate.build { spec with Generate.s_seed = 6 })
    <> Generate.digest a)

let gen_build_shape () =
  let spec = Generate.spec_of_string "gates=1200,pis=32,outputs=8,seed=3" in
  let c = Generate.build spec in
  check Alcotest.int "gates" 1200 (Circuit.gate_count c);
  check Alcotest.int "pis" 32 (Array.length (Circuit.inputs c));
  check Alcotest.bool "sink floor respected" true
    (Array.length (Circuit.outputs c) >= 8);
  check Alcotest.bool "multi-level" true (Circuit.depth c > 1)

let suite_matches_paper_inputs () =
  (* The "inp" column of Table 4. *)
  let expect =
    [ (208, 19); (298, 17); (344, 24); (382, 24); (400, 24); (420, 35); (510, 25);
      (526, 24); (641, 54); (820, 23); (953, 45); (1196, 32); (5378, 214); (13207, 699) ]
  in
  List.iter2
    (fun (n, pis) (e : Suite.entry) ->
      check Alcotest.string "name" (Printf.sprintf "syn%d" n) e.Suite.name;
      check Alcotest.int "pis" pis e.Suite.pis)
    expect Suite.entries

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "circuits"
    [
      ( "library",
        [
          Alcotest.test_case "full adder" `Quick full_adder_truth;
          Alcotest.test_case "c17 shape" `Quick c17_is_c17;
          qtest ripple_adder_adds;
          qtest multiplier_multiplies;
          qtest mux_selects;
          qtest parity_tree_parity;
          qtest comparator_compares;
          qtest decoder_one_hot;
          qtest alu_ops;
          qtest cla_matches_ripple;
          qtest barrel_rotates;
        ] );
      ( "twolevel",
        [
          Alcotest.test_case "classic example" `Quick qm_classic_example;
          qtest cover_is_exact;
          qtest primes_cover_minterms;
          qtest synthesize_matches_truth_table;
        ] );
      ( "kiss",
        [
          Alcotest.test_case "lion parses" `Quick lion_parses;
          Alcotest.test_case "lion interface" `Quick lion_comb_interface;
          Alcotest.test_case "parse error" `Quick kiss_parse_error;
          Alcotest.test_case "scan roundtrip" `Quick lion_sequential_scan_roundtrip;
          Alcotest.test_case "transition table" `Quick lion_matches_transition_table;
          Alcotest.test_case "sequential semantics" `Quick lion_sequential_matches_fsm_semantics;
          Alcotest.test_case "seqsim toggle" `Quick seqsim_toggle;
          Alcotest.test_case "sequence detector" `Quick sequence_detector_detects;
          Alcotest.test_case "sequence detector atpg" `Quick sequence_detector_atpg;
          Alcotest.test_case "scan chain serial" `Quick scan_chain_serial_application;
          Alcotest.test_case "scan chain detector" `Quick scan_chain_on_detector;
        ] );
      ( "suite",
        [
          Alcotest.test_case "deterministic" `Quick suite_deterministic;
          Alcotest.test_case "entry lookup" `Quick suite_entry_lookup;
          Alcotest.test_case "paper input counts" `Quick suite_matches_paper_inputs;
        ] );
      ( "generate",
        [
          Alcotest.test_case "spec roundtrip" `Quick gen_spec_roundtrip;
          Alcotest.test_case "spec rejects" `Quick gen_spec_rejects;
          Alcotest.test_case "build deterministic" `Quick gen_build_deterministic;
          Alcotest.test_case "build shape" `Quick gen_build_shape;
        ] );
    ]
