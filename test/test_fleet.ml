(* Tests for protocol v2 and the fleet layer: hello negotiation,
   batch ops (qcheck properties: request order preserved, every item
   byte-identical to the equivalent sequential v1 op, across cold and
   warm caches and jobs=1 vs jobs=4), the client's out-of-order
   pipelining, the shared write-through spill store, the router's
   consistent-hash ring (cache affinity, minimal rehash on death,
   revival restores the mapping), and an end-to-end router fleet with
   a worker kill and failover. *)

module Json = Util.Json
module D = Util.Diagnostics
module Store = Service.Store
module Protocol = Service.Protocol
module Session = Service.Session
module Server = Service.Server
module Client = Service.Client
module Router = Service.Router

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "adi-fleet-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* ---------- protocol negotiation ---------------------------------- *)

let hello_negotiates_highest_common () =
  let t = Session.create ~capacity:2 () in
  let conn = Session.new_conn () in
  check Alcotest.int "fresh connections speak v1" Protocol.v1 (Session.conn_version conn);
  (match
     (Session.handle t ~conn { Protocol.id = 1; call = Protocol.Hello [ 1; 2; 9 ] })
       .Protocol.payload
   with
  | Ok (Protocol.Welcome { version; versions; server }) ->
      check Alcotest.int "negotiated the highest common version" Protocol.v2 version;
      Alcotest.(check (list int)) "server advertises what it speaks"
        Protocol.supported_versions versions;
      check Alcotest.string "server identifies itself" Util.Version.version server
  | _ -> Alcotest.fail "expected a welcome");
  check Alcotest.int "connection upgraded" Protocol.v2 (Session.conn_version conn);
  (* No overlap: a typed refusal, and the connection stays at v1. *)
  let conn2 = Session.new_conn () in
  (match
     (Session.handle t ~conn:conn2 { Protocol.id = 2; call = Protocol.Hello [ 99 ] })
       .Protocol.payload
   with
  | Error e -> check Alcotest.string "typed refusal" "E-protocol" e.Protocol.code
  | Ok _ -> Alcotest.fail "expected a version-mismatch error");
  check Alcotest.int "failed hello leaves v1" Protocol.v1 (Session.conn_version conn2);
  (* Handshakes are connection setup, not work. *)
  check Alcotest.int "hello never counts as a request" 0 (Session.requests t)

let unknown_op_names_negotiated_version () =
  let t = Session.create ~capacity:2 () in
  let conn = Session.new_conn () in
  ignore (Session.handle t ~conn { Protocol.id = 1; call = Protocol.Hello [ 1; 2 ] });
  let reply, _ =
    Session.handle_frame t ~conn
      (Json.to_string (Json.Obj [ ("id", Json.Int 5); ("op", Json.Str "nope") ]))
  in
  match Result.bind (Json.of_string reply) Protocol.response_of_json with
  | Ok { Protocol.id = 5; payload = Error e } ->
      let contains msg sub =
        let n = String.length msg and m = String.length sub in
        let rec scan i = i + m <= n && (String.sub msg i m = sub || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "error names protocol v2" true
        (contains e.Protocol.message "protocol v2");
      Alcotest.(check bool) "error lists the batch ops" true
        (contains e.Protocol.message "batch_adi")
  | _ -> Alcotest.fail "expected an unknown-op error echoing id 5"

(* ---------- batch ops: qcheck properties -------------------------- *)

let circuits = [| "c17"; "lion"; "syn208" |]

(* A batch item: a circuit plus a small config that exercises distinct
   cache keys.  Kept small — every property run pays for real ADI
   computation. *)
let item_gen =
  QCheck.Gen.(
    map2
      (fun c seed ->
        [ ("circuit", Json.Str circuits.(c)); ("seed", Json.Int (1 + seed));
          ("pool", Json.Int 64); ("target_coverage", Json.Float 0.5) ])
      (int_bound (Array.length circuits - 1))
      (int_bound 1))

let batch_gen =
  QCheck.Gen.(
    map2
      (fun op items -> ((if op = 0 then Protocol.Adi else Protocol.Order), items))
      (int_bound 1)
      (list_size (int_range 1 4) item_gen))

let arb_batch =
  QCheck.make
    ~print:(fun (op, items) ->
      Printf.sprintf "batch_%s %s" (Protocol.op_name op)
        (String.concat "; " (List.map (fun ps -> Json.to_string (Json.Obj ps)) items)))
    batch_gen

let batch_replies t ?conn op items =
  match (Session.handle t ?conn { Protocol.id = 1; call = Protocol.Batch (op, items) })
          .Protocol.payload
  with
  | Ok (Protocol.Batch_replies rs) -> rs
  | Ok _ -> Alcotest.fail "expected batch replies"
  | Error e -> Alcotest.fail ("batch failed whole: " ^ e.Protocol.message)

let single_reply t op params =
  (Session.handle t (Protocol.single ~id:1 (Protocol.op_name op) params)).Protocol.payload

let reply_str = function
  | Ok j -> "ok:" ^ Json.to_string j
  | Error (e : Protocol.error) -> "err:" ^ e.Protocol.code ^ ":" ^ e.Protocol.message

let strip_cached = function
  | Ok (Json.Obj fields) -> Ok (Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields))
  | r -> r

(* One batch against a fresh session must equal the same ops sent
   sequentially as v1 singles to another fresh session — byte for
   byte, cached flags included, in request order. *)
let batch_equals_sequential_v1 =
  QCheck.Test.make ~name:"batch items = sequential v1 ops, byte-identical" ~count:6 arb_batch
    (fun (op, items) ->
      let batch_t = Session.create ~capacity:4 ~jobs:1 () in
      let seq_t = Session.create ~capacity:4 ~jobs:1 () in
      let batched = batch_replies batch_t op items in
      let sequential =
        List.map
          (fun params ->
            match single_reply seq_t op params with
            | Ok (Protocol.Result j) -> Ok j
            | Ok _ -> Alcotest.fail "unexpected single reply shape"
            | Error e -> Error e)
          items
      in
      List.length batched = List.length items
      && List.for_all2 (fun b s -> reply_str b = reply_str s) batched sequential)

(* The same batch served warm must agree with the cold run modulo the
   truthful cached flag, and jobs must never leak into replies. *)
let batch_warm_and_jobs_identical =
  QCheck.Test.make ~name:"batch cold = warm (modulo cached) = jobs=4" ~count:4 arb_batch
    (fun (op, items) ->
      let t1 = Session.create ~capacity:8 ~jobs:1 () in
      let cold = batch_replies t1 op items in
      let warm = batch_replies t1 op items in
      let t4 = Session.create ~capacity:8 ~jobs:4 () in
      let cold4 = batch_replies t4 op items in
      List.for_all2
        (fun c w -> reply_str (strip_cached c) = reply_str (strip_cached w))
        cold warm
      && List.for_all2 (fun c c4 -> reply_str c = reply_str c4) cold cold4)

let batch_isolates_bad_items () =
  let t = Session.create ~capacity:4 () in
  let good = [ ("circuit", Json.Str "c17"); ("seed", Json.Int 3); ("pool", Json.Int 64) ] in
  let bad = [ ("circuit", Json.Str "c17"); ("pool", Json.Int 0) ] in
  match batch_replies t Protocol.Adi [ good; bad; good ] with
  | [ Ok _; Error e; Ok _ ] ->
      check Alcotest.string "bad item is typed" "E-flag" e.Protocol.code
  | rs -> Alcotest.fail (Printf.sprintf "expected ok/err/ok, got %d replies" (List.length rs))

(* ---------- client pipelining ------------------------------------- *)

(* A hand-rolled server that answers one connection's N requests in
   reverse order — the client must still return replies in request
   order by matching ids. *)
let pipeline_reorders_replies () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "adi-pipe-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 1;
  let n = 3 in
  let server =
    Domain.spawn (fun () ->
        let fd, _ = Unix.accept listener in
        let reqs = List.init n (fun _ -> Option.get (Protocol.read_frame fd)) in
        let ids =
          List.map
            (fun payload ->
              match Json.of_string payload with
              | Error _ -> Alcotest.fail "server got a malformed frame"
              | Ok json -> (
                  match Protocol.request_of_json json with
                  | Ok (req : Protocol.request) -> req.Protocol.id
                  | Error _ -> Alcotest.fail "server got a malformed frame"))
            reqs
        in
        List.iter
          (fun id ->
            Protocol.write_frame fd
              (Json.to_string
                 (Protocol.response_to_json
                    { Protocol.id;
                      payload = Ok (Protocol.Result (Json.Obj [ ("echo", Json.Int id) ])) })))
          (List.rev ids);
        Unix.close fd;
        ids)
  in
  let client = Client.create (Server.Unix_socket path) in
  let calls = List.init n (fun _ -> Protocol.Single (Protocol.Stats, [])) in
  let replies = Client.pipeline client calls in
  let ids = Domain.join server in
  Unix.close listener;
  Sys.remove path;
  Client.close client;
  let echoed =
    List.map
      (function
        | Ok (Protocol.Result j) -> Option.get (Option.bind (Json.member "echo" j) Json.to_int)
        | _ -> Alcotest.fail "pipeline lost a reply")
      replies
  in
  Alcotest.(check (list int)) "replies in request order despite reversed delivery" ids echoed

(* ---------- shared write-through spill ---------------------------- *)

let shared_spill_seeds_sibling_workers () =
  with_temp_dir @@ fun dir ->
  let cfg = Run_config.(default |> with_seed 5 |> with_pool 64 |> with_target_coverage 0.5) in
  let circuit = Suite.build_by_name "c17" in
  let a = Store.create ~capacity:4 ~spill_dir:dir ~write_through:true () in
  let _, cached_a = Store.find_or_prepare a cfg circuit in
  Alcotest.(check bool) "first worker computes cold" false cached_a;
  check Alcotest.int "fresh setup written through" 1 (Store.stats a).Store.spill_writes;
  (* A sibling worker sharing the directory finds it on disk. *)
  let b = Store.create ~capacity:4 ~spill_dir:dir ~write_through:true () in
  let _, cached_b = Store.find_or_prepare b cfg circuit in
  Alcotest.(check bool) "sibling served from the shared spill" true cached_b;
  check Alcotest.int "served by disk, not memory" 1 (Store.stats b).Store.spill_hits;
  check Alcotest.int "spill reload does not rewrite" 0 (Store.stats b).Store.spill_writes;
  (* Write-through without a spill directory is a configuration error. *)
  match Store.create ~capacity:4 ~write_through:true () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "write_through without spill_dir must be rejected"

(* ---------- the consistent-hash ring ------------------------------ *)

let fake_addresses n =
  List.init n (fun i -> Server.Unix_socket (Printf.sprintf "/tmp/adi-ring-%d.sock" i))

let keys_for_test =
  List.init 200 (fun i -> Digest.to_hex (Digest.string (Printf.sprintf "key-%d" i)))

let ring_affinity_is_stable_and_minimal () =
  let r = Router.create ~vnodes:64 (fake_addresses 3) in
  let before = List.map (fun k -> (k, Router.worker_for r k)) keys_for_test in
  (* Same key, same worker — the cache-affinity property. *)
  List.iter
    (fun (k, w) ->
      Alcotest.(check bool)
        (Printf.sprintf "stable mapping for %s" k)
        true
        (Router.worker_for r k = w))
    before;
  (* Every worker owns a share of a 200-key universe. *)
  let owned w = List.length (List.filter (fun (_, w') -> w' = Some w) before) in
  List.iter
    (fun w ->
      Alcotest.(check bool) (Printf.sprintf "worker %d owns keys" w) true (owned w > 0))
    [ 0; 1; 2 ];
  (* Killing one worker rehashes only its keys. *)
  Router.set_alive r 1 false;
  List.iter
    (fun (k, w) ->
      match w with
      | Some 1 -> (
          match Router.worker_for r k with
          | Some w' when w' <> 1 -> ()
          | _ -> Alcotest.fail "dead worker's key not rerouted to a live worker")
      | w -> Alcotest.(check bool) "live workers' keys stay put" true (Router.worker_for r k = w))
    before;
  (* Revival restores exactly the original mapping. *)
  Router.set_alive r 1 true;
  List.iter
    (fun (k, w) ->
      Alcotest.(check bool) "revival restores the mapping" true (Router.worker_for r k = w))
    before;
  (* All dead: nothing to route to. *)
  List.iter (fun w -> Router.set_alive r w false) [ 0; 1; 2 ];
  Alcotest.(check bool) "no live workers, no owner" true
    (Router.worker_for r (List.hd keys_for_test) = None)

let routing_key_tracks_circuit_identity () =
  let k1 = Router.routing_key [ ("circuit", Json.Str "c17"); ("seed", Json.Int 1) ] in
  let k2 = Router.routing_key [ ("circuit", Json.Str "c17"); ("seed", Json.Int 2) ] in
  let k3 = Router.routing_key [ ("circuit", Json.Str "lion") ] in
  Alcotest.(check bool) "same circuit, same key (config is irrelevant)" true (k1 = k2 && k1 <> None);
  Alcotest.(check bool) "different circuit, different key" true (k1 <> k3);
  Alcotest.(check bool) "no circuit, no key" true (Router.routing_key [] = None);
  let inline = Router.routing_key [ ("netlist", Json.Str "INPUT(a)\nOUTPUT(a)\n") ] in
  Alcotest.(check bool) "inline netlists key by content" true
    (inline <> None && inline <> Router.routing_key [ ("netlist", Json.Str "other") ])

(* ---------- end-to-end: router fleet ------------------------------ *)

let temp_socket name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "adi-%s-%d-%d.sock" name (Unix.getpid ()) (Random.bits ()))

let start_backend backend address =
  let server = Server.create ~workers:2 ~backlog:8 backend address in
  let ready = Atomic.make false in
  let dom =
    Domain.spawn (fun () -> Server.serve server ~on_ready:(fun () -> Atomic.set ready true))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (server, dom)

let router_fleet_end_to_end () =
  let params name = [ ("circuit", Json.Str name); ("seed", Json.Int 3); ("pool", Json.Int 64) ] in
  let expected name =
    let pristine = Session.create ~capacity:4 ~jobs:1 () in
    match single_reply pristine Protocol.Adi (params name) with
    | Ok (Protocol.Result j) -> reply_str (strip_cached (Ok j))
    | _ -> Alcotest.fail "offline pipeline failed"
  in
  let want_c17 = expected "c17" and want_lion = expected "lion" in
  let w0_addr = Server.Unix_socket (temp_socket "fleet-w0") in
  let w1_addr = Server.Unix_socket (temp_socket "fleet-w1") in
  let s0 = Session.create ~capacity:4 ~jobs:1 () in
  let s1 = Session.create ~capacity:4 ~jobs:1 () in
  let w0, d0 = start_backend (Session.backend s0) w0_addr in
  let w1, d1 = start_backend (Session.backend s1) w1_addr in
  let router = Router.create ~policy:{ Client.default_policy with Util.Retry.max_attempts = 2; base_delay_s = 0.005 } [ w0_addr; w1_addr ] in
  let front = Server.Unix_socket (temp_socket "fleet-router") in
  let rs, rd = start_backend (Router.backend router) front in
  let client = Client.create front in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Server.request_stop rs;
      Domain.join rd;
      Server.request_stop w0;
      Server.request_stop w1;
      Domain.join d0;
      Domain.join d1)
    (fun () ->
      (* A v2 batch through the router: in order, byte-identical. *)
      (match Client.batch client Protocol.Adi [ params "c17"; params "lion" ] with
      | Ok [ r1; r2 ] ->
          check Alcotest.string "batch item 1 byte-identical" want_c17
            (reply_str (strip_cached r1));
          check Alcotest.string "batch item 2 byte-identical" want_lion
            (reply_str (strip_cached r2))
      | Ok rs -> Alcotest.fail (Printf.sprintf "expected 2 replies, got %d" (List.length rs))
      | Error d -> Alcotest.fail (D.to_string d));
      (* Affinity: the same circuit keeps landing on the same worker. *)
      for _ = 1 to 3 do
        match Client.adi client (params "c17") with
        | Ok _ -> ()
        | Error d -> Alcotest.fail (D.to_string d)
      done;
      let hits, moves = Router.affinity router in
      Alcotest.(check bool) "repeat requests hit their worker" true (hits >= 3);
      check Alcotest.int "no spurious rehashing" 0 moves;
      (* Kill the worker that owns c17; the next request fails over. *)
      let owner =
        match Router.worker_for router (Option.get (Router.routing_key (params "c17"))) with
        | Some w -> w
        | None -> Alcotest.fail "no owner for c17"
      in
      let owner_server, owner_domain = if owner = 0 then (w0, d0) else (w1, d1) in
      Server.request_stop owner_server;
      Domain.join owner_domain;
      (match Client.adi client (params "c17") with
      | Ok j -> check Alcotest.string "failover reply byte-identical" want_c17 (reply_str (strip_cached (Ok j)))
      | Error d -> Alcotest.fail ("failover failed: " ^ D.to_string d));
      Alcotest.(check bool) "failover recorded" true (Router.failovers router >= 1);
      let dead = List.nth (Router.workers router) owner in
      Alcotest.(check bool) "dead worker marked" false dead.Router.alive;
      (* Fleet health reflects the loss. *)
      match Client.health client () with
      | Ok j ->
          check (Alcotest.option Alcotest.int) "one live worker" (Some 1)
            (Option.bind (Json.member "live_workers" j) Json.to_int);
          check (Alcotest.option Alcotest.string) "router role" (Some "router")
            (Option.bind (Json.member "role" j) Json.to_str)
      | Error d -> Alcotest.fail (D.to_string d))

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "fleet"
    [ ( "protocol-v2",
        [ Alcotest.test_case "hello negotiation" `Quick hello_negotiates_highest_common;
          Alcotest.test_case "unknown op names version" `Quick unknown_op_names_negotiated_version;
          Alcotest.test_case "batch isolates bad items" `Quick batch_isolates_bad_items;
          qtest batch_equals_sequential_v1;
          qtest batch_warm_and_jobs_identical ] );
      ( "client",
        [ Alcotest.test_case "pipeline reorders replies" `Quick pipeline_reorders_replies ] );
      ( "store",
        [ Alcotest.test_case "shared write-through spill" `Quick shared_spill_seeds_sibling_workers ] );
      ( "ring",
        [ Alcotest.test_case "affinity stable, rehash minimal" `Quick ring_affinity_is_stable_and_minimal;
          Alcotest.test_case "routing key identity" `Quick routing_key_tracks_circuit_identity ] );
      ( "fleet",
        [ Alcotest.test_case "router end to end with failover" `Quick router_fleet_end_to_end ] ) ]
