(* Tests for Util: Rng, Bitvec, Heap, Table, Plot. *)

module Rng = Util.Rng
module Bitvec = Util.Bitvec
module Heap = Util.Heap
module Table = Util.Table
module Plot = Util.Plot
module Budget = Util.Budget
module Parallel = Util.Parallel
module D = Util.Diagnostics

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Rng ---------------------------------------------------------- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let diff = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then diff := true
  done;
  check Alcotest.bool "streams differ" true !diff

let rng_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
  @@ fun (seed, bound) ->
  let rng = Rng.create seed in
  let ok = ref true in
  for _ = 1 to 50 do
    let v = Rng.int rng bound in
    if v < 0 || v >= bound then ok := false
  done;
  !ok

let rng_int_rejects_bad () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let f = Rng.float rng 2.5 in
    check Alcotest.bool "in [0, 2.5)" true (f >= 0.0 && f < 2.5)
  done

let rng_shuffle_permutes =
  QCheck.Test.make ~name:"Rng.shuffle is a permutation" ~count:100 QCheck.small_int
  @@ fun seed ->
  let rng = Rng.create seed in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  sorted = Array.init 20 Fun.id

let rng_split_differs () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  check Alcotest.bool "split streams differ" true (Rng.int64 a <> Rng.int64 b)

(* --- Bitvec ------------------------------------------------------- *)

let bitvec_get_set () =
  let v = Bitvec.create 130 in
  Bitvec.set v 0 true;
  Bitvec.set v 64 true;
  Bitvec.set v 129 true;
  check Alcotest.bool "bit 0" true (Bitvec.get v 0);
  check Alcotest.bool "bit 1" false (Bitvec.get v 1);
  check Alcotest.bool "bit 64" true (Bitvec.get v 64);
  check Alcotest.bool "bit 129" true (Bitvec.get v 129);
  check Alcotest.int "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 64 false;
  check Alcotest.int "popcount after clear" 2 (Bitvec.popcount v)

let bitvec_out_of_range () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range") (fun () ->
      ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 10" (Invalid_argument "Bitvec: index out of range") (fun () ->
      ignore (Bitvec.get v 10))

let bitvec_fill () =
  let v = Bitvec.create 70 in
  Bitvec.fill v true;
  check Alcotest.int "all set" 70 (Bitvec.popcount v);
  Bitvec.fill v false;
  check Alcotest.int "all clear" 0 (Bitvec.popcount v);
  check Alcotest.bool "is_zero" true (Bitvec.is_zero v)

let bool_array_gen n = QCheck.Gen.(array_size (return n) bool)

let bitvec_roundtrip =
  QCheck.Test.make ~name:"Bitvec of/to bool array" ~count:200
    (QCheck.make QCheck.Gen.(int_range 1 200 >>= bool_array_gen))
  @@ fun a -> Bitvec.to_bool_array (Bitvec.of_bool_array a) = a

let bitvec_setops =
  QCheck.Test.make ~name:"Bitvec set ops match boolean ops" ~count:200
    (QCheck.make
       QCheck.Gen.(
         int_range 1 150 >>= fun n ->
         pair (bool_array_gen n) (bool_array_gen n)))
  @@ fun (a, b) ->
  let va = Bitvec.of_bool_array a and vb = Bitvec.of_bool_array b in
  let vu = Bitvec.copy va in
  Bitvec.union_into ~dst:vu vb;
  let vi = Bitvec.copy va in
  Bitvec.inter_into ~dst:vi vb;
  let vd = Bitvec.copy va in
  Bitvec.diff_into ~dst:vd vb;
  Bitvec.to_bool_array vu = Array.map2 ( || ) a b
  && Bitvec.to_bool_array vi = Array.map2 ( && ) a b
  && Bitvec.to_bool_array vd = Array.map2 (fun x y -> x && not y) a b

let bitvec_iter_set =
  QCheck.Test.make ~name:"Bitvec.iter_set visits exactly the set bits in order" ~count:200
    (QCheck.make QCheck.Gen.(int_range 1 200 >>= bool_array_gen))
  @@ fun a ->
  let v = Bitvec.of_bool_array a in
  let seen = ref [] in
  Bitvec.iter_set v (fun i -> seen := i :: !seen);
  List.rev !seen = List.filter (fun i -> a.(i)) (List.init (Array.length a) Fun.id)

let bitvec_block_ops =
  QCheck.Test.make ~name:"Bitvec xor_into/union_many match boolean ops" ~count:200
    (QCheck.make
       QCheck.Gen.(
         int_range 1 150 >>= fun n ->
         pair (bool_array_gen n) (list_size (int_bound 5) (bool_array_gen n))))
  @@ fun (a, srcs) ->
  let xored =
    match srcs with
    | [] -> a
    | b :: _ ->
        let v = Bitvec.of_bool_array a in
        Bitvec.xor_into ~dst:v (Bitvec.of_bool_array b);
        Bitvec.to_bool_array v
  in
  let unioned =
    let v = Bitvec.of_bool_array a in
    Bitvec.union_many ~dst:v (Array.of_list (List.map Bitvec.of_bool_array srcs));
    Bitvec.to_bool_array v
  in
  xored
  = (match srcs with [] -> a | b :: _ -> Array.map2 (fun x y -> x <> y) a b)
  && unioned = List.fold_left (Array.map2 ( || )) a srcs

let bitvec_iteri_words =
  QCheck.Test.make ~name:"Bitvec.iteri_words covers every bit with zero padding" ~count:200
    (QCheck.make QCheck.Gen.(int_range 1 200 >>= bool_array_gen))
  @@ fun a ->
  let v = Bitvec.of_bool_array a in
  let n = Array.length a in
  let ok = ref true in
  let words = ref 0 in
  Bitvec.iteri_words v (fun i w ->
      incr words;
      for j = 0 to 63 do
        let bit = Int64.logand (Int64.shift_right_logical w j) 1L = 1L in
        let idx = (64 * i) + j in
        let expect = idx < n && a.(idx) in
        if bit <> expect then ok := false
      done);
  !ok && !words = (n + 63) / 64

let bitvec_block_ops_normalised () =
  (* In-place ops on a non-multiple-of-64 length must keep the padding
     zero, or popcount/iter_set would see ghost bits. *)
  let a = Bitvec.create 70 in
  let b = Bitvec.create 70 in
  Bitvec.fill b true;
  Bitvec.xor_into ~dst:a b;
  check Alcotest.int "xor_into popcount" 70 (Bitvec.popcount a);
  let u = Bitvec.create 70 in
  Bitvec.union_many ~dst:u [| b; b; b |];
  check Alcotest.int "union_many popcount" 70 (Bitvec.popcount u);
  Bitvec.union_many ~dst:u [||];
  check Alcotest.int "empty union_many is a no-op" 70 (Bitvec.popcount u);
  check Alcotest.bool "length mismatch rejected" true
    (try
       Bitvec.union_many ~dst:u [| Bitvec.create 64 |];
       false
     with Invalid_argument _ -> true)

let bitvec_first_set () =
  let v = Bitvec.create 100 in
  check Alcotest.(option int) "none" None (Bitvec.first_set v);
  Bitvec.set v 77 true;
  check Alcotest.(option int) "77" (Some 77) (Bitvec.first_set v);
  Bitvec.set v 3 true;
  check Alcotest.(option int) "3" (Some 3) (Bitvec.first_set v)

let bitvec_random_length () =
  let rng = Rng.create 5 in
  let v = Bitvec.random rng 99 in
  check Alcotest.int "length" 99 (Bitvec.length v);
  (* Padding bits beyond the length must stay clear. *)
  check Alcotest.bool "popcount sane" true (Bitvec.popcount v <= 99)

(* ctz/popcount against bit-by-bit references. *)

let naive_ctz w =
  if w = 0L then 64
  else begin
    let i = ref 0 in
    while Int64.logand (Int64.shift_right_logical w !i) 1L = 0L do
      incr i
    done;
    !i
  end

let naive_popcount w =
  let n = ref 0 in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical w i) 1L = 1L then incr n
  done;
  !n

let word_gen =
  QCheck.Gen.(
    map2
      (fun hi lo -> Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))
      (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))

let bitvec_ctz =
  QCheck.Test.make ~name:"Bitvec.ctz matches bit-by-bit scan" ~count:500 (QCheck.make word_gen)
  @@ fun w -> Bitvec.ctz w = naive_ctz w

let bitvec_ctz_exact () =
  check Alcotest.int "zero word" 64 (Bitvec.ctz 0L);
  check Alcotest.int "bit 0" 0 (Bitvec.ctz 1L);
  check Alcotest.int "bit 63" 63 (Bitvec.ctz Int64.min_int);
  for i = 0 to 63 do
    check Alcotest.int "single bit" i (Bitvec.ctz (Int64.shift_left 1L i))
  done

let bitvec_popcount_word =
  QCheck.Test.make ~name:"Bitvec.popcount_word matches bit-by-bit count" ~count:500
    (QCheck.make word_gen)
  @@ fun w -> Bitvec.popcount_word w = naive_popcount w

(* --- Parallel ------------------------------------------------------ *)

let par_for_covers () =
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let n = 1003 in
  let hits = Array.make n 0 in
  Parallel.parallel_for pool n (fun i -> hits.(i) <- hits.(i) + 1);
  check Alcotest.bool "every index exactly once" true (Array.for_all (( = ) 1) hits)

let par_for_fewer_items_than_lanes () =
  Parallel.with_pool ~jobs:8 @@ fun pool ->
  let hits = Array.make 3 0 in
  Parallel.parallel_for pool 3 (fun i -> hits.(i) <- hits.(i) + 1);
  check Alcotest.bool "n < jobs covered" true (Array.for_all (( = ) 1) hits);
  Parallel.parallel_for pool 0 (fun _ -> Alcotest.fail "empty range must not call f");
  let one = ref 0 in
  Parallel.parallel_for pool 1 (fun i -> one := !one + 1 + i);
  check Alcotest.int "single index" 1 !one

let par_pool_reuse () =
  Parallel.with_pool ~jobs:3 @@ fun pool ->
  check Alcotest.int "lane count" 3 (Parallel.jobs pool);
  let total = ref 0 in
  for round = 1 to 5 do
    let acc = Array.make 100 0 in
    Parallel.parallel_for pool 100 (fun i -> acc.(i) <- round);
    total := !total + Array.fold_left ( + ) 0 acc
  done;
  check Alcotest.int "five rounds on one pool" (100 * (1 + 2 + 3 + 4 + 5)) !total

let par_exception_propagates () =
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let ran = Array.make 4 false in
  let tasks =
    Array.init 4 (fun i ->
        fun () ->
         ran.(i) <- true;
         if i >= 2 then failwith (Printf.sprintf "task %d" i))
  in
  (match Parallel.run pool tasks with
  | () -> Alcotest.fail "expected a task failure to propagate"
  | exception Failure msg -> check Alcotest.string "lowest-indexed failure wins" "task 2" msg);
  check Alcotest.bool "all tasks still ran" true (Array.for_all Fun.id ran);
  (* The pool must survive a failing batch. *)
  let ok = ref false in
  Parallel.run pool [| (fun () -> ok := true) |];
  check Alcotest.bool "pool usable after exception" true !ok

let par_fold_ordered () =
  (* A non-commutative combine exposes any reduce-order dependence. *)
  Parallel.with_pool ~jobs:5 @@ fun pool ->
  let n = 57 in
  let digits =
    Parallel.fold pool n
      ~map:(fun ~lo ~hi ->
        let b = Buffer.create 8 in
        for i = lo to hi - 1 do
          Buffer.add_string b (string_of_int (i mod 10))
        done;
        Buffer.contents b)
      ~combine:( ^ ) ~init:""
  in
  let expect = String.concat "" (List.init n (fun i -> string_of_int (i mod 10))) in
  check Alcotest.string "slice-ordered concatenation" expect digits

let par_map_slices_bounds () =
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let slices = Parallel.map_slices pool 10 (fun ~lo ~hi -> (lo, hi)) in
  check Alcotest.bool "slices cover the range in order" true
    (Array.length slices <= 4
    && fst slices.(0) = 0
    && snd slices.(Array.length slices - 1) = 10
    && Array.for_all (fun (lo, hi) -> lo <= hi) slices);
  check Alcotest.int "empty range" 0 (Array.length (Parallel.map_slices pool 0 (fun ~lo:_ ~hi:_ -> ())))

let par_single_lane_inline () =
  Parallel.with_pool ~jobs:1 @@ fun pool ->
  (* With one lane everything runs on the calling domain. *)
  let self = Domain.self () in
  let seen = ref None in
  Parallel.parallel_for pool 5 (fun _ -> seen := Some (Domain.self ()));
  check Alcotest.bool "ran inline" true (!seen = Some self)

let par_create_rejects () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Parallel.create: jobs must be at least 1")
    (fun () -> Parallel.with_pool ~jobs:0 (fun _ -> ()))

let par_shutdown_idempotent () =
  let pool = Parallel.create ~jobs:4 () in
  Parallel.shutdown pool;
  Parallel.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Parallel.run: pool is shut down") (fun () ->
      Parallel.run pool [| (fun () -> ()) |])

(* --- Parallel.Window ----------------------------------------------- *)

module Window = Parallel.Window

let win_ordered_collect () =
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let w = Window.create pool ~capacity:3 in
  check Alcotest.int "capacity" 3 (Window.capacity w);
  check Alcotest.bool "at least one executor" true (Window.executors w >= 1);
  let collected = ref [] in
  for i = 0 to 9 do
    if Window.in_flight w = Window.capacity w then
      collected := Window.collect w :: !collected;
    Window.submit w (fun ~exec:_ -> i * i)
  done;
  while Window.in_flight w > 0 do
    collected := Window.collect w :: !collected
  done;
  check
    Alcotest.(list int)
    "results in submission order"
    (List.init 10 (fun i -> i * i))
    (List.rev !collected)

let win_exception_propagates () =
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let w = Window.create pool ~capacity:2 in
  Window.submit w (fun ~exec:_ -> 1);
  Window.submit w (fun ~exec:_ -> failwith "boom");
  check Alcotest.int "first ticket ok" 1 (Window.collect w);
  (match Window.collect w with
  | _ -> Alcotest.fail "expected the ticket's exception on collect"
  | exception Failure msg -> check Alcotest.string "ticket exception" "boom" msg);
  (* The window and pool survive a raising ticket. *)
  Window.submit w (fun ~exec:_ -> 7);
  check Alcotest.int "usable after exception" 7 (Window.collect w)

let win_guards () =
  Parallel.with_pool ~jobs:2 @@ fun pool ->
  (match Window.create pool ~capacity:0 with
  | _ -> Alcotest.fail "capacity 0 must be rejected"
  | exception Invalid_argument _ -> ());
  let w = Window.create pool ~capacity:1 in
  (match Window.collect w with
  | _ -> Alcotest.fail "collect with nothing in flight must be rejected"
  | exception Invalid_argument _ -> ());
  Window.submit w (fun ~exec:_ -> 0);
  (match Window.submit w (fun ~exec:_ -> 1) with
  | () -> Alcotest.fail "submit past capacity must be rejected"
  | exception Invalid_argument _ -> ());
  check Alcotest.int "still collectable" 0 (Window.collect w)

let win_executor_affinity () =
  (* Tickets are dealt round-robin by submission sequence, so the exec
     argument is deterministic: ticket i always lands on executor
     [i mod executors], whatever the window occupancy was. *)
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let w = Window.create pool ~capacity:8 in
  let k = Window.executors w in
  let execs = Array.make 16 (-1) in
  for i = 0 to 15 do
    if Window.in_flight w = Window.capacity w then ignore (Window.collect w : unit);
    Window.submit w (fun ~exec -> execs.(i) <- exec)
  done;
  Window.drain w;
  Array.iteri
    (fun i e ->
      check Alcotest.bool "exec in range" true (e >= 0 && e < k);
      check Alcotest.int "round-robin executor" (i mod k) e)
    execs

let win_interleaves_with_run () =
  (* A fork-join group submitted while window tickets are outstanding
     completes without the caller having to drain the window first. *)
  Parallel.with_pool ~jobs:4 @@ fun pool ->
  let w = Window.create pool ~capacity:4 in
  for i = 1 to 4 do
    Window.submit w (fun ~exec:_ -> i)
  done;
  let hits = Array.make 4 0 in
  Parallel.parallel_for pool 4 (fun i -> hits.(i) <- hits.(i) + 1);
  check Alcotest.bool "group ran under open window" true (Array.for_all (( = ) 1) hits);
  let total = ref 0 in
  while Window.in_flight w > 0 do
    total := !total + Window.collect w
  done;
  check Alcotest.int "tickets all collected" 10 !total

let win_drain () =
  Parallel.with_pool ~jobs:2 @@ fun pool ->
  let w = Window.create pool ~capacity:4 in
  Window.submit w (fun ~exec:_ -> ());
  Window.submit w (fun ~exec:_ -> failwith "swallowed by drain");
  Window.drain w;
  check Alcotest.int "empty after drain" 0 (Window.in_flight w);
  Window.submit w (fun ~exec:_ -> ());
  Window.drain w;
  check Alcotest.int "reusable after drain" 0 (Window.in_flight w)

(* --- Heap --------------------------------------------------------- *)

let heap_pops_sorted =
  QCheck.Test.make ~name:"Heap pops keys in decreasing order" ~count:200
    QCheck.(list (int_range 0 1000))
  @@ fun keys ->
  let h = Heap.create () in
  List.iteri (fun i k -> Heap.push h ~key:k i) keys;
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc) in
  let out = drain [] in
  out = List.sort (fun a b -> compare b a) keys

let heap_tie_break () =
  let h = Heap.create () in
  Heap.push h ~key:5 "b";
  Heap.push h ~key:5 "a";
  Heap.push h ~key:7 "c";
  check Alcotest.(option (pair int string)) "max first" (Some (7, "c")) (Heap.pop h);
  check Alcotest.(option (pair int string)) "tie -> smaller payload" (Some (5, "a")) (Heap.pop h);
  check Alcotest.(option (pair int string)) "then larger" (Some (5, "b")) (Heap.pop h);
  check Alcotest.(option (pair int string)) "empty" None (Heap.pop h)

let heap_peek () =
  let h = Heap.create () in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  Heap.push h ~key:1 0;
  check Alcotest.(option (pair int int)) "peek" (Some (1, 0)) (Heap.peek h);
  check Alcotest.int "length" 1 (Heap.length h)

(* --- Table -------------------------------------------------------- *)

let table_render () =
  let t = Table.create [ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* Right-aligned numbers line up: the "22" row ends with "22". *)
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "line count" 5 (List.length lines)
  (* header, rule, 2 rows, trailing empty *)

let table_mismatch () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "bad row" (Invalid_argument "Table.add_row: column count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

(* --- Plot --------------------------------------------------------- *)

(* Naive substring search, used by several string-shaped checks. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let plot_renders () =
  let s =
    Plot.render ~x_label:"x" ~y_label:"y"
      [
        { Plot.marker = 'o'; points = Array.init 10 (fun i -> (float_of_int i, float_of_int (i * i))); label = "sq" };
      ]
  in
  check Alcotest.bool "mentions label" true (contains s "o - sq");
  check Alcotest.bool "draws marker" true (contains s "o")

(* --- Budget ------------------------------------------------------- *)

(* A fake clock the test advances by hand, so expiry is deterministic. *)
let fake_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun dt -> now := !now +. dt)

let budget_unlimited () =
  check Alcotest.bool "is_unlimited" true (Budget.is_unlimited Budget.unlimited);
  check Alcotest.bool "never expires" false (Budget.expired Budget.unlimited);
  check Alcotest.bool "infinite remaining" true (Budget.remaining_s Budget.unlimited = infinity)

let budget_expires_on_clock () =
  let clock, advance = fake_clock () in
  let b = Budget.of_seconds ~clock 5.0 in
  check Alcotest.bool "fresh" false (Budget.expired b);
  check Alcotest.(float 1e-9) "full remaining" 5.0 (Budget.remaining_s b);
  advance 4.9;
  check Alcotest.bool "still inside" false (Budget.expired b);
  advance 0.2;
  check Alcotest.bool "past deadline" true (Budget.expired b);
  check Alcotest.(float 0.0) "clamped to zero" 0.0 (Budget.remaining_s b)

let budget_zero_already_expired () =
  let clock, _ = fake_clock () in
  check Alcotest.bool "zero budget" true (Budget.expired (Budget.of_seconds ~clock 0.0))

let budget_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Budget.of_seconds: negative budget")
    (fun () -> ignore (Budget.of_seconds (-1.0)))

let budget_of_seconds_opt () =
  let clock, _ = fake_clock () in
  check Alcotest.bool "None is unlimited" true
    (Budget.is_unlimited (Budget.of_seconds_opt ~clock None));
  check Alcotest.bool "Some is a deadline" false
    (Budget.is_unlimited (Budget.of_seconds_opt ~clock (Some 1.0)))

let budget_min_of () =
  let clock, advance = fake_clock () in
  let early = Budget.of_seconds ~clock 1.0 and late = Budget.of_seconds ~clock 10.0 in
  let m = Budget.min_of early late in
  check Alcotest.bool "min with unlimited keeps deadline" false
    (Budget.is_unlimited (Budget.min_of Budget.unlimited early));
  advance 2.0;
  check Alcotest.bool "earlier deadline wins" true (Budget.expired m);
  check Alcotest.bool "later one alone survives" false (Budget.expired late)

let budget_sub_slice () =
  let clock, advance = fake_clock () in
  let run = Budget.of_seconds ~clock 10.0 in
  (* A generous slice is still capped by the enclosing budget... *)
  let slice = Budget.sub ~clock run ~seconds:60.0 in
  check Alcotest.(float 1e-9) "capped by parent" 10.0 (Budget.remaining_s slice);
  (* ...and a short slice expires before the run does. *)
  let short = Budget.sub ~clock run ~seconds:1.0 in
  advance 1.5;
  check Alcotest.bool "slice expired" true (Budget.expired short);
  check Alcotest.bool "run still open" false (Budget.expired run);
  check Alcotest.bool "sub_opt None is parent" false
    (Budget.expired (Budget.sub_opt ~clock run None))

(* --- Diagnostics -------------------------------------------------- *)

let diag_to_string_with_line () =
  let d = D.error ~loc:(D.line ~file:"x.bench" 12) D.Unknown_gate "no such gate %S" "FROB" in
  check Alcotest.string "rendering" "x.bench:12: error: no such gate \"FROB\" [E-unknown-gate]"
    (D.to_string d)

let diag_to_string_no_line () =
  let d = D.error ~loc:{ D.file = Some "ck.bin"; line = 0 } D.Checkpoint_format "bad header" in
  check Alcotest.string "line 0 omitted" "ck.bin: error: bad header [E-checkpoint-format]"
    (D.to_string d);
  let bare = D.error D.Empty_input "nothing to parse" in
  check Alcotest.string "no location at all" "error: nothing to parse [E-empty]"
    (D.to_string bare)

let diag_severities () =
  let w = D.warning D.Dead_logic "node drives nothing" in
  check Alcotest.string "warning slug" "W-dead-logic" (D.code_string w.D.code);
  check Alcotest.bool "warning is not an error" false (D.is_error w);
  let e = D.error D.Syntax "bad" in
  check Alcotest.int "count_errors" 1 (D.count_errors [ w; e; w ])

let diag_fail_raises () =
  match D.fail ~loc:(D.line 3) D.Syntax "boom %d" 7 with
  | exception D.Failed d ->
      check Alcotest.string "message formatted" "boom 7" d.D.message;
      check Alcotest.int "line carried" 3 d.D.loc.D.line
  | _ -> Alcotest.fail "expected Failed"

let () =
  Util.Trace.install_from_env ();
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick rng_copy_independent;
          Alcotest.test_case "int rejects bad bound" `Quick rng_int_rejects_bad;
          Alcotest.test_case "float range" `Quick rng_float_range;
          Alcotest.test_case "split" `Quick rng_split_differs;
          qtest rng_int_bounds;
          qtest rng_shuffle_permutes;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "get/set/popcount" `Quick bitvec_get_set;
          Alcotest.test_case "bounds" `Quick bitvec_out_of_range;
          Alcotest.test_case "fill" `Quick bitvec_fill;
          Alcotest.test_case "first_set" `Quick bitvec_first_set;
          Alcotest.test_case "random" `Quick bitvec_random_length;
          Alcotest.test_case "ctz exact" `Quick bitvec_ctz_exact;
          qtest bitvec_roundtrip;
          qtest bitvec_setops;
          qtest bitvec_iter_set;
          qtest bitvec_ctz;
          qtest bitvec_popcount_word;
          qtest bitvec_block_ops;
          qtest bitvec_iteri_words;
          Alcotest.test_case "block ops stay normalised" `Quick bitvec_block_ops_normalised;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "parallel_for covers range" `Quick par_for_covers;
          Alcotest.test_case "fewer items than lanes" `Quick par_for_fewer_items_than_lanes;
          Alcotest.test_case "pool reuse" `Quick par_pool_reuse;
          Alcotest.test_case "exceptions propagate" `Quick par_exception_propagates;
          Alcotest.test_case "ordered fold" `Quick par_fold_ordered;
          Alcotest.test_case "map_slices bounds" `Quick par_map_slices_bounds;
          Alcotest.test_case "single lane runs inline" `Quick par_single_lane_inline;
          Alcotest.test_case "create rejects jobs 0" `Quick par_create_rejects;
          Alcotest.test_case "shutdown idempotent" `Quick par_shutdown_idempotent;
          Alcotest.test_case "window ordered collect" `Quick win_ordered_collect;
          Alcotest.test_case "window exception propagates" `Quick win_exception_propagates;
          Alcotest.test_case "window guards" `Quick win_guards;
          Alcotest.test_case "window executor affinity" `Quick win_executor_affinity;
          Alcotest.test_case "window interleaves with run" `Quick win_interleaves_with_run;
          Alcotest.test_case "window drain" `Quick win_drain;
        ] );
      ( "heap",
        [
          Alcotest.test_case "tie break" `Quick heap_tie_break;
          Alcotest.test_case "peek/length" `Quick heap_peek;
          qtest heap_pops_sorted;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "mismatch" `Quick table_mismatch;
        ] );
      ("plot", [ Alcotest.test_case "renders" `Quick plot_renders ]);
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick budget_unlimited;
          Alcotest.test_case "expires on clock" `Quick budget_expires_on_clock;
          Alcotest.test_case "zero already expired" `Quick budget_zero_already_expired;
          Alcotest.test_case "negative rejected" `Quick budget_negative_rejected;
          Alcotest.test_case "of_seconds_opt" `Quick budget_of_seconds_opt;
          Alcotest.test_case "min_of" `Quick budget_min_of;
          Alcotest.test_case "sub slices" `Quick budget_sub_slice;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "to_string with line" `Quick diag_to_string_with_line;
          Alcotest.test_case "to_string without line" `Quick diag_to_string_no_line;
          Alcotest.test_case "severities and counting" `Quick diag_severities;
          Alcotest.test_case "fail raises Failed" `Quick diag_fail_raises;
        ] );
    ]
