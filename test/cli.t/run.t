The CLI drives every stage of the flow.  These checks pin the
user-visible behaviour on the small deterministic circuits.

Circuit statistics:

  $ adi-atpg stats c17
  c17: 5 PIs, 2 POs, 6 gates (0 DFFs), 12 pins, depth 3, max fanout 2
  [INPUT:5, NAND:6]

Fault counting and collapsing:

  $ adi-atpg faults c17
  full fault universe : 46
  collapsed (classes) : 22
  collapse ratio      : 2.09
  prime (dominance)   : 16
  dominance ratio     : 2.88
  checkpoint classes  : 18
  probe sites         : 11

Random-pattern fault simulation:

  $ adi-atpg sim c17 -n 64 --seed 3
  64 random vectors detect 22 / 22 collapsed faults (100.00%)

ADI summary on the lion stand-in:

  $ adi-atpg adi lion
  |U| = 14 vectors (pool detected 50 faults)
  U fault coverage = 0.940
  ADImin = 7, ADImax = 15, ratio = 2.14
  ADI histogram (detected faults):
    [   7..   8] ############### 15
    [   9..  10] ########### 11
    [  11..  12] ############## 14
    [  13..  14] ## 2
    [  15..  16] ##### 5
    [  17..  18]  0
    [  19..  20]  0
    [  21..  22]  0

Head of the 0dynm order:

  $ adi-atpg order lion --order 0dynm -n 5
  first 5 faults of F0dynm:
      1. f20    ADI=0     out0_t2 s-a-0
      2. f34    ADI=0     st0_n s-a-0
      3. f45    ADI=0     nst1_t2 s-a-0
      4. f14    ADI=15    out0_t0.in0 (in0_n) s-a-1
      5. f23    ADI=15    out0_t2.in2 (st1) s-a-1

ATPG with the 0dynm order reaches full coverage on c17:

  $ adi-atpg atpg c17 --order 0dynm | head -5
  order       : F0dynm
  tests       : 6
  coverage    : 1.000
  untestable  : 0 proven, 0 aborted, 0 out-of-budget
  AVE         : 2.64 tests to detection

Unknown circuits are rejected:

  $ adi-atpg stats nonesuch
  adi-atpg: Suite.build_by_name: unknown circuit "nonesuch"
  [1]

Generating a tiny .bench circuit:

  $ adi-atpg gen --pis 4 --gates 6 --seed 9
  # generated
  INPUT(pi0)
  INPUT(pi1)
  INPUT(pi2)
  INPUT(pi3)
  OUTPUT(g2)
  OUTPUT(g3)
  OUTPUT(g4)
  OUTPUT(g5)
  g0 = OR(pi0, pi3)
  g1 = XOR(g0, pi3)
  g2 = NOT(g1)
  g3 = XOR(g1, pi0)
  g4 = BUF(pi1)
  g5 = NOT(pi2)

The parameterised generator family (--gen) is deterministic for a
given spec; the structural digest goes to stderr so piped netlists
stay clean, and a degenerate spec is a typed E-flag:

  $ adi-atpg gen --gen gates=200,pis=16,seed=3 -o g1.bench
  digest: fb119a5632dff480db7984599c81e6f6
  gen[gates=200,pis=16,seed=3,locality=0.6,reconv=0.3,arity=4]: 16 PIs, 8 POs, 200 gates, depth 35 -> g1.bench
  $ adi-atpg gen --gen gates=200,pis=16,seed=3 -o g2.bench 2> d2.txt > /dev/null
  $ cmp g1.bench g2.bench && cat d2.txt
  digest: fb119a5632dff480db7984599c81e6f6
  $ adi-atpg gen --gen gates=0
  adi-atpg: error: --gen gates must be at least 1 (got 0) [E-flag]
  [2]

Round-trip through an external test-vector file and evaluate it:

  $ adi-atpg atpg c17 --order dynm -o vecs.txt | grep tests
  tests       : 7
  AVE         : 2.73 tests to detection
  $ adi-atpg coverage c17 --tests vecs.txt
  tests        : 7
  faults       : 22 collapsed
  coverage     : 1.000
  AVE          : 2.73 tests to detection
  50% reached  : after 2 tests
  75% reached  : after 4 tests
  90% reached  : after 5 tests

Scan-chain insertion on a sequential netlist:

  $ cat > toggle.bench <<'BENCH'
  > INPUT(a)
  > OUTPUT(o)
  > q = DFF(n)
  > n = XOR(a, q)
  > o = BUF(n)
  > BENCH
  $ adi-atpg scan-insert toggle.bench scanned.bench
  chain: q
  tester cycles per test: 3
  toggle_scan: 3 PIs, 2 POs, 8 gates, depth 3 -> scanned.bench

Malformed netlists fail with a typed diagnostic (exit 2); --recover
skips what it can and still loads the circuit:

  $ cat > broken.bench <<'BENCH'
  > INPUT(a)
  > INPUT(b)
  > OUTPUT(z)
  > OUTPUT(w)
  > z = FROB(a, b)
  > z = AND(a, b)
  > w = OR(a, ghost)
  > BENCH
  $ adi-atpg stats broken.bench
  adi-atpg: broken.bench:5: error: unknown gate type "FROB" [E-unknown-gate]
  [2]
  $ adi-atpg stats broken.bench --recover 2>diags.txt
  broken: 2 PIs, 1 POs, 1 gates (0 DFFs), 2 pins, depth 1, max fanout 1
  [AND:1, INPUT:2]
  $ cat diags.txt
  adi-atpg: broken.bench:5: error: unknown gate type "FROB" [E-unknown-gate]
  adi-atpg: broken.bench:7: error: signal "ghost" is used but never defined [E-undefined-ref]
  adi-atpg: broken.bench:4: error: OUTPUT "w" is never defined [E-undefined-ref]

A run interrupted by an expired time budget exits 3 and leaves a
resumable checkpoint; --resume completes it into the report the
uninterrupted run would have produced, then removes the checkpoint:

  $ adi-atpg atpg c17 --order 0dynm --time-budget 0 --checkpoint ck.bin > out.txt
  [3]
  $ grep -v runtime out.txt
  order       : F0dynm
  tests       : 0
  coverage    : 0.000
  untestable  : 0 proven, 0 aborted, 0 out-of-budget
  status      : INTERRUPTED (22 of 22 faults pending)
  checkpoint  : saved to ck.bin (rerun with --resume)
  $ adi-atpg atpg c17 --order 0dynm --checkpoint ck.bin --resume | head -5
  order       : F0dynm
  tests       : 6
  coverage    : 1.000
  untestable  : 0 proven, 0 aborted, 0 out-of-budget
  AVE         : 2.64 tests to detection
  $ test -f ck.bin || echo checkpoint removed
  checkpoint removed

Resuming under different parameters is refused:

  $ adi-atpg atpg c17 --order 0dynm --time-budget 0 --checkpoint ck.bin > /dev/null
  [3]
  $ adi-atpg atpg c17 --order dynm --checkpoint ck.bin --resume
  adi-atpg: ck.bin: error: checkpoint was taken with a different fault order [E-checkpoint-mismatch]
  [2]

Invalid run-configuration values are rejected as typed diagnostics by
the shared flag table, before they can reach the domain pool:

  $ adi-atpg atpg c17 --jobs 0
  adi-atpg: error: --jobs must be at least 1 (got 0) [E-flag]
  [2]

The fault-simulation kernel is a pure throughput knob: every kernel
produces the same report, and an unknown kernel is a typed E-flag:

  $ adi-atpg atpg c17 --order 0dynm --faultsim-kernel event | head -3
  order       : F0dynm
  tests       : 6
  coverage    : 1.000
  $ adi-atpg atpg c17 --order 0dynm --faultsim-kernel stem | head -3
  order       : F0dynm
  tests       : 6
  coverage    : 1.000
  $ adi-atpg atpg c17 --order 0dynm --faultsim-kernel cpt | head -3
  order       : F0dynm
  tests       : 6
  coverage    : 1.000
  $ adi-atpg atpg c17 --faultsim-kernel warp
  adi-atpg: error: unknown fault-simulation kernel "warp" (expected event, stem or cpt) [E-flag]
  [2]

So is the superblock width: any accepted --block-width yields the
same report word for word, and anything else is a typed E-flag:

  $ adi-atpg atpg c17 --order 0dynm --block-width 8 | head -3
  order       : F0dynm
  tests       : 6
  coverage    : 1.000
  $ adi-atpg atpg c17 --order 0dynm --block-width 4 --faultsim-kernel stem | head -3
  order       : F0dynm
  tests       : 6
  coverage    : 1.000
  $ adi-atpg atpg c17 --block-width 3
  adi-atpg: error: --block-width must be 1, 2, 4 or 8 (got 3) [E-flag]
  [2]

--metrics appends the phase/counter/histogram tables after the
ordinary report; the instrumented names are stable:

  $ adi-atpg atpg c17 --order 0dynm --metrics > metrics.txt
  $ grep -c "^phase " metrics.txt
  1
  $ grep -oE "^[a-z_]+(\.[a-z_.]+)+" metrics.txt | sort -u
  adi.detected_by_u
  adi.value
  engine.aborted
  engine.budget_expired
  engine.drops_per_test
  engine.gen_s.aborted
  engine.gen_s.out_of_budget
  engine.gen_s.test
  engine.gen_s.untestable
  engine.goodsim_block_s
  engine.out_of_budget
  engine.pass
  engine.retry_recovered
  engine.spec.refilled
  engine.tests
  engine.untestable
  faultsim.detection_sets
  faultsim.propagations
  faultsim.with_dropping
  goodsim.lane_s
  pipeline.collapse.classes
  pipeline.collapse.full
  pipeline.collapse.prime
  pipeline.collapse.probes
  pipeline.engine
  pipeline.faults
  pipeline.order
  pipeline.pool_detected
  pipeline.prepare
  pipeline.u_size
  podem.backtracks
  podem.decisions
  podem.implications
  prepare.adi
  prepare.collapse
  prepare.select_u

--trace streams the same run as JSON lines, every one carrying the
stable schema, covering preparation, ordering and the engine:

  $ adi-atpg atpg c17 --order 0dynm --trace t.jsonl | head -2
  order       : F0dynm
  tests       : 6
  $ test "$(grep -c adi_trace/v1 t.jsonl)" = "$(wc -l < t.jsonl)" && echo every line carries the schema
  every line carries the schema
  $ grep -o '"name":"pipeline.[a-z]*"' t.jsonl | sort -u
  "name":"pipeline.engine"
  "name":"pipeline.faults"
  "name":"pipeline.order"
  "name":"pipeline.prepare"

A resumed run appends to the interrupted run's trace instead of
truncating it:

  $ adi-atpg atpg c17 --order 0dynm --time-budget 0 --checkpoint ck3.bin --trace t3.jsonl > /dev/null
  [3]
  $ wc -l < t3.jsonl > n1.txt
  $ adi-atpg atpg c17 --order 0dynm --checkpoint ck3.bin --resume --trace t3.jsonl > /dev/null
  $ test "$(wc -l < t3.jsonl)" -gt "$(cat n1.txt)" && echo resume extends the trace
  resume extends the trace

Conversion to BLIF and back:

  $ adi-atpg convert c17 c17.blif
  c17: 5 PIs, 2 POs, 6 gates, depth 3 -> c17.blif
  $ adi-atpg stats c17.blif
  c17: 5 PIs, 2 POs, 12 gates (0 DFFs), 18 pins, depth 6, max fanout 2
  [AND:6, INPUT:5, NOT:6]
