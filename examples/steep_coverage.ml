(* Steep fault-coverage curves — the paper's second application.

   A test set whose early tests detect many faults lets a tester drop
   trailing tests with little coverage loss, and catches defective
   chips sooner.  This example generates tests for one synthetic
   benchmark under three orders, plots the coverage curves (the
   paper's Figure 1), and reports the AVE metric (expected number of
   tests until a faulty chip is detected, Table 7).

   Run with:  dune exec examples/steep_coverage.exe *)

open Adi_atpg

let () =
  let circuit = Suite.build_by_name "syn298" in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;
  let setup = Pipeline.prepare (Run_config.with_seed 1 Run_config.default) circuit in
  let runs =
    List.map
      (fun kind -> (kind, Pipeline.run_order setup kind))
      [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0 ]
  in
  let curves =
    List.map
      (fun (kind, run) ->
        (kind, Coverage.of_engine_result setup.Pipeline.faults run.Pipeline.engine))
      runs
  in
  (* Figure-1-style plot. *)
  let series =
    List.map2
      (fun (kind, curve) marker ->
        { Plot.marker; points = Coverage.points curve; label = Ordering.to_string kind })
      curves [ 'o'; 'd'; 'z' ]
  in
  print_string (Plot.render ~x_label:"tests (%)" ~y_label:"fault coverage (%)" series);
  (* AVE: lower = steeper curve = defects found earlier. *)
  let base = Coverage.ave (List.assoc Ordering.Orig curves) in
  Format.printf "@.%-8s %10s %12s@." "order" "AVE" "AVE/AVEorig";
  List.iter
    (fun (kind, curve) ->
      let ave = Coverage.ave curve in
      Format.printf "%-8s %10.2f %12.3f@." (Ordering.to_string kind) ave (ave /. base))
    curves;
  Format.printf
    "@.A ratio below 1.000 for dynm reproduces the paper's headline:@.\
     ADI-ordered generation steepens the curve without reordering tests.@."
