(* Full-scan flow on a sequential design.

   Start from a sequential FSM netlist (flip-flops in a feedback loop),
   apply the full-scan transformation (flip-flop outputs become pseudo
   primary inputs, data pins become pseudo primary outputs), run
   ADI-ordered ATPG on the combinational core, and emit both the scan
   model and the vectors — the complete flow the paper's title assumes.

   Run with:  dune exec examples/scan_flow.exe *)

open Adi_atpg

let () =
  (* The lion FSM, synthesised with flip-flops. *)
  let fsm = Kiss.lion () in
  let sequential = Kiss.to_sequential fsm in
  Format.printf "sequential : %a@." Circuit.pp_summary sequential;

  (* Full-scan view. *)
  let comb, mapping = Scan.combinational sequential in
  Format.printf "scan model : %a@." Circuit.pp_summary comb;
  Array.iter
    (fun (ff, id) ->
      Format.printf "  scan cell %s -> PPI %s@." ff (Circuit.name comb id))
    mapping.Scan.ppis;

  (* The combinational core round-trips through the .bench format. *)
  let bench_text = Bench_format.to_string comb in
  Format.printf "@.%s@." bench_text;

  (* Insert a physical scan chain and check the tester protocol: a
     vector computed on the core, applied serially (shift in - capture -
     shift out), reproduces the core's response. *)
  let scanned, chain = Scan.insert_chain sequential in
  Format.printf "scan chain : %d cells (%s), %d tester cycles per test@."
    (Array.length chain.Scan.cells)
    (String.concat " -> " (Array.to_list chain.Scan.cells))
    (Testbench.cycles_per_test chain);
  let sim = Seqsim.create scanned in
  let demo_inputs = [| true; false; true; false |] in
  let r = Testbench.apply_combinational_test sim chain ~comb_inputs:demo_inputs ~n_original_pis:2 in
  let v = Goodsim.eval_scalar comb demo_inputs in
  Format.printf "serial application of 1010: PO=%b (core says %b), captured state=%b%b@.@."
    r.Testbench.outputs.(0)
    v.((Circuit.outputs comb).(0))
    r.Testbench.captured.(0) r.Testbench.captured.(1);

  (* ADI-ordered test generation on the core. *)
  let setup = Pipeline.prepare (Run_config.with_seed 1 Run_config.default) comb in
  let run = Pipeline.run_order setup Ordering.Dynm0 in
  let result = run.Pipeline.engine in
  Format.printf "tests (%d, coverage %.1f%%):@."
    (Patterns.count result.Engine.tests)
    (100.0 *. Engine.coverage setup.Pipeline.faults result);
  let pi_names =
    Array.to_list (Array.map (Circuit.name comb) (Circuit.inputs comb))
  in
  Format.printf "  %s@." (String.concat " " pi_names);
  Array.iter
    (fun s -> Format.printf "  %s@." (String.concat "    " (List.map (String.make 1) (List.init (String.length s) (String.get s)))))
    (Patterns.to_strings result.Engine.tests)
