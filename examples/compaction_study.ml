(* Test-set compaction study on arithmetic workloads.

   The paper's first application: ordering faults by decreasing
   (dynamic) ADI shrinks the generated test set, without any other
   dynamic-compaction machinery.  This example measures all six orders
   on realistic datapath circuits — a ripple-carry adder, a 4x4 array
   multiplier and a small ALU — and compares them with classic static
   compaction (reverse-order fault simulation) as a baseline.

   Run with:  dune exec examples/compaction_study.exe *)

open Adi_atpg

let study circuit =
  Format.printf "@.== %a ==@." Circuit.pp_summary circuit;
  let setup = Pipeline.prepare (Run_config.with_seed 7 Run_config.default) circuit in
  let t = Table.create [ ("order", Table.Left); ("tests", Table.Right);
                         ("after static compaction", Table.Right) ] in
  List.iter
    (fun kind ->
      let run = Pipeline.run_order setup kind in
      let tests = run.Pipeline.engine.Engine.tests in
      let compacted = Compact.reverse_order setup.Pipeline.faults tests in
      Table.add_row t
        [
          Ordering.to_string kind;
          string_of_int (Patterns.count tests);
          string_of_int (Patterns.count compacted.Compact.tests);
        ])
    Ordering.all;
  Table.print t

let () =
  study (Library.ripple_adder ~width:8);
  study (Library.multiplier ~width:4);
  study (Library.alu ~width:4);
  Format.printf
    "@.Reading the tables: 0dynm should give the smallest raw test sets@.\
     (hard faults first, each later test catches many easy faults),@.\
     incr0 the largest — the paper's Table 5 effect, on datapath logic.@."
