(* Fault diagnosis with the diagnosis subsystem.

   The steep-coverage test sets the paper's ordering produces pay off
   after manufacturing: a defective chip fails early tests, and the
   failing-test signature locates the defect.  This example builds a
   compact dictionary for an ALU, injects a "defect" (a modelled
   fault), streams the tester's per-test responses through an
   incremental diagnosis session, and compares diagnostic test orders
   on how fast candidates are pinned down.

   Run with:  dune exec examples/diagnosis.exe *)

open Adi_atpg

let () =
  let circuit = Library.alu ~width:4 in
  Format.printf "circuit: %a@." Circuit.pp_summary circuit;
  let setup = Pipeline.prepare (Run_config.with_seed 5 Run_config.default) circuit in
  let faults = setup.Pipeline.faults in

  (* Generate tests under the steep-curve order. *)
  let run = Pipeline.run_order setup Ordering.Dynm in
  let tests = run.Pipeline.engine.Engine.tests in
  Format.printf "test set: %d vectors, coverage %.1f%%@."
    (Patterns.count tests)
    (100. *. Engine.coverage faults run.Pipeline.engine);

  (* Build the dictionary: per-fault signatures + per-output slices. *)
  let dict = Diagnosis.Dictionary.build faults tests in
  Format.printf "dictionary: %d faults x %d tests, %d signature classes@."
    (Diagnosis.Dictionary.fault_count dict)
    (Diagnosis.Dictionary.test_count dict)
    (Diagnosis.Dictionary.resolution dict);

  (* Manufacture a defective chip: inject a fault the library models. *)
  let rng = Rng.create 2026 in
  let defect = Rng.int rng (Fault_list.count faults) in
  let fault = Fault_list.get faults defect in
  Format.printf "@.injected defect: %s (hidden from the tester)@."
    (Fault.to_string circuit fault);

  (* The tester applies the vectors in order, streaming each observed
     per-output response into an incremental session. *)
  let response p =
    let v = Refsim.faulty_values circuit fault (Patterns.vector tests p) in
    Array.map (fun o -> v.(o)) (Circuit.outputs circuit)
  in
  let session = Diagnosis.Diagnoser.start dict in
  let first_fail = ref (-1) in
  for t = 0 to Patterns.count tests - 1 do
    let obs = response t in
    Diagnosis.Diagnoser.observe session ~test:t (Diagnosis.Diagnoser.Outputs obs);
    if !first_fail < 0 then begin
      let good = Array.init (Array.length obs) (fun oi ->
          Bitvec.get (Diagnosis.Dictionary.good_output dict oi) t) in
      if obs <> good then begin
        first_fail := t;
        Format.printf "first failing test: t%d (%d survivors after it)@." t
          (List.length (Diagnosis.Diagnoser.survivors session))
      end
    end
  done;
  if !first_fail < 0 then Format.printf "chip passes all tests (undetected defect)@.";

  (* After the full response log, the survivors are the defect's class. *)
  let survivors = Diagnosis.Diagnoser.survivors session in
  Format.printf "@.survivors after all %d tests:@." (Patterns.count tests);
  List.iter
    (fun fi ->
      Format.printf "  f%d %s%s@." fi
        (Diagnosis.Dictionary.name dict fi)
        (if fi = defect then "   <- the injected defect" else ""))
    survivors;

  (* Pass/fail-only diagnosis: exact match plus nearest signatures. *)
  let fails = ref [] in
  Bitvec.iter_set (Diagnosis.Dictionary.signature dict defect) (fun t -> fails := t :: !fails);
  let observed =
    Diagnosis.Diagnoser.signature_of_fails dict (Array.of_list (List.rev !fails))
  in
  Format.printf "@.nearest signatures (hamming):@.";
  List.iter
    (fun c ->
      Format.printf "  f%d (distance %d) %s@." c.Diagnosis.Diagnoser.fault
        c.Diagnosis.Diagnoser.distance c.Diagnosis.Diagnoser.name)
    (Diagnosis.Diagnoser.nearest dict observed ~limit:3);

  (* Diagnostic test ordering: apply the tests in the order that splits
     surviving candidate sets fastest. *)
  let orig = Array.init (Patterns.count tests) Fun.id in
  let diag = Diagnosis.Select.order dict in
  Format.printf "@.mean tests to unique diagnosis:@.";
  Format.printf "  generation order: %.2f@."
    (Diagnosis.Select.mean_tests_to_unique dict orig);
  Format.printf "  diagnostic order: %.2f@."
    (Diagnosis.Select.mean_tests_to_unique dict diag)
