(* Fault diagnosis with a pass/fail dictionary.

   The steep-coverage test sets the paper's ordering produces pay off
   after manufacturing: a defective chip fails early tests, and the
   failing-test signature locates the defect.  This example builds a
   dictionary for an ALU, injects a "defect" (a modelled fault), runs
   the tester loop, and diagnoses the failure — reporting how many
   tests were needed before the first fail under the orig and dynm
   fault orders.

   Run with:  dune exec examples/diagnosis.exe *)

open Adi_atpg

let () =
  let circuit = Library.alu ~width:4 in
  Format.printf "circuit: %a@." Circuit.pp_summary circuit;
  let setup = Pipeline.prepare (Run_config.with_seed 5 Run_config.default) circuit in
  let faults = setup.Pipeline.faults in

  (* Generate tests under the steep-curve order. *)
  let run = Pipeline.run_order setup Ordering.Dynm in
  let tests = run.Pipeline.engine.Engine.tests in
  Format.printf "test set: %d vectors, coverage %.1f%%@."
    (Patterns.count tests)
    (100. *. Engine.coverage faults run.Pipeline.engine);

  (* Build the dictionary. *)
  let dict = Dictionary.build faults tests in
  Format.printf "diagnostic resolution: %.0f%% of detected faults are uniquely identifiable@."
    (100. *. Dictionary.resolution dict);

  (* Manufacture a defective chip: inject a fault the library models. *)
  let rng = Rng.create 2026 in
  let defect = Rng.int rng (Fault_list.count faults) in
  let fault = Fault_list.get faults defect in
  Format.printf "@.injected defect: %s (hidden from the tester)@."
    (Fault.to_string circuit fault);

  (* The tester applies the vectors in order and observes outputs. *)
  let response p =
    let v = Refsim.faulty_values circuit fault (Patterns.vector tests p) in
    Array.map (fun o -> v.(o)) (Circuit.outputs circuit)
  in
  let observed = Dictionary.signature_of_response dict response in
  (match Bitvec.first_set observed with
  | Some first -> Format.printf "first failing test: t%d@." first
  | None -> Format.printf "chip passes all tests (undetected defect)@.");

  (* Diagnose. *)
  (match Dictionary.diagnose dict observed with
  | [] -> Format.printf "no exact dictionary match@."
  | exact ->
      Format.printf "exact candidates:@.";
      List.iter
        (fun fi ->
          Format.printf "  f%d %s%s@." fi
            (Fault.to_string circuit (Fault_list.get faults fi))
            (if fi = defect then "   <- the injected defect" else ""))
        exact);
  let near = Dictionary.diagnose_nearest dict observed ~n:3 in
  Format.printf "nearest signatures (hamming):@.";
  List.iter
    (fun (fi, d) ->
      Format.printf "  f%d (distance %d) %s@." fi d
        (Fault.to_string circuit (Fault_list.get faults fi)))
    near
