type setup = {
  circuit : Circuit.t;
  faults : Fault_list.t;
  collapse : Collapse.result;
  selection : Adi_index.u_selection;
  adi : Adi_index.t;
  seed : int;
  jobs : int;
}

let prepare ?(seed = 1) ?(pool = 10_000) ?(target_coverage = 0.9) ?(jobs = 1) circuit =
  let circuit =
    if Circuit.has_state circuit then fst (Scan.combinational circuit) else circuit
  in
  let collapse = Collapse.equivalence (Fault_list.full circuit) in
  let faults = collapse.Collapse.representatives in
  let rng = Util.Rng.create seed in
  let selection = Adi_index.select_u ~pool ~target_coverage ~jobs rng faults in
  let adi = Adi_index.compute ~jobs faults selection.Adi_index.u in
  { circuit; faults; collapse; selection; adi; seed; jobs }

type run = { kind : Ordering.kind; order : int array; engine : Engine.result }

let run_order ?config setup kind =
  let config =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with seed = setup.seed; jobs = setup.jobs }
  in
  let order = Ordering.order kind setup.adi in
  let engine = Engine.run ~config setup.faults ~order in
  { kind; order; engine }

let test_count run = Patterns.count run.engine.Engine.tests
