module Trace = Util.Trace
module Metrics = Util.Metrics

type setup = {
  circuit : Circuit.t;
  faults : Fault_list.t;
  collapse : Collapse.result;
  selection : Adi_index.u_selection;
  adi : Adi_index.t;
  config : Run_config.t;
}

let seed setup = setup.config.Run_config.seed
let jobs setup = setup.config.Run_config.jobs

let prepare config circuit =
  Run_config.validate config;
  let { Run_config.seed; pool; target_coverage; jobs; block_width; faultsim_kernel = kernel; _ }
      =
    config
  in
  let tr = Trace.current () in
  Trace.span tr
    ~attrs:
      [ ("circuit", Trace.Str (Circuit.title circuit)); ("seed", Trace.Int seed);
        ("jobs", Trace.Int jobs) ]
    "pipeline.prepare"
  @@ fun () ->
  let circuit =
    if Circuit.has_state circuit then
      Trace.span tr "prepare.scan" (fun () -> fst (Scan.combinational circuit))
    else circuit
  in
  let collapse =
    Trace.span tr "prepare.collapse" (fun () -> Collapse.equivalence (Fault_list.full circuit))
  in
  let faults = collapse.Collapse.representatives in
  let rng = Util.Rng.create seed in
  let selection =
    Trace.span tr "prepare.select_u" (fun () ->
        Adi_index.select_u ~pool ~target_coverage ~jobs ?kernel ~block_width rng faults)
  in
  let adi =
    Trace.span tr "prepare.adi" (fun () ->
        Adi_index.compute ~jobs ?kernel ~block_width faults selection.Adi_index.u)
  in
  if Trace.enabled tr then begin
    let st = collapse.Collapse.stages in
    Metrics.set (Trace.counter tr "pipeline.faults") (Fault_list.count faults);
    Metrics.set (Trace.counter tr "pipeline.collapse.full") st.Collapse.full;
    Metrics.set (Trace.counter tr "pipeline.collapse.classes") st.Collapse.equivalence;
    Metrics.set (Trace.counter tr "pipeline.collapse.prime") st.Collapse.prime;
    Metrics.set (Trace.counter tr "pipeline.collapse.probes") st.Collapse.probes;
    Metrics.set (Trace.counter tr "pipeline.u_size") (Patterns.count selection.Adi_index.u);
    Metrics.set (Trace.counter tr "pipeline.pool_detected") selection.Adi_index.pool_detected
  end;
  { circuit; faults; collapse; selection; adi; config }

(* Deprecated wrapper — the pre-[Run_config] optional-argument pile.
   New code should build a [Run_config.t] and call {!prepare}. *)
let prepare_opts ?(seed = 1) ?(pool = 10_000) ?(target_coverage = 0.9) ?(jobs = 1) circuit =
  prepare { Run_config.default with seed; pool; target_coverage; jobs } circuit

type run = { kind : Ordering.kind; order : int array; engine : Engine.result }

let run_order_with config setup kind =
  let tr = Trace.current () in
  let kind_attr = [ ("order", Trace.Str (Ordering.to_string kind)) ] in
  let order =
    Trace.span tr ~attrs:kind_attr "pipeline.order" (fun () ->
        Ordering.order kind setup.adi)
  in
  let engine =
    Trace.span tr ~attrs:kind_attr "pipeline.engine" (fun () ->
        Engine.run ~config setup.faults ~order)
  in
  { kind; order; engine }

let run_order setup kind = run_order_with (Run_config.engine_config setup.config) setup kind

let test_count run = Patterns.count run.engine.Engine.tests
