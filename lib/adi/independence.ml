module Bitvec = Util.Bitvec

let ffr_roots c =
  let n = Circuit.node_count c in
  let roots = Array.make n (-1) in
  let topo = Circuit.topological_order c in
  (* Walk sinks-first so a node's unique consumer already knows its
     root. *)
  for idx = n - 1 downto 0 do
    let i = topo.(idx) in
    let fo = Circuit.fanouts c i in
    roots.(i) <-
      (if Array.length fo = 1 && not (Circuit.is_output c i) then roots.(fo.(0)) else i)
  done;
  roots

let region_of_fault _c roots (f : Fault.t) =
  match f.site with
  | Fault.Branch { gate; _ } -> roots.(gate)
  | Fault.Stem s -> roots.(s)

(* Greedy maximal independent set per region, independence judged by
   disjoint detection sets over U. *)
let independent_sets (t : Adi_index.t) =
  let c = Fault_list.circuit t.fault_list in
  let roots = ffr_roots c in
  let regions = Hashtbl.create 64 in
  for fi = 0 to Fault_list.count t.fault_list - 1 do
    let r = region_of_fault c roots (Fault_list.get t.fault_list fi) in
    let cur = Option.value ~default:[] (Hashtbl.find_opt regions r) in
    Hashtbl.replace regions r (fi :: cur)
  done;
  let sets = ref [] in
  Hashtbl.iter
    (fun _root members ->
      (* Consider detected faults in increasing index order so the
         greedy choice is deterministic. *)
      let members = List.sort compare members in
      let chosen = ref [] in
      let union = Bitvec.create (Patterns.count t.patterns) in
      List.iter
        (fun fi ->
          let d = t.dsets.(fi) in
          if not (Bitvec.is_zero d) then begin
            (* Fused intersection-popcount: no temporary vector. *)
            let overlap = Bitvec.and_popcount d union > 0 in
            if not overlap then begin
              chosen := fi :: !chosen;
              Bitvec.union_into ~dst:union d
            end
          end)
        members;
      if !chosen <> [] then sets := List.rev !chosen :: !sets)
    regions;
  !sets

let order (t : Adi_index.t) =
  let nf = Fault_list.count t.fault_list in
  let sets = independent_sets t in
  (* Larger sets first; inside a set and between equal sizes, smaller
     fault index first. *)
  let ranked =
    List.stable_sort
      (fun a b ->
        let c0 = compare (List.length b) (List.length a) in
        if c0 <> 0 then c0 else compare a b)
      sets
  in
  let placed = Array.make nf false in
  let out = ref [] in
  let push fi =
    if not placed.(fi) then begin
      placed.(fi) <- true;
      out := fi :: !out
    end
  in
  List.iter (fun set -> List.iter push set) ranked;
  for fi = 0 to nf - 1 do
    push fi
  done;
  Array.of_list (List.rev !out)
