(** One composable configuration record for the whole ADI/ATPG stack.

    Historically each layer grew its own argument pile —
    [Pipeline.prepare ?seed ?pool ?target_coverage ?jobs],
    [Engine.config], [Harness.run_atpg]'s nine optionals, and ad-hoc
    flag parsing in the CLI and bench driver.  A [Run_config.t] carries
    all of it: the CLI, the bench driver, the harness and the examples
    all build one value (via {!default} and the [with_*] builders, or
    the shared [Run_flags] parser) and hand it down.

    Builders validate their argument and raise
    [Util.Diagnostics.Failed] with code [Invalid_flag] on out-of-range
    values, so a bad [--jobs 0] is reported as a typed diagnostic
    instead of surfacing as an [Invalid_argument] from the domain
    pool. *)

type t = {
  seed : int;  (** drives U selection and random fill *)
  pool : int;  (** candidate vectors for U selection *)
  target_coverage : float;  (** U-selection coverage target, in (0, 1] *)
  jobs : int;  (** fault-simulation domain-pool lanes *)
  block_width : int;
      (** 64-bit words per simulation lane (1, 2, 4 or 8 — 64 to 512
          patterns per pass).  A pure throughput knob: detection words
          are bit-identical for every width *)
  window : int option;
      (** speculative-lookahead width for ATPG runs; [None] defaults to
          [4 * jobs] when the engine configuration is built *)
  faultsim_kernel : Faultsim.kernel option;
      (** detection-word kernel for whole-set fault simulation; [None]
          keeps the historical per-driver defaults.  Like [jobs] and
          [window] this is a pure throughput knob — every kernel yields
          bit-identical detection sets *)
  order : Ordering.kind;  (** fault ordering for ATPG runs *)
  generator : Engine.generator;
  backtrack_limit : int;
  retries : int;  (** abort-retry escalation passes *)
  time_budget_s : float option;  (** whole-run wall-clock budget *)
  per_fault_budget_s : float option;
  checkpoint : string option;  (** checkpoint file path *)
  checkpoint_every : int;  (** faults between periodic checkpoints *)
  resume : bool;  (** continue from [checkpoint] if it exists *)
  resume_strict : bool;
      (** refuse to start over an unreadable checkpoint instead of the
          default warn-and-start-fresh *)
  metrics : bool;  (** collect and print end-of-run metrics *)
  trace : string option;  (** JSONL event-log path *)
}

val default : t
(** [seed 1], [pool 10_000], [target_coverage 0.9], [jobs 1], order
    [F0dynm], PODEM with a 256 backtrack limit and one retry pass, no
    budgets, no checkpoint, observability off — the historical defaults
    of every entry point. *)

(** {1 Builders}

    Each returns an updated copy; compose with [|>].
    @raise Util.Diagnostics.Failed (code [Invalid_flag]) on
    out-of-range values. *)

val with_seed : int -> t -> t
val with_pool : int -> t -> t
val with_target_coverage : float -> t -> t

val with_jobs : int -> t -> t
(** Rejects [jobs < 1] before the value can reach the domain pool. *)

val with_block_width : int -> t -> t
(** Rejects widths outside [{1, 2, 4, 8}].  Results are bit-identical
    for every accepted width. *)

val with_window : int option -> t -> t
(** Rejects [window < 1]; results are byte-identical for every width
    (the window, like [jobs], is a pure throughput knob). *)

val with_faultsim_kernel : Faultsim.kernel option -> t -> t
(** Select the fault-simulation kernel ([None] = per-driver default).
    Results are byte-identical for every kernel. *)

val with_order : Ordering.kind -> t -> t
val with_generator : Engine.generator -> t -> t
val with_backtrack_limit : int -> t -> t
val with_retries : int -> t -> t
val with_time_budget : float option -> t -> t
val with_per_fault_budget : float option -> t -> t
val with_checkpoint : string option -> t -> t
val with_checkpoint_every : int -> t -> t
val with_resume : bool -> t -> t
val with_resume_strict : bool -> t -> t
val with_metrics : bool -> t -> t
val with_trace : string option -> t -> t

val validate : t -> unit
(** Re-check every builder invariant plus cross-field rules
    ([resume] requires [checkpoint]) — called by the [Pipeline] and
    [Harness] entry points so hand-built record literals are covered
    too.  @raise Util.Diagnostics.Failed on the first violation. *)

val observed : t -> bool
(** Is any observability requested ([metrics] or [trace])? *)

val fingerprint : t -> string
(** Canonical rendering of exactly the fields that determine a
    {!Pipeline.prepare} result for a given circuit — [seed], [pool]
    and [target_coverage].  [jobs], [block_width], the engine knobs
    and the observability flags are deliberately excluded: they never
    change the prepared artifacts.  This is the configuration half of the
    service store's content-addressed cache key, so its format is
    stable: two configurations share a fingerprint iff they prepare
    byte-identical setups. *)

val engine_config : t -> Engine.config
(** The [Engine.config] slice of this configuration. *)

val of_engine_config : Engine.config -> t -> t
(** Merge an explicit engine configuration back in (legacy-wrapper
    support). *)
