module Bitvec = Util.Bitvec
module Rng = Util.Rng

type t = {
  fault_list : Fault_list.t;
  patterns : Patterns.t;
  dsets : Bitvec.t array;
  ndet : int array;
  adi : int array;
}

type estimator = Minimum | Average

let reduce estimator ndet d =
  match estimator with
  | Minimum ->
      let m = ref max_int in
      Bitvec.iter_set d (fun u -> if ndet.(u) < !m then m := ndet.(u));
      if !m = max_int then 0 else !m
  | Average ->
      let sum = ref 0 and cnt = ref 0 in
      Bitvec.iter_set d (fun u ->
          sum := !sum + ndet.(u);
          incr cnt);
      if !cnt = 0 then 0 else max 1 (!sum / !cnt)

let of_dsets estimator fault_list patterns dsets =
  let ndet = Faultsim.ndet dsets patterns in
  let adi = Array.map (reduce estimator ndet) dsets in
  let tr = Util.Trace.current () in
  if Util.Trace.enabled tr then begin
    let h = Util.Trace.histogram tr "adi.value" in
    let det = ref 0 in
    Array.iter
      (fun a ->
        if a > 0 then begin
          incr det;
          Util.Metrics.observe h (float_of_int a)
        end)
      adi;
    Util.Metrics.set (Util.Trace.counter tr "adi.detected_by_u") !det
  end;
  { fault_list; patterns; dsets; ndet; adi }

let compute ?(estimator = Minimum) ?(jobs = 1) ?kernel ?block_width fault_list patterns =
  of_dsets estimator fault_list patterns
    (Faultsim.detection_sets ~jobs ?kernel ?block_width fault_list patterns)

let compute_n_detection ?(estimator = Minimum) ?(jobs = 1) ?kernel ?block_width ~n
    fault_list patterns =
  of_dsets estimator fault_list patterns
    (Faultsim.detection_sets_capped ~jobs ?kernel ?block_width fault_list patterns ~n)

let detected t fi = t.adi.(fi) > 0

let min_max t =
  Array.fold_left
    (fun acc a ->
      if a = 0 then acc
      else
        match acc with
        | None -> Some (a, a)
        | Some (lo, hi) -> Some (min lo a, max hi a))
    None t.adi

let ratio t =
  match min_max t with
  | None -> None
  | Some (lo, hi) -> Some (float_of_int hi /. float_of_int lo)

let coverage_of_u t =
  let det = Array.fold_left (fun acc a -> if a > 0 then acc + 1 else acc) 0 t.adi in
  float_of_int det /. float_of_int (Fault_list.count t.fault_list)

type u_selection = { u : Patterns.t; pool_detected : int; prefix_detected : int }

let select_u ?(pool = 10_000) ?(target_coverage = 0.9) ?(jobs = 1) ?kernel ?block_width rng fl
    =
  let c = Fault_list.circuit fl in
  let n_inputs = Array.length (Circuit.inputs c) in
  let pats = Patterns.random rng ~n_inputs ~count:pool in
  let { Faultsim.first_detection; detected } =
    Faultsim.with_dropping ~jobs ?kernel ?block_width fl pats
  in
  let nf = Fault_list.count fl in
  (* When the pool cannot reach the target (redundant faults), fall
     back to the target fraction of what the pool does detect, so U
     stays small — the paper's intent for nearly-irredundant
     circuits. *)
  let threshold =
    min
      (int_of_float (ceil (target_coverage *. float_of_int nf)))
      (int_of_float (ceil (target_coverage *. float_of_int detected)))
  in
  if detected = 0 then { u = pats; pool_detected = detected; prefix_detected = detected }
  else begin
    (* Exact N: the first pattern index at which the cumulative number
       of first detections reaches the threshold. *)
    let per_pattern = Array.make pool 0 in
    Array.iter (fun p -> if p >= 0 then per_pattern.(p) <- per_pattern.(p) + 1) first_detection;
    let cum = ref 0 and n = ref pool in
    (try
       for p = 0 to pool - 1 do
         cum := !cum + per_pattern.(p);
         if !cum >= threshold then begin
           n := p + 1;
           raise Exit
         end
       done
     with Exit -> ());
    { u = Patterns.prefix pats !n; pool_detected = detected; prefix_detected = !cum }
  end
