(** End-to-end flow: circuit -> full-scan model -> collapsed faults ->
    vector set U -> ADI -> fault order -> test generation.

    This is the library's main entry point; the experiment harness and
    the examples are thin wrappers over it. *)

type setup = {
  circuit : Circuit.t;  (** the combinational (full-scan) model *)
  faults : Fault_list.t;  (** equivalence-collapsed fault universe *)
  collapse : Collapse.result;
  selection : Adi_index.u_selection;
  adi : Adi_index.t;
  seed : int;
  jobs : int;  (** domain-pool size the setup was built with *)
}

val prepare :
  ?seed:int -> ?pool:int -> ?target_coverage:float -> ?jobs:int -> Circuit.t -> setup
(** Build everything up to the ADI values.  Sequential circuits are put
    through {!Scan.combinational} first.  Defaults: [seed = 1],
    [pool = 10_000], [target_coverage = 0.9], [jobs = 1].  [jobs] only
    sizes the fault-simulation domain pool; every result is identical
    for any value. *)

type run = {
  kind : Ordering.kind;
  order : int array;
  engine : Engine.result;
}

val run_order : ?config:Engine.config -> setup -> Ordering.kind -> run
(** Order the faults and generate a test set.  The engine's random-fill
    seed defaults to the setup seed so different orders differ only in
    the fault sequence, as in the paper's comparison. *)

val test_count : run -> int
