(** End-to-end flow: circuit -> full-scan model -> collapsed faults ->
    vector set U -> ADI -> fault order -> test generation.

    This is the library's main entry point; the experiment harness and
    the examples are thin wrappers over it.  All knobs travel in one
    {!Run_config.t}; each phase runs under a [Util.Trace] span
    ([pipeline.prepare] > [prepare.collapse] / [prepare.select_u] /
    [prepare.adi], then [pipeline.order] and [pipeline.engine]) on the
    current tracer, which is a no-op unless observability was
    requested. *)

type setup = {
  circuit : Circuit.t;  (** the combinational (full-scan) model *)
  faults : Fault_list.t;  (** equivalence-collapsed fault universe *)
  collapse : Collapse.result;
  selection : Adi_index.u_selection;
  adi : Adi_index.t;
  config : Run_config.t;  (** the configuration the setup was built with *)
}

val seed : setup -> int
val jobs : setup -> int

val prepare : Run_config.t -> Circuit.t -> setup
(** Build everything up to the ADI values.  Sequential circuits are put
    through {!Scan.combinational} first.  [jobs] only sizes the
    fault-simulation domain pool; every result is identical for any
    value.  @raise Util.Diagnostics.Failed when the configuration is
    invalid ({!Run_config.validate}). *)

val prepare_opts :
  ?seed:int -> ?pool:int -> ?target_coverage:float -> ?jobs:int -> Circuit.t -> setup
(** @deprecated The pre-[Run_config] argument pile, kept so existing
    callers keep compiling.  Equivalent to {!prepare} on {!Run_config.default}
    with the given fields replaced. *)

type run = {
  kind : Ordering.kind;
  order : int array;
  engine : Engine.result;
}

val run_order : setup -> Ordering.kind -> run
(** Order the faults and generate a test set with the engine
    configuration carried by the setup ({!Run_config.engine_config}):
    the engine's random-fill seed is the setup seed, so different
    orders differ only in the fault sequence, as in the paper's
    comparison. *)

val run_order_with : Engine.config -> setup -> Ordering.kind -> run
(** @deprecated Explicit engine-config override, kept for callers of
    the old [?config] parameter.  Prefer building the right
    {!Run_config.t} up front. *)

val test_count : run -> int
