type t = {
  seed : int;
  pool : int;
  target_coverage : float;
  jobs : int;
  block_width : int;
  window : int option;
  faultsim_kernel : Faultsim.kernel option;
  order : Ordering.kind;
  generator : Engine.generator;
  backtrack_limit : int;
  retries : int;
  time_budget_s : float option;
  per_fault_budget_s : float option;
  checkpoint : string option;
  checkpoint_every : int;
  resume : bool;
  resume_strict : bool;
  metrics : bool;
  trace : string option;
}

let default =
  {
    seed = 1;
    pool = 10_000;
    target_coverage = 0.9;
    jobs = 1;
    block_width = 1;
    window = None;
    faultsim_kernel = None;
    order = Ordering.Dynm0;
    generator = Engine.default_config.Engine.generator;
    backtrack_limit = Engine.default_config.Engine.backtrack_limit;
    retries = Engine.default_config.Engine.retries;
    time_budget_s = None;
    per_fault_budget_s = None;
    checkpoint = None;
    checkpoint_every = 32;
    resume = false;
    resume_strict = false;
    metrics = false;
    trace = None;
  }

let bad fmt = Util.Diagnostics.fail Util.Diagnostics.Invalid_flag fmt

let with_seed seed t = { t with seed }

let with_pool pool t =
  if pool < 1 then bad "--pool must be at least 1 (got %d)" pool;
  { t with pool }

let with_target_coverage target_coverage t =
  if not (target_coverage > 0.0 && target_coverage <= 1.0) then
    bad "--target-coverage must be in (0, 1] (got %g)" target_coverage;
  { t with target_coverage }

let with_jobs jobs t =
  if jobs < 1 then bad "--jobs must be at least 1 (got %d)" jobs;
  { t with jobs }

let with_block_width block_width t =
  (match block_width with
  | 1 | 2 | 4 | 8 -> ()
  | w -> bad "--block-width must be 1, 2, 4 or 8 (got %d)" w);
  { t with block_width }

let with_window window t =
  (match window with
  | Some w when w < 1 -> bad "--window must be at least 1 (got %d)" w
  | _ -> ());
  { t with window }

let with_faultsim_kernel faultsim_kernel t = { t with faultsim_kernel }
let with_order order t = { t with order }
let with_generator generator t = { t with generator }

let with_backtrack_limit backtrack_limit t =
  if backtrack_limit < 0 then bad "--backtracks must be non-negative (got %d)" backtrack_limit;
  { t with backtrack_limit }

let with_retries retries t =
  if retries < 0 then bad "--retries must be non-negative (got %d)" retries;
  { t with retries }

let with_time_budget s t =
  (match s with
  | Some s when s < 0.0 -> bad "--time-budget must be non-negative (got %g)" s
  | _ -> ());
  { t with time_budget_s = s }

let with_per_fault_budget s t =
  (match s with
  | Some s when s < 0.0 -> bad "--fault-budget must be non-negative (got %g)" s
  | _ -> ());
  { t with per_fault_budget_s = s }

let with_checkpoint checkpoint t = { t with checkpoint }

let with_checkpoint_every checkpoint_every t =
  if checkpoint_every < 1 then
    bad "--checkpoint-every must be at least 1 (got %d)" checkpoint_every;
  { t with checkpoint_every }

let with_resume resume t = { t with resume }
let with_resume_strict resume_strict t = { t with resume_strict }
let with_metrics metrics t = { t with metrics }
let with_trace trace t = { t with trace }

(* Re-check every invariant in one place: configurations built as
   record literals (rather than through the builders) are validated at
   the [Pipeline]/[Harness] entry points. *)
let validate t =
  ignore
    (default |> with_seed t.seed |> with_pool t.pool
    |> with_target_coverage t.target_coverage
    |> with_jobs t.jobs
    |> with_block_width t.block_width
    |> with_window t.window
    |> with_backtrack_limit t.backtrack_limit |> with_retries t.retries
    |> with_time_budget t.time_budget_s
    |> with_per_fault_budget t.per_fault_budget_s
    |> with_checkpoint_every t.checkpoint_every);
  if t.resume && t.checkpoint = None then
    bad "--resume requires --checkpoint FILE";
  if t.resume_strict && not t.resume then
    bad "--resume-strict requires --resume"

let observed t = t.metrics || t.trace <> None

(* Only the preparation-relevant fields, by name, in a fixed order —
   adding a knob that does not change prepared artifacts must not
   invalidate every warm cache entry, so nothing else may leak in.
   %.17g round-trips the float exactly. *)
let fingerprint t =
  Printf.sprintf "seed=%d;pool=%d;target_coverage=%.17g" t.seed t.pool t.target_coverage

let engine_config t =
  {
    Engine.backtrack_limit = t.backtrack_limit;
    seed = t.seed;
    generator = t.generator;
    retries = t.retries;
    time_budget_s = t.time_budget_s;
    per_fault_budget_s = t.per_fault_budget_s;
    jobs = t.jobs;
    (* The default lookahead keeps every lane fed with a refill in
       hand; [--window 1] forces the exact serial path. *)
    window = (match t.window with Some w -> w | None -> 4 * t.jobs);
  }

let of_engine_config c t =
  {
    t with
    backtrack_limit = c.Engine.backtrack_limit;
    seed = c.Engine.seed;
    generator = c.Engine.generator;
    retries = c.Engine.retries;
    time_budget_s = c.Engine.time_budget_s;
    per_fault_budget_s = c.Engine.per_fault_budget_s;
    jobs = c.Engine.jobs;
    window = Some c.Engine.window;
  }
