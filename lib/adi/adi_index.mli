(** The accidental detection index (ADI) — Section 2 of the paper.

    Given a set of input vectors [U], simulated {e without fault
    dropping}:

    - [D(f)] is the set of vectors in [U] detecting fault [f];
    - [ndet(u)] is the number of faults vector [u] detects;
    - [ADI(f) = min { ndet(u) : u in D(f) }] for [f] detected by [U],
      and [ADI(f) = 0] otherwise.

    [ADI(f)] is a conservative estimate of the number of faults a test
    generated for [f] will detect (including [f] itself, so
    [ADI(f) >= 1] on detected faults). *)

type t = {
  fault_list : Fault_list.t;
  patterns : Patterns.t;  (** the vector set [U] *)
  dsets : Util.Bitvec.t array;  (** per fault, [D(f)] over [U] *)
  ndet : int array;  (** per vector, [ndet(u)] *)
  adi : int array;  (** per fault, [ADI(f)] *)
}

type estimator =
  | Minimum  (** the paper's conservative choice: [min ndet(u)] *)
  | Average
      (** the alternative Section 2 mentions: the mean of [ndet(u)]
          over [D(f)], rounded down (still [>= 1] on detected faults) *)

val compute :
  ?estimator:estimator ->
  ?jobs:int ->
  ?kernel:Faultsim.kernel ->
  ?block_width:int ->
  Fault_list.t ->
  Patterns.t ->
  t
(** Full non-dropping fault simulation of [U] followed by the chosen
    reduction (default {!Minimum}).  Cost: one
    {!Faultsim.detection_sets} run.  [jobs] (default 1) sizes the
    simulation's domain pool, [kernel] selects the detection-word
    kernel and [block_width] the superblock width; results are
    identical for any values. *)

val compute_n_detection :
  ?estimator:estimator ->
  ?jobs:int ->
  ?kernel:Faultsim.kernel ->
  ?block_width:int ->
  n:int ->
  Fault_list.t ->
  Patterns.t ->
  t
(** The paper's cheaper variant: estimate [ndet(u)] from n-detection
    fault simulation (each fault contributes only its [n] earliest
    detections), trading accuracy for simulation time.  With [n] large
    it converges to {!compute}. *)

val detected : t -> int -> bool
(** Was the fault detected by [U] (i.e. [ADI > 0])? *)

val min_max : t -> (int * int) option
(** [ADImin] and [ADImax] over detected faults — Table 4's columns.
    [None] when [U] detects nothing. *)

val ratio : t -> float option
(** [ADImax / ADImin] — Table 4's last column. *)

val coverage_of_u : t -> float
(** Fraction of the fault universe detected by [U]. *)

(** {1 Selecting the vector set U}

    The paper draws 10,000 random vectors, fault-simulates them with
    dropping, and keeps the shortest prefix reaching ~90% fault
    coverage (all 10,000 when 90% is never reached). *)

type u_selection = {
  u : Patterns.t;  (** the selected prefix *)
  pool_detected : int;  (** faults detected by the full pool *)
  prefix_detected : int;  (** faults detected by the selected prefix *)
}

val select_u :
  ?pool:int ->
  ?target_coverage:float ->
  ?jobs:int ->
  ?kernel:Faultsim.kernel ->
  ?block_width:int ->
  Util.Rng.t ->
  Fault_list.t ->
  u_selection
(** Defaults: [pool = 10_000], [target_coverage = 0.9], [jobs = 1]
    ([pool] is the candidate-vector count, not the domain pool).  When
    the pool
    cannot reach the target (the circuit retains redundant faults), the
    threshold falls back to the target fraction of the faults the pool
    does detect, keeping [U] small as the paper intends. *)
