(** A persistent domain pool with deterministic work partitioning.

    Built directly on [Domain]/[Mutex]/[Condition] (no external
    dependencies).  A pool of [jobs] lanes executes on at most
    [min jobs (recommended_domain_count)] domains — the calling domain
    plus spawned workers; the lane count only shapes the partitioning,
    while the domain count never oversubscribes the machine (extra
    domains would stall every stop-the-world minor collection).  A pool
    of one lane spawns no domains at all and runs everything inline —
    the serial reference path.

    All partitioning is {e static}: [parallel_for]/[map_slices] cut the
    index range into at most [jobs] contiguous slices whose boundaries
    depend only on the range length and the pool size, never on
    scheduling.  Combined with slice-ordered reduction ({!fold}), any
    computation whose slices write disjoint state is bit-identical to
    its serial execution regardless of how domains interleave.

    Two submission styles share the same workers:

    - {!run} (and the helpers built on it) — fork-join: a barrier of
      lane-sized groups, the caller executing a share itself.
    - {!Window} — an ordered sliding window of independent tickets,
      collected strictly in submission order: the primitive behind
      speculative test generation (and reusable by any pipeline stage
      that wants lookahead with deterministic commit order).

    Both styles share the workers: each style's jobs run in FIFO order
    per worker, and fork-join groups take priority over window tickets
    (a caller blocked on {!run} never waits behind a window of
    speculative work). *)

type t

type pool = t
(** Alias so {!Window}'s signature can name the pool type. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size the CLI's
    [--jobs] flag defaults to. *)

val create : ?jobs:int -> ?track:bool -> unit -> t
(** Spawn a pool of [jobs] lanes (default {!default_jobs}; values above
    128 are clamped to the domain limit).  [track] (default [false])
    turns on per-domain busy-time accounting ({!lane_busy_s}) at the
    cost of two clock reads per executed job.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Number of lanes — the partitioning width requested at creation,
    independent of how many domains actually run them. *)

val shutdown : t -> unit
(** Join all worker domains (each drains its queued jobs first).
    Idempotent; the pool is unusable afterwards. *)

val with_pool : ?jobs:int -> ?track:bool -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down when [f]
    returns or raises. *)

val lane_busy_s : t -> float array
(** Accumulated busy seconds per executing domain (slot 0 is the
    calling domain), all zeros unless the pool was created with
    [track:true].  Read between {!run} calls — the snapshot is only
    coherent after a join. *)

val reset_lane_busy : t -> unit

val run : t -> (unit -> unit) array -> unit
(** [run t tasks] executes every task exactly once, dealing them out in
    contiguous groups over the worker domains and the caller (which
    always executes a share itself) and blocking until all complete.
    If tasks raise, the exception of the lowest-indexed raising task is
    re-raised after every task has finished (the pool stays usable).
    @raise Invalid_argument if there are more tasks than lanes. *)

val parallel_for : t -> int -> (int -> unit) -> unit
(** [parallel_for t n f] calls [f i] for every [i] in [0 .. n-1],
    statically slicing the range across the lanes.  Within a slice,
    indices run in increasing order. *)

val map_slices : t -> int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [map_slices t n f] cuts [0 .. n-1] into [min (jobs t) n] contiguous
    slices, evaluates [f ~lo ~hi] on each concurrently, and returns the
    results in slice order.  Empty for [n = 0]. *)

val fold :
  t -> int -> map:(lo:int -> hi:int -> 'a) -> combine:('a -> 'a -> 'a) -> init:'a -> 'a
(** Ordered reduce: [combine] is applied left-to-right over
    {!map_slices} results, so non-commutative combines are
    deterministic. *)

(** An ordered sliding window of speculative tickets over a pool.

    {!Window.submit} hands a closure to one of the pool's worker
    domains; {!Window.collect} blocks for — and returns — the result
    of the {e oldest} outstanding ticket, so results always come back
    in submission order no matter how the workers interleave.

    Tickets are dealt round-robin over the workers by submission
    sequence number, and each worker runs its tickets in FIFO order —
    so a caller may safely hand ticket [k] resources private to
    executor [k mod executors] (the [exec] argument): two tickets on
    the same executor never overlap.

    On a pool with no spawned workers (one lane, or a single-core
    domain cap) tickets execute inline during [submit], preserving the
    submit-order semantics with zero parallelism — the degenerate
    reference path. *)
module Window : sig
  type 'a t

  val create : pool -> capacity:int -> 'a t
  (** A window over [pool] holding at most [capacity] outstanding
      tickets.  @raise Invalid_argument if [capacity < 1]. *)

  val capacity : 'a t -> int

  val in_flight : 'a t -> int
  (** Submitted but not yet collected tickets. *)

  val executors : 'a t -> int
  (** Distinct executors tickets are dealt over (≥ 1); the [exec]
      argument of a submitted closure is in [0 .. executors-1]. *)

  val submit : 'a t -> (exec:int -> 'a) -> unit
  (** Enqueue a ticket on executor [seq mod executors].
      @raise Invalid_argument if the window is full or the pool is
      shut down. *)

  val collect : 'a t -> 'a
  (** Block for the oldest outstanding ticket and return its result
      (re-raising the ticket's exception, if it raised).
      @raise Invalid_argument if nothing is in flight. *)

  val drain : 'a t -> unit
  (** Collect and discard every outstanding ticket (swallowing ticket
      exceptions) — the abandon path when a run is interrupted
      mid-window. *)
end
