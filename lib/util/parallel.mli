(** A persistent domain pool with deterministic work partitioning.

    Built directly on [Domain]/[Mutex]/[Condition] (no external
    dependencies).  A pool of [jobs] lanes executes on at most
    [min jobs (recommended_domain_count)] domains — the calling domain
    plus spawned workers; the lane count only shapes the partitioning,
    while the domain count never oversubscribes the machine (extra
    domains would stall every stop-the-world minor collection).  A pool
    of one lane spawns no domains at all and runs everything inline —
    the serial reference path.

    All partitioning is {e static}: [parallel_for]/[map_slices] cut the
    index range into at most [jobs] contiguous slices whose boundaries
    depend only on the range length and the pool size, never on
    scheduling.  Combined with slice-ordered reduction ({!fold}), any
    computation whose slices write disjoint state is bit-identical to
    its serial execution regardless of how domains interleave. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size the CLI's
    [--jobs] flag defaults to. *)

val create : ?jobs:int -> ?track:bool -> unit -> t
(** Spawn a pool of [jobs] lanes (default {!default_jobs}; values above
    128 are clamped to the domain limit).  [track] (default [false])
    turns on per-domain busy-time accounting ({!lane_busy_s}) at the
    cost of two clock reads per executing domain per {!run}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Number of lanes — the partitioning width requested at creation,
    independent of how many domains actually run them. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool is unusable
    afterwards. *)

val with_pool : ?jobs:int -> ?track:bool -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down when [f]
    returns or raises. *)

val lane_busy_s : t -> float array
(** Accumulated busy seconds per executing domain (slot 0 is the
    calling domain), all zeros unless the pool was created with
    [track:true].  Read between {!run} calls — the snapshot is only
    coherent after a join. *)

val reset_lane_busy : t -> unit

val run : t -> (unit -> unit) array -> unit
(** [run t tasks] executes every task exactly once, dealing them out in
    contiguous groups over the worker domains and the caller (which
    always executes a share itself) and blocking until all complete.
    If tasks raise, the exception of the lowest-indexed raising task is
    re-raised after every task has finished (the pool stays usable).
    @raise Invalid_argument if there are more tasks than lanes. *)

val parallel_for : t -> int -> (int -> unit) -> unit
(** [parallel_for t n f] calls [f i] for every [i] in [0 .. n-1],
    statically slicing the range across the lanes.  Within a slice,
    indices run in increasing order. *)

val map_slices : t -> int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [map_slices t n f] cuts [0 .. n-1] into [min (jobs t) n] contiguous
    slices, evaluates [f ~lo ~hi] on each concurrently, and returns the
    results in slice order.  Empty for [n = 0]. *)

val fold :
  t -> int -> map:(lo:int -> hi:int -> 'a) -> combine:('a -> 'a -> 'a) -> init:'a -> 'a
(** Ordered reduce: [combine] is applied left-to-right over
    {!map_slices} results, so non-commutative combines are
    deterministic. *)
