(** Monotonic counters and summary histograms.

    A registry hands out mutable handles; instrumented code resolves a
    handle once per run ({!counter}/{!histogram} find-or-create by
    name) and then updates it with a couple of field writes per event.
    The {!null} registry hands out shared dummy handles that are never
    read, so disabled instrumentation costs one branch plus a dead
    store — nothing accumulates and nothing is rendered.

    Registries are {e not} domain-safe: update handles from the leader
    domain only, or give each lane private storage and merge after the
    join (see [Faultsim]'s workspace statistics for the pattern). *)

type t
type counter
type histogram

val create : unit -> t
(** A live registry. *)

val null : t
(** The disabled registry: handles are shared dummies, nothing is
    recorded. *)

val live : t -> bool

val counter : t -> string -> counter
(** Find or register the counter [name].  On {!null}: a dummy. *)

val histogram : t -> string -> histogram

val counter_name : counter -> string
val histogram_name : histogram -> string

val incr : counter -> unit
val add : counter -> int -> unit

val set : counter -> int -> unit
(** Overwrite the count — for publishing an externally accumulated
    total (e.g. [Podem.stats]) at end of run. *)

val count : counter -> int

val observe : histogram -> float -> unit
(** Record one sample: count, sum, min and max are maintained. *)

val observations : histogram -> int
val total : histogram -> float
val mean : histogram -> float
val minimum : histogram -> float
val maximum : histogram -> float

val counters : t -> counter list
(** In registration order. *)

val histograms : t -> histogram list

val reset : t -> unit
(** Zero every handle (handles stay valid). *)

val span_prefix : string
(** Histograms named ["span:<phase>"] hold per-phase wall-clock
    aggregates (maintained by [Trace]); {!report} renders them as the
    phase table. *)

val report : t -> string
(** Render the registry as aligned tables (phases, counters,
    histograms) via {!Table} — the [--metrics] end-of-run output. *)
