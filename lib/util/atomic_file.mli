(** Crash-safe atomic file publication.

    The write-rename idiom alone is not crash-safe: after a power loss
    the rename can survive while the renamed file's blocks were never
    flushed, leaving a truncated or empty file under the final name.
    {!write} closes that window — the temporary file is [fsync]ed
    before the rename and the containing directory is [fsync]ed after
    it, so a crash at any point leaves either the old content or the
    complete new content, never a torn mix.

    Shared by the ATPG checkpoints ([Experiments.Checkpoint]) and the
    service store's disk spill ([Service.Store]).

    Failpoint sites [atomic.tmp_written], [atomic.synced] and
    [atomic.renamed] bracket the durability steps so the chaos suite
    can crash the process at each window and prove the old-or-new
    invariant (see {!Util.Failpoint}). *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] runs [f] on a binary channel for [path ^ ".tmp"],
    fsyncs it, atomically renames it over [path], and fsyncs the
    directory entry.  If [f] raises, the temporary file is removed and
    [path] is untouched.  Durability syncs degrade to best-effort on
    file systems that reject [fsync] (the rename still happens). *)
