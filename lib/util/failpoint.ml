type action = Error | Delay of float | Crash | Corrupt

type arm = { site : string; action : action; prob : float; mutable triggers : int }

let crash_exit_code = 42

(* All mutable state behind one mutex; [armed] is the lock-free fast
   path read by every check when chaos is off. *)
let lock = Mutex.create ()
let arms : arm list ref = ref []
let rng = ref (Rng.create 1)
let armed = ref false

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let parse_duration s =
  let num suffix =
    let body = String.sub s 0 (String.length s - String.length suffix) in
    float_of_string_opt body
  in
  let scaled =
    if Filename.check_suffix s "ms" then
      Option.map (fun v -> v /. 1000.0) (num "ms")
    else if Filename.check_suffix s "s" then num "s"
    else float_of_string_opt s
  in
  match scaled with
  | Some v when v >= 0.0 -> Ok v
  | _ -> Stdlib.Error (Printf.sprintf "bad delay duration %S" s)

let parse_action s =
  match s with
  | "error" -> Ok Error
  | "crash" -> Ok Crash
  | "corrupt" -> Ok Corrupt
  | _ when String.length s > 6 && String.sub s 0 6 = "delay=" ->
      Result.map
        (fun d -> Delay d)
        (parse_duration (String.sub s 6 (String.length s - 6)))
  | _ -> Stdlib.Error (Printf.sprintf "unknown failpoint action %S" s)

let parse_entry entry =
  match String.index_opt entry ':' with
  | None -> Stdlib.Error (Printf.sprintf "failpoint entry %S: expected site:action" entry)
  | Some i -> (
      let site = String.sub entry 0 i in
      let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
      let action_s, prob =
        match String.index_opt rest '@' with
        | None -> (rest, Ok 1.0)
        | Some j ->
            let p = String.sub rest (j + 1) (String.length rest - j - 1) in
            ( String.sub rest 0 j,
              match float_of_string_opt p with
              | Some v when v > 0.0 && v <= 1.0 -> Ok v
              | _ -> Stdlib.Error (Printf.sprintf "bad probability %S (want (0, 1])" p) )
      in
      if site = "" then Stdlib.Error (Printf.sprintf "failpoint entry %S: empty site" entry)
      else
        match (parse_action action_s, prob) with
        | Ok action, Ok prob -> Ok { site; action; prob; triggers = 0 }
        | (Stdlib.Error _ as e), _ | _, (Stdlib.Error _ as e) -> e)

let parse spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc entry ->
      match (acc, parse_entry entry) with
      | Stdlib.Error _, _ -> acc
      | Ok parsed, Ok arm -> Ok (arm :: parsed)
      | Ok _, Stdlib.Error e -> Stdlib.Error e)
    (Ok []) entries
  |> Result.map List.rev

let configure ?(seed = 1) spec =
  match parse spec with
  | Stdlib.Error _ as e -> e
  | Ok parsed ->
      locked (fun () ->
          arms := parsed;
          rng := Rng.create seed;
          armed := parsed <> []);
      Ok ()

let clear () =
  locked (fun () ->
      arms := [];
      armed := false)

let install_from_env () =
  match Sys.getenv_opt "ADI_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
      let seed =
        match Sys.getenv_opt "ADI_FAILPOINTS_SEED" with
        | None | Some "" -> 1
        | Some s -> (
            match int_of_string_opt s with
            | Some v -> v
            | None -> Diagnostics.fail Invalid_flag "ADI_FAILPOINTS_SEED: expected an integer, got %S" s)
      in
      match configure ~seed spec with
      | Ok () -> ()
      | Stdlib.Error msg -> Diagnostics.fail Invalid_flag "ADI_FAILPOINTS: %s" msg)

let active () = !armed

(* Decide which entries fire, under the lock; act on them outside it so
   delays and raises never hold the mutex. *)
let draw site want =
  if not !armed then []
  else
    locked (fun () ->
        List.filter_map
          (fun a ->
            if a.site = site && want a.action
               && (a.prob >= 1.0 || Rng.float !rng 1.0 < a.prob)
            then begin
              a.triggers <- a.triggers + 1;
              Some a.action
            end
            else None)
          !arms)

let check site =
  match draw site (function Error | Delay _ | Crash -> true | Corrupt -> false) with
  | [] -> ()
  | fired ->
      List.iter (function Delay d -> Unix.sleepf d | _ -> ()) fired;
      if List.mem Crash fired then Unix._exit crash_exit_code;
      if List.mem Error fired then
        Diagnostics.fail Io_error "injected failure at failpoint %s" site

let fires site = draw site (function Error -> true | _ -> false) <> []

let corrupt_bytes site ?(off = 0) buf =
  if !armed && Bytes.length buf > off then
    match draw site (function Corrupt -> true | _ -> false) with
    | [] -> ()
    | _ ->
        let i = off + locked (fun () -> Rng.int !rng (Bytes.length buf - off)) in
        Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x5A))

let corrupt site s =
  if (not !armed) || s = "" then s
  else begin
    let buf = Bytes.of_string s in
    corrupt_bytes site buf;
    let s' = Bytes.unsafe_to_string buf in
    if String.equal s' s then s else s'
  end

let triggered site =
  locked (fun () ->
      List.fold_left (fun n a -> if a.site = site then n + a.triggers else n) 0 !arms)
