(* Wall-clock budgets.  OCaml's stdlib exposes no monotonic clock, so
   the default clock is [Unix.gettimeofday]; an injectable clock keeps
   tests deterministic and leaves the door open for a monotonic source
   when one is available. *)

type clock = unit -> float

let default_clock : clock = Unix.gettimeofday

type t = Unlimited | Deadline of { clock : clock; at : float }

let unlimited = Unlimited

let of_seconds ?(clock = default_clock) s =
  if s < 0.0 then invalid_arg "Budget.of_seconds: negative budget";
  Deadline { clock; at = clock () +. s }

let of_seconds_opt ?clock = function
  | None -> Unlimited
  | Some s -> of_seconds ?clock s

let at ?(clock = default_clock) t = Deadline { clock; at = t }

let is_unlimited = function Unlimited -> true | Deadline _ -> false

let expired = function
  | Unlimited -> false
  | Deadline { clock; at } -> clock () >= at

let remaining_s = function
  | Unlimited -> infinity
  | Deadline { clock; at } -> Float.max 0.0 (at -. clock ())

(* The earlier of two deadlines; used to slice a per-fault budget out
   of a whole-run budget. *)
let min_of a b =
  match (a, b) with
  | Unlimited, x | x, Unlimited -> x
  | Deadline da, Deadline db -> if da.at <= db.at then a else b

let sub ?clock budget ~seconds = min_of budget (of_seconds ?clock seconds)

let sub_opt ?clock budget = function
  | None -> budget
  | Some seconds -> sub ?clock budget ~seconds
