(** A minimal JSON value type with a compact printer and a strict
    parser.

    This is the repo's one JSON implementation: the {!Trace} JSONL sink
    and the service wire protocol both build on it, so the two speak
    exactly the same dialect.  Integers and floats are kept distinct so
    a value round-trips byte-identically through
    [to_string |> parse |> to_string] — floats print with enough digits
    to reconstruct the exact bit pattern, integral floats print with a
    trailing [".0"] to stay distinguishable from ints. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** field order is preserved *)

exception Parse of string
(** Parser failure, with an offset in the message. *)

(** {1 Printing} *)

val add_string : Buffer.t -> string -> unit
(** Append [s] as a quoted, escaped JSON string literal. *)

val add_float : Buffer.t -> float -> unit
(** Append a float: integral magnitudes below [1e15] as ["%.1f"]
    (so ["3.0"], never ["3"]), everything else as ["%.17g"] — enough
    digits to round-trip an OCaml float exactly. *)

val add : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact single-line rendering (no whitespace). *)

(** {1 Parsing} *)

val parse : string -> t
(** Strict parse of one complete JSON value (trailing garbage is an
    error).  Numbers without [.], [e] or [E] become {!Int} when they
    fit; everything else numeric becomes {!Float}.
    @raise Parse on malformed input. *)

val of_string : string -> (t, string) result
(** {!parse} with the failure as a [result]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of the field in an {!Obj}; [None] otherwise. *)

val to_int : t -> int option
(** {!Int}, or an integral {!Float} of magnitude below [1e15]. *)

val to_float : t -> float option
(** {!Float} or {!Int}. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
