(* Each worker owns a FIFO job queue guarded by its own mutex; the
   leader pushes closures, workers pop and run them in order.  Jobs
   signal their own completion (a latch for fork-join groups, a result
   cell for window tickets), so the two submission styles — the
   barrier-style [run] and the ordered sliding [Window] — share one
   worker loop and can even interleave on the same pool: a fault-scan
   group enqueued behind window tickets simply runs after them. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;  (* fork-join groups; jobs must never raise *)
  low : (unit -> unit) Queue.t;
      (* window tickets — lower priority, so a fault-scan group a
         leader is blocked on never waits behind a window of
         speculative searches *)
  mutable quit : bool;
  mutable domain : unit Domain.t option;
}

type t = {
  size : int;
  workers : worker array;
  mutable alive : bool;
  track : bool;
  busy : float array;  (* per executing domain; slot 0 is the leader *)
}

let default_jobs () = Domain.recommended_domain_count ()

(* Workers drain their queue before honouring [quit], so a shutdown
   never strands a submitted job (its completion would wedge the
   leader). *)
let worker_loop pool slot w =
  let rec loop () =
    Mutex.lock w.mutex;
    while Queue.is_empty w.queue && Queue.is_empty w.low && not w.quit do
      Condition.wait w.cond w.mutex
    done;
    if Queue.is_empty w.queue && Queue.is_empty w.low then Mutex.unlock w.mutex
    else begin
      let job = if Queue.is_empty w.queue then Queue.pop w.low else Queue.pop w.queue in
      Mutex.unlock w.mutex;
      (* Busy tracking: each executing domain writes only its own slot,
         and the leader reads them after a join — no races. *)
      if pool.track then begin
        let t0 = Budget.default_clock () in
        job ();
        pool.busy.(slot) <- pool.busy.(slot) +. (Budget.default_clock () -. t0)
      end
      else job ();
      loop ()
    end
  in
  loop ()

let create ?jobs ?(track = false) () =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be at least 1";
  let jobs = min jobs 128 in
  (* Never oversubscribe the machine: running more domains than cores
     makes every stop-the-world minor collection wait on descheduled
     domains.  Excess lanes beyond the spawned workers are executed by
     the existing domains, so results don't depend on the cap. *)
  let spawned = min jobs (max 1 (default_jobs ())) - 1 in
  let workers =
    Array.init spawned (fun _ ->
        { mutex = Mutex.create (); cond = Condition.create (); queue = Queue.create ();
          low = Queue.create (); quit = false; domain = None })
  in
  let t = { size = jobs; workers; alive = true; track; busy = Array.make (spawned + 1) 0.0 } in
  Array.iteri
    (fun i w -> w.domain <- Some (Domain.spawn (fun () -> worker_loop t (i + 1) w)))
    workers;
  t

let jobs t = t.size

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.quit <- true;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex)
      t.workers;
    Array.iter (fun w -> Option.iter Domain.join w.domain) t.workers
  end

let with_pool ?jobs ?track f =
  let t = create ?jobs ?track () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let lane_busy_s t = Array.copy t.busy

let reset_lane_busy t = Array.fill t.busy 0 (Array.length t.busy) 0.0

let enqueue w job =
  Mutex.lock w.mutex;
  Queue.push job w.queue;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let enqueue_low w job =
  Mutex.lock w.mutex;
  Queue.push job w.low;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

(* One-shot completion latch for fork-join groups. *)
type latch = { lm : Mutex.t; lcv : Condition.t; mutable fired : bool }

let latch () = { lm = Mutex.create (); lcv = Condition.create (); fired = false }

let fire l =
  Mutex.lock l.lm;
  l.fired <- true;
  Condition.broadcast l.lcv;
  Mutex.unlock l.lm

let await l =
  Mutex.lock l.lm;
  while not l.fired do
    Condition.wait l.lcv l.lm
  done;
  Mutex.unlock l.lm

let run t tasks =
  if not t.alive then invalid_arg "Parallel.run: pool is shut down";
  let n = Array.length tasks in
  if n > t.size then invalid_arg "Parallel.run: more tasks than pool lanes";
  if n > 0 then begin
    (* Tasks are dealt out in contiguous groups, one per executing
       domain (the workers plus the caller); a group runs its tasks in
       sequence, recording each outcome, so every task executes even
       when an earlier one raises. *)
    let outcomes = Array.make n None in
    let g = min (Array.length t.workers + 1) n in
    let group j () =
      for i = j * n / g to ((j + 1) * n / g) - 1 do
        match tasks.(i) () with
        | () -> ()
        | exception e -> outcomes.(i) <- Some e
      done
    in
    let latches = Array.init (g - 1) (fun _ -> latch ()) in
    for j = 1 to g - 1 do
      let l = latches.(j - 1) in
      (* Group closures never raise, so the latch always fires. *)
      enqueue t.workers.(j - 1) (fun () -> group j (); fire l)
    done;
    (* The leader runs its own share, tracking its busy time like the
       worker loop does for queued jobs. *)
    if t.track then begin
      let t0 = Budget.default_clock () in
      group 0 ();
      t.busy.(0) <- t.busy.(0) +. (Budget.default_clock () -. t0)
    end
    else group 0 ();
    Array.iter await latches;
    Array.iter (function Some e -> raise e | None -> ()) outcomes
  end

let parallel_for t n f =
  if n > 0 then begin
    let k = min t.size n in
    run t
      (Array.init k (fun i ->
           let lo = i * n / k and hi = (i + 1) * n / k in
           fun () ->
             for j = lo to hi - 1 do
               f j
             done))
  end

let map_slices t n f =
  if n < 0 then invalid_arg "Parallel.map_slices: negative range";
  if n = 0 then [||]
  else begin
    let k = min t.size n in
    let out = Array.make k None in
    run t
      (Array.init k (fun i ->
           let lo = i * n / k and hi = (i + 1) * n / k in
           fun () -> out.(i) <- Some (f ~lo ~hi)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let fold t n ~map ~combine ~init = Array.fold_left combine init (map_slices t n map)

(* --- ordered sliding window ---------------------------------------- *)

type pool = t

module Window = struct
  type 'a state = Pending | Ok of 'a | Exn of exn

  type 'a cell = { mutable state : 'a state }

  type 'a t = {
    pool : pool;
    cap : int;
    cells : 'a cell Queue.t;  (* outstanding tickets, oldest first *)
    wm : Mutex.t;
    wcv : Condition.t;
    mutable seq : int;  (* tickets ever submitted; fixes the executor *)
  }

  let create pool ~capacity =
    if capacity < 1 then invalid_arg "Parallel.Window.create: capacity must be at least 1";
    { pool; cap = capacity; cells = Queue.create (); wm = Mutex.create ();
      wcv = Condition.create (); seq = 0 }

  let capacity w = w.cap

  let in_flight w = Queue.length w.cells

  let executors w = max 1 (Array.length w.pool.workers)

  let submit w f =
    let p = w.pool in
    if not p.alive then invalid_arg "Parallel.Window.submit: pool is shut down";
    if Queue.length w.cells >= w.cap then invalid_arg "Parallel.Window.submit: window is full";
    let cell = { state = Pending } in
    Queue.push cell w.cells;
    let nw = Array.length p.workers in
    if nw = 0 then
      (* No workers (serial pool or single-core cap): execute inline so
         the window degenerates to eager evaluation in submit order. *)
      cell.state <- (match f ~exec:0 with v -> Ok v | exception e -> Exn e)
    else begin
      (* Round-robin by submission sequence: an executor runs its
         tickets in FIFO order, so per-executor workspaces are reused
         without ever being shared. *)
      let exec = w.seq mod nw in
      enqueue_low p.workers.(exec)
        (fun () ->
          let r = match f ~exec with v -> Ok v | exception e -> Exn e in
          Mutex.lock w.wm;
          cell.state <- r;
          Condition.broadcast w.wcv;
          Mutex.unlock w.wm)
    end;
    w.seq <- w.seq + 1

  let collect w =
    match Queue.take_opt w.cells with
    | None -> invalid_arg "Parallel.Window.collect: no ticket in flight"
    | Some cell ->
        Mutex.lock w.wm;
        while cell.state = Pending do
          Condition.wait w.wcv w.wm
        done;
        Mutex.unlock w.wm;
        (match cell.state with
        | Ok v -> v
        | Exn e -> raise e
        | Pending -> assert false)

  let drain w =
    while in_flight w > 0 do
      match collect w with v -> ignore v | exception _ -> ()
    done
end
