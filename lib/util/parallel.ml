(* Each worker owns a one-slot mailbox guarded by its own mutex; the
   leader fills the slots, runs its own share, then drains them.  A
   single condition variable per worker serves both directions — the
   waits are distinguished by the cell state they are waiting for. *)

type cell =
  | Idle
  | Work of (unit -> unit)
  | Done of exn option
  | Quit

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable cell : cell;
  mutable domain : unit Domain.t option;
}

type t = {
  size : int;
  workers : worker array;
  mutable alive : bool;
  track : bool;
  busy : float array;  (* per executing domain; slot 0 is the leader *)
}

let default_jobs () = Domain.recommended_domain_count ()

let worker_loop w =
  let rec loop () =
    Mutex.lock w.mutex;
    let rec await () =
      match w.cell with
      | Work _ | Quit -> ()
      | Idle | Done _ ->
          Condition.wait w.cond w.mutex;
          await ()
    in
    await ();
    match w.cell with
    | Quit -> Mutex.unlock w.mutex
    | Work f ->
        Mutex.unlock w.mutex;
        let outcome = (try f (); None with e -> Some e) in
        Mutex.lock w.mutex;
        w.cell <- Done outcome;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex;
        loop ()
    | Idle | Done _ -> assert false
  in
  loop ()

let create ?jobs ?(track = false) () =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be at least 1";
  let jobs = min jobs 128 in
  (* Never oversubscribe the machine: running more domains than cores
     makes every stop-the-world minor collection wait on descheduled
     domains.  Excess lanes beyond the spawned workers are executed by
     the existing domains, so results don't depend on the cap. *)
  let spawned = min jobs (max 1 (default_jobs ())) - 1 in
  let workers =
    Array.init spawned (fun _ ->
        { mutex = Mutex.create (); cond = Condition.create (); cell = Idle; domain = None })
  in
  Array.iter (fun w -> w.domain <- Some (Domain.spawn (fun () -> worker_loop w))) workers;
  { size = jobs; workers; alive = true; track; busy = Array.make (spawned + 1) 0.0 }

let jobs t = t.size

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.cell <- Quit;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex)
      t.workers;
    Array.iter (fun w -> Option.iter Domain.join w.domain) t.workers
  end

let with_pool ?jobs ?track f =
  let t = create ?jobs ?track () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let lane_busy_s t = Array.copy t.busy

let reset_lane_busy t = Array.fill t.busy 0 (Array.length t.busy) 0.0

let submit w f =
  Mutex.lock w.mutex;
  w.cell <- Work f;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  let rec go () =
    match w.cell with
    | Done r ->
        w.cell <- Idle;
        r
    | _ ->
        Condition.wait w.cond w.mutex;
        go ()
  in
  let r = go () in
  Mutex.unlock w.mutex;
  r

let run t tasks =
  if not t.alive then invalid_arg "Parallel.run: pool is shut down";
  let n = Array.length tasks in
  if n > t.size then invalid_arg "Parallel.run: more tasks than pool lanes";
  if n > 0 then begin
    (* Tasks are dealt out in contiguous groups, one per executing
       domain (the workers plus the caller); a group runs its tasks in
       sequence, recording each outcome, so every task executes even
       when an earlier one raises. *)
    let outcomes = Array.make n None in
    let g = min (Array.length t.workers + 1) n in
    let plain_group j () =
      for i = j * n / g to ((j + 1) * n / g) - 1 do
        match tasks.(i) () with
        | () -> ()
        | exception e -> outcomes.(i) <- Some e
      done
    in
    (* Busy tracking: each executing domain writes only its own slot,
       and the leader reads them after the joins below — no races. *)
    let group =
      if not t.track then plain_group
      else fun j () ->
        let t0 = Budget.default_clock () in
        plain_group j ();
        t.busy.(j) <- t.busy.(j) +. (Budget.default_clock () -. t0)
    in
    for j = 1 to g - 1 do
      submit t.workers.(j - 1) (group j)
    done;
    group 0 ();
    (* Even on a leader failure every submitted group must be drained
       or the pool would wedge — group closures never raise, so the
       await outcome is always [None]. *)
    for j = 1 to g - 1 do
      ignore (await t.workers.(j - 1))
    done;
    Array.iter (function Some e -> raise e | None -> ()) outcomes
  end

let parallel_for t n f =
  if n > 0 then begin
    let k = min t.size n in
    run t
      (Array.init k (fun i ->
           let lo = i * n / k and hi = (i + 1) * n / k in
           fun () ->
             for j = lo to hi - 1 do
               f j
             done))
  end

let map_slices t n f =
  if n < 0 then invalid_arg "Parallel.map_slices: negative range";
  if n = 0 then [||]
  else begin
    let k = min t.size n in
    let out = Array.make k None in
    run t
      (Array.init k (fun i ->
           let lo = i * n / k and hi = (i + 1) * n / k in
           fun () -> out.(i) <- Some (f ~lo ~hi)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let fold t n ~map ~combine ~init = Array.fold_left combine init (map_slices t n map)
