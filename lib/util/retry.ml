type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  multiplier : float;
  jitter : bool;
  attempt_budget_s : float option;
  overall_budget_s : float option;
}

let default =
  {
    max_attempts = 3;
    base_delay_s = 0.05;
    max_delay_s = 2.0;
    multiplier = 2.0;
    jitter = true;
    attempt_budget_s = None;
    overall_budget_s = None;
  }

let validate p =
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if p.base_delay_s < 0.0 then invalid_arg "Retry: base_delay_s must be >= 0";
  if p.max_delay_s < 0.0 then invalid_arg "Retry: max_delay_s must be >= 0";
  if p.multiplier < 1.0 then invalid_arg "Retry: multiplier must be >= 1"

let backoff_s p rng ~attempt =
  let bound =
    Float.min p.max_delay_s
      (p.base_delay_s *. (p.multiplier ** float_of_int (attempt - 1)))
  in
  if p.jitter && bound > 0.0 then Rng.float rng bound else bound

let run ?(clock = Budget.default_clock) ?(sleep = Unix.sleepf) ?rng
    ?(on_retry = fun ~attempt:_ ~delay_s:_ _ -> ()) p ~retryable f =
  validate p;
  let rng = match rng with Some r -> r | None -> Rng.create 1 in
  let overall = Budget.of_seconds_opt ~clock p.overall_budget_s in
  let rec go attempt =
    let budget = Budget.sub_opt ~clock overall p.attempt_budget_s in
    match f ~attempt ~budget with
    | v -> v
    | exception e
      when retryable e && attempt < p.max_attempts && not (Budget.expired overall)
      ->
        let delay_s =
          Float.min (backoff_s p rng ~attempt) (Budget.remaining_s overall)
        in
        on_retry ~attempt ~delay_s e;
        if delay_s > 0.0 then sleep delay_s;
        go (attempt + 1)
  in
  go 1
