(** Wall-clock time budgets and deadlines.

    A budget is either unlimited or a deadline on a clock.  Long
    searches poll {!expired} at decision points; a whole-run budget and
    a per-fault slice compose with {!sub}.  The clock is injectable so
    tests can expire budgets deterministically; the default is
    [Unix.gettimeofday] (the stdlib has no monotonic clock — budgets
    are advisory bounds, not hard real-time guarantees). *)

type clock = unit -> float
(** Seconds, from an arbitrary epoch. *)

val default_clock : clock

type t

val unlimited : t
(** Never expires. *)

val of_seconds : ?clock:clock -> float -> t
(** Deadline [s] seconds from now.  [of_seconds 0.] is already expired.
    @raise Invalid_argument on a negative budget. *)

val of_seconds_opt : ?clock:clock -> float option -> t
(** [None] is {!unlimited}. *)

val at : ?clock:clock -> float -> t
(** Absolute deadline on [clock]'s timeline. *)

val is_unlimited : t -> bool

val expired : t -> bool
(** Has the deadline passed?  Polling costs one clock read. *)

val remaining_s : t -> float
(** Seconds left ([infinity] when unlimited, 0 once expired). *)

val min_of : t -> t -> t
(** The earlier of two deadlines. *)

val sub : ?clock:clock -> t -> seconds:float -> t
(** [sub budget ~seconds] is a slice: expires after [seconds] or when
    [budget] does, whichever is first. *)

val sub_opt : ?clock:clock -> t -> float option -> t
(** [sub_opt budget None] is [budget]. *)
