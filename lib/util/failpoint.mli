(** Named fault-injection sites for chaos testing.

    Instrumented code declares sites by calling {!check} (and, for data
    paths, {!corrupt}) with a stable dot-separated site name —
    [protocol.write], [store.spill], [atomic.synced], … — and the
    module decides, per call, whether an armed fault fires.  With no
    spec installed every entry point is a no-op behind a single mutable
    read, so permanent instrumentation costs nothing measurable.

    Faults are armed from a spec string, normally via the
    [ADI_FAILPOINTS] environment variable:

    {v site:action[@prob][,site:action[@prob]...] v}

    where [action] is one of
    - [error]  — raise a typed [E-io] {!Diagnostics.Failed};
    - [delay=DUR] — sleep for [DUR] ([50ms], [0.2s], or bare seconds);
    - [crash]  — exit the process immediately with {!crash_exit_code}
      (no [at_exit], no flush — indistinguishable from [kill -9]);
    - [corrupt] — arm {!corrupt}/{!corrupt_bytes} at that site to flip
      one byte of the data passing through.

    [@prob] is a firing probability in [(0, 1]] (default 1).  Draws
    come from a seeded splitmix64 stream ([ADI_FAILPOINTS_SEED],
    default 1), so a chaos run is reproducible end-to-end.  All state
    is behind a mutex: sites may be checked from any domain. *)

type action =
  | Error  (** raise [Diagnostics.Failed] with code [Io_error] *)
  | Delay of float  (** sleep this many seconds *)
  | Crash  (** [Unix._exit crash_exit_code] — simulated kill -9 *)
  | Corrupt  (** flip one byte in {!corrupt}/{!corrupt_bytes} *)

val crash_exit_code : int
(** 42 — distinctive, so tests can tell an injected crash from a real
    failure. *)

val configure : ?seed:int -> string -> (unit, string) result
(** Parse and install a spec, replacing any previous configuration.
    The empty string disarms everything.  [Error msg] describes the
    first malformed entry; the previous configuration is kept. *)

val install_from_env : unit -> unit
(** Arm from [ADI_FAILPOINTS] / [ADI_FAILPOINTS_SEED] if set.  A
    malformed spec raises a typed [E-flag] {!Diagnostics.Failed} —
    silently ignoring a chaos spec would fake a passing run.  No-op
    when the variable is unset or empty. *)

val clear : unit -> unit
(** Disarm every site. *)

val active : unit -> bool
(** Is any site armed? *)

val check : string -> unit
(** Declare an injection site.  Fires every armed [error]/[delay]/
    [crash] entry for this site that wins its probability draw: delays
    sleep first, then an error raises.  No-op when nothing is armed. *)

val fires : string -> bool
(** Did an armed [error] entry at this site win its draw?  Consumes
    the draw without raising — for sites that implement a bespoke
    failure (e.g. a torn write) instead of a plain exception. *)

val corrupt : string -> string -> string
(** [corrupt site s] flips one byte of [s] (at a seeded random
    position) when a [corrupt] entry at [site] fires; otherwise returns
    [s] unchanged.  Empty strings pass through. *)

val corrupt_bytes : string -> ?off:int -> Bytes.t -> unit
(** In-place variant: flip one byte at an index in [\[off, length)]
    when a [corrupt] entry fires. *)

val triggered : string -> int
(** How many times any entry at [site] has fired since the last
    {!configure}/{!clear} — lets tests assert the chaos actually
    happened. *)
