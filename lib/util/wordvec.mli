(** Flat [int64] word vectors backed by a C-layout {!Bigarray}.

    The wide-block simulation arenas: element storage is unboxed and
    contiguous (one malloc'd block outside the OCaml heap), so a
    [node_count * width] arena costs exactly [8] bytes per word with no
    per-element boxes and nothing for the GC to scan.  The fused
    kernels run one bounds-check per call and [unsafe_get]/[unsafe_set]
    per word.

    Indices are word indices; a simulator lane of width [W] for node
    [n] occupies words [n*W .. n*W + W - 1]. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** [create n] is an [n]-word vector, zero-filled. *)

val length : t -> int

val get : t -> int -> int64
(** Bounds-checked read. *)

val set : t -> int -> int64 -> unit
(** Bounds-checked write. *)

val unsafe_get : t -> int -> int64
(** Unchecked read — inner-loop primitive; the caller owns the bounds
    argument. *)

val unsafe_set : t -> int -> int64 -> unit
(** Unchecked write. *)

val fill : t -> int64 -> unit

val sub : t -> int -> int -> t
(** [sub t pos len] is a zero-copy view of [len] words starting at
    [pos]; writes through the view land in [t].  How one arena serves
    several per-node tables. *)

val blit : src:t -> dst:t -> unit
(** Whole-vector copy.  Lengths must match. *)

val or_into : dst:t -> t -> unit
(** Fused [dst <- dst OR src], one pass.  Lengths must match. *)

val and_popcount : t -> t -> int
(** Fused [popcount (a AND b)] without materialising the
    intersection.  Lengths must match. *)

val xor_nonzero : t -> t -> bool
(** Fused [a XOR b <> 0] with early exit on the first differing word —
    the divergence test of the wide fault simulator. *)

val iteri_words : t -> (int -> int64 -> unit) -> unit
(** [iteri_words t f] calls [f i w] for every word in increasing
    index order. *)

val of_array : int64 array -> t
val to_array : t -> int64 array
