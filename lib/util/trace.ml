(* Nestable wall-clock spans over an injectable clock, plus a
   structured JSONL event sink.  One tracer is installed as the
   process-wide current tracer (default: disabled); instrumented code
   reads it at phase entry, never per inner operation.  Tracers are
   leader-domain-only: worker lanes accumulate into private storage
   that the leader merges after a join. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * value) list

type event =
  | Span of { name : string; at_s : float; dur_s : float; depth : int; attrs : attrs }
  | Instant of { name : string; at_s : float; attrs : attrs }
  | Counter of { name : string; value : int; attrs : attrs }
  | Hist of { name : string; n : int; sum : float; min_v : float; max_v : float; attrs : attrs }

let schema = "adi_trace/v1"

(* --- JSONL encoding ---------------------------------------------- *)

let buf_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Enough digits to round-trip an OCaml float exactly. *)
let buf_json_float b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let buf_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> buf_json_float b f
  | Str s -> buf_json_string b s
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let buf_attrs b attrs =
  Buffer.add_string b ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_json_string b k;
      Buffer.add_char b ':';
      buf_value b v)
    attrs;
  Buffer.add_char b '}'

let to_json ev =
  let b = Buffer.create 128 in
  let field k v =
    Buffer.add_char b ',';
    buf_json_string b k;
    Buffer.add_char b ':';
    v ()
  in
  let str k s = field k (fun () -> buf_json_string b s) in
  let num k x = field k (fun () -> buf_json_float b x) in
  let int k i = field k (fun () -> Buffer.add_string b (string_of_int i)) in
  Buffer.add_string b "{\"schema\":";
  buf_json_string b schema;
  (match ev with
  | Span s ->
      str "ev" "span";
      str "name" s.name;
      num "at_s" s.at_s;
      num "dur_s" s.dur_s;
      int "depth" s.depth;
      buf_attrs b s.attrs
  | Instant i ->
      str "ev" "instant";
      str "name" i.name;
      num "at_s" i.at_s;
      buf_attrs b i.attrs
  | Counter c ->
      str "ev" "counter";
      str "name" c.name;
      int "value" c.value;
      buf_attrs b c.attrs
  | Hist h ->
      str "ev" "hist";
      str "name" h.name;
      int "count" h.n;
      num "sum" h.sum;
      num "min" h.min_v;
      num "max" h.max_v;
      buf_attrs b h.attrs);
  Buffer.add_char b '}';
  Buffer.contents b

(* --- minimal JSON parsing (the subset {!to_json} emits) ----------- *)

type json = Jnum of float | Jstr of string | Jbool of bool | Jnull | Jobj of (string * json) list

exception Parse of string

let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then line.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %C" c) in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "bad \\u escape";
                let hex = String.sub line (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                (* Only ASCII escapes are emitted by {!to_json}. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
                pos := !pos + 4
            | _ -> fail "bad escape");
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n
      && match line.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec json () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = json () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Jobj (members [])
        end
    | '"' -> Jstr (string_lit ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else fail "bad literal"
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else fail "bad literal"
    | 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4;
          Jnull
        end
        else fail "bad literal"
    | _ -> Jnum (number ())
  in
  let v = json () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_json line =
  match parse_json line with
  | exception Parse msg -> Error msg
  | Jobj fields -> (
      let str k =
        match List.assoc_opt k fields with
        | Some (Jstr s) -> Ok s
        | _ -> Error (Printf.sprintf "missing string field %S" k)
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (Jnum f) -> Ok f
        | _ -> Error (Printf.sprintf "missing numeric field %S" k)
      in
      let int k = Result.map int_of_float (num k) in
      let attrs =
        match List.assoc_opt "attrs" fields with
        | Some (Jobj kvs) ->
            List.map
              (fun (k, v) ->
                ( k,
                  match v with
                  | Jstr s -> Str s
                  | Jbool v -> Bool v
                  | Jnum f when Float.is_integer f && Float.abs f < 1e15 ->
                      Int (int_of_float f)
                  | Jnum f -> Float f
                  | _ -> Str "" ))
              kvs
        | _ -> []
      in
      let ( let* ) = Result.bind in
      let* s = str "schema" in
      if s <> schema then Error (Printf.sprintf "unknown schema %S" s)
      else
        let* ev = str "ev" in
        match ev with
        | "span" ->
            let* name = str "name" in
            let* at_s = num "at_s" in
            let* dur_s = num "dur_s" in
            let* depth = int "depth" in
            Ok (Span { name; at_s; dur_s; depth; attrs })
        | "instant" ->
            let* name = str "name" in
            let* at_s = num "at_s" in
            Ok (Instant { name; at_s; attrs })
        | "counter" ->
            let* name = str "name" in
            let* value = int "value" in
            Ok (Counter { name; value; attrs })
        | "hist" ->
            let* name = str "name" in
            let* n = int "count" in
            let* sum = num "sum" in
            let* min_v = num "min" in
            let* max_v = num "max" in
            Ok (Hist { name; n; sum; min_v; max_v; attrs })
        | ev -> Error (Printf.sprintf "unknown event kind %S" ev))
  | _ -> Error "not a JSON object"

(* --- tracers ------------------------------------------------------ *)

type t = {
  enabled : bool;
  clock : Budget.clock;
  t0 : float;
  metrics : Metrics.t;
  sink : (event -> unit) option;
  mutable depth : int;
}

let null =
  { enabled = false; clock = (fun () -> 0.0); t0 = 0.0; metrics = Metrics.null; sink = None;
    depth = 0 }

let make ?(clock = Budget.default_clock) ?sink () =
  { enabled = true; clock; t0 = clock (); metrics = Metrics.create (); sink; depth = 0 }

let enabled t = t.enabled
let metrics t = t.metrics
let elapsed_s t = if t.enabled then t.clock () -. t.t0 else 0.0

let emit t ev = match t.sink with None -> () | Some sink -> sink ev

let span t ?(attrs = []) name f =
  if not t.enabled then f ()
  else begin
    let start = t.clock () in
    t.depth <- t.depth + 1;
    Fun.protect
      ~finally:(fun () ->
        t.depth <- t.depth - 1;
        let dur = t.clock () -. start in
        Metrics.observe (Metrics.histogram t.metrics (Metrics.span_prefix ^ name)) dur;
        emit t (Span { name; at_s = start -. t.t0; dur_s = dur; depth = t.depth; attrs }))
      f
  end

let instant t ?(attrs = []) name =
  if t.enabled then emit t (Instant { name; at_s = t.clock () -. t.t0; attrs })

let now_s t = if t.enabled then t.clock () else 0.0

(* Like {!span} but folds into a histogram only — for per-block /
   per-test timings that would flood the sink as individual events. *)
let time t h f =
  if not t.enabled then f ()
  else begin
    let start = t.clock () in
    Fun.protect ~finally:(fun () -> Metrics.observe h (t.clock () -. start)) f
  end

let counter t name = Metrics.counter t.metrics name
let histogram t name = Metrics.histogram t.metrics name

(* One self-describing event per registry entry; called once at end of
   run (and again by later flushes — counts are cumulative, so readers
   take the last event per name). *)
let flush_metrics t =
  if t.enabled && t.sink <> None then begin
    List.iter
      (fun c ->
        emit t
          (Counter { name = Metrics.counter_name c; value = Metrics.count c; attrs = [] }))
      (Metrics.counters t.metrics);
    List.iter
      (fun h ->
        emit t
          (Hist
             {
               name = Metrics.histogram_name h;
               n = Metrics.observations h;
               sum = Metrics.total h;
               min_v = Metrics.minimum h;
               max_v = Metrics.maximum h;
               attrs = [];
             }))
      (Metrics.histograms t.metrics)
  end

(* --- the current tracer ------------------------------------------- *)

let current_tracer = ref null
let current () = !current_tracer
let set_current t = current_tracer := t

let with_current t f =
  let prev = !current_tracer in
  current_tracer := t;
  Fun.protect ~finally:(fun () -> current_tracer := prev) f

let file_sink oc ev =
  output_string oc (to_json ev);
  output_char oc '\n';
  flush oc

let install_from_env () =
  let metrics_on =
    match Sys.getenv_opt "ADI_METRICS" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let trace_prefix =
    match Sys.getenv_opt "ADI_TRACE" with None | Some "" -> None | Some p -> Some p
  in
  if metrics_on || trace_prefix <> None then begin
    let sink =
      Option.map
        (fun prefix ->
          let path = Printf.sprintf "%s.%d.jsonl" prefix (Unix.getpid ()) in
          let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
          at_exit (fun () -> close_out_noerr oc);
          file_sink oc)
        trace_prefix
    in
    let tr = make ?sink () in
    set_current tr;
    at_exit (fun () ->
        flush_metrics tr;
        if metrics_on then prerr_string (Metrics.report (metrics tr)))
  end
