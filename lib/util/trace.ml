(* Nestable wall-clock spans over an injectable clock, plus a
   structured JSONL event sink.  One tracer is installed as the
   process-wide current tracer (default: disabled); instrumented code
   reads it at phase entry, never per inner operation.  Tracers are
   leader-domain-only: worker lanes accumulate into private storage
   that the leader merges after a join. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * value) list

type event =
  | Span of { name : string; at_s : float; dur_s : float; depth : int; attrs : attrs }
  | Instant of { name : string; at_s : float; attrs : attrs }
  | Counter of { name : string; value : int; attrs : attrs }
  | Hist of { name : string; n : int; sum : float; min_v : float; max_v : float; attrs : attrs }

let schema = "adi_trace/v1"

(* --- JSONL encoding (on the shared {!Json} dialect) --------------- *)

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool v -> Json.Bool v

let value_of_json = function
  | Json.Str s -> Str s
  | Json.Bool v -> Bool v
  | Json.Int i -> Int i
  | Json.Float f when Float.is_integer f && Float.abs f < 1e15 -> Int (int_of_float f)
  | Json.Float f -> Float f
  | _ -> Str ""

let to_json ev =
  let attrs_field attrs = ("attrs", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)) in
  let fields =
    match ev with
    | Span s ->
        [ ("ev", Json.Str "span"); ("name", Json.Str s.name); ("at_s", Json.Float s.at_s);
          ("dur_s", Json.Float s.dur_s); ("depth", Json.Int s.depth); attrs_field s.attrs ]
    | Instant i ->
        [ ("ev", Json.Str "instant"); ("name", Json.Str i.name); ("at_s", Json.Float i.at_s);
          attrs_field i.attrs ]
    | Counter c ->
        [ ("ev", Json.Str "counter"); ("name", Json.Str c.name); ("value", Json.Int c.value);
          attrs_field c.attrs ]
    | Hist h ->
        [ ("ev", Json.Str "hist"); ("name", Json.Str h.name); ("count", Json.Int h.n);
          ("sum", Json.Float h.sum); ("min", Json.Float h.min_v); ("max", Json.Float h.max_v);
          attrs_field h.attrs ]
  in
  Json.to_string (Json.Obj (("schema", Json.Str schema) :: fields))

let of_json line =
  match Json.of_string line with
  | Error _ as e -> e
  | Ok (Json.Obj _ as obj) -> (
      let str k =
        match Option.bind (Json.member k obj) Json.to_str with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "missing string field %S" k)
      in
      let num k =
        match Option.bind (Json.member k obj) Json.to_float with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "missing numeric field %S" k)
      in
      let int k = Result.map int_of_float (num k) in
      let attrs =
        match Json.member "attrs" obj with
        | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, value_of_json v)) kvs
        | _ -> []
      in
      let ( let* ) = Result.bind in
      let* s = str "schema" in
      if s <> schema then Error (Printf.sprintf "unknown schema %S" s)
      else
        let* ev = str "ev" in
        match ev with
        | "span" ->
            let* name = str "name" in
            let* at_s = num "at_s" in
            let* dur_s = num "dur_s" in
            let* depth = int "depth" in
            Ok (Span { name; at_s; dur_s; depth; attrs })
        | "instant" ->
            let* name = str "name" in
            let* at_s = num "at_s" in
            Ok (Instant { name; at_s; attrs })
        | "counter" ->
            let* name = str "name" in
            let* value = int "value" in
            Ok (Counter { name; value; attrs })
        | "hist" ->
            let* name = str "name" in
            let* n = int "count" in
            let* sum = num "sum" in
            let* min_v = num "min" in
            let* max_v = num "max" in
            Ok (Hist { name; n; sum; min_v; max_v; attrs })
        | ev -> Error (Printf.sprintf "unknown event kind %S" ev))
  | Ok _ -> Error "not a JSON object"

(* --- tracers ------------------------------------------------------ *)

type t = {
  enabled : bool;
  clock : Budget.clock;
  t0 : float;
  metrics : Metrics.t;
  sink : (event -> unit) option;
  mutable depth : int;
}

let null =
  { enabled = false; clock = (fun () -> 0.0); t0 = 0.0; metrics = Metrics.null; sink = None;
    depth = 0 }

let make ?(clock = Budget.default_clock) ?sink () =
  { enabled = true; clock; t0 = clock (); metrics = Metrics.create (); sink; depth = 0 }

let enabled t = t.enabled
let metrics t = t.metrics
let elapsed_s t = if t.enabled then t.clock () -. t.t0 else 0.0

let emit t ev = match t.sink with None -> () | Some sink -> sink ev

let span t ?(attrs = []) name f =
  if not t.enabled then f ()
  else begin
    let start = t.clock () in
    t.depth <- t.depth + 1;
    Fun.protect
      ~finally:(fun () ->
        t.depth <- t.depth - 1;
        let dur = t.clock () -. start in
        Metrics.observe (Metrics.histogram t.metrics (Metrics.span_prefix ^ name)) dur;
        emit t (Span { name; at_s = start -. t.t0; dur_s = dur; depth = t.depth; attrs }))
      f
  end

let instant t ?(attrs = []) name =
  if t.enabled then emit t (Instant { name; at_s = t.clock () -. t.t0; attrs })

(* An externally timed span: same histogram fold and event shape as
   {!span}, but the caller supplies the start/duration, so the body
   never runs under the tracer's nesting state.  This is the only safe
   way for worker domains to record request spans — they time the work
   privately and publish here under the caller's lock. *)
let emit_span t ?(attrs = []) name ~start_s ~dur_s =
  if t.enabled then begin
    Metrics.observe (Metrics.histogram t.metrics (Metrics.span_prefix ^ name)) dur_s;
    emit t (Span { name; at_s = start_s -. t.t0; dur_s; depth = 0; attrs })
  end

let now_s t = if t.enabled then t.clock () else 0.0

(* Like {!span} but folds into a histogram only — for per-block /
   per-test timings that would flood the sink as individual events. *)
let time t h f =
  if not t.enabled then f ()
  else begin
    let start = t.clock () in
    Fun.protect ~finally:(fun () -> Metrics.observe h (t.clock () -. start)) f
  end

let counter t name = Metrics.counter t.metrics name
let histogram t name = Metrics.histogram t.metrics name

(* One self-describing event per registry entry; called once at end of
   run (and again by later flushes — counts are cumulative, so readers
   take the last event per name). *)
let flush_metrics t =
  if t.enabled && t.sink <> None then begin
    List.iter
      (fun c ->
        emit t
          (Counter { name = Metrics.counter_name c; value = Metrics.count c; attrs = [] }))
      (Metrics.counters t.metrics);
    List.iter
      (fun h ->
        emit t
          (Hist
             {
               name = Metrics.histogram_name h;
               n = Metrics.observations h;
               sum = Metrics.total h;
               min_v = Metrics.minimum h;
               max_v = Metrics.maximum h;
               attrs = [];
             }))
      (Metrics.histograms t.metrics)
  end

(* --- the current tracer ------------------------------------------- *)

let current_tracer = ref null
let current () = !current_tracer
let set_current t = current_tracer := t

let with_current t f =
  let prev = !current_tracer in
  current_tracer := t;
  Fun.protect ~finally:(fun () -> current_tracer := prev) f

let file_sink oc ev =
  output_string oc (to_json ev);
  output_char oc '\n';
  flush oc

let install_from_env () =
  let metrics_on =
    match Sys.getenv_opt "ADI_METRICS" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let trace_prefix =
    match Sys.getenv_opt "ADI_TRACE" with None | Some "" -> None | Some p -> Some p
  in
  if metrics_on || trace_prefix <> None then begin
    let sink =
      Option.map
        (fun prefix ->
          let path = Printf.sprintf "%s.%d.jsonl" prefix (Unix.getpid ()) in
          let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
          at_exit (fun () -> close_out_noerr oc);
          file_sink oc)
        trace_prefix
    in
    let tr = make ?sink () in
    set_current tr;
    at_exit (fun () ->
        flush_metrics tr;
        if metrics_on then prerr_string (Metrics.report (metrics tr)))
  end
