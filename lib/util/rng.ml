type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let restore state = { state }

(* splitmix64 finaliser: mix the incremented counter into 64 output bits. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound = 1 then 0
  else begin
    (* Rejection sampling on 62 bits to avoid modulo bias. *)
    let mask = 0x3FFF_FFFF_FFFF_FFFF in
    let rec loop () =
      let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) land mask in
      let v = r mod bound in
      if r - v > mask - bound + 1 then loop () else v
    in
    loop ()
  end

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
