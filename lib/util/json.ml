type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse of string

(* --- printing ----------------------------------------------------- *)

let add_string b s =
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Enough digits to round-trip an OCaml float exactly; integral values
   keep a ".0" so they stay floats on re-parse. *)
let add_float b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | Str s -> add_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_string b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  add b v;
  Buffer.contents b

(* --- parsing ------------------------------------------------------ *)

let parse line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then line.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %C" c) in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "bad \\u escape";
                let hex = String.sub line (!pos + 1) 4 in
                let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
                (* Only ASCII escapes are emitted by {!add_string}. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
                pos := !pos + 4
            | _ -> fail "bad escape");
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    if peek () = '-' then advance ();
    let fractional = ref false in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' ->
          fractional := true;
          true
      | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let lexeme = String.sub line start (!pos - start) in
    if not !fractional then
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lexeme with
          | Some f -> Float f
          | None -> fail "bad number")
    else
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub line !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail "bad literal"
  in
  let rec json () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = json () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = json () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                items (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
    | '"' -> Str (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> number ()
  in
  let v = json () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_string line = match parse line with v -> Ok v | exception Parse msg -> Error msg

(* --- accessors ---------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f < 1e15 -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool v -> Some v | _ -> None
let to_list = function Arr items -> Some items | _ -> None
