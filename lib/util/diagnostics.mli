(** Typed diagnostics for the parsing and validation boundaries.

    One value describes one problem: a stable machine-readable {!code},
    a {!severity}, a source {!location}, and a human message.  Strict
    parsers raise {!Failed} on the first error; recoverable parsers
    accumulate a [t list] and keep going.  The CLI renders them with
    {!to_string} and maps errors to a dedicated exit code. *)

type severity = Error | Warning | Info

type code =
  | Syntax  (** malformed token or statement *)
  | Unknown_gate  (** gate/function name not in the library *)
  | Bad_arity  (** wrong operand count for the gate kind *)
  | Duplicate_def  (** signal defined more than once *)
  | Undefined_ref  (** signal used but never defined *)
  | Combinational_cycle
  | No_outputs  (** netlist declares no primary output *)
  | Bad_cover  (** malformed BLIF cover row *)
  | Bad_directive  (** unknown or malformed dot-directive *)
  | Empty_input  (** file or string holds no statements at all *)
  | Dead_logic  (** node drives no primary output *)
  | Constant_logic  (** node computes a constant *)
  | Sequential_element  (** DFF where combinational logic was required *)
  | Checkpoint_format  (** unreadable or wrong-version checkpoint file *)
  | Checkpoint_mismatch  (** checkpoint does not match the requested run *)
  | Io_error
  | Invalid_flag  (** command-line or configuration value out of range *)
  | Budget_expired  (** a wall-clock deadline ran out before the work finished *)
  | Protocol  (** malformed service request/response or broken framing *)
  | Overload  (** server shed the request — too much work in flight *)

type location = { file : string option; line : int }
(** [line = 0] means "no meaningful line" (whole-file problems). *)

type t = { code : code; severity : severity; loc : location; message : string }

exception Failed of t
(** Raised by strict-mode parsers and checkpoint loading. *)

val no_location : location
val line : ?file:string -> int -> location

val make : ?severity:severity -> ?loc:location -> code -> string -> t

val error : ?loc:location -> code -> ('a, unit, string, t) format4 -> 'a
val warning : ?loc:location -> code -> ('a, unit, string, t) format4 -> 'a

val fail : ?loc:location -> code -> ('a, unit, string, 'b) format4 -> 'a
(** Build an error diagnostic and raise {!Failed} with it. *)

val code_string : code -> string
(** Stable slug, e.g. ["E-unknown-gate"]. *)

val code_of_string : string -> code option
(** Inverse of {!code_string}: recover a typed code from its stable
    slug — how service clients turn a wire error back into a local
    diagnostic.  [None] for an unknown slug. *)

val severity_string : severity -> string

val to_string : t -> string
(** ["file:12: error: message [E-code]"]. *)

val is_error : t -> bool
val count_errors : t list -> int

val pp : Format.formatter -> t -> unit
