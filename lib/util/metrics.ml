(* Monotonic counters and summary histograms behind handle types, so
   instrumented code pays one registry lookup per run, not per event.
   A registry created [live:false] hands out shared dummy handles and
   records nothing — the disabled path is a single field read. *)

type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type t = {
  live : bool;
  mutable counters : counter list;  (* reverse registration order *)
  mutable histograms : histogram list;
}

let create () = { live = true; counters = []; histograms = [] }
let null = { live = false; counters = []; histograms = [] }
let live t = t.live

let dummy_counter = { c_name = ""; count = 0 }
let dummy_histogram = { h_name = ""; n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let counter t name =
  if not t.live then dummy_counter
  else
    match List.find_opt (fun c -> c.c_name = name) t.counters with
    | Some c -> c
    | None ->
        let c = { c_name = name; count = 0 } in
        t.counters <- c :: t.counters;
        c

let histogram t name =
  if not t.live then dummy_histogram
  else
    match List.find_opt (fun h -> h.h_name = name) t.histograms with
    | Some h -> h
    | None ->
        let h = { h_name = name; n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity } in
        t.histograms <- h :: t.histograms;
        h

let counter_name c = c.c_name
let histogram_name h = h.h_name

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let set c n = c.count <- n
let count c = c.count

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let observations h = h.n
let total h = h.sum
let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
let minimum h = if h.n = 0 then 0.0 else h.min_v
let maximum h = if h.n = 0 then 0.0 else h.max_v

let counters t = List.rev t.counters
let histograms t = List.rev t.histograms

let reset t =
  List.iter (fun c -> c.count <- 0) t.counters;
  List.iter
    (fun h ->
      h.n <- 0;
      h.sum <- 0.0;
      h.min_v <- infinity;
      h.max_v <- neg_infinity)
    t.histograms

(* Spans aggregated by {!Trace} land in histograms named
   ["span:<name>"]; the report separates them out as the phase table. *)
let span_prefix = "span:"

let is_span_hist h =
  String.length h.h_name > String.length span_prefix
  && String.sub h.h_name 0 (String.length span_prefix) = span_prefix

let phase_name h =
  String.sub h.h_name (String.length span_prefix)
    (String.length h.h_name - String.length span_prefix)

let report t =
  let b = Buffer.create 512 in
  let phases = List.filter is_span_hist (histograms t) in
  if phases <> [] then begin
    let tbl =
      Table.create
        [ ("phase", Table.Left); ("calls", Table.Right); ("total s", Table.Right);
          ("mean s", Table.Right) ]
    in
    List.iter
      (fun h ->
        Table.add_row tbl
          [ phase_name h; string_of_int h.n; Printf.sprintf "%.4f" h.sum;
            Printf.sprintf "%.4f" (mean h) ])
      phases;
    Buffer.add_string b (Table.render tbl)
  end;
  let cs = counters t in
  if cs <> [] then begin
    if phases <> [] then Buffer.add_char b '\n';
    let tbl = Table.create [ ("counter", Table.Left); ("value", Table.Right) ] in
    List.iter (fun c -> Table.add_row tbl [ c.c_name; string_of_int c.count ]) cs;
    Buffer.add_string b (Table.render tbl)
  end;
  let hs = List.filter (fun h -> not (is_span_hist h)) (histograms t) in
  if hs <> [] then begin
    if phases <> [] || cs <> [] then Buffer.add_char b '\n';
    let tbl =
      Table.create
        [ ("histogram", Table.Left); ("count", Table.Right); ("mean", Table.Right);
          ("min", Table.Right); ("max", Table.Right) ]
    in
    List.iter
      (fun h ->
        Table.add_row tbl
          [ h.h_name; string_of_int h.n; Printf.sprintf "%.4g" (mean h);
            Printf.sprintf "%.4g" (minimum h); Printf.sprintf "%.4g" (maximum h) ])
      hs;
    Buffer.add_string b (Table.render tbl)
  end;
  Buffer.contents b
