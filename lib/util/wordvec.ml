(* Flat, cache-friendly word storage for the wide-block simulators.

   A [Wordvec.t] is a C-layout [Bigarray] of [int64] words: unboxed
   element storage in one contiguous malloc'd block, outside the OCaml
   heap, so a simulation arena of [node_count * width] words has no
   per-element boxes and no GC scanning cost.  The fused kernels below
   make one pass over their operands with [unsafe_get]/[unsafe_set] —
   bounds are checked once per call, not once per word. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t =
  if n < 0 then invalid_arg "Wordvec.create";
  let a = Bigarray.Array1.create Bigarray.Int64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0L;
  a

let length (t : t) = Bigarray.Array1.dim t
let get (t : t) i : int64 = Bigarray.Array1.get t i
let set (t : t) i (v : int64) = Bigarray.Array1.set t i v
let unsafe_get (t : t) i : int64 = Bigarray.Array1.unsafe_get t i
let unsafe_set (t : t) i (v : int64) = Bigarray.Array1.unsafe_set t i v
let fill (t : t) (v : int64) = Bigarray.Array1.fill t v
let sub (t : t) pos len : t = Bigarray.Array1.sub t pos len

let blit ~src ~dst =
  if length src <> length dst then invalid_arg "Wordvec.blit: length mismatch";
  Bigarray.Array1.blit src dst

let same_len a b = if length a <> length b then invalid_arg "Wordvec: length mismatch"

let or_into ~dst src =
  same_len dst src;
  for i = 0 to length dst - 1 do
    unsafe_set dst i (Int64.logor (unsafe_get dst i) (unsafe_get src i))
  done

let and_popcount a b =
  same_len a b;
  let acc = ref 0 in
  for i = 0 to length a - 1 do
    acc := !acc + Bitvec.popcount_word (Int64.logand (unsafe_get a i) (unsafe_get b i))
  done;
  !acc

let xor_nonzero a b =
  same_len a b;
  let n = length a in
  let rec go i = i < n && (unsafe_get a i <> unsafe_get b i || go (i + 1)) in
  go 0

let iteri_words t f =
  for i = 0 to length t - 1 do
    f i (unsafe_get t i)
  done

let of_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> unsafe_set t i v) a;
  t

let to_array t = Array.init (length t) (unsafe_get t)
