(* Durable atomic publish: tmp-write, fsync file, rename, fsync dir.
   Individual fsyncs are best-effort (some file systems reject them);
   the rename itself is always attempted, so behaviour on those file
   systems degrades to the plain write-rename idiom. *)

let fsync_fd fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> fsync_fd fd)

(* Failpoint sites bracket each durability step so chaos tests can
   crash the process with the tmp file torn, complete-but-unsynced,
   synced-but-unrenamed, or renamed-but-with-a-stale-directory — a
   reader must see the old or the new contents in every case. *)
let write path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     f oc;
     flush oc;
     Failpoint.check "atomic.tmp_written";
     fsync_fd (Unix.descr_of_out_channel oc);
     Failpoint.check "atomic.synced";
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Failpoint.check "atomic.renamed";
  fsync_dir (Filename.dirname path)
