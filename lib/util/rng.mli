(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is exactly reproducible from a seed.  The generator is
    splitmix64 (Steele et al.), which has a 64-bit state, passes BigCrush,
    and is trivially splittable — good enough for workload generation and
    random-fill decisions, and dependency-free. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed].  Two generators
    created from equal seeds produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** Raw 64-bit state, for checkpointing. *)

val restore : int64 -> t
(** Rebuild a generator from {!state}'s output; the stream continues
    exactly where the captured generator left off. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 30 uniformly random non-negative bits (as [Random.bits]). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)
