(** Bounded retry with exponential backoff and full jitter.

    A {!policy} says how many attempts to make, how the delay between
    them grows, and how much wall-clock the whole operation (and each
    attempt) may spend.  {!run} drives a callback under the policy:
    the callback receives its attempt number and a {!Budget.t} slice
    (the per-attempt deadline clipped to the overall one) and either
    returns, or raises — a retryable exception before the last attempt
    sleeps a jittered backoff and tries again; anything else, or
    exhaustion, propagates.

    Backoff for the [n]-th failure is
    [min max_delay_s (base_delay_s * multiplier^(n-1))], drawn
    uniformly from [\[0, bound)] when [jitter] is on (full jitter,
    which decorrelates a thundering herd of clients), taken verbatim
    otherwise.  Clock, sleep and RNG are injectable so tests retry
    deterministically in zero wall-clock time. *)

type policy = {
  max_attempts : int;  (** total tries, including the first ([>= 1]) *)
  base_delay_s : float;  (** backoff bound after the first failure *)
  max_delay_s : float;  (** cap on the backoff bound *)
  multiplier : float;  (** exponential growth factor ([>= 1]) *)
  jitter : bool;  (** full jitter: draw uniformly from [\[0, bound)] *)
  attempt_budget_s : float option;  (** per-attempt deadline *)
  overall_budget_s : float option;  (** deadline across all attempts *)
}

val default : policy
(** 3 attempts, 50 ms base doubling to a 2 s cap, jitter on, no
    deadlines. *)

val backoff_s : policy -> Rng.t -> attempt:int -> float
(** The delay after failing [attempt] (1-based). *)

val run :
  ?clock:Budget.clock ->
  ?sleep:(float -> unit) ->
  ?rng:Rng.t ->
  ?on_retry:(attempt:int -> delay_s:float -> exn -> unit) ->
  policy ->
  retryable:(exn -> bool) ->
  (attempt:int -> budget:Budget.t -> 'a) ->
  'a
(** [run policy ~retryable f] calls [f ~attempt ~budget] until it
    returns.  A raise with [retryable exn = true] is retried while
    attempts remain and the overall deadline has not passed (the
    backoff is clipped to the time left); [on_retry] observes each
    retry before its sleep.  The last exception propagates unchanged.
    @raise Invalid_argument on a malformed policy. *)
