type severity = Error | Warning | Info

type code =
  | Syntax
  | Unknown_gate
  | Bad_arity
  | Duplicate_def
  | Undefined_ref
  | Combinational_cycle
  | No_outputs
  | Bad_cover
  | Bad_directive
  | Empty_input
  | Dead_logic
  | Constant_logic
  | Sequential_element
  | Checkpoint_format
  | Checkpoint_mismatch
  | Io_error
  | Invalid_flag
  | Budget_expired
  | Protocol
  | Overload

type location = { file : string option; line : int }

type t = { code : code; severity : severity; loc : location; message : string }

exception Failed of t

let no_location = { file = None; line = 0 }
let line ?file n = { file; line = n }

let make ?(severity = Error) ?(loc = no_location) code message =
  { code; severity; loc; message }

let error ?loc code fmt =
  Printf.ksprintf (fun m -> make ~severity:Error ?loc code m) fmt

let warning ?loc code fmt =
  Printf.ksprintf (fun m -> make ~severity:Warning ?loc code m) fmt

let fail ?loc code fmt =
  Printf.ksprintf (fun m -> raise (Failed (make ~severity:Error ?loc code m))) fmt

let code_string = function
  | Syntax -> "E-syntax"
  | Unknown_gate -> "E-unknown-gate"
  | Bad_arity -> "E-arity"
  | Duplicate_def -> "E-duplicate-def"
  | Undefined_ref -> "E-undefined-ref"
  | Combinational_cycle -> "E-cycle"
  | No_outputs -> "E-no-outputs"
  | Bad_cover -> "E-cover"
  | Bad_directive -> "E-directive"
  | Empty_input -> "E-empty"
  | Dead_logic -> "W-dead-logic"
  | Constant_logic -> "W-constant-logic"
  | Sequential_element -> "E-sequential"
  | Checkpoint_format -> "E-checkpoint-format"
  | Checkpoint_mismatch -> "E-checkpoint-mismatch"
  | Io_error -> "E-io"
  | Invalid_flag -> "E-flag"
  | Budget_expired -> "E-budget"
  | Protocol -> "E-protocol"
  | Overload -> "E-overload"

let all_codes =
  [ Syntax; Unknown_gate; Bad_arity; Duplicate_def; Undefined_ref; Combinational_cycle;
    No_outputs; Bad_cover; Bad_directive; Empty_input; Dead_logic; Constant_logic;
    Sequential_element; Checkpoint_format; Checkpoint_mismatch; Io_error; Invalid_flag;
    Budget_expired; Protocol; Overload ]

let code_of_string s = List.find_opt (fun c -> String.equal (code_string c) s) all_codes

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let location_string loc =
  match (loc.file, loc.line) with
  | None, 0 -> ""
  | None, n -> Printf.sprintf "line %d: " n
  | Some f, 0 -> Printf.sprintf "%s: " f
  | Some f, n -> Printf.sprintf "%s:%d: " f n

let to_string d =
  Printf.sprintf "%s%s: %s [%s]" (location_string d.loc)
    (severity_string d.severity) d.message (code_string d.code)

let is_error d = d.severity = Error

let count_errors ds = List.length (List.filter is_error ds)

let pp ppf d = Format.pp_print_string ppf (to_string d)
