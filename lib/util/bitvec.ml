type t = { len : int; w : int64 array }

let nwords len = (len + 63) lsr 6

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; w = Array.make (nwords len) 0L }

let length t = t.len
let words t = t.w

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of range"

let get t i =
  check t i;
  Int64.logand (Int64.shift_right_logical t.w.(i lsr 6) (i land 63)) 1L = 1L

let set t i b =
  check t i;
  let wi = i lsr 6 and bi = i land 63 in
  if b then t.w.(wi) <- Int64.logor t.w.(wi) (Int64.shift_left 1L bi)
  else t.w.(wi) <- Int64.logand t.w.(wi) (Int64.lognot (Int64.shift_left 1L bi))

(* Mask off padding bits in the last word so popcount/equal stay exact. *)
let normalise t =
  let r = t.len land 63 in
  if r <> 0 && Array.length t.w > 0 then begin
    let last = Array.length t.w - 1 in
    let mask = Int64.sub (Int64.shift_left 1L r) 1L in
    t.w.(last) <- Int64.logand t.w.(last) mask
  end

let fill t b =
  Array.fill t.w 0 (Array.length t.w) (if b then -1L else 0L);
  if b then normalise t

let copy t = { len = t.len; w = Array.copy t.w }

let equal a b = a.len = b.len && a.w = b.w

let popcount_word x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.w

let same_len a b = if a.len <> b.len then invalid_arg "Bitvec: width mismatch"

(* Fused intersection-popcount: one pass, no temporary vector — the
   ADI hot path asks "how many patterns detect both?" far more often
   than it needs the intersection itself. *)
let and_popcount a b =
  same_len a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.w - 1 do
    acc :=
      !acc + popcount_word (Int64.logand (Array.unsafe_get a.w i) (Array.unsafe_get b.w i))
  done;
  !acc

let union_into ~dst src =
  same_len dst src;
  for i = 0 to Array.length dst.w - 1 do
    dst.w.(i) <- Int64.logor dst.w.(i) src.w.(i)
  done

let inter_into ~dst src =
  same_len dst src;
  for i = 0 to Array.length dst.w - 1 do
    dst.w.(i) <- Int64.logand dst.w.(i) src.w.(i)
  done

let diff_into ~dst src =
  same_len dst src;
  for i = 0 to Array.length dst.w - 1 do
    dst.w.(i) <- Int64.logand dst.w.(i) (Int64.lognot src.w.(i))
  done

let xor_into ~dst src =
  same_len dst src;
  for i = 0 to Array.length dst.w - 1 do
    dst.w.(i) <- Int64.logxor dst.w.(i) src.w.(i)
  done

let iteri_words t f =
  for i = 0 to Array.length t.w - 1 do
    f i t.w.(i)
  done

(* Batch accumulate: one pass over the destination words, gathering all
   sources per word, instead of |srcs| full passes.  The gather loop
   touches each source word once, so the destination line stays hot. *)
let union_many ~dst srcs =
  Array.iter (fun s -> same_len dst s) srcs;
  let k = Array.length srcs in
  if k = 1 then union_into ~dst srcs.(0)
  else if k > 1 then
    for i = 0 to Array.length dst.w - 1 do
      let acc = ref dst.w.(i) in
      for j = 0 to k - 1 do
        acc := Int64.logor !acc (words srcs.(j)).(i)
      done;
      dst.w.(i) <- !acc
    done

let is_zero t = Array.for_all (fun w -> w = 0L) t.w

(* Constant-time count-trailing-zeros: isolate the lowest set bit and
   hash it through a de Bruijn sequence; the top 6 bits of the product
   are unique per bit position. *)
let debruijn = 0x03F79D71B4CB0A89L

let ctz_table =
  let tbl = Array.make 64 0 in
  for i = 0 to 63 do
    let hash =
      Int64.to_int (Int64.shift_right_logical (Int64.mul debruijn (Int64.shift_left 1L i)) 58)
    in
    tbl.(hash land 63) <- i
  done;
  tbl

let ctz w =
  if w = 0L then 64
  else
    let low = Int64.logand w (Int64.neg w) in
    ctz_table.(Int64.to_int (Int64.shift_right_logical (Int64.mul low debruijn) 58) land 63)

let iter_set t f =
  for wi = 0 to Array.length t.w - 1 do
    let w = ref t.w.(wi) in
    while !w <> 0L do
      f ((wi lsl 6) + ctz !w);
      w := Int64.logand !w (Int64.sub !w 1L)
    done
  done

let first_set t =
  let n = Array.length t.w in
  let rec go wi =
    if wi >= n then None
    else if t.w.(wi) = 0L then go (wi + 1)
    else Some ((wi lsl 6) + ctz t.w.(wi))
  in
  go 0

let random rng len =
  let t = create len in
  for i = 0 to Array.length t.w - 1 do
    t.w.(i) <- Rng.int64 rng
  done;
  normalise t;
  t

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i b -> if b then set t i true) a;
  t

let to_bool_array t = Array.init t.len (get t)

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
