(** Packed bit vectors over [int64] words.

    The fault simulator evaluates 64 input patterns per gate visit
    ("parallel-pattern" simulation); a [Bitvec.t] holds one logic value
    per pattern.  Width is fixed at creation; out-of-range indices raise
    [Invalid_argument]. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. *)

val length : t -> int
(** Number of bits. *)

val words : t -> int64 array
(** Underlying word array (word [i] holds bits [64i .. 64i+63], bit [j]
    of the word being pattern [64i + j]).  Exposed for the simulator's
    inner loops; treat as read-only elsewhere. *)

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val fill : t -> bool -> unit
(** Set every bit (including tail padding normalised to the value's
    canonical form: padding bits beyond [length] are kept zero). *)

val copy : t -> t
val equal : t -> t -> bool

val normalise : t -> unit
(** Clear the padding bits beyond [length] in the last word.  Callers
    that write whole words through {!words} must normalise afterwards
    so {!popcount}/{!equal} stay exact. *)

val popcount : t -> int
(** Number of set bits. *)

val popcount_word : int64 -> int
(** Set bits of one raw word (SWAR; the simulators' inner-loop
    primitive). *)

val and_popcount : t -> t -> int
(** [and_popcount a b] is [popcount] of the intersection, computed in
    one fused pass with no temporary vector.  [and_popcount a b > 0]
    is the allocation-free overlap test.  Widths must match. *)

val ctz : int64 -> int
(** Count trailing zeros of a raw word via a de Bruijn multiply: the
    index of the lowest set bit, or 64 for [0L].  Constant time. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ORs [src] into [dst].  Widths must match. *)

val inter_into : dst:t -> t -> unit
(** AND into [dst]. *)

val diff_into : dst:t -> t -> unit
(** [dst <- dst AND NOT src]. *)

val xor_into : dst:t -> t -> unit
(** [dst <- dst XOR src].  Widths must match.  Because both operands
    keep their padding bits zero, the result is already normalised. *)

val union_many : dst:t -> t array -> unit
(** [union_many ~dst srcs] ORs every vector of [srcs] into [dst] in a
    single pass over the destination words (the batch-accumulate
    kernel behind detection-set unions).  Widths must match; an empty
    array is a no-op. *)

val iteri_words : t -> (int -> int64 -> unit) -> unit
(** [iteri_words t f] calls [f i w] for every underlying word, in
    increasing word index — the word-block iteration primitive for
    callers that consume 64 bits at a time.  Word [i] covers bits
    [64i .. 64i+63]; padding bits of the last word are zero. *)

val is_zero : t -> bool

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] calls [f i] for every set bit [i], in increasing
    order. *)

val first_set : t -> int option
(** Lowest set bit index, if any. *)

val random : Rng.t -> int -> t
(** [random rng n] is a vector of [n] fair-coin bits. *)

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val pp : Format.formatter -> t -> unit
(** Bits as a ['0'/'1'] string, pattern 0 first. *)
