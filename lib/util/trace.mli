(** Nestable wall-clock spans, structured events, and a JSONL sink.

    A tracer owns a {!Metrics.t} registry, an injectable clock (reusing
    {!Budget.clock}, so tests drive time deterministically), and an
    optional event sink.  The process-wide {e current} tracer defaults
    to {!null}, whose every operation is a no-op behind a single branch
    — instrumentation left in place costs nothing measurable when
    observability is off.

    Tracers are {b leader-domain-only}: emit spans and update handles
    from the domain that owns the tracer.  Worker lanes accumulate into
    private storage (workspace counters, per-lane busy arrays) that the
    leader merges after a fork-join.

    {2 Span naming convention}

    Dot-separated [component.phase] names, lowercase:
    [pipeline.prepare], [prepare.select_u], [engine.pass],
    [faultsim.detection_sets].  Nested spans carry their [depth] so a
    reader can reconstruct the tree from a flat JSONL stream (children
    are emitted before their parents, at a greater depth). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * value) list

type event =
  | Span of { name : string; at_s : float; dur_s : float; depth : int; attrs : attrs }
      (** A closed span: [at_s] is its start relative to the tracer's
          creation, [dur_s] its wall-clock duration. *)
  | Instant of { name : string; at_s : float; attrs : attrs }
      (** A point event (run start/end, budget expiry, …). *)
  | Counter of { name : string; value : int; attrs : attrs }
      (** Cumulative counter value at flush time. *)
  | Hist of { name : string; n : int; sum : float; min_v : float; max_v : float; attrs : attrs }
      (** Histogram summary at flush time. *)

val schema : string
(** ["adi_trace/v1"] — carried by every JSONL line. *)

val to_json : event -> string
(** One self-describing single-line JSON object (no trailing
    newline). *)

val of_json : string -> (event, string) result
(** Parse a line produced by {!to_json}.  Round-trips exactly
    (including float precision). *)

(** {1 Tracers} *)

type t

val null : t
(** The disabled tracer: spans run their body directly, handles are
    dummies, nothing is emitted. *)

val make : ?clock:Budget.clock -> ?sink:(event -> unit) -> unit -> t
(** A live tracer.  [clock] defaults to {!Budget.default_clock};
    [sink] receives every span/instant as it closes and the metrics
    summary on {!flush_metrics} (no sink: metrics-only tracing). *)

val enabled : t -> bool
val metrics : t -> Metrics.t

val elapsed_s : t -> float
(** Seconds since the tracer was created (0 when disabled). *)

val span : t -> ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()], emits a [Span] event when it returns
    or raises, and folds the duration into the ["span:<name>"]
    histogram that {!Metrics.report} renders as the phase table. *)

val instant : t -> ?attrs:attrs -> string -> unit

val emit_span : t -> ?attrs:attrs -> string -> start_s:float -> dur_s:float -> unit
(** Record an externally timed span (depth 0): folds [dur_s] into the
    ["span:<name>"] histogram and emits a [Span] event whose start is
    the {!now_s} reading [start_s].  For callers that cannot run the
    timed body inside {!span} — e.g. a server worker domain that times
    a request privately and publishes it under a lock. *)

val now_s : t -> float
(** A raw clock read (0 when disabled) — for accumulating class-bucketed
    durations without a closure per sample. *)

val time : t -> Metrics.histogram -> (unit -> 'a) -> 'a
(** Time the callback into a histogram without emitting a span event —
    for per-block or per-test measurements that would flood the
    sink. *)

val counter : t -> string -> Metrics.counter
(** Shorthand for [Metrics.counter (metrics t)]. *)

val histogram : t -> string -> Metrics.histogram

val flush_metrics : t -> unit
(** Emit one [Counter]/[Hist] event per registry entry to the sink
    (cumulative values; a reader keeps the last event per name). *)

(** {1 The current tracer} *)

val current : unit -> t
(** The installed tracer, {!null} by default. *)

val set_current : t -> unit

val with_current : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, restoring the
    previous tracer afterwards. *)

val file_sink : out_channel -> event -> unit
(** Write each event as one JSONL line and flush, so concurrent
    processes appending to the same file keep whole lines. *)

val install_from_env : unit -> unit
(** Test-suite hook: [ADI_METRICS=1] installs a metrics-collecting
    tracer whose report is printed to stderr at exit;
    [ADI_TRACE=prefix] additionally streams events to
    [<prefix>.<pid>.jsonl] (append mode — one file per process, so
    parallel test binaries never interleave).  No-op when neither
    variable is set. *)
