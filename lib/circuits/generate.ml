module Rng = Util.Rng
module B = Circuit.Builder

type profile = {
  pis : int;
  gates : int;
  outputs : int;
  locality : float;
  reconvergence : float;
}

let profile ?outputs ~pis ~gates () =
  if pis <= 0 || gates <= 0 then invalid_arg "Generate.profile: pis and gates must be positive";
  let outputs = match outputs with Some o -> max 1 o | None -> max 2 (pis / 2) in
  { pis; gates; outputs; locality = 0.6; reconvergence = 0.2 }

(* Weighted gate-kind mix, roughly the profile of synthesised benchmark
   logic: NAND-rich, with enough parity gates that fault effects
   propagate (XOR never masks), which keeps random logic testable. *)
let pick_kind rng =
  let r = Rng.int rng 100 in
  if r < 25 then Gate.Nand
  else if r < 40 then Gate.Nor
  else if r < 55 then Gate.And
  else if r < 70 then Gate.Or
  else if r < 80 then Gate.Not
  else if r < 90 then Gate.Xor
  else if r < 95 then Gate.Xnor
  else Gate.Buf

let pick_arity rng k =
  match k with
  | Gate.Not | Gate.Buf -> 1
  | Gate.Xor | Gate.Xnor -> 2
  | _ ->
      let r = Rng.int rng 10 in
      if r < 7 then 2 else if r < 9 then 3 else 4

let random ?(seed = 0) ~name prof =
  let rng = Rng.create seed in
  let b = B.create ~title:name () in
  let n_total = prof.pis + prof.gates in
  let nodes = Array.make n_total 0 in
  let fanout_count = Array.make n_total 0 in
  for i = 0 to prof.pis - 1 do
    nodes.(i) <- B.input b (Printf.sprintf "pi%d" i)
  done;
  let total = ref prof.pis in
  for g = 0 to prof.gates - 1 do
    let k = pick_kind rng in
    let arity = min (pick_arity rng k) !total in
    (* Draw distinct fanins; locality biases towards recent nodes to
       deepen the circuit, the rest create reconvergent fanout. *)
    let window = max 8 (!total / 4) in
    let chosen = ref [] in
    let attempts = ref 0 in
    while List.length !chosen < arity && !attempts < 64 do
      incr attempts;
      let idx =
        if Rng.float rng 1.0 < prof.locality && !total > window then
          !total - 1 - Rng.int rng window
        else Rng.int rng !total
      in
      if not (List.mem idx !chosen) then chosen := idx :: !chosen
    done;
    let rec pad i =
      if List.length !chosen < arity && i < !total then begin
        if not (List.mem i !chosen) then chosen := i :: !chosen;
        pad (i + 1)
      end
    in
    pad 0;
    let chosen = List.rev !chosen in
    List.iter (fun idx -> fanout_count.(idx) <- fanout_count.(idx) + 1) chosen;
    nodes.(!total) <- B.gate b k (Printf.sprintf "g%d" g) (List.map (fun i -> nodes.(i)) chosen);
    incr total
  done;
  (* Every sink is observed, so no logic is structurally dead.  Sinks
     occur naturally at roughly a quarter of the nodes; [prof.outputs]
     only acts as a lower bound, which unbiased draws always exceed. *)
  for i = 0 to n_total - 1 do
    if fanout_count.(i) = 0 then B.mark_output b nodes.(i)
  done;
  B.finish b

(* --- parameterised scalable family -------------------------------- *)

(* [random] above is frozen: the regression suite's circuits (syn208 …
   syn13207) are its output and their netlists are pinned by cram and
   bench history, so its draw sequence must never change.  The family
   generator below is a separate code path built for scale (10^5–10^6
   gates): O(1) fanin draws via an explicit fresh-node pool with
   swap-removal, and direct fanout/reconvergence control. *)

type spec = {
  s_gates : int;
  s_pis : int;
  s_outputs : int option;  (* sink floor; [None] derives from [s_pis] *)
  s_seed : int;
  s_locality : float;
  s_reconvergence : float;
  s_max_arity : int;
}

let bad fmt = Util.Diagnostics.fail Util.Diagnostics.Invalid_flag fmt

let default_spec =
  {
    s_gates = 10_000;
    s_pis = 64;
    s_outputs = None;
    s_seed = 0;
    s_locality = 0.6;
    s_reconvergence = 0.3;
    s_max_arity = 4;
  }

let validate_spec s =
  if s.s_gates < 1 then bad "--gen gates must be at least 1 (got %d)" s.s_gates;
  if s.s_pis < 1 then bad "--gen pis must be at least 1 (got %d)" s.s_pis;
  (match s.s_outputs with
  | Some o when o < 1 -> bad "--gen outputs must be at least 1 (got %d)" o
  | _ -> ());
  if not (s.s_locality >= 0.0 && s.s_locality <= 1.0) then
    bad "--gen locality must be in [0, 1] (got %g)" s.s_locality;
  if not (s.s_reconvergence >= 0.0 && s.s_reconvergence <= 1.0) then
    bad "--gen reconv must be in [0, 1] (got %g)" s.s_reconvergence;
  if s.s_max_arity < 2 || s.s_max_arity > 8 then
    bad "--gen arity must be in [2, 8] (got %d)" s.s_max_arity;
  s

(* "gates=100k,reconv=0.3,seed=7": comma-separated key=value pairs over
   [default_spec].  Integers accept k/m suffixes (100k = 100_000). *)
let spec_of_string text =
  let suffixed_int key v =
    let n = String.length v in
    let mul, core =
      if n = 0 then (1, v)
      else
        match v.[n - 1] with
        | 'k' | 'K' -> (1_000, String.sub v 0 (n - 1))
        | 'm' | 'M' -> (1_000_000, String.sub v 0 (n - 1))
        | _ -> (1, v)
    in
    match int_of_string_opt core with
    | Some i -> i * mul
    | None -> bad "--gen %s expects an integer (got %S)" key v
  in
  let float_val key v =
    match float_of_string_opt v with
    | Some x -> x
    | None -> bad "--gen %s expects a number (got %S)" key v
  in
  let apply s item =
    if item = "" then s
    else
      match String.index_opt item '=' with
      | None -> bad "--gen expects key=value pairs (got %S)" item
      | Some i -> (
          let key = String.sub item 0 i in
          let v = String.sub item (i + 1) (String.length item - i - 1) in
          match key with
          | "gates" -> { s with s_gates = suffixed_int key v }
          | "pis" -> { s with s_pis = suffixed_int key v }
          | "outputs" -> { s with s_outputs = Some (suffixed_int key v) }
          | "seed" -> { s with s_seed = suffixed_int key v }
          | "locality" | "loc" -> { s with s_locality = float_val key v }
          | "reconvergence" | "reconv" -> { s with s_reconvergence = float_val key v }
          | "arity" -> { s with s_max_arity = suffixed_int key v }
          | _ ->
              bad
                "--gen: unknown key %S (expected gates, pis, outputs, seed, locality, \
                 reconv or arity)"
                key)
  in
  validate_spec (List.fold_left apply default_spec (String.split_on_char ',' text))

let spec_to_string s =
  Printf.sprintf "gates=%d,pis=%d%s,seed=%d,locality=%g,reconv=%g,arity=%d" s.s_gates s.s_pis
    (match s.s_outputs with Some o -> Printf.sprintf ",outputs=%d" o | None -> "")
    s.s_seed s.s_locality s.s_reconvergence s.s_max_arity

let family_arity rng max_arity k =
  match k with
  | Gate.Not | Gate.Buf -> 1
  | Gate.Xor | Gate.Xnor -> 2
  | _ ->
      let r = Rng.int rng 10 in
      if r < 7 || max_arity = 2 then 2
      else if r < 9 || max_arity = 3 then 3
      else 4 + Rng.int rng (max_arity - 3)

let build ?name spec =
  let spec = validate_spec spec in
  let name = match name with Some n -> n | None -> "gen[" ^ spec_to_string spec ^ "]" in
  let rng = Rng.create spec.s_seed in
  let b = B.create ~title:name () in
  let n_total = spec.s_pis + spec.s_gates in
  let out_floor =
    match spec.s_outputs with Some o -> max 1 o | None -> max 2 (spec.s_pis / 2)
  in
  let nodes = Array.make n_total 0 in
  (* Fresh pool: nodes no gate has consumed yet.  [pos.(i)] is node
     [i]'s slot in [fresh], or -1 once consumed — swap-removal keeps
     every draw O(1), which is what lets the family reach 10^6 gates. *)
  let fresh = Array.make n_total 0 in
  let fresh_len = ref 0 in
  let pos = Array.make n_total (-1) in
  let push i =
    fresh.(!fresh_len) <- i;
    pos.(i) <- !fresh_len;
    incr fresh_len
  in
  let consume i =
    let p = pos.(i) in
    if p >= 0 then begin
      let last = fresh.(!fresh_len - 1) in
      fresh.(p) <- last;
      pos.(last) <- p;
      decr fresh_len;
      pos.(i) <- -1
    end
  in
  for i = 0 to spec.s_pis - 1 do
    nodes.(i) <- B.input b (Printf.sprintf "pi%d" i);
    push i
  done;
  let total = ref spec.s_pis in
  (* One fanin draw.  The reconvergence fraction reuses any existing
     node (multi-fanout stems, reconvergent paths); the rest take a
     fresh node — recency-biased so the circuit deepens — keeping the
     backbone tree-like and hence largely irredundant.  The fresh pool
     is never drained below the sink floor. *)
  let draw_fanin () =
    if !fresh_len <= out_floor || Rng.float rng 1.0 < spec.s_reconvergence then
      Rng.int rng !total
    else if Rng.float rng 1.0 < spec.s_locality then
      fresh.(!fresh_len - 1 - Rng.int rng (min (max 8 (!fresh_len / 4)) !fresh_len))
    else fresh.(Rng.int rng !fresh_len)
  in
  for g = 0 to spec.s_gates - 1 do
    let k = pick_kind rng in
    let arity = min (family_arity rng spec.s_max_arity k) !total in
    let chosen = ref [] in
    let n_chosen = ref 0 in
    let attempts = ref 0 in
    while !n_chosen < arity && !attempts < 64 do
      incr attempts;
      let idx = draw_fanin () in
      if not (List.mem idx !chosen) then begin
        chosen := idx :: !chosen;
        incr n_chosen
      end
    done;
    let rec pad i =
      if !n_chosen < arity && i < !total then begin
        if not (List.mem i !chosen) then begin
          chosen := i :: !chosen;
          incr n_chosen
        end;
        pad (i + 1)
      end
    in
    pad 0;
    let chosen = List.rev !chosen in
    List.iter consume chosen;
    nodes.(!total) <- B.gate b k (Printf.sprintf "g%d" g) (List.map (fun i -> nodes.(i)) chosen);
    push !total;
    incr total
  done;
  (* Unconsumed nodes are the sinks; at least [out_floor] of them
     survive by construction, and every one is observed so no logic is
     structurally dead. *)
  for j = 0 to !fresh_len - 1 do
    B.mark_output b nodes.(fresh.(j))
  done;
  B.finish b

(* Structural digest: gate kinds, fanin wiring, PI/PO sets — no names,
   no titles — so it identifies the generated function-structure
   itself.  The determinism contract (same spec => same digest) is what
   the bench history and the qcheck suite pin. *)
let digest c =
  let buf = Buffer.create (Circuit.node_count c * 8) in
  Buffer.add_string buf (string_of_int (Circuit.node_count c));
  Circuit.iter_nodes c (fun n ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Gate.to_string (Circuit.kind c n));
      Array.iter
        (fun f ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int f))
        (Circuit.fanins c n));
  Buffer.add_char buf '|';
  Array.iter
    (fun i ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int i))
    (Circuit.inputs c);
  Buffer.add_char buf '|';
  Array.iter
    (fun o ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int o))
    (Circuit.outputs c);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let revive_dead_inputs rng c =
  let dead =
    Array.to_list (Circuit.inputs c)
    |> List.filter (fun pi -> Circuit.fanout_count c pi = 0 && not (Circuit.is_output c pi))
  in
  if dead = [] then c
  else begin
    (* Patch sites: live gates with at least one fanin. *)
    let gates = ref [] in
    Circuit.iter_nodes c (fun n ->
        if Array.length (Circuit.fanins c n) > 0 && Circuit.kind c n <> Gate.Dff then
          gates := n :: !gates);
    let gates = Array.of_list !gates in
    if Array.length gates = 0 then c
    else begin
      (* dead PI -> gate whose pin 0 gets an XOR patch *)
      let patch = Hashtbl.create 8 in
      List.iter
        (fun pi ->
          let g = gates.(Rng.int rng (Array.length gates)) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt patch g) in
          Hashtbl.replace patch g (pi :: cur))
        dead;
      let b = B.create ~title:(Circuit.title c) () in
      let ids = Array.make (Circuit.node_count c) (-1) in
      Array.iter (fun pi -> ids.(pi) <- B.input b (Circuit.name c pi)) (Circuit.inputs c);
      Array.iter
        (fun n ->
          if ids.(n) < 0 then
            match Circuit.kind c n with
            | Gate.Input -> ()
            | k ->
                let fanins = Array.map (fun f -> ids.(f)) (Circuit.fanins c n) in
                (match Hashtbl.find_opt patch n with
                | Some pis ->
                    let x =
                      B.gate b Gate.Xor
                        (Circuit.name c n ^ "_rv")
                        (fanins.(0) :: List.map (fun pi -> ids.(pi)) pis)
                    in
                    fanins.(0) <- x
                | None -> ());
                ids.(n) <- B.gate b k (Circuit.name c n) (Array.to_list fanins))
        (Circuit.topological_order c);
      Array.iter (fun o -> B.mark_output b ids.(o)) (Circuit.outputs c);
      B.finish b
    end
  end
