type fsm = {
  name : string;
  n_inputs : int;
  n_outputs : int;
  states : string array;
  transitions : (string * string * string * string) array;
}

module D = Util.Diagnostics

let parse_string ?file ?(name = "fsm") text =
  let fail line code fmt = D.fail ~loc:{ file; line } code fmt in
  let n_inputs = ref (-1) and n_outputs = ref (-1) in
  let reset = ref None in
  let transitions = ref [] in
  let state_order = ref [] in
  let see_state s = if not (List.mem s !state_order) then state_order := s :: !state_order in
  List.iteri
    (fun lineno raw ->
      let line = String.trim raw in
      let lineno = lineno + 1 in
      if line = "" || line.[0] = '#' then ()
      else if line.[0] = '.' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ ".i"; v ] -> n_inputs := int_of_string v
        | [ ".o"; v ] -> n_outputs := int_of_string v
        | [ ".p"; _ ] | [ ".s"; _ ] -> ()
        | [ ".r"; s ] -> reset := Some s
        | [ ".e" ] | [ ".end" ] -> ()
        | _ -> fail lineno D.Bad_directive "unknown directive %S" line
      end
      else
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ inp; cur; nxt; out ] ->
            if !n_inputs >= 0 && String.length inp <> !n_inputs then
              fail lineno D.Syntax "input pattern %S has wrong width" inp;
            if !n_outputs >= 0 && String.length out <> !n_outputs then
              fail lineno D.Syntax "output pattern %S has wrong width" out;
            see_state cur;
            see_state nxt;
            transitions := (inp, cur, nxt, out) :: !transitions
        | _ -> fail lineno D.Syntax "malformed transition %S" line)
    (String.split_on_char '\n' text);
  if !n_inputs < 0 then fail 0 D.Bad_directive "missing .i";
  if !n_outputs < 0 then fail 0 D.Bad_directive "missing .o";
  let states = List.rev !state_order in
  let states =
    match !reset with
    | None -> states
    | Some r ->
        if not (List.mem r states) then fail 0 D.Undefined_ref "reset state %S has no transition" r;
        r :: List.filter (fun s -> s <> r) states
  in
  {
    name;
    n_inputs = !n_inputs;
    n_outputs = !n_outputs;
    states = Array.of_list states;
    transitions = Array.of_list (List.rev !transitions);
  }

let state_bits fsm =
  let n = Array.length fsm.states in
  let rec bits k = if 1 lsl k >= n then k else bits (k + 1) in
  max 1 (bits 0)

let state_code fsm s =
  let rec go i = if fsm.states.(i) = s then i else go (i + 1) in
  go 0

let pattern_matches pat v width =
  let ok = ref true in
  for i = 0 to width - 1 do
    (* Character 0 of the pattern is the most significant input. *)
    let bit = (v lsr (width - 1 - i)) land 1 in
    match pat.[i] with
    | '-' -> ()
    | '0' -> if bit <> 0 then ok := false
    | '1' -> if bit <> 1 then ok := false
    | c -> invalid_arg (Printf.sprintf "Kiss: bad pattern character %C" c)
  done;
  !ok

(* Truth table of (outputs, next-state code) over (inputs, state code);
   unspecified entries reset to state 0 with outputs 0. *)
let lookup fsm in_v st_code =
  if st_code >= Array.length fsm.states then (Array.make fsm.n_outputs false, 0)
  else begin
    let cur = fsm.states.(st_code) in
    let hit = ref None in
    Array.iter
      (fun (inp, c, nxt, out) ->
        if !hit = None && c = cur && pattern_matches inp in_v fsm.n_inputs then
          hit := Some (nxt, out))
      fsm.transitions;
    match !hit with
    | None -> (Array.make fsm.n_outputs false, 0)
    | Some (nxt, out) ->
        let outs =
          Array.init fsm.n_outputs (fun i ->
              match out.[i] with '1' -> true | '0' | '-' -> false | _ -> false)
        in
        (outs, state_code fsm nxt)
  end

let on_sets fsm =
  let sb = state_bits fsm in
  let n = fsm.n_inputs + sb in
  if n > 16 then invalid_arg "Kiss: FSM too large to synthesise (inputs + state bits > 16)";
  let out_on = Array.make fsm.n_outputs [] in
  let nst_on = Array.make sb [] in
  for m = 0 to (1 lsl n) - 1 do
    (* Variable layout (LSB first): in0 .. in(k-1), st0 .. st(sb-1);
       in0 is the FSM's *last* pattern character being the LSB would be
       confusing, so we put in0 = leftmost pattern character at the
       highest input bit index below. *)
    let in_v = ref 0 in
    for i = 0 to fsm.n_inputs - 1 do
      (* bit for input i (pattern position i, MSB first) *)
      if (m lsr i) land 1 = 1 then in_v := !in_v lor (1 lsl (fsm.n_inputs - 1 - i))
    done;
    let st_code = m lsr fsm.n_inputs in
    let outs, nxt = lookup fsm !in_v st_code in
    Array.iteri (fun o v -> if v then out_on.(o) <- m :: out_on.(o)) outs;
    for sbit = 0 to sb - 1 do
      if (nxt lsr sbit) land 1 = 1 then nst_on.(sbit) <- m :: nst_on.(sbit)
    done
  done;
  (out_on, nst_on)

let input_names fsm =
  let sb = state_bits fsm in
  Array.init
    (fsm.n_inputs + sb)
    (fun i -> if i < fsm.n_inputs then Printf.sprintf "in%d" i else Printf.sprintf "st%d" (i - fsm.n_inputs))

let to_combinational fsm =
  let sb = state_bits fsm in
  let out_on, nst_on = on_sets fsm in
  let outputs =
    List.init fsm.n_outputs (fun o -> (Printf.sprintf "out%d" o, out_on.(o)))
    @ List.init sb (fun s -> (Printf.sprintf "nst%d" s, nst_on.(s)))
  in
  Twolevel.synthesize ~name:(fsm.name ^ "_comb") ~n_inputs:(fsm.n_inputs + sb)
    ~input_names:(input_names fsm) outputs

let to_sequential fsm =
  let comb = to_combinational fsm in
  let sb = state_bits fsm in
  let b = Circuit.Builder.create ~title:fsm.name () in
  let ids = Array.make (Circuit.node_count comb) (-1) in
  (* Real inputs stay inputs; state inputs become DFF outputs. *)
  let dffs = Array.init sb (fun s -> Circuit.Builder.dff b (Printf.sprintf "st%d" s)) in
  Array.iter
    (fun pi ->
      let nm = Circuit.name comb pi in
      if String.length nm >= 2 && String.sub nm 0 2 = "st" then
        ids.(pi) <- dffs.(int_of_string (String.sub nm 2 (String.length nm - 2)))
      else ids.(pi) <- Circuit.Builder.input b nm)
    (Circuit.inputs comb);
  Array.iter
    (fun n ->
      if ids.(n) < 0 then
        match Circuit.kind comb n with
        | Gate.Input -> ()
        | k ->
            let fanins = Array.to_list (Array.map (fun f -> ids.(f)) (Circuit.fanins comb n)) in
            ids.(n) <- Circuit.Builder.gate b k (Circuit.name comb n) fanins)
    (Circuit.topological_order comb);
  (* Wire next-state logic into the flip-flops; outputs stay outputs. *)
  Array.iter
    (fun o ->
      let nm = Circuit.name comb o in
      if String.length nm >= 3 && String.sub nm 0 3 = "nst" then
        Circuit.Builder.connect_dff b
          dffs.(int_of_string (String.sub nm 3 (String.length nm - 3)))
          ~fanin:ids.(o)
      else Circuit.Builder.mark_output b ids.(o))
    (Circuit.outputs comb);
  Circuit.Builder.finish b

let lion () =
  parse_string ~name:"lion"
    {|# Quadrature-tracking FSM standing in for MCNC lion:
# 2 Gray-coded inputs, 4 states, 1 output.
.i 2
.o 1
.s 4
.p 11
.r st0
00 st0 st0 0
01 st0 st1 0
10 st0 st3 0
01 st1 st1 1
11 st1 st2 1
00 st1 st0 1
11 st2 st2 1
10 st2 st3 1
01 st2 st1 1
10 st3 st3 0
00 st3 st0 0
|}

let simulate fsm seq =
  let state = ref 0 in
  List.map
    (fun (inputs : bool array) ->
      if Array.length inputs <> fsm.n_inputs then
        invalid_arg "Kiss.simulate: input width mismatch";
      (* in0 is the leftmost (most significant) pattern character. *)
      let in_v = ref 0 in
      Array.iteri
        (fun i b -> if b then in_v := !in_v lor (1 lsl (fsm.n_inputs - 1 - i)))
        inputs;
      let outs, next = lookup fsm !in_v !state in
      state := next;
      outs)
    seq

let sequence_detector ~pattern =
  let k = String.length pattern in
  if k = 0 || k > 15 then invalid_arg "Kiss.sequence_detector: pattern length 1..15";
  String.iter
    (fun ch -> if ch <> '0' && ch <> '1' then invalid_arg "Kiss.sequence_detector: binary pattern")
    pattern;
  (* State i = longest matched prefix has length i (0..k-1); on a full
     match the automaton falls back to the longest proper border. *)
  let matches_prefix s len = String.sub pattern 0 len = s in
  let step i b =
    (* longest j such that pattern[0..j) is a suffix of prefix_i + b *)
    let s = String.sub pattern 0 i ^ String.make 1 b in
    let n = String.length s in
    let rec best j =
      if j = 0 then 0
      else if matches_prefix (String.sub s (n - j) j) j then j
      else best (j - 1)
    in
    best (min (k - 1) n)
    (* capped at k-1: a completed match emits 1 and continues from the
       longest proper border *)
  in
  let full_match i b = i = k - 1 && pattern.[k - 1] = b in
  let transitions = ref [] in
  for i = 0 to k - 1 do
    List.iter
      (fun b ->
        let nxt = step i b in
        let out = if full_match i b then "1" else "0" in
        transitions :=
          (String.make 1 b, Printf.sprintf "s%d" i, Printf.sprintf "s%d" nxt, out)
          :: !transitions)
      [ '0'; '1' ]
  done;
  {
    name = Printf.sprintf "seq%s" pattern;
    n_inputs = 1;
    n_outputs = 1;
    states = Array.init k (fun i -> Printf.sprintf "s%d" i);
    transitions = Array.of_list (List.rev !transitions);
  }
