(** KISS2 finite-state-machine descriptions and their synthesis.

    The paper's worked example (Table 1, Section 2/3) uses the
    combinational logic of MCNC FSM benchmark [lion].  This module
    parses the KISS2 format, encodes states in binary, and synthesises
    the next-state/output logic through {!Twolevel} — either as a pure
    combinational block (state bits as extra PIs/POs, the full-scan
    view) or as a sequential circuit with flip-flops.

    Entries of the transition table absent from the description are
    treated as "reset": next state is the initial state and outputs are
    0 (KISS2 leaves them unspecified; a fixed completion keeps
    synthesis deterministic). *)

type fsm = {
  name : string;
  n_inputs : int;
  n_outputs : int;
  states : string array;  (** in order of first appearance; [states.(0)] is the reset state *)
  transitions : (string * string * string * string) array;
      (** (input pattern with '-', current state, next state, output
          pattern with '-') *)
}

(** Parse a KISS2 description.  [file] only labels diagnostics.
    @raise Util.Diagnostics.Failed on malformed input. *)
val parse_string : ?file:string -> ?name:string -> string -> fsm
val state_bits : fsm -> int

val to_combinational : fsm -> Circuit.t
(** Inputs: FSM inputs [in0 ..] then state bits [st0 ..] (st0 = LSB of
    the state code).  Outputs: FSM outputs [out0 ..] then next-state
    bits [nst0 ..]. *)

val to_sequential : fsm -> Circuit.t
(** Same logic with the state held in DFFs (a cyclic netlist);
    {!Scan.combinational} recovers {!to_combinational}'s structure. *)

val lion : unit -> fsm
(** A 4-state, 2-input, 1-output quadrature-tracking FSM standing in
    for MCNC [lion] (the original MCNC file cannot be redistributed
    here; this reconstruction has the same interface and state count,
    which is what the paper's example depends on). *)

val simulate : fsm -> bool array list -> bool array list
(** Reference transition-table semantics: run an input sequence from
    the reset state and collect each cycle's output vector (unspecified
    table entries read as all-zero outputs with a reset next state, the
    same completion {!to_combinational} synthesises).  Used to validate
    the synthesis path end-to-end. *)

val sequence_detector : pattern:string -> fsm
(** A Mealy-style sequence detector over a 1-bit input: output 1
    exactly when the last [String.length pattern] input bits spell
    [pattern] (overlaps allowed — the classic KMP prefix automaton).
    [pattern] must be a non-empty string of ['0']/['1'] of length at
    most 15.  A second, parametric FSM workload alongside {!lion}. *)
