(** Seeded random multi-level logic.

    The generator grows a circuit gate by gate.  Most fanins are drawn
    from a pool of not-yet-consumed nodes, keeping the structure close
    to a tree — trees have no redundancy, so the raw circuit is largely
    testable, like the synthesised (and redundancy-removed) benchmark
    logic it stands in for.  A [reconvergence] fraction of draws reuses
    already-consumed nodes, creating fanout and reconvergent paths.  A
    recency bias makes the circuit deep rather than wide.  Every
    unconsumed node becomes a primary output, so no logic is dead by
    construction.

    Identical parameters and seed always produce the identical
    circuit. *)

type profile = {
  pis : int;  (** primary inputs *)
  gates : int;  (** logic gates to create *)
  outputs : int;
      (** approximate primary-output count: the fresh pool is never
          drained below this floor, so about this many sinks remain *)
  locality : float;
      (** probability of drawing from the recent window rather than
          uniformly (default 0.6) *)
  reconvergence : float;
      (** probability a fanin reuses an already-consumed node (default
          0.2) *)
}

val profile : ?outputs:int -> pis:int -> gates:int -> unit -> profile
(** [outputs] defaults to [max 2 (pis / 2)]. *)

val random : ?seed:int -> name:string -> profile -> Circuit.t
(** Default [seed = 0].  {b Frozen}: the regression suite's syn*
    circuits are this generator's output and their netlists are pinned
    downstream, so the draw sequence never changes.  New knobs belong
    in the {!spec} family below. *)

(** {1 Parameterised scalable family}

    A second generator built for scale (10^5–10^6 gates): O(1) fanin
    draws via an explicit fresh-node pool, plus direct reconvergence
    and fanout (arity) control.  Identical spec always produces the
    identical circuit, certified by {!digest}. *)

type spec = {
  s_gates : int;  (** logic gates to create *)
  s_pis : int;  (** primary inputs *)
  s_outputs : int option;
      (** sink floor (the fresh pool is never drained below it);
          [None] derives [max 2 (pis / 2)] *)
  s_seed : int;
  s_locality : float;
      (** probability a fresh draw is recency-biased (deepens the
          circuit), in [0, 1] *)
  s_reconvergence : float;
      (** probability a fanin reuses an already-consumed node, creating
          multi-fanout stems and reconvergent paths, in [0, 1] *)
  s_max_arity : int;  (** widest gate fanin, in [2, 8] *)
}

val default_spec : spec
(** [gates=10_000, pis=64, outputs=None, seed=0, locality=0.6,
    reconv=0.3, arity=4]. *)

val spec_of_string : string -> spec
(** Parse ["gates=100k,reconv=0.3,seed=7"]: comma-separated
    [key=value] pairs over {!default_spec}.  Keys: [gates], [pis],
    [outputs], [seed], [locality] (or [loc]), [reconvergence] (or
    [reconv]), [arity]; integers accept [k]/[m] suffixes.
    @raise Util.Diagnostics.Failed (code [Invalid_flag]) on unknown
    keys, malformed values or out-of-range parameters. *)

val spec_to_string : spec -> string
(** Canonical [key=value] rendering; round-trips through
    {!spec_of_string}. *)

val build : ?name:string -> spec -> Circuit.t
(** Deterministic: same spec, same circuit.  [name] defaults to
    ["gen[" ^ spec_to_string spec ^ "]"].
    @raise Util.Diagnostics.Failed on an invalid spec. *)

val digest : Circuit.t -> string
(** Hex digest of the circuit's structure (gate kinds, fanin wiring,
    PI/PO sets — names and title excluded).  The determinism witness
    recorded by the bench scaling stage and checked by the test
    suite. *)

val revive_dead_inputs : Util.Rng.t -> Circuit.t -> Circuit.t
(** Re-attach primary inputs that drive no logic (redundancy removal
    can orphan them): each dead input is XORed into one input pin of a
    deterministically chosen live gate.  XOR keeps both the original
    signal and the revived input observable, so the patch rarely
    introduces new redundancy.  Circuits without dead inputs are
    returned unchanged. *)
