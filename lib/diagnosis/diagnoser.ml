(* Candidate ranking for observed tester responses against a
   dictionary.  Three modes share one representation:

   - exact: candidates whose signature equals the observed failing set;
   - nearest: candidates ranked by Hamming distance to the observed
     failing set, ties broken by ascending fault index (deterministic —
     the sketch this module replaces left equal-distance order to the
     sort's whim);
   - session: observations arrive one test at a time (pass, fail, or a
     full per-output response word) and each one re-scores the
     candidate set incrementally. *)

module Bitvec = Util.Bitvec

type candidate = { fault : int; name : string; distance : int }

let signature_of_fails dict fails =
  let nt = Dictionary.test_count dict in
  let bv = Bitvec.create nt in
  Array.iter
    (fun t ->
      if t < 0 || t >= nt then
        invalid_arg (Printf.sprintf "Diagnoser: failing test %d out of range [0,%d)" t nt);
      Bitvec.set bv t true)
    fails;
  bv

let hamming a b =
  let d = Bitvec.copy a in
  Bitvec.xor_into ~dst:d b;
  Bitvec.popcount d

let exact dict observed =
  let acc = ref [] in
  for fi = Dictionary.fault_count dict - 1 downto 0 do
    if Bitvec.equal (Dictionary.signature dict fi) observed then acc := fi :: !acc
  done;
  !acc

(* Stable ranking: distance ascending, fault index ascending at equal
   distance.  [limit] truncates the returned list, not the scan. *)
let rank_by ?limit dict score =
  let nf = Dictionary.fault_count dict in
  let scored = Array.init nf (fun fi -> (score fi, fi)) in
  Array.sort (fun (da, fa) (db, fb) -> if da <> db then compare da db else compare fa fb) scored;
  let n = match limit with Some l -> min l nf | None -> nf in
  List.init n (fun i ->
      let d, fi = scored.(i) in
      { fault = fi; name = Dictionary.name dict fi; distance = d })

let nearest ?limit dict observed =
  rank_by ?limit dict (fun fi -> hamming (Dictionary.signature dict fi) observed)

(* --- incremental sessions ----------------------------------------- *)

type observation = Pass | Fail | Outputs of bool array

type session = {
  dict : Dictionary.t;
  mismatches : int array;  (* per fault, observations contradicted so far *)
  mutable observed : int;  (* number of observe calls *)
  mutable seen : (int * observation) list;  (* newest first *)
}

let start dict =
  { dict; mismatches = Array.make (Dictionary.fault_count dict) 0; observed = 0; seen = [] }

let dictionary s = s.dict
let observed s = s.observed

(* Predicted value of output [oi] on test [t] under fault [fi]: the
   good value flipped iff the fault's slice at that output fails [t]. *)
let predicted_output dict fi oi t =
  let good = Bitvec.get (Dictionary.good_output dict oi) t in
  match Dictionary.output_fails dict fi oi with
  | None -> good
  | Some fails -> if Bitvec.get fails t then not good else good

let observe s ~test obs =
  let dict = s.dict in
  let nt = Dictionary.test_count dict in
  if test < 0 || test >= nt then
    invalid_arg (Printf.sprintf "Diagnoser.observe: test %d out of range [0,%d)" test nt);
  (match obs with
  | Outputs vals ->
      if Array.length vals <> Dictionary.output_count dict then
        invalid_arg
          (Printf.sprintf "Diagnoser.observe: %d output values for %d outputs"
             (Array.length vals) (Dictionary.output_count dict))
  | Pass | Fail -> ());
  for fi = 0 to Dictionary.fault_count dict - 1 do
    let predicted_fail = Bitvec.get (Dictionary.signature dict fi) test in
    match obs with
    | Pass -> if predicted_fail then s.mismatches.(fi) <- s.mismatches.(fi) + 1
    | Fail -> if not predicted_fail then s.mismatches.(fi) <- s.mismatches.(fi) + 1
    | Outputs vals ->
        for oi = 0 to Array.length vals - 1 do
          if predicted_output dict fi oi test <> vals.(oi) then
            s.mismatches.(fi) <- s.mismatches.(fi) + 1
        done
  done;
  s.observed <- s.observed + 1;
  s.seen <- (test, obs) :: s.seen

let survivors s =
  let acc = ref [] in
  for fi = Array.length s.mismatches - 1 downto 0 do
    if s.mismatches.(fi) = 0 then acc := fi :: !acc
  done;
  !acc

let ranking ?limit s = rank_by ?limit s.dict (fun fi -> s.mismatches.(fi))
