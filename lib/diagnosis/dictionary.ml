(* Compact fault dictionary: per-fault detection signatures over a
   fixed test set, with per-output slices for response-level matching.
   Built from the non-dropping event kernel on the collapsed probe
   universe, so the signature of fault [f] is exactly row [f] of
   [Faultsim.detection_sets]. *)

module Bitvec = Util.Bitvec
module Parallel = Util.Parallel
module Trace = Util.Trace

let magic = "ADI-DICT"
let version = 1

type t = {
  circuit_digest : string;
  tests : Patterns.t;
  names : string array;  (* per fault, Fault.to_string *)
  signatures : Bitvec.t array;  (* per fault, its failing-test set *)
  slices : (int * Bitvec.t) array array;
      (* per fault, sparse per-output failing-test sets: pairs
         (output index, failing tests at that output), ascending by
         output index, zero rows omitted *)
  good_out : Bitvec.t array;  (* per output, fault-free value column *)
}

let digest_of_circuit c = Digest.to_hex (Digest.string (Marshal.to_string c []))

let fault_count t = Array.length t.signatures
let test_count t = Patterns.count t.tests
let output_count t = Array.length t.good_out
let tests t = t.tests
let circuit_digest t = t.circuit_digest
let name t fi = t.names.(fi)
let signature t fi = t.signatures.(fi)
let slices t fi = t.slices.(fi)
let good_output t oi = t.good_out.(oi)

(* Failing tests of fault [fi] at output [oi] (empty row if the fault
   never corrupts that output). *)
let output_fails t fi oi =
  let row = t.slices.(fi) in
  let rec find lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let o, bv = row.(mid) in
      if o = oi then Some bv else if o < oi then find (mid + 1) hi else find lo mid
  in
  find 0 (Array.length row)

let block_mask count b =
  let cnt = count - (b * 64) in
  if cnt >= 64 then -1L else Int64.sub (Int64.shift_left 1L cnt) 1L

let build ?(jobs = 1) ?(block_width = 1) fl pats =
  let c = Fault_list.circuit fl in
  let nf = Fault_list.count fl in
  let nt = Patterns.count pats in
  let nout = Array.length (Circuit.outputs c) in
  let tr = Trace.current () in
  Trace.span tr
    ~attrs:
      [ ("faults", Trace.Int nf); ("tests", Trace.Int nt);
        ("outputs", Trace.Int nout); ("jobs", Trace.Int jobs);
        ("block_width", Trace.Int block_width) ]
    "diagnosis.build"
  @@ fun () ->
  let width = block_width in
  let signatures = Array.init nf (fun _ -> Bitvec.create nt) in
  let dense = Array.init nf (fun _ -> Array.init nout (fun _ -> Bitvec.create nt)) in
  let good_out = Goodsim.outputs c pats in
  let nblocks = Patterns.blocks pats in
  let nsb = (nblocks + width - 1) / width in
  (* Mirrors [Faultsim.detection_sets_pooled]: each lane owns a static
     slice of the pattern superblocks and writes only its blocks'
     words, so the result is bit-identical for any [jobs] and any
     [block_width]. *)
  Parallel.with_pool ~jobs (fun pool ->
      let k = min (Parallel.jobs pool) (max nsb 1) in
      let wss = Array.init k (fun _ -> Faultsim.workspace ~width c) in
      Parallel.run pool
        (Array.init k (fun lane ->
             fun () ->
              let ws = wss.(lane) in
              let good = Faultsim.good_arena ws in
              let out = Array.make (nout * width) 0L in
              for sb = lane * nsb / k to ((lane + 1) * nsb / k) - 1 do
                Faultsim.load_good ws good pats sb;
                let b0 = sb * width in
                let lim = min width (nblocks - b0) in
                for fi = 0 to nf - 1 do
                  let det =
                    Faultsim.detect_block_outputs ws ~good ~out (Fault_list.get fl fi)
                  in
                  for w = 0 to lim - 1 do
                    let b = b0 + w in
                    let mask = block_mask nt b in
                    let d = Int64.logand det.(w) mask in
                    if d <> 0L then begin
                      (Bitvec.words signatures.(fi)).(b) <- d;
                      let row = dense.(fi) in
                      for oi = 0 to nout - 1 do
                        let x = Int64.logand out.((oi * width) + w) mask in
                        if x <> 0L then (Bitvec.words row.(oi)).(b) <- x
                      done
                    end
                  done
                done
              done));
      Faultsim.publish_stats tr wss);
  let slices =
    Array.map
      (fun row ->
        let acc = ref [] in
        for oi = nout - 1 downto 0 do
          if not (Bitvec.is_zero row.(oi)) then acc := (oi, row.(oi)) :: !acc
        done;
        Array.of_list !acc)
      dense
  in
  let names = Array.init nf (fun fi -> Fault.to_string c (Fault_list.get fl fi)) in
  { circuit_digest = digest_of_circuit c; tests = pats; names; signatures; slices; good_out }

let equal a b =
  a.circuit_digest = b.circuit_digest
  && Patterns.to_strings a.tests = Patterns.to_strings b.tests
  && a.names = b.names
  && Array.length a.signatures = Array.length b.signatures
  && Array.for_all2 Bitvec.equal a.signatures b.signatures
  && Array.length a.slices = Array.length b.slices
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2 (fun (oa, va) (ob, vb) -> oa = ob && Bitvec.equal va vb) ra rb)
       a.slices b.slices
  && Array.length a.good_out = Array.length b.good_out
  && Array.for_all2 Bitvec.equal a.good_out b.good_out

(* --- equivalence classes and resolution --------------------------- *)

(* Faults grouped by identical signature — the dictionary's diagnostic
   limit: members of one class are indistinguishable under this test
   set (pass/fail granularity). *)
let classes t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun fi s ->
      let key = Marshal.to_string (Bitvec.words s) [] in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := fi :: !cell
      | None ->
          let cell = ref [ fi ] in
          Hashtbl.add tbl key cell;
          order := cell :: !order)
    t.signatures;
  Array.of_list (List.rev_map (fun cell -> Array.of_list (List.rev !cell)) !order)

let resolution t = Array.length (classes t)

(* --- spill -------------------------------------------------------- *)

(* Same discipline as [Service.Store]: a digest line over the
   marshalled payload guards the unmarshal; any mismatch (truncation,
   foreign bytes, wrong version) reads as [None], never an error. *)
let save t path =
  let payload = Marshal.to_string t [] in
  let digest = Digest.to_hex (Digest.string payload) in
  Util.Atomic_file.write path (fun oc ->
      Printf.fprintf oc "%s v%d\n%s\n" magic version digest;
      output_string oc payload)

let load path : t option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            let header = input_line ic in
            if header <> Printf.sprintf "%s v%d" magic version then None
            else begin
              let digest = input_line ic in
              let len = in_channel_length ic - pos_in ic in
              if len < 0 then None
              else
                let payload = really_input_string ic len in
                if digest <> Digest.to_hex (Digest.string payload) then None
                else Some (Marshal.from_string payload 0 : t)
            end
          with Failure _ | End_of_file | Sys_error _ -> None)
