(** Compact, versioned fault dictionaries.

    A dictionary fixes a fault universe and a test set and stores, per
    fault, its {e signature} — the set of tests that detect it — plus
    sparse per-output slices (which tests fail at which primary output)
    and the fault-free output columns.  Signatures are exactly the rows
    of {!Faultsim.detection_sets} over the same universe and tests;
    the per-output slices refine each row by the output the divergence
    is observed at, enabling response-level matching.

    Building runs under a [diagnosis.build] trace span and, like every
    simulator driver, is bit-identical for any [jobs] and any
    [block_width]. *)

type t

val magic : string
val version : int

val build : ?jobs:int -> ?block_width:int -> Fault_list.t -> Patterns.t -> t
(** [build fl pats] simulates every fault of [fl] (event kernel,
    non-dropping) against [pats].  Requires a combinational circuit. *)

(** {1 Accessors} *)

val fault_count : t -> int
val test_count : t -> int
val output_count : t -> int
val tests : t -> Patterns.t

val circuit_digest : t -> string
(** Digest of the circuit the dictionary was built for. *)

val digest_of_circuit : Circuit.t -> string

val name : t -> int -> string
(** Human-readable fault name ({!Fault.to_string}). *)

val signature : t -> int -> Util.Bitvec.t
(** Failing-test set of a fault; do not mutate. *)

val slices : t -> int -> (int * Util.Bitvec.t) array
(** Sparse per-output slices of a fault: [(output index, failing tests
    observed at that output)], ascending by output index, zero rows
    omitted.  The union of the slice rows is the signature. *)

val output_fails : t -> int -> int -> Util.Bitvec.t option
(** [output_fails t fi oi] is fault [fi]'s failing-test set at output
    [oi], or [None] if the fault is never observed there. *)

val good_output : t -> int -> Util.Bitvec.t
(** Fault-free value column of one output across the tests. *)

val equal : t -> t -> bool
(** Structural equality over every stored field (used to prove
    jobs-independence). *)

(** {1 Diagnostic limit} *)

val classes : t -> int array array
(** Faults grouped by identical signature, each class in ascending
    fault order; classes ordered by their first member.  Members of a
    class are indistinguishable under this test set. *)

val resolution : t -> int
(** Number of distinct signature classes. *)

(** {1 Spill}

    Same discipline as the service store: header line
    ["ADI-DICT v1"], a hex digest of the marshalled payload, then the
    payload, published via {!Util.Atomic_file.write}. *)

val save : t -> string -> unit

val load : string -> t option
(** [None] on any mismatch — missing file, wrong magic/version,
    truncation, digest failure — never an error. *)
