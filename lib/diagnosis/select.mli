(** ADI-style diagnostic test ordering.

    The FDG view: a test's diagnostic value against a candidate
    partition is the number of fault pairs it separates —
    [sum over groups g of |g ∩ fail(t)| * |g \ fail(t)|].  The greedy
    order maximises that gain step by step, so early tests split the
    surviving candidate sets fastest. *)

val gain : Dictionary.t -> int array list -> int -> int
(** [gain dict groups t]: candidate pairs test [t] separates against
    the partition [groups]. *)

val order : Dictionary.t -> int array
(** A permutation of the test indices: greedily pick the test that
    resolves the most faults to their final signature class, breaking
    ties by pairs separated and then by the lowest test index, until no
    test splits any surviving group; leftover tests follow in original
    order. *)

val mean_tests_to_unique : Dictionary.t -> int array -> float
(** [mean_tests_to_unique dict ord]: mean over faults of the number of
    tests, applied in [ord] order, after which the fault's surviving
    candidate group has shrunk to its final signature class.  Lower is
    better; diagnostic orders should beat the generation order.
    @raise Invalid_argument if [ord] is not a full permutation. *)
