(** Candidate ranking for observed tester responses.

    All rankings are deterministic: candidates sort by score ascending
    and by fault index ascending at equal score, so equal-distance ties
    always resolve to the lowest-indexed fault. *)

type candidate = { fault : int; name : string; distance : int }

val signature_of_fails : Dictionary.t -> int array -> Util.Bitvec.t
(** Pack failing-test indices into an observed signature.
    @raise Invalid_argument on an out-of-range test index. *)

val hamming : Util.Bitvec.t -> Util.Bitvec.t -> int

val exact : Dictionary.t -> Util.Bitvec.t -> int list
(** Faults whose signature equals the observed failing set, ascending. *)

val nearest : ?limit:int -> Dictionary.t -> Util.Bitvec.t -> candidate list
(** All faults ranked by Hamming distance to the observed failing set
    (then by fault index); [limit] truncates the result. *)

(** {1 Incremental sessions}

    A session scores candidates one observed test at a time: a
    pass/fail verdict or a full per-output response.  Each observation
    adds, per fault, the number of contradicted predictions; survivors
    are the faults contradicted by nothing seen so far. *)

type observation =
  | Pass  (** the test's responses matched the fault-free circuit *)
  | Fail  (** some output diverged (output unknown) *)
  | Outputs of bool array
      (** observed output values, [Circuit.outputs] order *)

type session

val start : Dictionary.t -> session
val dictionary : session -> Dictionary.t

val observe : session -> test:int -> observation -> unit
(** @raise Invalid_argument on an out-of-range test index or an
    [Outputs] width mismatch. *)

val observed : session -> int
(** Number of observations applied. *)

val survivors : session -> int list
(** Faults consistent with every observation, ascending. *)

val ranking : ?limit:int -> session -> candidate list
(** All faults by mismatch count (then fault index); a candidate's
    [distance] is its mismatch count. *)

val predicted_output : Dictionary.t -> int -> int -> int -> bool
(** [predicted_output dict fi oi t]: the value output [oi] takes on
    test [t] if fault [fi] is present. *)
