(* Diagnostic test ordering.

   A test is diagnostically useful when it splits surviving candidate
   sets: if a group of currently-indistinguishable faults contains [a]
   members that fail the test and [b] that pass, applying it separates
   [a*b] fault pairs (the FDG gain of the test against the current
   partition).  The greedy order repeatedly picks the test with the
   maximum total gain over all groups, ties broken by ascending test
   index, until no test splits anything; leftover tests follow in
   original order so the result is always a permutation. *)

module Bitvec = Util.Bitvec

(* Pairs separated by test [t] against partition [groups]:
   sum over groups of |g ∩ fail(t)| * |g \ fail(t)|. *)
let gain dict groups t =
  List.fold_left
    (fun acc g ->
      let fails = ref 0 in
      Array.iter (fun fi -> if Bitvec.get (Dictionary.signature dict fi) t then incr fails) g;
      acc + (!fails * (Array.length g - !fails)))
    0 groups

let split_group dict t g =
  let fail = ref [] and pass = ref [] in
  Array.iter
    (fun fi ->
      if Bitvec.get (Dictionary.signature dict fi) t then fail := fi :: !fail
      else pass := fi :: !pass)
    g;
  let arr cell = Array.of_list (List.rev !cell) in
  (arr fail, arr pass)

(* Greedy step score of test [t] against the current partition:
   (faults whose surviving group would shrink to its final signature
   class, candidate pairs separated).  Pure pairs-gain front-loads big
   splits but can defer the last refinement of many faults past where
   the generation order would have made it; resolving first and
   splitting pairs second beats the generation order on both the
   compacted ATPG sets and exhaustive sets. *)
let step_score dict final groups t =
  let resolved = ref 0 and pairs = ref 0 in
  List.iter
    (fun g ->
      let fails = ref 0 in
      Array.iter (fun fi -> if Bitvec.get (Dictionary.signature dict fi) t then incr fails) g;
      let a = !fails and b = Array.length g - !fails in
      if a * b > 0 then begin
        pairs := !pairs + (a * b);
        Array.iter
          (fun fi ->
            let side = if Bitvec.get (Dictionary.signature dict fi) t then a else b in
            if side = final.(fi) then incr resolved)
          g
      end)
    groups;
  (!resolved, !pairs)

let final_class_sizes dict =
  let final = Array.make (Dictionary.fault_count dict) 0 in
  Array.iter
    (fun cls -> Array.iter (fun fi -> final.(fi) <- Array.length cls) cls)
    (Dictionary.classes dict);
  final

let order dict =
  let nt = Dictionary.test_count dict in
  let nf = Dictionary.fault_count dict in
  let final = final_class_sizes dict in
  let chosen = Array.make nt false in
  let picked = ref [] in
  (* Only groups of >= 2 candidates can still be split. *)
  let groups = ref (if nf >= 2 then [ Array.init nf Fun.id ] else []) in
  let continue_ = ref true in
  while !continue_ && !groups <> [] do
    let best = ref (-1) and best_score = ref (-1, 0) in
    for t = nt - 1 downto 0 do
      if not chosen.(t) then begin
        let ((_, pairs) as score) = step_score dict final !groups t in
        (* >= with a descending scan makes the lowest index win ties. *)
        if pairs > 0 && score >= !best_score then begin
          best := t;
          best_score := score
        end
      end
    done;
    if !best < 0 then continue_ := false
    else begin
      let t = !best in
      chosen.(t) <- true;
      picked := t :: !picked;
      groups :=
        List.concat_map
          (fun g ->
            let fail, pass = split_group dict t g in
            List.filter (fun g' -> Array.length g' >= 2) [ fail; pass ])
          !groups
    end
  done;
  let rest = ref [] in
  for t = nt - 1 downto 0 do
    if not chosen.(t) then rest := t :: !rest
  done;
  Array.of_list (List.rev !picked @ !rest)

(* Mean, over faults, of the number of tests (applied in [ord] order)
   needed before the fault's surviving candidate group stops shrinking
   — i.e. reaches its final signature class.  Faults indistinguishable
   from the start count 0.  Lower is better; the diagnostic analogue of
   the paper's tests-to-coverage curves. *)
let mean_tests_to_unique dict ord =
  let nt = Dictionary.test_count dict in
  let nf = Dictionary.fault_count dict in
  if Array.length ord <> nt then
    invalid_arg "Select.mean_tests_to_unique: order is not a permutation of the tests";
  if nf = 0 then 0.0
  else begin
    (* Final class size per fault = diagnostic floor under the full set. *)
    let final = final_class_sizes dict in
    let resolved_at = Array.make nf (-1) in
    let note step g =
      let size = Array.length g in
      Array.iter
        (fun fi -> if resolved_at.(fi) < 0 && size = final.(fi) then resolved_at.(fi) <- step)
        g
    in
    let groups = ref [ Array.init nf Fun.id ] in
    note 0 (List.hd !groups);
    Array.iteri
      (fun i t ->
        groups :=
          List.concat_map
            (fun g ->
              if Array.length g <= 1 then [ g ]
              else
                let fail, pass = split_group dict t g in
                List.filter (fun g' -> Array.length g' > 0) [ fail; pass ])
            !groups;
        List.iter (note (i + 1)) !groups)
      ord;
    let sum = Array.fold_left (fun acc s -> acc + max s 0) 0 resolved_at in
    float_of_int sum /. float_of_int nf
  end
