let eval_cache : (int * bool, Evaluation.circuit_eval list) Hashtbl.t = Hashtbl.create 4
let setup_cache : (int * bool, Evaluation.circuit_eval list) Hashtbl.t = Hashtbl.create 4

let suite_entries ~full = if full then Suite.entries else Suite.small

let evaluations ?(seed = 1) ~full () =
  match Hashtbl.find_opt eval_cache (seed, full) with
  | Some evs -> evs
  | None ->
      let evs =
        List.map
          (fun (e : Suite.entry) ->
            let orders =
              if e.Suite.big then [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0 ]
              else Evaluation.default_orders
            in
            Evaluation.evaluate ~orders ~seed ~paper_name:e.Suite.paper_name (Suite.build e))
          (suite_entries ~full)
      in
      Hashtbl.replace eval_cache (seed, full) evs;
      evs

let table4_evaluations ?(seed = 1) ~full () =
  match (Hashtbl.find_opt eval_cache (seed, full), Hashtbl.find_opt setup_cache (seed, full)) with
  | Some evs, _ -> evs
  | None, Some evs -> evs
  | None, None ->
      let evs =
        List.map
          (fun (e : Suite.entry) ->
            Evaluation.evaluate ~orders:[] ~seed ~paper_name:e.Suite.paper_name (Suite.build e))
          (suite_entries ~full)
      in
      Hashtbl.replace setup_cache (seed, full) evs;
      evs

let figure1_eval ?(seed = 1) () =
  let evs = evaluations ~seed ~full:false () in
  List.find (fun (ev : Evaluation.circuit_eval) -> ev.Evaluation.name = "syn420") evs

let ablation_evals ?(seed = 1) () =
  let orders = [ Ordering.Decr; Ordering.Decr0; Ordering.Dynm; Ordering.Dynm0 ] in
  List.filteri (fun i _ -> i < 6) Suite.small
  |> List.map (fun (e : Suite.entry) ->
         Evaluation.evaluate ~orders ~seed ~paper_name:e.Suite.paper_name (Suite.build e))

(* --- resilient single-circuit ATPG ------------------------------- *)

type atpg_run = {
  setup : Pipeline.setup;
  kind : Ordering.kind;
  result : Engine.result;
  report : string;
  checkpoint_saved : string option;
  metrics_report : string option;
}

(* Observability scope: install a tracer per the configuration, run the
   callback under it, and return its end-of-run metrics table when
   [metrics] was requested.  A resumed run appends to the trace file —
   the events before the interruption are part of the same logical
   run. *)
let with_observability (cfg : Run_config.t) f =
  if not (Run_config.observed cfg) then (f (), None)
  else begin
    let oc =
      Option.map
        (fun path ->
          let flags =
            if cfg.Run_config.resume then [ Open_append; Open_creat; Open_wronly ]
            else [ Open_trunc; Open_creat; Open_wronly ]
          in
          open_out_gen flags 0o644 path)
        cfg.Run_config.trace
    in
    let sink = Option.map Util.Trace.file_sink oc in
    let tr = Util.Trace.make ?sink () in
    Fun.protect
      ~finally:(fun () -> Option.iter close_out oc)
      (fun () ->
        Util.Trace.with_current tr (fun () ->
            (* Trace header: who produced this event log. *)
            Util.Trace.instant tr "run.start"
              ~attrs:[ ("version", Util.Trace.Str Util.Version.version) ];
            let v = f () in
            Util.Trace.flush_metrics tr;
            let report =
              if cfg.Run_config.metrics then
                Some (Util.Metrics.report (Util.Trace.metrics tr))
              else None
            in
            (v, report)))
  end

let generator_name = function Engine.Podem_gen -> "podem" | Engine.Dalg_gen -> "dalg"

(* Deliberately free of wall-clock fields: an interrupted run resumed
   from its checkpoint must render byte-identically to the
   uninterrupted run. *)
let atpg_report ~kind ~faults (e : Engine.result) =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "order       : F%s\n" (Ordering.to_string kind);
  pf "tests       : %d\n" (Patterns.count e.Engine.tests);
  pf "coverage    : %.3f\n" (Engine.coverage faults e);
  pf "untestable  : %d proven, %d aborted, %d out-of-budget\n"
    (List.length e.Engine.untestable)
    (List.length e.Engine.aborted)
    (List.length e.Engine.out_of_budget);
  if e.Engine.retry_recovered > 0 then
    pf "recovered   : %d aborted fault(s) resolved by retry\n" e.Engine.retry_recovered;
  if e.Engine.interrupted then begin
    let total = Fault_list.count faults in
    let detected =
      Array.fold_left (fun acc t -> if t >= 0 then acc + 1 else acc) 0 e.Engine.detected_by
    in
    let pending =
      total - detected
      - List.length e.Engine.untestable
      - List.length e.Engine.out_of_budget
    in
    pf "status      : INTERRUPTED (%d of %d faults pending)\n" pending total
  end
  else
    pf "AVE         : %.2f tests to detection\n"
      (Coverage.ave (Coverage.of_engine_result faults e));
  Buffer.contents b

(* The engine configuration travels separately from [cfg] so the legacy
   [?config] parameter (whose seed may differ from the pipeline seed)
   keeps its historical meaning. *)
let run_atpg_with ?should_stop ~econfig (cfg : Run_config.t) circuit =
  Run_config.validate cfg;
  let { Run_config.seed; order; checkpoint; checkpoint_every; resume; _ } = cfg in
  let (setup, result, checkpoint_saved), metrics_report =
    with_observability cfg @@ fun () ->
    let tr = Util.Trace.current () in
    let setup = Pipeline.prepare cfg circuit in
    let order_kind = Ordering.to_string order in
    let order_arr =
      Util.Trace.span tr
        ~attrs:[ ("order", Util.Trace.Str order_kind) ]
        "pipeline.order"
        (fun () -> Ordering.order order setup.Pipeline.adi)
    in
    let generator = generator_name econfig.Engine.generator in
    let resume_snap =
      match (resume, checkpoint) with
      | false, _ | true, None -> None
      | true, Some path when not (Sys.file_exists path) -> None
      | true, Some path -> (
          (* An unreadable checkpoint defaults to warn-and-start-fresh:
             for long unattended runs a stale .tmp or torn file should
             cost the lost progress, not the whole run.  A checkpoint
             that reads fine but belongs to a different run is a hard
             error either way — silently recomputing a different
             experiment would be worse than stopping. *)
          match Checkpoint.load path with
          | exception Util.Diagnostics.Failed d
            when d.Util.Diagnostics.code = Util.Diagnostics.Checkpoint_format
                 && not cfg.Run_config.resume_strict ->
              Printf.eprintf "%s\n%!"
                (Util.Diagnostics.to_string
                   (Util.Diagnostics.warning
                      ~loc:{ file = Some path; line = 0 }
                      Util.Diagnostics.Checkpoint_format
                      "ignoring unreadable checkpoint (%s); starting fresh"
                      d.Util.Diagnostics.message));
              Util.Trace.instant tr "checkpoint.ignored_corrupt";
              None
          | ck -> (
              match
                Checkpoint.matches ck ~circuit:setup.Pipeline.circuit ~seed ~order_kind
                  ~generator ~backtrack_limit:econfig.Engine.backtrack_limit
                  ~retries:econfig.Engine.retries ~order:order_arr
              with
              | Ok () -> Some ck.Checkpoint.snapshot
              | Error reason ->
                  Util.Diagnostics.fail
                    ~loc:{ file = Some path; line = 0 }
                    Util.Diagnostics.Checkpoint_mismatch "%s" reason))
    in
    let mk_checkpoint snapshot =
      {
        Checkpoint.circuit_title = Circuit.title setup.Pipeline.circuit;
        circuit_digest = Checkpoint.digest_of_circuit setup.Pipeline.circuit;
        seed;
        order_kind;
        generator;
        backtrack_limit = econfig.Engine.backtrack_limit;
        retries = econfig.Engine.retries;
        order = order_arr;
        snapshot;
      }
    in
    let on_checkpoint =
      Option.map (fun path snap -> Checkpoint.save path (mk_checkpoint snap)) checkpoint
    in
    let checkpoint_every =
      if Option.is_none checkpoint then None else Some checkpoint_every
    in
    let result =
      Util.Trace.span tr
        ~attrs:
          [
            ("order", Util.Trace.Str order_kind);
            ("resumed", Util.Trace.Bool (resume_snap <> None));
          ]
        "pipeline.engine"
        (fun () ->
          Engine.run ~config:econfig ?resume:resume_snap ?checkpoint_every ?on_checkpoint
            ?should_stop setup.Pipeline.faults ~order:order_arr)
    in
    let checkpoint_saved =
      match (result.Engine.interrupted, result.Engine.snapshot, checkpoint) with
      | true, Some snap, Some path ->
          Checkpoint.save path (mk_checkpoint snap);
          Some path
      | _ ->
          (* A completed run invalidates any earlier checkpoint: resuming
             a finished run from a stale snapshot would re-report partial
             results as if they were current. *)
          (match checkpoint with
          | Some path when (not result.Engine.interrupted) && Sys.file_exists path ->
              Sys.remove path
          | _ -> ());
          None
    in
    (setup, result, checkpoint_saved)
  in
  let report = atpg_report ~kind:order ~faults:setup.Pipeline.faults result in
  { setup; kind = order; result; report; checkpoint_saved; metrics_report }

let run_atpg_cfg ?should_stop cfg circuit =
  run_atpg_with ?should_stop ~econfig:(Run_config.engine_config cfg) cfg circuit

(* Deprecated wrapper — the pre-[Run_config] optional-argument pile.
   New code should build a [Run_config.t] and call {!run_atpg_cfg}. *)
let run_atpg ?(seed = 1) ?(order = Ordering.Dynm0) ?(jobs = 1) ?config ?checkpoint
    ?(checkpoint_every = 32) ?(resume = false) ?should_stop circuit =
  let cfg =
    { Run_config.default with seed; jobs; order; checkpoint; checkpoint_every; resume }
  in
  let econfig =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with Engine.seed; Engine.jobs }
  in
  run_atpg_with ?should_stop ~econfig cfg circuit

let experiment_names =
  [
    "table1"; "table4"; "table5"; "table6"; "table7"; "figure1"; "ablation-static";
    "ablation-u"; "ablation-ndetection"; "ablation-estimator"; "ablation-reorder";
    "ablation-independence"; "ablation-engines"; "ablation-compaction";
    "ablation-truncation"; "all";
  ]

let rec run_experiment ?(seed = 1) ~full which =
  match which with
  | "table1" -> Reports.table1 ()
  | "table4" -> Reports.table4 (table4_evaluations ~seed ~full ())
  | "table5" -> Reports.table5 (evaluations ~seed ~full ())
  | "table6" -> Reports.table6 (evaluations ~seed ~full ())
  | "table7" -> Reports.table7 (evaluations ~seed ~full ())
  | "figure1" -> Reports.figure1 (figure1_eval ~seed ())
  | "ablation-static" -> Reports.ablation_static (ablation_evals ~seed ())
  | "ablation-u" -> Reports.ablation_u (Suite.build_by_name "syn420") ~seed
  | "ablation-ndetection" -> Reports.ablation_ndetection (Suite.build_by_name "syn420") ~seed
  | "ablation-estimator" -> Reports.ablation_estimator (Suite.build_by_name "syn420") ~seed
  | "ablation-reorder" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_reorder (List.filteri (fun i _ -> i < 6) evs)
  | "ablation-independence" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_independence (List.filteri (fun i _ -> i < 6) evs)
  | "ablation-truncation" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_truncation (List.filteri (fun i _ -> i < 4) evs)
  | "ablation-compaction" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_compaction (List.filteri (fun i _ -> i < 6) evs)
  | "ablation-engines" ->
      Reports.ablation_engines
        [ Suite.build_by_name "c17"; Suite.build_by_name "lion";
          Suite.build_by_name "syn208"; Suite.build_by_name "syn298";
          Suite.build_by_name "syn344" ]
  | "all" ->
      String.concat "\n"
        (List.filter_map
           (fun w -> if w = "all" then None else Some (run_experiment ~seed ~full w))
           experiment_names)
  | _ ->
      invalid_arg
        (Printf.sprintf "Harness.run_experiment: unknown experiment %S (expected one of %s)"
           which
           (String.concat ", " experiment_names))
