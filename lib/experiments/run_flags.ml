module Diagnostics = Util.Diagnostics

type kind =
  | Flag of (bool -> Run_config.t -> Run_config.t)
  | Int of (int -> Run_config.t -> Run_config.t)
  | Float of (float -> Run_config.t -> Run_config.t)
  | String of (string -> Run_config.t -> Run_config.t)

type spec = { names : string list; docv : string; doc : string; kind : kind }

let with_order_name s cfg =
  match Ordering.of_string s with
  | Some k -> Run_config.with_order k cfg
  | None ->
      Diagnostics.fail Diagnostics.Invalid_flag
        "unknown order %S (expected orig, incr0, decr, 0decr, dynm or 0dynm)" s

let with_kernel_name s cfg =
  match Faultsim.kernel_of_string s with
  | Some k -> Run_config.with_faultsim_kernel (Some k) cfg
  | None ->
      Diagnostics.fail Diagnostics.Invalid_flag
        "unknown fault-simulation kernel %S (expected event, stem or cpt)" s

let pipeline_specs =
  [
    {
      names = [ "seed" ];
      docv = "SEED";
      doc = "Random seed (drives U selection and random fill).";
      kind = Int Run_config.with_seed;
    };
    {
      names = [ "j"; "jobs" ];
      docv = "JOBS";
      doc =
        "Domains for parallel fault simulation. Results are bit-identical for any value.";
      kind = Int Run_config.with_jobs;
    };
    {
      names = [ "block-width" ];
      docv = "W";
      doc =
        "64-bit words per simulation lane: 1, 2, 4 or 8 (64 to 512 patterns per pass). \
         Results are bit-identical for any width.";
      kind = Int Run_config.with_block_width;
    };
    {
      names = [ "pool" ];
      docv = "N";
      doc = "Candidate-vector pool size for U selection.";
      kind = Int Run_config.with_pool;
    };
    {
      names = [ "target-coverage" ];
      docv = "C";
      doc = "U-selection coverage target, in (0, 1].";
      kind = Float Run_config.with_target_coverage;
    };
    {
      names = [ "faultsim-kernel" ];
      docv = "KERNEL";
      doc =
        "Fault-simulation kernel: event, stem or cpt (default: auto per driver). \
         Results are bit-identical for any kernel.";
      kind = String with_kernel_name;
    };
  ]

let observability_specs =
  [
    {
      names = [ "metrics" ];
      docv = "";
      doc = "Collect counters and phase timings; print the tables at end of run.";
      kind = Flag Run_config.with_metrics;
    };
    {
      names = [ "trace" ];
      docv = "FILE";
      doc =
        "Stream spans, counters and histograms to FILE as JSON lines (schema \
         adi_trace/v1). With --resume the file is appended to, extending the original \
         run's log.";
      kind = String (fun p -> Run_config.with_trace (Some p));
    };
  ]

let engine_specs =
  [
    {
      names = [ "order" ];
      docv = "ORDER";
      doc = "Fault order: orig, incr0, decr, 0decr, dynm, 0dynm.";
      kind = String with_order_name;
    };
    {
      names = [ "window" ];
      docv = "W";
      doc =
        "Speculative test-generation lookahead (default 4*jobs; 1 forces the exact \
         serial path). Results are bit-identical for any value.";
      kind = Int (fun w -> Run_config.with_window (Some w));
    };
    {
      names = [ "backtracks" ];
      docv = "B";
      doc = "PODEM backtrack limit.";
      kind = Int Run_config.with_backtrack_limit;
    };
    {
      names = [ "retries" ];
      docv = "N";
      doc =
        "Escalation passes over backtrack-aborted faults, each with a doubled limit (0 \
         disables).";
      kind = Int Run_config.with_retries;
    };
    {
      names = [ "time-budget" ];
      docv = "SECONDS";
      doc = "Whole-run wall-clock budget; the run stops cleanly at a fault boundary.";
      kind = Float (fun s -> Run_config.with_time_budget (Some s));
    };
    {
      names = [ "fault-budget" ];
      docv = "SECONDS";
      doc = "Per-fault wall-clock budget; overrunning faults are classified out-of-budget.";
      kind = Float (fun s -> Run_config.with_per_fault_budget (Some s));
    };
    {
      names = [ "checkpoint" ];
      docv = "FILE";
      doc =
        "Write a resumable checkpoint here periodically and on interruption (Ctrl-C or \
         an expired time budget).";
      kind = String (fun p -> Run_config.with_checkpoint (Some p));
    };
    {
      names = [ "checkpoint-every" ];
      docv = "N";
      doc = "Checkpoint after every N targeted faults (with --checkpoint).";
      kind = Int Run_config.with_checkpoint_every;
    };
    {
      names = [ "resume" ];
      docv = "";
      doc = "Continue from the --checkpoint file if it exists; fresh run otherwise.";
      kind = Flag Run_config.with_resume;
    };
    {
      names = [ "resume-strict" ];
      docv = "";
      doc =
        "With --resume: fail with E-checkpoint-format on a truncated or corrupt \
         checkpoint instead of warning and starting fresh.";
      kind = Flag Run_config.with_resume_strict;
    };
  ]

let atpg_specs = pipeline_specs @ engine_specs @ observability_specs
let all = atpg_specs

(* Hand-rolled driver for argv-style front ends (the bench driver).
   [--name value] and bare [--flag]; single-letter names also accept
   [-n value].  Unrecognised tokens are returned in order for the
   caller's own parsing (experiment names, driver-local flags). *)
let parse ?(specs = all) ~init args =
  let flag_name tok =
    let n = String.length tok in
    if n > 2 && String.sub tok 0 2 = "--" then Some (String.sub tok 2 (n - 2))
    else if n = 2 && tok.[0] = '-' && tok.[1] <> '-' then Some (String.sub tok 1 1)
    else None
  in
  let cfg = ref init and rest = ref [] in
  let rec go = function
    | [] -> ()
    | tok :: tl -> (
        let spec =
          match flag_name tok with
          | None -> None
          | Some n -> List.find_opt (fun s -> List.mem n s.names) specs
        in
        match spec with
        | None ->
            rest := tok :: !rest;
            go tl
        | Some s -> (
            let value tl =
              match tl with
              | v :: tl' -> (v, tl')
              | [] ->
                  Diagnostics.fail Diagnostics.Invalid_flag "%s expects %s" tok
                    (if s.docv = "" then "a value" else s.docv)
            in
            match s.kind with
            | Flag f ->
                cfg := f true !cfg;
                go tl
            | Int f ->
                let v, tl' = value tl in
                (match int_of_string_opt v with
                | Some i -> cfg := f i !cfg
                | None ->
                    Diagnostics.fail Diagnostics.Invalid_flag "%s expects an integer (got %S)"
                      tok v);
                go tl'
            | Float f ->
                let v, tl' = value tl in
                (match float_of_string_opt v with
                | Some x -> cfg := f x !cfg
                | None ->
                    Diagnostics.fail Diagnostics.Invalid_flag "%s expects a number (got %S)"
                      tok v);
                go tl'
            | String f ->
                let v, tl' = value tl in
                cfg := f v !cfg;
                go tl'))
  in
  go args;
  (!cfg, List.rev !rest)
