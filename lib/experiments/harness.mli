(** Experiment orchestration.

    Builds each suite circuit once per process, shares the per-circuit
    evaluations between tables 5/6/7 and figure 1, and renders the
    requested artefact.  The CLI ([adi-atpg experiment]) and the bench
    driver ([bench/main.exe]) both go through this module, so their
    outputs are identical. *)

val evaluations : ?seed:int -> full:bool -> unit -> Evaluation.circuit_eval list
(** One evaluation per suite circuit ([full] adds syn5378/syn13207,
    for which the deliberately bad [Fincr0] order is skipped, as in the
    paper).  Memoised per (seed, full). *)

val table4_evaluations : ?seed:int -> full:bool -> unit -> Evaluation.circuit_eval list
(** Setup-only evaluations (no ATPG runs) — enough for Table 4 and
    much faster when only that table is wanted. *)

val run_experiment : ?seed:int -> full:bool -> string -> string
(** [run_experiment name] renders one artefact: ["table1"], ["table4"],
    ["table5"], ["table6"], ["table7"], ["figure1"],
    ["ablation-static"], ["ablation-u"], or ["all"].
    @raise Invalid_argument on an unknown name. *)

val experiment_names : string list

(** {2 Resilient single-circuit ATPG}

    The checkpoint/resume front door used by [adi-atpg atpg]. *)

type atpg_run = {
  setup : Pipeline.setup;
  kind : Ordering.kind;
  result : Engine.result;
  report : string;
      (** Deterministic summary (no wall-clock fields): a run resumed
          from a checkpoint renders byte-identically to the same run
          executed without interruption. *)
  checkpoint_saved : string option;
      (** Path of the checkpoint written because the run was
          interrupted, if any. *)
  metrics_report : string option;
      (** End-of-run metrics tables, when the configuration requested
          [metrics]. *)
}

val with_observability : Run_config.t -> (unit -> 'a) -> 'a * string option
(** Run the callback under a tracer built per the configuration: a
    JSONL sink on [trace] (append mode when [resume] is set, so a
    resumed run extends its original event log), metrics collection
    when requested.  Returns the callback's value and the rendered
    metrics tables (when [metrics] is set).  With observability off the
    callback runs under whatever tracer is already current. *)

val run_atpg_cfg :
  ?should_stop:(unit -> bool) -> Run_config.t -> Circuit.t -> atpg_run
(** Prepare the pipeline, order the faults, and run the engine with
    checkpoint/resume plumbing and observability, all driven by one
    {!Run_config.t}:

    - [checkpoint] names a checkpoint file.  While running, a snapshot
      is saved there every [checkpoint_every] (default 32) processed
      faults; if the run is interrupted (time budget or
      [should_stop]), a final snapshot is saved at the stopping point.
      When the run completes, the file is removed.
    - [resume] (with [checkpoint]) loads the file if it exists and
      continues from it; a missing file starts a fresh run.  The
      checkpoint's identity block (circuit digest, seed, order,
      generator, limits) must match the current invocation.
    - [jobs] (default 1) sizes the fault-simulation domain pool, both
      for the ADI setup and — unless an explicit [config] overrides
      it — for the engine.  Results are identical for any value, so it
      is deliberately absent from the checkpoint identity: a run
      checkpointed under one [jobs] may resume under another.

    @raise Util.Diagnostics.Failed with code [Checkpoint_mismatch]
    when resuming under parameters that differ from those recorded in
    the checkpoint, [Checkpoint_format] on a corrupt file, or
    [Invalid_flag] when the configuration is invalid (e.g. [resume]
    without [checkpoint]). *)

val run_atpg :
  ?seed:int ->
  ?order:Ordering.kind ->
  ?jobs:int ->
  ?config:Engine.config ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  Circuit.t ->
  atpg_run
(** @deprecated The pre-[Run_config] argument pile, kept so existing
    callers keep compiling.  Equivalent to {!run_atpg_cfg} on
    {!Run_config.default} with the given fields replaced; an explicit
    [config] overrides the engine slice only (its seed does not affect
    the pipeline seed, matching historical behaviour). *)
