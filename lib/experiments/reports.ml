module Table = Util.Table
module Bitvec = Util.Bitvec

let buf_add = Buffer.add_string

let table1 () =
  let buf = Buffer.create 2048 in
  let c = Kiss.to_combinational (Kiss.lion ()) in
  let faults = Collapse.collapsed c in
  let n_inputs = Array.length (Circuit.inputs c) in
  let u = Patterns.exhaustive ~n_inputs in
  let adi = Adi_index.compute faults u in
  buf_add buf
    (Printf.sprintf
       "Table 1: input vectors of lion (stand-in synthesis: %d inputs, %d collapsed faults)\n\n"
       n_inputs (Fault_list.count faults));
  let t = Table.create (("u", Table.Right) :: List.init 16 (fun i -> (string_of_int i, Table.Right))) in
  Table.add_row t ("ndet(u)" :: List.init 16 (fun i -> string_of_int adi.Adi_index.ndet.(i)));
  buf_add buf (Table.render t);
  (* Worked examples in the style of Section 2: the faults with the
     smallest and largest ADI, plus the first one detected by several
     vectors of equal ndet if present. *)
  buf_add buf "\nWorked examples (Section 2 style):\n";
  let show fi =
    let f = Fault_list.get faults fi in
    let ds = ref [] in
    Bitvec.iter_set adi.Adi_index.dsets.(fi) (fun uidx -> ds := uidx :: !ds);
    let ds = List.rev !ds in
    buf_add buf
      (Printf.sprintf "  f%-3d %-22s D(f) = {%s}  ADI(f) = %d\n" fi
         (Fault.to_string c f)
         (String.concat ", " (List.map string_of_int ds))
         adi.Adi_index.adi.(fi))
  in
  let detected = ref [] in
  Array.iteri (fun fi a -> if a > 0 then detected := fi :: !detected) adi.Adi_index.adi;
  let detected = List.rev !detected in
  (match detected with
  | [] -> buf_add buf "  (no faults detected by U)\n"
  | _ ->
      let by_adi cmp =
        List.fold_left
          (fun acc fi ->
            match acc with
            | None -> Some fi
            | Some m -> if cmp adi.Adi_index.adi.(fi) adi.Adi_index.adi.(m) then Some fi else acc)
          None detected
      in
      Option.iter show (by_adi ( < ));
      Option.iter show (by_adi ( > ));
      (match List.nth_opt detected (List.length detected / 2) with
      | Some fi -> show fi
      | None -> ()));
  (* First steps of the dynamic ordering, as in Section 3. *)
  buf_add buf "\nDynamic ordering (first four selections of Fdynm):\n";
  let order = Ordering.order Ordering.Dynm adi in
  let ndet = Array.copy adi.Adi_index.ndet in
  let current fi =
    let m = ref max_int in
    Bitvec.iter_set adi.Adi_index.dsets.(fi) (fun uu -> if ndet.(uu) < !m then m := ndet.(uu));
    if !m = max_int then 0 else !m
  in
  Array.iteri
    (fun step fi ->
      if step < 4 then begin
        buf_add buf
          (Printf.sprintf "  step %d: f%d (%s), current ADI = %d\n" (step + 1) fi
             (Fault.to_string c (Fault_list.get faults fi))
             (current fi));
        Bitvec.iter_set adi.Adi_index.dsets.(fi) (fun uu -> ndet.(uu) <- ndet.(uu) - 1)
      end)
    order;
  Buffer.contents buf

let table4 evals =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("(stands in for)", Table.Left);
        ("inp", Table.Right);
        ("vec", Table.Right);
        ("min", Table.Right);
        ("max", Table.Right);
        ("ratio", Table.Right);
      ]
  in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      let s = ev.setup in
      let adi = s.Pipeline.adi in
      let inp = Array.length (Circuit.inputs s.Pipeline.circuit) in
      let vec = Patterns.count s.Pipeline.selection.Adi_index.u in
      let mn, mx, ratio =
        match Adi_index.min_max adi with
        | Some (a, b) -> (string_of_int a, string_of_int b, Table.fmt_float 2 (float_of_int b /. float_of_int a))
        | None -> ("-", "-", "-")
      in
      Table.add_row t [ ev.name; ev.paper_name; string_of_int inp; string_of_int vec; mn; mx; ratio ])
    evals;
  "Table 4: Accidental detection index\n\n" ^ Table.render t

let order_cell ev kind =
  match List.assoc_opt kind ev.Evaluation.runs with
  | None -> "-"
  | Some r -> string_of_int (Pipeline.test_count r)

let table5 evals =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("orig", Table.Right);
        ("dynm", Table.Right);
        ("0dynm", Table.Right);
        ("incr0", Table.Right);
      ]
  in
  let sums = Array.make 4 0.0 and n_complete = ref 0 in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      let cells = List.map (order_cell ev) [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0; Ordering.Incr0 ] in
      (match cells with
      | [ a; b; c; d ] when d <> "-" ->
          sums.(0) <- sums.(0) +. float_of_string a;
          sums.(1) <- sums.(1) +. float_of_string b;
          sums.(2) <- sums.(2) +. float_of_string c;
          sums.(3) <- sums.(3) +. float_of_string d;
          incr n_complete
      | _ -> ());
      Table.add_row t (ev.name :: cells))
    evals;
  if !n_complete > 0 then begin
    Table.add_rule t;
    Table.add_row t
      ("average"
      :: List.init 4 (fun i -> Table.fmt_float 1 (sums.(i) /. float_of_int !n_complete)))
  end;
  "Table 5: Test generation (test-set sizes per fault order)\n\n" ^ Table.render t

let ratio_table ~title ~value evals kinds =
  let t =
    Table.create
      (("circuit", Table.Left) :: List.map (fun k -> (Ordering.to_string k, Table.Right)) kinds)
  in
  let sums = Array.make (List.length kinds) 0.0 and n = ref 0 in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      let cells =
        List.mapi
          (fun i k ->
            match List.assoc_opt k ev.Evaluation.runs with
            | None -> "-"
            | Some _ ->
                let v = value ev k in
                sums.(i) <- sums.(i) +. v;
                Table.fmt_ratio v)
          kinds
      in
      incr n;
      Table.add_row t (ev.name :: cells))
    evals;
  if !n > 0 then begin
    Table.add_rule t;
    Table.add_row t
      ("average" :: List.mapi (fun i _ -> Table.fmt_ratio (sums.(i) /. float_of_int !n)) kinds)
  end;
  title ^ "\n\n" ^ Table.render t

let table6 evals =
  ratio_table ~title:"Table 6: Relative run times (RTord / RTorig)"
    ~value:Evaluation.runtime_ratio evals
    [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0 ]

let table7 evals =
  ratio_table ~title:"Table 7: Steepness of fault coverage curves (AVEord / AVEorig)"
    ~value:Evaluation.ave_ratio evals
    [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0 ]

let figure1 ev =
  let series kind marker label =
    match List.assoc_opt kind ev.Evaluation.runs with
    | None -> None
    | Some _ ->
        Some { Util.Plot.marker; points = Coverage.points (Evaluation.curve ev kind); label }
  in
  let all =
    List.filter_map Fun.id
      [
        series Ordering.Orig 'o' "orig";
        series Ordering.Dynm 'd' "dynm";
        series Ordering.Dynm0 'z' "0dynm";
      ]
  in
  Printf.sprintf "Figure 1: Fault coverage curve for %s\n\n%s" ev.Evaluation.name
    (Util.Plot.render ~x_label:"tests (%)" ~y_label:"fault coverage (%)" all)

let ablation_static evals =
  let kinds = [ Ordering.Decr; Ordering.Decr0; Ordering.Dynm; Ordering.Dynm0 ] in
  let t =
    Table.create
      (("circuit", Table.Left)
      :: List.map (fun k -> (Ordering.to_string k ^ " tests", Table.Right)) kinds)
  in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      Table.add_row t (ev.Evaluation.name :: List.map (order_cell ev) kinds))
    evals;
  "Ablation A1: static vs dynamic ADI orders (test-set sizes)\n\n" ^ Table.render t

let ablation_u circuit ~seed =
  let t =
    Table.create
      [
        ("target cov", Table.Right);
        ("|U|", Table.Right);
        ("U cov", Table.Right);
        ("ADI min", Table.Right);
        ("ADI max", Table.Right);
        ("0dynm tests", Table.Right);
      ]
  in
  List.iter
    (fun target ->
      let setup = Pipeline.prepare Run_config.(default |> with_seed seed |> with_target_coverage target) circuit in
      let run = Pipeline.run_order setup Ordering.Dynm0 in
      let mn, mx =
        match Adi_index.min_max setup.Pipeline.adi with
        | Some (a, b) -> (string_of_int a, string_of_int b)
        | None -> ("-", "-")
      in
      Table.add_row t
        [
          Table.fmt_float 2 target;
          string_of_int (Patterns.count setup.Pipeline.selection.Adi_index.u);
          Table.fmt_float 3 (Adi_index.coverage_of_u setup.Pipeline.adi);
          mn;
          mx;
          string_of_int (Pipeline.test_count run);
        ])
    [ 0.5; 0.75; 0.9; 0.95 ];
  "Ablation A2: sensitivity to the U-selection coverage target ("
  ^ Circuit.title circuit ^ ")\n\n" ^ Table.render t

let ablation_ndetection circuit ~seed =
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("ADI min", Table.Right);
        ("ADI max", Table.Right);
        ("0dynm tests", Table.Right);
      ]
  in
  let setup = Pipeline.prepare (Run_config.with_seed seed Run_config.default) circuit in
  let faults = setup.Pipeline.faults in
  let u = setup.Pipeline.selection.Adi_index.u in
  let row label adi =
    let order = Ordering.order Ordering.Dynm0 adi in
    let config = { Engine.default_config with seed } in
    let result = Engine.run ~config faults ~order in
    let mn, mx =
      match Adi_index.min_max adi with
      | Some (a, b) -> (string_of_int a, string_of_int b)
      | None -> ("-", "-")
    in
    Table.add_row t [ label; mn; mx; string_of_int (Patterns.count result.Engine.tests) ]
  in
  List.iter
    (fun n -> row (string_of_int n) (Adi_index.compute_n_detection ~n faults u))
    [ 1; 2; 4; 8; 16 ];
  row "full" setup.Pipeline.adi;
  "Ablation A3: n-detection estimation of ndet(u) (" ^ Circuit.title circuit
  ^ ")\n\n" ^ Table.render t

let ablation_estimator circuit ~seed =
  let t =
    Table.create
      [
        ("estimator", Table.Left);
        ("ADI min", Table.Right);
        ("ADI max", Table.Right);
        ("dynm tests", Table.Right);
        ("0dynm tests", Table.Right);
        ("dynm AVE", Table.Right);
      ]
  in
  let setup = Pipeline.prepare (Run_config.with_seed seed Run_config.default) circuit in
  let faults = setup.Pipeline.faults in
  let u = setup.Pipeline.selection.Adi_index.u in
  List.iter
    (fun (label, estimator) ->
      let adi = Adi_index.compute ~estimator faults u in
      let config = { Engine.default_config with seed } in
      let run kind = Engine.run ~config faults ~order:(Ordering.order kind adi) in
      let dynm = run Ordering.Dynm and dynm0 = run Ordering.Dynm0 in
      let mn, mx =
        match Adi_index.min_max adi with
        | Some (a, b) -> (string_of_int a, string_of_int b)
        | None -> ("-", "-")
      in
      Table.add_row t
        [
          label;
          mn;
          mx;
          string_of_int (Patterns.count dynm.Engine.tests);
          string_of_int (Patterns.count dynm0.Engine.tests);
          Table.fmt_float 2 (Coverage.ave (Coverage.of_engine_result faults dynm));
        ])
    [ ("minimum", Adi_index.Minimum); ("average", Adi_index.Average) ];
  "Ablation A4: ADI estimator, min (paper) vs average (" ^ Circuit.title circuit
  ^ ")\n\n" ^ Table.render t

let ablation_reorder evals =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("AVE orig", Table.Right);
        ("AVE orig+reorder", Table.Right);
        ("AVE dynm", Table.Right);
        ("AVE dynm+reorder", Table.Right);
      ]
  in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      let faults = ev.Evaluation.setup.Pipeline.faults in
      let ave_of pats = Coverage.ave (Coverage.of_test_set faults pats) in
      let tests kind = (Evaluation.run ev kind).Pipeline.engine.Engine.tests in
      let reordered pats = Reorder.apply pats (Reorder.greedy faults pats) in
      let t_orig = tests Ordering.Orig and t_dynm = tests Ordering.Dynm in
      Table.add_row t
        [
          ev.Evaluation.name;
          Table.fmt_float 2 (ave_of t_orig);
          Table.fmt_float 2 (ave_of (reordered t_orig));
          Table.fmt_float 2 (ave_of t_dynm);
          Table.fmt_float 2 (ave_of (reordered t_dynm));
        ])
    evals;
  "Ablation A5: a-priori ADI ordering vs a-posteriori test reordering [7]\n\n"
  ^ Table.render t

let ablation_independence evals =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("orig", Table.Right);
        ("indep [2]", Table.Right);
        ("0dynm", Table.Right);
      ]
  in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      let setup = ev.Evaluation.setup in
      let config = { Engine.default_config with seed = Pipeline.seed setup } in
      let indep_order = Independence.order setup.Pipeline.adi in
      let indep = Engine.run ~config setup.Pipeline.faults ~order:indep_order in
      Table.add_row t
        [
          ev.Evaluation.name;
          order_cell ev Ordering.Orig;
          string_of_int (Patterns.count indep.Engine.tests);
          order_cell ev Ordering.Dynm0;
        ])
    evals;
  "Ablation A6: independence-based ordering (COMPACTEST, ref. [2]) vs ADI\n\n"
  ^ Table.render t

let ablation_engines circuits =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("faults", Table.Right);
        ("agree", Table.Right);
        ("podem unt/abt", Table.Right);
        ("dalg unt/abt", Table.Right);
        ("podem decisions", Table.Right);
        ("dalg decisions", Table.Right);
      ]
  in
  List.iter
    (fun c ->
      let fl = Collapse.collapsed c in
      let scoap = Scoap.compute c in
      let pstats = Podem.fresh_stats () and dstats = Podem.fresh_stats () in
      let ctx = Podem.context ~stats:pstats c scoap in
      let agree = ref 0 in
      let p_unt = ref 0 and p_abt = ref 0 and d_unt = ref 0 and d_abt = ref 0 in
      for fi = 0 to Fault_list.count fl - 1 do
        let f = Fault_list.get fl fi in
        let p = Podem.generate_in ~backtrack_limit:1024 ctx f in
        let d = Dalg.generate ~backtrack_limit:1024 ~stats:dstats c scoap f in
        (match p with
        | Podem.Untestable -> incr p_unt
        | Podem.Aborted | Podem.Out_of_budget -> incr p_abt
        | Podem.Test _ -> ());
        (match d with
        | Podem.Untestable -> incr d_unt
        | Podem.Aborted | Podem.Out_of_budget -> incr d_abt
        | Podem.Test _ -> ());
        match (p, d) with
        | Podem.Test _, Podem.Test _
        | Podem.Untestable, Podem.Untestable
        | (Podem.Aborted | Podem.Out_of_budget), _
        | _, (Podem.Aborted | Podem.Out_of_budget) ->
            incr agree
        | _ -> ()
      done;
      Table.add_row t
        [
          Circuit.title c;
          string_of_int (Fault_list.count fl);
          Printf.sprintf "%d/%d" !agree (Fault_list.count fl);
          Printf.sprintf "%d/%d" !p_unt !p_abt;
          Printf.sprintf "%d/%d" !d_unt !d_abt;
          string_of_int pstats.Podem.decisions;
          string_of_int dstats.Podem.decisions;
        ])
    circuits;
  "Ablation A7: PODEM vs D-algorithm (outcome agreement, search effort)\n\n"
  ^ Table.render t

let ablation_compaction evals =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("orig", Table.Right);
        ("0dynm", Table.Right);
        ("orig+dyncomp", Table.Right);
        ("0dynm+dyncomp", Table.Right);
        ("dyncomp RT/orig RT", Table.Right);
      ]
  in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      let setup = ev.Evaluation.setup in
      let faults = setup.Pipeline.faults in
      let config = { Engine.default_config with seed = Pipeline.seed setup } in
      let orig_r = (Evaluation.run ev Ordering.Orig).Pipeline.engine in
      let comp order = Engine.run_compacting ~config faults ~order in
      let c_orig = comp (Ordering.order Ordering.Orig setup.Pipeline.adi) in
      let c_dynm0 = comp (Ordering.order Ordering.Dynm0 setup.Pipeline.adi) in
      let rt =
        if orig_r.Engine.runtime_s > 0.0 then
          c_orig.Engine.runtime_s /. orig_r.Engine.runtime_s
        else 1.0
      in
      Table.add_row t
        [
          ev.Evaluation.name;
          order_cell ev Ordering.Orig;
          order_cell ev Ordering.Dynm0;
          string_of_int (Patterns.count c_orig.Engine.tests);
          string_of_int (Patterns.count c_dynm0.Engine.tests);
          Table.fmt_ratio rt;
        ])
    evals;
  "Ablation A8: ADI ordering vs dynamic compaction (secondary targets, ref. [1])\n\n"
  ^ Table.render t

let ablation_truncation evals =
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("order", Table.Left);
        ("keep 25%", Table.Right);
        ("keep 50%", Table.Right);
        ("keep 75%", Table.Right);
        ("full", Table.Right);
      ]
  in
  List.iter
    (fun (ev : Evaluation.circuit_eval) ->
      List.iter
        (fun kind ->
          match List.assoc_opt kind ev.Evaluation.runs with
          | None -> ()
          | Some _ ->
              let curve = Evaluation.curve ev kind in
              let k = Coverage.tests curve in
              let pct p =
                Table.fmt_float 1
                  (100.0 *. Coverage.truncated_coverage curve ~keep:(k * p / 100))
              in
              Table.add_row t
                [
                  ev.Evaluation.name;
                  Ordering.to_string kind;
                  pct 25;
                  pct 50;
                  pct 75;
                  pct 100;
                ])
        [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0 ])
    evals;
  "Ablation A9: coverage after truncating the test set (tester-memory motivation)\n\n"
  ^ Table.render t
