type circuit_eval = {
  name : string;
  paper_name : string;
  setup : Pipeline.setup;
  runs : (Ordering.kind * Pipeline.run) list;
}

let default_orders = [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0; Ordering.Incr0 ]

let evaluate ?(orders = default_orders) ?(seed = 1) ?paper_name circuit =
  let setup = Pipeline.prepare (Run_config.with_seed seed Run_config.default) circuit in
  let runs = List.map (fun k -> (k, Pipeline.run_order setup k)) orders in
  {
    name = Circuit.title circuit;
    paper_name = Option.value ~default:(Circuit.title circuit) paper_name;
    setup;
    runs;
  }

let run ev kind = List.assoc kind ev.runs

let curve ev kind =
  let r = run ev kind in
  Coverage.of_engine_result ev.setup.Pipeline.faults r.Pipeline.engine

let ave_ratio ev kind =
  let base = Coverage.ave (curve ev Ordering.Orig) in
  if base = 0.0 then 1.0 else Coverage.ave (curve ev kind) /. base

let runtime_ratio ev kind =
  let base = (run ev Ordering.Orig).Pipeline.engine.Engine.runtime_s in
  if base <= 0.0 then 1.0 else (run ev kind).Pipeline.engine.Engine.runtime_s /. base
