(* BENCH_adi.json history retention.

   The bench driver stores its history as one single-line JSON object
   per run, newest last.  Left unchecked the file grows without bound
   — every CI smoke run and every local bench appends — so the driver
   prunes it on write: the newest [keep] entries per circuit survive,
   everything older goes.  Pruning is per circuit so that a burst of
   syn1196 runs cannot evict the only syn5378 history.

   Entries are treated as opaque strings; only the "circuit" field is
   sniffed out, with a tolerant scanner rather than a full JSON parse
   (the v1 legacy entry is minified with irregular spacing).  Entries
   without a recognisable circuit share one retention bucket. *)

let is_space c = c = ' ' || c = '\t'

(* Value of the top-level "circuit" key: find the quoted key, skip
   [space] ':' [space], then read the quoted value.  Returns [None]
   when the key is missing or not followed by a string. *)
let circuit_of_entry entry =
  let n = String.length entry in
  (* Normalise away the optional space before ':' by scanning for the
     quoted key name and then accepting whitespace around the colon. *)
  let rec find i =
    if i + 9 > n then None
    else if String.sub entry i 9 = "\"circuit\"" then
      let j = ref (i + 9) in
      while !j < n && is_space entry.[!j] do incr j done;
      if !j < n && entry.[!j] = ':' then begin
        incr j;
        while !j < n && is_space entry.[!j] do incr j done;
        if !j < n && entry.[!j] = '"' then begin
          let start = !j + 1 in
          let stop = ref start in
          while !stop < n && entry.[!stop] <> '"' do incr stop done;
          if !stop < n then Some (String.sub entry start (!stop - start))
          else None
        end
        else None
      end
      else find (i + 1)
    else find (i + 1)
  in
  find 0

let prune ~keep entries =
  if keep <= 0 then entries
  else begin
    let counts = Hashtbl.create 8 in
    (* Walk newest-first so "newest [keep] per circuit" is a simple
       running count, then restore oldest-first order. *)
    let kept_rev =
      List.filter
        (fun entry ->
          let c = Option.value ~default:"" (circuit_of_entry entry) in
          let seen = Option.value ~default:0 (Hashtbl.find_opt counts c) in
          Hashtbl.replace counts c (seen + 1);
          seen < keep)
        (List.rev entries)
    in
    List.rev kept_rev
  end
