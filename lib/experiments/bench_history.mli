(** Retention policy for the BENCH_adi.json run history.

    The bench driver keeps its history as one single-line JSON object
    per run, oldest first / newest last.  {!prune} caps that history
    so the file cannot grow without bound. *)

val circuit_of_entry : string -> string option
(** The top-level ["circuit"] field of a single-line JSON entry, or
    [None] when absent.  Tolerant of the spacing variations between
    the v1 legacy entry and current v2 lines; no full JSON parse. *)

val prune : keep:int -> string list -> string list
(** [prune ~keep entries] keeps the newest [keep] entries {e per
    circuit} ([entries] ordered oldest first), preserving order.
    Entries without a recognisable circuit share one bucket.
    [keep <= 0] disables pruning and returns [entries] unchanged. *)
