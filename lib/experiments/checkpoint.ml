module Diagnostics = Util.Diagnostics

let magic = "ADI-ATPG-CKPT"

(* v3: a digest line over the marshalled snapshot.  Marshal offers no
   integrity of its own and unmarshalling corrupted bytes is unsafe, so
   the payload is verified before a single byte is deserialised. *)
let version = 3

type t = {
  circuit_title : string;
  circuit_digest : string;
  seed : int;
  order_kind : string;
  generator : string;
  backtrack_limit : int;
  retries : int;
  order : int array;
  snapshot : Engine.snapshot;
}

let digest_of_circuit c = Digest.to_hex (Digest.string (Bench_format.to_string c))

(* Durable atomic publish: the temp file is fsynced before the rename
   (and the directory after), so a crash mid-save can never leave a
   truncated checkpoint under the final name — at worst a stale .tmp. *)
let save path t =
  let payload = Marshal.to_string t [] in
  Util.Atomic_file.write path (fun oc ->
      Printf.fprintf oc "%s v%d\n" magic version;
      Util.Failpoint.check "checkpoint.save";
      Printf.fprintf oc "%s\n" (Digest.to_hex (Digest.string payload));
      output_string oc payload)

let load path =
  let fail code fmt = Diagnostics.fail ~loc:{ file = Some path; line = 0 } code fmt in
  let ic =
    try open_in_bin path
    with Sys_error msg -> Diagnostics.fail Diagnostics.Io_error "%s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        let header = try input_line ic with End_of_file -> "" in
        (match String.split_on_char ' ' header with
        | [ m; v ] when m = magic ->
            if v <> Printf.sprintf "v%d" version then
              fail Diagnostics.Checkpoint_format
                "unsupported checkpoint version %s (this build reads v%d)" v version
        | _ ->
            fail Diagnostics.Checkpoint_format
              "not an %s checkpoint (bad header %S)" magic header);
        let digest = try input_line ic with End_of_file -> "" in
        let len = in_channel_length ic - pos_in ic in
        let payload = if len <= 0 then "" else really_input_string ic len in
        if digest <> Digest.to_hex (Digest.string payload) then
          fail Diagnostics.Checkpoint_format
            "corrupt checkpoint payload (digest mismatch)";
        (Marshal.from_string payload 0 : t)
      with
      | Failure _ | End_of_file ->
          fail Diagnostics.Checkpoint_format "truncated or corrupt checkpoint payload"
      | Sys_error msg ->
          fail Diagnostics.Checkpoint_format "unreadable checkpoint (%s)" msg)

let matches ck ~circuit ~seed ~order_kind ~generator ~backtrack_limit ~retries ~order =
  let mismatch what = Error (Printf.sprintf "checkpoint was taken with a different %s" what) in
  if ck.circuit_digest <> digest_of_circuit circuit then mismatch "circuit"
  else if ck.seed <> seed then mismatch "seed"
  else if ck.order_kind <> order_kind then mismatch "fault order"
  else if ck.generator <> generator then mismatch "generator"
  else if ck.backtrack_limit <> backtrack_limit then mismatch "backtrack limit"
  else if ck.retries <> retries then mismatch "retry count"
  else if ck.order <> order then mismatch "fault ordering"
  else Ok ()
