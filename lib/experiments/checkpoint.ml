module Diagnostics = Util.Diagnostics

let magic = "ADI-ATPG-CKPT"
let version = 2

type t = {
  circuit_title : string;
  circuit_digest : string;
  seed : int;
  order_kind : string;
  generator : string;
  backtrack_limit : int;
  retries : int;
  order : int array;
  snapshot : Engine.snapshot;
}

let digest_of_circuit c = Digest.to_hex (Digest.string (Bench_format.to_string c))

(* Durable atomic publish: the temp file is fsynced before the rename
   (and the directory after), so a crash mid-save can never leave a
   truncated checkpoint under the final name — at worst a stale .tmp. *)
let save path t =
  Util.Atomic_file.write path (fun oc ->
      Printf.fprintf oc "%s v%d\n" magic version;
      Marshal.to_channel oc t [])

let load path =
  let fail code fmt = Diagnostics.fail ~loc:{ file = Some path; line = 0 } code fmt in
  let ic =
    try open_in_bin path
    with Sys_error msg -> Diagnostics.fail Diagnostics.Io_error "%s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header = try input_line ic with End_of_file -> "" in
      (match String.split_on_char ' ' header with
      | [ m; v ] when m = magic ->
          if v <> Printf.sprintf "v%d" version then
            fail Diagnostics.Checkpoint_format
              "unsupported checkpoint version %s (this build reads v%d)" v version
      | _ ->
          fail Diagnostics.Checkpoint_format
            "not an %s checkpoint (bad header %S)" magic header);
      try (Marshal.from_channel ic : t)
      with Failure _ | End_of_file ->
        fail Diagnostics.Checkpoint_format "truncated or corrupt checkpoint payload")

let matches ck ~circuit ~seed ~order_kind ~generator ~backtrack_limit ~retries ~order =
  let mismatch what = Error (Printf.sprintf "checkpoint was taken with a different %s" what) in
  if ck.circuit_digest <> digest_of_circuit circuit then mismatch "circuit"
  else if ck.seed <> seed then mismatch "seed"
  else if ck.order_kind <> order_kind then mismatch "fault order"
  else if ck.generator <> generator then mismatch "generator"
  else if ck.backtrack_limit <> backtrack_limit then mismatch "backtrack limit"
  else if ck.retries <> retries then mismatch "retry count"
  else if ck.order <> order then mismatch "fault ordering"
  else Ok ()
