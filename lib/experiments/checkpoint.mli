(** Versioned on-disk ATPG checkpoints.

    A checkpoint is a header line ["ADI-ATPG-CKPT v<n>"] followed by a
    [Marshal]-encoded {!t}.  The payload is plain data (no closures, no
    circuit graphs), so marshalling is safe across runs of the same
    binary; the header guards against feeding it to an incompatible
    reader.  Saves go through {!Util.Atomic_file.write} (tmp-write,
    fsync, rename, directory fsync), so neither an interrupted save nor
    a crash right after the rename can leave a truncated checkpoint.

    Identity of the interrupted run is captured alongside the engine
    {!Engine.snapshot}: circuit digest, seed, ordering, generator and
    search limits.  {!matches} checks a loaded checkpoint against the
    parameters of the resuming run, because resuming under different
    parameters would silently produce a test set neither run would have
    generated. *)

type t = {
  circuit_title : string;
  circuit_digest : string;  (** hex digest of the circuit's .bench text *)
  seed : int;
  order_kind : string;  (** {!Ordering.to_string} of the fault ordering *)
  generator : string;  (** ["podem"] or ["dalg"] *)
  backtrack_limit : int;
  retries : int;
  order : int array;  (** the exact fault permutation in use *)
  snapshot : Engine.snapshot;
}

val version : int

val digest_of_circuit : Circuit.t -> string

val save : string -> t -> unit
(** Atomically write a checkpoint to the given path. *)

val load : string -> t
(** @raise Util.Diagnostics.Failed with code [Checkpoint_format] on a
    bad header, wrong version or corrupt payload, and [Io_error] when
    the file cannot be opened. *)

val matches :
  t ->
  circuit:Circuit.t ->
  seed:int ->
  order_kind:string ->
  generator:string ->
  backtrack_limit:int ->
  retries:int ->
  order:int array ->
  (unit, string) result
(** [Error reason] when the checkpoint was taken under different
    parameters than the resuming run. *)
