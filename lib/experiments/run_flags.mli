(** One table describing every {!Run_config} command-line knob.

    Each spec names a flag, documents it, and carries the
    {!Run_config} builder it applies — so validation (and its typed
    [Invalid_flag] diagnostics) lives in one place.  The cmdliner front
    end ([bin/main.ml]) builds its terms generically from this table,
    and the bench driver feeds its raw argv through {!parse}; both
    therefore accept the same flags with the same semantics. *)

type kind =
  | Flag of (bool -> Run_config.t -> Run_config.t)
  | Int of (int -> Run_config.t -> Run_config.t)
  | Float of (float -> Run_config.t -> Run_config.t)
  | String of (string -> Run_config.t -> Run_config.t)

type spec = { names : string list; docv : string; doc : string; kind : kind }

val pipeline_specs : spec list
(** [--seed], [--jobs]/[-j], [--pool], [--target-coverage],
    [--faultsim-kernel]. *)

val engine_specs : spec list
(** [--order], [--backtracks], [--retries], budgets,
    checkpoint/resume. *)

val observability_specs : spec list
(** [--metrics], [--trace FILE]. *)

val atpg_specs : spec list
(** Everything — the [adi-atpg atpg] flag set. *)

val all : spec list

val with_order_name : string -> Run_config.t -> Run_config.t
(** Apply [--order]'s string form.  @raise Util.Diagnostics.Failed
    (code [Invalid_flag]) on an unknown order name. *)

val with_kernel_name : string -> Run_config.t -> Run_config.t
(** Apply [--faultsim-kernel]'s string form ([event], [stem] or
    [cpt]).  @raise Util.Diagnostics.Failed (code [Invalid_flag]) on an
    unknown kernel name. *)

val parse :
  ?specs:spec list -> init:Run_config.t -> string list -> Run_config.t * string list
(** Fold argv-style tokens over [init]: [--name value], bare
    [--flag], and [-n value] for single-letter names.  Unrecognised
    tokens are returned, in order, for the caller's own parsing.
    @raise Util.Diagnostics.Failed (code [Invalid_flag]) on a
    malformed or out-of-range value. *)
