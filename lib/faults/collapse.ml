type stages = {
  full : int;
  equivalence : int;
  prime : int;
  checkpoints : int;
  probes : int;
}

type result = {
  representatives : Fault_list.t;
  class_of : int array;
  class_sizes : int array;
  dropped : bool array;
  prime : Fault_list.t;
  probe_nodes : int array;
  probe_of : int array;
  stages : stages;
}

(* Union-find with path compression; union by smaller root index so the
   class representative is the smallest member. *)
let rec find parent i = if parent.(i) = i then i else begin
    parent.(i) <- find parent parent.(i);
    parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb

(* A checkpoint fault sits on a primary input or on a fanout branch —
   the classic checkpoint theorem's generating set. *)
let is_checkpoint c (f : Fault.t) =
  match f.Fault.site with
  | Fault.Stem g -> Circuit.kind c g = Gate.Input
  | Fault.Branch { gate; pin } -> Circuit.fanout_count c (Circuit.fanins c gate).(pin) <> 1

let equivalence fl =
  let c = Fault_list.circuit fl in
  let n = Fault_list.count fl in
  let parent = Array.init n Fun.id in
  let idx f =
    match Fault_list.index fl f with
    | Some i -> i
    | None -> invalid_arg "Collapse.equivalence: fault list is not a full universe"
  in
  let join f g = union parent (idx f) (idx g) in
  Circuit.iter_nodes c (fun g ->
      let k = Circuit.kind c g in
      let pins = Array.length (Circuit.fanins c g) in
      (* Controlling-value input faults fold into the output fault. *)
      (match Gate.controlling_value k with
      | Some cv ->
          let out_val = if Gate.inverting k then not cv else cv in
          for p = 0 to pins - 1 do
            join (Fault.branch ~gate:g ~pin:p cv) (Fault.stem g out_val)
          done
      | None -> ());
      (* Buffer / inverter: both polarities fold through. *)
      (match k with
      | Gate.Buf ->
          join (Fault.branch ~gate:g ~pin:0 false) (Fault.stem g false);
          join (Fault.branch ~gate:g ~pin:0 true) (Fault.stem g true)
      | Gate.Not ->
          join (Fault.branch ~gate:g ~pin:0 false) (Fault.stem g true);
          join (Fault.branch ~gate:g ~pin:0 true) (Fault.stem g false)
      | _ -> ());
      (* Fanout-free stem: the stem and its only branch are one line. *)
      let fo = Circuit.fanouts c g in
      if Array.length fo = 1 && not (Circuit.is_output c g) then begin
        let consumer = fo.(0) in
        let cf = Circuit.fanins c consumer in
        let uses = ref [] in
        Array.iteri (fun p f -> if f = g then uses := p :: !uses) cf;
        match !uses with
        | [ p ] ->
            join (Fault.stem g false) (Fault.branch ~gate:consumer ~pin:p false);
            join (Fault.stem g true) (Fault.branch ~gate:consumer ~pin:p true)
        | _ -> () (* same signal on several pins: stem differs from each branch *)
      end);
  (* Extract representatives in index order. *)
  let is_rep = Array.make n false in
  for i = 0 to n - 1 do
    is_rep.(find parent i) <- true
  done;
  let rep_ids = ref [] in
  for i = n - 1 downto 0 do
    if is_rep.(i) then rep_ids := i :: !rep_ids
  done;
  let rep_ids = Array.of_list !rep_ids in
  let rep_pos = Array.make n (-1) in
  Array.iteri (fun pos i -> rep_pos.(i) <- pos) rep_ids;
  let class_of = Array.init n (fun i -> rep_pos.(find parent i)) in
  let n_reps = Array.length rep_ids in
  let class_sizes = Array.make n_reps 0 in
  Array.iter (fun r -> class_sizes.(r) <- class_sizes.(r) + 1) class_of;
  let representatives = Fault_list.sub fl rep_ids in
  (* Dominance dropping.  For a gate with controlling value [cv] the
     output fault stuck at the uncontrolled value dominates every
     input-branch fault stuck at the non-controlling value: any test
     for the branch fault sets the output to the controlled value and
     propagates the flip, so it detects the output fault too.  The
     dominator's whole equivalence class is therefore covered and can
     leave the target list, provided the justifying branch fault's
     class survives: each drop records a justification into a class
     that is un-dropped at drop time, so justification chains carry
     strictly increasing drop times and must terminate at a kept
     class — no circular discharge. *)
  let dropped = Array.make n_reps false in
  Circuit.iter_nodes c (fun g ->
      let k = Circuit.kind c g in
      match Gate.controlling_value k with
      | None -> ()
      | Some cv ->
          let pins = Array.length (Circuit.fanins c g) in
          if pins > 0 then begin
            let controlled_out = if Gate.inverting k then not cv else cv in
            let ro = class_of.(idx (Fault.stem g (not controlled_out))) in
            if not dropped.(ro) then begin
              let justified = ref false in
              for p = 0 to pins - 1 do
                if not !justified then begin
                  let rb = class_of.(idx (Fault.branch ~gate:g ~pin:p (not cv))) in
                  if rb <> ro && not dropped.(rb) then justified := true
                end
              done;
              if !justified then dropped.(ro) <- true
            end
          end);
  let prime_ids =
    Array.of_list
      (List.filteri (fun ri _ -> not dropped.(ri)) (Array.to_list rep_ids))
  in
  let prime = Fault_list.sub fl prime_ids in
  (* Checkpoint classes: how many classes contain a PI or fanout-branch
     fault (the checkpoint theorem's generating set) — reported, not
     used for reduction, since detection data is needed per class. *)
  let class_has_ck = Array.make n_reps false in
  for i = 0 to n - 1 do
    if is_checkpoint c (Fault_list.get fl i) then class_has_ck.(class_of.(i)) <- true
  done;
  let checkpoints = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 class_has_ck in
  (* The expansion map: representatives grouped by injection site.  The
     simulator derives one observability word per distinct site node (a
     "probe") and re-expands it to every fault of the site via its
     activation word, so the simulated universe is the probe set. *)
  let site_seen = Array.make (Circuit.node_count c) false in
  for ri = 0 to n_reps - 1 do
    site_seen.(Fault.site_node (Fault_list.get representatives ri)) <- true
  done;
  let probe_list = ref [] in
  for v = Circuit.node_count c - 1 downto 0 do
    if site_seen.(v) then probe_list := v :: !probe_list
  done;
  let probe_nodes = Array.of_list !probe_list in
  let site_pos = Array.make (Circuit.node_count c) (-1) in
  Array.iteri (fun pos v -> site_pos.(v) <- pos) probe_nodes;
  let probe_of =
    Array.init n_reps (fun ri ->
        site_pos.(Fault.site_node (Fault_list.get representatives ri)))
  in
  let stages =
    {
      full = n;
      equivalence = n_reps;
      prime = Array.length prime_ids;
      checkpoints;
      probes = Array.length probe_nodes;
    }
  in
  { representatives; class_of; class_sizes; dropped; prime; probe_nodes; probe_of; stages }

let collapsed c = (equivalence (Fault_list.full c)).representatives

let collapse_ratio r =
  float_of_int (Array.length r.class_of)
  /. float_of_int (Fault_list.count r.representatives)

let dominance_ratio r =
  float_of_int (Array.length r.class_of) /. float_of_int (max 1 r.stages.prime)

let expansion_size r = Array.length r.probe_nodes
