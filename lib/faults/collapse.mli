(** Structural fault collapsing: equivalence classes, dominance
    dropping, and the site-probe expansion map.

    {b Equivalence.}  Two faults are equivalent when every test
    detecting one detects the other.  Structural rules capture the
    classic cases:

    - a controlling-value input fault of an AND/NAND (s-a-0) or OR/NOR
      (s-a-1) gate is equivalent to the corresponding output fault;
    - input and output faults of a buffer/inverter are equivalent
      (polarity flipped for the inverter);
    - a stem fault is equivalent to the branch fault of its single
      consumer pin when the net does not fan out.

    Collapsing shrinks the target list roughly 2-3x without changing
    which tests exist, and the representative's detection data stands
    for the whole class.  The paper targets "the set of single stuck-at
    faults"; like all practical ATPG flows we target the collapsed set
    and report class sizes alongside.

    {b Dominance.}  Fault [g] dominates fault [f] when every test for
    [f] detects [g] ([D(f) ⊆ D(g)]).  Structurally, the output fault of
    a gate stuck at its uncontrolled value dominates each input-branch
    fault stuck at the non-controlling value.  Dominated-covered
    classes ([dropped]) can leave an ATPG {e target} list — any test
    set covering the survivors covers them — but their detection sets
    are {e not} recoverable from the survivors' (dominance is an
    inclusion, not an equality), so ADI computation still spans the
    whole collapsed universe.  The [prime] list and the staged counts
    feed target-list reduction and reporting.

    {b Expansion map.}  What the fault simulator actually has to
    propagate is smaller than the collapsed universe: every fault of a
    class injects its effect at one node ({!Fault.site_node}), and the
    detection word factorises exactly as
    [D(f) = activation(f) AND obs(site_node f)] per 64-pattern block
    (see {!Faultsim}).  [probe_nodes]/[probe_of] group representatives
    by injection site, so the simulated universe is the {e probe} set —
    one observability word per distinct site — and per-fault detection
    bits are re-expanded deterministically from the shared word. *)

type stages = {
  full : int;  (** full single-stuck-at universe *)
  equivalence : int;  (** classes after equivalence collapsing *)
  prime : int;  (** classes surviving dominance dropping *)
  checkpoints : int;  (** classes containing a PI or fanout-branch fault *)
  probes : int;  (** distinct injection sites — the expansion-map size *)
}

type result = {
  representatives : Fault_list.t;  (** one fault per equivalence class *)
  class_of : int array;
      (** full-list index -> representative index in [representatives] *)
  class_sizes : int array;  (** representative index -> class size *)
  dropped : bool array;
      (** representative index -> class is dominance-covered: some
          surviving class's tests are guaranteed to detect it *)
  prime : Fault_list.t;  (** representatives with [dropped] false *)
  probe_nodes : int array;
      (** distinct injection-site nodes of the representatives,
          increasing node id *)
  probe_of : int array;  (** representative index -> index into [probe_nodes] *)
  stages : stages;
}

val equivalence : Fault_list.t -> result
(** Collapse a {!Fault_list.full} universe.  The representative of each
    class is its smallest full-list index, and representatives keep
    their relative full-list order, so the collapsed list's natural
    order is still the paper's [Forig].  Dominance dropping and the
    expansion map are computed alongside (both are cheap structural
    passes). *)

val collapsed : Circuit.t -> Fault_list.t
(** [equivalence (Fault_list.full c)].representatives. *)

val collapse_ratio : result -> float
(** |full| / |equivalence classes| — the equivalence stage alone. *)

val dominance_ratio : result -> float
(** |full| / |prime| — equivalence and dominance stages together. *)

val expansion_size : result -> int
(** Number of probe nodes, [Array.length probe_nodes]. *)

val is_checkpoint : Circuit.t -> Fault.t -> bool
(** Is the fault a checkpoint fault (on a primary input or a fanout
    branch)? *)
