module Bitvec = Util.Bitvec
module Parallel = Util.Parallel
module Trace = Util.Trace
module Metrics = Util.Metrics

type kernel = Event | Stem | Cpt

let kernel_name = function Event -> "event" | Stem -> "stem" | Cpt -> "cpt"
let kernel_names = [ "event"; "stem"; "cpt" ]

let kernel_of_string = function
  | "event" -> Some Event
  | "stem" -> Some Stem
  | "cpt" -> Some Cpt
  | _ -> None

type workspace = {
  circuit : Circuit.t;
  fval : int64 array;  (* faulty value, valid iff dirty *)
  dirty : bool array;
  scheduled : bool array;
  buckets : int list array;  (* pending nodes per level *)
  out_pos : int array;  (* node -> index in Circuit.outputs, or -1 *)
  mutable touched : int list;  (* nodes with dirty set *)
  mutable sched_nodes : int list;  (* nodes with scheduled set *)
  (* Per-block observability memo for the probe kernels: [obs_val.(n)]
     is valid iff [obs_stamp.(n) = epoch]; bumping the epoch (one
     increment per pattern block) invalidates the whole table. *)
  obs_val : int64 array;
  obs_stamp : int array;
  mutable epoch : int;
  (* Observability counters.  Workspaces are domain-private, so worker
     lanes may bump these freely; the leader merges them after the
     fork-join ({!publish_stats}). *)
  mutable stat_propagations : int;
  mutable stat_stem_toggles : int;
  mutable stat_stem_observable : int;
  mutable stat_stem_detect_words : int;
  mutable stat_dom_truncations : int;
  mutable stat_goodsim_s : float;
}

let workspace c =
  if Circuit.has_state c then
    invalid_arg "Faultsim.workspace: circuit has flip-flops; apply Scan.combinational first";
  let n = Circuit.node_count c in
  let out_pos = Array.make n (-1) in
  Array.iteri (fun i o -> out_pos.(o) <- i) (Circuit.outputs c);
  {
    circuit = c;
    fval = Array.make n 0L;
    dirty = Array.make n false;
    scheduled = Array.make n false;
    buckets = Array.make (Circuit.depth c + 1) [];
    out_pos;
    touched = [];
    sched_nodes = [];
    obs_val = Array.make n 0L;
    obs_stamp = Array.make n (-1);
    epoch = 0;
    stat_propagations = 0;
    stat_stem_toggles = 0;
    stat_stem_observable = 0;
    stat_stem_detect_words = 0;
    stat_dom_truncations = 0;
    stat_goodsim_s = 0.0;
  }

(* Invalidate the observability memo; call once per new good-value
   block. *)
let new_block ws = ws.epoch <- ws.epoch + 1

type sim_stats = {
  propagations : int;
  stem_toggles : int;
  stem_observable : int;
  stem_detect_words : int;
  dom_truncations : int;
  goodsim_s : float;
}

let stats ws =
  {
    propagations = ws.stat_propagations;
    stem_toggles = ws.stat_stem_toggles;
    stem_observable = ws.stat_stem_observable;
    stem_detect_words = ws.stat_stem_detect_words;
    dom_truncations = ws.stat_dom_truncations;
    goodsim_s = ws.stat_goodsim_s;
  }

let publish_stats tr wss =
  if Trace.enabled tr then begin
    let p = ref 0 and t = ref 0 and o = ref 0 and d = ref 0 and dt = ref 0 in
    Array.iter
      (fun ws ->
        p := !p + ws.stat_propagations;
        t := !t + ws.stat_stem_toggles;
        o := !o + ws.stat_stem_observable;
        d := !d + ws.stat_stem_detect_words;
        dt := !dt + ws.stat_dom_truncations;
        if ws.stat_goodsim_s > 0.0 then
          Metrics.observe (Trace.histogram tr "goodsim.lane_s") ws.stat_goodsim_s)
      wss;
    Metrics.add (Trace.counter tr "faultsim.propagations") !p;
    if !t > 0 then begin
      Metrics.add (Trace.counter tr "faultsim.stem_toggles") !t;
      Metrics.add (Trace.counter tr "faultsim.stem_observable") !o;
      Metrics.add (Trace.counter tr "faultsim.stem_detect_words") !d
    end;
    if !dt > 0 then Metrics.add (Trace.counter tr "faultsim.dom_truncations") !dt
  end

(* Goodsim timing accumulates into the (domain-private) workspace; the
   [observed] flag is captured by the lane closure so the disabled path
   pays one branch and no clock reads. *)
let timed_goodsim observed ws c pats b good =
  if observed then begin
    let t0 = Util.Budget.default_clock () in
    Goodsim.block_into c pats b good;
    ws.stat_goodsim_s <- ws.stat_goodsim_s +. (Util.Budget.default_clock () -. t0)
  end
  else Goodsim.block_into c pats b good

(* Faulty value of the injection node for the current block. *)
let injected_value ws ~good (f : Fault.t) =
  let c = ws.circuit in
  let stuck = if f.stuck_at then -1L else 0L in
  match f.site with
  | Fault.Stem _ -> stuck
  | Fault.Branch { gate; pin } ->
      let fanins = Circuit.fanins c gate in
      let k = Circuit.kind c gate in
      (* Evaluate the gate with the faulted pin forced to the stuck
         value; other pins read good values.  Mirrors
         Logic_word.eval_fanins with one override. *)
      let v i = if i = pin then stuck else good.(fanins.(i)) in
      let n = Array.length fanins in
      let fold op init =
        let acc = ref init in
        for i = 0 to n - 1 do
          acc := op !acc (v i)
        done;
        !acc
      in
      (match k with
      | Gate.Const0 | Gate.Const1 | Gate.Input ->
          invalid_arg "Faultsim: branch fault on a node without input pins"
      | Gate.Buf | Gate.Dff -> v 0
      | Gate.Not -> Int64.lognot (v 0)
      | Gate.And -> fold Int64.logand (-1L)
      | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
      | Gate.Or -> fold Int64.logor 0L
      | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
      | Gate.Xor -> fold Int64.logxor 0L
      | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L))

let schedule ws node =
  if not ws.scheduled.(node) then begin
    ws.scheduled.(node) <- true;
    ws.sched_nodes <- node :: ws.sched_nodes;
    let l = Circuit.level ws.circuit node in
    ws.buckets.(l) <- node :: ws.buckets.(l)
  end

let eval_faulty ws ~good node =
  let c = ws.circuit in
  let fanins = Circuit.fanins c node in
  let n = Array.length fanins in
  let v i =
    let f = fanins.(i) in
    if ws.dirty.(f) then ws.fval.(f) else good.(f)
  in
  let fold op init =
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := op !acc (v i)
    done;
    !acc
  in
  match Circuit.kind c node with
  | Gate.Const0 -> 0L
  | Gate.Const1 -> -1L
  | Gate.Input -> good.(node)
  | Gate.Buf | Gate.Dff -> v 0
  | Gate.Not -> Int64.lognot (v 0)
  | Gate.And -> fold Int64.logand (-1L)
  | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)

(* Event-driven propagation of an arbitrary injected value [v0] at node
   [n0].  With [stop < 0] the effect is chased to the primary outputs
   and the result is the lanes in which any PO diverges from the good
   values.  With [stop >= 0] only levels up to [stop]'s are processed
   and the result is the divergence at [stop] itself — the "reach"
   word of the dominator-truncated kernel; nodes scheduled beyond the
   stop level are unwound without being evaluated. *)
let propagate_core ws ~good ~stop n0 v0 =
  let c = ws.circuit in
  ws.stat_propagations <- ws.stat_propagations + 1;
  let to_po = stop < 0 in
  let detect = ref 0L in
  let record node value =
    if value <> good.(node) then begin
      ws.fval.(node) <- value;
      if not ws.dirty.(node) then begin
        ws.dirty.(node) <- true;
        ws.touched <- node :: ws.touched
      end;
      if to_po && Circuit.is_output c node then
        detect := Int64.logor !detect (Int64.logxor value good.(node));
      Array.iter (fun s -> schedule ws s) (Circuit.fanouts c node)
    end
  in
  record n0 v0;
  (* Propagate by increasing level; all fanins of a level-L node are
     final before L is processed. *)
  let last = if to_po then Array.length ws.buckets - 1 else Circuit.level c stop in
  if ws.sched_nodes <> [] then
    for l = 0 to last do
      let pending = ws.buckets.(l) in
      if pending <> [] then begin
        ws.buckets.(l) <- [];
        List.iter
          (fun node -> if node <> n0 then record node (eval_faulty ws ~good node))
          pending
      end
    done;
  if (not to_po) && ws.dirty.(stop) then
    detect := Int64.logxor ws.fval.(stop) good.(stop);
  (* Reset scratch state (including buckets past a truncated sweep). *)
  List.iter (fun node -> ws.dirty.(node) <- false) ws.touched;
  List.iter
    (fun node ->
      ws.scheduled.(node) <- false;
      if not to_po then ws.buckets.(Circuit.level c node) <- [])
    ws.sched_nodes;
  ws.touched <- [];
  ws.sched_nodes <- [];
  !detect

let propagate ws ~good n0 v0 = propagate_core ws ~good ~stop:(-1) n0 v0

let detect_block ws ~good (f : Fault.t) =
  propagate ws ~good (Fault.site_node f) (injected_value ws ~good f)

(* Per-output variant of {!detect_block}: the same event-driven sweep,
   but each primary output's divergence word is written into [out] at
   the output's declaration index.  Traversal order is identical to
   [detect_block], so the OR of the per-output words equals its
   detection word bit-for-bit. *)
let detect_block_outputs ws ~good ~out (f : Fault.t) =
  let c = ws.circuit in
  Array.fill out 0 (Array.length out) 0L;
  ws.stat_propagations <- ws.stat_propagations + 1;
  let detect = ref 0L in
  let record node value =
    if value <> good.(node) then begin
      ws.fval.(node) <- value;
      if not ws.dirty.(node) then begin
        ws.dirty.(node) <- true;
        ws.touched <- node :: ws.touched
      end;
      let p = ws.out_pos.(node) in
      if p >= 0 then begin
        let d = Int64.logxor value good.(node) in
        out.(p) <- d;
        detect := Int64.logor !detect d
      end;
      Array.iter (fun s -> schedule ws s) (Circuit.fanouts c node)
    end
  in
  let n0 = Fault.site_node f in
  record n0 (injected_value ws ~good f);
  if ws.sched_nodes <> [] then
    for l = 0 to Array.length ws.buckets - 1 do
      let pending = ws.buckets.(l) in
      if pending <> [] then begin
        ws.buckets.(l) <- [];
        List.iter
          (fun node -> if node <> n0 then record node (eval_faulty ws ~good node))
          pending
      end
    done;
  List.iter (fun node -> ws.dirty.(node) <- false) ws.touched;
  List.iter (fun node -> ws.scheduled.(node) <- false) ws.sched_nodes;
  ws.touched <- [];
  ws.sched_nodes <- [];
  !detect

let block_mask pats b =
  let cnt = Patterns.count pats - (b * 64) in
  if cnt >= 64 then -1L else Int64.sub (Int64.shift_left 1L cnt) 1L

(* --- probe kernels: stem-first and critical-path tracing ---------- *)

(* Gate output with every pin fed by [x] complemented (a gate may read
   the same signal on several pins); other pins read good values.
   XORed against the good output this is the word of lanes in which a
   value change at [x] passes through the gate. *)
let eval_flip c ~good node x =
  let fanins = Circuit.fanins c node in
  let n = Array.length fanins in
  let v i =
    let f = fanins.(i) in
    if f = x then Int64.lognot good.(f) else good.(f)
  in
  let fold op init =
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := op !acc (v i)
    done;
    !acc
  in
  match Circuit.kind c node with
  | Gate.Const0 -> 0L
  | Gate.Const1 -> -1L
  | Gate.Input -> good.(node)
  | Gate.Buf | Gate.Dff -> v 0
  | Gate.Not -> Int64.lognot (v 0)
  | Gate.And -> fold Int64.logand (-1L)
  | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)

let no_ipdom : int array = [||]

(* Observability of a flip at [n]: the lanes in which complementing
   [n]'s value changes some primary output.  Memoised per block; each
   of the 64 lanes is an independent scalar simulation, so:

   - a primary output observes itself in every lane;
   - a dead node (no path to a PO) is never observed;
   - a node with a unique consumer [g] is observed iff the flip passes
     through [g] (local re-evaluation) and [g] is observed — the
     classic stem-first sensitization step;
   - a multi-fanout stem needs real propagation.  The stem-first
     kernel ([ipdom] empty) pays one full event-driven propagation.
     The critical-path-tracing kernel truncates that propagation at
     the stem's immediate post-dominator [d]: every output-bound path
     funnels through [d], corruption that misses [d] is observably
     dead, and nodes past [d] read good side-input values — so
     [obs(n) = reach(n -> d) AND obs(d)] exactly, and the chain
     grounds at a PO or a sink-dominated stem.  Dominator segments
     shared by several stems are computed once per block. *)
let rec obs_word ws ~good ~ipdom n =
  if ws.obs_stamp.(n) = ws.epoch then ws.obs_val.(n)
  else begin
    let c = ws.circuit in
    let v =
      if Circuit.is_output c n then -1L
      else
        let fo = Circuit.fanouts c n in
        match Array.length fo with
        | 0 -> 0L
        | 1 ->
            let g = fo.(0) in
            let s = Int64.logxor good.(g) (eval_flip c ~good g n) in
            if s = 0L then 0L else Int64.logand s (obs_word ws ~good ~ipdom g)
        | _ ->
            ws.stat_stem_toggles <- ws.stat_stem_toggles + 1;
            let w =
              if Array.length ipdom = 0 then propagate ws ~good n (Int64.lognot good.(n))
              else
                match ipdom.(n) with
                | -2 -> 0L
                | -1 -> propagate ws ~good n (Int64.lognot good.(n))
                | d ->
                    ws.stat_dom_truncations <- ws.stat_dom_truncations + 1;
                    let reach = propagate_core ws ~good ~stop:d n (Int64.lognot good.(n)) in
                    if reach = 0L then 0L else Int64.logand reach (obs_word ws ~good ~ipdom d)
            in
            if w <> 0L then ws.stat_stem_observable <- ws.stat_stem_observable + 1;
            w
    in
    ws.obs_stamp.(n) <- ws.epoch;
    ws.obs_val.(n) <- v;
    v
  end

(* Exact per-fault detection via the probe decomposition: every lane
   is an independent scalar simulation, so the faulty circuit diverges
   from the good one at the injection site exactly in the activation
   lanes, and downstream each activated lane behaves as a full flip at
   the site.  Hence [D(f) = activation(f) AND obs(site_node f)] — the
   observability word is shared ("probed" once) by every fault of the
   site, which is the re-expansion step of the collapsed-universe
   simulation. *)
let detect_probe ws ~good ~ipdom (f : Fault.t) =
  let n = Fault.site_node f in
  let act = Int64.logxor (injected_value ws ~good f) good.(n) in
  if act = 0L then 0L
  else
    let d = Int64.logand act (obs_word ws ~good ~ipdom n) in
    if d <> 0L then ws.stat_stem_detect_words <- ws.stat_stem_detect_words + 1;
    d

(* Per-circuit structural tables a kernel needs. *)
let kernel_ipdom c = function
  | Event | Stem -> no_ipdom
  | Cpt -> Dominators.ipdom_raw (Dominators.compute c)

let detect_with ws ~kernel ~ipdom ~good f =
  match kernel with
  | Event -> detect_block ws ~good f
  | Stem | Cpt -> detect_probe ws ~good ~ipdom f

(* --- whole-pattern-set drivers ------------------------------------ *)

let sim_attrs kernel fl pats jobs =
  [ ("kernel", Trace.Str (kernel_name kernel));
    ("faults", Trace.Int (Fault_list.count fl));
    ("patterns", Trace.Int (Patterns.count pats)); ("jobs", Trace.Int jobs) ]

let detection_sets_serial ~kernel fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr ~attrs:(sim_attrs kernel fl pats 1) "faultsim.detection_sets" @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let good = Array.make (Circuit.node_count c) 0L in
  for b = 0 to Patterns.blocks pats - 1 do
    timed_goodsim observed ws c pats b good;
    new_block ws;
    let mask = block_mask pats b in
    for fi = 0 to nf - 1 do
      let d = Int64.logand (detect_with ws ~kernel ~ipdom ~good (Fault_list.get fl fi)) mask in
      if d <> 0L then (Bitvec.words dsets.(fi)).(b) <- d
    done
  done;
  publish_stats tr [| ws |];
  dsets

(* Probe simulation over a pool.  Detection sets have no cross-block
   dependency, so each lane owns a static slice of the pattern blocks
   — private workspace and good-value buffer, one fork-join for the
   whole run — and writes only its own blocks' words of each detection
   set.  Every (fault, block) word is computed by exactly one lane and
   its value depends only on (circuit, fault, block), so the result is
   bit-identical to the serial path regardless of scheduling. *)
let detection_sets_pooled ~kernel pool fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(sim_attrs kernel fl pats (Parallel.jobs pool))
    "faultsim.detection_sets"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let nblocks = Patterns.blocks pats in
  let k = min (Parallel.jobs pool) (max nblocks 1) in
  let wss = Array.init k (fun _ -> workspace c) in
  Parallel.run pool
    (Array.init k (fun lane ->
         fun () ->
          let ws = wss.(lane) in
          let good = Array.make (Circuit.node_count c) 0L in
          for b = lane * nblocks / k to ((lane + 1) * nblocks / k) - 1 do
            timed_goodsim observed ws c pats b good;
            new_block ws;
            let mask = block_mask pats b in
            for fi = 0 to nf - 1 do
              let d =
                Int64.logand (detect_with ws ~kernel ~ipdom ~good (Fault_list.get fl fi)) mask
              in
              if d <> 0L then (Bitvec.words dsets.(fi)).(b) <- d
            done
          done));
  publish_stats tr wss;
  dsets

(* Kernel defaults preserve the historical behaviour: serial
   [detection_sets] is plain per-fault event propagation, the pooled
   path rides the stem-first kernel, and the dropping-family drivers
   stay event-driven unless a kernel is requested. *)
let auto_detection_kernel jobs = if jobs <= 1 then Event else Stem

let detection_sets ?(jobs = 1) ?kernel fl pats =
  let k = match kernel with Some k -> k | None -> auto_detection_kernel jobs in
  if jobs <= 1 then detection_sets_serial ~kernel:k fl pats
  else Parallel.with_pool ~jobs (fun pool -> detection_sets_pooled ~kernel:k pool fl pats)

let detection_sets_stem_first fl pats =
  Parallel.with_pool ~jobs:1 (fun pool -> detection_sets_pooled ~kernel:Stem pool fl pats)

let ndet dsets pats =
  let counts = Array.make (Patterns.count pats) 0 in
  Array.iter (fun d -> Bitvec.iter_set d (fun p -> counts.(p) <- counts.(p) + 1)) dsets;
  counts

type drop_result = { first_detection : int array; detected : int }

(* Per-block scan of the live faults over a pool: detection words are
   produced in parallel on static slices of the alive array, then
   merged serially in alive order — the same order the serial loop
   visits, so dropping decisions are identical. *)
let scan_alive ~kernel ~ipdom pool wss fl ~good ~mask alive det =
  let n = Array.length alive in
  let lanes = Parallel.jobs pool in
  let k = min lanes (max n 1) in
  Parallel.run pool
    (Array.init k (fun lane ->
         fun () ->
          let ws = wss.(lane) in
          let lo = lane * n / k and hi = (lane + 1) * n / k in
          for i = lo to hi - 1 do
            det.(i) <-
              Int64.logand
                (detect_with ws ~kernel ~ipdom ~good (Fault_list.get fl alive.(i)))
                mask
          done))

let with_dropping_serial ~kernel fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr ~attrs:(sim_attrs kernel fl pats 1) "faultsim.with_dropping" @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let first = Array.make nf (-1) in
  let detected = ref 0 in
  let alive = ref (List.init nf Fun.id) in
  let good = Array.make (Circuit.node_count c) 0L in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && !alive <> [] do
    timed_goodsim observed ws c pats !b good;
    new_block ws;
    let mask = block_mask pats !b in
    alive :=
      List.filter
        (fun fi ->
          let d =
            Int64.logand (detect_with ws ~kernel ~ipdom ~good (Fault_list.get fl fi)) mask
          in
          if d = 0L then true
          else begin
            first.(fi) <- (!b * 64) + Bitvec.ctz d;
            incr detected;
            false
          end)
        !alive;
    incr b
  done;
  publish_stats tr [| ws |];
  { first_detection = first; detected = !detected }

let with_dropping_pooled ~kernel pool fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr ~attrs:(sim_attrs kernel fl pats (Parallel.jobs pool)) "faultsim.with_dropping"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let lanes = Parallel.jobs pool in
  let wss = Array.init lanes (fun _ -> workspace c) in
  let nf = Fault_list.count fl in
  let first = Array.make nf (-1) in
  let detected = ref 0 in
  let alive = ref (Array.init nf Fun.id) in
  let det = Array.make nf 0L in
  let good = Array.make (Circuit.node_count c) 0L in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && Array.length !alive > 0 do
    timed_goodsim observed wss.(0) c pats !b good;
    Array.iter new_block wss;
    let mask = block_mask pats !b in
    let a = !alive in
    scan_alive ~kernel ~ipdom pool wss fl ~good ~mask a det;
    let next = ref [] in
    for i = Array.length a - 1 downto 0 do
      let d = det.(i) in
      if d = 0L then next := a.(i) :: !next
      else begin
        first.(a.(i)) <- (!b * 64) + Bitvec.ctz d;
        incr detected
      end
    done;
    alive := Array.of_list !next;
    incr b
  done;
  publish_stats tr wss;
  { first_detection = first; detected = !detected }

let with_dropping ?(jobs = 1) ?(kernel = Event) fl pats =
  if jobs <= 1 then with_dropping_serial ~kernel fl pats
  else Parallel.with_pool ~jobs (fun pool -> with_dropping_pooled ~kernel pool fl pats)

let n_detection_serial ~kernel fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats 1)
    "faultsim.n_detection"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let counts = Array.make nf 0 in
  let good = Array.make (Circuit.node_count c) 0L in
  let alive = ref (List.init nf Fun.id) in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && !alive <> [] do
    timed_goodsim observed ws c pats !b good;
    new_block ws;
    let mask = block_mask pats !b in
    alive :=
      List.filter
        (fun fi ->
          let d =
            Int64.logand (detect_with ws ~kernel ~ipdom ~good (Fault_list.get fl fi)) mask
          in
          if d <> 0L then counts.(fi) <- min n (counts.(fi) + Bitvec.popcount_word d);
          counts.(fi) < n)
        !alive;
    incr b
  done;
  publish_stats tr [| ws |];
  counts

let n_detection_pooled ~kernel pool fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats (Parallel.jobs pool))
    "faultsim.n_detection"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let lanes = Parallel.jobs pool in
  let wss = Array.init lanes (fun _ -> workspace c) in
  let nf = Fault_list.count fl in
  let counts = Array.make nf 0 in
  let good = Array.make (Circuit.node_count c) 0L in
  let alive = ref (Array.init nf Fun.id) in
  let det = Array.make nf 0L in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && Array.length !alive > 0 do
    timed_goodsim observed wss.(0) c pats !b good;
    Array.iter new_block wss;
    let mask = block_mask pats !b in
    let a = !alive in
    scan_alive ~kernel ~ipdom pool wss fl ~good ~mask a det;
    let next = ref [] in
    for i = Array.length a - 1 downto 0 do
      let fi = a.(i) in
      let d = det.(i) in
      if d <> 0L then counts.(fi) <- min n (counts.(fi) + Bitvec.popcount_word d);
      if counts.(fi) < n then next := fi :: !next
    done;
    alive := Array.of_list !next;
    incr b
  done;
  publish_stats tr wss;
  counts

let n_detection ?(jobs = 1) ?(kernel = Event) fl pats ~n =
  if n <= 0 then invalid_arg "Faultsim.n_detection: n must be positive";
  if jobs <= 1 then n_detection_serial ~kernel fl pats ~n
  else Parallel.with_pool ~jobs (fun pool -> n_detection_pooled ~kernel pool fl pats ~n)

(* Keep only the earliest detections of [d] up to the cap. *)
let keep_capped counts fi ~n d =
  let kept = ref 0L and w = ref d in
  while !w <> 0L && counts.(fi) < n do
    let low = Int64.logand !w (Int64.neg !w) in
    kept := Int64.logor !kept low;
    counts.(fi) <- counts.(fi) + 1;
    w := Int64.logxor !w low
  done;
  !kept

let detection_sets_capped_serial ~kernel fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats 1)
    "faultsim.detection_sets_capped"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let counts = Array.make nf 0 in
  let good = Array.make (Circuit.node_count c) 0L in
  let alive = ref (List.init nf Fun.id) in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && !alive <> [] do
    timed_goodsim observed ws c pats !b good;
    new_block ws;
    let mask = block_mask pats !b in
    alive :=
      List.filter
        (fun fi ->
          let d =
            Int64.logand (detect_with ws ~kernel ~ipdom ~good (Fault_list.get fl fi)) mask
          in
          if d <> 0L then (Bitvec.words dsets.(fi)).(!b) <- keep_capped counts fi ~n d;
          counts.(fi) < n)
        !alive;
    incr b
  done;
  publish_stats tr [| ws |];
  dsets

let detection_sets_capped_pooled ~kernel pool fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats (Parallel.jobs pool))
    "faultsim.detection_sets_capped"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let lanes = Parallel.jobs pool in
  let wss = Array.init lanes (fun _ -> workspace c) in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let counts = Array.make nf 0 in
  let good = Array.make (Circuit.node_count c) 0L in
  let alive = ref (Array.init nf Fun.id) in
  let det = Array.make nf 0L in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && Array.length !alive > 0 do
    timed_goodsim observed wss.(0) c pats !b good;
    Array.iter new_block wss;
    let mask = block_mask pats !b in
    let a = !alive in
    scan_alive ~kernel ~ipdom pool wss fl ~good ~mask a det;
    let next = ref [] in
    for i = Array.length a - 1 downto 0 do
      let fi = a.(i) in
      let d = det.(i) in
      if d <> 0L then (Bitvec.words dsets.(fi)).(!b) <- keep_capped counts fi ~n d;
      if counts.(fi) < n then next := fi :: !next
    done;
    alive := Array.of_list !next;
    incr b
  done;
  publish_stats tr wss;
  dsets

let detection_sets_capped ?(jobs = 1) ?(kernel = Event) fl pats ~n =
  if n <= 0 then invalid_arg "Faultsim.detection_sets_capped: n must be positive";
  if jobs <= 1 then detection_sets_capped_serial ~kernel fl pats ~n
  else
    Parallel.with_pool ~jobs (fun pool -> detection_sets_capped_pooled ~kernel pool fl pats ~n)

let detects c f pi_values =
  if Array.length pi_values <> Array.length (Circuit.inputs c) then
    invalid_arg "Faultsim.detects: input width mismatch";
  let pats = Patterns.of_vectors ~n_inputs:(Array.length pi_values) [| pi_values |] in
  let ws = workspace c in
  let good = Goodsim.block c pats 0 in
  Int64.logand (detect_block ws ~good f) 1L = 1L
