module Bitvec = Util.Bitvec
module Wordvec = Util.Wordvec
module Parallel = Util.Parallel
module Trace = Util.Trace
module Metrics = Util.Metrics

type kernel = Event | Stem | Cpt

let kernel_name = function Event -> "event" | Stem -> "stem" | Cpt -> "cpt"
let kernel_names = [ "event"; "stem"; "cpt" ]

let kernel_of_string = function
  | "event" -> Some Event
  | "stem" -> Some Stem
  | "cpt" -> Some Cpt
  | _ -> None

(* A workspace simulates [width] consecutive 64-pattern blocks (one
   "superblock" of up to 512 patterns) per visit.  All hot per-node
   state lives in ONE flat Bigarray arena of [2 * n * width] unboxed
   words — the faulty-value table in the first half, the observability
   memo in the second — carved into zero-copy views.  Node [n]'s lane
   is words [n*width .. n*width+width-1]; word [w] of a lane holds
   block [sb*width + w].  Every per-word formula is exactly the
   width-1 formula, so results are word-identical for any width. *)
type workspace = {
  circuit : Circuit.t;
  width : int;  (* words per lane: 64*width patterns per pass *)
  fval : Wordvec.t;  (* n*width: faulty value lanes, valid iff dirty *)
  dirty : bool array;  (* any word of the lane diverges from good *)
  scheduled : bool array;
  buckets : int list array;  (* pending nodes per level *)
  out_pos : int array;  (* node -> index in Circuit.outputs, or -1 *)
  mutable touched : int list;  (* nodes with dirty set *)
  mutable sched_nodes : int list;  (* nodes with scheduled set *)
  (* Per-superblock observability memo for the probe kernels: node
     [n]'s lane of [obs_val] is valid iff [obs_stamp.(n) = epoch];
     bumping the epoch (once per superblock) invalidates the table. *)
  obs_val : Wordvec.t;  (* n*width *)
  obs_stamp : int array;
  mutable epoch : int;
  det : int64 array;  (* width-long scratch: detection accumulator *)
  act : int64 array;  (* width-long scratch: activation words *)
  (* Observability counters.  Workspaces are domain-private, so worker
     lanes may bump these freely; the leader merges them after the
     fork-join ({!publish_stats}). *)
  mutable stat_propagations : int;
  mutable stat_stem_toggles : int;
  mutable stat_stem_observable : int;
  mutable stat_stem_detect_words : int;
  mutable stat_dom_truncations : int;
  mutable stat_goodsim_s : float;
}

let workspace ?(width = 1) c =
  if Circuit.has_state c then
    invalid_arg "Faultsim.workspace: circuit has flip-flops; apply Scan.combinational first";
  if width < 1 then invalid_arg "Faultsim.workspace: width must be positive";
  let n = Circuit.node_count c in
  let out_pos = Array.make n (-1) in
  Array.iteri (fun i o -> out_pos.(o) <- i) (Circuit.outputs c);
  let arena = Wordvec.create (2 * n * width) in
  {
    circuit = c;
    width;
    fval = Wordvec.sub arena 0 (n * width);
    dirty = Array.make n false;
    scheduled = Array.make n false;
    buckets = Array.make (Circuit.depth c + 1) [];
    out_pos;
    touched = [];
    sched_nodes = [];
    obs_val = Wordvec.sub arena (n * width) (n * width);
    obs_stamp = Array.make n (-1);
    epoch = 0;
    det = Array.make width 0L;
    act = Array.make width 0L;
    stat_propagations = 0;
    stat_stem_toggles = 0;
    stat_stem_observable = 0;
    stat_stem_detect_words = 0;
    stat_dom_truncations = 0;
    stat_goodsim_s = 0.0;
  }

let width ws = ws.width
let good_arena ws = Wordvec.create (Circuit.node_count ws.circuit * ws.width)

(* Invalidate the observability memo; call once per new good-value
   superblock. *)
let new_block ws = ws.epoch <- ws.epoch + 1

type sim_stats = {
  propagations : int;
  stem_toggles : int;
  stem_observable : int;
  stem_detect_words : int;
  dom_truncations : int;
  goodsim_s : float;
}

let stats ws =
  {
    propagations = ws.stat_propagations;
    stem_toggles = ws.stat_stem_toggles;
    stem_observable = ws.stat_stem_observable;
    stem_detect_words = ws.stat_stem_detect_words;
    dom_truncations = ws.stat_dom_truncations;
    goodsim_s = ws.stat_goodsim_s;
  }

let publish_stats tr wss =
  if Trace.enabled tr then begin
    let p = ref 0 and t = ref 0 and o = ref 0 and d = ref 0 and dt = ref 0 in
    Array.iter
      (fun ws ->
        p := !p + ws.stat_propagations;
        t := !t + ws.stat_stem_toggles;
        o := !o + ws.stat_stem_observable;
        d := !d + ws.stat_stem_detect_words;
        dt := !dt + ws.stat_dom_truncations;
        if ws.stat_goodsim_s > 0.0 then
          Metrics.observe (Trace.histogram tr "goodsim.lane_s") ws.stat_goodsim_s)
      wss;
    Metrics.add (Trace.counter tr "faultsim.propagations") !p;
    if !t > 0 then begin
      Metrics.add (Trace.counter tr "faultsim.stem_toggles") !t;
      Metrics.add (Trace.counter tr "faultsim.stem_observable") !o;
      Metrics.add (Trace.counter tr "faultsim.stem_detect_words") !d
    end;
    if !dt > 0 then Metrics.add (Trace.counter tr "faultsim.dom_truncations") !dt
  end

(* Goodsim timing accumulates into the (domain-private) workspace; the
   [observed] flag is captured by the lane closure so the disabled path
   pays one branch and no clock reads. *)
let timed_goodsim observed ws pats sb gval =
  if observed then begin
    let t0 = Util.Budget.default_clock () in
    Goodsim.superblock_into ws.circuit pats ~width:ws.width ~sb gval;
    ws.stat_goodsim_s <- ws.stat_goodsim_s +. (Util.Budget.default_clock () -. t0)
  end
  else Goodsim.superblock_into ws.circuit pats ~width:ws.width ~sb gval

let load_good ws gval pats sb =
  if Wordvec.length gval <> Circuit.node_count ws.circuit * ws.width then
    invalid_arg "Faultsim.load_good: bad arena size";
  Goodsim.superblock_into ws.circuit pats ~width:ws.width ~sb gval;
  new_block ws

(* Faulty value of the injection node, word [w] of the superblock. *)
let injected_word ws ~gval (f : Fault.t) w =
  let c = ws.circuit in
  let wd = ws.width in
  let stuck = if f.stuck_at then -1L else 0L in
  match f.site with
  | Fault.Stem _ -> stuck
  | Fault.Branch { gate; pin } ->
      let fanins = Circuit.fanins c gate in
      let k = Circuit.kind c gate in
      (* Evaluate the gate with the faulted pin forced to the stuck
         value; other pins read good values.  Mirrors the good
         evaluation with one override. *)
      let v i =
        if i = pin then stuck else Wordvec.unsafe_get gval ((fanins.(i) * wd) + w)
      in
      let n = Array.length fanins in
      let fold op init =
        let acc = ref init in
        for i = 0 to n - 1 do
          acc := op !acc (v i)
        done;
        !acc
      in
      (match k with
      | Gate.Const0 | Gate.Const1 | Gate.Input ->
          invalid_arg "Faultsim: branch fault on a node without input pins"
      | Gate.Buf | Gate.Dff -> v 0
      | Gate.Not -> Int64.lognot (v 0)
      | Gate.And -> fold Int64.logand (-1L)
      | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
      | Gate.Or -> fold Int64.logor 0L
      | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
      | Gate.Xor -> fold Int64.logxor 0L
      | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L))

(* Write the injected value into the site's fval lane. *)
let inject ws ~gval (f : Fault.t) =
  let wd = ws.width in
  let off = Fault.site_node f * wd in
  for w = 0 to wd - 1 do
    Wordvec.unsafe_set ws.fval (off + w) (injected_word ws ~gval f w)
  done

(* Full-lane flip of [n] (the stem-observability toggle). *)
let inject_flip ws ~gval n =
  let wd = ws.width in
  let off = n * wd in
  for w = 0 to wd - 1 do
    Wordvec.unsafe_set ws.fval (off + w) (Int64.lognot (Wordvec.unsafe_get gval (off + w)))
  done

let schedule ws node =
  if not ws.scheduled.(node) then begin
    ws.scheduled.(node) <- true;
    ws.sched_nodes <- node :: ws.sched_nodes;
    let l = Circuit.level ws.circuit node in
    ws.buckets.(l) <- node :: ws.buckets.(l)
  end

(* Evaluate [node] in the faulty circuit into its own fval lane: each
   fanin reads its fval lane if dirty, its good lane otherwise.  A
   non-diverging lane stores the good words — harmless, since readers
   only consult fval under the dirty flag. *)
let eval_faulty_into ws ~gval node =
  let c = ws.circuit in
  let wd = ws.width in
  let off = node * wd in
  let fval = ws.fval in
  let k = Circuit.kind c node in
  match k with
  | Gate.Const0 ->
      for w = 0 to wd - 1 do
        Wordvec.unsafe_set fval (off + w) 0L
      done
  | Gate.Const1 ->
      for w = 0 to wd - 1 do
        Wordvec.unsafe_set fval (off + w) (-1L)
      done
  | Gate.Input ->
      for w = 0 to wd - 1 do
        Wordvec.unsafe_set fval (off + w) (Wordvec.unsafe_get gval (off + w))
      done
  | _ ->
      let fanins = Circuit.fanins c node in
      let nf = Array.length fanins in
      let fold op init invert =
        for w = 0 to wd - 1 do
          let acc = ref init in
          for i = 0 to nf - 1 do
            let f = Array.unsafe_get fanins i in
            let src = if Array.unsafe_get ws.dirty f then fval else gval in
            acc := op !acc (Wordvec.unsafe_get src ((f * wd) + w))
          done;
          Wordvec.unsafe_set fval (off + w) (if invert then Int64.lognot !acc else !acc)
        done
      in
      (match k with
      | Gate.Const0 | Gate.Const1 | Gate.Input -> ()
      | Gate.Buf | Gate.Dff ->
          let f = fanins.(0) in
          let src = if ws.dirty.(f) then fval else gval in
          let f0 = f * wd in
          for w = 0 to wd - 1 do
            Wordvec.unsafe_set fval (off + w) (Wordvec.unsafe_get src (f0 + w))
          done
      | Gate.Not ->
          let f = fanins.(0) in
          let src = if ws.dirty.(f) then fval else gval in
          let f0 = f * wd in
          for w = 0 to wd - 1 do
            Wordvec.unsafe_set fval (off + w) (Int64.lognot (Wordvec.unsafe_get src (f0 + w)))
          done
      | Gate.And -> fold Int64.logand (-1L) false
      | Gate.Nand -> fold Int64.logand (-1L) true
      | Gate.Or -> fold Int64.logor 0L false
      | Gate.Nor -> fold Int64.logor 0L true
      | Gate.Xor -> fold Int64.logxor 0L false
      | Gate.Xnor -> fold Int64.logxor 0L true)

(* Does [node]'s fval lane diverge from good in any word? *)
let diverged ws ~gval node =
  let wd = ws.width in
  let off = node * wd in
  let rec go w =
    w < wd
    && (Wordvec.unsafe_get ws.fval (off + w) <> Wordvec.unsafe_get gval (off + w)
       || go (w + 1))
  in
  go 0

(* Event-driven propagation of whatever value the site lane [n0] holds
   (filled by {!inject} or {!inject_flip}).  With [stop < 0] the effect
   is chased to the primary outputs and [ws.det] accumulates, per word,
   the lanes in which any PO diverges from the good values.  With
   [stop >= 0] only levels up to [stop]'s are processed and [ws.det]
   holds the divergence at [stop] itself — the "reach" words of the
   dominator-truncated kernel; nodes scheduled beyond the stop level
   are unwound without being evaluated. *)
let propagate_core ws ~gval ~stop n0 =
  let c = ws.circuit in
  ws.stat_propagations <- ws.stat_propagations + 1;
  let wd = ws.width in
  let to_po = stop < 0 in
  let det = ws.det in
  Array.fill det 0 wd 0L;
  let record node =
    if diverged ws ~gval node then begin
      if not ws.dirty.(node) then begin
        ws.dirty.(node) <- true;
        ws.touched <- node :: ws.touched
      end;
      if to_po && Circuit.is_output c node then begin
        let off = node * wd in
        for w = 0 to wd - 1 do
          det.(w) <-
            Int64.logor det.(w)
              (Int64.logxor (Wordvec.unsafe_get ws.fval (off + w))
                 (Wordvec.unsafe_get gval (off + w)))
        done
      end;
      Array.iter (fun s -> schedule ws s) (Circuit.fanouts c node)
    end
  in
  record n0;
  (* Propagate by increasing level; all fanins of a level-L node are
     final before L is processed. *)
  let last = if to_po then Array.length ws.buckets - 1 else Circuit.level c stop in
  if ws.sched_nodes <> [] then
    for l = 0 to last do
      let pending = ws.buckets.(l) in
      if pending <> [] then begin
        ws.buckets.(l) <- [];
        List.iter
          (fun node ->
            if node <> n0 then begin
              eval_faulty_into ws ~gval node;
              record node
            end)
          pending
      end
    done;
  if (not to_po) && ws.dirty.(stop) then begin
    let off = stop * wd in
    for w = 0 to wd - 1 do
      det.(w) <-
        Int64.logxor (Wordvec.unsafe_get ws.fval (off + w)) (Wordvec.unsafe_get gval (off + w))
    done
  end;
  (* Reset scratch state (including buckets past a truncated sweep). *)
  List.iter (fun node -> ws.dirty.(node) <- false) ws.touched;
  List.iter
    (fun node ->
      ws.scheduled.(node) <- false;
      if not to_po then ws.buckets.(Circuit.level c node) <- [])
    ws.sched_nodes;
  ws.touched <- [];
  ws.sched_nodes <- []

let detect_superblock ws ~good (f : Fault.t) =
  inject ws ~gval:good f;
  propagate_core ws ~gval:good ~stop:(-1) (Fault.site_node f);
  ws.det

let detect_block ws ~good (f : Fault.t) =
  inject ws ~gval:good f;
  propagate_core ws ~gval:good ~stop:(-1) (Fault.site_node f);
  ws.det.(0)

(* Per-output variant of {!detect_superblock}: the same event-driven
   sweep, but each primary output's divergence words are written into
   [out] at [output index * width + word].  Traversal order is
   identical, so the OR of the per-output words equals the detection
   words bit-for-bit. *)
let detect_block_outputs ws ~good ~out (f : Fault.t) =
  let c = ws.circuit in
  let wd = ws.width in
  let gval = good in
  Array.fill out 0 (Array.length out) 0L;
  ws.stat_propagations <- ws.stat_propagations + 1;
  let det = ws.det in
  Array.fill det 0 wd 0L;
  let record node =
    if diverged ws ~gval node then begin
      if not ws.dirty.(node) then begin
        ws.dirty.(node) <- true;
        ws.touched <- node :: ws.touched
      end;
      let p = ws.out_pos.(node) in
      if p >= 0 then begin
        let off = node * wd in
        for w = 0 to wd - 1 do
          let d =
            Int64.logxor (Wordvec.unsafe_get ws.fval (off + w))
              (Wordvec.unsafe_get gval (off + w))
          in
          out.((p * wd) + w) <- d;
          det.(w) <- Int64.logor det.(w) d
        done
      end;
      Array.iter (fun s -> schedule ws s) (Circuit.fanouts c node)
    end
  in
  let n0 = Fault.site_node f in
  inject ws ~gval f;
  record n0;
  if ws.sched_nodes <> [] then
    for l = 0 to Array.length ws.buckets - 1 do
      let pending = ws.buckets.(l) in
      if pending <> [] then begin
        ws.buckets.(l) <- [];
        List.iter
          (fun node ->
            if node <> n0 then begin
              eval_faulty_into ws ~gval node;
              record node
            end)
          pending
      end
    done;
  List.iter (fun node -> ws.dirty.(node) <- false) ws.touched;
  List.iter (fun node -> ws.scheduled.(node) <- false) ws.sched_nodes;
  ws.touched <- [];
  ws.sched_nodes <- [];
  det

let block_mask pats b =
  let cnt = Patterns.count pats - (b * 64) in
  if cnt >= 64 then -1L else Int64.sub (Int64.shift_left 1L cnt) 1L

(* --- probe kernels: stem-first and critical-path tracing ---------- *)

(* Gate output of [node] with every pin fed by [x] complemented (a gate
   may read the same signal on several pins); other pins read good
   values.  One word per block into [dst]; XORed against the good
   output these are the lanes in which a value change at [x] passes
   through the gate. *)
let eval_flip_into c ~gval ~wd ~dst node x =
  let fanins = Circuit.fanins c node in
  let nf = Array.length fanins in
  let v i w =
    let f = Array.unsafe_get fanins i in
    let g = Wordvec.unsafe_get gval ((f * wd) + w) in
    if f = x then Int64.lognot g else g
  in
  let fold op init invert =
    for w = 0 to wd - 1 do
      let acc = ref init in
      for i = 0 to nf - 1 do
        acc := op !acc (v i w)
      done;
      dst.(w) <- (if invert then Int64.lognot !acc else !acc)
    done
  in
  match Circuit.kind c node with
  | Gate.Const0 -> Array.fill dst 0 wd 0L
  | Gate.Const1 -> Array.fill dst 0 wd (-1L)
  | Gate.Input ->
      for w = 0 to wd - 1 do
        dst.(w) <- Wordvec.unsafe_get gval ((node * wd) + w)
      done
  | Gate.Buf | Gate.Dff -> fold (fun _ x -> x) 0L false
  | Gate.Not ->
      for w = 0 to wd - 1 do
        dst.(w) <- Int64.lognot (v 0 w)
      done
  | Gate.And -> fold Int64.logand (-1L) false
  | Gate.Nand -> fold Int64.logand (-1L) true
  | Gate.Or -> fold Int64.logor 0L false
  | Gate.Nor -> fold Int64.logor 0L true
  | Gate.Xor -> fold Int64.logxor 0L false
  | Gate.Xnor -> fold Int64.logxor 0L true

let no_ipdom : int array = [||]

(* Observability of a flip at [n]: per word, the lanes in which
   complementing [n]'s value changes some primary output.  Memoised
   per superblock in the arena; each of the 64*width lanes is an
   independent scalar simulation, so:

   - a primary output observes itself in every lane;
   - a dead node (no path to a PO) is never observed;
   - a node with a unique consumer [g] is observed iff the flip passes
     through [g] (local re-evaluation) and [g] is observed — the
     classic stem-first sensitization step;
   - a multi-fanout stem needs real propagation.  The stem-first
     kernel ([ipdom] empty) pays one full event-driven propagation per
     superblock.  The critical-path-tracing kernel truncates that
     propagation at the stem's immediate post-dominator [d]: every
     output-bound path funnels through [d], corruption that misses [d]
     is observably dead, and nodes past [d] read good side-input
     values — so [obs(n) = reach(n -> d) AND obs(d)] exactly, and the
     chain grounds at a PO or a sink-dominated stem.  Dominator
     segments shared by several stems are computed once per
     superblock. *)
let rec obs_ensure ws ~gval ~ipdom n =
  if ws.obs_stamp.(n) <> ws.epoch then begin
    let c = ws.circuit in
    let wd = ws.width in
    let off = n * wd in
    let ov = ws.obs_val in
    let store_zero () =
      for w = 0 to wd - 1 do
        Wordvec.unsafe_set ov (off + w) 0L
      done
    in
    let store_det () =
      for w = 0 to wd - 1 do
        Wordvec.unsafe_set ov (off + w) ws.det.(w)
      done
    in
    (if Circuit.is_output c n then
       for w = 0 to wd - 1 do
         Wordvec.unsafe_set ov (off + w) (-1L)
       done
     else
       let fo = Circuit.fanouts c n in
       match Array.length fo with
       | 0 -> store_zero ()
       | 1 ->
           let g = fo.(0) in
           (* [s] must be call-local: the recursion below may fill
              other memo lanes and the propagation scratch. *)
           let s = Array.make wd 0L in
           eval_flip_into c ~gval ~wd ~dst:s g n;
           let any = ref false in
           for w = 0 to wd - 1 do
             let x = Int64.logxor s.(w) (Wordvec.unsafe_get gval ((g * wd) + w)) in
             s.(w) <- x;
             if x <> 0L then any := true
           done;
           if not !any then store_zero ()
           else begin
             obs_ensure ws ~gval ~ipdom g;
             let goff = g * wd in
             for w = 0 to wd - 1 do
               Wordvec.unsafe_set ov (off + w)
                 (Int64.logand s.(w) (Wordvec.unsafe_get ov (goff + w)))
             done
           end
       | _ ->
           ws.stat_stem_toggles <- ws.stat_stem_toggles + 1;
           let full_propagate () =
             inject_flip ws ~gval n;
             propagate_core ws ~gval ~stop:(-1) n;
             store_det ()
           in
           (if Array.length ipdom = 0 then full_propagate ()
            else
              match ipdom.(n) with
              | -2 -> store_zero ()
              | -1 -> full_propagate ()
              | d ->
                  ws.stat_dom_truncations <- ws.stat_dom_truncations + 1;
                  inject_flip ws ~gval n;
                  propagate_core ws ~gval ~stop:d n;
                  let reach = Array.copy ws.det in
                  if Array.for_all (fun w -> w = 0L) reach then store_zero ()
                  else begin
                    obs_ensure ws ~gval ~ipdom d;
                    let doff = d * wd in
                    for w = 0 to wd - 1 do
                      Wordvec.unsafe_set ov (off + w)
                        (Int64.logand reach.(w) (Wordvec.unsafe_get ov (doff + w)))
                    done
                  end);
           let anyw = ref false in
           for w = 0 to wd - 1 do
             if Wordvec.unsafe_get ov (off + w) <> 0L then anyw := true
           done;
           if !anyw then ws.stat_stem_observable <- ws.stat_stem_observable + 1);
    ws.obs_stamp.(n) <- ws.epoch
  end

(* Exact per-fault detection via the probe decomposition: every lane
   is an independent scalar simulation, so the faulty circuit diverges
   from the good one at the injection site exactly in the activation
   lanes, and downstream each activated lane behaves as a full flip at
   the site.  Hence [D(f) = activation(f) AND obs(site_node f)] — the
   observability lane is shared ("probed" once) by every fault of the
   site, which is the re-expansion step of the collapsed-universe
   simulation.  Fills [ws.det]. *)
let detect_probe ws ~gval ~ipdom (f : Fault.t) =
  let n = Fault.site_node f in
  let wd = ws.width in
  let off = n * wd in
  let act = ws.act in
  let any = ref false in
  for w = 0 to wd - 1 do
    let a = Int64.logxor (injected_word ws ~gval f w) (Wordvec.unsafe_get gval (off + w)) in
    act.(w) <- a;
    if a <> 0L then any := true
  done;
  if not !any then Array.fill ws.det 0 wd 0L
  else begin
    obs_ensure ws ~gval ~ipdom n;
    let anyd = ref false in
    let det = ws.det in
    for w = 0 to wd - 1 do
      let d = Int64.logand act.(w) (Wordvec.unsafe_get ws.obs_val (off + w)) in
      det.(w) <- d;
      if d <> 0L then anyd := true
    done;
    if !anyd then ws.stat_stem_detect_words <- ws.stat_stem_detect_words + 1
  end

(* Per-circuit structural tables a kernel needs. *)
let kernel_ipdom c = function
  | Event | Stem -> no_ipdom
  | Cpt -> Dominators.ipdom_raw (Dominators.compute c)

(* Fill [ws.det] with the fault's detection words for the current
   superblock. *)
let detect_with ws ~kernel ~ipdom ~gval f =
  match kernel with
  | Event ->
      inject ws ~gval f;
      propagate_core ws ~gval ~stop:(-1) (Fault.site_node f)
  | Stem | Cpt -> detect_probe ws ~gval ~ipdom f

(* --- whole-pattern-set drivers ------------------------------------ *)

let superblocks nblocks width = (nblocks + width - 1) / width

let sim_attrs kernel fl pats jobs width =
  [ ("kernel", Trace.Str (kernel_name kernel));
    ("faults", Trace.Int (Fault_list.count fl));
    ("patterns", Trace.Int (Patterns.count pats)); ("jobs", Trace.Int jobs);
    ("block_width", Trace.Int width) ]

let detection_sets_serial ~kernel ~width fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr ~attrs:(sim_attrs kernel fl pats 1 width) "faultsim.detection_sets"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace ~width c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let gval = good_arena ws in
  let nblocks = Patterns.blocks pats in
  for sb = 0 to superblocks nblocks width - 1 do
    timed_goodsim observed ws pats sb gval;
    new_block ws;
    let b0 = sb * width in
    let lim = min width (nblocks - b0) in
    for fi = 0 to nf - 1 do
      detect_with ws ~kernel ~ipdom ~gval (Fault_list.get fl fi);
      let det = ws.det in
      for w = 0 to lim - 1 do
        let b = b0 + w in
        let d = Int64.logand det.(w) (block_mask pats b) in
        if d <> 0L then (Bitvec.words dsets.(fi)).(b) <- d
      done
    done
  done;
  publish_stats tr [| ws |];
  dsets

(* Probe simulation over a pool.  Detection sets have no cross-block
   dependency, so each lane owns a static slice of the superblocks —
   private workspace and good-value arena, one fork-join for the whole
   run — and writes only its own blocks' words of each detection set.
   Every (fault, block) word is computed by exactly one lane and its
   value depends only on (circuit, fault, block), so the result is
   bit-identical to the serial path regardless of scheduling. *)
let detection_sets_pooled ~kernel ~width pool fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(sim_attrs kernel fl pats (Parallel.jobs pool) width)
    "faultsim.detection_sets"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let nblocks = Patterns.blocks pats in
  let nsb = superblocks nblocks width in
  let k = min (Parallel.jobs pool) (max nsb 1) in
  let wss = Array.init k (fun _ -> workspace ~width c) in
  Parallel.run pool
    (Array.init k (fun lane ->
         fun () ->
          let ws = wss.(lane) in
          let gval = good_arena ws in
          for sb = lane * nsb / k to ((lane + 1) * nsb / k) - 1 do
            timed_goodsim observed ws pats sb gval;
            new_block ws;
            let b0 = sb * width in
            let lim = min width (nblocks - b0) in
            for fi = 0 to nf - 1 do
              detect_with ws ~kernel ~ipdom ~gval (Fault_list.get fl fi);
              let det = ws.det in
              for w = 0 to lim - 1 do
                let b = b0 + w in
                let d = Int64.logand det.(w) (block_mask pats b) in
                if d <> 0L then (Bitvec.words dsets.(fi)).(b) <- d
              done
            done
          done));
  publish_stats tr wss;
  dsets

(* Kernel defaults preserve the historical behaviour: serial
   [detection_sets] is plain per-fault event propagation, the pooled
   path rides the stem-first kernel, and the dropping-family drivers
   stay event-driven unless a kernel is requested. *)
let auto_detection_kernel jobs = if jobs <= 1 then Event else Stem

let detection_sets ?(jobs = 1) ?kernel ?(block_width = 1) fl pats =
  if block_width < 1 then invalid_arg "Faultsim.detection_sets: block_width must be positive";
  let k = match kernel with Some k -> k | None -> auto_detection_kernel jobs in
  if jobs <= 1 then detection_sets_serial ~kernel:k ~width:block_width fl pats
  else
    Parallel.with_pool ~jobs (fun pool ->
        detection_sets_pooled ~kernel:k ~width:block_width pool fl pats)

let detection_sets_stem_first ?(block_width = 1) fl pats =
  Parallel.with_pool ~jobs:1 (fun pool ->
      detection_sets_pooled ~kernel:Stem ~width:block_width pool fl pats)

let ndet dsets pats =
  let counts = Array.make (Patterns.count pats) 0 in
  Array.iter (fun d -> Bitvec.iter_set d (fun p -> counts.(p) <- counts.(p) + 1)) dsets;
  counts

type drop_result = { first_detection : int array; detected : int }

(* Per-superblock scan of the live faults over a pool: detection words
   are produced in parallel on static slices of the alive array, then
   merged serially in alive order — the same order the serial loop
   visits, so dropping decisions are identical. *)
let scan_alive ~kernel ~ipdom ~width pool wss fl ~gval alive det =
  let n = Array.length alive in
  let lanes = Parallel.jobs pool in
  let k = min lanes (max n 1) in
  Parallel.run pool
    (Array.init k (fun lane ->
         fun () ->
          let ws = wss.(lane) in
          let lo = lane * n / k and hi = (lane + 1) * n / k in
          for i = lo to hi - 1 do
            detect_with ws ~kernel ~ipdom ~gval (Fault_list.get fl alive.(i));
            Array.blit ws.det 0 det (i * width) width
          done))

(* First detecting pattern among words [0 .. lim-1] of the superblock
   starting at block [b0], or -1: words are scanned in increasing
   block order, so the index matches the width-1 scan exactly. *)
let first_in_words pats ~b0 ~lim det doff =
  let rec go w =
    if w >= lim then -1
    else
      let b = b0 + w in
      let d = Int64.logand det.(doff + w) (block_mask pats b) in
      if d = 0L then go (w + 1) else (b * 64) + Bitvec.ctz d
  in
  go 0

let with_dropping_serial ~kernel ~width fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr ~attrs:(sim_attrs kernel fl pats 1 width) "faultsim.with_dropping"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace ~width c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let first = Array.make nf (-1) in
  let detected = ref 0 in
  let alive = ref (List.init nf Fun.id) in
  let gval = good_arena ws in
  let sb = ref 0 in
  let nblocks = Patterns.blocks pats in
  let nsb = superblocks nblocks width in
  while !sb < nsb && !alive <> [] do
    timed_goodsim observed ws pats !sb gval;
    new_block ws;
    let b0 = !sb * width in
    let lim = min width (nblocks - b0) in
    alive :=
      List.filter
        (fun fi ->
          detect_with ws ~kernel ~ipdom ~gval (Fault_list.get fl fi);
          let p = first_in_words pats ~b0 ~lim ws.det 0 in
          if p < 0 then true
          else begin
            first.(fi) <- p;
            incr detected;
            false
          end)
        !alive;
    incr sb
  done;
  publish_stats tr [| ws |];
  { first_detection = first; detected = !detected }

let with_dropping_pooled ~kernel ~width pool fl pats =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(sim_attrs kernel fl pats (Parallel.jobs pool) width)
    "faultsim.with_dropping"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let lanes = Parallel.jobs pool in
  let wss = Array.init lanes (fun _ -> workspace ~width c) in
  let nf = Fault_list.count fl in
  let first = Array.make nf (-1) in
  let detected = ref 0 in
  let alive = ref (Array.init nf Fun.id) in
  let det = Array.make (nf * width) 0L in
  let gval = good_arena wss.(0) in
  let sb = ref 0 in
  let nblocks = Patterns.blocks pats in
  let nsb = superblocks nblocks width in
  while !sb < nsb && Array.length !alive > 0 do
    timed_goodsim observed wss.(0) pats !sb gval;
    Array.iter new_block wss;
    let b0 = !sb * width in
    let lim = min width (nblocks - b0) in
    let a = !alive in
    scan_alive ~kernel ~ipdom ~width pool wss fl ~gval a det;
    let next = ref [] in
    for i = Array.length a - 1 downto 0 do
      let p = first_in_words pats ~b0 ~lim det (i * width) in
      if p < 0 then next := a.(i) :: !next
      else begin
        first.(a.(i)) <- p;
        incr detected
      end
    done;
    alive := Array.of_list !next;
    incr sb
  done;
  publish_stats tr wss;
  { first_detection = first; detected = !detected }

let with_dropping ?(jobs = 1) ?(kernel = Event) ?(block_width = 1) fl pats =
  if block_width < 1 then invalid_arg "Faultsim.with_dropping: block_width must be positive";
  if jobs <= 1 then with_dropping_serial ~kernel ~width:block_width fl pats
  else
    Parallel.with_pool ~jobs (fun pool ->
        with_dropping_pooled ~kernel ~width:block_width pool fl pats)

(* Fold one superblock's detection words into an n-capped count, words
   in increasing block order — the same per-block updates the width-1
   loop applies, so counts (and drop decisions) are identical. *)
let count_words pats ~b0 ~lim ~n counts fi det doff =
  for w = 0 to lim - 1 do
    let d = Int64.logand det.(doff + w) (block_mask pats (b0 + w)) in
    if d <> 0L then counts.(fi) <- min n (counts.(fi) + Bitvec.popcount_word d)
  done

let n_detection_serial ~kernel ~width fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats 1 width)
    "faultsim.n_detection"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace ~width c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let counts = Array.make nf 0 in
  let gval = good_arena ws in
  let alive = ref (List.init nf Fun.id) in
  let sb = ref 0 in
  let nblocks = Patterns.blocks pats in
  let nsb = superblocks nblocks width in
  while !sb < nsb && !alive <> [] do
    timed_goodsim observed ws pats !sb gval;
    new_block ws;
    let b0 = !sb * width in
    let lim = min width (nblocks - b0) in
    alive :=
      List.filter
        (fun fi ->
          detect_with ws ~kernel ~ipdom ~gval (Fault_list.get fl fi);
          count_words pats ~b0 ~lim ~n counts fi ws.det 0;
          counts.(fi) < n)
        !alive;
    incr sb
  done;
  publish_stats tr [| ws |];
  counts

let n_detection_pooled ~kernel ~width pool fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats (Parallel.jobs pool) width)
    "faultsim.n_detection"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let lanes = Parallel.jobs pool in
  let wss = Array.init lanes (fun _ -> workspace ~width c) in
  let nf = Fault_list.count fl in
  let counts = Array.make nf 0 in
  let gval = good_arena wss.(0) in
  let alive = ref (Array.init nf Fun.id) in
  let det = Array.make (nf * width) 0L in
  let sb = ref 0 in
  let nblocks = Patterns.blocks pats in
  let nsb = superblocks nblocks width in
  while !sb < nsb && Array.length !alive > 0 do
    timed_goodsim observed wss.(0) pats !sb gval;
    Array.iter new_block wss;
    let b0 = !sb * width in
    let lim = min width (nblocks - b0) in
    let a = !alive in
    scan_alive ~kernel ~ipdom ~width pool wss fl ~gval a det;
    let next = ref [] in
    for i = Array.length a - 1 downto 0 do
      let fi = a.(i) in
      count_words pats ~b0 ~lim ~n counts fi det (i * width);
      if counts.(fi) < n then next := fi :: !next
    done;
    alive := Array.of_list !next;
    incr sb
  done;
  publish_stats tr wss;
  counts

let n_detection ?(jobs = 1) ?(kernel = Event) ?(block_width = 1) fl pats ~n =
  if n <= 0 then invalid_arg "Faultsim.n_detection: n must be positive";
  if block_width < 1 then invalid_arg "Faultsim.n_detection: block_width must be positive";
  if jobs <= 1 then n_detection_serial ~kernel ~width:block_width fl pats ~n
  else
    Parallel.with_pool ~jobs (fun pool ->
        n_detection_pooled ~kernel ~width:block_width pool fl pats ~n)

(* Keep only the earliest detections of [d] up to the cap. *)
let keep_capped counts fi ~n d =
  let kept = ref 0L and w = ref d in
  while !w <> 0L && counts.(fi) < n do
    let low = Int64.logand !w (Int64.neg !w) in
    kept := Int64.logor !kept low;
    counts.(fi) <- counts.(fi) + 1;
    w := Int64.logxor !w low
  done;
  !kept

(* Cap one superblock's detection words into the fault's detection
   set, words in increasing block order. *)
let cap_words pats ~b0 ~lim ~n counts fi det doff dset =
  for w = 0 to lim - 1 do
    let b = b0 + w in
    let d = Int64.logand det.(doff + w) (block_mask pats b) in
    if d <> 0L then (Bitvec.words dset).(b) <- keep_capped counts fi ~n d
  done

let detection_sets_capped_serial ~kernel ~width fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats 1 width)
    "faultsim.detection_sets_capped"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ws = workspace ~width c in
  let ipdom = kernel_ipdom c kernel in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let counts = Array.make nf 0 in
  let gval = good_arena ws in
  let alive = ref (List.init nf Fun.id) in
  let sb = ref 0 in
  let nblocks = Patterns.blocks pats in
  let nsb = superblocks nblocks width in
  while !sb < nsb && !alive <> [] do
    timed_goodsim observed ws pats !sb gval;
    new_block ws;
    let b0 = !sb * width in
    let lim = min width (nblocks - b0) in
    alive :=
      List.filter
        (fun fi ->
          detect_with ws ~kernel ~ipdom ~gval (Fault_list.get fl fi);
          cap_words pats ~b0 ~lim ~n counts fi ws.det 0 dsets.(fi);
          counts.(fi) < n)
        !alive;
    incr sb
  done;
  publish_stats tr [| ws |];
  dsets

let detection_sets_capped_pooled ~kernel ~width pool fl pats ~n =
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  Trace.span tr
    ~attrs:(("n", Trace.Int n) :: sim_attrs kernel fl pats (Parallel.jobs pool) width)
    "faultsim.detection_sets_capped"
  @@ fun () ->
  let c = Fault_list.circuit fl in
  let ipdom = kernel_ipdom c kernel in
  let lanes = Parallel.jobs pool in
  let wss = Array.init lanes (fun _ -> workspace ~width c) in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let counts = Array.make nf 0 in
  let gval = good_arena wss.(0) in
  let alive = ref (Array.init nf Fun.id) in
  let det = Array.make (nf * width) 0L in
  let sb = ref 0 in
  let nblocks = Patterns.blocks pats in
  let nsb = superblocks nblocks width in
  while !sb < nsb && Array.length !alive > 0 do
    timed_goodsim observed wss.(0) pats !sb gval;
    Array.iter new_block wss;
    let b0 = !sb * width in
    let lim = min width (nblocks - b0) in
    let a = !alive in
    scan_alive ~kernel ~ipdom ~width pool wss fl ~gval a det;
    let next = ref [] in
    for i = Array.length a - 1 downto 0 do
      let fi = a.(i) in
      cap_words pats ~b0 ~lim ~n counts fi det (i * width) dsets.(fi);
      if counts.(fi) < n then next := fi :: !next
    done;
    alive := Array.of_list !next;
    incr sb
  done;
  publish_stats tr wss;
  dsets

let detection_sets_capped ?(jobs = 1) ?(kernel = Event) ?(block_width = 1) fl pats ~n =
  if n <= 0 then invalid_arg "Faultsim.detection_sets_capped: n must be positive";
  if block_width < 1 then
    invalid_arg "Faultsim.detection_sets_capped: block_width must be positive";
  if jobs <= 1 then detection_sets_capped_serial ~kernel ~width:block_width fl pats ~n
  else
    Parallel.with_pool ~jobs (fun pool ->
        detection_sets_capped_pooled ~kernel ~width:block_width pool fl pats ~n)

let detects c f pi_values =
  if Array.length pi_values <> Array.length (Circuit.inputs c) then
    invalid_arg "Faultsim.detects: input width mismatch";
  let pats = Patterns.of_vectors ~n_inputs:(Array.length pi_values) [| pi_values |] in
  let ws = workspace c in
  let good = good_arena ws in
  load_good ws good pats 0;
  Int64.logand (detect_block ws ~good f) 1L = 1L
