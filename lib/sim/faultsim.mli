(** Single-stuck-at fault simulation.

    The engine is parallel-pattern single-fault propagation (PPSFP):
    64 patterns are simulated fault-free per block, then per-fault
    detection words are derived by one of three kernels:

    - {b event} — inject each fault and propagate its effect
      event-driven through the levelised fanout cone, comparing
      against the good values at the primary outputs.  The reference
      kernel.
    - {b stem} — probe decomposition: each of the 64 lanes is an
      independent scalar simulation, so
      [D(f) = activation(f) AND obs(site_node f)], where [obs(n)] is
      the word of lanes in which complementing [n] changes some
      output.  Observability is memoised per block and per site
      ("probe"), shared by every fault injecting at that site; chains
      of single-consumer nodes pay a local gate re-evaluation each,
      and only multi-fanout stems pay a real propagation.
    - {b cpt} — critical-path tracing: the stem kernel with each
      multi-fanout propagation truncated at the stem's immediate
      post-dominator ({!Dominators}):
      [obs(n) = reach(n -> ipdom n) AND obs(ipdom n)].  Every
      output-bound path funnels through the post-dominator, so
      corruption that misses it is observably dead, and divergence at
      the post-dominator is exact because its fanins are final when
      its level is processed.

    All three kernels produce {e bit-identical} detection words for
    every fault; they differ only in work per word.

    Every driver takes an optional [?jobs] argument (default 1).  With
    [jobs = 1] a single workspace runs the serial loops — the
    reference implementation.  With [jobs > 1] the work is spread over
    a {!Util.Parallel} domain pool: each domain owns a private
    {!workspace} and a static slice of the work while all domains
    share read-only inputs, and detection words are merged in a fixed
    order, so results are bit-identical to the serial path regardless
    of scheduling.

    All entry points require a combinational circuit. *)

type kernel =
  | Event  (** per-fault event-driven propagation *)
  | Stem  (** memoised site-probe observability, full stem propagation *)
  | Cpt  (** site-probe observability truncated at post-dominators *)

val kernel_name : kernel -> string
val kernel_names : string list
val kernel_of_string : string -> kernel option

type workspace
(** Reusable scratch state (faulty-value slab, scheduling buckets,
    per-block observability memo).  One workspace serves any number of
    [detect_block] calls on its circuit. *)

val workspace : Circuit.t -> workspace

val detect_block : workspace -> good:int64 array -> Fault.t -> int64
(** [detect_block ws ~good f] returns the set of patterns (bit lanes)
    of the current block in which [f] is detected, given the block's
    fault-free node values [good] (from {!Goodsim.block_into}).  Lanes
    beyond the pattern count are meaningless; callers mask them. *)

val detect_block_outputs :
  workspace -> good:int64 array -> out:int64 array -> Fault.t -> int64
(** [detect_block_outputs ws ~good ~out f] is {!detect_block} with
    per-output resolution: [out] (length [Array.length (Circuit.outputs
    c)], cleared on entry) receives each primary output's divergence
    word at its declaration index, and the returned word is their OR —
    bit-identical to [detect_block ws ~good f].  The input to
    response-level (per-output) fault dictionaries. *)

(** {1 Observability}

    Every workspace carries always-on counters (propagation events,
    stem-kernel toggle/hit rates, accumulated good-simulation seconds).
    They are domain-private, so worker lanes update them freely; after a
    fork-join the leader reads or publishes them. *)

type sim_stats = {
  propagations : int;  (** event-driven propagation passes *)
  stem_toggles : int;  (** probe kernels: multi-fanout stems probed *)
  stem_observable : int;  (** …of which some lane reached an output *)
  stem_detect_words : int;  (** nonzero per-fault detection words emitted *)
  dom_truncations : int;  (** cpt kernel: propagations truncated at a post-dominator *)
  goodsim_s : float;  (** seconds inside {!Goodsim.block_into} (0 unless tracing) *)
}

val stats : workspace -> sim_stats

val publish_stats : Util.Trace.t -> workspace array -> unit
(** Sum the workspaces' counters into the tracer's metrics registry
    ([faultsim.propagations], [faultsim.stem_*],
    [faultsim.dom_truncations], per-lane [goodsim.lane_s] histogram
    samples).  No-op on a disabled tracer.  The whole-set drivers below
    call this themselves; it is exported for callers that drive
    {!detect_block} directly (the ATPG engine). *)

(** {1 Whole-pattern-set drivers}

    When [?kernel] is omitted the historical defaults apply:
    [detection_sets] auto-selects (event when [jobs <= 1], stem
    otherwise); the dropping-family drivers run event-driven. *)

val detection_sets :
  ?jobs:int -> ?kernel:kernel -> Fault_list.t -> Patterns.t -> Util.Bitvec.t array
(** Simulation {e without fault dropping}: for every fault [f] the full
    detection set [D(f)] over all patterns — the input the accidental
    detection index is computed from. *)

val detection_sets_stem_first : Fault_list.t -> Patterns.t -> Util.Bitvec.t array
(** [detection_sets ~kernel:Stem] on a single pooled domain; kept as a
    named entry point for benchmarks and tests. *)

val ndet : Util.Bitvec.t array -> Patterns.t -> int array
(** [ndet dsets pats] gives [ndet(u)] — the number of faults detected
    by each pattern — from the detection sets. *)

type drop_result = {
  first_detection : int array;
      (** per fault, the first detecting pattern index, or -1 *)
  detected : int;  (** number of detected faults *)
}

val with_dropping :
  ?jobs:int -> ?kernel:kernel -> Fault_list.t -> Patterns.t -> drop_result
(** Simulation with fault dropping: each fault is removed from
    consideration after its first detection. *)

val n_detection :
  ?jobs:int -> ?kernel:kernel -> Fault_list.t -> Patterns.t -> n:int -> int array
(** n-detection simulation: per fault, the number of detecting patterns
    seen, counting at most [n] (a fault is dropped after its [n]-th
    detection).  [n_detection fl pats ~n:1] counts like
    {!with_dropping}. *)

val detection_sets_capped :
  ?jobs:int -> ?kernel:kernel -> Fault_list.t -> Patterns.t -> n:int -> Util.Bitvec.t array
(** n-detection variant of {!detection_sets}: each fault's detection
    set records at most its [n] earliest detecting patterns (the fault
    is dropped afterwards).  The paper's cheaper alternative for
    estimating [ndet(u)]. *)

val detects : Circuit.t -> Fault.t -> bool array -> bool
(** Single-pattern convenience: does the given PI assignment detect the
    fault?  (Used to validate generated tests.) *)
