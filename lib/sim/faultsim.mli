(** Single-stuck-at fault simulation.

    The engine is parallel-pattern single-fault propagation (PPSFP): a
    {e superblock} of [width] consecutive 64-pattern blocks (64 to 512
    patterns) is simulated fault-free per pass, then per-fault
    detection words are derived by one of three kernels:

    - {b event} — inject each fault and propagate its effect
      event-driven through the levelised fanout cone, comparing
      against the good values at the primary outputs.  The reference
      kernel.
    - {b stem} — probe decomposition: each lane is an independent
      scalar simulation, so
      [D(f) = activation(f) AND obs(site_node f)], where [obs(n)] is
      the word of lanes in which complementing [n] changes some
      output.  Observability is memoised per superblock and per site
      ("probe"), shared by every fault injecting at that site; chains
      of single-consumer nodes pay a local gate re-evaluation each,
      and only multi-fanout stems pay a real propagation.
    - {b cpt} — critical-path tracing: the stem kernel with each
      multi-fanout propagation truncated at the stem's immediate
      post-dominator ({!Dominators}):
      [obs(n) = reach(n -> ipdom n) AND obs(ipdom n)].  Every
      output-bound path funnels through the post-dominator, so
      corruption that misses it is observably dead, and divergence at
      the post-dominator is exact because its fanins are final when
      its level is processed.

    {b Wide blocks.}  All hot per-node state (faulty values and the
    observability memo) lives in one flat {!Util.Wordvec} Bigarray
    arena of [2 * node_count * width] unboxed words per workspace.
    Word [w] of a node's lane holds block [sb*width + w] and is
    computed by exactly the width-1 formula, so detection words are
    bit-identical for every width — wider lanes only amortise the
    levelised traversal, event scheduling and per-fault dispatch over
    more patterns.  Drivers take [?block_width] (1, accepted widths
    are small powers of two up to 8 at the CLI) and scan a
    superblock's words in increasing block order, so fault dropping,
    n-detection capping and first-detection indices also match the
    narrow scan exactly.

    All three kernels produce {e bit-identical} detection words for
    every fault; they differ only in work per word.  Observability
    counters ({!sim_stats}) are advisory and may differ across widths
    (memo short-circuits fire per superblock rather than per block).

    Every driver takes an optional [?jobs] argument (default 1).  With
    [jobs = 1] a single workspace runs the serial loops — the
    reference implementation.  With [jobs > 1] the work is spread over
    a {!Util.Parallel} domain pool: each domain owns a private
    {!workspace} and a static slice of the work while all domains
    share read-only inputs, and detection words are merged in a fixed
    order, so results are bit-identical to the serial path regardless
    of scheduling.

    All entry points require a combinational circuit. *)

type kernel =
  | Event  (** per-fault event-driven propagation *)
  | Stem  (** memoised site-probe observability, full stem propagation *)
  | Cpt  (** site-probe observability truncated at post-dominators *)

val kernel_name : kernel -> string
val kernel_names : string list
val kernel_of_string : string -> kernel option

type workspace
(** Reusable scratch state (the faulty-value / observability-memo
    arena, scheduling buckets).  One workspace serves any number of
    [detect_*] calls on its circuit. *)

val workspace : ?width:int -> Circuit.t -> workspace
(** [workspace ?width c] allocates a workspace simulating [width]
    64-pattern blocks per pass (default 1). *)

val width : workspace -> int

val good_arena : workspace -> Util.Wordvec.t
(** A fresh good-value arena of [node_count * width] words, sized for
    {!load_good}.  Backed by a Bigarray, so one arena can be filled by
    a leader domain and read by workers. *)

val load_good : workspace -> Util.Wordvec.t -> Patterns.t -> int -> unit
(** [load_good ws good pats sb] fills [good] with the fault-free
    values of superblock [sb] ({!Goodsim.superblock_into}) and
    invalidates the workspace's observability memo.  Call once per
    superblock before the [detect_*] entry points. *)

val detect_block : workspace -> good:Util.Wordvec.t -> Fault.t -> int64
(** [detect_block ws ~good f] returns the set of patterns (bit lanes)
    of the current superblock's {e first} block in which [f] is
    detected (event-driven kernel).  The single-block entry point for
    width-1 workspaces — the ATPG engine's hot path.  Lanes beyond the
    pattern count are meaningless; callers mask them. *)

val detect_superblock : workspace -> good:Util.Wordvec.t -> Fault.t -> int64 array
(** Wide variant of {!detect_block}: word [w] of the result is the
    detection word of block [sb*width + w].  The returned array is
    workspace-owned scratch, overwritten by the next [detect_*] call —
    copy what must survive. *)

val detect_block_outputs :
  workspace -> good:Util.Wordvec.t -> out:int64 array -> Fault.t -> int64 array
(** [detect_block_outputs ws ~good ~out f] is {!detect_superblock}
    with per-output resolution: [out] (length
    [Array.length (Circuit.outputs c) * width], cleared on entry)
    receives each primary output's divergence words at
    [output index * width + word], and the returned words are their
    per-word OR — bit-identical to [detect_superblock ws ~good f].
    The returned array is workspace-owned scratch.  The input to
    response-level (per-output) fault dictionaries. *)

(** {1 Observability}

    Every workspace carries always-on counters (propagation events,
    stem-kernel toggle/hit rates, accumulated good-simulation seconds).
    They are domain-private, so worker lanes update them freely; after a
    fork-join the leader reads or publishes them. *)

type sim_stats = {
  propagations : int;  (** event-driven propagation passes *)
  stem_toggles : int;  (** probe kernels: multi-fanout stems probed *)
  stem_observable : int;  (** …of which some lane reached an output *)
  stem_detect_words : int;  (** nonzero per-fault detection superblocks emitted *)
  dom_truncations : int;  (** cpt kernel: propagations truncated at a post-dominator *)
  goodsim_s : float;  (** seconds inside good simulation (0 unless tracing) *)
}

val stats : workspace -> sim_stats

val publish_stats : Util.Trace.t -> workspace array -> unit
(** Sum the workspaces' counters into the tracer's metrics registry
    ([faultsim.propagations], [faultsim.stem_*],
    [faultsim.dom_truncations], per-lane [goodsim.lane_s] histogram
    samples).  No-op on a disabled tracer.  The whole-set drivers below
    call this themselves; it is exported for callers that drive
    {!detect_block} directly (the ATPG engine). *)

(** {1 Whole-pattern-set drivers}

    When [?kernel] is omitted the historical defaults apply:
    [detection_sets] auto-selects (event when [jobs <= 1], stem
    otherwise); the dropping-family drivers run event-driven.
    [?block_width] (default 1) sets the superblock width; results are
    bit-identical for every (kernel, jobs, block_width) combination. *)

val detection_sets :
  ?jobs:int ->
  ?kernel:kernel ->
  ?block_width:int ->
  Fault_list.t ->
  Patterns.t ->
  Util.Bitvec.t array
(** Simulation {e without fault dropping}: for every fault [f] the full
    detection set [D(f)] over all patterns — the input the accidental
    detection index is computed from. *)

val detection_sets_stem_first :
  ?block_width:int -> Fault_list.t -> Patterns.t -> Util.Bitvec.t array
(** [detection_sets ~kernel:Stem] on a single pooled domain; kept as a
    named entry point for benchmarks and tests. *)

val ndet : Util.Bitvec.t array -> Patterns.t -> int array
(** [ndet dsets pats] gives [ndet(u)] — the number of faults detected
    by each pattern — from the detection sets. *)

type drop_result = {
  first_detection : int array;
      (** per fault, the first detecting pattern index, or -1 *)
  detected : int;  (** number of detected faults *)
}

val with_dropping :
  ?jobs:int -> ?kernel:kernel -> ?block_width:int -> Fault_list.t -> Patterns.t -> drop_result
(** Simulation with fault dropping: each fault is removed from
    consideration after its first detection. *)

val n_detection :
  ?jobs:int ->
  ?kernel:kernel ->
  ?block_width:int ->
  Fault_list.t ->
  Patterns.t ->
  n:int ->
  int array
(** n-detection simulation: per fault, the number of detecting patterns
    seen, counting at most [n] (a fault is dropped after its [n]-th
    detection).  [n_detection fl pats ~n:1] counts like
    {!with_dropping}. *)

val detection_sets_capped :
  ?jobs:int ->
  ?kernel:kernel ->
  ?block_width:int ->
  Fault_list.t ->
  Patterns.t ->
  n:int ->
  Util.Bitvec.t array
(** n-detection variant of {!detection_sets}: each fault's detection
    set records at most its [n] earliest detecting patterns (the fault
    is dropped afterwards).  The paper's cheaper alternative for
    estimating [ndet(u)]. *)

val detects : Circuit.t -> Fault.t -> bool array -> bool
(** Single-pattern convenience: does the given PI assignment detect the
    fault?  (Used to validate generated tests.) *)
