(** Fault-free circuit simulation.

    The bit-parallel entry points process 64 patterns per call; the
    scalar entry point is the slow reference the test-suite checks the
    fast paths against. *)

val block : Circuit.t -> Patterns.t -> int -> int64 array
(** [block c pats b] simulates pattern block [b] (patterns
    [64b .. 64b+63]) and returns one value word per node, indexed by
    node id.  The circuit must be combinational. *)

val block_into : Circuit.t -> Patterns.t -> int -> int64 array -> unit
(** As {!block}, writing into a caller-owned array of size
    [Circuit.node_count] (no allocation per block). *)

val superblock_into : Circuit.t -> Patterns.t -> width:int -> sb:int -> Util.Wordvec.t -> unit
(** Wide variant: one traversal evaluates the [width] consecutive
    blocks [sb*width .. sb*width + width - 1] into a flat arena of
    [node_count * width] words — node [n]'s lane is words
    [n*width .. n*width+width-1], word [w] holding block
    [sb*width + w].  Word-identical to [width] calls of {!block_into};
    words past the last block read as the all-zero vector.  The fast
    path of the wide-block fault simulator. *)

val outputs : Circuit.t -> Patterns.t -> Util.Bitvec.t array
(** Per primary output (in [Circuit.outputs] order), the bit column of
    its values across all patterns. *)

val eval_scalar : Circuit.t -> bool array -> bool array
(** Naive single-pattern reference: input values (in PI declaration
    order) to per-node values.  @raise Invalid_argument on width
    mismatch. *)
