module Bitvec = Util.Bitvec

(* Pre-indexed fault sites for one fault list: which fault index (if
   any) sits on each stem / pin with each polarity. *)
type site_index = {
  stem : int array array;  (* node -> [| sa0 idx; sa1 idx |], -1 if absent *)
  branch : (int * int, int * int) Hashtbl.t;  (* (gate, pin) -> (sa0 idx, sa1 idx) *)
}

let index_sites fl =
  let c = Fault_list.circuit fl in
  let stem = Array.init (Circuit.node_count c) (fun _ -> [| -1; -1 |]) in
  let branch = Hashtbl.create 256 in
  for fi = 0 to Fault_list.count fl - 1 do
    let f = Fault_list.get fl fi in
    let pol = if f.Fault.stuck_at then 1 else 0 in
    match f.Fault.site with
    | Fault.Stem s -> stem.(s).(pol) <- fi
    | Fault.Branch { gate; pin } ->
        let cur =
          Option.value ~default:(-1, -1) (Hashtbl.find_opt branch (gate, pin))
        in
        Hashtbl.replace branch (gate, pin)
          (if pol = 0 then (fi, snd cur) else (fst cur, fi))
  done;
  { stem; branch }

let fault_lists fl vec =
  let c = Fault_list.circuit fl in
  if Circuit.has_state c then
    invalid_arg "Deductive.fault_lists: circuit must be combinational";
  let sites = index_sites fl in
  let nf = Fault_list.count fl in
  let good = Goodsim.eval_scalar c vec in
  let lists = Array.init (Circuit.node_count c) (fun _ -> Bitvec.create nf) in
  let add_stem n set =
    (* The stem fault opposing the good value flips the line. *)
    let pol = if good.(n) then 0 else 1 in
    let fi = sites.stem.(n).(pol) in
    if fi >= 0 then Bitvec.set set fi true
  in
  (* Fault list seen by pin p of gate g: the driver's list plus the
     branch fault opposing the driver's good value. *)
  let pin_list g p =
    let driver = (Circuit.fanins c g).(p) in
    let l = Bitvec.copy lists.(driver) in
    (match Hashtbl.find_opt sites.branch (g, p) with
    | Some (sa0, sa1) ->
        let fi = if good.(driver) then sa0 else sa1 in
        if fi >= 0 then Bitvec.set l fi true
    | None -> ());
    l
  in
  Array.iter
    (fun n ->
      let set = lists.(n) in
      (match Circuit.kind c n with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | Gate.Buf | Gate.Dff -> Bitvec.union_into ~dst:set (pin_list n 0)
      | Gate.Not -> Bitvec.union_into ~dst:set (pin_list n 0)
      | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor) as k ->
          let controlling =
            match Gate.controlling_value k with Some v -> v | None -> assert false
          in
          let fanins = Circuit.fanins c n in
          let ctrl_pins = ref [] and nonctrl_pins = ref [] in
          Array.iteri
            (fun p f ->
              if good.(f) = controlling then ctrl_pins := p :: !ctrl_pins
              else nonctrl_pins := p :: !nonctrl_pins)
            fanins;
          (match !ctrl_pins with
          | [] ->
              (* No controlling input: any flipped input flips the
                 output. *)
              List.iter
                (fun p -> Bitvec.union_into ~dst:set (pin_list n p))
                !nonctrl_pins
          | first :: rest ->
              (* Output flips iff every controlling input flips and no
                 non-controlling input does. *)
              let acc = pin_list n first in
              List.iter (fun p -> Bitvec.inter_into ~dst:acc (pin_list n p)) rest;
              List.iter (fun p -> Bitvec.diff_into ~dst:acc (pin_list n p)) !nonctrl_pins;
              Bitvec.union_into ~dst:set acc)
      | Gate.Xor | Gate.Xnor ->
          (* Parity: faults flipping an odd number of inputs flip the
             output — the symmetric difference of the pin lists. *)
          let fanins = Circuit.fanins c n in
          let acc = Bitvec.create nf in
          Array.iteri
            (fun p _ ->
              let l = pin_list n p in
              (* symmetric difference via (acc \ l) U (l \ acc) *)
              let only_l = Bitvec.copy l in
              Bitvec.diff_into ~dst:only_l acc;
              Bitvec.diff_into ~dst:acc l;
              Bitvec.union_into ~dst:acc only_l)
            fanins;
          Bitvec.union_into ~dst:set acc);
      add_stem n set)
    (Circuit.topological_order c);
  lists

let detected_by_pattern fl vec =
  let c = Fault_list.circuit fl in
  let lists = fault_lists fl vec in
  let out = Bitvec.create (Fault_list.count fl) in
  Bitvec.union_many ~dst:out (Array.map (fun o -> lists.(o)) (Circuit.outputs c));
  out

let detection_sets fl pats =
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  for p = 0 to cnt - 1 do
    let det = detected_by_pattern fl (Patterns.vector pats p) in
    Bitvec.iter_set det (fun fi -> Bitvec.set dsets.(fi) p true)
  done;
  dsets
