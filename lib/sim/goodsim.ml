module Bitvec = Util.Bitvec
module Wordvec = Util.Wordvec

let check_comb c =
  if Circuit.has_state c then
    invalid_arg "Goodsim: circuit has flip-flops; apply Scan.combinational first"

(* Wide good simulation: one visit of the levelised order evaluates
   [width] consecutive 64-pattern blocks per node, writing into the
   node's lane of a flat {!Util.Wordvec} arena (words
   [n*width .. n*width+width-1]).  Word [w] of the lane holds block
   [sb*width + w] and is computed by exactly the per-word formula of
   {!block_into}, so the arena is word-identical to [width] narrow
   sweeps; the traversal, gate dispatch and fanin-gather costs are paid
   once per lane instead of once per word.  Input words past the last
   pattern block read as the all-zero vector, as narrow padding lanes
   do. *)
let superblock_into c pats ~width ~sb (g : Wordvec.t) =
  check_comb c;
  if width < 1 then invalid_arg "Goodsim.superblock_into: width must be positive";
  if Wordvec.length g <> Circuit.node_count c * width then
    invalid_arg "Goodsim.superblock_into: bad arena size";
  let nblocks = Patterns.blocks pats in
  let b0 = sb * width in
  Array.iteri
    (fun i pi ->
      let off = pi * width in
      for w = 0 to width - 1 do
        let b = b0 + w in
        Wordvec.unsafe_set g (off + w)
          (if b < nblocks then Patterns.word pats ~input:i ~block:b else 0L)
      done)
    (Circuit.inputs c);
  Array.iter
    (fun n ->
      let off = n * width in
      let k = Circuit.kind c n in
      match k with
      | Gate.Input -> ()
      | Gate.Const0 ->
          for w = 0 to width - 1 do
            Wordvec.unsafe_set g (off + w) 0L
          done
      | Gate.Const1 ->
          for w = 0 to width - 1 do
            Wordvec.unsafe_set g (off + w) (-1L)
          done
      | _ ->
          let fanins = Circuit.fanins c n in
          let nf = Array.length fanins in
          let fold op init invert =
            for w = 0 to width - 1 do
              let acc = ref init in
              for i = 0 to nf - 1 do
                acc :=
                  op !acc (Wordvec.unsafe_get g ((Array.unsafe_get fanins i * width) + w))
              done;
              Wordvec.unsafe_set g (off + w) (if invert then Int64.lognot !acc else !acc)
            done
          in
          (match k with
          | Gate.Const0 | Gate.Const1 | Gate.Input -> ()
          | Gate.Buf | Gate.Dff ->
              let f0 = fanins.(0) * width in
              for w = 0 to width - 1 do
                Wordvec.unsafe_set g (off + w) (Wordvec.unsafe_get g (f0 + w))
              done
          | Gate.Not ->
              let f0 = fanins.(0) * width in
              for w = 0 to width - 1 do
                Wordvec.unsafe_set g (off + w) (Int64.lognot (Wordvec.unsafe_get g (f0 + w)))
              done
          | Gate.And -> fold Int64.logand (-1L) false
          | Gate.Nand -> fold Int64.logand (-1L) true
          | Gate.Or -> fold Int64.logor 0L false
          | Gate.Nor -> fold Int64.logor 0L true
          | Gate.Xor -> fold Int64.logxor 0L false
          | Gate.Xnor -> fold Int64.logxor 0L true))
    (Circuit.topological_order c)

let block_into c pats b values =
  check_comb c;
  if Array.length values <> Circuit.node_count c then
    invalid_arg "Goodsim.block_into: bad buffer size";
  let inputs = Circuit.inputs c in
  Array.iteri (fun i pi -> values.(pi) <- Patterns.word pats ~input:i ~block:b) inputs;
  Array.iter
    (fun n ->
      match Circuit.kind c n with
      | Gate.Input -> ()
      | k -> values.(n) <- Logic_word.eval_fanins k ~values (Circuit.fanins c n))
    (Circuit.topological_order c)

let block c pats b =
  let values = Array.make (Circuit.node_count c) 0L in
  block_into c pats b values;
  values

let outputs c pats =
  let outs = Circuit.outputs c in
  let cnt = Patterns.count pats in
  let cols = Array.map (fun _ -> Bitvec.create cnt) outs in
  let values = Array.make (Circuit.node_count c) 0L in
  for b = 0 to Patterns.blocks pats - 1 do
    block_into c pats b values;
    (* Whole-word stores: lane j of the node value is pattern 64b+j by
       construction, exactly the bit layout of the column. *)
    Array.iteri (fun oi o -> (Bitvec.words cols.(oi)).(b) <- values.(o)) outs
  done;
  (* Lanes beyond the pattern count evaluated the all-zero vector; mask
     them off so the columns stay canonical. *)
  Array.iter Bitvec.normalise cols;
  cols

let eval_scalar c pi_values =
  check_comb c;
  let inputs = Circuit.inputs c in
  if Array.length pi_values <> Array.length inputs then
    invalid_arg "Goodsim.eval_scalar: input width mismatch";
  let values = Array.make (Circuit.node_count c) false in
  Array.iteri (fun i pi -> values.(pi) <- pi_values.(i)) inputs;
  Array.iter
    (fun n ->
      match Circuit.kind c n with
      | Gate.Input -> ()
      | k -> values.(n) <- Boolean.eval_array k (Array.map (fun f -> values.(f)) (Circuit.fanins c n)))
    (Circuit.topological_order c);
  values
