module Bitvec = Util.Bitvec

let check_comb c =
  if Circuit.has_state c then
    invalid_arg "Goodsim: circuit has flip-flops; apply Scan.combinational first"

let block_into c pats b values =
  check_comb c;
  if Array.length values <> Circuit.node_count c then
    invalid_arg "Goodsim.block_into: bad buffer size";
  let inputs = Circuit.inputs c in
  Array.iteri (fun i pi -> values.(pi) <- Patterns.word pats ~input:i ~block:b) inputs;
  Array.iter
    (fun n ->
      match Circuit.kind c n with
      | Gate.Input -> ()
      | k -> values.(n) <- Logic_word.eval_fanins k ~values (Circuit.fanins c n))
    (Circuit.topological_order c)

let block c pats b =
  let values = Array.make (Circuit.node_count c) 0L in
  block_into c pats b values;
  values

let outputs c pats =
  let outs = Circuit.outputs c in
  let cnt = Patterns.count pats in
  let cols = Array.map (fun _ -> Bitvec.create cnt) outs in
  let values = Array.make (Circuit.node_count c) 0L in
  for b = 0 to Patterns.blocks pats - 1 do
    block_into c pats b values;
    (* Whole-word stores: lane j of the node value is pattern 64b+j by
       construction, exactly the bit layout of the column. *)
    Array.iteri (fun oi o -> (Bitvec.words cols.(oi)).(b) <- values.(o)) outs
  done;
  (* Lanes beyond the pattern count evaluated the all-zero vector; mask
     them off so the columns stay canonical. *)
  Array.iter Bitvec.normalise cols;
  cols

let eval_scalar c pi_values =
  check_comb c;
  let inputs = Circuit.inputs c in
  if Array.length pi_values <> Array.length inputs then
    invalid_arg "Goodsim.eval_scalar: input width mismatch";
  let values = Array.make (Circuit.node_count c) false in
  Array.iteri (fun i pi -> values.(pi) <- pi_values.(i)) inputs;
  Array.iter
    (fun n ->
      match Circuit.kind c n with
      | Gate.Input -> ()
      | k -> values.(n) <- Boolean.eval_array k (Array.map (fun f -> values.(f)) (Circuit.fanins c n)))
    (Circuit.topological_order c);
  values
