(** Reader and writer for the ISCAS-85/89 [.bench] netlist format.

    The format is line-oriented:
    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G11 = DFF(G10)
    v}

    Forward references are allowed (a gate may use a signal defined on a
    later line), as real benchmark files do.  Signals referenced but
    never defined are an error.

    Two parsing modes share one implementation.  {e Strict}
    ({!parse_string}, {!parse_file}) raises {!Util.Diagnostics.Failed}
    at the first problem.  {e Recoverable} ({!parse_string_recover},
    {!parse_file_recover}) accumulates typed diagnostics and repairs
    what it can: bad statements are skipped, the first of duplicate
    definitions wins, gates with unresolvable fanins are dropped (to a
    fixpoint), cycle members are dropped, and undefined OUTPUTs are
    ignored — still yielding a circuit whenever one is salvageable. *)

val parse_string : ?file:string -> ?title:string -> string -> Circuit.t
(** Parse a full [.bench] file from a string.  [file] only labels
    diagnostics.
    @raise Util.Diagnostics.Failed on malformed input. *)

val parse_string_recover :
  ?file:string -> ?title:string -> string -> Circuit.t option * Util.Diagnostics.t list
(** Best-effort parse.  [None] when nothing salvageable remains (empty
    input, or no output survives); the diagnostic list is in source
    order and is empty exactly when the input was clean. *)

val parse_file : string -> Circuit.t
(** Parse from a file path; the title is the basename without
    extension.
    @raise Util.Diagnostics.Failed on malformed input or I/O error. *)

val parse_file_recover : string -> Circuit.t option * Util.Diagnostics.t list
(** Recoverable variant of {!parse_file}.  I/O errors still raise. *)

val to_string : Circuit.t -> string
(** Emit a circuit in [.bench] syntax.  [parse_string (to_string c)] is
    structurally identical to [c]. *)

val write_file : string -> Circuit.t -> unit
