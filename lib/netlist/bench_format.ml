module D = Util.Diagnostics

type stmt =
  | S_input of string
  | S_output of string
  | S_gate of string * Gate.kind * string list

let is_space c = c = ' ' || c = '\t' || c = '\r'

let strip s =
  let n = String.length s in
  let a = ref 0 and b = ref (n - 1) in
  while !a < n && is_space s.[!a] do
    incr a
  done;
  while !b >= !a && is_space s.[!b] do
    decr b
  done;
  String.sub s !a (!b - !a + 1)

(* Recoverable mode records the diagnostic and raises [Skip] to abandon
   just the offending statement; strict mode raises [D.Failed]. *)
exception Skip

type ctx = { file : string option; recover : bool; mutable diags : D.t list }

let report ctx ~line code fmt =
  Printf.ksprintf
    (fun m ->
      let d = D.error ~loc:{ file = ctx.file; line } code "%s" m in
      if ctx.recover then begin
        ctx.diags <- d :: ctx.diags;
        raise Skip
      end
      else raise (D.Failed d))
    fmt

(* "NAME ( a , b )" -> (NAME, [a; b]). *)
let parse_call ctx line s =
  match String.index_opt s '(' with
  | None -> report ctx ~line D.Syntax "expected '(' in %S" s
  | Some lp ->
      if String.length s = 0 || s.[String.length s - 1] <> ')' then
        report ctx ~line D.Syntax "expected ')' at end of %S" s;
      let fn = strip (String.sub s 0 lp) in
      let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
      let args =
        String.split_on_char ',' inner |> List.map strip |> List.filter (fun a -> a <> "")
      in
      (fn, args)

let parse_line ctx lineno raw =
  let s =
    match String.index_opt raw '#' with
    | Some i -> strip (String.sub raw 0 i)
    | None -> strip raw
  in
  if s = "" then None
  else
    match String.index_opt s '=' with
    | None -> (
        let fn, args = parse_call ctx lineno s in
        match (String.uppercase_ascii fn, args) with
        | "INPUT", [ a ] -> Some (S_input a)
        | "OUTPUT", [ a ] -> Some (S_output a)
        | ("INPUT" | "OUTPUT"), _ ->
            report ctx ~line:lineno D.Bad_arity "INPUT/OUTPUT take exactly one signal"
        | _ -> report ctx ~line:lineno D.Syntax "unknown declaration %S" fn)
    | Some eq ->
        let lhs = strip (String.sub s 0 eq) in
        let rhs = strip (String.sub s (eq + 1) (String.length s - eq - 1)) in
        if lhs = "" then report ctx ~line:lineno D.Syntax "missing signal name before '='";
        let fn, args = parse_call ctx lineno rhs in
        let k =
          match Gate.of_string fn with
          | Some k -> k
          | None -> report ctx ~line:lineno D.Unknown_gate "unknown gate type %S" fn
        in
        (match k with
        | Gate.Input ->
            report ctx ~line:lineno D.Syntax "INPUT cannot appear on the right of '='"
        | _ -> ());
        if not (Gate.arity_ok k (List.length args)) then
          report ctx ~line:lineno D.Bad_arity "%s gate %S has %d operands" (Gate.to_string k)
            lhs (List.length args);
        Some (S_gate (lhs, k, args))

let parse_core ~recover ?file ~title text =
  let ctx = { file; recover; diags = [] } in
  (* In recoverable mode a post-parse repair notes the problem and
     keeps going instead of skipping a statement. *)
  let note ~line code fmt =
    Printf.ksprintf
      (fun m ->
        let d = D.error ~loc:{ file = ctx.file; line } code "%s" m in
        if recover then ctx.diags <- d :: ctx.diags else raise (D.Failed d))
      fmt
  in
  let stmts = ref [] in
  List.iteri
    (fun i raw ->
      match parse_line ctx (i + 1) raw with
      | Some s -> stmts := (i + 1, s) :: !stmts
      | None -> ()
      | exception Skip -> ())
    (String.split_on_char '\n' text);
  let stmts = List.rev !stmts in
  if stmts = [] then begin
    note ~line:0 D.Empty_input "netlist holds no statements";
    (None, List.rev ctx.diags)
  end
  else begin
    let defs : (string, Gate.kind * string list * int) Hashtbl.t = Hashtbl.create 64 in
    let def_order = ref [] in
    let inputs = ref [] and outputs = ref [] in
    (* Returns false when the name was already taken (recoverable mode
       keeps the first definition). *)
    let define line name v =
      match Hashtbl.find_opt defs name with
      | Some _ ->
          note ~line D.Duplicate_def "signal %S defined twice" name;
          false
      | None ->
          Hashtbl.add defs name v;
          def_order := name :: !def_order;
          true
    in
    List.iter
      (fun (line, stmt) ->
        match stmt with
        | S_input a -> if define line a (Gate.Input, [], line) then inputs := a :: !inputs
        | S_output a -> outputs := (line, a) :: !outputs
        | S_gate (lhs, k, args) -> ignore (define line lhs (k, args, line)))
      stmts;
    let inputs = List.rev !inputs and outputs = List.rev !outputs in
    let def_order = ref (List.rev !def_order) in
    (* Check all references resolve.  Recoverable mode drops gates with
       dangling fanins, to a fixpoint: dropping a gate may orphan its
       own readers. *)
    let changed = ref true in
    while !changed do
      changed := false;
      let keep =
        List.filter
          (fun name ->
            let _, args, line = Hashtbl.find defs name in
            let dangling = List.filter (fun a -> not (Hashtbl.mem defs a)) args in
            match dangling with
            | [] -> true
            | a :: _ ->
                note ~line D.Undefined_ref "signal %S is used but never defined" a;
                Hashtbl.remove defs name;
                changed := true;
                false)
          !def_order
      in
      def_order := keep
    done;
    let def_order = !def_order in
    let inputs = List.filter (Hashtbl.mem defs) inputs in
    (* Topological order over combinational dependencies; DFFs are
       sources (their fanin edge crosses a clock boundary). *)
    let comb_deps name =
      match Hashtbl.find defs name with Gate.Dff, _, _ -> [] | _, args, _ -> args
    in
    let indeg = Hashtbl.create 64 in
    let succs = Hashtbl.create 64 in
    List.iter
      (fun name ->
        Hashtbl.replace indeg name (List.length (comb_deps name));
        List.iter
          (fun d ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt succs d) in
            Hashtbl.replace succs d (name :: cur))
          (comb_deps name))
      def_order;
    (* Emit ready definitions in file order (min file index first) so a
       file already in dependency order — in particular our own
       [to_string] output — round-trips with identical node ids. *)
    let file_pos = Hashtbl.create 64 in
    List.iteri (fun i n -> Hashtbl.replace file_pos n i) def_order;
    let ready : string Util.Heap.t = Util.Heap.create () in
    let push n = Util.Heap.push ready ~key:(-Hashtbl.find file_pos n) n in
    List.iter (fun n -> if Hashtbl.find indeg n = 0 then push n) def_order;
    let order = ref [] in
    let emitted = ref 0 in
    let rec drain () =
      match Util.Heap.pop ready with
      | None -> ()
      | Some (_, n) ->
          order := n :: !order;
          incr emitted;
          List.iter
            (fun s ->
              let d = Hashtbl.find indeg s - 1 in
              Hashtbl.replace indeg s d;
              if d = 0 then push s)
            (Option.value ~default:[] (Hashtbl.find_opt succs n));
          drain ()
    in
    drain ();
    (* Names never emitted sit on or downstream of a cycle; recoverable
       mode drops them. *)
    let order = List.rev !order in
    if !emitted <> List.length def_order then begin
      let ok = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace ok n ()) order;
      List.iter
        (fun n ->
          if not (Hashtbl.mem ok n) then begin
            let _, _, line = Hashtbl.find defs n in
            note ~line D.Combinational_cycle "signal %S lies on a combinational cycle" n;
            Hashtbl.remove defs n
          end)
        def_order
    end;
    (* Build: inputs first (declaration order), then topological order. *)
    let b = Circuit.Builder.create ~title () in
    let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace ids n (Circuit.Builder.input b n)) inputs;
    let dff_defs = ref [] in
    List.iter
      (fun name ->
        if not (Hashtbl.mem ids name) then begin
          let k, args, line = Hashtbl.find defs name in
          match k with
          | Gate.Input -> ()
          | Gate.Dff ->
              Hashtbl.replace ids name (Circuit.Builder.dff b name);
              dff_defs := (name, args, line) :: !dff_defs
          | _ ->
              let fanin_ids = List.map (fun a -> Hashtbl.find ids a) args in
              Hashtbl.replace ids name (Circuit.Builder.gate b k name fanin_ids)
        end)
      order;
    List.iter
      (fun (name, args, line) ->
        match args with
        | [ a ] -> (
            match Hashtbl.find_opt ids a with
            | Some fid -> Circuit.Builder.connect_dff b (Hashtbl.find ids name) ~fanin:fid
            | None ->
                note ~line D.Undefined_ref "DFF %S input %S was dropped as unresolvable" name a)
        | _ -> note ~line D.Bad_arity "DFF %S must have exactly one operand" name)
      !dff_defs;
    let outputs =
      List.filter
        (fun (line, o) ->
          if Hashtbl.mem ids o then true
          else begin
            note ~line D.Undefined_ref "OUTPUT %S is never defined" o;
            false
          end)
        outputs
    in
    if outputs = [] then begin
      note ~line:0 D.No_outputs "netlist declares no OUTPUT";
      (None, List.rev ctx.diags)
    end
    else begin
      List.iter (fun (_, o) -> Circuit.Builder.mark_output b (Hashtbl.find ids o)) outputs;
      (Some (Circuit.Builder.finish b), List.rev ctx.diags)
    end
  end

let parse_string ?file ?(title = "bench") text =
  match parse_core ~recover:false ?file ~title text with
  | Some c, _ -> c
  | None, _ -> assert false (* strict mode raised before returning None *)

let parse_string_recover ?file ?(title = "bench") text =
  parse_core ~recover:true ?file ~title text

let read_whole_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> D.fail ~loc:{ file = Some path; line = 0 } D.Io_error "%s" msg
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let parse_file path =
  let text = read_whole_file path in
  let title = Filename.remove_extension (Filename.basename path) in
  parse_string ~file:path ~title text

let parse_file_recover path =
  let text = read_whole_file path in
  let title = Filename.remove_extension (Filename.basename path) in
  parse_string_recover ~file:path ~title text

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.title c));
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.name c i)))
    (Circuit.inputs c);
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.name c i)))
    (Circuit.outputs c);
  (* Emit definitions in id order — valid because forward references are
     allowed by the format. *)
  Circuit.iter_nodes c (fun i ->
      match Circuit.kind c i with
      | Gate.Input -> ()
      | k ->
          let args =
            Circuit.fanins c i |> Array.to_list
            |> List.map (Circuit.name c)
            |> String.concat ", "
          in
          Buffer.add_string buf
            (Printf.sprintf "%s = %s(%s)\n" (Circuit.name c i) (Gate.to_string k) args));
  Buffer.contents buf

let write_file path c =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_string c))
