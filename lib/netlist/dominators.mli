(** Immediate post-dominators of a combinational netlist.

    Node [d] post-dominates node [v] when every path from [v] to a
    primary output passes through [d].  Post-dominators are computed
    toward a virtual {e sink} joined from every primary output, with
    the Cooper–Harvey–Kennedy intersection over a reverse topological
    sweep — one pass, no fixpoint iteration, O(edges × chain length).

    The critical-path-tracing fault-simulation kernel rests on the
    decomposition [obs(v) = reach(v -> ipdom v) AND obs(ipdom v)]: a
    value change at [v] is observed at an output iff it changes [v]'s
    immediate post-dominator (all output-bound paths funnel through
    it, so corruption that misses it is observably dead) and that
    change is in turn observed.  See {!Faultsim} for the argument.

    A primary output's immediate post-dominator is the sink — its
    value is observed directly.  A node with no path to any output is
    {e dead}. *)

type t

val compute : Circuit.t -> t
(** One pass over the circuit; reuse the result for any number of
    queries. *)

type pdom =
  | Sink  (** observed directly, or paths share no later node *)
  | Dead  (** no path to any primary output *)
  | Node of int  (** the immediate post-dominator's node id *)

val ipdom : t -> int -> pdom

val ipdom_raw : t -> int array
(** The raw immediate-post-dominator array for hot loops: node id, or
    [-1] for the sink, [-2] for dead nodes.  Do not mutate. *)

val is_dead : t -> int -> bool
val reaches_output : t -> int -> bool

val chain : t -> int -> int list
(** [chain t v] is the post-dominator chain of [v] (nearest first, the
    sink excluded).  Every member post-dominates [v]. *)
