type issue = Dangling_node of int | Undriven_logic of int | Dff_present of int

let pp_issue c ppf = function
  | Dangling_node i ->
      Format.fprintf ppf "node %S drives no primary output (its faults are undetectable)"
        (Circuit.name c i)
  | Undriven_logic i ->
      Format.fprintf ppf "node %S computes a constant (fed only by constants)"
        (Circuit.name c i)
  | Dff_present i ->
      Format.fprintf ppf "node %S is a flip-flop but a combinational circuit was required"
        (Circuit.name c i)

let dead_nodes c =
  let n = Circuit.node_count c in
  let live = Array.make n false in
  (* Walk fanin cones from the outputs over the reverse topological
     order: a node is live iff it is an output or feeds a live node. *)
  Array.iter (fun o -> live.(o) <- true) (Circuit.outputs c);
  let topo = Circuit.topological_order c in
  for idx = n - 1 downto 0 do
    let i = topo.(idx) in
    if live.(i) then Array.iter (fun f -> live.(f) <- true) (Circuit.fanins c i)
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if not live.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let check ?(require_combinational = false) c =
  let issues = ref [] in
  Array.iter (fun i -> issues := Dangling_node i :: !issues) (dead_nodes c);
  Circuit.iter_nodes c (fun i ->
      let k = Circuit.kind c i in
      (match k with
      | Gate.Dff -> if require_combinational then issues := Dff_present i :: !issues
      | _ -> ());
      let fi = Circuit.fanins c i in
      if
        Array.length fi > 0
        && Array.for_all
             (fun f -> match Circuit.kind c f with Gate.Const0 | Gate.Const1 -> true | _ -> false)
             fi
      then issues := Undriven_logic i :: !issues);
  List.rev !issues

let to_diagnostic c issue =
  let module D = Util.Diagnostics in
  let msg = Format.asprintf "%a" (pp_issue c) issue in
  match issue with
  | Dangling_node _ -> D.make ~severity:D.Warning D.Dead_logic msg
  | Undriven_logic _ -> D.make ~severity:D.Warning D.Constant_logic msg
  | Dff_present _ -> D.make ~severity:D.Error D.Sequential_element msg

let diagnostics ?require_combinational c =
  List.map (to_diagnostic c) (check ?require_combinational c)
