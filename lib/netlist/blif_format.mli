(** Reader and writer for the Berkeley Logic Interchange Format (BLIF).

    The subset covering combinational and full-scan-style sequential
    netlists:

    {v
    .model adder
    .inputs a b cin
    .outputs sum cout
    .names a b t      # single-output PLA cover: rows of
    11 1              # input-pattern output-value
    .names t cin sum
    10 1
    01 1
    .latch d q 0      # optional: D flip-flop (reset value ignored)
    .end
    v}

    Parsing turns each [.names] cover into AND/OR/NOT logic (shared
    input inverters per cover); writing emits each gate as a one-gate
    cover, so BLIF round-trips are functionally — not structurally —
    identical.  [.names] covers may use on-set rows (output 1) or
    off-set rows (output 0), never both.

    Two parsing modes share one implementation, as in
    {!Bench_format}.  {e Strict} ({!parse_string}, {!parse_file})
    raises {!Util.Diagnostics.Failed} at the first problem.
    {e Recoverable} ({!parse_string_recover}, {!parse_file_recover})
    accumulates typed diagnostics, skips malformed directives and
    cover rows, keeps the first of duplicate definitions, drops covers
    with unresolvable inputs (and their dependents), and still yields
    a circuit whenever at least one declared output survives. *)

val parse_string : ?file:string -> ?title:string -> string -> Circuit.t
(** Parse BLIF text.  [file] only labels diagnostics.
    @raise Util.Diagnostics.Failed on malformed input. *)

val parse_string_recover :
  ?file:string -> ?title:string -> string -> Circuit.t option * Util.Diagnostics.t list
(** Best-effort parse.  [None] when nothing salvageable remains; the
    diagnostic list is empty exactly when the input was clean. *)

val parse_file : string -> Circuit.t
(** @raise Util.Diagnostics.Failed on malformed input or I/O error. *)

val parse_file_recover : string -> Circuit.t option * Util.Diagnostics.t list
(** Recoverable variant of {!parse_file}.  I/O errors still raise. *)

val to_string : Circuit.t -> string
val write_file : string -> Circuit.t -> unit
