module D = Util.Diagnostics

type cover_row = { pattern : string; value : bool }

type definition =
  | Def_cover of string list * string * cover_row list  (* inputs, output, rows *)
  | Def_latch of string * string  (* data, output *)

(* Recoverable mode records the diagnostic and raises [Skip] to abandon
   the offending directive, row or definition; strict mode raises
   [D.Failed]. *)
exception Skip

type ctx = { file : string option; recover : bool; mutable diags : D.t list }

let report ctx ~line code fmt =
  Printf.ksprintf
    (fun m ->
      let d = D.error ~loc:{ file = ctx.file; line } code "%s" m in
      if ctx.recover then begin
        ctx.diags <- d :: ctx.diags;
        raise Skip
      end
      else raise (D.Failed d))
    fmt

let note ctx ~line code fmt =
  Printf.ksprintf
    (fun m ->
      let d = D.error ~loc:{ file = ctx.file; line } code "%s" m in
      if ctx.recover then ctx.diags <- d :: ctx.diags else raise (D.Failed d))
    fmt

(* --- lexing: logical lines with '\' continuations, '#' comments --- *)

let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec glue acc pending pending_no = function
    | [] -> List.rev (match pending with Some (s, n) -> (s, n) :: acc | None -> acc)
    | (line, no) :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
        let body = if continued then String.sub line 0 (String.length line - 1) else line in
        let merged, merged_no =
          match pending with
          | Some (p, pn) -> (p ^ " " ^ body, pn)
          | None -> (body, no)
        in
        if continued then glue acc (Some (merged, merged_no)) merged_no rest
        else if String.trim merged = "" then glue acc None pending_no rest
        else glue ((String.trim merged, merged_no) :: acc) None pending_no rest
  in
  glue [] None 0 (List.mapi (fun i l -> (l, i + 1)) raw)

let tokens s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* --- parsing ------------------------------------------------------ *)

let parse_core ~recover ?file ~title text =
  let ctx = { file; recover; diags = [] } in
  let lines = logical_lines text in
  let model = ref title in
  let inputs = ref [] and outputs = ref [] in
  let defs = ref [] in
  let pending_cover = ref None in
  let flush_cover () =
    match !pending_cover with
    | Some (ins, out, rows, no) ->
        defs := (Def_cover (ins, out, List.rev rows), no) :: !defs;
        pending_cover := None
    | None -> ()
  in
  List.iter
    (fun (line, no) ->
      try
        match tokens line with
        | [] -> ()
        | tok :: rest when String.length tok > 0 && tok.[0] = '.' -> (
            flush_cover ();
            match (tok, rest) with
            | ".model", [ name ] -> model := name
            | ".model", _ -> report ctx ~line:no D.Bad_directive ".model takes one name"
            | ".inputs", names -> inputs := !inputs @ names
            | ".outputs", names -> outputs := !outputs @ List.map (fun o -> (no, o)) names
            | ".names", names -> (
                match List.rev names with
                | out :: ins_rev -> pending_cover := Some (List.rev ins_rev, out, [], no)
                | [] -> report ctx ~line:no D.Bad_directive ".names needs at least an output")
            | ".latch", (data :: out :: _) -> defs := (Def_latch (data, out), no) :: !defs
            | ".latch", _ ->
                report ctx ~line:no D.Bad_directive ".latch needs data and output signals"
            | ".end", _ | ".exdc", _ -> ()
            | _, _ -> report ctx ~line:no D.Bad_directive "unsupported construct %S" tok)
        | toks -> (
            match !pending_cover with
            | None -> report ctx ~line:no D.Bad_cover "cover row outside a .names block: %S" line
            | Some (ins, out, rows, cno) ->
                let pattern, value =
                  match toks with
                  | [ v ] when ins = [] -> ("", v)
                  | [ p; v ] -> (p, v)
                  | _ -> report ctx ~line:no D.Bad_cover "malformed cover row %S" line
                in
                if String.length pattern <> List.length ins then
                  report ctx ~line:no D.Bad_cover "cover row %S has wrong width" pattern;
                String.iter
                  (fun ch ->
                    if ch <> '0' && ch <> '1' && ch <> '-' then
                      report ctx ~line:no D.Bad_cover "bad cover character %C" ch)
                  pattern;
                let value =
                  match value with
                  | "1" -> true
                  | "0" -> false
                  | _ -> report ctx ~line:no D.Bad_cover "cover output must be 0 or 1"
                in
                pending_cover := Some (ins, out, { pattern; value } :: rows, cno))
      with Skip -> ())
    lines;
  flush_cover ();
  let defs = List.rev !defs in
  if defs = [] && !inputs = [] && !outputs = [] then begin
    note ctx ~line:0 D.Empty_input "netlist holds no statements";
    (None, List.rev ctx.diags)
  end
  else begin
    (* Signal name -> defining entry; recoverable mode keeps the first. *)
    let def_of = Hashtbl.create 64 in
    let defs =
      List.filter
        (fun (d, no) ->
          let out = match d with Def_cover (_, o, _) -> o | Def_latch (_, o) -> o in
          if Hashtbl.mem def_of out || List.mem out !inputs then begin
            note ctx ~line:no D.Duplicate_def "signal %S defined twice" out;
            false
          end
          else begin
            Hashtbl.replace def_of out (d, no);
            true
          end)
        defs
    in
    let b = Circuit.Builder.create ~title:!model () in
    let ids = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace ids n (Circuit.Builder.input b n)) !inputs;
    (* Latches first (sources), their data connected afterwards. *)
    let latches = ref [] in
    List.iter
      (function
        | Def_latch (data, out), no ->
            Hashtbl.replace ids out (Circuit.Builder.dff b out);
            latches := (data, out, no) :: !latches
        | Def_cover _, _ -> ())
      defs;
    (* Build covers in dependency order.  A cover that fails to resolve
       lands in [failed]; recoverable mode then drops its dependents
       too instead of crediting them with a bogus cycle. *)
    let building = Hashtbl.create 16 in
    let failed = Hashtbl.create 16 in
    let rec resolve no name =
      match Hashtbl.find_opt ids name with
      | Some id -> id
      | None -> (
          if Hashtbl.mem failed name then
            report ctx ~line:no D.Undefined_ref "signal %S was dropped as unresolvable" name;
          if Hashtbl.mem building name then
            report ctx ~line:no D.Combinational_cycle "combinational cycle through %S" name;
          Hashtbl.replace building name ();
          match Hashtbl.find_opt def_of name with
          | None ->
              Hashtbl.remove building name;
              report ctx ~line:no D.Undefined_ref "signal %S is used but never defined" name
          | Some (Def_latch _, _) -> assert false (* latches pre-registered *)
          | Some (Def_cover (ins, out, rows), dno) -> (
              match
                let in_ids = List.map (resolve dno) ins in
                build_cover dno out in_ids rows
              with
              | id ->
                  Hashtbl.remove building name;
                  Hashtbl.replace ids name id;
                  id
              | exception e ->
                  Hashtbl.remove building name;
                  Hashtbl.replace failed name ();
                  raise e))
    and build_cover no out in_ids rows =
      let n_ins = List.length in_ids in
      let in_arr = Array.of_list in_ids in
      (* Constant covers. *)
      if rows = [] then Circuit.Builder.const b out false
      else begin
        let values = List.map (fun r -> r.value) rows in
        let on_set = List.for_all Fun.id values in
        if (not on_set) && List.exists Fun.id values then
          report ctx ~line:no D.Bad_cover "cover for %S mixes on-set and off-set rows" out;
        if n_ins = 0 then Circuit.Builder.const b out on_set
        else begin
          (* Shared inverters per cover. *)
          let inverters = Array.make n_ins None in
          let inv i =
            match inverters.(i) with
            | Some id -> id
            | None ->
                let id =
                  Circuit.Builder.gate b Gate.Not (Printf.sprintf "%s_n%d" out i) [ in_arr.(i) ]
                in
                inverters.(i) <- Some id;
                id
          in
          let product ri (r : cover_row) =
            let literals = ref [] in
            String.iteri
              (fun i ch ->
                match ch with
                | '1' -> literals := in_arr.(i) :: !literals
                | '0' -> literals := inv i :: !literals
                | _ -> ())
              r.pattern;
            match List.rev !literals with
            | [] -> Circuit.Builder.const b (Printf.sprintf "%s_p%d" out ri) true
            | [ l ] -> Circuit.Builder.gate b Gate.Buf (Printf.sprintf "%s_p%d" out ri) [ l ]
            | ls -> Circuit.Builder.gate b Gate.And (Printf.sprintf "%s_p%d" out ri) ls
          in
          let products = List.mapi product rows in
          match (products, on_set) with
          | [ p ], true -> Circuit.Builder.gate b Gate.Buf out [ p ]
          | [ p ], false -> Circuit.Builder.gate b Gate.Not out [ p ]
          | ps, true -> Circuit.Builder.gate b Gate.Or out ps
          | ps, false -> Circuit.Builder.gate b Gate.Nor out ps
        end
      end
    in
    List.iter
      (fun (d, no) ->
        try match d with Def_cover (_, out, _) -> ignore (resolve no out) | Def_latch _ -> ()
        with Skip -> ())
      defs;
    List.iter
      (fun (data, out, no) ->
        let fanin =
          try resolve no data
          with Skip ->
            (* Keep the circuit well-formed: tie the orphaned latch to a
               constant, with the diagnostic already on record. *)
            Circuit.Builder.const b (out ^ "_dropped_data") false
        in
        Circuit.Builder.connect_dff b (Hashtbl.find ids out) ~fanin)
      !latches;
    let outputs =
      List.filter
        (fun (no, o) ->
          if Hashtbl.mem ids o then true
          else begin
            note ctx ~line:no D.Undefined_ref ".outputs signal %S is never defined" o;
            false
          end)
        !outputs
    in
    if outputs = [] then begin
      note ctx ~line:0 D.No_outputs "netlist declares no .outputs";
      (None, List.rev ctx.diags)
    end
    else begin
      List.iter (fun (_, o) -> Circuit.Builder.mark_output b (Hashtbl.find ids o)) outputs;
      (Some (Circuit.Builder.finish b), List.rev ctx.diags)
    end
  end

let parse_string ?file ?(title = "blif") text =
  match parse_core ~recover:false ?file ~title text with
  | Some c, _ -> c
  | None, _ -> assert false (* strict mode raised before returning None *)

let parse_string_recover ?file ?(title = "blif") text =
  parse_core ~recover:true ?file ~title text

let read_whole_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> D.fail ~loc:{ file = Some path; line = 0 } D.Io_error "%s" msg
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let parse_file path =
  parse_string ~file:path
    ~title:(Filename.remove_extension (Filename.basename path))
    (read_whole_file path)

let parse_file_recover path =
  parse_string_recover ~file:path
    ~title:(Filename.remove_extension (Filename.basename path))
    (read_whole_file path)

(* --- writing ------------------------------------------------------ *)

let cover_of_gate c i =
  let k = Circuit.kind c i in
  let arity = Array.length (Circuit.fanins c i) in
  let all ch = String.make arity ch in
  let one_hot p ch fill =
    String.init arity (fun q -> if q = p then ch else fill)
  in
  match k with
  | Gate.Const0 -> []
  | Gate.Const1 -> [ { pattern = ""; value = true } ]
  | Gate.Buf | Gate.Dff -> [ { pattern = "1"; value = true } ]
  | Gate.Not -> [ { pattern = "0"; value = true } ]
  | Gate.And -> [ { pattern = all '1'; value = true } ]
  | Gate.Nand -> [ { pattern = all '1'; value = false } ]
  | Gate.Or -> List.init arity (fun p -> { pattern = one_hot p '1' '-'; value = true })
  | Gate.Nor -> [ { pattern = all '0'; value = true } ]
  | Gate.Xor | Gate.Xnor ->
      (* Enumerate odd/even-parity minterms. *)
      let want_odd = k = Gate.Xor in
      let rows = ref [] in
      for m = 0 to (1 lsl arity) - 1 do
        let ones = ref 0 in
        for p = 0 to arity - 1 do
          if (m lsr p) land 1 = 1 then incr ones
        done;
        if !ones land 1 = if want_odd then 1 else 0 then
          rows :=
            {
              pattern = String.init arity (fun p -> if (m lsr p) land 1 = 1 then '1' else '0');
              value = true;
            }
            :: !rows
      done;
      List.rev !rows
  | Gate.Input -> invalid_arg "Blif_format: input has no cover"

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Circuit.title c));
  let names l = String.concat " " (List.map (Circuit.name c) (Array.to_list l)) in
  Buffer.add_string buf (Printf.sprintf ".inputs %s\n" (names (Circuit.inputs c)));
  Buffer.add_string buf (Printf.sprintf ".outputs %s\n" (names (Circuit.outputs c)));
  Circuit.iter_nodes c (fun i ->
      match Circuit.kind c i with
      | Gate.Input -> ()
      | Gate.Dff ->
          Buffer.add_string buf
            (Printf.sprintf ".latch %s %s 0\n"
               (Circuit.name c (Circuit.fanins c i).(0))
               (Circuit.name c i))
      | _ ->
          let ins =
            String.concat " "
              (List.map (Circuit.name c) (Array.to_list (Circuit.fanins c i)))
          in
          Buffer.add_string buf
            (Printf.sprintf ".names%s%s %s\n"
               (if ins = "" then "" else " ")
               ins (Circuit.name c i));
          List.iter
            (fun r ->
              if r.pattern = "" then
                Buffer.add_string buf (Printf.sprintf "%s\n" (if r.value then "1" else "0"))
              else
                Buffer.add_string buf
                  (Printf.sprintf "%s %s\n" r.pattern (if r.value then "1" else "0")))
            (cover_of_gate c i));
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_string c))
