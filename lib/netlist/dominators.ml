type t = { ipdom : int array }

let sink = -1
let dead = -2

type pdom = Sink | Dead | Node of int

(* Cooper–Harvey–Kennedy on the fanout graph extended with a virtual
   sink fed by every primary output.  Nodes are processed in reverse
   topological order, so every successor's immediate post-dominator is
   final before it is consumed; the two-finger intersection walks
   ipdom chains, comparing by topological rank (ranks strictly
   increase toward the sink, and the sink outranks every node). *)
let compute c =
  let n = Circuit.node_count c in
  let order = Circuit.topological_order c in
  let rank = Array.make n 0 in
  Array.iteri (fun pos v -> rank.(v) <- pos) order;
  let ipdom = Array.make n dead in
  let rank_of v = if v = sink then n else rank.(v) in
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      if rank_of !a < rank_of !b then a := ipdom.(!a) else b := ipdom.(!b)
    done;
    !a
  in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let idom = ref dead in
    let add s =
      if s <> dead then idom := if !idom = dead then s else intersect !idom s
    in
    if Circuit.is_output c v then add sink;
    (* A successor that cannot reach an output constrains nothing: no
       output-bound path runs through it. *)
    Array.iter (fun s -> add (if ipdom.(s) = dead then dead else s)) (Circuit.fanouts c v);
    ipdom.(v) <- !idom
  done;
  { ipdom }

let ipdom t v =
  match t.ipdom.(v) with -1 -> Sink | -2 -> Dead | d -> Node d

let ipdom_raw t = t.ipdom
let is_dead t v = t.ipdom.(v) = dead
let reaches_output t v = t.ipdom.(v) <> dead

let chain t v =
  let rec go acc v =
    match t.ipdom.(v) with -1 | -2 -> List.rev acc | d -> go (d :: acc) d
  in
  go [] v
