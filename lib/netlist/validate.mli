(** Structural sanity checks over frozen circuits.

    The builder already enforces local invariants (arity, dangling ids,
    acyclicity); this module adds whole-circuit diagnostics used by the
    CLI and by tests on generated circuits. *)

type issue =
  | Dangling_node of int  (** node drives nothing and is not an output *)
  | Undriven_logic of int  (** logic node with a constant-only cone (informational) *)
  | Dff_present of int  (** sequential element in a context requiring combinational logic *)

val pp_issue : Circuit.t -> Format.formatter -> issue -> unit

val check : ?require_combinational:bool -> Circuit.t -> issue list
(** Collect diagnostics.  [Dangling_node] is reported for nodes from
    which no primary output is reachable; such nodes are legal but their
    faults are undetectable. *)

val dead_nodes : Circuit.t -> int array
(** Nodes from which no primary output is reachable. *)

val to_diagnostic : Circuit.t -> issue -> Util.Diagnostics.t
(** Bridge to the typed-diagnostics boundary: [Dangling_node] becomes a
    [W-dead-logic] warning, [Undriven_logic] a [W-constant-logic]
    warning, [Dff_present] an [E-sequential-element] error. *)

val diagnostics : ?require_combinational:bool -> Circuit.t -> Util.Diagnostics.t list
(** [check] rendered as typed diagnostics. *)
