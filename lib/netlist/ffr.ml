type t = { circuit : Circuit.t; stem : int array; stems : int array }

let node_is_stem c v = Circuit.is_output c v || Circuit.fanout_count c v <> 1

let compute c =
  if Circuit.has_state c then
    invalid_arg "Ffr.compute: circuit has flip-flops; apply Scan.combinational first";
  let n = Circuit.node_count c in
  let stem = Array.make n (-1) in
  let order = Circuit.topological_order c in
  (* Reverse topological order: a node's unique fanout is resolved
     before the node itself. *)
  for i = n - 1 downto 0 do
    let v = order.(i) in
    if node_is_stem c v then stem.(v) <- v
    else stem.(v) <- stem.((Circuit.fanouts c v).(0))
  done;
  let count = ref 0 in
  Array.iteri (fun v s -> if v = s then incr count) stem;
  let stems = Array.make !count 0 in
  let j = ref 0 in
  Array.iteri
    (fun v s ->
      if v = s then begin
        stems.(!j) <- v;
        incr j
      end)
    stem;
  { circuit = c; stem; stems }

let is_stem t v = t.stem.(v) = v
let stem_of t v = t.stem.(v)
let stems t = t.stems
let region_count t = Array.length t.stems

let members t s =
  if not (is_stem t s) then invalid_arg "Ffr.members: not a stem";
  let n = Array.length t.stem in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if t.stem.(v) = s then incr count
  done;
  let out = Array.make !count 0 in
  let j = ref 0 in
  for v = 0 to n - 1 do
    if t.stem.(v) = s then begin
      out.(!j) <- v;
      incr j
    end
  done;
  out

let average_size t =
  float_of_int (Circuit.node_count t.circuit) /. float_of_int (max 1 (region_count t))
