(** Fanout-free regions of a combinational circuit.

    A node is a {e stem} when its value is observed in more than one
    place — it drives several consumers, is a primary output, or drives
    nothing at all (a dead node is its own trivial stem).  Every other
    node has exactly one consumer, so following fanout edges from any
    node reaches a unique nearest stem; the set of nodes sharing a stem
    is that stem's fanout-free region (FFR).

    Inside an FFR the path from a node to its stem is unique, which is
    what makes stem-first fault simulation exact: a fault effect
    anywhere in the region either reaches the stem as a plain value
    flip or dies locally, so one full propagation per stem plus a local
    path-sensitization walk per fault reproduces per-fault propagation
    bit for bit (see {!Faultsim}).

    Requires a combinational circuit. *)

type t

val compute : Circuit.t -> t
(** @raise Invalid_argument if the circuit has flip-flops. *)

val is_stem : t -> int -> bool
(** Whether the node is a stem: a primary output, or fanout count [<> 1]. *)

val stem_of : t -> int -> int
(** The stem whose region contains the node; [stem_of t s = s] for a
    stem [s]. *)

val stems : t -> int array
(** All stems, in increasing node id.  Do not mutate. *)

val region_count : t -> int

val members : t -> int -> int array
(** [members t s] lists the nodes of stem [s]'s region (including [s]
    itself), in increasing node id.  Computed on demand.
    @raise Invalid_argument if [s] is not a stem. *)

val average_size : t -> float
(** Mean region size — the factor by which stem-first simulation
    divides the number of full propagations. *)
