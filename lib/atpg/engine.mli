(** The test-generation engine: targets faults in a given order, with
    fault dropping and random fill, and {e no} dynamic compaction —
    exactly the procedure of the paper's Section 4.

    For each not-yet-detected fault, in order: run PODEM; fill the
    returned cube's don't-cares randomly; fault-simulate the resulting
    vector against all live faults and drop everything it detects.
    Faults proven untestable, aborted, or out of budget are recorded
    and skipped.

    {2 Resilience}

    Long runs degrade gracefully instead of dying:

    - {e Abort-retry escalation}: faults that hit the backtrack limit
      are queued and retried in up to [retries] further passes, each
      with a doubled limit — standard production-ATPG practice that
      typically recovers coverage for free.
    - {e Time budgets}: a whole-run wall-clock budget and an optional
      per-fault slice.  A fault whose slice expires is classified
      [out_of_budget] (distinct from backtrack-[aborted]); when the
      whole-run budget expires the engine stops at a fault boundary
      and reports [interrupted].
    - {e Checkpoint/resume}: a {!snapshot} captures everything needed
      to continue deterministically (pass structure, partial
      classifications, tests, RNG state, search statistics).  A run
      resumed from a snapshot produces exactly the result the
      uninterrupted run would have. *)

type generator = Podem_gen | Dalg_gen

type config = {
  backtrack_limit : int;  (** first-pass search backtrack cap (default 256) *)
  seed : int;  (** random-fill seed (default 0xAD1) *)
  generator : generator;  (** which ATPG drives the loop (default PODEM) *)
  retries : int;
      (** escalation passes over aborted faults, each doubling the
          backtrack limit (default 1; 0 disables escalation) *)
  time_budget_s : float option;
      (** whole-run wall-clock budget (default [None] = unlimited) *)
  per_fault_budget_s : float option;
      (** per-fault wall-clock slice (default [None] = unlimited) *)
  jobs : int;
      (** domain-pool size for the per-test fault-simulation scans
          (default 1 = serial).  Purely a throughput knob: every result
          field is identical for any value, so [jobs] takes no part in
          checkpoint/resume matching. *)
  window : int;
      (** speculative-lookahead width for {!run} (default 1 = the exact
          serial path).  With [window > 1] and [jobs > 1], the next
          [window] not-yet-dropped faults are searched concurrently and
          committed in strict schedule order: don't-cares are filled
          from the run RNG at commit time, so tests, classifications,
          statistics, checkpoints — every result field except the
          [spec_*] waste accounting — are byte-identical to the serial
          run.  Like [jobs], a pure throughput knob excluded from
          checkpoint/resume matching. *)
}

val default_config : config

type snapshot = {
  snap_pass : int;  (** current escalation pass (0-based) *)
  snap_schedule : int array;  (** fault indices of the current pass *)
  snap_pos : int;  (** next unprocessed index into [snap_schedule] *)
  snap_limit : int;  (** backtrack limit of the current pass *)
  snap_retry_rev : int list;  (** aborts accumulated this pass (reversed) *)
  snap_ever_retried : bool array;
  snap_detected_by : int array;
  snap_tests_rev : bool array list;  (** generated vectors (reversed) *)
  snap_targeted_rev : int list;
  snap_untestable_rev : int list;
  snap_out_of_budget_rev : int list;
  snap_n_tests : int;
  snap_rng_state : int64;  (** random-fill generator state *)
  snap_decisions : int;
  snap_backtracks : int;
  snap_implications : int;
}
(** A self-contained, serialisable (plain-data) capture of an
    in-flight {!run} at a fault boundary. *)

type result = {
  tests : Patterns.t;  (** generated vectors, in generation order *)
  detected_by : int array;
      (** per fault index: the test (position in [tests]) that first
          detected it, or -1 *)
  targeted : int array;
      (** per test: the fault index the test was generated for *)
  untestable : int list;  (** proven redundant faults *)
  aborted : int list;  (** backtrack-limit hits remaining after all retry passes *)
  out_of_budget : int list;  (** per-fault time-budget hits *)
  retry_recovered : int;
      (** faults that aborted in an earlier pass but were resolved
          (tested, dropped, or proven untestable) by escalation *)
  interrupted : bool;
      (** true when the run stopped early (whole-run budget or
          [should_stop]); remaining faults are unclassified *)
  snapshot : snapshot option;  (** resume point, present iff [interrupted] *)
  stats : Podem.stats;  (** accumulated search statistics *)
  runtime_s : float;  (** wall-clock generation time *)
  spec_dispatched : int;
      (** speculative searches handed to the window (0 when [window]
          is 1 or [jobs] is 1 — the serial path) *)
  spec_committed : int;
      (** speculative searches whose outcome was committed — exactly
          the searches the serial run performs *)
  spec_wasted : int;
      (** speculative searches discarded because their target was
          dropped by a test committed after dispatch (plus any in
          flight when a run is interrupted) *)
}

val run :
  ?config:config ->
  ?resume:snapshot ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(snapshot -> unit) ->
  ?should_stop:(unit -> bool) ->
  Fault_list.t ->
  order:int array ->
  result
(** [run fl ~order] generates a test set.  [order] is a permutation of
    fault indices (see {!Ordering}); the engine considers faults in
    exactly this order.

    [resume] continues a previous run from its snapshot (the caller
    must supply the same fault list, order, and config seed for the
    continuation to be meaningful).  When [checkpoint_every] and
    [on_checkpoint] are both given, the callback receives a fresh
    snapshot after every [checkpoint_every] processed faults.
    [should_stop] is polled between faults; returning [true] stops the
    run at the next boundary with [interrupted = true] and a final
    snapshot in the result.

    @raise Invalid_argument if [order] is not a permutation of
    [0 .. count-1], or the snapshot does not match the fault list. *)

val coverage : Fault_list.t -> result -> float
(** Fraction of faults detected, over faults not proven untestable. *)

val run_n_detect :
  ?config:config -> n:int -> Fault_list.t -> order:int array -> result
(** n-detect generation: keep targeting faults until each is detected
    by [n] {e distinct} tests (or its test generation fails).  The
    result's [detected_by] holds first detections; tests added by later
    passes only raise multiplicity.  n-detect sets drive the
    n-detection ADI estimate and are standard practice for defect
    coverage beyond the stuck-at model.  Honours the config's time
    budgets (stopping with [interrupted] on run-budget expiry) but
    performs no abort-retry escalation and offers no checkpointing. *)

val run_compacting :
  ?config:config -> ?secondary_limit:int -> Fault_list.t -> order:int array -> result
(** The engine with classic {e dynamic compaction} (the paper's
    reference [1]): after each primary test cube, up to
    [secondary_limit] (default 50) further undetected faults are
    targeted under the cube's assignments, merging every success into
    the vector before random fill.  This is the costly alternative the
    ADI ordering competes with; ablation A8 compares them.  Budget
    handling as {!run_n_detect}; no escalation or checkpointing. *)

val fill_cube : Util.Rng.t -> Ternary.t array -> bool array
(** Replace don't-cares with random values. *)
