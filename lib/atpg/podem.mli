(** PODEM test generation (Goel 1981).

    PODEM searches the primary-input space only: it repeatedly picks an
    {e objective} (activate the fault, then propagate its effect
    through the D-frontier), {e backtraces} the objective to an
    unassigned PI using SCOAP costs, assigns it, and forward-implies in
    the five-valued D-calculus.  Exhausting both values of every
    decision PI proves untestability; a backtrack limit bounds the
    search on hard faults.

    The generator produces a {e test cube}: PI values in
    {!Ternary.t}, with X for inputs the search never needed. *)

type outcome =
  | Test of Ternary.t array  (** PI cube (in PI declaration order) detecting the fault *)
  | Untestable  (** proven redundant: search space exhausted *)
  | Aborted  (** backtrack limit hit *)
  | Out_of_budget  (** wall-clock deadline hit before a verdict *)

exception Budget_exhausted
(** Internal signal for an expired deadline; search entry points catch
    it and return {!Out_of_budget}.  Exposed so sibling generators
    (the D-algorithm) can share the same protocol. *)

type stats = {
  mutable backtracks : int;
  mutable decisions : int;
  mutable implications : int;
}

type context
(** Reusable search state for one circuit (value slab, scheduling
    buckets, X-path scratch).  Create once, generate for many faults. *)

val context : ?stats:stats -> Circuit.t -> Scoap.t -> context

val generate_in :
  ?backtrack_limit:int ->
  ?deadline:Util.Budget.t ->
  ?fixed:Ternary.t array ->
  context ->
  Fault.t ->
  outcome
(** Run the search in a reused context.  The default [backtrack_limit]
    is 256.

    [deadline] bounds the search by wall clock as well: it is polled at
    every decision point, and an expired deadline yields
    [Out_of_budget] — distinct from [Aborted] (backtrack-limit hit) so
    callers can tell "ran out of patience" from "ran out of time".

    [fixed] constrains primary inputs (PI order, [X] = free): the
    search starts from those assignments and never retracts them — the
    mechanism behind dynamic compaction's secondary targets, where a
    new fault must be detected without disturbing the vector built so
    far.  [Untestable] then means "untestable under the constraint". *)

val generate :
  ?backtrack_limit:int ->
  ?deadline:Util.Budget.t ->
  ?stats:stats ->
  Circuit.t ->
  Scoap.t ->
  Fault.t ->
  outcome
(** One-shot convenience: [generate_in (context c scoap) f].  The
    circuit must be combinational.  Cubes returned are validated by
    construction: the five-valued simulation places a D/D' on a primary
    output. *)

val fresh_stats : unit -> stats

val copy_stats : stats -> stats
(** A detached snapshot of the mutable counters. *)

val add_stats : into:stats -> stats -> unit
(** Accumulate [d] into [into] field-wise — committing one search
    lane's effort into the run totals. *)

val diff_stats : stats -> stats -> stats
(** [diff_stats after before]: the per-search delta of a lane's
    private counters, suitable for {!add_stats}. *)
