(* Roth's D-algorithm.  Values are five-valued and only ever refine
   (X -> 0/1/D/D'); a trail records assignments so backtracking is an
   undo.  Decisions: propagate the D-frontier (assign side inputs) or
   justify a J-frontier gate (assign one input).  Justification may
   assign error values (D/D') to lines inside the fault's fanout cone —
   the "error cube" cases (e.g. XOR(D, D') = 1) that pure binary
   enumeration would miss. *)

exception Conflict
exception Abort

type state = {
  c : Circuit.t;
  scoap : Scoap.t;
  mutable fault : Fault.t;
  stats : Podem.stats;
  values : Five.t array;
  in_cone : bool array;  (* transitive fanout of the fault site *)
  mutable cone : int array;  (* the set entries of [in_cone], for reset *)
  mutable limit : int;
  mutable deadline : Util.Budget.t;
  mutable trail : (int * Five.t) list;
  mutable queue : int list;  (* nodes to (re)examine *)
}

type context = state

let stuck_ternary st = Ternary.of_bool st.fault.Fault.stuck_at

let pin_value st g p =
  let v = st.values.((Circuit.fanins st.c g).(p)) in
  match st.fault.Fault.site with
  | Fault.Branch { gate; pin } when gate = g && pin = p ->
      Five.of_pair (Five.good v, stuck_ternary st)
  | _ -> v

let eval_node st n =
  let raw =
    match Circuit.kind st.c n with
    | Gate.Input -> st.values.(n)
    | k ->
        let fanins = Circuit.fanins st.c n in
        Five.eval_array k (Array.init (Array.length fanins) (pin_value st n))
  in
  match st.fault.Fault.site with
  | Fault.Stem s when s = n -> Five.of_pair (Five.good raw, stuck_ternary st)
  | _ -> raw

let enqueue st n = st.queue <- n :: st.queue

let assign st n v =
  match st.values.(n) with
  | Five.X ->
      st.trail <- (n, Five.X) :: st.trail;
      st.values.(n) <- v;
      st.stats.Podem.implications <- st.stats.Podem.implications + 1;
      Array.iter (enqueue st) (Circuit.fanouts st.c n);
      enqueue st n
  | cur -> if not (Five.equal cur v) then raise Conflict

(* Backward implications for a gate whose output is assigned but whose
   forward evaluation is still X.  Only applies the forced cases; free
   choices go to the J-frontier. *)
let imply_backward st n =
  (* At the fault-site stem the faulty part of the output comes from
     the fault, not the inputs: implications target the good machine
     only.  Elsewhere the recorded value is authoritative. *)
  let v =
    match st.fault.Fault.site with
    | Fault.Stem s when s = n -> (
        match Five.good st.values.(n) with
        | Ternary.One -> Five.One
        | Ternary.Zero -> Five.Zero
        | Ternary.X -> Five.X)
    | _ -> st.values.(n)
  in
  let fanins = Circuit.fanins st.c n in
  let k = Circuit.kind st.c n in
  let x_pins = ref [] and assigned = ref [] in
  Array.iteri
    (fun p _ ->
      match pin_value st n p with
      | Five.X -> x_pins := p :: !x_pins
      | pv -> assigned := pv :: !assigned)
    fanins;
  let x_pins = List.rev !x_pins in
  let all_binary_assigned pred = List.for_all pred !assigned in
  let force p fv =
    (* Assigning through a faulted pin is meaningless; the driver
       carries the good value instead (handled at activation).  Error
       values cannot exist outside the fault cone. *)
    match st.fault.Fault.site with
    | Fault.Branch { gate; pin } when gate = n && pin = p -> ()
    | _ ->
        if Five.is_error fv && not st.in_cone.(fanins.(p)) then raise Conflict;
        assign st fanins.(p) fv
  in
  match k with
  | Gate.Buf | Gate.Dff -> force 0 v
  | Gate.Not -> force 0 (Five.inv v)
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> (
      let controlling =
        match Gate.controlling_value k with Some c0 -> c0 | None -> assert false
      in
      let core_v = if Gate.inverting k then Five.inv v else v in
      let non_ctrl = if controlling then Five.Zero else Five.One in
      let ctrl = if controlling then Five.One else Five.Zero in
      match core_v with
      | v' when Five.equal v' non_ctrl ->
          (* AND core output 1 / OR core output 0: every input forced
             to the non-controlling value. *)
          List.iter (fun p -> force p non_ctrl) x_pins
      | v' when Five.equal v' ctrl ->
          (* Forced only when a single X pin remains and the others
             cannot produce the controlling side. *)
          if
            List.length x_pins = 1
            && all_binary_assigned (fun pv -> Five.equal pv non_ctrl)
          then force (List.hd x_pins) ctrl
      | _ -> () (* D/D' outputs justify through forward refinement *))
  | Gate.Xor | Gate.Xnor ->
      if List.length x_pins = 1 && all_binary_assigned (fun pv -> not (Five.is_error pv))
      then begin
        (* Parity with binary knowns: the last X pin is forced. *)
        let parity =
          List.fold_left
            (fun acc pv -> if Five.equal pv Five.One then not acc else acc)
            (Gate.inverting k) !assigned
        in
        match v with
        | Five.Zero -> force (List.hd x_pins) (if parity then Five.One else Five.Zero)
        | Five.One -> force (List.hd x_pins) (if parity then Five.Zero else Five.One)
        | _ -> ()
      end
  | Gate.Input | Gate.Const0 | Gate.Const1 -> ()

let imply st =
  let rec drain () =
    match st.queue with
    | [] -> ()
    | n :: rest ->
        st.queue <- rest;
        (match Circuit.kind st.c n with
        | Gate.Input -> ()
        | _ -> (
            let computed = eval_node st n in
            match (computed, st.values.(n)) with
            | Five.X, Five.X -> ()
            | Five.X, _ -> imply_backward st n
            | cv, Five.X -> assign st n cv
            | cv, v -> if not (Five.equal cv v) then raise Conflict));
        drain ()
  in
  drain ()

let error_at_po st = Array.exists (fun o -> Five.is_error st.values.(o)) (Circuit.outputs st.c)

(* Gates assigned but not yet justified (forward evaluation still X). *)
let unjustified st =
  let best = ref None in
  Circuit.iter_nodes st.c (fun n ->
      match Circuit.kind st.c n with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | _ ->
          if (not (Five.equal st.values.(n) Five.X)) && Five.equal (eval_node st n) Five.X
          then
            let cost = Scoap.co st.scoap n in
            match !best with
            | Some (c0, _) when c0 <= cost -> ()
            | _ -> best := Some (cost, n));
  Option.map snd !best

(* X-path marks, as in PODEM. *)
let xpath_marks st =
  let n = Circuit.node_count st.c in
  let mark = Array.make n false in
  let topo = Circuit.topological_order st.c in
  for idx = n - 1 downto 0 do
    let g = topo.(idx) in
    if Five.equal st.values.(g) Five.X then
      if Circuit.is_output st.c g || Array.exists (fun s -> mark.(s)) (Circuit.fanouts st.c g)
      then mark.(g) <- true
  done;
  mark

let frontier_gates st =
  let mark = xpath_marks st in
  let acc = ref [] in
  Circuit.iter_nodes st.c (fun g ->
      if Five.equal st.values.(g) Five.X && mark.(g) then begin
        let fanins = Circuit.fanins st.c g in
        let rec has_err p =
          p < Array.length fanins && (Five.is_error (pin_value st g p) || has_err (p + 1))
        in
        if Array.length fanins > 0 && has_err 0 then acc := g :: !acc
      end);
  List.sort (fun a b -> compare (Scoap.co st.scoap a) (Scoap.co st.scoap b)) !acc

let undo_to st mark =
  while st.trail != mark do
    match st.trail with
    | (n, v) :: rest ->
        st.values.(n) <- v;
        st.trail <- rest
    | [] -> assert false
  done;
  st.queue <- []

(* Candidate values for a free line during justification: binary
   always; error values only inside the fault cone (where they can
   exist), enabling cubes like XOR(D, D') = 1 and AND(D, D') = 0. *)
let candidate_values st node =
  if st.in_cone.(node) then [ Five.Zero; Five.One; Five.D; Five.Dbar ]
  else [ Five.Zero; Five.One ]

let rec search st =
  match (try imply st; true with Conflict -> false) with
  | false -> false
  | true ->
      if error_at_po st then
        match unjustified st with
        | None -> true
        | Some g -> justify st g
      else begin
        match frontier_gates st with
        | [] -> false
        | gates -> try_frontiers st gates
      end

and branch st alternatives =
  let mark = st.trail in
  let rec go = function
    | [] -> false
    | apply :: rest ->
        if Util.Budget.expired st.deadline then raise Podem.Budget_exhausted;
        st.stats.Podem.decisions <- st.stats.Podem.decisions + 1;
        let ok = (try apply (); true with Conflict -> false) && search st in
        if ok then true
        else begin
          undo_to st mark;
          st.stats.Podem.backtracks <- st.stats.Podem.backtracks + 1;
          if st.stats.Podem.backtracks > st.limit then raise Abort;
          go rest
        end
  in
  go alternatives

and try_frontiers st gates =
  (* Each frontier gate is an alternative propagation path; for each,
     drive the side inputs to non-controlling values (both parity
     polarities for XOR). *)
  let alts =
    List.concat_map
      (fun g ->
        let fanins = Circuit.fanins st.c g in
        let x_drivers = ref [] in
        Array.iteri
          (fun p _ -> if Five.equal (pin_value st g p) Five.X then x_drivers := fanins.(p) :: !x_drivers)
          fanins;
        let x_drivers = List.sort_uniq compare !x_drivers in
        match Circuit.kind st.c g with
        | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
            let nc =
              match Gate.controlling_value (Circuit.kind st.c g) with
              | Some cv -> if cv then Five.Zero else Five.One
              | None -> assert false
            in
            [ (fun () -> List.iter (fun d -> assign st d nc) x_drivers) ]
        | Gate.Xor | Gate.Xnor ->
            [
              (fun () -> List.iter (fun d -> assign st d Five.Zero) x_drivers);
              (fun () -> List.iter (fun d -> assign st d Five.One) x_drivers);
            ]
        | _ -> [])
      gates
  in
  branch st alts

and justify st g =
  let v =
    (* The fault-site stem's faulty part is forced by the transform;
       justification targets the good machine only. *)
    match st.fault.Fault.site with
    | Fault.Stem s when s = g -> (
        match Five.good st.values.(g) with
        | Ternary.One -> Five.One
        | Ternary.Zero -> Five.Zero
        | Ternary.X -> Five.X)
    | _ -> st.values.(g)
  in
  let fanins = Circuit.fanins st.c g in
  let x_drivers = ref [] in
  Array.iteri
    (fun p _ ->
      (match st.fault.Fault.site with
      | Fault.Branch { gate; pin } when gate = g && pin = p -> ()
      | _ ->
          if Five.equal (pin_value st g p) Five.X && not (List.mem fanins.(p) !x_drivers)
          then x_drivers := fanins.(p) :: !x_drivers))
    fanins;
  let x_drivers = List.rev !x_drivers in
  match x_drivers with
  | [] -> false (* assigned output, no freedom, still unjustified *)
  | _ ->
      let alts =
        match Circuit.kind st.c g with
        | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
            let controlling =
              match Gate.controlling_value (Circuit.kind st.c g) with
              | Some c0 -> c0
              | None -> assert false
            in
            let core_v = if Gate.inverting (Circuit.kind st.c g) then Five.inv v else v in
            let ctrl = if controlling then Five.One else Five.Zero in
            if Five.equal core_v ctrl then
              (* Controlling side: one input at the controlling value,
                 or an error pair inside the cone. *)
              List.concat_map
                (fun d ->
                  List.filter_map
                    (fun cv ->
                      match cv with
                      | v' when Five.equal v' ctrl -> Some (fun () -> assign st d v')
                      | Five.D | Five.Dbar when st.in_cone.(d) ->
                          Some (fun () -> assign st d cv)
                      | _ -> None)
                    (candidate_values st d))
                x_drivers
            else
              (* Non-controlling side is forced — implication should
                 have consumed it; offering it as a single alternative
                 keeps the search sound if reached. *)
              [
                (fun () ->
                  List.iter
                    (fun d -> assign st d (if controlling then Five.Zero else Five.One))
                    x_drivers);
              ]
        | Gate.Xor | Gate.Xnor | Gate.Buf | Gate.Not | Gate.Dff ->
            (* Enumerate values for the first free driver; implication
               narrows the rest and recursion revisits the gate. *)
            let d = List.hd x_drivers in
            List.map (fun cv () -> assign st d cv) (candidate_values st d)
        | Gate.Input | Gate.Const0 | Gate.Const1 -> []
      in
      branch st alts

let has_wide_parity c =
  let wide = ref false in
  Circuit.iter_nodes c (fun n ->
      match Circuit.kind c n with
      | Gate.Xor | Gate.Xnor -> if Array.length (Circuit.fanins c n) > 2 then wide := true
      | _ -> ());
  !wide

let context ?stats c scoap =
  if Circuit.has_state c then invalid_arg "Dalg.context: circuit must be combinational";
  let stats = match stats with Some s -> s | None -> Podem.fresh_stats () in
  let n = Circuit.node_count c in
  {
    c;
    scoap;
    fault = Fault.stem 0 false;
    stats;
    values = Array.make n Five.X;
    in_cone = Array.make n false;
    cone = [||];
    limit = 256;
    deadline = Util.Budget.unlimited;
    trail = [];
    queue = [];
  }

let generate_in ?(backtrack_limit = 256) ?(deadline = Util.Budget.unlimited) st fault =
  (* Reset from the previous search: the trail records every value ever
     assigned, so unwinding it restores the all-X slab, and the cone
     list undoes exactly the [in_cone] marks that were set. *)
  undo_to st [];
  Array.iter (fun m -> st.in_cone.(m) <- false) st.cone;
  st.fault <- fault;
  (* The limit bounds THIS search: stats accumulate across a context's
     searches, so the comparison baseline is the count at entry. *)
  st.limit <- st.stats.Podem.backtracks + backtrack_limit;
  st.deadline <- deadline;
  let site = Fault.site_node fault in
  let cone = Array.append [| site |] (Circuit.transitive_fanout st.c site) in
  Array.iter (fun m -> st.in_cone.(m) <- true) cone;
  st.cone <- cone;
  let c = st.c in
  (* Constants; the fault-site stem is left to the transform so a
     detectable opposite-polarity fault on a constant reads D/D'. *)
  let stem_site = match fault.Fault.site with Fault.Stem s -> s | Fault.Branch _ -> -1 in
  Circuit.iter_nodes c (fun i ->
      match Circuit.kind c i with
      | (Gate.Const0 | Gate.Const1) when i = stem_site -> enqueue st i
      | Gate.Const0 -> assign st i Five.Zero
      | Gate.Const1 -> assign st i Five.One
      | _ -> ());
  (* Activate the fault. *)
  let outcome =
    try
      (match fault.Fault.site with
      | Fault.Stem s ->
          assign st s (if fault.Fault.stuck_at then Five.Dbar else Five.D)
      | Fault.Branch { gate; pin } ->
          (* The driver must carry the opposite of the stuck value; the
             faulted pin then reads D/D' via the pin transform. *)
          let d = (Circuit.fanins c gate).(pin) in
          assign st d (if fault.Fault.stuck_at then Five.Zero else Five.One);
          enqueue st gate);
      if search st then begin
        let cube = Array.map (fun pi -> Five.good st.values.(pi)) (Circuit.inputs c) in
        Podem.Test cube
      end
      else if has_wide_parity c then Podem.Aborted
      else Podem.Untestable
    with
    | Abort -> Podem.Aborted
    | Podem.Budget_exhausted -> Podem.Out_of_budget
    | Conflict -> if has_wide_parity c then Podem.Aborted else Podem.Untestable
  in
  outcome

let generate ?backtrack_limit ?deadline ?stats c scoap fault =
  generate_in ?backtrack_limit ?deadline (context ?stats c scoap) fault
