(** Roth's D-algorithm — the classic alternative to PODEM.

    Where PODEM decides only at primary inputs, the D-algorithm makes
    decisions at internal gates: it drives the D-frontier forward by
    assigning non-controlling side inputs, and keeps a J-frontier of
    gates whose required output is not yet justified by their inputs,
    justifying them by choosing controlling-input assignments.  Values
    never change once assigned (X only refines to 0/1/D/D'), so
    backtracking is a trail-based undo.

    Provided as an independent engine for cross-validation: both
    generators must agree on testability (property-tested), and the
    ablation bench compares their search effort.

    Completeness caveat: propagation through parity gates with more
    than two inputs enumerates only the all-zero and all-one side
    assignments, so on circuits containing such gates an exhausted
    search is reported as {!Podem.Aborted} rather than
    {!Podem.Untestable}. *)

type context
(** Reusable search state for one circuit (value slab, cone marks,
    trail).  Create once, generate for many faults — the reset between
    searches is proportional to the previous search's footprint, not
    the circuit size. *)

val context : ?stats:Podem.stats -> Circuit.t -> Scoap.t -> context
(** @raise Invalid_argument if the circuit is sequential. *)

val generate_in :
  ?backtrack_limit:int ->
  ?deadline:Util.Budget.t ->
  context ->
  Fault.t ->
  Podem.outcome
(** Run the search in a reused context — same contract as
    {!Podem.generate_in} minus [fixed] (the D-algorithm decides at
    internal gates, so PI constraints are PODEM's mechanism). *)

val generate :
  ?backtrack_limit:int ->
  ?deadline:Util.Budget.t ->
  ?stats:Podem.stats ->
  Circuit.t ->
  Scoap.t ->
  Fault.t ->
  Podem.outcome
(** One-shot convenience: [generate_in (context c scoap) f] — same
    contract as {!Podem.generate} (default [backtrack_limit] 256,
    unlimited [deadline]): a returned cube detects the fault for every
    fill; the circuit must be combinational. *)
