(** Static test-set reordering for steep fault-coverage curves.

    The paper contrasts its a-priori ADI ordering with the a-posteriori
    method of Lin et al. (ITC 2001, reference [7]): simulate the
    finished test set without dropping, then order the tests greedily
    so each position detects the most faults no earlier test detects.
    This module implements that baseline so the two approaches can be
    compared (ablation A5). *)

val greedy : ?jobs:int -> Fault_list.t -> Patterns.t -> int array
(** Permutation of test positions: position 0 holds the test with the
    largest detection count, and each subsequent position the test
    covering the most not-yet-detected faults.  Ties break to the
    earlier original position.  [jobs] (default 1) sizes the
    fault-simulation domain pool; the permutation is identical for any
    value. *)

val apply : Patterns.t -> int array -> Patterns.t
(** Rebuild the test set in the permuted order. *)
