module Bitvec = Util.Bitvec
module Parallel = Util.Parallel

type result = { kept : int array; tests : Patterns.t }

let set_cover ?(jobs = 1) fl pats =
  let c = Fault_list.circuit fl in
  let n_inputs = Array.length (Circuit.inputs c) in
  if Patterns.n_inputs pats <> n_inputs then
    invalid_arg "Compact.set_cover: pattern width mismatch";
  let n_tests = Patterns.count pats in
  let dsets = Faultsim.detection_sets ~jobs fl pats in
  let nf = Fault_list.count fl in
  (* Transpose to per-test fault sets. *)
  let per_test = Array.init n_tests (fun _ -> Bitvec.create nf) in
  Array.iteri (fun fi d -> Bitvec.iter_set d (fun t -> Bitvec.set per_test.(t) fi true)) dsets;
  let remaining = Array.map Bitvec.copy per_test in
  let used = Array.make n_tests false in
  let kept = ref [] in
  let rec loop () =
    let best = ref (-1) and best_cnt = ref 0 in
    for t = 0 to n_tests - 1 do
      if not used.(t) then begin
        let cnt = Bitvec.popcount remaining.(t) in
        if cnt > !best_cnt then begin
          best := t;
          best_cnt := cnt
        end
      end
    done;
    if !best >= 0 && !best_cnt > 0 then begin
      used.(!best) <- true;
      kept := !best :: !kept;
      for t = 0 to n_tests - 1 do
        if not used.(t) then Bitvec.diff_into ~dst:remaining.(t) per_test.(!best)
      done;
      loop ()
    end
  in
  loop ();
  let kept = Array.of_list (List.sort compare !kept) in
  let rows = Array.map (fun t -> Patterns.vector pats t) kept in
  { kept; tests = Patterns.of_vectors ~n_inputs rows }

let reverse_order ?(jobs = 1) fl pats =
  let c = Fault_list.circuit fl in
  let n_inputs = Array.length (Circuit.inputs c) in
  if Patterns.n_inputs pats <> n_inputs then
    invalid_arg "Compact.reverse_order: pattern width mismatch";
  let nf = Fault_list.count fl in
  let jobs = max 1 jobs in
  let wss = Array.init jobs (fun _ -> Faultsim.workspace c) in
  let pool = if jobs > 1 then Some (Parallel.create ~jobs ()) else None in
  Fun.protect ~finally:(fun () -> Option.iter Parallel.shutdown pool) @@ fun () ->
  let good = Faultsim.good_arena wss.(0) in
  let detected = Array.make nf false in
  let hit = Array.make nf false in
  (* Fill [hit] for the live faults — each lane writes a static slice,
     so the serial merge below sees the serial loop's exact data. *)
  let scan () =
    match pool with
    | None ->
        for fi = 0 to nf - 1 do
          if not detected.(fi) then
            hit.(fi) <-
              Int64.logand (Faultsim.detect_block wss.(0) ~good (Fault_list.get fl fi)) 1L = 1L
        done
    | Some p ->
        let k = min (Parallel.jobs p) (max nf 1) in
        Parallel.run p
          (Array.init k (fun lane ->
               fun () ->
                let ws = wss.(lane) in
                for fi = lane * nf / k to ((lane + 1) * nf / k) - 1 do
                  if not detected.(fi) then
                    hit.(fi) <-
                      Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L
                      = 1L
                done))
  in
  let kept = ref [] in
  for t = Patterns.count pats - 1 downto 0 do
    let vec = Patterns.vector pats t in
    let single = Patterns.of_vectors ~n_inputs [| vec |] in
    Faultsim.load_good wss.(0) good single 0;
    scan ();
    let useful = ref false in
    for fi = 0 to nf - 1 do
      if (not detected.(fi)) && hit.(fi) then begin
        detected.(fi) <- true;
        useful := true
      end
    done;
    if !useful then kept := t :: !kept
  done;
  let kept = Array.of_list !kept in
  let rows = Array.map (fun t -> Patterns.vector pats t) kept in
  { kept; tests = Patterns.of_vectors ~n_inputs rows }
