module Rng = Util.Rng

type fault = { node : int; rising : bool }

let all_faults c =
  let acc = ref [] in
  for n = Circuit.node_count c - 1 downto 0 do
    acc := { node = n; rising = true } :: { node = n; rising = false } :: !acc
  done;
  (* Built backwards: restore node-major, rise-first order. *)
  let arr = Array.of_list !acc in
  Array.sort (fun a b ->
      if a.node <> b.node then compare a.node b.node else compare b.rising a.rising)
    arr;
  arr

(* Under v2, a slow-to-rise node behaves stuck at its initial 0 (a
   slow-to-fall at its initial 1): stuck polarity = not rising. *)
let detects c f ~v1 ~v2 =
  let initial = (Goodsim.eval_scalar c v1).(f.node) in
  initial = not f.rising && Faultsim.detects c (Fault.stem f.node (not f.rising)) v2

type outcome = Pair of bool array * bool array | Untestable | Aborted

let find_initialiser ?(attempts = 512) rng c f =
  (* v1 only needs node = initial value; try the opposite stuck-at cube
     first (its excitation forces exactly that), then random search. *)
  let want = not f.rising in
  let scoap = Scoap.compute c in
  let from_cube () =
    match Podem.generate c scoap (Fault.stem f.node (not want)) with
    | Podem.Test cube -> Some (Engine.fill_cube rng cube)
    | Podem.Untestable | Podem.Aborted | Podem.Out_of_budget -> None
  in
  let n_inputs = Array.length (Circuit.inputs c) in
  let rec random k =
    if k = 0 then None
    else begin
      let v = Array.init n_inputs (fun _ -> Rng.bool rng) in
      if (Goodsim.eval_scalar c v).(f.node) = want then Some v else random (k - 1)
    end
  in
  match from_cube () with
  | Some v when (Goodsim.eval_scalar c v).(f.node) = want -> Some v
  | _ -> random attempts

let generate ?(backtrack_limit = 256) ?(seed = 0xDE1A) c scoap f =
  let rng = Rng.create seed in
  match Podem.generate ~backtrack_limit c scoap (Fault.stem f.node (not f.rising)) with
  | Podem.Untestable -> Untestable
  | Podem.Aborted | Podem.Out_of_budget -> Aborted
  | Podem.Test cube -> (
      let v2 = Engine.fill_cube rng cube in
      match find_initialiser rng c f with
      | Some v1 -> Pair (v1, v2)
      | None -> Untestable)

type result = {
  pairs : (bool array * bool array) array;
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
}

let run ?(backtrack_limit = 256) ?(seed = 0xDE1A) c =
  if Circuit.has_state c then invalid_arg "Transition.run: circuit must be combinational";
  let scoap = Scoap.compute c in
  let faults = all_faults c in
  let total = Array.length faults in
  let caught = Array.make total false in
  let pairs = ref [] in
  let detected = ref 0 and untestable = ref 0 and aborted = ref 0 in
  let drop v1 v2 =
    Array.iteri
      (fun i f ->
        if (not caught.(i)) && detects c f ~v1 ~v2 then begin
          caught.(i) <- true;
          incr detected
        end)
      faults
  in
  Array.iteri
    (fun i f ->
      if not caught.(i) then
        match generate ~backtrack_limit ~seed:(seed + i) c scoap f with
        | Untestable -> incr untestable
        | Aborted -> incr aborted
        | Pair (v1, v2) ->
            pairs := (v1, v2) :: !pairs;
            drop v1 v2)
    faults;
  {
    pairs = Array.of_list (List.rev !pairs);
    detected = !detected;
    untestable = !untestable;
    aborted = !aborted;
    total;
  }

let coverage r =
  let target = r.total - r.untestable in
  if target <= 0 then 1.0 else float_of_int r.detected /. float_of_int target
