module Rng = Util.Rng
module Budget = Util.Budget
module Parallel = Util.Parallel
module Trace = Util.Trace
module Metrics = Util.Metrics

type generator = Podem_gen | Dalg_gen

type config = {
  backtrack_limit : int;
  seed : int;
  generator : generator;
  retries : int;
  time_budget_s : float option;
  per_fault_budget_s : float option;
  jobs : int;
  window : int;
}

let default_config =
  {
    backtrack_limit = 256;
    seed = 0xAD1;
    generator = Podem_gen;
    retries = 1;
    time_budget_s = None;
    per_fault_budget_s = None;
    jobs = 1;
    window = 1;
  }

(* Per-run parallel resources, shared by every entry point: one
   fault-simulation workspace per lane, and a pool only when more than
   one lane can actually run. *)
let scan_resources ~observed c ~jobs =
  let wss = Array.init jobs (fun _ -> Faultsim.workspace c) in
  let pool = if jobs > 1 then Some (Parallel.create ~jobs ~track:observed ()) else None in
  (wss, pool)

(* Per-test fault scan: [visit lane ws fi] must touch only fault [fi]'s
   cells and lane-private storage, so static fault slices over private
   workspaces reproduce the serial scan exactly. *)
let fault_scan pool wss nf visit =
  match pool with
  | None -> for fi = 0 to nf - 1 do visit 0 wss.(0) fi done
  | Some p ->
      let k = min (Parallel.jobs p) (max nf 1) in
      Parallel.run p
        (Array.init k (fun lane ->
             fun () ->
              let ws = wss.(lane) in
              for fi = lane * nf / k to ((lane + 1) * nf / k) - 1 do
                visit lane ws fi
              done))

type snapshot = {
  snap_pass : int;
  snap_schedule : int array;
  snap_pos : int;
  snap_limit : int;
  snap_retry_rev : int list;
  snap_ever_retried : bool array;
  snap_detected_by : int array;
  snap_tests_rev : bool array list;
  snap_targeted_rev : int list;
  snap_untestable_rev : int list;
  snap_out_of_budget_rev : int list;
  snap_n_tests : int;
  snap_rng_state : int64;
  snap_decisions : int;
  snap_backtracks : int;
  snap_implications : int;
}

(* Leader-side end-of-run metrics: the search statistics that are
   otherwise trapped inside [result].  Counters accumulate, so several
   runs under one tracer (the bench driver) sum up. *)
let publish_result tr pool wss (stats : Podem.stats) ~tests ~untestable ~aborted
    ~out_of_budget ~retry_recovered =
  if Trace.enabled tr then begin
    Metrics.add (Trace.counter tr "podem.decisions") stats.Podem.decisions;
    Metrics.add (Trace.counter tr "podem.backtracks") stats.Podem.backtracks;
    Metrics.add (Trace.counter tr "podem.implications") stats.Podem.implications;
    Metrics.add (Trace.counter tr "engine.tests") tests;
    Metrics.add (Trace.counter tr "engine.untestable") untestable;
    Metrics.add (Trace.counter tr "engine.aborted") aborted;
    Metrics.add (Trace.counter tr "engine.out_of_budget") out_of_budget;
    Metrics.add (Trace.counter tr "engine.retry_recovered") retry_recovered;
    Faultsim.publish_stats tr wss;
    match pool with
    | Some p ->
        let h = Trace.histogram tr "parallel.lane_busy_s" in
        Array.iter (fun b -> Metrics.observe h b) (Parallel.lane_busy_s p)
    | None -> ()
  end

type result = {
  tests : Patterns.t;
  detected_by : int array;
  targeted : int array;
  untestable : int list;
  aborted : int list;
  out_of_budget : int list;
  retry_recovered : int;
  interrupted : bool;
  snapshot : snapshot option;
  stats : Podem.stats;
  runtime_s : float;
  spec_dispatched : int;
  spec_committed : int;
  spec_wasted : int;
}

let fill_cube rng cube =
  Array.map
    (function Ternary.Zero -> false | Ternary.One -> true | Ternary.X -> Rng.bool rng)
    cube

let check_order n order =
  if Array.length order <> n then invalid_arg "Engine.run: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg "Engine.run: order is not a permutation";
      seen.(i) <- true)
    order

let run ?(config = default_config) ?resume ?checkpoint_every ?on_checkpoint
    ?(should_stop = fun () -> false) fl ~order =
  if config.retries < 0 then invalid_arg "Engine.run: retries must be non-negative";
  if config.window < 1 then invalid_arg "Engine.run: window must be at least 1";
  let c = Fault_list.circuit fl in
  let nf = Fault_list.count fl in
  check_order nf order;
  let t0 = Unix.gettimeofday () in
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  let scoap = Scoap.compute c in
  let jobs = max 1 config.jobs in
  let wss, pool = scan_resources ~observed c ~jobs in
  Fun.protect ~finally:(fun () -> Option.iter Parallel.shutdown pool) @@ fun () ->
  let stats = Podem.fresh_stats () in
  let ctx = Podem.context ~stats c scoap in
  let run_budget = Budget.of_seconds_opt config.time_budget_s in
  (* Mutable run state, either fresh or rebuilt from a checkpoint
     snapshot.  Everything needed to continue deterministically lives
     here: pass structure, partial classifications, and the RNG. *)
  let pass = ref 0 in
  let schedule = ref order in
  let pos = ref 0 in
  let limit = ref config.backtrack_limit in
  let retry_rev = ref [] in
  let ever_retried = Array.make nf false in
  let detected_by = Array.make nf (-1) in
  let tests_rev = ref [] in
  let targeted_rev = ref [] in
  let untestable_rev = ref [] in
  let out_of_budget_rev = ref [] in
  let n_tests = ref 0 in
  let rng =
    match resume with
    | None -> Rng.create config.seed
    | Some s ->
        if Array.length s.snap_detected_by <> nf || Array.length s.snap_ever_retried <> nf
        then invalid_arg "Engine.run: snapshot does not match the fault list";
        pass := s.snap_pass;
        schedule := Array.copy s.snap_schedule;
        pos := s.snap_pos;
        limit := s.snap_limit;
        retry_rev := s.snap_retry_rev;
        Array.blit s.snap_ever_retried 0 ever_retried 0 nf;
        Array.blit s.snap_detected_by 0 detected_by 0 nf;
        tests_rev := s.snap_tests_rev;
        targeted_rev := s.snap_targeted_rev;
        untestable_rev := s.snap_untestable_rev;
        out_of_budget_rev := s.snap_out_of_budget_rev;
        n_tests := s.snap_n_tests;
        stats.Podem.decisions <- s.snap_decisions;
        stats.Podem.backtracks <- s.snap_backtracks;
        stats.Podem.implications <- s.snap_implications;
        Rng.restore s.snap_rng_state
  in
  let snap () =
    {
      snap_pass = !pass;
      snap_schedule = Array.copy !schedule;
      snap_pos = !pos;
      snap_limit = !limit;
      snap_retry_rev = !retry_rev;
      snap_ever_retried = Array.copy ever_retried;
      snap_detected_by = Array.copy detected_by;
      snap_tests_rev = !tests_rev;
      snap_targeted_rev = !targeted_rev;
      snap_untestable_rev = !untestable_rev;
      snap_out_of_budget_rev = !out_of_budget_rev;
      snap_n_tests = !n_tests;
      snap_rng_state = Rng.state rng;
      snap_decisions = stats.Podem.decisions;
      snap_backtracks = stats.Podem.backtracks;
      snap_implications = stats.Podem.implications;
    }
  in
  let n_inputs = Array.length (Circuit.inputs c) in
  let good = Faultsim.good_arena wss.(0) in
  (* Observability handles; all dummies when tracing is off. *)
  let h_good = Trace.histogram tr "engine.goodsim_block_s" in
  let h_drops = Trace.histogram tr "engine.drops_per_test" in
  let h_gen_test = Trace.histogram tr "engine.gen_s.test" in
  let h_gen_unt = Trace.histogram tr "engine.gen_s.untestable" in
  let h_gen_abort = Trace.histogram tr "engine.gen_s.aborted" in
  let h_gen_oob = Trace.histogram tr "engine.gen_s.out_of_budget" in
  let c_budget = Trace.counter tr "engine.budget_expired" in
  let c_spec_refilled = Trace.counter tr "engine.spec.refilled" in
  let drop_counts = Array.make jobs 0 in
  let simulate_and_drop vec test_idx =
    let pats = Patterns.of_vectors ~n_inputs [| vec |] in
    Trace.time tr h_good (fun () -> Faultsim.load_good wss.(0) good pats 0);
    if observed then Array.fill drop_counts 0 jobs 0;
    fault_scan pool wss nf (fun lane ws fi ->
        if detected_by.(fi) < 0 then
          if Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L = 1L
          then begin
            detected_by.(fi) <- test_idx;
            if observed then drop_counts.(lane) <- drop_counts.(lane) + 1
          end);
    if observed then
      Metrics.observe h_drops (float_of_int (Array.fold_left ( + ) 0 drop_counts))
  in
  let interrupted = ref false in
  let since_checkpoint = ref 0 in
  let maybe_checkpoint () =
    match (checkpoint_every, on_checkpoint) with
    | Some every, Some save ->
        incr since_checkpoint;
        if !since_checkpoint >= every then begin
          since_checkpoint := 0;
          save (snap ())
        end
    | _ -> ()
  in
  let note_budget_expired () =
    interrupted := true;
    if observed then begin
      Metrics.incr c_budget;
      Trace.instant tr ~attrs:[ ("pass", Trace.Int !pass) ] "engine.budget_expired"
    end
  in
  (* Speculative lookahead: a sliding window of the next [window]
     not-yet-dropped faults is dispatched to the pool's executors; each
     lane searches in a private context (outcome and effort depend only
     on the fault and the pass backtrack limit), and the leader commits
     results in strict schedule order.  Cubes whose target was dropped
     by a test committed meanwhile are discarded as waste; the rest are
     random-filled from the run RNG {e at commit time}, so the RNG is
     consumed in exactly the serial order and every artifact of the run
     is byte-identical to [window = 1] for any [jobs]. *)
  let spec_dispatched = ref 0 and spec_committed = ref 0 and spec_wasted = ref 0 in
  let lane_search =
    match pool with
    | Some p when config.window > 1 ->
        let w = Parallel.Window.create p ~capacity:config.window in
        let n_exec = Parallel.Window.executors w in
        let lane_stats = Array.init n_exec (fun _ -> Podem.fresh_stats ()) in
        let gen =
          match config.generator with
          | Podem_gen ->
              let ctxs =
                Array.init n_exec (fun e -> Podem.context ~stats:lane_stats.(e) c scoap)
              in
              fun e ~backtrack_limit ~deadline f ->
                Podem.generate_in ~backtrack_limit ~deadline ctxs.(e) f
          | Dalg_gen ->
              let ctxs =
                Array.init n_exec (fun e -> Dalg.context ~stats:lane_stats.(e) c scoap)
              in
              fun e ~backtrack_limit ~deadline f ->
                Dalg.generate_in ~backtrack_limit ~deadline ctxs.(e) f
        in
        let search ~exec ~backtrack_limit ~deadline f =
          let s = lane_stats.(exec) in
          let s0 = Podem.copy_stats s in
          let t0 = if observed then Unix.gettimeofday () else 0.0 in
          let outcome = gen exec ~backtrack_limit ~deadline f in
          let dt = if observed then Unix.gettimeofday () -. t0 else 0.0 in
          (outcome, Podem.diff_stats s s0, dt)
        in
        Some (w, search)
    | _ -> None
  in
  (* Generate for one fault; returns false when the whole-run budget
     fired mid-search, in which case the fault stays pending and the
     partial search effort is rolled back so a resumed run reproduces
     the stats of an uninterrupted one. *)
  let process fi =
    if detected_by.(fi) >= 0 then true
    else begin
      let d0 = stats.Podem.decisions
      and b0 = stats.Podem.backtracks
      and i0 = stats.Podem.implications in
      let deadline = Budget.sub_opt run_budget config.per_fault_budget_s in
      let gen_t0 = if observed then Trace.now_s tr else 0.0 in
      let outcome =
        match config.generator with
        | Podem_gen ->
            Podem.generate_in ~backtrack_limit:!limit ~deadline ctx (Fault_list.get fl fi)
        | Dalg_gen ->
            Dalg.generate ~backtrack_limit:!limit ~deadline ~stats c scoap
              (Fault_list.get fl fi)
      in
      if observed then begin
        let dt = Trace.now_s tr -. gen_t0 in
        let h =
          match outcome with
          | Podem.Test _ -> h_gen_test
          | Podem.Untestable -> h_gen_unt
          | Podem.Aborted -> h_gen_abort
          | Podem.Out_of_budget -> h_gen_oob
        in
        Metrics.observe h dt
      end;
      match outcome with
      | Podem.Untestable ->
          untestable_rev := fi :: !untestable_rev;
          true
      | Podem.Aborted ->
          retry_rev := fi :: !retry_rev;
          true
      | Podem.Out_of_budget ->
          if Budget.expired run_budget then begin
            stats.Podem.decisions <- d0;
            stats.Podem.backtracks <- b0;
            stats.Podem.implications <- i0;
            false
          end
          else begin
            out_of_budget_rev := fi :: !out_of_budget_rev;
            true
          end
      | Podem.Test cube ->
          let vec = fill_cube rng cube in
          let idx = !n_tests in
          tests_rev := vec :: !tests_rev;
          targeted_rev := fi :: !targeted_rev;
          incr n_tests;
          simulate_and_drop vec idx;
          (* Five-valued D-propagation is pessimistic, so the cube
             detects the target for every fill of its don't-cares. *)
          assert (detected_by.(fi) = idx);
          true
    end
  in
  let run_pass_serial () =
    while !pos < Array.length !schedule && not !interrupted do
      if should_stop () then interrupted := true
      else if Budget.expired run_budget then note_budget_expired ()
      else if process !schedule.(!pos) then begin
        incr pos;
        maybe_checkpoint ()
      end
      else
        (* [process] saw the whole-run budget fire mid-search. *)
        note_budget_expired ()
    done
  in
  let run_pass_spec w search =
    let len = Array.length !schedule in
    (* Dispatch cursor and the faults with a ticket in flight, oldest
       first — a subsequence of the schedule, so the head either equals
       the commit position's fault or that fault was never dispatched. *)
    let dpos = ref !pos in
    let ticketed = Queue.create () in
    let refill () =
      if !dpos < len && Parallel.Window.in_flight w < config.window then begin
        Trace.span tr
          ~attrs:
            [ ("pos", Trace.Int !pos);
              ("in_flight", Trace.Int (Parallel.Window.in_flight w)) ]
          "engine.spec.refill"
          (fun () ->
            while !dpos < len && Parallel.Window.in_flight w < config.window do
              let fi = !schedule.(!dpos) in
              if detected_by.(fi) < 0 then begin
                let backtrack_limit = !limit in
                let deadline = Budget.sub_opt run_budget config.per_fault_budget_s in
                let fault = Fault_list.get fl fi in
                Parallel.Window.submit w (fun ~exec ->
                    search ~exec ~backtrack_limit ~deadline fault);
                Queue.push fi ticketed;
                incr spec_dispatched
              end;
              incr dpos
            done);
        if observed then Metrics.incr c_spec_refilled
      end
    in
    while !pos < len && not !interrupted do
      if should_stop () then interrupted := true
      else if Budget.expired run_budget then note_budget_expired ()
      else begin
        refill ();
        let fi = !schedule.(!pos) in
        if (not (Queue.is_empty ticketed)) && Queue.peek ticketed = fi then begin
          ignore (Queue.pop ticketed : int);
          let outcome, delta, dt = Parallel.Window.collect w in
          if detected_by.(fi) >= 0 then begin
            (* Dropped between dispatch and commit: the serial run never
               searched this fault, so the lane's effort is waste. *)
            incr spec_wasted;
            incr pos;
            maybe_checkpoint ()
          end
          else begin
            match outcome with
            | Podem.Out_of_budget when Budget.expired run_budget ->
                (* As in [process]: the fault stays pending and the
                   partial effort is discarded, so a resumed run
                   reproduces the stats of an uninterrupted one. *)
                note_budget_expired ()
            | outcome ->
                incr spec_committed;
                Podem.add_stats ~into:stats delta;
                if observed then
                  Metrics.observe
                    (match outcome with
                    | Podem.Test _ -> h_gen_test
                    | Podem.Untestable -> h_gen_unt
                    | Podem.Aborted -> h_gen_abort
                    | Podem.Out_of_budget -> h_gen_oob)
                    dt;
                (match outcome with
                | Podem.Untestable -> untestable_rev := fi :: !untestable_rev
                | Podem.Aborted -> retry_rev := fi :: !retry_rev
                | Podem.Out_of_budget -> out_of_budget_rev := fi :: !out_of_budget_rev
                | Podem.Test cube ->
                    (* Don't-cares fill here, at commit, so the RNG is
                       consumed in exactly the serial order. *)
                    let vec = fill_cube rng cube in
                    let idx = !n_tests in
                    tests_rev := vec :: !tests_rev;
                    targeted_rev := fi :: !targeted_rev;
                    incr n_tests;
                    simulate_and_drop vec idx;
                    assert (detected_by.(fi) = idx));
                incr pos;
                maybe_checkpoint ()
          end
        end
        else begin
          (* The fault was already dropped when the dispatch cursor
             passed it: nothing to collect. *)
          incr pos;
          maybe_checkpoint ()
        end
      end
    done;
    (* Abandon in-flight tickets (interrupt, or a retry pass about to
       rebuild the schedule). *)
    spec_wasted := !spec_wasted + Queue.length ticketed;
    Queue.clear ticketed;
    Parallel.Window.drain w
  in
  let rec passes () =
    Trace.span tr
      ~attrs:
        [ ("pass", Trace.Int !pass); ("limit", Trace.Int !limit);
          ("pending", Trace.Int (Array.length !schedule - !pos)) ]
      "engine.pass"
      (fun () ->
        match lane_search with
        | Some (w, search) -> run_pass_spec w search
        | None -> run_pass_serial ());
    if not !interrupted then begin
      let retry = List.rev !retry_rev in
      if retry <> [] && !pass < config.retries then begin
        (* Escalation: give every abort a second chance with twice the
           backtrack budget while wall-clock budget remains. *)
        List.iter (fun fi -> ever_retried.(fi) <- true) retry;
        incr pass;
        schedule := Array.of_list retry;
        retry_rev := [];
        pos := 0;
        limit := !limit * 2;
        passes ()
      end
    end
  in
  passes ();
  let aborted = List.rev !retry_rev in
  let in_final = Array.make nf false in
  List.iter (fun fi -> in_final.(fi) <- true) aborted;
  let retry_recovered = ref 0 in
  Array.iteri (fun fi r -> if r && not in_final.(fi) then incr retry_recovered) ever_retried;
  let tests_arr = Array.of_list (List.rev !tests_rev) in
  publish_result tr pool wss stats ~tests:!n_tests
    ~untestable:(List.length !untestable_rev) ~aborted:(List.length aborted)
    ~out_of_budget:(List.length !out_of_budget_rev) ~retry_recovered:!retry_recovered;
  if observed && !spec_dispatched > 0 then begin
    Metrics.add (Trace.counter tr "engine.spec.committed") !spec_committed;
    Metrics.add (Trace.counter tr "engine.spec.wasted") !spec_wasted
  end;
  {
    tests = Patterns.of_vectors ~n_inputs tests_arr;
    detected_by;
    targeted = Array.of_list (List.rev !targeted_rev);
    untestable = List.rev !untestable_rev;
    aborted;
    out_of_budget = List.rev !out_of_budget_rev;
    retry_recovered = !retry_recovered;
    interrupted = !interrupted;
    snapshot = (if !interrupted then Some (snap ()) else None);
    stats;
    runtime_s = Unix.gettimeofday () -. t0;
    spec_dispatched = !spec_dispatched;
    spec_committed = !spec_committed;
    spec_wasted = !spec_wasted;
  }

let run_n_detect ?(config = default_config) ~n fl ~order =
  if n <= 0 then invalid_arg "Engine.run_n_detect: n must be positive";
  let c = Fault_list.circuit fl in
  let nf = Fault_list.count fl in
  check_order nf order;
  let t0 = Unix.gettimeofday () in
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  let scoap = Scoap.compute c in
  let jobs = max 1 config.jobs in
  let wss, pool = scan_resources ~observed c ~jobs in
  Fun.protect ~finally:(fun () -> Option.iter Parallel.shutdown pool) @@ fun () ->
  let rng = Rng.create config.seed in
  let stats = Podem.fresh_stats () in
  let ctx = Podem.context ~stats c scoap in
  let run_budget = Budget.of_seconds_opt config.time_budget_s in
  let counts = Array.make nf 0 in
  let detected_by = Array.make nf (-1) in
  let untestable = ref [] and aborted = ref [] and out_of_budget = ref [] in
  let tests = ref [] and targeted = ref [] and n_tests = ref 0 in
  let interrupted = ref false in
  let n_inputs = Array.length (Circuit.inputs c) in
  let good = Faultsim.good_arena wss.(0) in
  let hopeless = Array.make nf false in
  let simulate vec test_idx =
    let pats = Patterns.of_vectors ~n_inputs [| vec |] in
    Faultsim.load_good wss.(0) good pats 0;
    fault_scan pool wss nf (fun _lane ws fi ->
        if counts.(fi) < n then
          if Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L = 1L
          then begin
            counts.(fi) <- counts.(fi) + 1;
            if detected_by.(fi) < 0 then detected_by.(fi) <- test_idx
          end)
  in
  for pass = 1 to n do
    Trace.span tr ~attrs:[ ("pass", Trace.Int pass) ] "engine.n_detect_pass" @@ fun () ->
    Array.iter
      (fun fi ->
        if Budget.expired run_budget then interrupted := true
        else if counts.(fi) < pass && (not hopeless.(fi)) && not !interrupted then begin
          let deadline = Budget.sub_opt run_budget config.per_fault_budget_s in
          match
            Podem.generate_in ~backtrack_limit:config.backtrack_limit ~deadline ctx
              (Fault_list.get fl fi)
          with
          | Podem.Untestable ->
              hopeless.(fi) <- true;
              if pass = 1 then untestable := fi :: !untestable
          | Podem.Aborted ->
              hopeless.(fi) <- true;
              if pass = 1 then aborted := fi :: !aborted
          | Podem.Out_of_budget ->
              if Budget.expired run_budget then interrupted := true
              else begin
                hopeless.(fi) <- true;
                if pass = 1 then out_of_budget := fi :: !out_of_budget
              end
          | Podem.Test cube ->
              let vec = fill_cube rng cube in
              let idx = !n_tests in
              tests := vec :: !tests;
              targeted := fi :: !targeted;
              incr n_tests;
              simulate vec idx
        end)
      order
  done;
  let tests_arr = Array.of_list (List.rev !tests) in
  publish_result tr pool wss stats ~tests:!n_tests ~untestable:(List.length !untestable)
    ~aborted:(List.length !aborted) ~out_of_budget:(List.length !out_of_budget)
    ~retry_recovered:0;
  {
    tests = Patterns.of_vectors ~n_inputs tests_arr;
    detected_by;
    targeted = Array.of_list (List.rev !targeted);
    untestable = List.rev !untestable;
    aborted = List.rev !aborted;
    out_of_budget = List.rev !out_of_budget;
    retry_recovered = 0;
    interrupted = !interrupted;
    snapshot = None;
    stats;
    runtime_s = Unix.gettimeofday () -. t0;
    spec_dispatched = 0;
    spec_committed = 0;
    spec_wasted = 0;
  }

let run_compacting ?(config = default_config) ?(secondary_limit = 50) fl ~order =
  let c = Fault_list.circuit fl in
  let nf = Fault_list.count fl in
  check_order nf order;
  let t0 = Unix.gettimeofday () in
  let tr = Trace.current () in
  let observed = Trace.enabled tr in
  let scoap = Scoap.compute c in
  let jobs = max 1 config.jobs in
  let wss, pool = scan_resources ~observed c ~jobs in
  Fun.protect ~finally:(fun () -> Option.iter Parallel.shutdown pool) @@ fun () ->
  let rng = Rng.create config.seed in
  let stats = Podem.fresh_stats () in
  let ctx = Podem.context ~stats c scoap in
  let run_budget = Budget.of_seconds_opt config.time_budget_s in
  let detected_by = Array.make nf (-1) in
  let untestable = ref [] and aborted = ref [] and out_of_budget = ref [] in
  let tests = ref [] and targeted = ref [] and n_tests = ref 0 in
  let interrupted = ref false in
  let n_inputs = Array.length (Circuit.inputs c) in
  let good = Faultsim.good_arena wss.(0) in
  let simulate_and_drop vec test_idx =
    let pats = Patterns.of_vectors ~n_inputs [| vec |] in
    Faultsim.load_good wss.(0) good pats 0;
    fault_scan pool wss nf (fun _lane ws fi ->
        if detected_by.(fi) < 0 then
          if Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L = 1L
          then detected_by.(fi) <- test_idx)
  in
  let cube_full cube = Array.for_all (fun t -> t <> Ternary.X) cube in
  Trace.span tr ~attrs:[ ("secondary_limit", Trace.Int secondary_limit) ] "engine.compact"
  @@ fun () ->
  Array.iteri
    (fun pos fi ->
      if Budget.expired run_budget then interrupted := true
      else if detected_by.(fi) < 0 && not !interrupted then begin
        let deadline = Budget.sub_opt run_budget config.per_fault_budget_s in
        match
          Podem.generate_in ~backtrack_limit:config.backtrack_limit ~deadline ctx
            (Fault_list.get fl fi)
        with
        | Podem.Untestable -> untestable := fi :: !untestable
        | Podem.Aborted -> aborted := fi :: !aborted
        | Podem.Out_of_budget ->
            if Budget.expired run_budget then interrupted := true
            else out_of_budget := fi :: !out_of_budget
        | Podem.Test cube ->
            (* Secondary targets: later undetected faults, under the
               primary cube's assignments. *)
            let cube = ref cube in
            let attempts = ref 0 in
            let rec secondary i =
              if
                i < nf && !attempts < secondary_limit
                && (not (cube_full !cube))
                && not (Budget.expired run_budget)
              then begin
                let gi = order.(i) in
                if detected_by.(gi) < 0 && gi <> fi then begin
                  incr attempts;
                  match
                    Podem.generate_in ~backtrack_limit:config.backtrack_limit ~deadline
                      ~fixed:!cube ctx (Fault_list.get fl gi)
                  with
                  | Podem.Test merged -> cube := merged
                  | Podem.Untestable | Podem.Aborted | Podem.Out_of_budget -> ()
                end;
                secondary (i + 1)
              end
            in
            secondary (pos + 1);
            let vec = fill_cube rng !cube in
            let idx = !n_tests in
            tests := vec :: !tests;
            targeted := fi :: !targeted;
            incr n_tests;
            simulate_and_drop vec idx;
            assert (detected_by.(fi) = idx)
      end)
    order;
  let tests_arr = Array.of_list (List.rev !tests) in
  publish_result tr pool wss stats ~tests:!n_tests ~untestable:(List.length !untestable)
    ~aborted:(List.length !aborted) ~out_of_budget:(List.length !out_of_budget)
    ~retry_recovered:0;
  {
    tests = Patterns.of_vectors ~n_inputs tests_arr;
    detected_by;
    targeted = Array.of_list (List.rev !targeted);
    untestable = List.rev !untestable;
    aborted = List.rev !aborted;
    out_of_budget = List.rev !out_of_budget;
    retry_recovered = 0;
    interrupted = !interrupted;
    snapshot = None;
    stats;
    runtime_s = Unix.gettimeofday () -. t0;
    spec_dispatched = 0;
    spec_committed = 0;
    spec_wasted = 0;
  }

let coverage fl result =
  let nf = Fault_list.count fl in
  let n_unt = List.length result.untestable in
  let detected = Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 result.detected_by in
  if nf = n_unt then 1.0 else float_of_int detected /. float_of_int (nf - n_unt)
