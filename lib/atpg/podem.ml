type outcome = Test of Ternary.t array | Untestable | Aborted | Out_of_budget

exception Budget_exhausted

type stats = {
  mutable backtracks : int;
  mutable decisions : int;
  mutable implications : int;
}

let fresh_stats () = { backtracks = 0; decisions = 0; implications = 0 }

let copy_stats s =
  { backtracks = s.backtracks; decisions = s.decisions; implications = s.implications }

let add_stats ~into d =
  into.backtracks <- into.backtracks + d.backtracks;
  into.decisions <- into.decisions + d.decisions;
  into.implications <- into.implications + d.implications

let diff_stats a b =
  {
    backtracks = a.backtracks - b.backtracks;
    decisions = a.decisions - b.decisions;
    implications = a.implications - b.implications;
  }

type decision = { pi : int; mutable value : bool; mutable flipped : bool }

type state = {
  c : Circuit.t;
  scoap : Scoap.t;
  mutable fault : Fault.t;
  mutable deadline : Util.Budget.t;
  stats : stats;
  values : Five.t array;
  buckets : int list array;
  scheduled : bool array;
  xmark : bool array;  (* scratch for the X-path sweep *)
  mutable sched_nodes : int list;
  mutable stack : decision list;
  mutable written : int list;  (* nodes whose value may differ from X *)
  mutable cone : int array;
      (* fault site + its transitive fanout, in topological order: the
         only nodes that can carry D/D', hence the only nodes the
         frontier and X-path sweeps must visit *)
}

type context = state

let stuck_ternary st = Ternary.of_bool st.fault.stuck_at

(* Value of pin [p] of gate [g] as seen by the five-valued machines,
   applying the branch-fault transform when [g.p] is the fault site. *)
let pin_value st g p =
  let v = st.values.((Circuit.fanins st.c g).(p)) in
  match st.fault.site with
  | Fault.Branch { gate; pin } when gate = g && pin = p ->
      Five.of_pair (Five.good v, stuck_ternary st)
  | _ -> v

(* Recompute a node's five-valued value from its fanins, applying the
   stem-fault transform when the node is the fault site. *)
let eval_node st n =
  let raw =
    match Circuit.kind st.c n with
    | Gate.Input -> st.values.(n)
    | k ->
        let fanins = Circuit.fanins st.c n in
        Five.eval_array k (Array.init (Array.length fanins) (pin_value st n))
  in
  match st.fault.site with
  | Fault.Stem s when s = n -> Five.of_pair (Five.good raw, stuck_ternary st)
  | _ -> raw

let schedule st n =
  if not st.scheduled.(n) then begin
    st.scheduled.(n) <- true;
    st.sched_nodes <- n :: st.sched_nodes;
    let l = Circuit.level st.c n in
    st.buckets.(l) <- n :: st.buckets.(l)
  end

(* Event-driven forward implication from already-scheduled nodes. *)
let propagate st =
  if st.sched_nodes <> [] then begin
    for l = 0 to Array.length st.buckets - 1 do
      let pending = st.buckets.(l) in
      if pending <> [] then begin
        st.buckets.(l) <- [];
        List.iter
          (fun n ->
            let v = eval_node st n in
            if not (Five.equal v st.values.(n)) then begin
              st.values.(n) <- v;
              st.written <- n :: st.written;
              st.stats.implications <- st.stats.implications + 1;
              Array.iter (fun s -> schedule st s) (Circuit.fanouts st.c n)
            end)
          pending
      end
    done;
    List.iter (fun n -> st.scheduled.(n) <- false) st.sched_nodes;
    st.sched_nodes <- []
  end

let assign st pi v =
  st.written <- pi :: st.written;
  st.values.(pi) <-
    (match v with
    | None -> Five.X
    | Some b -> (
        let raw = if b then Five.One else Five.Zero in
        match st.fault.site with
        | Fault.Stem s when s = pi -> Five.of_pair (Five.good raw, stuck_ternary st)
        | _ -> raw));
  Array.iter (fun s -> schedule st s) (Circuit.fanouts st.c pi);
  (* The PI itself may be a primary output or the fault site feeding
     nothing; nothing further to recompute for it. *)
  propagate st

let error_at_po st = Array.exists (fun o -> Five.is_error st.values.(o)) (Circuit.outputs st.c)

(* Good-machine value on the fault's line (the stem, or the branch's
   driver). *)
let site_line_good st =
  match st.fault.site with
  | Fault.Stem s -> Five.good st.values.(s)
  | Fault.Branch { gate; pin } -> Five.good st.values.((Circuit.fanins st.c gate).(pin))

let site_line_node st =
  match st.fault.site with
  | Fault.Stem s -> s
  | Fault.Branch { gate; pin } -> (Circuit.fanins st.c gate).(pin)

(* Is the fault effect present on the faulted line/pin itself? *)
let fault_excited st =
  match st.fault.site with
  | Fault.Stem s -> Five.is_error st.values.(s)
  | Fault.Branch { gate; pin } -> Five.is_error (pin_value st gate pin)

(* Nodes from which a path of X-valued nodes reaches a primary output.
   The error can only travel inside the fault cone, so the sweep visits
   the cone (in reverse topological order) and nothing else, using the
   reusable [st.xmark] scratch array. *)
let xpath_marks st =
  let mark = st.xmark in
  let cone = st.cone in
  for idx = Array.length cone - 1 downto 0 do
    let g = cone.(idx) in
    mark.(g) <-
      Five.equal st.values.(g) Five.X
      && (Circuit.is_output st.c g
         || Array.exists (fun s -> mark.(s)) (Circuit.fanouts st.c g))
  done;
  mark

(* D-frontier: gates with X output and an error on some input pin,
   restricted to gates whose output has an X-path to a PO.  Returns the
   gate with the cheapest stem observability. *)
let best_frontier_gate st =
  let mark = xpath_marks st in
  let best = ref None in
  Array.iter (fun g ->
      if
        Five.equal st.values.(g) Five.X
        && mark.(g)
        && Array.length (Circuit.fanins st.c g) > 0
      then begin
        let has_error =
          let fanins = Circuit.fanins st.c g in
          let rec go p =
            p < Array.length fanins && (Five.is_error (pin_value st g p) || go (p + 1))
          in
          go 0
        in
        if has_error then
          let cost = Scoap.co st.scoap g in
          match !best with
          | Some (c0, _) when c0 <= cost -> ()
          | _ -> best := Some (cost, g)
      end)
    st.cone;
  Option.map snd !best

type objective = Obj of int * bool | Conflict | Done

let objective st =
  if error_at_po st then Done
  else if not (fault_excited st) then begin
    (* Activate: drive the faulted line's good value to the opposite of
       the stuck value. *)
    match site_line_good st with
    | Ternary.X -> Obj (site_line_node st, not st.fault.stuck_at)
    | g -> if Ternary.equal g (Ternary.of_bool st.fault.stuck_at) then Conflict else Conflict
    (* good = ~stuck but not excited can only happen for a branch fault
       whose pin transform yielded X — unreachable because good is
       binary there; treat defensively as Conflict. *)
  end
  else
    match best_frontier_gate st with
    | None -> Conflict
    | Some g ->
        let fanins = Circuit.fanins st.c g in
        let k = Circuit.kind st.c g in
        (* Choose an X input to set to the non-controlling value. *)
        let candidates = ref [] in
        for p = Array.length fanins - 1 downto 0 do
          if Five.equal (pin_value st g p) Five.X then candidates := fanins.(p) :: !candidates
        done;
        (match !candidates with
        | [] -> Conflict
        | cands ->
            let value, pick_cost =
              match Gate.controlling_value k with
              | Some cv -> (not cv, fun n -> Scoap.cc st.scoap n (not cv))
              | None -> (false, fun n -> min (Scoap.cc0 st.scoap n) (Scoap.cc1 st.scoap n))
            in
            let best =
              List.fold_left
                (fun acc n ->
                  match acc with
                  | None -> Some n
                  | Some m -> if pick_cost n < pick_cost m then Some n else acc)
                None cands
            in
            (match best with Some n -> Obj (n, value) | None -> Conflict))

(* Map an objective to an unassigned PI and a value, guided by SCOAP. *)
let rec backtrace st n v =
  match Circuit.kind st.c n with
  | Gate.Input -> if Ternary.equal (Five.good st.values.(n)) Ternary.X then Some (n, v) else None
  | Gate.Const0 | Gate.Const1 -> None
  | Gate.Buf | Gate.Dff -> backtrace st (Circuit.fanins st.c n).(0) v
  | Gate.Not -> backtrace st (Circuit.fanins st.c n).(0) (not v)
  | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor) as k ->
      let fanins = Circuit.fanins st.c n in
      let core_v = if Gate.inverting k then not v else v in
      (* AND core: output 1 needs all inputs 1 (pick hardest); output 0
         needs one controlling input (pick easiest).  OR core dual; in
         both families the required input value equals core_v. *)
      let xs = ref [] in
      Array.iter
        (fun f -> if Ternary.equal (Five.good st.values.(f)) Ternary.X then xs := f :: !xs)
        fanins;
      let all_needed =
        match Gate.controlling_value k with
        | Some cv -> core_v <> cv
        | None -> assert false
      in
      let cost f = Scoap.cc st.scoap f core_v in
      let pick =
        List.fold_left
          (fun acc f ->
            match acc with
            | None -> Some f
            | Some m ->
                let better = if all_needed then cost f > cost m else cost f < cost m in
                if better then Some f else acc)
          None !xs
      in
      (match pick with None -> None | Some f -> backtrace st f core_v)
  | (Gate.Xor | Gate.Xnor) as k ->
      let fanins = Circuit.fanins st.c n in
      let xs = ref [] and known_parity = ref false in
      Array.iter
        (fun f ->
          match Five.good st.values.(f) with
          | Ternary.X -> xs := f :: !xs
          | Ternary.One -> known_parity := not !known_parity
          | Ternary.Zero -> ())
        fanins;
      let pick =
        List.fold_left
          (fun acc f ->
            let cost g = min (Scoap.cc0 st.scoap g) (Scoap.cc1 st.scoap g) in
            match acc with
            | None -> Some f
            | Some m -> if cost f < cost m then Some f else acc)
          None !xs
      in
      (match pick with
      | None -> None
      | Some f ->
          (* Required parity over inputs: v (xor gate inversion); other
             unassigned inputs are assumed 0 for the heuristic. *)
          let target = v <> Gate.inverting k in
          backtrace st f (target <> !known_parity))

let check_budget st =
  if Util.Budget.expired st.deadline then raise Budget_exhausted

let rec search st limit =
  check_budget st;
  match objective st with
  | Done -> `Success
  | Conflict -> backtrack st limit
  | Obj (n, v) -> (
      match backtrace st n v with
      | None -> backtrack st limit
      | Some (pi, pv) ->
          st.stats.decisions <- st.stats.decisions + 1;
          st.stack <- { pi; value = pv; flipped = false } :: st.stack;
          assign st pi (Some pv);
          search st limit)

and backtrack st limit =
  match st.stack with
  | [] -> `Untestable
  | d :: rest ->
      if d.flipped then begin
        assign st d.pi None;
        st.stack <- rest;
        backtrack st limit
      end
      else begin
        st.stats.backtracks <- st.stats.backtracks + 1;
        if st.stats.backtracks > limit then `Aborted
        else begin
          d.flipped <- true;
          d.value <- not d.value;
          assign st d.pi (Some d.value);
          search st limit
        end
      end

let context ?stats c scoap =
  if Circuit.has_state c then invalid_arg "Podem.context: circuit must be combinational";
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  {
    c;
    scoap;
    fault = Fault.stem 0 false;
    deadline = Util.Budget.unlimited;
    stats;
    values = Array.make (Circuit.node_count c) Five.X;
    buckets = Array.make (Circuit.depth c + 1) [];
    scheduled = Array.make (Circuit.node_count c) false;
    xmark = Array.make (Circuit.node_count c) false;
    sched_nodes = [];
    stack = [];
    written = [];
    cone = [||];
  }

let reset st =
  List.iter (fun n -> st.values.(n) <- Five.X) st.written;
  st.written <- [];
  st.stack <- []

let generate_in ?(backtrack_limit = 256) ?(deadline = Util.Budget.unlimited) ?fixed st fault =
  reset st;
  st.fault <- fault;
  st.deadline <- deadline;
  (* Mark-free scratch is assumed: xpath_marks writes exactly the cone
     entries it reads, so switching cones needs no global reset (stale
     entries outside the new cone are never read). *)
  st.cone <- Array.append [| Fault.site_node fault |] (Circuit.transitive_fanout st.c (Fault.site_node fault));
  (* Constants are fixed from the start; fold them in. *)
  Circuit.iter_nodes st.c (fun n ->
      match Circuit.kind st.c n with
      | Gate.Const0 | Gate.Const1 -> schedule st n
      | _ -> ());
  propagate st;
  (* Pre-assignments (dynamic compaction's secondary-target mode):
     applied outside the decision stack, so backtracking never touches
     them. *)
  (match fixed with
  | None -> ()
  | Some cube ->
      let pis = Circuit.inputs st.c in
      if Array.length cube <> Array.length pis then
        invalid_arg "Podem.generate_in: fixed cube width mismatch";
      Array.iteri
        (fun i pi ->
          match cube.(i) with
          | Ternary.X -> ()
          | Ternary.Zero -> assign st pi (Some false)
          | Ternary.One -> assign st pi (Some true))
        pis);
  (* The limit bounds THIS search: stats accumulate across a context's
     searches, so the comparison baseline is the count at entry. *)
  match search st (st.stats.backtracks + backtrack_limit) with
  | `Success ->
      let cube = Array.map (fun pi -> Five.good st.values.(pi)) (Circuit.inputs st.c) in
      Test cube
  | `Untestable -> Untestable
  | `Aborted -> Aborted
  | exception Budget_exhausted -> Out_of_budget

let generate ?backtrack_limit ?deadline ?stats c scoap fault =
  generate_in ?backtrack_limit ?deadline (context ?stats c scoap) fault
