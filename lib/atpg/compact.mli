(** Static test-set compaction by reverse-order fault simulation.

    Tests are fault-simulated in reverse generation order; a test is
    kept only if it detects a fault no later-kept test detects.  Later
    tests tend to target hard faults and accidentally cover many easy
    ones, so this classic pass removes early tests made redundant.  Not
    part of the paper's flow (it would blur the ordering comparison) —
    provided for the library's own sake and for the ablation bench. *)

type result = {
  kept : int array;  (** indices of kept tests, in original order *)
  tests : Patterns.t;  (** the compacted test set *)
}

val reverse_order : ?jobs:int -> Fault_list.t -> Patterns.t -> result
(** [jobs] (default 1) sizes the fault-simulation domain pool; the
    kept set is identical for any value.
    @raise Invalid_argument if pattern width disagrees with the
    circuit's PI count. *)

val set_cover : ?jobs:int -> Fault_list.t -> Patterns.t -> result
(** Stronger (and costlier) static compaction: non-dropping simulation
    gives each test's full detection set, then a greedy set cover picks
    tests by decreasing marginal coverage.  Usually (not always)
    smaller than {!reverse_order}'s result. *)
