module Bitvec = Util.Bitvec

let greedy ?(jobs = 1) fl pats =
  let n_tests = Patterns.count pats in
  let dsets = Faultsim.detection_sets ~jobs fl pats in
  (* Transpose: per test, the set of faults it detects. *)
  let nf = Fault_list.count fl in
  let per_test = Array.init n_tests (fun _ -> Bitvec.create nf) in
  Array.iteri (fun fi d -> Bitvec.iter_set d (fun t -> Bitvec.set per_test.(t) fi true)) dsets;
  let remaining = Array.map Bitvec.copy per_test in
  let used = Array.make n_tests false in
  let order = Array.make n_tests 0 in
  for pos = 0 to n_tests - 1 do
    let best = ref (-1) and best_cnt = ref (-1) in
    for t = 0 to n_tests - 1 do
      if not used.(t) then begin
        let cnt = Bitvec.popcount remaining.(t) in
        if cnt > !best_cnt then begin
          best := t;
          best_cnt := cnt
        end
      end
    done;
    let t = !best in
    used.(t) <- true;
    order.(pos) <- t;
    (* Retire the newly covered faults from every remaining test. *)
    if !best_cnt > 0 then
      for t' = 0 to n_tests - 1 do
        if not used.(t') then Bitvec.diff_into ~dst:remaining.(t') per_test.(t)
      done
  done;
  order

let apply pats order =
  let rows = Array.map (fun t -> Patterns.vector pats t) order in
  Patterns.of_vectors ~n_inputs:(Patterns.n_inputs pats) rows
