module Rng = Util.Rng

type report = { rounds : int; removed : int; aborted_last : int }

let subst_of_fault (f : Fault.t) =
  match f.site with
  | Fault.Stem s -> Rewrite.Node_const (s, f.stuck_at)
  | Fault.Branch { gate; pin } -> Rewrite.Pin_const { gate; pin; value = f.stuck_at }

(* Some undetectable faults cannot be rewritten away: a stem on a node
   nothing consumes (typically a primary input whose cone died), or a
   stem on a constant stuck at its own value.  Substituting them leaves
   the circuit unchanged, so treating them as removable would keep the
   fixpoint loop spinning forever. *)
let substitution_is_effective c (f : Fault.t) =
  match f.site with
  | Fault.Branch _ -> true
  | Fault.Stem s -> (
      Circuit.fanout_count c s > 0
      ||
      match Circuit.kind c s with
      | Gate.Const0 -> Circuit.is_output c s && f.stuck_at
      | Gate.Const1 -> Circuit.is_output c s && not f.stuck_at
      | _ -> Circuit.is_output c s)

let remove ?(backtrack_limit = 4096) ?(random_vectors = 2048) ?(seed = 7) ?(max_rounds = 16)
    circuit =
  if Circuit.has_state circuit then
    invalid_arg "Irredundant.remove: circuit must be combinational";
  let rng = Rng.create seed in
  let removed = ref 0 in
  let rec round c r =
    let fl = Collapse.collapsed c in
    let n_inputs = Array.length (Circuit.inputs c) in
    (* Random filter: anything detected by random vectors is testable. *)
    let pats = Patterns.random rng ~n_inputs ~count:random_vectors in
    let { Faultsim.first_detection; _ } = Faultsim.with_dropping fl pats in
    let scoap = Scoap.compute c in
    let ctx = Podem.context c scoap in
    let untestable = ref [] and aborted = ref 0 in
    Array.iteri
      (fun fi d ->
        if d < 0 then
          match Podem.generate_in ~backtrack_limit ctx (Fault_list.get fl fi) with
          | Podem.Test _ -> ()
          | Podem.Aborted | Podem.Out_of_budget -> incr aborted
          | Podem.Untestable ->
              let f = Fault_list.get fl fi in
              if substitution_is_effective c f then untestable := f :: !untestable)
      first_detection;
    match !untestable with
    | [] -> (c, { rounds = r; removed = !removed; aborted_last = !aborted })
    | faults ->
        removed := !removed + List.length faults;
        let c' = Rewrite.apply c (List.map subst_of_fault faults) in
        if r >= max_rounds then
          (c', { rounds = r; removed = !removed; aborted_last = !aborted })
        else round c' (r + 1)
  in
  round circuit 1
