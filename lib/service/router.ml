module Json = Util.Json
module Diagnostics = Util.Diagnostics
module Budget = Util.Budget
module Retry = Util.Retry
module Trace = Util.Trace
module Metrics = Util.Metrics

type worker = {
  address : Server.address;
  alive : bool;
  forwarded : int;
}

type t = {
  addresses : Server.address array;
  vnodes : int;
  ring : (int * int) array;  (* (hash point, worker index), sorted by point *)
  policy : Retry.policy;
  probe_timeout_s : float;
  clock : Budget.clock;
  tracer : Trace.t;
  lock : Mutex.t;
  live : bool array;
  sent : int array;
  last_worker : (string, int) Hashtbl.t;
  mutable hits : int;
  mutable moves : int;
  mutable failover_count : int;
  mutable n_requests : int;
  mutable n_errors : int;
  mutable n_shed : int;
  mutable lane_restarts : int;
  mutable runtime : unit -> (string * Json.t) list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The top 62 bits of an MD5 — plenty of spread, and comfortably a
   native [int] on 64-bit, so ring points sort and compare for free. *)
let hash_point s =
  Int64.to_int (Int64.shift_right_logical (String.get_int64_be (Digest.string s) 0) 2)

let build_ring addresses vnodes =
  let points =
    Array.init (Array.length addresses * vnodes) (fun i ->
        let w = i / vnodes and v = i mod vnodes in
        (hash_point (Printf.sprintf "%s#%d" (Server.address_to_string addresses.(w)) v), w))
  in
  Array.sort compare points;
  points

let create ?(vnodes = 64) ?(policy = Client.default_policy) ?(probe_timeout_s = 2.0)
    ?(clock = Budget.default_clock) ?tracer addresses =
  if addresses = [] then invalid_arg "Router.create: at least one worker address";
  if vnodes < 1 then invalid_arg "Router.create: vnodes must be >= 1";
  let tracer = match tracer with Some tr -> tr | None -> Trace.current () in
  let addresses = Array.of_list addresses in
  let n = Array.length addresses in
  { addresses; vnodes; ring = build_ring addresses vnodes; policy; probe_timeout_s;
    clock; tracer; lock = Mutex.create (); live = Array.make n true; sent = Array.make n 0;
    last_worker = Hashtbl.create 64; hits = 0; moves = 0; failover_count = 0;
    n_requests = 0; n_errors = 0; n_shed = 0; lane_restarts = 0; runtime = (fun () -> []) }

let workers t =
  locked t (fun () ->
      Array.to_list
        (Array.mapi
           (fun w address -> { address; alive = t.live.(w); forwarded = t.sent.(w) })
           t.addresses))

let requests t = locked t (fun () -> t.n_requests)
let affinity t = locked t (fun () -> (t.hits, t.moves))
let failovers t = locked t (fun () -> t.failover_count)

let set_alive t w v =
  if w < 0 || w >= Array.length t.addresses then invalid_arg "Router.set_alive";
  locked t (fun () -> t.live.(w) <- v)

(* --- the ring ------------------------------------------------------ *)

(* The affinity key is the same identity the worker's artifact store
   hashes: the inline netlist text, or the named circuit.  The
   "netlist|"/"circuit|" prefixes keep the two namespaces disjoint. *)
let routing_key params =
  match List.assoc_opt "netlist" params with
  | Some (Json.Str text) -> Some (Digest.to_hex (Digest.string ("netlist|" ^ text)))
  | _ -> (
      match List.assoc_opt "circuit" params with
      | Some (Json.Str name) -> Some (Digest.to_hex (Digest.string ("circuit|" ^ name)))
      | _ -> None)

(* Clockwise from the key's ring position, first live owner wins.
   Only a dead worker's own points are skipped, so its keys scatter
   to their next-clockwise neighbours and everyone else's stay put. *)
let worker_for t key =
  let n = Array.length t.ring in
  let h = hash_point key in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  let start = if !lo = n then 0 else !lo in
  let rec scan steps =
    if steps >= n then None
    else
      let _, w = t.ring.((start + steps) mod n) in
      if t.live.(w) then Some w else scan (steps + 1)
  in
  scan 0

let any_live t =
  let n = Array.length t.addresses in
  let rec scan w = if w >= n then None else if t.live.(w) then Some w else scan (w + 1) in
  scan 0

(* --- probing and drain -------------------------------------------- *)

let probe_policy t =
  { t.policy with
    Retry.max_attempts = 2; base_delay_s = 0.05; max_delay_s = 0.2;
    attempt_budget_s = Some t.probe_timeout_s;
    overall_budget_s = Some (2.0 *. t.probe_timeout_s) }

let with_worker_client t w f =
  let client = Client.create ~policy:(probe_policy t) ~clock:t.clock t.addresses.(w) in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let probe_worker t w =
  with_worker_client t w (fun client ->
      match Client.health client () with Ok _ -> true | Error _ -> false)

let probe t =
  Array.iteri (fun w _ -> set_alive t w (probe_worker t w)) t.addresses

let drain_fleet t =
  Array.iteri
    (fun w _ ->
      with_worker_client t w (fun client ->
          ignore (Client.shutdown client () : (Json.t, Diagnostics.t) result)))
    t.addresses

(* --- forwarding ---------------------------------------------------- *)

(* Per-connection state: the client's negotiated version and one lazy
   downstream connection per worker (so a pipelining client keeps its
   worker connections warm, and a disconnect releases them all). *)
type conn = {
  router : t;
  mutable version : Protocol.version;
  clients : (int, Client.t) Hashtbl.t;
}

let new_conn t = { router = t; version = Protocol.v1; clients = Hashtbl.create 4 }

let client_for conn w =
  match Hashtbl.find_opt conn.clients w with
  | Some client -> client
  | None ->
      let client =
        Client.create ~policy:conn.router.policy ~clock:conn.router.clock
          conn.router.addresses.(w)
      in
      Hashtbl.add conn.clients w client;
      client

let disconnect conn =
  Hashtbl.iter (fun _ client -> Client.close client) conn.clients;
  Hashtbl.reset conn.clients

exception Worker_down of int * Diagnostics.t

(* One forward.  A typed reply — even an error — is an answer and
   passes through; retry exhaustion on the transport plane means the
   worker is gone.  A deadline or shed exhaustion is neither: the
   worker is alive but saturated, so it surfaces as a typed error
   without poisoning the ring. *)
let forward conn w call =
  let client = client_for conn w in
  locked conn.router (fun () -> conn.router.sent.(w) <- conn.router.sent.(w) + 1);
  match Client.call_exn client call with
  | (Ok _ | Error _) as reply -> reply
  | exception Diagnostics.Failed d -> (
      match d.Diagnostics.code with
      | Diagnostics.Io_error | Diagnostics.Protocol -> raise (Worker_down (w, d))
      | _ -> Error (Protocol.error_of_diagnostic d))

let mark_down t w =
  locked t (fun () ->
      t.live.(w) <- false;
      t.failover_count <- t.failover_count + 1);
  if Trace.enabled t.tracer then Metrics.incr (Trace.counter t.tracer "router.failovers")

let note_affinity t key w =
  locked t (fun () ->
      (match Hashtbl.find_opt t.last_worker key with
      | Some prev when prev = w -> t.hits <- t.hits + 1
      | Some _ -> t.moves <- t.moves + 1
      | None -> ());
      Hashtbl.replace t.last_worker key w)

let no_live_error t =
  { Protocol.code = Diagnostics.code_string Diagnostics.Io_error;
    message =
      Printf.sprintf "no live workers (%d configured)" (Array.length t.addresses) }

(* Pick the key's owner; when the whole fleet looks dead, spend one
   inline probe before giving up — a blipped worker should not fail
   requests for a full probe interval. *)
let rec pick t key ~probed =
  let choice = match key with Some k -> worker_for t k | None -> any_live t in
  match choice with
  | Some w -> Some w
  | None when not probed ->
      probe t;
      pick t key ~probed:true
  | None -> None

let rec route_single conn op params ~attempts =
  let t = conn.router in
  if attempts > Array.length t.addresses then Error (no_live_error t)
  else
    let key = routing_key params in
    match pick t key ~probed:false with
    | None -> Error (no_live_error t)
    | Some w -> (
        Option.iter (fun k -> note_affinity t k w) key;
        try forward conn w (Protocol.Single (op, params))
        with Worker_down (w, _) ->
          mark_down t w;
          route_single conn op params ~attempts:(attempts + 1))

(* A batch splits by target worker (each group keeps request order),
   forwards one sub-batch per worker, and reassembles per-item replies
   by original index.  A group whose worker dies mid-flight re-routes
   through the (now updated) ring, so one death degrades to a failover
   rather than a batch-wide error. *)
let route_batch conn op items =
  let t = conn.router in
  let arr = Array.of_list items in
  let out = Array.make (Array.length arr) (Error (no_live_error t)) in
  let rec place idxs ~attempts =
    if idxs <> [] then
      if attempts > Array.length t.addresses then
        List.iter (fun i -> out.(i) <- Error (no_live_error t)) idxs
      else begin
        let groups : (int, int list) Hashtbl.t = Hashtbl.create 4 in
        let grouped =
          List.filter
            (fun i ->
              let key = routing_key arr.(i) in
              match pick t key ~probed:false with
              | None -> false
              | Some w ->
                  Option.iter (fun k -> note_affinity t k w) key;
                  Hashtbl.replace groups w (i :: Option.value ~default:[] (Hashtbl.find_opt groups w));
                  true)
            idxs
        in
        List.iter (fun i -> out.(i) <- Error (no_live_error t))
          (List.filter (fun i -> not (List.mem i grouped)) idxs);
        let retry = ref [] in
        Hashtbl.iter
          (fun w rev_idxs ->
            let group = List.rev rev_idxs in
            let sub = List.map (fun i -> arr.(i)) group in
            match forward conn w (Protocol.Batch (op, sub)) with
            | Ok (Protocol.Batch_replies replies) when List.length replies = List.length group ->
                List.iter2 (fun i reply -> out.(i) <- reply) group replies
            | Ok _ ->
                let e =
                  { Protocol.code = Diagnostics.code_string Diagnostics.Protocol;
                    message = "worker returned a malformed batch reply" }
                in
                List.iter (fun i -> out.(i) <- Error e) group
            | Error e -> List.iter (fun i -> out.(i) <- Error e) group
            | exception Worker_down (w, _) ->
                mark_down t w;
                retry := group @ !retry)
          groups;
        place (List.sort compare !retry) ~attempts:(attempts + 1)
      end
  in
  place (List.init (Array.length arr) Fun.id) ~attempts:0;
  Array.to_list out

(* --- fleet-level ops ----------------------------------------------- *)

(* Fan one op out to every configured worker through this connection's
   clients, collecting per-worker outcomes in configuration order. *)
let fan_out conn call =
  let t = conn.router in
  Array.to_list
    (Array.mapi
       (fun w _ ->
         if not t.live.(w) then (w, Error (no_live_error t))
         else
           match forward conn w call with
           | reply -> (w, reply)
           | exception Worker_down (w', d) ->
               mark_down t w';
               (w, Error (Protocol.error_of_diagnostic d)))
       t.addresses)

let stats_reply conn =
  let t = conn.router in
  let per_worker = fan_out conn (Protocol.Single (Protocol.Stats, [])) in
  let worker_objs =
    List.map
      (fun (w, outcome) ->
        let base =
          [ ("address", Json.Str (Server.address_to_string t.addresses.(w)));
            ("alive", Json.Bool t.live.(w));
            ("forwarded", Json.Int t.sent.(w)) ]
        in
        match outcome with
        | Ok (Protocol.Result j) -> Json.Obj (base @ [ ("stats", j) ])
        | Ok _ | Error _ -> Json.Obj base)
      per_worker
  in
  let hits, moves = affinity t in
  Json.Obj
    [ ("role", Json.Str "router");
      ("requests", Json.Int (requests t));
      ("errors", Json.Int (locked t (fun () -> t.n_errors)));
      ("affinity_hits", Json.Int hits);
      ("affinity_moves", Json.Int moves);
      ("failovers", Json.Int (failovers t));
      ("workers", Json.Arr worker_objs) ]

let health_reply t =
  let live = locked t (fun () -> Array.fold_left (fun n a -> if a then n + 1 else n) 0 t.live) in
  Json.Obj
    ([ ("status", Json.Str (if live > 0 then "ok" else "degraded"));
       ("version", Json.Str Util.Version.version);
       ("role", Json.Str "router");
       ("workers", Json.Int (Array.length t.addresses));
       ("live_workers", Json.Int live);
       ("requests", Json.Int (requests t));
       ("shed", Json.Int (locked t (fun () -> t.n_shed)));
       ("lane_restarts", Json.Int (locked t (fun () -> t.lane_restarts))) ]
    @ t.runtime ())

(* Eviction fans out; the shapes mirror a single worker's reply, plus
   how many workers answered. *)
let evict_reply conn params =
  let per_worker = fan_out conn (Protocol.Single (Protocol.Evict, params)) in
  let answered =
    List.filter_map (function _, Ok (Protocol.Result j) -> Some j | _ -> None) per_worker
  in
  let reached = List.length answered in
  match List.assoc_opt "key" params with
  | Some _ ->
      let evicted =
        List.exists
          (fun j -> match j with
            | Json.Obj fields -> List.assoc_opt "evicted" fields = Some (Json.Bool true)
            | _ -> false)
          answered
      in
      Json.Obj [ ("evicted", Json.Bool evicted); ("workers", Json.Int reached) ]
  | None ->
      let cleared =
        List.fold_left
          (fun n j -> match j with
            | Json.Obj fields -> (
                match List.assoc_opt "cleared" fields with
                | Some (Json.Int c) -> n + c
                | _ -> n)
            | _ -> n)
          0 answered
      in
      Json.Obj [ ("cleared", Json.Int cleared); ("workers", Json.Int reached) ]

(* --- the request handler ------------------------------------------- *)

let protocol_error id message =
  { Protocol.id;
    payload =
      Error { Protocol.code = Diagnostics.code_string Diagnostics.Protocol; message } }

let count_request t ~failed =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      if failed then t.n_errors <- t.n_errors + 1);
  if Trace.enabled t.tracer then begin
    Metrics.incr (Trace.counter t.tracer "router.requests");
    if failed then Metrics.incr (Trace.counter t.tracer "router.errors")
  end

let handle_hello conn id versions =
  match Protocol.negotiate versions with
  | Some version ->
      conn.version <- version;
      { Protocol.id;
        payload =
          Ok
            (Protocol.Welcome
               { version; versions = Protocol.supported_versions;
                 server = Util.Version.version }) }
  | None ->
      protocol_error id
        (Printf.sprintf "no common protocol version (server speaks: %s)"
           (String.concat ", " (List.map string_of_int Protocol.supported_versions)))

let handle conn (req : Protocol.request) =
  let t = conn.router in
  match req.Protocol.call with
  | Protocol.Hello versions -> handle_hello conn req.Protocol.id versions
  | call ->
      let payload =
        match call with
        | Protocol.Hello _ -> assert false
        | Protocol.Single (Protocol.Stats, _) -> Ok (Protocol.Result (stats_reply conn))
        | Protocol.Single (Protocol.Health, _) -> Ok (Protocol.Result (health_reply t))
        | Protocol.Single (Protocol.Evict, params) ->
            Ok (Protocol.Result (evict_reply conn params))
        | Protocol.Single (Protocol.Shutdown, _) ->
            Ok (Protocol.Result (Json.Obj [ ("stopping", Json.Bool true) ]))
        | Protocol.Single (op, params) -> (
            match route_single conn op params ~attempts:0 with
            | Ok reply -> Ok reply
            | Error e -> Error e)
        | Protocol.Batch (op, items) -> Ok (Protocol.Batch_replies (route_batch conn op items))
      in
      count_request t ~failed:(Result.is_error payload);
      { Protocol.id = req.Protocol.id; payload }

let count_failed_request t = count_request t ~failed:true

let handle_frame t conn payload =
  let resp, directive =
    match Result.bind (Json.of_string payload) (fun j -> Ok (Protocol.request_of_json j)) with
    | Error msg ->
        count_failed_request t;
        (protocol_error 0 (Printf.sprintf "malformed request: %s" msg), `Continue)
    | Ok (Error (Protocol.Malformed msg)) ->
        count_failed_request t;
        (protocol_error 0 (Printf.sprintf "malformed request: %s" msg), `Continue)
    | Ok (Error (Protocol.Unknown_op { id; op })) ->
        count_failed_request t;
        ( protocol_error id
            (Printf.sprintf "unknown op %S (protocol v%d; expected one of: %s)" op
               conn.version
               (String.concat ", " Protocol.ops)),
          `Continue )
    | Ok (Ok req) ->
        let resp = handle conn req in
        let directive =
          match resp.Protocol.payload with
          | Ok (Protocol.Result (Json.Obj fields))
            when List.assoc_opt "stopping" fields = Some (Json.Bool true) ->
              `Shutdown
          | _ -> `Continue
        in
        (resp, directive)
  in
  (Json.to_string (Protocol.response_to_json resp), directive)

let shed_frame t payload =
  locked t (fun () -> t.n_shed <- t.n_shed + 1);
  if Trace.enabled t.tracer then Metrics.incr (Trace.counter t.tracer "router.shed");
  let id =
    match Result.bind (Json.of_string payload) (fun j -> Ok (Protocol.request_of_json j)) with
    | Ok (Ok req) -> req.Protocol.id
    | Ok (Error (Protocol.Unknown_op { id; _ })) -> id
    | Ok (Error (Protocol.Malformed _)) | Error _ -> 0
  in
  let resp =
    { Protocol.id;
      payload =
        Error
          { Protocol.code = Diagnostics.code_string Diagnostics.Overload;
            message = "router overloaded: request shed before routing" } }
  in
  Json.to_string (Protocol.response_to_json resp)

let backend t =
  { Server.connect =
      (fun () ->
        let conn = new_conn t in
        { Server.handle = handle_frame t conn; disconnect = (fun () -> disconnect conn) });
    shed = shed_frame t;
    on_queue_depth = (fun _ -> ());
    on_inflight = (fun _ -> ());
    on_lane_restart = (fun () -> locked t (fun () -> t.lane_restarts <- t.lane_restarts + 1));
    set_runtime = (fun f -> t.runtime <- f) }
