module Json = Util.Json
module Diagnostics = Util.Diagnostics

type request = { id : int; op : string; params : (string * Json.t) list }
type error = { code : string; message : string }
type response = { id : int; payload : (Json.t, error) result }

let ops = [ "load"; "adi"; "order"; "atpg"; "stats"; "health"; "evict"; "shutdown" ]

let request_to_json (r : request) =
  Json.Obj (("id", Json.Int r.id) :: ("op", Json.Str r.op) :: r.params)

let request_of_json j =
  match j with
  | Json.Obj fields -> (
      match Option.bind (List.assoc_opt "op" fields) Json.to_str with
      | None -> Error "request has no \"op\" field"
      | Some op ->
          let id =
            Option.value ~default:0 (Option.bind (List.assoc_opt "id" fields) Json.to_int)
          in
          let params = List.filter (fun (k, _) -> k <> "id" && k <> "op") fields in
          Ok { id; op; params })
  | _ -> Error "request is not a JSON object"

let response_to_json r =
  let tail =
    match r.payload with
    | Ok result -> [ ("ok", Json.Bool true); ("result", result) ]
    | Error e ->
        [ ("ok", Json.Bool false);
          ("error", Json.Obj [ ("code", Json.Str e.code); ("message", Json.Str e.message) ]) ]
  in
  Json.Obj (("id", Json.Int r.id) :: tail)

let response_of_json j =
  match j with
  | Json.Obj fields -> (
      let id =
        Option.value ~default:0 (Option.bind (List.assoc_opt "id" fields) Json.to_int)
      in
      match Option.bind (List.assoc_opt "ok" fields) Json.to_bool with
      | Some true -> (
          match List.assoc_opt "result" fields with
          | Some result -> Ok { id; payload = Ok result }
          | None -> Error "success response has no \"result\"")
      | Some false -> (
          match List.assoc_opt "error" fields with
          | Some err ->
              let str k = Option.bind (Json.member k err) Json.to_str in
              Ok
                { id;
                  payload =
                    Error
                      { code = Option.value ~default:"E-protocol" (str "code");
                        message = Option.value ~default:"unknown error" (str "message") } }
          | None -> Error "failure response has no \"error\"")
      | None -> Error "response has no boolean \"ok\"")
  | _ -> Error "response is not a JSON object"

let error_of_diagnostic (d : Diagnostics.t) =
  { code = Diagnostics.code_string d.Diagnostics.code; message = d.Diagnostics.message }

(* --- framing ------------------------------------------------------ *)

let max_frame_bytes = 64 * 1024 * 1024

let fail_protocol fmt = Diagnostics.fail Diagnostics.Protocol fmt

let write_all fd bytes =
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    match Unix.write fd bytes !written (n - !written) with
    | 0 -> Diagnostics.fail Diagnostics.Io_error "connection closed mid-write"
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        Diagnostics.fail Diagnostics.Io_error "connection closed by peer"
  done

(* Frame layout: 4-byte big-endian payload length, 16-byte MD5 digest
   of the payload, payload.  The digest turns in-flight corruption into
   a typed E-protocol failure instead of a silently wrong reply. *)
let header_bytes = 20

let write_frame fd payload =
  Util.Failpoint.check "protocol.write";
  let n = String.length payload in
  if n > max_frame_bytes then fail_protocol "frame of %d bytes exceeds the %d-byte limit" n max_frame_bytes;
  let frame = Bytes.create (header_bytes + n) in
  Bytes.set_int32_be frame 0 (Int32.of_int n);
  Bytes.blit_string (Digest.string payload) 0 frame 4 16;
  Bytes.blit_string payload 0 frame header_bytes n;
  (* Chaos: flip a wire byte past the length word (digest or payload —
     the reader must detect either), or tear the frame mid-write. *)
  Util.Failpoint.corrupt_bytes "protocol.write" ~off:4 frame;
  if Util.Failpoint.fires "protocol.torn" then begin
    write_all fd (Bytes.sub frame 0 ((header_bytes + n) / 2));
    Diagnostics.fail Diagnostics.Io_error "injected torn write at failpoint protocol.torn"
  end;
  write_all fd frame

(* Read exactly [n] bytes; [`Eof] only when the stream ends before the
   first byte (a clean close between frames). *)
let read_exactly fd n ~header =
  let buf = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    match Unix.read fd buf !got (n - !got) with
    | 0 -> eof := true
    | k -> got := !got + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> eof := true
  done;
  if !got = n then `Bytes buf
  else if !got = 0 && header then `Eof
  else fail_protocol "truncated frame (got %d of %d bytes)" !got n

let read_frame fd =
  Util.Failpoint.check "protocol.read";
  match read_exactly fd header_bytes ~header:true with
  | `Eof -> None
  | `Bytes hdr ->
      let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if n < 0 || n > max_frame_bytes then
        fail_protocol "frame length %d outside [0, %d]" n max_frame_bytes;
      let digest = Bytes.sub_string hdr 4 16 in
      let payload =
        if n = 0 then ""
        else
          match read_exactly fd n ~header:false with
          | `Eof -> assert false
          | `Bytes payload -> Bytes.unsafe_to_string payload
      in
      if not (String.equal (Digest.string payload) digest) then
        fail_protocol "frame digest mismatch (corrupt frame)";
      Some payload
