module Json = Util.Json
module Diagnostics = Util.Diagnostics

type version = int

let v1 = 1
let v2 = 2
let supported_versions = [ v1; v2 ]

let negotiate peer =
  List.fold_left
    (fun best v -> if List.mem v peer && (best = None || Some v > best) then Some v else best)
    None supported_versions

type params = (string * Json.t) list

type op = Load | Adi | Order | Atpg | Diagnose | Stats | Health | Evict | Shutdown

let op_name = function
  | Load -> "load"
  | Adi -> "adi"
  | Order -> "order"
  | Atpg -> "atpg"
  | Diagnose -> "diagnose"
  | Stats -> "stats"
  | Health -> "health"
  | Evict -> "evict"
  | Shutdown -> "shutdown"

let base_ops = [ Load; Adi; Order; Atpg; Diagnose; Stats; Health; Evict; Shutdown ]

let op_of_name s = List.find_opt (fun o -> String.equal (op_name o) s) base_ops

let batchable = function Adi | Order | Atpg | Diagnose -> true | _ -> false

type call =
  | Single of op * params
  | Batch of op * params list
  | Hello of version list

type request = { id : int; call : call }

let call_name = function
  | Single (op, _) -> op_name op
  | Batch (op, _) -> "batch_" ^ op_name op
  | Hello _ -> "hello"

let min_version = function Single _ | Hello _ -> v1 | Batch _ -> v2

let single ?(id = 1) name params =
  match op_of_name name with
  | Some op -> { id; call = Single (op, params) }
  | None -> invalid_arg (Printf.sprintf "Protocol.single: unknown op %S" name)

let ops =
  List.map op_name base_ops
  @ [ "hello" ]
  @ List.filter_map
      (fun o -> if batchable o then Some ("batch_" ^ op_name o) else None)
      base_ops

type error = { code : string; message : string }

type reply =
  | Result of Json.t
  | Batch_replies of (Json.t, error) result list
  | Welcome of { version : version; versions : version list; server : string }

type response = { id : int; payload : (reply, error) result }

type decode_error = Malformed of string | Unknown_op of { id : int; op : string }

(* --- requests ----------------------------------------------------- *)

(* Parameter objects never carry the envelope fields; stripping them
   here makes decode(encode(r)) the identity even for hostile input. *)
let strip_envelope fields = List.filter (fun (k, _) -> k <> "id" && k <> "op") fields

let request_to_json (r : request) =
  let envelope op tail = Json.Obj (("id", Json.Int r.id) :: ("op", Json.Str op) :: tail) in
  match r.call with
  | Single (op, params) -> envelope (op_name op) params
  | Batch (op, items) ->
      envelope ("batch_" ^ op_name op)
        [ ("requests", Json.Arr (List.map (fun p -> Json.Obj p) items)) ]
  | Hello versions ->
      envelope "hello" [ ("versions", Json.Arr (List.map (fun v -> Json.Int v) versions)) ]

let decode_batch_items params =
  match List.assoc_opt "requests" params with
  | None -> Error (Malformed "batch request has no \"requests\" array")
  | Some (Json.Arr items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Obj fields :: rest -> go (strip_envelope fields :: acc) rest
        | _ -> Error (Malformed "every \"requests\" element must be a parameter object")
      in
      go [] items
  | Some _ -> Error (Malformed "\"requests\" must be an array of parameter objects")

let decode_versions params =
  match List.assoc_opt "versions" params with
  | None -> Ok [ v1 ]  (* a bare hello is a v1 client probing *)
  | Some (Json.Arr vs) ->
      let ints = List.filter_map Json.to_int vs in
      if List.length ints = List.length vs then Ok ints
      else Error (Malformed "\"versions\" must be an array of integers")
  | Some _ -> Error (Malformed "\"versions\" must be an array of integers")

let request_of_json j =
  match j with
  | Json.Obj fields -> (
      match Option.bind (List.assoc_opt "op" fields) Json.to_str with
      | None -> Error (Malformed "request has no \"op\" field")
      | Some name -> (
          let id =
            Option.value ~default:0 (Option.bind (List.assoc_opt "id" fields) Json.to_int)
          in
          let params = strip_envelope fields in
          let wrap call = Ok { id; call } in
          match op_of_name name with
          | Some op -> wrap (Single (op, params))
          | None ->
              if String.equal name "hello" then
                Result.bind (decode_versions params) (fun vs -> wrap (Hello vs))
              else
                let batch_base =
                  if String.length name > 6 && String.sub name 0 6 = "batch_" then
                    op_of_name (String.sub name 6 (String.length name - 6))
                  else None
                in
                (match batch_base with
                | Some op when batchable op ->
                    Result.bind (decode_batch_items params) (fun items ->
                        wrap (Batch (op, items)))
                | _ -> Error (Unknown_op { id; op = name }))))
  | _ -> Error (Malformed "request is not a JSON object")

(* --- responses ---------------------------------------------------- *)

let error_to_json e =
  Json.Obj [ ("code", Json.Str e.code); ("message", Json.Str e.message) ]

let item_to_json = function
  | Ok result -> Json.Obj [ ("ok", Json.Bool true); ("result", result) ]
  | Error e -> Json.Obj [ ("ok", Json.Bool false); ("error", error_to_json e) ]

let response_to_json r =
  let tail =
    match r.payload with
    | Ok (Result result) -> [ ("ok", Json.Bool true); ("result", result) ]
    | Ok (Batch_replies items) ->
        [ ("ok", Json.Bool true); ("batch", Json.Arr (List.map item_to_json items)) ]
    | Ok (Welcome { version; versions; server }) ->
        [ ("ok", Json.Bool true);
          ( "hello",
            Json.Obj
              [ ("version", Json.Int version);
                ("versions", Json.Arr (List.map (fun v -> Json.Int v) versions));
                ("server", Json.Str server) ] ) ]
    | Error e -> [ ("ok", Json.Bool false); ("error", error_to_json e) ]
  in
  Json.Obj (("id", Json.Int r.id) :: tail)

let error_of_json err =
  let str k = Option.bind (Json.member k err) Json.to_str in
  { code = Option.value ~default:"E-protocol" (str "code");
    message = Option.value ~default:"unknown error" (str "message") }

let item_of_json j =
  match Option.bind (Json.member "ok" j) Json.to_bool with
  | Some true -> (
      match Json.member "result" j with
      | Some result -> Ok (Ok result)
      | None -> Error "batch element has no \"result\"")
  | Some false -> (
      match Json.member "error" j with
      | Some err -> Ok (Error (error_of_json err))
      | None -> Error "batch element has no \"error\"")
  | None -> Error "batch element has no boolean \"ok\""

let response_of_json j =
  match j with
  | Json.Obj fields -> (
      let id =
        Option.value ~default:0 (Option.bind (List.assoc_opt "id" fields) Json.to_int)
      in
      match Option.bind (List.assoc_opt "ok" fields) Json.to_bool with
      | Some true -> (
          match
            ( List.assoc_opt "result" fields,
              List.assoc_opt "batch" fields,
              List.assoc_opt "hello" fields )
          with
          | Some result, _, _ -> Ok { id; payload = Ok (Result result) }
          | None, Some (Json.Arr items), _ ->
              let rec go acc = function
                | [] -> Ok { id; payload = Ok (Batch_replies (List.rev acc)) }
                | item :: rest -> (
                    match item_of_json item with
                    | Ok r -> go (r :: acc) rest
                    | Error msg -> Error msg)
              in
              go [] items
          | None, Some _, _ -> Error "\"batch\" is not an array"
          | None, None, Some hello ->
              let version =
                Option.value ~default:v1 (Option.bind (Json.member "version" hello) Json.to_int)
              in
              let versions =
                match Json.member "versions" hello with
                | Some (Json.Arr vs) -> List.filter_map Json.to_int vs
                | _ -> [ version ]
              in
              let server =
                Option.value ~default:""
                  (Option.bind (Json.member "server" hello) Json.to_str)
              in
              Ok { id; payload = Ok (Welcome { version; versions; server }) }
          | None, None, None -> Error "success response has no \"result\", \"batch\" or \"hello\"")
      | Some false -> (
          match List.assoc_opt "error" fields with
          | Some err -> Ok { id; payload = Error (error_of_json err) }
          | None -> Error "failure response has no \"error\"")
      | None -> Error "response has no boolean \"ok\"")
  | _ -> Error "response is not a JSON object"

let error_of_diagnostic (d : Diagnostics.t) =
  { code = Diagnostics.code_string d.Diagnostics.code; message = d.Diagnostics.message }

let diagnostic_of_error e =
  match Diagnostics.code_of_string e.code with
  | Some code -> Diagnostics.make code e.message
  | None ->
      Diagnostics.make Diagnostics.Protocol (Printf.sprintf "%s [%s]" e.message e.code)

(* --- framing ------------------------------------------------------ *)

let max_frame_bytes = 64 * 1024 * 1024

let fail_protocol fmt = Diagnostics.fail Diagnostics.Protocol fmt

let write_all fd bytes =
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    match Unix.write fd bytes !written (n - !written) with
    | 0 -> Diagnostics.fail Diagnostics.Io_error "connection closed mid-write"
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        Diagnostics.fail Diagnostics.Io_error "connection closed by peer"
  done

(* Frame layout: 4-byte big-endian payload length, 16-byte MD5 digest
   of the payload, payload.  The digest turns in-flight corruption into
   a typed E-protocol failure instead of a silently wrong reply. *)
let header_bytes = 20

let write_frame fd payload =
  Util.Failpoint.check "protocol.write";
  let n = String.length payload in
  if n > max_frame_bytes then fail_protocol "frame of %d bytes exceeds the %d-byte limit" n max_frame_bytes;
  let frame = Bytes.create (header_bytes + n) in
  Bytes.set_int32_be frame 0 (Int32.of_int n);
  Bytes.blit_string (Digest.string payload) 0 frame 4 16;
  Bytes.blit_string payload 0 frame header_bytes n;
  (* Chaos: flip a wire byte past the length word (digest or payload —
     the reader must detect either), or tear the frame mid-write. *)
  Util.Failpoint.corrupt_bytes "protocol.write" ~off:4 frame;
  if Util.Failpoint.fires "protocol.torn" then begin
    write_all fd (Bytes.sub frame 0 ((header_bytes + n) / 2));
    Diagnostics.fail Diagnostics.Io_error "injected torn write at failpoint protocol.torn"
  end;
  write_all fd frame

(* Read exactly [n] bytes; [`Eof] only when the stream ends before the
   first byte (a clean close between frames). *)
let read_exactly fd n ~header =
  let buf = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    match Unix.read fd buf !got (n - !got) with
    | 0 -> eof := true
    | k -> got := !got + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> eof := true
  done;
  if !got = n then `Bytes buf
  else if !got = 0 && header then `Eof
  else fail_protocol "truncated frame (got %d of %d bytes)" !got n

let read_frame fd =
  Util.Failpoint.check "protocol.read";
  match read_exactly fd header_bytes ~header:true with
  | `Eof -> None
  | `Bytes hdr ->
      let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if n < 0 || n > max_frame_bytes then
        fail_protocol "frame length %d outside [0, %d]" n max_frame_bytes;
      let digest = Bytes.sub_string hdr 4 16 in
      let payload =
        if n = 0 then ""
        else
          match read_exactly fd n ~header:false with
          | `Eof -> assert false
          | `Bytes payload -> Bytes.unsafe_to_string payload
      in
      if not (String.equal (Digest.string payload) digest) then
        fail_protocol "frame digest mismatch (corrupt frame)";
      Some payload
