(* LRU of prepared setups, content-addressed, with an optional disk
   spill.  The resident set is a short MRU-first association list —
   capacities are tens of entries, far below the crossover where a
   doubly linked hash map would win — and every public operation takes
   the store mutex, so worker lanes share one instance. *)

let store_magic = "ADI-STORE"

(* v2: a digest line over the marshalled payload guards the unmarshal —
   Marshal.from_channel on corrupted bytes is unsafe, so a spill file
   is only deserialised once its contents are proven intact.
   v3: [Collapse.result] grew dominance/expansion-map fields, changing
   the marshalled [Pipeline.setup] layout. *)
let store_version = 3

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  spill_hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  spill_writes : int;
  dict_entries : int;
  dict_hits : int;
  dict_spill_hits : int;
  dict_misses : int;
}

type t = {
  cap : int;
  spill_dir : string option;
  write_through : bool;
  lock : Mutex.t;
  mutable mru : (string * Pipeline.setup) list;  (* most recent first *)
  mutable hits : int;
  mutable spill_hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable spill_writes : int;
  (* Fault-dictionary side-cache: same LRU discipline, same spill
     directory (".dict" suffix), separate counters.  Dictionaries are
     derived artifacts — a lost entry is a rebuild, never an error. *)
  mutable dict_mru : (string * Diagnosis.Dictionary.t) list;
  mutable dict_hits : int;
  mutable dict_spill_hits : int;
  mutable dict_misses : int;
}

let create ?(capacity = 8) ?spill_dir ?(write_through = false) () =
  if capacity < 0 then invalid_arg "Store.create: negative capacity";
  if write_through && spill_dir = None then
    invalid_arg "Store.create: write_through needs a spill_dir";
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    spill_dir;
  { cap = capacity; spill_dir; write_through; lock = Mutex.create (); mru = []; hits = 0;
    spill_hits = 0; misses = 0; insertions = 0; evictions = 0; spill_writes = 0;
    dict_mru = []; dict_hits = 0; dict_spill_hits = 0; dict_misses = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.cap
let length t = locked t (fun () -> List.length t.mru)
let keys t = locked t (fun () -> List.map fst t.mru)

let stats t =
  locked t (fun () ->
      { entries = List.length t.mru; capacity = t.cap; hits = t.hits;
        spill_hits = t.spill_hits; misses = t.misses; insertions = t.insertions;
        evictions = t.evictions; spill_writes = t.spill_writes;
        dict_entries = List.length t.dict_mru; dict_hits = t.dict_hits;
        dict_spill_hits = t.dict_spill_hits; dict_misses = t.dict_misses })

(* --- keying ------------------------------------------------------- *)

let digest_of_circuit c = Checkpoint.digest_of_circuit c

let key ~digest ~config =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ Printf.sprintf "%s/v%d" store_magic store_version; digest;
            Run_config.fingerprint config ]))

let key_of circuit config = key ~digest:(digest_of_circuit circuit) ~config

(* --- spill -------------------------------------------------------- *)

let spill_path dir k = Filename.concat dir (k ^ ".setup")

let spill_write dir k (setup : Pipeline.setup) =
  Util.Failpoint.check "store.spill";
  let payload = Marshal.to_string setup [] in
  let digest = Digest.to_hex (Digest.string payload) in
  (* The failpoint corrupts the bytes after the digest was taken —
     exactly what on-disk rot looks like to a reader. *)
  let payload = Util.Failpoint.corrupt "store.spill" payload in
  Util.Atomic_file.write (spill_path dir k) (fun oc ->
      Printf.fprintf oc "%s v%d\n%s\n" store_magic store_version digest;
      output_string oc payload)

(* A spill file that cannot be read back (truncated, wrong version,
   foreign bytes, digest mismatch) is just a cache miss — never an
   error. *)
let spill_read dir k : Pipeline.setup option =
  let path = spill_path dir k in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            let header = input_line ic in
            if header <> Printf.sprintf "%s v%d" store_magic store_version then None
            else begin
              let digest = input_line ic in
              let len = in_channel_length ic - pos_in ic in
              if len < 0 then None
              else
                let payload = really_input_string ic len in
                if digest <> Digest.to_hex (Digest.string payload) then None
                else Some (Marshal.from_string payload 0 : Pipeline.setup)
            end
          with Failure _ | End_of_file | Sys_error _ -> None)

let spill_remove dir k = try Sys.remove (spill_path dir k) with Sys_error _ -> ()

(* --- resident set ------------------------------------------------- *)

(* A failed spill is a lost cache entry, not a failed request: the
   setup can always be recomputed on the next miss. *)
let try_spill t k setup =
  Option.iter
    (fun dir ->
      match spill_write dir k setup with
      | () -> t.spill_writes <- t.spill_writes + 1
      | exception (Util.Diagnostics.Failed _ | Sys_error _ | Unix.Unix_error _) -> ())
    t.spill_dir

(* Insert under the lock; spill the LRU tail out when over capacity. *)
let admit t k setup =
  if t.cap > 0 && not (List.mem_assoc k t.mru) then begin
    t.mru <- (k, setup) :: t.mru;
    t.insertions <- t.insertions + 1;
    if List.length t.mru > t.cap then begin
      let keep, tail = (List.filteri (fun i _ -> i < t.cap) t.mru, List.nth t.mru t.cap) in
      t.mru <- keep;
      t.evictions <- t.evictions + 1;
      try_spill t (fst tail) (snd tail)
    end
  end

let add t k setup = locked t (fun () -> admit t k setup)

let find t k =
  let resident =
    locked t (fun () ->
        match List.assoc_opt k t.mru with
        | Some setup ->
            t.mru <- (k, setup) :: List.remove_assoc k t.mru;
            t.hits <- t.hits + 1;
            Some setup
        | None -> None)
  in
  match resident with
  | Some _ as hit -> hit
  | None -> (
      match Option.bind t.spill_dir (fun dir -> spill_read dir k) with
      | Some setup ->
          locked t (fun () ->
              t.spill_hits <- t.spill_hits + 1;
              admit t k setup);
          Some setup
      | None ->
          locked t (fun () -> t.misses <- t.misses + 1);
          None)

let find_or_prepare t config circuit =
  let k = key_of circuit config in
  match find t k with
  | Some setup -> (setup, true)
  | None ->
      (* Preparation runs outside the lock: a racing lane may compute
         the same setup, but both values are byte-identical, so
         whichever insertion lands first is correct. *)
      let setup = Pipeline.prepare config circuit in
      add t k setup;
      (* Fleet mode: publish the freshly computed setup to the shared
         spill directory immediately, not only on eviction, so sibling
         workers (and restarts) find it as a second-level hit.  The
         Atomic_file rename discipline makes two workers racing on the
         same key harmless — either complete file is correct. *)
      if t.write_through then locked t (fun () -> try_spill t k setup);
      (setup, false)

let evict t k =
  let dropped =
    locked t (fun () ->
        let had = List.mem_assoc k t.mru in
        t.mru <- List.remove_assoc k t.mru;
        had)
  in
  let spilled =
    match t.spill_dir with
    | Some dir when Sys.file_exists (spill_path dir k) ->
        spill_remove dir k;
        true
    | _ -> false
  in
  dropped || spilled

let clear t =
  let dropped_keys, n =
    locked t (fun () ->
        let ks = List.map fst t.mru in
        let n = List.length ks in
        t.mru <- [];
        (ks, n))
  in
  Option.iter
    (fun dir ->
      List.iter (spill_remove dir) dropped_keys;
      (* Also sweep spill files for entries evicted earlier. *)
      match Sys.readdir dir with
      | entries ->
          Array.iter
            (fun f ->
              if Filename.check_suffix f ".setup" || Filename.check_suffix f ".dict" then
                try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
            entries
      | exception Sys_error _ -> ())
    t.spill_dir;
  locked t (fun () -> t.dict_mru <- []);
  n

(* --- dictionary side-cache ---------------------------------------- *)

let dict_key ~setup_key ~tests_digest =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ Printf.sprintf "%s/v%d" Diagnosis.Dictionary.magic Diagnosis.Dictionary.version;
            setup_key; tests_digest ]))

let dict_spill_path dir k = Filename.concat dir (k ^ ".dict")

(* Dictionary spill rides [Diagnosis.Dictionary.save]/[load], which
   carry their own magic/version/digest header — a bad file is a miss. *)
let try_spill_dict t k dict =
  Option.iter
    (fun dir ->
      match Diagnosis.Dictionary.save dict (dict_spill_path dir k) with
      | () -> t.spill_writes <- t.spill_writes + 1
      | exception (Util.Diagnostics.Failed _ | Sys_error _ | Unix.Unix_error _) -> ())
    t.spill_dir

let admit_dict t k dict =
  if t.cap > 0 && not (List.mem_assoc k t.dict_mru) then begin
    t.dict_mru <- (k, dict) :: t.dict_mru;
    if List.length t.dict_mru > t.cap then begin
      let keep, tail =
        (List.filteri (fun i _ -> i < t.cap) t.dict_mru, List.nth t.dict_mru t.cap)
      in
      t.dict_mru <- keep;
      t.evictions <- t.evictions + 1;
      try_spill_dict t (fst tail) (snd tail)
    end
  end

let find_dict t k =
  let resident =
    locked t (fun () ->
        match List.assoc_opt k t.dict_mru with
        | Some dict ->
            t.dict_mru <- (k, dict) :: List.remove_assoc k t.dict_mru;
            t.dict_hits <- t.dict_hits + 1;
            Some dict
        | None -> None)
  in
  match resident with
  | Some _ as hit -> hit
  | None -> (
      match
        Option.bind t.spill_dir (fun dir -> Diagnosis.Dictionary.load (dict_spill_path dir k))
      with
      | Some dict ->
          locked t (fun () ->
              t.dict_spill_hits <- t.dict_spill_hits + 1;
              admit_dict t k dict);
          Some dict
      | None ->
          locked t (fun () -> t.dict_misses <- t.dict_misses + 1);
          None)

let find_or_build_dict t k build =
  match find_dict t k with
  | Some dict -> (dict, true)
  | None ->
      (* Built outside the lock, like [find_or_prepare]: racing lanes
         compute byte-identical dictionaries, so either insertion is
         correct. *)
      let dict = build () in
      locked t (fun () -> admit_dict t k dict);
      if t.write_through then locked t (fun () -> try_spill_dict t k dict);
      (dict, false)
