(** Request handling: one resident session composes the {!Store} with
    the existing {!Pipeline} entry points.

    A session owns the artifact cache, the request counters and a
    tracer; {!handle} maps one {!Protocol.request} to one
    {!Protocol.response} and {b never raises} — every library error
    (typed diagnostics, invalid flags, I/O failures) becomes a typed
    error reply with a stable [E-...] code, because a resident service
    must survive any single bad request.

    {2 Protocol versions and batches}

    Connection-scoped protocol state (the version negotiated by
    [hello]) lives in a {!conn} value, one per accepted connection;
    direct callers that skip it get a fresh v1 connection per call.
    A [hello] is connection setup, not work: it never bumps the
    request counters, so pure-v1 traffic keeps byte-identical
    counters and stats.

    A batch request ([batch_adi] / [batch_order] / [batch_atpg]) runs
    each parameter set through {e exactly} the single-op path, in
    request order, each item under its own budget and its own error
    capture — so every item's result object is byte-identical to the
    reply of the equivalent v1 op, and one bad item never poisons its
    siblings.  The batch counts as one request; per-item cache
    outcomes still feed the cache hit/miss counters.

    {2 Budgets}

    Each request (and each batch item) runs under a {!Util.Budget}
    deadline: the [budget_s] parameter, or the session-wide default.
    The deadline is checked at phase boundaries, and for [atpg] the
    remaining time is threaded into the engine's run budget so even a
    long generation stops at a fault boundary; expiry is reported as
    an [E-budget] error reply, never a hang or a dead worker.

    {2 Determinism}

    Replies contain no wall-clock fields, and every compute path goes
    through the same [Pipeline]/[Ordering]/[Engine] calls an offline
    run uses — a reply served from a warm cache is byte-identical to
    the reply a cold session (or a cold [Pipeline.run_order_with])
    would produce for the same request.  This is the service's core
    correctness invariant and is pinned by the unit and cram suites.

    All entry points are domain-safe: compute runs lock-free and
    shared state (store, counters, tracer) is published under one
    mutex. *)

type t

val create :
  ?capacity:int ->
  ?spill_dir:string ->
  ?shared_spill:bool ->
  ?jobs:int ->
  ?request_budget_s:float ->
  ?clock:Util.Budget.clock ->
  ?tracer:Util.Trace.t ->
  unit ->
  t
(** [capacity]/[spill_dir] configure the {!Store} (default capacity 8,
    no spill).  [shared_spill] (default false) turns the spill
    directory into a fleet-level second-level store: fresh setups are
    written through immediately so sibling workers sharing the
    directory find them (see {!Store}).  [jobs] (default 1) sizes the
    fault-simulation domain pool for requests that do not set their
    own.  [request_budget_s] is the default per-request deadline
    (default: none).  [tracer] defaults to the current tracer at
    creation time. *)

val store : t -> Store.t
val requests : t -> int
(** Requests handled so far (including failed ones; [hello] excluded). *)

val shed_count : t -> int
(** Requests refused by admission control so far. *)

(** {2 Connection state} *)

type conn
(** Per-connection protocol state: the negotiated version. *)

val new_conn : unit -> conn
(** A fresh connection, at protocol v1 until a [hello] negotiates up. *)

val conn_version : conn -> Protocol.version

(** {2 Request handling} *)

val handle : t -> ?conn:conn -> Protocol.request -> Protocol.response
(** Never raises; see the module doc for the op and error schemas.
    [conn] defaults to a fresh v1 connection. *)

val handle_frame : t -> ?conn:conn -> string -> string * [ `Continue | `Shutdown ]
(** Decode one frame payload, {!handle} it, encode the reply.
    Malformed JSON yields an [E-protocol] error reply with id 0; an
    unknown op echoes the request id and names [conn]'s negotiated
    version.  The directive tells the server loop whether this request
    asked the service to stop. *)

val shed_frame : t -> string -> string
(** The admission-control refusal path: build an [E-overload] error
    reply echoing the request's id (0 when unparseable), bump the shed
    counter and the [service.shed] metric.  The handler never runs. *)

val backend : t -> Server.backend
(** Package this session as a {!Server.backend}: each accepted
    connection gets its own {!conn}, frames route through
    {!handle_frame}, sheds through {!shed_frame}, and the server's
    observability hooks feed the session's metrics. *)

(** {2 Server hooks} *)

val set_runtime : t -> (unit -> (string * Util.Json.t) list) -> unit
(** Install extra [health]-reply fields (in-flight count, lane
    restarts, …) supplied by the embedding server.  Call before
    serving begins. *)

val observe_queue_depth : t -> int -> unit
(** Record an accept-time queue-depth sample into the
    [service.queue_depth] histogram (called by the server). *)

val observe_inflight : t -> int -> unit
(** Record an admission-time in-flight sample into the
    [service.inflight] histogram (called by the server). *)

val note_lane_restart : t -> unit
(** Bump the [service.lane_restarts] counter — an accept lane died
    and was restarted (called by the server). *)
