(** Content-addressed, size-bounded LRU cache of prepared pipeline
    artifacts.

    The paper's preprocessing — random-vector simulation without
    dropping, [ndet]/[D(f)] bookkeeping, the ADI values — is computed
    once per (circuit, preparation config) and then amortised across
    every ordering/ATPG request that follows.  A {!Pipeline.setup}
    bundles exactly those artifacts (parsed circuit, collapsed fault
    universe, vector set U, detection sets, ADI values), so the store
    caches whole setups.

    {2 Keying}

    Entries are content-addressed: {!key} digests the circuit's
    canonical [.bench] rendering together with
    {!Run_config.fingerprint} (seed, pool size, coverage target) under
    a versioned prefix.  Anything that cannot change the prepared
    artifacts — [jobs], engine knobs, observability — is excluded, so
    a warm entry serves every request shape.  Two setups under the same
    key are byte-identical by construction; serving from cache can
    therefore never change a reply.

    {2 Bounds and spill}

    At most [capacity] setups stay resident, in LRU order; a capacity
    of 0 disables the cache entirely (every lookup misses, nothing is
    retained).  With a [spill_dir], evicted entries are written to disk
    through the {!Util.Atomic_file} discipline and transparently
    reloaded (and re-admitted) on a later lookup; corrupt or
    wrong-version spill files are treated as misses.

    With [write_through] (fleet mode), a freshly prepared setup is
    also spilled immediately, so a spill directory {e shared} by
    several worker processes acts as a fleet-level second-level cache:
    a worker that misses its in-process LRU probes the shared spill
    before recomputing.  Concurrent writers are safe — each spill file
    lands via write-fsync-rename-fsync, and racing writers of the same
    content-addressed key produce byte-identical files.

    All operations are domain-safe behind an internal mutex — server
    worker lanes share one store.  The expensive preparation in
    {!find_or_prepare} runs outside the lock; when two lanes race on
    the same cold key, both compute and the first insertion wins (the
    setups are identical, so either is correct). *)

type t

type stats = {
  entries : int;  (** resident entries *)
  capacity : int;
  hits : int;  (** lookups served from memory *)
  spill_hits : int;  (** lookups served by reloading a spill file *)
  misses : int;
  insertions : int;
  evictions : int;  (** entries pushed out by the capacity bound *)
  spill_writes : int;  (** spill files written (eviction + write-through) *)
  dict_entries : int;  (** resident fault dictionaries *)
  dict_hits : int;
  dict_spill_hits : int;
  dict_misses : int;
}

val create : ?capacity:int -> ?spill_dir:string -> ?write_through:bool -> unit -> t
(** Default [capacity] 8.  [spill_dir] is created if missing.
    [write_through] (default false) spills freshly prepared setups
    immediately — the shared-spill fleet mode.
    @raise Invalid_argument on a negative capacity, or when
    [write_through] is requested without a [spill_dir]. *)

val capacity : t -> int
val length : t -> int

val digest_of_circuit : Circuit.t -> string
(** Hex digest of the circuit's canonical [.bench] text (the same
    digest the checkpoint identity block uses). *)

val key : digest:string -> config:Run_config.t -> string
(** The cache key: a hex digest over the versioned store prefix, the
    circuit digest and {!Run_config.fingerprint}.  Stable across field
    reordering and unrelated configuration changes. *)

val key_of : Circuit.t -> Run_config.t -> string
(** [key ~digest:(digest_of_circuit c) ~config]. *)

val find : t -> string -> Pipeline.setup option
(** Memory first (refreshing recency), then the spill directory
    (re-admitting the entry). *)

val add : t -> string -> Pipeline.setup -> unit
(** Insert as most-recent.  A no-op when the key is already resident
    (the existing entry is kept and refreshed) or when capacity is 0. *)

val find_or_prepare : t -> Run_config.t -> Circuit.t -> Pipeline.setup * bool
(** The store's front door: look the (circuit, config) key up; on a
    miss run {!Pipeline.prepare} and insert the result.  Returns the
    setup and whether it was served from cache. *)

val evict : t -> string -> bool
(** Drop one key from memory {e and} its spill file.  Returns whether
    anything was dropped. *)

val clear : t -> int
(** Drop everything (memory and spill files); returns how many entries
    were dropped from memory. *)

val keys : t -> string list
(** Resident keys, most recently used first. *)

val stats : t -> stats

(** {1 Fault-dictionary side-cache}

    The diagnose op derives a {!Diagnosis.Dictionary.t} from a cached
    setup plus a test set.  Dictionaries ride a second LRU with the
    same capacity bound and the same spill directory ([".dict"]
    suffix, {!Diagnosis.Dictionary.save}'s own digest-verified
    format); [clear] drops them alongside the setups. *)

val dict_key : setup_key:string -> tests_digest:string -> string
(** Content address of a dictionary: a digest over the versioned
    dictionary prefix, the setup's cache key and a digest of the test
    set the dictionary is built against. *)

val find_dict : t -> string -> Diagnosis.Dictionary.t option

val find_or_build_dict :
  t -> string -> (unit -> Diagnosis.Dictionary.t) -> Diagnosis.Dictionary.t * bool
(** Lookup, else build outside the lock and admit.  Returns the
    dictionary and whether it was served from cache. *)
