(** Resilient client library for the ADI service.

    A client owns one (lazily established) connection to a server and
    a {!Util.Retry} policy.  {!request} rides through the transient
    failures a fleet guarantees — refused connections, torn or corrupt
    frames (the framing digest turns those into typed [E-protocol]
    failures), reply timeouts, and [E-overload] shedding replies —
    by disconnecting, backing off with full jitter, reconnecting and
    resending.  Anything non-transient propagates immediately.

    Retrying is safe because requests are idempotent by construction:
    the server's artifact cache is content-addressed on the request
    parameters, so a resent [atpg]/[order]/[load] hits the warm cache
    and returns the byte-identical reply the lost one carried.

    Each retry bumps the [client.retries] counter on the client's
    tracer (and the {!retries} accessor), so soaks and benches can
    report how much chaos was actually absorbed. *)

type t

val default_policy : Util.Retry.policy
(** {!Util.Retry.default}: 3 attempts, 50 ms base backoff doubling to
    a 2 s cap, full jitter, no deadlines. *)

val create :
  ?policy:Util.Retry.policy ->
  ?clock:Util.Budget.clock ->
  ?sleep:(float -> unit) ->
  ?seed:int ->
  ?tracer:Util.Trace.t ->
  Server.address ->
  t
(** No connection is made yet — the first {!request} connects.
    [seed] (default 1) drives the backoff jitter; [tracer] defaults to
    {!Util.Trace.null} (clients often live on non-leader domains). *)

val close : t -> unit
(** Drop the connection, if any.  The client may be reused — the next
    request reconnects. *)

val retries : t -> int
(** Total retries performed over the client's lifetime. *)

val request :
  t -> ?timeout_s:float -> string -> (string * Util.Json.t) list ->
  (Util.Json.t, Protocol.error) result
(** [request t op params] sends one request and returns the server's
    reply payload: [Ok result] or a typed error reply (other than
    overload, which is retried).  [timeout_s] overrides the policy's
    overall deadline for this request.
    @raise Util.Diagnostics.Failed when retries are exhausted: the
    last transport failure ([Io_error]/[Protocol]), [Budget_expired]
    on deadline expiry, or [Overload] if the server shed every
    attempt. *)

val raw : t -> ?timeout_s:float -> string -> string
(** One raw payload exchange under the same transport-level retry (no
    reply parsing, no overload backoff) — protocol debugging. *)
