(** Resilient client library for the ADI service.

    A client owns one (lazily established) connection to a server and
    a {!Util.Retry} policy.  Every entry point rides through the
    transient failures a fleet guarantees — refused connections, torn
    or corrupt frames (the framing digest turns those into typed
    [E-protocol] failures), reply timeouts, and [E-overload] shedding
    replies — by disconnecting, backing off with full jitter,
    reconnecting and resending.  Anything non-transient propagates
    immediately.

    Retrying is safe because requests are idempotent by construction:
    the server's artifact cache is content-addressed on the request
    parameters, so a resent [atpg]/[order]/[load] hits the warm cache
    and returns the byte-identical reply the lost one carried.

    {2 The call surface}

    {!call} is the generic entry point: one typed {!Protocol.call} in,
    one typed {!Protocol.reply} or {!Util.Diagnostics.t} out, never an
    exception.  The per-op functions ({!load}, {!order}, {!batch}, …)
    are thin wrappers over it.  {!request} keeps the original
    op-by-name surface (and its raise-on-exhaustion contract) for
    callers that build requests dynamically.

    {2 Version negotiation}

    Negotiation is lazy and per-connection: the first call that needs
    protocol v2 (a batch) sends [hello] automatically and caches the
    welcomed version until the connection drops; v1 calls never pay
    for a handshake.  Against a pre-v2 server the handshake degrades
    gracefully — the unknown-op error marks the connection v1 and v2
    calls return a typed [E-protocol] refusal instead of retrying.

    Each transport retry bumps the [client.retries] counter on the
    client's tracer (and the {!retries} accessor), so soaks and
    benches can report how much chaos was actually absorbed. *)

type t

val default_policy : Util.Retry.policy
(** {!Util.Retry.default}: 3 attempts, 50 ms base backoff doubling to
    a 2 s cap, full jitter, no deadlines. *)

val create :
  ?policy:Util.Retry.policy ->
  ?clock:Util.Budget.clock ->
  ?sleep:(float -> unit) ->
  ?seed:int ->
  ?tracer:Util.Trace.t ->
  Server.address ->
  t
(** No connection is made yet — the first call connects.
    [seed] (default 1) drives the backoff jitter; [tracer] defaults to
    {!Util.Trace.null} (clients often live on non-leader domains). *)

val close : t -> unit
(** Drop the connection, if any (forgetting its negotiated version).
    The client may be reused — the next call reconnects. *)

val retries : t -> int
(** Total transport retries performed over the client's lifetime. *)

val version : t -> Protocol.version option
(** The version negotiated on the current connection, if any. *)

(** {2 Generic calls} *)

val call :
  t -> ?timeout_s:float -> Protocol.call -> (Protocol.reply, Util.Diagnostics.t) result
(** One call, one reply; never raises.  Application errors and
    exhausted transport retries both surface as typed diagnostics
    (via {!Protocol.diagnostic_of_error} for wire errors).
    [timeout_s] overrides the policy's overall deadline. *)

val call_exn :
  t -> ?timeout_s:float -> Protocol.call -> (Protocol.reply, Protocol.error) result
(** Like {!call}, but keeps the two failure planes separate:
    application errors return as wire errors; transport exhaustion
    raises.  The router uses this to tell "the worker answered with an
    error" (forward it) from "the worker is gone" (fail over).
    @raise Util.Diagnostics.Failed when retries are exhausted: the
    last transport failure ([Io_error]/[Protocol]), [Budget_expired]
    on deadline expiry, or [Overload] if the server shed every
    attempt. *)

val pipeline :
  t ->
  ?timeout_s:float ->
  Protocol.call list ->
  (Protocol.reply, Protocol.error) result list
(** Send every call up front on one connection, then collect replies
    matched by id {e in any order} (the v2 multiplexing discipline),
    returning them in request order.  On a mid-stream transport
    failure only the unanswered calls are resent.
    @raise Util.Diagnostics.Failed as {!call_exn}. *)

(** {2 Per-op wrappers} *)

val single :
  t -> ?timeout_s:float -> Protocol.op -> Protocol.params ->
  (Util.Json.t, Util.Diagnostics.t) result

val load : t -> ?timeout_s:float -> Protocol.params -> (Util.Json.t, Util.Diagnostics.t) result
val adi : t -> ?timeout_s:float -> Protocol.params -> (Util.Json.t, Util.Diagnostics.t) result
val order : t -> ?timeout_s:float -> Protocol.params -> (Util.Json.t, Util.Diagnostics.t) result
val atpg : t -> ?timeout_s:float -> Protocol.params -> (Util.Json.t, Util.Diagnostics.t) result
val diagnose : t -> ?timeout_s:float -> Protocol.params -> (Util.Json.t, Util.Diagnostics.t) result
val evict : t -> ?timeout_s:float -> Protocol.params -> (Util.Json.t, Util.Diagnostics.t) result
val stats : t -> ?timeout_s:float -> unit -> (Util.Json.t, Util.Diagnostics.t) result
val health : t -> ?timeout_s:float -> unit -> (Util.Json.t, Util.Diagnostics.t) result
val shutdown : t -> ?timeout_s:float -> unit -> (Util.Json.t, Util.Diagnostics.t) result

val hello : t -> ?timeout_s:float -> unit -> (Protocol.version, Util.Diagnostics.t) result
(** Negotiate explicitly (usually unnecessary — see the module doc). *)

val batch :
  t ->
  ?timeout_s:float ->
  Protocol.op ->
  Protocol.params list ->
  ((Util.Json.t, Protocol.error) result list, Util.Diagnostics.t) result
(** One [batch_*] round-trip; per-item outcomes in request order, each
    byte-identical to the equivalent single op's result.
    @raise Invalid_argument when the op has no batch form. *)

(** {2 Compatibility and debugging} *)

val request :
  t -> ?timeout_s:float -> string -> (string * Util.Json.t) list ->
  (Util.Json.t, Protocol.error) result
(** [request t op params] sends one single-op request by name
    (arbitrary strings pass through, so tests can provoke unknown-op
    errors) and returns the reply payload: [Ok result] or a typed
    error reply (other than overload, which is retried).
    @raise Util.Diagnostics.Failed as {!call_exn}. *)

val raw : t -> ?timeout_s:float -> string -> string
(** One raw payload exchange under the same transport-level retry (no
    reply parsing, no overload backoff) — protocol debugging. *)
