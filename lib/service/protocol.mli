(** The service wire protocol: length-prefixed JSON frames.

    {2 Framing}

    Each message is one frame: a 4-byte big-endian payload length, a
    16-byte MD5 digest of the payload, then that many bytes of UTF-8
    JSON (one value per frame, no trailing newline).  Length-prefixing
    keeps the stream self-delimiting regardless of payload content and
    lets the reader allocate exactly once; frames above
    {!max_frame_bytes} are rejected before allocation so a rogue peer
    cannot balloon the process.  The digest catches in-flight
    corruption: a flipped byte surfaces as a typed [E-protocol]
    failure a resilient client retries, never as a silently wrong
    reply.

    Failpoint sites [protocol.write] (fault/corrupt an outgoing
    frame), [protocol.torn] (short write then drop) and
    [protocol.read] let the chaos suite exercise exactly those
    failures (see {!Util.Failpoint}).

    {2 Requests}

    [{"id": <int>, "op": <string>, ...params}] — every field other than
    [id]/[op] is an op-specific parameter.  Ops: [load], [adi],
    [order], [atpg], [stats], [health], [evict], [shutdown] (see
    [docs/service.md] for the parameter and reply schemas).

    {2 Responses}

    [{"id": <int>, "ok": true, "result": {...}}] on success, or
    [{"id": <int>, "ok": false, "error": {"code": "E-...",
    "message": ...}}] with a stable {!Util.Diagnostics} code slug on
    failure.  The [id] echoes the request (0 when the request was too
    malformed to carry one). *)

type request = {
  id : int;
  op : string;
  params : (string * Util.Json.t) list;  (** everything but [id]/[op] *)
}

type error = { code : string; message : string }

type response = { id : int; payload : (Util.Json.t, error) result }

val ops : string list
(** The known operations, in documentation order. *)

val request_to_json : request -> Util.Json.t
val request_of_json : Util.Json.t -> (request, string) result

val response_to_json : response -> Util.Json.t
val response_of_json : Util.Json.t -> (response, string) result

val error_of_diagnostic : Util.Diagnostics.t -> error
(** Keep the stable code slug and the message; drop the location. *)

(** {1 Framing} *)

val max_frame_bytes : int
(** 64 MiB. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (handles short writes).
    @raise Util.Diagnostics.Failed with code [Protocol] on an oversized
    payload, [Io_error] if the peer closed the connection. *)

val read_frame : Unix.file_descr -> string option
(** Read one complete frame and verify its digest.  [None] on a clean
    EOF at a frame boundary.  @raise Util.Diagnostics.Failed with code
    [Protocol] on a truncated, oversized or corrupt frame. *)
