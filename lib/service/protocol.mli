(** The service wire protocol: typed requests and replies over
    length-prefixed JSON frames.

    {2 Versions}

    Two protocol versions share one wire format.  {b v1} is the
    original one-op-per-round-trip protocol; {b v2} adds the [hello]
    version-negotiation handshake, first-class batch ops
    ([batch_adi] / [batch_order] / [batch_atpg] / [batch_diagnose]:
    many circuits or
    configurations per round-trip, replies in request order), and
    out-of-order replies over one connection (request [id]s already
    make replies attributable; v2 clients may pipeline several frames
    and match replies by [id] in any order).  Every v1 frame is
    byte-identical under v2 — old clients keep working without a
    handshake, and a connection that never sends a v2 op never pays
    for one.

    A v2 client opens with [{"id":1,"op":"hello","versions":[1,2]}];
    the server answers with a [Welcome] naming the highest common
    version ([{"id":1,"ok":true,"hello":{"version":2,...}}]).  Unknown
    ops come back as a typed [E-protocol] error naming the negotiated
    version.

    {2 Framing}

    Each message is one frame: a 4-byte big-endian payload length, a
    16-byte MD5 digest of the payload, then that many bytes of UTF-8
    JSON (one value per frame, no trailing newline).  Length-prefixing
    keeps the stream self-delimiting regardless of payload content and
    lets the reader allocate exactly once; frames above
    {!max_frame_bytes} are rejected before allocation so a rogue peer
    cannot balloon the process.  The digest catches in-flight
    corruption: a flipped byte surfaces as a typed [E-protocol]
    failure a resilient client retries, never as a silently wrong
    reply.

    Failpoint sites [protocol.write] (fault/corrupt an outgoing
    frame), [protocol.torn] (short write then drop) and
    [protocol.read] let the chaos suite exercise exactly those
    failures (see {!Util.Failpoint}).

    {2 Requests}

    [{"id": <int>, "op": <string>, ...params}] — every field other
    than [id]/[op] is an op-specific parameter.  Batch requests carry
    their items in a ["requests"] array of parameter objects:
    [{"id":7,"op":"batch_order","requests":[{"circuit":"c17"},...]}].

    {2 Responses}

    [{"id": <int>, "ok": true, "result": {...}}] on success;
    [{"id": <int>, "ok": true, "batch": [...]}] for a batch, each
    element [{"ok":true,"result":...}] or [{"ok":false,"error":...}]
    in request order; [{"id": <int>, "ok": true, "hello": {...}}] for
    a welcome; or [{"id": <int>, "ok": false, "error": {"code":
    "E-...", "message": ...}}] with a stable {!Util.Diagnostics} code
    slug on failure.  The [id] echoes the request (0 when the request
    was too malformed to carry one). *)

type version = int

val v1 : version
val v2 : version

val supported_versions : version list
(** The versions this build speaks, ascending: [[1; 2]]. *)

val negotiate : version list -> version option
(** Highest version present in both [supported_versions] and the
    peer's list; [None] when the intersection is empty. *)

type params = (string * Util.Json.t) list
(** Everything in a request object besides [id]/[op]. *)

type op = Load | Adi | Order | Atpg | Diagnose | Stats | Health | Evict | Shutdown

val op_name : op -> string
val op_of_name : string -> op option

val batchable : op -> bool
(** Ops with a [batch_*] form: [Adi], [Order], [Atpg], [Diagnose]. *)

type call =
  | Single of op * params  (** one v1 op *)
  | Batch of op * params list
      (** v2: one round-trip, many parameter sets; the op must be
          {!batchable} *)
  | Hello of version list  (** v2 handshake: the versions the client speaks *)

type request = { id : int; call : call }

val call_name : call -> string
(** The wire op string: ["adi"], ["batch_adi"], ["hello"], … *)

val min_version : call -> version
(** The protocol version a call first appears in: 1 for {!Single} and
    {!Hello} (a v1 server answers [hello] with its ordinary
    unknown-op error, which is itself a usable negotiation signal),
    2 for {!Batch}. *)

val single : ?id:int -> string -> params -> request
(** Build a {!Single} request from an op name (default [id] 1).
    @raise Invalid_argument on an unknown op name. *)

val ops : string list
(** Every known op string, v1 ops first — the vocabulary quoted by
    unknown-op error messages. *)

type error = { code : string; message : string }

type reply =
  | Result of Util.Json.t  (** one v1 result object *)
  | Batch_replies of (Util.Json.t, error) result list
      (** per-item outcomes, in request order; an item's failure never
          poisons its siblings *)
  | Welcome of { version : version; versions : version list; server : string }
      (** negotiated version, everything the server speaks, and the
          server's software version *)

type response = { id : int; payload : (reply, error) result }

type decode_error =
  | Malformed of string  (** not a request at all *)
  | Unknown_op of { id : int; op : string }
      (** syntactically a request, but no such op — the reply must
          echo [id] and name the negotiated version *)

val request_to_json : request -> Util.Json.t
val request_of_json : Util.Json.t -> (request, decode_error) result

val response_to_json : response -> Util.Json.t
val response_of_json : Util.Json.t -> (response, string) result

val error_of_diagnostic : Util.Diagnostics.t -> error
(** Keep the stable code slug and the message; drop the location. *)

val diagnostic_of_error : error -> Util.Diagnostics.t
(** Recover a typed diagnostic from a wire error; an unknown code slug
    maps to [Protocol] with the slug preserved in the message. *)

(** {1 Framing} *)

val max_frame_bytes : int
(** 64 MiB. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (handles short writes).
    @raise Util.Diagnostics.Failed with code [Protocol] on an oversized
    payload, [Io_error] if the peer closed the connection. *)

val read_frame : Unix.file_descr -> string option
(** Read one complete frame and verify its digest.  [None] on a clean
    EOF at a frame boundary.  @raise Util.Diagnostics.Failed with code
    [Protocol] on a truncated, oversized or corrupt frame. *)
