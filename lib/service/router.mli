(** The fleet layer: consistent-hash request routing across
    [adi_server] workers.

    A router terminates the same wire {!Protocol} a worker does (plug
    {!backend} into a {!Server}), but instead of computing, it
    forwards: every request that names a circuit is hashed by its
    {e circuit digest} onto a consistent-hash ring of workers, so all
    requests for one circuit land on the same worker — artifact-cache
    affinity for free.  Batch requests are split by target worker,
    forwarded as per-worker sub-batches, and reassembled in request
    order, byte-identical to what a single worker would have answered.

    {2 Liveness and failover}

    Workers start presumed alive.  {!probe} health-checks every worker
    with the existing [health] op and flips liveness both ways — a
    dead worker is skipped by the ring walk (only {e its} keys rehash,
    everyone else's stay put: minimal disruption), a revived worker
    reclaims exactly its old keys.  A forward that exhausts its
    {!Util.Retry} policy with a transport-class failure marks the
    worker dead and fails over to the next live point on the ring;
    typed application errors ([E-flag], [E-budget], per-item batch
    errors) are forwarded verbatim — they are answers, not outages.
    When every worker looks dead the router probes once inline before
    giving up with a typed [E-io].

    {2 Fleet ops}

    [stats] and [evict] fan out to every live worker and aggregate;
    [health] answers from the router's own counters; [hello]
    negotiates the router's protocol version; [shutdown] drains the
    router itself (the [adi_router] binary then optionally drains the
    workers — see {!drain_fleet}). *)

type t

type worker = {
  address : Server.address;
  alive : bool;
  forwarded : int;  (** requests forwarded to this worker so far *)
}

val create :
  ?vnodes:int ->
  ?policy:Util.Retry.policy ->
  ?probe_timeout_s:float ->
  ?clock:Util.Budget.clock ->
  ?tracer:Util.Trace.t ->
  Server.address list ->
  t
(** [vnodes] (default 64) virtual points per worker on the ring —
    more points, smoother key spread.  [policy] (default
    {!Client.default_policy}) governs each forward's transport
    retries; [probe_timeout_s] (default 2.0) bounds one worker
    health-check.
    @raise Invalid_argument on an empty worker list or [vnodes] < 1. *)

val workers : t -> worker list
(** Snapshot, in configuration order. *)

val requests : t -> int
(** Frames handled so far ([hello] excluded, like a worker session). *)

val affinity : t -> int * int
(** [(hits, moves)]: how many routed keys went to the same worker as
    their previous request vs. were rehashed (worker death/revival). *)

val failovers : t -> int
(** Forwards that found their worker dead and moved on. *)

val routing_key : Protocol.params -> string option
(** The affinity key: a digest of the inline ["netlist"] text or the
    ["circuit"] name.  [None] when the request names no circuit. *)

val worker_for : t -> string -> int option
(** The ring lookup: the worker index a routing key maps to, walking
    past dead workers.  [None] when no worker is alive.  Pure — no
    counters move; the cache-affinity property tests call this
    directly. *)

val set_alive : t -> int -> bool -> unit
(** Mark one worker's liveness (what {!probe} and failover do; exposed
    for tests and tooling). *)

val probe : t -> unit
(** Health-check every worker once, updating liveness both ways.
    Never raises. *)

val drain_fleet : t -> unit
(** Best-effort [shutdown] to every worker (alive or not) — the
    whole-fleet graceful drain.  Never raises. *)

val backend : t -> Server.backend
(** Package the router as a {!Server.backend}.  Each accepted
    connection gets its own negotiated version and its own pool of
    per-worker downstream connections (closed on disconnect). *)
