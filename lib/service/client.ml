module Json = Util.Json
module Diagnostics = Util.Diagnostics
module Budget = Util.Budget
module Retry = Util.Retry
module Rng = Util.Rng
module Trace = Util.Trace
module Metrics = Util.Metrics

type t = {
  address : Server.address;
  policy : Retry.policy;
  clock : Budget.clock;
  sleep : float -> unit;
  rng : Rng.t;
  tracer : Trace.t;
  mutable fd : Unix.file_descr option;
  mutable negotiated : Protocol.version option;
      (* the version the *current* connection welcomed us at; reset on
         every disconnect — a fresh connection is unnegotiated *)
  mutable retries : int;
  mutable next_id : int;
}

let default_policy = Retry.default

let create ?(policy = default_policy) ?(clock = Budget.default_clock)
    ?(sleep = Unix.sleepf) ?(seed = 1) ?(tracer = Trace.null) address =
  (* A peer vanishing mid-write must surface as EPIPE, not kill us. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  { address; policy; clock; sleep; rng = Rng.create seed; tracer; fd = None;
    negotiated = None; retries = 0; next_id = 1 }

let retries t = t.retries
let version t = t.negotiated

let close t =
  Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.fd;
  t.fd <- None;
  t.negotiated <- None

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* Normalised connect-failure message (no errno text), so failure
   modes are deterministic across platforms — pinned by the cram
   suite. *)
let connect_fd address =
  let fail_connect name = Diagnostics.fail Diagnostics.Io_error "cannot connect to %s" name in
  match address with
  | Server.Unix_socket path -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      with Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail_connect path)
  | Server.Tcp (host, port) -> (
      let name = Printf.sprintf "%s:%d" host port in
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) -> fail_connect name
          | { Unix.h_addr_list; _ } -> h_addr_list.(0))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
      with Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail_connect name)

let ensure_connected t =
  match t.fd with
  | Some fd -> fd
  | None ->
      let fd = connect_fd t.address in
      t.fd <- Some fd;
      fd

let await_reply fd ~budget =
  let rec wait () =
    let timeout_s =
      if Budget.is_unlimited budget then -1.0
      else Float.max 0.0 (Budget.remaining_s budget)
    in
    match Unix.select [ fd ] [] [] timeout_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    | [], _, _ ->
        Diagnostics.fail Diagnostics.Budget_expired "no reply before the request deadline"
    | _ -> (
        match Protocol.read_frame fd with
        | Some payload -> payload
        | None -> Diagnostics.fail Diagnostics.Io_error "server closed the connection")
  in
  wait ()

(* What is worth a reconnect-and-resend: transport failures, broken
   or corrupt framing, a timed-out attempt, and overload sheds.  A
   typed application error (bad flag, budget reply, …) is a real
   answer and is returned, not retried. *)
let transient = function
  | Diagnostics.Failed d -> (
      match d.Diagnostics.code with
      | Diagnostics.Io_error | Diagnostics.Protocol | Diagnostics.Budget_expired
      | Diagnostics.Overload ->
          true
      | _ -> false)
  | Unix.Unix_error _ | Sys_error _ | End_of_file -> true
  | _ -> false

let note_retry t ~attempt:_ ~delay_s:_ _exn =
  t.retries <- t.retries + 1;
  if Trace.enabled t.tracer then Metrics.incr (Trace.counter t.tracer "client.retries")

let policy_for t timeout_s =
  match timeout_s with
  | None -> t.policy
  | Some s -> { t.policy with Retry.overall_budget_s = Some s }

let with_retry t ?timeout_s f =
  Retry.run ~clock:t.clock ~sleep:t.sleep ~rng:t.rng ~on_retry:(note_retry t)
    (policy_for t timeout_s) ~retryable:transient f

(* One attempt: send, await.  Any failure leaves the stream in an
   unknown state (a stale reply could otherwise answer the next
   request), so the connection is dropped before the retry. *)
let attempt_exchange t payload ~budget =
  let fd = ensure_connected t in
  try
    Protocol.write_frame fd payload;
    await_reply fd ~budget
  with e ->
    close t;
    raise e

let raw t ?timeout_s payload =
  with_retry t ?timeout_s (fun ~attempt:_ ~budget -> attempt_exchange t payload ~budget)

(* --- reply decoding ----------------------------------------------- *)

let decode_response t reply =
  match Result.bind (Json.of_string reply) Protocol.response_of_json with
  | Error msg ->
      close t;
      Diagnostics.fail Diagnostics.Protocol "unreadable reply: %s" msg
  | Ok resp -> resp

let check_reply_id t ~id resp =
  if resp.Protocol.id <> id then begin
    close t;
    Diagnostics.fail Diagnostics.Protocol "reply id %d does not match request id %d"
      resp.Protocol.id id
  end

(* A shed reply is a backoff signal, not an answer. *)
let overload_to_exn = function
  | Error e when e.Protocol.code = Diagnostics.code_string Diagnostics.Overload ->
      Diagnostics.fail Diagnostics.Overload "%s" e.Protocol.message
  | payload -> payload

let note_welcome t = function
  | Ok (Protocol.Welcome { version; _ }) -> t.negotiated <- Some version
  | _ -> ()

(* One full request-reply exchange on the current connection. *)
let exchange t ~budget ~id payload =
  let resp = decode_response t (attempt_exchange t payload ~budget) in
  check_reply_id t ~id resp;
  let payload = overload_to_exn resp.Protocol.payload in
  note_welcome t payload;
  payload

(* --- version negotiation ------------------------------------------ *)

(* Lazy: only a call that needs v2 pays for a handshake, and only once
   per connection.  A pre-v2 server answers [hello] with its ordinary
   unknown-op E-protocol error — itself a usable negotiation signal:
   the connection is marked v1 and v2 calls get a typed refusal. *)
let ensure_negotiated t ~budget =
  match t.negotiated with
  | Some v -> v
  | None -> (
      let id = fresh_id t in
      let payload =
        Json.to_string
          (Protocol.request_to_json { Protocol.id; call = Protocol.Hello Protocol.supported_versions })
      in
      match exchange t ~budget ~id payload with
      | Ok (Protocol.Welcome { version; _ }) -> version
      | Ok _ ->
          close t;
          Diagnostics.fail Diagnostics.Protocol "hello reply was not a welcome"
      | Error e when e.Protocol.code = Diagnostics.code_string Diagnostics.Protocol ->
          t.negotiated <- Some Protocol.v1;
          Protocol.v1
      | Error e -> raise (Diagnostics.Failed (Protocol.diagnostic_of_error e)))

(* --- the generic entry points ------------------------------------- *)

let call_exn t ?timeout_s call =
  let id = fresh_id t in
  let payload = Json.to_string (Protocol.request_to_json { Protocol.id; call }) in
  let needed = Protocol.min_version call in
  with_retry t ?timeout_s (fun ~attempt:_ ~budget ->
      if needed > Protocol.v1 then begin
        let v = ensure_negotiated t ~budget in
        if v < needed then
          (* A real (non-retryable) answer: this server cannot serve
             the call, no matter how often we ask. *)
          Error
            { Protocol.code = Diagnostics.code_string Diagnostics.Protocol;
              message =
                Printf.sprintf "server speaks protocol v%d but %s needs v%d" v
                  (Protocol.call_name call) needed }
        else exchange t ~budget ~id payload
      end
      else exchange t ~budget ~id payload)

let call t ?timeout_s c =
  match call_exn t ?timeout_s c with
  | Ok reply -> Ok reply
  | Error e -> Error (Protocol.diagnostic_of_error e)
  | exception Diagnostics.Failed d -> Error d

(* --- thin wrappers ------------------------------------------------ *)

let unexpected_shape what =
  Error (Diagnostics.make Diagnostics.Protocol (Printf.sprintf "unexpected reply shape for %s" what))

let single t ?timeout_s op params =
  match call t ?timeout_s (Protocol.Single (op, params)) with
  | Ok (Protocol.Result j) -> Ok j
  | Ok _ -> unexpected_shape (Protocol.op_name op)
  | Error d -> Error d

let load t ?timeout_s params = single t ?timeout_s Protocol.Load params
let adi t ?timeout_s params = single t ?timeout_s Protocol.Adi params
let order t ?timeout_s params = single t ?timeout_s Protocol.Order params
let atpg t ?timeout_s params = single t ?timeout_s Protocol.Atpg params
let diagnose t ?timeout_s params = single t ?timeout_s Protocol.Diagnose params
let stats t ?timeout_s () = single t ?timeout_s Protocol.Stats []
let health t ?timeout_s () = single t ?timeout_s Protocol.Health []
let evict t ?timeout_s params = single t ?timeout_s Protocol.Evict params
let shutdown t ?timeout_s () = single t ?timeout_s Protocol.Shutdown []

let hello t ?timeout_s () =
  match call t ?timeout_s (Protocol.Hello Protocol.supported_versions) with
  | Ok (Protocol.Welcome { version; _ }) -> Ok version
  | Ok _ -> unexpected_shape "hello"
  | Error d -> Error d

let batch t ?timeout_s op items =
  if not (Protocol.batchable op) then
    invalid_arg (Printf.sprintf "Client.batch: op %s has no batch form" (Protocol.op_name op));
  match call t ?timeout_s (Protocol.Batch (op, items)) with
  | Ok (Protocol.Batch_replies rs) -> Ok rs
  | Ok _ -> unexpected_shape ("batch_" ^ Protocol.op_name op)
  | Error d -> Error d

(* Compatibility surface: op by name, reply payload or typed wire
   error, transport exhaustion raised — the original v1 client
   contract, byte-identical on the wire.  Arbitrary op strings pass
   through untyped (how the test suite provokes unknown-op errors). *)
let request t ?timeout_s op params =
  let id = fresh_id t in
  let payload =
    Json.to_string (Json.Obj (("id", Json.Int id) :: ("op", Json.Str op) :: params))
  in
  with_retry t ?timeout_s (fun ~attempt:_ ~budget ->
      match exchange t ~budget ~id payload with
      | Ok (Protocol.Result j) -> Ok j
      | Ok _ ->
          close t;
          Diagnostics.fail Diagnostics.Protocol "unexpected reply shape for op %S" op
      | Error e -> Error e)

(* --- pipelining --------------------------------------------------- *)

(* Send every call up front, then match replies by id in whatever
   order the peer produces them — the v2 multiplexing discipline.
   Replies already received survive a mid-stream reconnect: only the
   unanswered calls are resent (safe: every op is idempotent). *)
let pipeline t ?timeout_s calls =
  match calls with
  | [] -> []
  | _ ->
      let ids = List.map (fun call -> (fresh_id t, call)) calls in
      let results : (int, (Protocol.reply, Protocol.error) result) Hashtbl.t =
        Hashtbl.create (List.length ids)
      in
      with_retry t ?timeout_s (fun ~attempt:_ ~budget ->
          if List.exists (fun (_, c) -> Protocol.min_version c > Protocol.v1) ids then
            ignore (ensure_negotiated t ~budget : Protocol.version);
          let pending = List.filter (fun (id, _) -> not (Hashtbl.mem results id)) ids in
          let fd = ensure_connected t in
          try
            List.iter
              (fun (id, call) ->
                Protocol.write_frame fd
                  (Json.to_string (Protocol.request_to_json { Protocol.id; call })))
              pending;
            let remaining = ref (List.length pending) in
            while !remaining > 0 do
              let resp = decode_response t (await_reply fd ~budget) in
              if
                (not (List.mem_assoc resp.Protocol.id ids))
                || Hashtbl.mem results resp.Protocol.id
              then begin
                close t;
                Diagnostics.fail Diagnostics.Protocol "unexpected reply id %d" resp.Protocol.id
              end;
              let payload = overload_to_exn resp.Protocol.payload in
              note_welcome t payload;
              Hashtbl.replace results resp.Protocol.id payload;
              decr remaining
            done
          with e ->
            close t;
            raise e);
      List.map (fun (id, _) -> Hashtbl.find results id) ids
