module Json = Util.Json
module Diagnostics = Util.Diagnostics
module Budget = Util.Budget
module Retry = Util.Retry
module Rng = Util.Rng
module Trace = Util.Trace
module Metrics = Util.Metrics

type t = {
  address : Server.address;
  policy : Retry.policy;
  clock : Budget.clock;
  sleep : float -> unit;
  rng : Rng.t;
  tracer : Trace.t;
  mutable fd : Unix.file_descr option;
  mutable retries : int;
  mutable next_id : int;
}

let default_policy = Retry.default

let create ?(policy = default_policy) ?(clock = Budget.default_clock)
    ?(sleep = Unix.sleepf) ?(seed = 1) ?(tracer = Trace.null) address =
  (* A peer vanishing mid-write must surface as EPIPE, not kill us. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  { address; policy; clock; sleep; rng = Rng.create seed; tracer; fd = None;
    retries = 0; next_id = 1 }

let retries t = t.retries

let close t =
  Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.fd;
  t.fd <- None

(* Normalised connect-failure message (no errno text), so failure
   modes are deterministic across platforms — pinned by the cram
   suite. *)
let connect_fd address =
  let fail_connect name = Diagnostics.fail Diagnostics.Io_error "cannot connect to %s" name in
  match address with
  | Server.Unix_socket path -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      with Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail_connect path)
  | Server.Tcp (host, port) -> (
      let name = Printf.sprintf "%s:%d" host port in
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) -> fail_connect name
          | { Unix.h_addr_list; _ } -> h_addr_list.(0))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
      with Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail_connect name)

let ensure_connected t =
  match t.fd with
  | Some fd -> fd
  | None ->
      let fd = connect_fd t.address in
      t.fd <- Some fd;
      fd

let await_reply fd ~budget =
  let rec wait () =
    let timeout_s =
      if Budget.is_unlimited budget then -1.0
      else Float.max 0.0 (Budget.remaining_s budget)
    in
    match Unix.select [ fd ] [] [] timeout_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    | [], _, _ ->
        Diagnostics.fail Diagnostics.Budget_expired "no reply before the request deadline"
    | _ -> (
        match Protocol.read_frame fd with
        | Some payload -> payload
        | None -> Diagnostics.fail Diagnostics.Io_error "server closed the connection")
  in
  wait ()

(* What is worth a reconnect-and-resend: transport failures, broken
   or corrupt framing, a timed-out attempt, and overload sheds.  A
   typed application error (bad flag, budget reply, …) is a real
   answer and is returned, not retried. *)
let transient = function
  | Diagnostics.Failed d -> (
      match d.Diagnostics.code with
      | Diagnostics.Io_error | Diagnostics.Protocol | Diagnostics.Budget_expired
      | Diagnostics.Overload ->
          true
      | _ -> false)
  | Unix.Unix_error _ | Sys_error _ | End_of_file -> true
  | _ -> false

let note_retry t ~attempt:_ ~delay_s:_ _exn =
  t.retries <- t.retries + 1;
  if Trace.enabled t.tracer then Metrics.incr (Trace.counter t.tracer "client.retries")

let policy_for t timeout_s =
  match timeout_s with
  | None -> t.policy
  | Some s -> { t.policy with Retry.overall_budget_s = Some s }

let with_retry t ?timeout_s f =
  Retry.run ~clock:t.clock ~sleep:t.sleep ~rng:t.rng ~on_retry:(note_retry t)
    (policy_for t timeout_s) ~retryable:transient f

(* One attempt: send, await.  Any failure leaves the stream in an
   unknown state (a stale reply could otherwise answer the next
   request), so the connection is dropped before the retry. *)
let attempt_exchange t payload ~budget =
  let fd = ensure_connected t in
  try
    Protocol.write_frame fd payload;
    await_reply fd ~budget
  with e ->
    close t;
    raise e

let raw t ?timeout_s payload =
  with_retry t ?timeout_s (fun ~attempt:_ ~budget -> attempt_exchange t payload ~budget)

let request t ?timeout_s op params =
  let id = t.next_id in
  t.next_id <- id + 1;
  let payload = Json.to_string (Protocol.request_to_json { Protocol.id; op; params }) in
  with_retry t ?timeout_s (fun ~attempt:_ ~budget ->
      let reply = attempt_exchange t payload ~budget in
      match Result.bind (Json.of_string reply) Protocol.response_of_json with
      | Error msg ->
          close t;
          Diagnostics.fail Diagnostics.Protocol "unreadable reply: %s" msg
      | Ok resp ->
          if resp.Protocol.id <> id then begin
            close t;
            Diagnostics.fail Diagnostics.Protocol "reply id %d does not match request id %d"
              resp.Protocol.id id
          end;
          (match resp.Protocol.payload with
          | Error e when e.Protocol.code = Diagnostics.code_string Diagnostics.Overload ->
              (* Shed by admission control: back off and try again. *)
              Diagnostics.fail Diagnostics.Overload "%s" e.Protocol.message
          | payload -> payload))
