module Json = Util.Json
module Diagnostics = Util.Diagnostics
module Budget = Util.Budget
module Trace = Util.Trace
module Metrics = Util.Metrics

type t = {
  store : Store.t;
  jobs : int;
  request_budget_s : float option;
  clock : Budget.clock;
  tracer : Trace.t;
  lock : Mutex.t;  (* guards the counters and every tracer touch *)
  created_s : float;  (* clock reading at creation, for health uptime *)
  mutable n_requests : int;
  mutable n_errors : int;
  mutable n_shed : int;  (* requests refused by admission control *)
  mutable spec_committed : int;  (* speculative ATPG totals across requests *)
  mutable spec_wasted : int;
  (* Collapse-stage totals over fresh (non-cached) preparations. *)
  mutable collapse_full : int;
  mutable collapse_classes : int;
  mutable collapse_prime : int;
  mutable collapse_probes : int;
  mutable runtime : unit -> (string * Json.t) list;
      (* extra health fields from the embedding server (in-flight
         count, lane restarts, …) *)
}

(* Per-connection protocol state.  The negotiated version starts at 1
   — a connection that never says [hello] is a v1 connection — and
   only a successful handshake moves it. *)
type conn = { mutable version : Protocol.version }

let new_conn () = { version = Protocol.v1 }
let conn_version conn = conn.version

let create ?(capacity = 8) ?spill_dir ?(shared_spill = false) ?(jobs = 1) ?request_budget_s
    ?(clock = Budget.default_clock) ?tracer () =
  if jobs < 1 then invalid_arg "Session.create: jobs must be at least 1";
  let tracer = match tracer with Some tr -> tr | None -> Trace.current () in
  { store = Store.create ~capacity ?spill_dir ~write_through:shared_spill (); jobs;
    request_budget_s; clock; tracer;
    lock = Mutex.create (); created_s = clock (); n_requests = 0; n_errors = 0; n_shed = 0;
    spec_committed = 0; spec_wasted = 0;
    collapse_full = 0; collapse_classes = 0; collapse_prime = 0; collapse_probes = 0;
    runtime = (fun () -> []) }

let store t = t.store

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let requests t = locked t (fun () -> t.n_requests)
let shed_count t = locked t (fun () -> t.n_shed)

let set_runtime t f = t.runtime <- f

let observe_queue_depth t depth =
  locked t (fun () ->
      Metrics.observe (Trace.histogram t.tracer "service.queue_depth") (float_of_int depth))

let observe_inflight t n =
  locked t (fun () ->
      Metrics.observe (Trace.histogram t.tracer "service.inflight") (float_of_int n))

let note_lane_restart t =
  locked t (fun () -> Metrics.incr (Trace.counter t.tracer "service.lane_restarts"))

(* --- parameter decoding ------------------------------------------- *)

let fail_protocol fmt = Diagnostics.fail Diagnostics.Protocol fmt

let param params k = List.assoc_opt k params

let typed_param params k convert ~expected =
  match param params k with
  | None -> None
  | Some v -> (
      match convert v with
      | Some x -> Some x
      | None -> fail_protocol "parameter %S must be %s" k expected)

let int_param params k = typed_param params k Json.to_int ~expected:"an integer"
let float_param params k = typed_param params k Json.to_float ~expected:"a number"
let str_param params k = typed_param params k Json.to_str ~expected:"a string"

(* The request's Run_config: session defaults overlaid with the
   explicit parameters, validated by the [with_*] builders so
   out-of-range values surface as the same [E-flag] diagnostics the
   CLI reports. *)
let config_of_params t params =
  let apply get set cfg = match get with Some v -> set v cfg | None -> cfg in
  Run_config.default
  |> Run_config.with_jobs t.jobs
  |> apply (int_param params "seed") Run_config.with_seed
  |> apply (int_param params "pool") Run_config.with_pool
  |> apply (float_param params "target_coverage") Run_config.with_target_coverage
  |> apply (int_param params "jobs") Run_config.with_jobs
  |> apply (int_param params "block_width") Run_config.with_block_width
  |> apply (int_param params "window") (fun w -> Run_config.with_window (Some w))
  |> apply (str_param params "kernel") Run_flags.with_kernel_name
  |> apply (str_param params "order") Run_flags.with_order_name
  |> apply (int_param params "backtracks") Run_config.with_backtrack_limit
  |> apply (int_param params "retries") Run_config.with_retries

(* Mirrors the CLI's circuit resolution: an inline netlist, a .bench /
   .blif file path, or a suite name. *)
let resolve_circuit params =
  match (str_param params "netlist", str_param params "circuit") with
  | Some text, _ -> Bench_format.parse_string ~title:"netlist" text
  | None, Some spec ->
      if Sys.file_exists spec then
        if Filename.check_suffix spec ".blif" then Blif_format.parse_file spec
        else Bench_format.parse_file spec
      else Suite.build_by_name spec
  | None, None -> fail_protocol "request needs a \"circuit\" name or an inline \"netlist\""

let budget_of_params t params =
  let seconds =
    match float_param params "budget_s" with Some s -> Some s | None -> t.request_budget_s
  in
  (match seconds with
  | Some s when s < 0.0 ->
      Diagnostics.fail Diagnostics.Invalid_flag "budget_s must be non-negative (got %g)" s
  | _ -> ());
  Budget.of_seconds_opt ~clock:t.clock seconds

let check_budget budget ~phase =
  if Budget.expired budget then
    Diagnostics.fail Diagnostics.Budget_expired "request budget expired %s" phase

(* --- op handlers -------------------------------------------------- *)

let setup_reply_fields key cached (setup : Pipeline.setup) =
  [ ("key", Json.Str key); ("cached", Json.Bool cached);
    ("circuit", Json.Str (Circuit.title setup.Pipeline.circuit));
    ("faults", Json.Int (Fault_list.count setup.Pipeline.faults)) ]

let prepared t params budget =
  check_budget budget ~phase:"before preparation";
  let circuit = resolve_circuit params in
  let cfg = config_of_params t params in
  let setup, cached = Store.find_or_prepare t.store cfg circuit in
  check_budget budget ~phase:"during preparation";
  if not cached then begin
    let st = setup.Pipeline.collapse.Collapse.stages in
    locked t (fun () ->
        t.collapse_full <- t.collapse_full + st.Collapse.full;
        t.collapse_classes <- t.collapse_classes + st.Collapse.equivalence;
        t.collapse_prime <- t.collapse_prime + st.Collapse.prime;
        t.collapse_probes <- t.collapse_probes + st.Collapse.probes)
  end;
  (cfg, Store.key_of circuit cfg, setup, cached)

let collapse_fields (setup : Pipeline.setup) =
  let r = setup.Pipeline.collapse in
  let st = r.Collapse.stages in
  ( "collapse",
    Json.Obj
      [ ("full", Json.Int st.Collapse.full);
        ("equivalence", Json.Int st.Collapse.equivalence);
        ("prime", Json.Int st.Collapse.prime);
        ("checkpoints", Json.Int st.Collapse.checkpoints);
        ("probes", Json.Int st.Collapse.probes);
        ("equivalence_ratio", Json.Float (Collapse.collapse_ratio r));
        ("dominance_ratio", Json.Float (Collapse.dominance_ratio r)) ] )

let handle_load t params budget =
  let _cfg, key, setup, cached = prepared t params budget in
  let sel = setup.Pipeline.selection in
  Json.Obj
    (setup_reply_fields key cached setup
    @ [ ("u_size", Json.Int (Patterns.count sel.Adi_index.u));
        ("pool_detected", Json.Int sel.Adi_index.pool_detected);
        ("u_coverage", Json.Float (Adi_index.coverage_of_u setup.Pipeline.adi));
        collapse_fields setup ])

let handle_adi t params budget =
  let _cfg, key, setup, cached = prepared t params budget in
  let adi = setup.Pipeline.adi in
  let min_max =
    match Adi_index.min_max adi with
    | Some (lo, hi) ->
        [ ("adi_min", Json.Int lo); ("adi_max", Json.Int hi);
          ("ratio", Json.Float (float_of_int hi /. float_of_int lo)) ]
    | None -> [ ("adi_min", Json.Null); ("adi_max", Json.Null); ("ratio", Json.Null) ]
  in
  Json.Obj
    (setup_reply_fields key cached setup
    @ [ ("u_size", Json.Int (Patterns.count setup.Pipeline.selection.Adi_index.u));
        ("u_coverage", Json.Float (Adi_index.coverage_of_u adi)) ]
    @ min_max)

let handle_order t params budget =
  let cfg, key, setup, cached = prepared t params budget in
  let order = Ordering.order cfg.Run_config.order setup.Pipeline.adi in
  check_budget budget ~phase:"during ordering";
  let shown =
    match int_param params "limit" with
    | Some limit when limit >= 0 && limit < Array.length order -> Array.sub order 0 limit
    | _ -> order
  in
  Json.Obj
    (setup_reply_fields key cached setup
    @ [ ("order", Json.Str (Ordering.to_string cfg.Run_config.order));
        ("permutation", Json.Arr (Array.to_list (Array.map (fun i -> Json.Int i) shown))) ])

let handle_atpg t params budget =
  let cfg, key, setup, cached = prepared t params budget in
  (* Thread what remains of the request deadline into the engine's run
     budget, so a long generation stops at a fault boundary instead of
     outliving the request. *)
  let ecfg = Run_config.engine_config cfg in
  let ecfg =
    if Budget.is_unlimited budget then ecfg
    else
      let remaining = Budget.remaining_s budget in
      let run_budget =
        match ecfg.Engine.time_budget_s with
        | Some s -> Float.min s remaining
        | None -> remaining
      in
      { ecfg with Engine.time_budget_s = Some run_budget }
  in
  let run = Pipeline.run_order_with ecfg setup cfg.Run_config.order in
  let e = run.Pipeline.engine in
  if e.Engine.interrupted then
    Diagnostics.fail Diagnostics.Budget_expired "request budget expired during test generation";
  locked t (fun () ->
      t.spec_committed <- t.spec_committed + e.Engine.spec_committed;
      t.spec_wasted <- t.spec_wasted + e.Engine.spec_wasted);
  Json.Obj
    (setup_reply_fields key cached setup
    @ [ ("order", Json.Str (Ordering.to_string cfg.Run_config.order));
        ("tests",
         Json.Arr
           (Array.to_list (Array.map (fun s -> Json.Str s) (Patterns.to_strings e.Engine.tests))));
        ("test_count", Json.Int (Patterns.count e.Engine.tests));
        ("coverage", Json.Float (Engine.coverage setup.Pipeline.faults e));
        ("untestable", Json.Int (List.length e.Engine.untestable));
        ("aborted", Json.Int (List.length e.Engine.aborted));
        ("out_of_budget", Json.Int (List.length e.Engine.out_of_budget));
        ("retry_recovered", Json.Int e.Engine.retry_recovered);
        ("window", Json.Int ecfg.Engine.window);
        ("spec_dispatched", Json.Int e.Engine.spec_dispatched);
        ("spec_committed", Json.Int e.Engine.spec_committed);
        ("spec_wasted", Json.Int e.Engine.spec_wasted) ])

(* --- diagnose ----------------------------------------------------- *)

(* Tests the dictionary is built against: an explicit ["tests"] array
   of '0'/'1' vectors, or the ATPG test set for the request's
   configuration (deterministic given the setup key, so the dictionary
   cache key only needs the marker). *)
let diagnose_tests t params budget cfg (setup : Pipeline.setup) =
  match param params "tests" with
  | Some (Json.Arr rows) ->
      let strs =
        List.map
          (fun j ->
            match Json.to_str j with
            | Some s -> s
            | None -> fail_protocol "\"tests\" must be an array of '0'/'1' vector strings")
          rows
      in
      if strs = [] then fail_protocol "\"tests\" must not be empty";
      let pats =
        match Patterns.of_strings (Array.of_list strs) with
        | pats -> pats
        | exception Invalid_argument msg -> fail_protocol "bad \"tests\": %s" msg
      in
      if Patterns.n_inputs pats <> Array.length (Circuit.inputs setup.Pipeline.circuit) then
        fail_protocol "\"tests\" vectors have %d bits but the circuit has %d inputs"
          (Patterns.n_inputs pats)
          (Array.length (Circuit.inputs setup.Pipeline.circuit));
      (pats, Digest.to_hex (Digest.string (String.concat "\n" strs)))
  | Some _ -> fail_protocol "\"tests\" must be an array of '0'/'1' vector strings"
  | None ->
      let ecfg = Run_config.engine_config cfg in
      let ecfg =
        if Budget.is_unlimited budget then ecfg
        else
          let remaining = Budget.remaining_s budget in
          let run_budget =
            match ecfg.Engine.time_budget_s with
            | Some s -> Float.min s remaining
            | None -> remaining
          in
          { ecfg with Engine.time_budget_s = Some run_budget }
      in
      let run = Pipeline.run_order_with ecfg setup cfg.Run_config.order in
      let e = run.Pipeline.engine in
      if e.Engine.interrupted then
        Diagnostics.fail Diagnostics.Budget_expired
          "request budget expired during test generation";
      locked t (fun () ->
          t.spec_committed <- t.spec_committed + e.Engine.spec_committed;
          t.spec_wasted <- t.spec_wasted + e.Engine.spec_wasted);
      (e.Engine.tests, Printf.sprintf "atpg:%s" (Ordering.to_string cfg.Run_config.order))

let decode_fails ~applied params =
  match param params "fails" with
  | None -> [||]
  | Some (Json.Arr items) ->
      let fails =
        List.map
          (fun j ->
            match Json.to_int j with
            | Some i ->
                if i < 0 || i >= applied then
                  fail_protocol "failing test %d outside the applied range [0,%d)" i applied
                else i
            | None -> fail_protocol "\"fails\" must be an array of test indices")
          items
      in
      Array.of_list fails
  | Some _ -> fail_protocol "\"fails\" must be an array of test indices"

let decode_responses dict params =
  let nout = Diagnosis.Dictionary.output_count dict in
  let nt = Diagnosis.Dictionary.test_count dict in
  match param params "responses" with
  | None -> []
  | Some (Json.Arr items) ->
      List.map
        (fun j ->
          match j with
          | Json.Obj fields ->
              let test =
                match Option.bind (List.assoc_opt "test" fields) Json.to_int with
                | Some i when i >= 0 && i < nt -> i
                | Some i -> fail_protocol "response test %d outside [0,%d)" i nt
                | None -> fail_protocol "every response needs an integer \"test\""
              in
              let outs =
                match Option.bind (List.assoc_opt "outputs" fields) Json.to_str with
                | Some s when String.length s = nout -> s
                | Some s ->
                    fail_protocol "response \"outputs\" has %d bits but the circuit has %d outputs"
                      (String.length s) nout
                | None -> fail_protocol "every response needs an \"outputs\" bit string"
              in
              let vals =
                Array.init nout (fun i ->
                    match outs.[i] with
                    | '0' -> false
                    | '1' -> true
                    | c -> fail_protocol "response \"outputs\" has a non-binary character %C" c)
              in
              (test, vals)
          | _ -> fail_protocol "\"responses\" must be an array of {test, outputs} objects")
        items
  | Some _ -> fail_protocol "\"responses\" must be an array of {test, outputs} objects"

let handle_diagnose t params budget =
  let cfg, key, setup, cached = prepared t params budget in
  let tests, tests_digest = diagnose_tests t params budget cfg setup in
  check_budget budget ~phase:"before dictionary build";
  let dkey = Store.dict_key ~setup_key:key ~tests_digest in
  let dict, dict_cached =
    Store.find_or_build_dict t.store dkey (fun () ->
        Diagnosis.Dictionary.build ~jobs:cfg.Run_config.jobs
          ~block_width:cfg.Run_config.block_width setup.Pipeline.faults tests)
  in
  check_budget budget ~phase:"during dictionary build";
  let nt = Diagnosis.Dictionary.test_count dict in
  let applied =
    match int_param params "applied" with
    | None -> nt
    | Some a when a >= 0 && a <= nt -> a
    | Some a -> fail_protocol "\"applied\" must be within [0,%d] (got %d)" nt a
  in
  let fails = decode_fails ~applied params in
  let responses = decode_responses dict params in
  (* Replay the observed log through an incremental session: pass/fail
     verdicts for the applied prefix, full per-output words where the
     tester reported them. *)
  let session = Diagnosis.Diagnoser.start dict in
  let failing = Array.make nt false in
  Array.iter (fun i -> failing.(i) <- true) fails;
  let with_outputs = Array.make nt false in
  List.iter (fun (test, _) -> with_outputs.(test) <- true) responses;
  for test = 0 to applied - 1 do
    if not with_outputs.(test) then
      Diagnosis.Diagnoser.observe session ~test
        (if failing.(test) then Diagnosis.Diagnoser.Fail else Diagnosis.Diagnoser.Pass)
  done;
  List.iter
    (fun (test, vals) ->
      Diagnosis.Diagnoser.observe session ~test (Diagnosis.Diagnoser.Outputs vals))
    responses;
  let survivors = Diagnosis.Diagnoser.survivors session in
  let limit = Option.value ~default:10 (int_param params "limit") in
  if limit < 0 then fail_protocol "\"limit\" must be non-negative";
  let candidates = Diagnosis.Diagnoser.ranking ~limit session in
  let exact =
    (* Exact signature matches of the full pass/fail log — meaningful
       only when every test was applied. *)
    if applied = nt && responses = [] then
      Diagnosis.Diagnoser.exact dict (Diagnosis.Diagnoser.signature_of_fails dict fails)
    else []
  in
  Json.Obj
    (setup_reply_fields key cached setup
    @ [ ( "dictionary",
          Json.Obj
            [ ("key", Json.Str dkey); ("cached", Json.Bool dict_cached);
              ("tests", Json.Int nt);
              ("outputs", Json.Int (Diagnosis.Dictionary.output_count dict));
              ("classes", Json.Int (Diagnosis.Dictionary.resolution dict)) ] );
        ("applied", Json.Int applied);
        ("observed_fails", Json.Int (Array.length fails));
        ("observed_responses", Json.Int (List.length responses));
        ("survivors", Json.Int (List.length survivors));
        ("exact", Json.Arr (List.map (fun fi -> Json.Int fi) exact));
        ( "candidates",
          Json.Arr
            (List.map
               (fun c ->
                 Json.Obj
                   [ ("fault", Json.Int c.Diagnosis.Diagnoser.fault);
                     ("name", Json.Str c.Diagnosis.Diagnoser.name);
                     ("distance", Json.Int c.Diagnosis.Diagnoser.distance) ])
               candidates) ) ])

let handle_stats t =
  let s = Store.stats t.store in
  let requests, errors, spec_committed, spec_wasted, cf, cc, cp, cb =
    locked t (fun () ->
        ( t.n_requests, t.n_errors, t.spec_committed, t.spec_wasted,
          t.collapse_full, t.collapse_classes, t.collapse_prime, t.collapse_probes ))
  in
  Json.Obj
    [ ("version", Json.Str Util.Version.version); ("requests", Json.Int requests);
      ("errors", Json.Int errors); ("entries", Json.Int s.Store.entries);
      ("capacity", Json.Int s.Store.capacity); ("hits", Json.Int s.Store.hits);
      ("spill_hits", Json.Int s.Store.spill_hits); ("misses", Json.Int s.Store.misses);
      ("insertions", Json.Int s.Store.insertions); ("evictions", Json.Int s.Store.evictions);
      ("spill_writes", Json.Int s.Store.spill_writes);
      ("dict_entries", Json.Int s.Store.dict_entries);
      ("dict_hits", Json.Int s.Store.dict_hits);
      ("dict_spill_hits", Json.Int s.Store.dict_spill_hits);
      ("dict_misses", Json.Int s.Store.dict_misses);
      ("jobs", Json.Int t.jobs);
      ("spec_committed", Json.Int spec_committed); ("spec_wasted", Json.Int spec_wasted);
      (* Fault-universe reduction over fresh preparations: full
         universe, equivalence classes, dominance survivors, and the
         expansion-map (probe) size the simulator actually visits. *)
      ("collapse_full", Json.Int cf); ("collapse_classes", Json.Int cc);
      ("collapse_prime", Json.Int cp); ("collapse_probes", Json.Int cb) ]

let handle_health t =
  let s = Store.stats t.store in
  let requests, errors, shed =
    locked t (fun () -> (t.n_requests, t.n_errors, t.n_shed))
  in
  Json.Obj
    ([ ("version", Json.Str Util.Version.version);
       ("uptime_s", Json.Float (t.clock () -. t.created_s));
       ("requests", Json.Int requests); ("errors", Json.Int errors);
       ("shed", Json.Int shed); ("entries", Json.Int s.Store.entries);
       ("capacity", Json.Int s.Store.capacity); ("jobs", Json.Int t.jobs) ]
    @ t.runtime ())

let handle_evict t params =
  match str_param params "key" with
  | Some key -> Json.Obj [ ("evicted", Json.Bool (Store.evict t.store key)) ]
  | None -> Json.Obj [ ("cleared", Json.Int (Store.clear t.store)) ]

(* --- dispatch ----------------------------------------------------- *)

let dispatch_single t op params =
  (* Chaos: a delay here models a slow handler; an error, a handler
     blowing up — both must surface as ordinary typed replies. *)
  Util.Failpoint.check "session.handle";
  let budget () = budget_of_params t params in
  match op with
  | Protocol.Load -> handle_load t params (budget ())
  | Protocol.Adi -> handle_adi t params (budget ())
  | Protocol.Order -> handle_order t params (budget ())
  | Protocol.Atpg -> handle_atpg t params (budget ())
  | Protocol.Diagnose -> handle_diagnose t params (budget ())
  | Protocol.Stats -> handle_stats t
  | Protocol.Health -> handle_health t
  | Protocol.Evict -> handle_evict t params
  | Protocol.Shutdown -> Json.Obj [ ("stopping", Json.Bool true) ]

(* Every library failure becomes a typed wire error — the
   never-raises contract, applied uniformly to whole requests and to
   individual batch items. *)
let capture f =
  match f () with
  | result -> Ok result
  | exception Diagnostics.Failed d -> Error (Protocol.error_of_diagnostic d)
  | exception (Invalid_argument msg | Failure msg) ->
      Error { Protocol.code = Diagnostics.code_string Diagnostics.Invalid_flag; message = msg }
  | exception Sys_error msg ->
      Error { Protocol.code = Diagnostics.code_string Diagnostics.Io_error; message = msg }

(* The handshake: not counted as a request — negotiation is connection
   setup, not work — so v1 traffic keeps byte-identical counters. *)
let handle_hello t conn id versions =
  let payload =
    match Protocol.negotiate versions with
    | Some v ->
        conn.version <- v;
        Ok
          (Protocol.Welcome
             { version = v; versions = Protocol.supported_versions;
               server = Util.Version.version })
    | None ->
        Error
          { Protocol.code = Diagnostics.code_string Diagnostics.Protocol;
            message =
              Printf.sprintf "no common protocol version (server speaks: %s)"
                (String.concat ", " (List.map string_of_int Protocol.supported_versions)) }
  in
  locked t (fun () ->
      if Trace.enabled t.tracer then Metrics.incr (Trace.counter t.tracer "service.hello"));
  { Protocol.id; payload }

let cached_flag_counters tr result =
  match Option.bind (Json.member "cached" result) Json.to_bool with
  | Some true -> Metrics.incr (Trace.counter tr "service.cache.hits")
  | Some false -> Metrics.incr (Trace.counter tr "service.cache.misses")
  | None -> ()

let handle t ?conn (req : Protocol.request) =
  let conn = match conn with Some c -> c | None -> new_conn () in
  match req.Protocol.call with
  | Protocol.Hello versions -> handle_hello t conn req.Protocol.id versions
  | call ->
      let start_s = locked t (fun () -> Trace.now_s t.tracer) in
      let payload =
        match call with
        | Protocol.Hello _ -> assert false
        | Protocol.Single (op, params) ->
            Result.map (fun j -> Protocol.Result j) (capture (fun () -> dispatch_single t op params))
        | Protocol.Batch (op, items) ->
            (* Each item runs exactly the single-op path, in request
               order, with its own budget and its own error capture —
               the byte-identity and isolation guarantees of v1, one
               round-trip instead of n. *)
            Ok
              (Protocol.Batch_replies
                 (List.map (fun params -> capture (fun () -> dispatch_single t op params)) items))
      in
      let op_string = Protocol.call_name call in
      (* Publish counters and the request span under the lock — tracers
         and registries are not domain-safe on their own. *)
      locked t (fun () ->
          t.n_requests <- t.n_requests + 1;
          (match payload with Error _ -> t.n_errors <- t.n_errors + 1 | Ok _ -> ());
          let tr = t.tracer in
          if Trace.enabled tr then begin
            Metrics.incr (Trace.counter tr "service.requests");
            Metrics.incr (Trace.counter tr (Printf.sprintf "service.requests.%s" op_string));
            (match payload with
            | Error _ -> Metrics.incr (Trace.counter tr "service.errors")
            | Ok (Protocol.Result result) -> cached_flag_counters tr result
            | Ok (Protocol.Batch_replies items) ->
                List.iter (function Ok r -> cached_flag_counters tr r | Error _ -> ()) items
            | Ok (Protocol.Welcome _) -> ());
            let dur_s = Trace.now_s tr -. start_s in
            Trace.emit_span tr "service.request" ~start_s ~dur_s
              ~attrs:
                [ ("op", Trace.Str op_string); ("id", Trace.Int req.Protocol.id);
                  ("ok", Trace.Bool (Result.is_ok payload)) ];
            Metrics.observe
              (Trace.histogram tr (Printf.sprintf "service.request_s.%s" op_string))
              dur_s
          end);
      { Protocol.id = req.Protocol.id; payload }

let count_failed_request t =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      t.n_errors <- t.n_errors + 1;
      if Trace.enabled t.tracer then begin
        Metrics.incr (Trace.counter t.tracer "service.requests");
        Metrics.incr (Trace.counter t.tracer "service.errors")
      end)

let protocol_error_response id message =
  { Protocol.id;
    payload =
      Error { Protocol.code = Diagnostics.code_string Diagnostics.Protocol; message } }

let handle_frame t ?conn payload =
  let conn = match conn with Some c -> c | None -> new_conn () in
  let response =
    match Json.of_string payload with
    | Error msg ->
        count_failed_request t;
        protocol_error_response 0 (Printf.sprintf "malformed request: %s" msg)
    | Ok json -> (
        match Protocol.request_of_json json with
        | Error (Protocol.Malformed msg) ->
            count_failed_request t;
            protocol_error_response 0 (Printf.sprintf "malformed request: %s" msg)
        | Error (Protocol.Unknown_op { id; op }) ->
            (* Typed E-protocol naming the connection's negotiated
               version, so a v2 client can tell "old server" from
               "bad op". *)
            count_failed_request t;
            protocol_error_response id
              (Printf.sprintf "unknown op %S (protocol v%d; expected one of: %s)" op
                 conn.version
                 (String.concat ", " Protocol.ops))
        | Ok req -> handle t ~conn req)
  in
  let directive =
    match response.Protocol.payload with
    | Ok (Protocol.Result (Json.Obj fields)) when List.mem_assoc "stopping" fields -> `Shutdown
    | _ -> `Continue
  in
  (Json.to_string (Protocol.response_to_json response), directive)

(* Admission control refused this request: echo its id back (when the
   payload parses far enough to carry one) under a typed E-overload
   error, and count the shed.  Never runs the handler. *)
let shed_frame t payload =
  let id =
    match Json.of_string payload with
    | Error _ -> 0
    | Ok json -> (
        match Protocol.request_of_json json with
        | Ok req -> req.Protocol.id
        | Error (Protocol.Unknown_op { id; _ }) -> id
        | Error (Protocol.Malformed _) -> 0)
  in
  locked t (fun () ->
      t.n_shed <- t.n_shed + 1;
      if Trace.enabled t.tracer then Metrics.incr (Trace.counter t.tracer "service.shed"));
  let response =
    { Protocol.id;
      payload =
        Error
          { Protocol.code = Diagnostics.code_string Diagnostics.Overload;
            message = "server overloaded: too many requests in flight" } }
  in
  Json.to_string (Protocol.response_to_json response)

let backend t =
  { Server.connect =
      (fun () ->
        let conn = new_conn () in
        { Server.handle = (fun payload -> handle_frame t ~conn payload);
          disconnect = (fun () -> ()) });
    shed = shed_frame t;
    on_queue_depth = observe_queue_depth t;
    on_inflight = observe_inflight t;
    on_lane_restart = (fun () -> note_lane_restart t);
    set_runtime = set_runtime t }
