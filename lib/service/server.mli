(** Concurrent socket front end for a {!Session}.

    Listens on a Unix-domain or TCP socket and serves the
    length-prefixed {!Protocol} to many clients at once: each lane of a
    {!Util.Parallel} domain pool runs its own accept-serve loop over
    the shared listening socket, so up to [workers] connections are
    handled simultaneously while the kernel's listen [backlog] bounds
    the accept queue — clients beyond both simply queue, they are never
    dropped by the server itself.

    {2 Admission control}

    Independently of connection concurrency, at most [max_inflight]
    requests may be inside a handler at once.  A request that cannot
    acquire a slot within [queue_wait_s] is {e shed}: the lane replies
    immediately with a typed [E-overload] error (the resilient client
    backs off and retries) instead of queueing unboundedly.  Sheds are
    counted in the session's [service.shed] metric and the [health]
    reply.  Accept lanes that die from an injected or unexpected
    exception are counted and restarted ([service.lane_restarts]), so
    a single failure never silently halves the server's capacity —
    and {!serve} still drains cleanly and removes its socket file.

    {2 Shutdown and drain}

    The server stops when a [shutdown] request is served, when
    [should_stop] returns true, or — while {!serve} is running — on
    SIGINT/SIGTERM.  Stopping is always a {e graceful drain}: every
    lane finishes the request it is processing and flushes the reply
    before closing; only then does {!serve} return.  Idle connections
    are closed at the next poll tick, so a silent client can never
    wedge the drain. *)

type address =
  | Unix_socket of string  (** path; a stale socket file is replaced *)
  | Tcp of string * int  (** bind address and port *)

val address_to_string : address -> string

type t

val create :
  ?workers:int ->
  ?backlog:int ->
  ?poll_interval_s:float ->
  ?max_inflight:int ->
  ?queue_wait_s:float ->
  Session.t ->
  address ->
  t
(** [workers] (default 4) accept-serve lanes; [backlog] (default 16)
    bounds the kernel accept queue; [poll_interval_s] (default 0.05)
    is the stop-flag poll cadence for idle lanes and idle connections.
    [max_inflight] (default [workers]) bounds concurrent in-handler
    requests; [queue_wait_s] (default 0.1) is how long a request may
    wait for a slot before being shed with [E-overload].
    @raise Invalid_argument on out-of-range values. *)

val request_stop : t -> unit
(** Ask a running {!serve} to drain and return (thread-safe; also what
    the signal handlers call). *)

val stopping : t -> bool

val lane_restarts : t -> int
(** Accept lanes revived after dying from an exception. *)

val serve : ?should_stop:(unit -> bool) -> ?on_ready:(unit -> unit) -> t -> unit
(** Bind, listen, call [on_ready] (the socket now accepts
    connections), and block until drained.  SIGINT/SIGTERM handlers
    are installed for the duration and restored on return.
    @raise Util.Diagnostics.Failed with code [Io_error] when the
    socket cannot be bound. *)
