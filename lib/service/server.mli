(** Concurrent socket front end for any frame-handling backend.

    Listens on a Unix-domain or TCP socket and serves the
    length-prefixed {!Protocol} framing to many clients at once: each
    of [workers] accept-serve lanes runs its own dedicated domain over
    the shared listening socket, so up to [workers] connections are
    handled simultaneously while the kernel's listen [backlog] bounds
    the accept queue — clients beyond both simply queue, they are never
    dropped by the server itself.

    The server knows nothing about request semantics: it is
    parameterised over a {!backend} — a per-connection handler factory
    plus observability hooks.  {!Session.backend} plugs a worker's
    request handling in; {!Router.backend} plugs the fleet router in;
    tests plug fakes in.

    {2 Admission control}

    Independently of connection concurrency, at most [max_inflight]
    requests may be inside a handler at once.  A request that cannot
    acquire a slot within [queue_wait_s] is {e shed}: the lane replies
    immediately with the backend's typed [E-overload] error (the
    resilient client backs off and retries) instead of queueing
    unboundedly.  Accept lanes that die from an injected or unexpected
    exception are counted and restarted, so a single failure never
    silently halves the server's capacity — and {!serve} still drains
    cleanly and removes its socket file.

    {2 Shutdown and drain}

    The server stops when a handler returns the [`Shutdown] directive,
    when [should_stop] returns true, or — while {!serve} is running —
    on SIGINT/SIGTERM.  Stopping is always a {e graceful drain}: every
    lane finishes the request it is processing and flushes the reply
    before closing; only then does {!serve} return.  Idle connections
    are closed at the next poll tick, so a silent client can never
    wedge the drain. *)

type address =
  | Unix_socket of string  (** path; a stale socket file is replaced *)
  | Tcp of string * int  (** bind address and port *)

val address_to_string : address -> string

type directive = [ `Continue | `Shutdown ]

type connection = {
  handle : string -> string * directive;
      (** map one frame payload to one reply payload; must never raise
          for request-level failures (encode them as error replies) *)
  disconnect : unit -> unit;
      (** the peer is gone — release per-connection resources *)
}

type backend = {
  connect : unit -> connection;
      (** called once per accepted connection; per-connection protocol
          state (e.g. the negotiated version) lives in the closure *)
  shed : string -> string;
      (** admission control refused this frame — build the E-overload
          reply without running the handler *)
  on_queue_depth : int -> unit;  (** busy-connection sample at accept *)
  on_inflight : int -> unit;  (** in-flight sample at admission *)
  on_lane_restart : unit -> unit;  (** an accept lane died and was revived *)
  set_runtime : (unit -> (string * Util.Json.t) list) -> unit;
      (** receive the server's live-stats thunk (in-flight count, lane
          restarts, …) for embedding into health replies *)
}

type t

val create :
  ?workers:int ->
  ?backlog:int ->
  ?poll_interval_s:float ->
  ?max_inflight:int ->
  ?queue_wait_s:float ->
  backend ->
  address ->
  t
(** [workers] (default 4) accept-serve lanes; [backlog] (default 16)
    bounds the kernel accept queue; [poll_interval_s] (default 0.05)
    is the stop-flag poll cadence for idle lanes and idle connections.
    [max_inflight] (default [workers]) bounds concurrent in-handler
    requests; [queue_wait_s] (default 0.1) is how long a request may
    wait for a slot before being shed with [E-overload].
    @raise Invalid_argument on out-of-range values. *)

val request_stop : t -> unit
(** Ask a running {!serve} to drain and return (thread-safe; also what
    the signal handlers call). *)

val stopping : t -> bool

val lane_restarts : t -> int
(** Accept lanes revived after dying from an exception. *)

val serve : ?should_stop:(unit -> bool) -> ?on_ready:(unit -> unit) -> t -> unit
(** Bind, listen, call [on_ready] (the socket now accepts
    connections), and block until drained.  SIGINT/SIGTERM handlers
    are installed for the duration and restored on return.
    @raise Util.Diagnostics.Failed with code [Io_error] when the
    socket cannot be bound. *)
