module Diagnostics = Util.Diagnostics

type address = Unix_socket of string | Tcp of string * int

let address_to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type directive = [ `Continue | `Shutdown ]

type connection = {
  handle : string -> string * directive;
  disconnect : unit -> unit;
}

type backend = {
  connect : unit -> connection;
  shed : string -> string;
  on_queue_depth : int -> unit;
  on_inflight : int -> unit;
  on_lane_restart : unit -> unit;
  set_runtime : (unit -> (string * Util.Json.t) list) -> unit;
}

type t = {
  backend : backend;
  address : address;
  workers : int;
  backlog : int;
  poll_interval_s : float;
  max_inflight : int;
  queue_wait_s : float;
  stop : bool Atomic.t;
  busy : int Atomic.t;  (* connections currently being served *)
  inflight : int Atomic.t;  (* requests currently inside a handler *)
  lane_restarts : int Atomic.t;  (* accept lanes revived after dying *)
}

let create ?(workers = 4) ?(backlog = 16) ?(poll_interval_s = 0.05) ?max_inflight
    ?(queue_wait_s = 0.1) backend address =
  if workers < 1 then invalid_arg "Server.create: workers must be at least 1";
  if backlog < 1 then invalid_arg "Server.create: backlog must be at least 1";
  let max_inflight = Option.value max_inflight ~default:workers in
  if max_inflight < 1 then invalid_arg "Server.create: max_inflight must be at least 1";
  if queue_wait_s < 0.0 then invalid_arg "Server.create: queue_wait_s must be non-negative";
  { backend; address; workers; backlog; poll_interval_s; max_inflight; queue_wait_s;
    stop = Atomic.make false; busy = Atomic.make 0; inflight = Atomic.make 0;
    lane_restarts = Atomic.make 0 }

let request_stop t = Atomic.set t.stop true
let stopping t = Atomic.get t.stop
let lane_restarts t = Atomic.get t.lane_restarts

(* --- listening socket --------------------------------------------- *)

let bind_listener t =
  let domain, addr =
    match t.address with
    | Unix_socket path ->
        (* Replace a stale socket file from a previous run; refuse to
           unlink anything that is not a socket. *)
        (match Unix.lstat path with
        | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
        | _ -> Diagnostics.fail Diagnostics.Io_error "%s exists and is not a socket" path
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                Diagnostics.fail Diagnostics.Io_error "cannot resolve %s" host
            | { Unix.h_addr_list; _ } -> h_addr_list.(0))
        in
        (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     (match t.address with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_socket _ -> ());
     Unix.bind fd addr;
     Unix.listen fd t.backlog;
     Unix.set_nonblock fd
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Diagnostics.fail Diagnostics.Io_error "cannot listen on %s: %s"
       (address_to_string t.address) (Unix.error_message err));
  fd

(* --- admission control -------------------------------------------- *)

let try_acquire t =
  let rec go () =
    let n = Atomic.get t.inflight in
    if n >= t.max_inflight then false
    else if Atomic.compare_and_set t.inflight n (n + 1) then true
    else go ()
  in
  go ()

(* Wait up to the queue-wait deadline for an in-flight slot; a request
   that cannot be admitted in time is shed, which keeps the queue
   short and the latency of admitted requests bounded. *)
let admit t =
  try_acquire t
  || begin
       let deadline = Util.Budget.of_seconds t.queue_wait_s in
       let rec wait () =
         if try_acquire t then true
         else if Util.Budget.expired deadline || Atomic.get t.stop then false
         else begin
           Unix.sleepf 0.002;
           wait ()
         end
       in
       wait ()
     end

(* --- per-connection serving --------------------------------------- *)

(* One request-reply exchange at a time per connection.  Between
   frames the lane polls the stop flag, so a drain waits only for the
   request in flight, never for an idle client. *)
let serve_connection t conn =
  Atomic.incr t.busy;
  t.backend.on_queue_depth (Atomic.get t.busy);
  let c = t.backend.connect () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.busy;
      (try c.disconnect () with _ -> ());
      try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      let rec exchange () =
        if not (Atomic.get t.stop) then
          match Unix.select [ conn ] [] [] t.poll_interval_s with
          | [], _, _ -> exchange ()
          | _ -> (
              match Protocol.read_frame conn with
              | None -> ()
              | Some payload ->
                  if admit t then begin
                    let reply, directive =
                      Fun.protect
                        ~finally:(fun () -> Atomic.decr t.inflight)
                        (fun () ->
                          t.backend.on_inflight (Atomic.get t.inflight);
                          c.handle payload)
                    in
                    Protocol.write_frame conn reply;
                    match directive with
                    | `Shutdown -> Atomic.set t.stop true
                    | `Continue -> exchange ()
                  end
                  else begin
                    Protocol.write_frame conn (t.backend.shed payload);
                    exchange ()
                  end)
      in
      (* A broken or misbehaving client kills its connection, never
         the worker lane. *)
      try exchange ()
      with
      | Diagnostics.Failed _ | End_of_file
      | Unix.Unix_error (_, _, _)
      | Sys_error _
      -> ())

let accept_loop t listener should_stop =
  let stop_now () = Atomic.get t.stop || should_stop () in
  let rec loop () =
    if not (stop_now ()) then begin
      (* Chaos: kill this lane before it touches the listener, so an
         injected death never leaks an accepted connection. *)
      Util.Failpoint.check "server.accept";
      (match Unix.select [ listener ] [] [] t.poll_interval_s with
      | [], _, _ -> ()
      | _ -> (
          (* Lanes race on accept; the losers see EAGAIN and re-poll. *)
          match Unix.accept ~cloexec:true listener with
          | conn, _ -> serve_connection t conn
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            -> ()
          | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()));
      loop ()
    end
  in
  (* Supervise the lane: a dying lane (injected fault, unexpected
     exception from the accept path) is counted and restarted, so the
     listener keeps its full complement of lanes, [serve] returns
     normally on drain, and the socket file is always cleaned up. *)
  let rec supervised () =
    match loop () with
    | () -> ()
    | exception _ when not (stop_now ()) ->
        Atomic.incr t.lane_restarts;
        t.backend.on_lane_restart ();
        supervised ()
    | exception _ -> ()
  in
  supervised ()

(* --- the blocking entry point ------------------------------------- *)

let with_signals t f =
  let install signum = Sys.signal signum (Sys.Signal_handle (fun _ -> request_stop t)) in
  let sigint = install Sys.sigint in
  let sigterm = install Sys.sigterm in
  (* A peer vanishing mid-write must surface as EPIPE, not kill us. *)
  let sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint sigint;
      Sys.set_signal Sys.sigterm sigterm;
      Sys.set_signal Sys.sigpipe sigpipe)
    f

let serve ?(should_stop = fun () -> false) ?(on_ready = fun () -> ()) t =
  t.backend.set_runtime (fun () ->
      [ ("inflight", Util.Json.Int (Atomic.get t.inflight));
        ("max_inflight", Util.Json.Int t.max_inflight);
        ("workers", Util.Json.Int t.workers);
        ("lane_restarts", Util.Json.Int (Atomic.get t.lane_restarts)) ]);
  let listener = bind_listener t in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      match t.address with
      | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ())
    (fun () ->
      with_signals t (fun () ->
          on_ready ();
          (* Accept lanes are I/O-bound — parked in [select]/[read] —
             so each gets a dedicated domain rather than a lane of a
             compute pool: a pool caps its domains at the core count,
             which on a small machine would collapse every lane onto
             one domain and serialize all connections. *)
          let lane () = accept_loop t listener should_stop in
          let spawned = Array.init (t.workers - 1) (fun _ -> Domain.spawn lane) in
          Fun.protect ~finally:(fun () -> Array.iter Domain.join spawned) lane))
