(** Umbrella module: the library's public API in one namespace.

    Downstream users depend on the [adi_atpg] library and reach every
    component as [Adi_atpg.<Component>]; the examples in [examples/]
    are written against this module.  Each alias below is one of the
    systems listed in DESIGN.md.

    {1 Quick tour}

    {[
      let circuit = Adi_atpg.Suite.build_by_name "syn420" in
      let cfg = Adi_atpg.Run_config.(default |> with_seed 1) in
      let setup = Adi_atpg.Pipeline.prepare cfg circuit in
      let run = Adi_atpg.Pipeline.run_order setup Adi_atpg.Ordering.Dynm0 in
      Printf.printf "tests: %d\n" (Adi_atpg.Pipeline.test_count run)
    ]} *)

(** {1 Netlists} *)

module Gate = Gate
module Circuit = Circuit
module Bench_format = Bench_format
module Blif_format = Blif_format
module Verilog_format = Verilog_format
module Scan = Scan
module Rewrite = Rewrite
module Validate = Validate
module Stats = Stats

(** {1 Logic values} *)

module Boolean = Boolean
module Logic_word = Logic_word
module Ternary = Ternary
module Five = Five

(** {1 Faults} *)

module Fault = Fault
module Fault_list = Fault_list
module Collapse = Collapse

(** {1 Simulation} *)

module Patterns = Patterns
module Goodsim = Goodsim
module Seqsim = Seqsim
module Testbench = Testbench
module Faultsim = Faultsim
module Deductive = Deductive
module Refsim = Refsim

(** {1 Test generation} *)

module Scoap = Scoap
module Podem = Podem
module Dalg = Dalg
module Transition = Transition
module Engine = Engine
module Compact = Compact
module Reorder = Reorder
module Irredundant = Irredundant

(** {1 The paper's contribution: ADI fault ordering} *)

module Adi_index = Adi_index
module Ordering = Ordering
module Run_config = Run_config
module Pipeline = Pipeline
module Independence = Independence

(** {1 Diagnosis} *)

module Diagnosis = Diagnosis

(** {1 Metrics and workloads} *)

module Coverage = Coverage
module Library = Library
module Generate = Generate
module Twolevel = Twolevel
module Kiss = Kiss
module Suite = Suite

(** {1 Utilities} *)

module Rng = Util.Rng
module Bitvec = Util.Bitvec
module Table = Util.Table
module Plot = Util.Plot
module Metrics = Util.Metrics
module Trace = Util.Trace
