type result = {
  representatives : Fault_list.t;
  class_of : int array;
  class_sizes : int array;
}

(* Union-find with path compression; union by smaller root index so the
   class representative is the smallest member. *)
let rec find parent i = if parent.(i) = i then i else begin
    parent.(i) <- find parent parent.(i);
    parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb

let equivalence fl =
  let c = Fault_list.circuit fl in
  let n = Fault_list.count fl in
  let parent = Array.init n Fun.id in
  let idx f =
    match Fault_list.index fl f with
    | Some i -> i
    | None -> invalid_arg "Collapse.equivalence: fault list is not a full universe"
  in
  let join f g = union parent (idx f) (idx g) in
  Circuit.iter_nodes c (fun g ->
      let k = Circuit.kind c g in
      let pins = Array.length (Circuit.fanins c g) in
      (* Controlling-value input faults fold into the output fault. *)
      (match Gate.controlling_value k with
      | Some cv ->
          let out_val = if Gate.inverting k then not cv else cv in
          for p = 0 to pins - 1 do
            join (Fault.branch ~gate:g ~pin:p cv) (Fault.stem g out_val)
          done
      | None -> ());
      (* Buffer / inverter: both polarities fold through. *)
      (match k with
      | Gate.Buf ->
          join (Fault.branch ~gate:g ~pin:0 false) (Fault.stem g false);
          join (Fault.branch ~gate:g ~pin:0 true) (Fault.stem g true)
      | Gate.Not ->
          join (Fault.branch ~gate:g ~pin:0 false) (Fault.stem g true);
          join (Fault.branch ~gate:g ~pin:0 true) (Fault.stem g false)
      | _ -> ());
      (* Fanout-free stem: the stem and its only branch are one line. *)
      let fo = Circuit.fanouts c g in
      if Array.length fo = 1 && not (Circuit.is_output c g) then begin
        let consumer = fo.(0) in
        let cf = Circuit.fanins c consumer in
        let uses = ref [] in
        Array.iteri (fun p f -> if f = g then uses := p :: !uses) cf;
        match !uses with
        | [ p ] ->
            join (Fault.stem g false) (Fault.branch ~gate:consumer ~pin:p false);
            join (Fault.stem g true) (Fault.branch ~gate:consumer ~pin:p true)
        | _ -> () (* same signal on several pins: stem differs from each branch *)
      end);
  (* Extract representatives in index order. *)
  let is_rep = Array.make n false in
  for i = 0 to n - 1 do
    is_rep.(find parent i) <- true
  done;
  let rep_ids = ref [] in
  for i = n - 1 downto 0 do
    if is_rep.(i) then rep_ids := i :: !rep_ids
  done;
  let rep_ids = Array.of_list !rep_ids in
  let rep_pos = Array.make n (-1) in
  Array.iteri (fun pos i -> rep_pos.(i) <- pos) rep_ids;
  let class_of = Array.init n (fun i -> rep_pos.(find parent i)) in
  let class_sizes = Array.make (Array.length rep_ids) 0 in
  Array.iter (fun r -> class_sizes.(r) <- class_sizes.(r) + 1) class_of;
  { representatives = Fault_list.sub fl rep_ids; class_of; class_sizes }

let collapsed c = (equivalence (Fault_list.full c)).representatives

let collapse_ratio r =
  float_of_int (Array.length r.class_of)
  /. float_of_int (Fault_list.count r.representatives)
