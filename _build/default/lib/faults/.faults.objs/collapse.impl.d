lib/faults/collapse.ml: Array Circuit Fault Fault_list Fun Gate
