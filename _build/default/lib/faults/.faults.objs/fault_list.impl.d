lib/faults/fault_list.ml: Array Circuit Fault Hashtbl List
