lib/faults/fault.ml: Array Circuit Format Printf Stdlib
