lib/faults/fault_list.mli: Circuit Fault
