lib/faults/fault.mli: Circuit Format
