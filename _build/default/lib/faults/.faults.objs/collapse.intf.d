lib/faults/collapse.mli: Circuit Fault_list
