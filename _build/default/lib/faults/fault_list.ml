type t = {
  circuit : Circuit.t;
  faults : Fault.t array;
  idx : (Fault.t, int) Hashtbl.t;
}

let circuit t = t.circuit
let count t = Array.length t.faults
let get t i = t.faults.(i)
let faults t = t.faults
let index t f = Hashtbl.find_opt t.idx f

let of_faults circuit faults =
  let idx = Hashtbl.create (2 * Array.length faults) in
  Array.iteri
    (fun i f ->
      if Hashtbl.mem idx f then invalid_arg "Fault_list.of_faults: duplicate fault";
      Hashtbl.add idx f i)
    faults;
  { circuit; faults; idx }

let full c =
  if Circuit.has_state c then
    invalid_arg "Fault_list.full: circuit has flip-flops; apply Scan.combinational first";
  let acc = ref [] in
  Circuit.iter_nodes c (fun i ->
      acc := Fault.stem i true :: Fault.stem i false :: !acc;
      let pins = Array.length (Circuit.fanins c i) in
      for p = pins - 1 downto 0 do
        acc := Fault.branch ~gate:i ~pin:p true :: Fault.branch ~gate:i ~pin:p false :: !acc
      done);
  (* Built backwards twice over, so reverse restores node-major order. *)
  let faults =
    !acc |> List.rev
    |> List.sort (fun a b ->
           let node f = Fault.site_node f in
           compare (node a) (node b) |> fun c0 -> if c0 <> 0 then c0 else Fault.compare a b)
  in
  of_faults c (Array.of_list faults)

let sub t idxs = of_faults t.circuit (Array.map (fun i -> t.faults.(i)) idxs)
