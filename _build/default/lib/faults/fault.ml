type site = Stem of int | Branch of { gate : int; pin : int }
type t = { site : site; stuck_at : bool }

let stem id v = { site = Stem id; stuck_at = v }
let branch ~gate ~pin v = { site = Branch { gate; pin }; stuck_at = v }

let site_node f = match f.site with Stem id -> id | Branch { gate; _ } -> gate

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b

let to_string c f =
  let sa = if f.stuck_at then "s-a-1" else "s-a-0" in
  match f.site with
  | Stem id -> Printf.sprintf "%s %s" (Circuit.name c id) sa
  | Branch { gate; pin } ->
      let driver = (Circuit.fanins c gate).(pin) in
      Printf.sprintf "%s.in%d (%s) %s" (Circuit.name c gate) pin (Circuit.name c driver) sa

let pp c ppf f = Format.pp_print_string ppf (to_string c f)
