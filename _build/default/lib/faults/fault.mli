(** Single stuck-at faults.

    A fault site is either a gate/PI output (a {e stem}) or one input
    pin of a gate (a {e branch} of the driving net).  Stem and branch
    faults differ exactly when the driving net fans out: a branch fault
    affects one consumer only.  Together with a stuck-at polarity this
    is the classic single-stuck-at model the paper uses. *)

type site =
  | Stem of int  (** the output of node [id] *)
  | Branch of { gate : int; pin : int }
      (** input pin [pin] (0-based) of node [gate] *)

type t = { site : site; stuck_at : bool }

val stem : int -> bool -> t
val branch : gate:int -> pin:int -> bool -> t

val site_node : t -> int
(** The node at which the faulty value is injected: the node itself for
    a stem fault, the consuming gate for a branch fault. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : Circuit.t -> t -> string
(** e.g. ["G17 s-a-1"] or ["G10.in2 (G5) s-a-0"]. *)

val pp : Circuit.t -> Format.formatter -> t -> unit
