(** Fault universes over a circuit.

    A fault list fixes an indexed set of faults [0 .. count-1]; every
    simulator and ordering in the library speaks in these indices.  The
    index order of {!full} (node-major, stem faults before branch
    faults, s-a-0 before s-a-1) is the "original order" [Forig] that the
    paper uses as its baseline. *)

type t

val circuit : t -> Circuit.t
val count : t -> int
val get : t -> int -> Fault.t
val faults : t -> Fault.t array
(** The backing array; do not mutate. *)

val index : t -> Fault.t -> int option
(** Index of a fault in this list, if present. *)

val full : Circuit.t -> t
(** Every stuck-at fault: two per node output and two per gate input
    pin.  Requires a combinational circuit.
    @raise Invalid_argument if the circuit has flip-flops. *)

val of_faults : Circuit.t -> Fault.t array -> t
(** A custom universe (used by collapsing and by tests). *)

val sub : t -> int array -> t
(** [sub t idxs] restricts the universe to the given indices (fresh
    dense indexing in the order given). *)
